examples/custom_function.ml: Array Eden_base Eden_bytecode Eden_enclave Eden_lang Int64 Printf Result String
