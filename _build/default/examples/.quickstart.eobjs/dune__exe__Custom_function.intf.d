examples/custom_function.mli:
