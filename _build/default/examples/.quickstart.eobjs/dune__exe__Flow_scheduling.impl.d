examples/flow_scheduling.ml: Eden_base Eden_experiments List Printf
