examples/flow_scheduling.mli:
