examples/incast.mli:
