examples/load_balancing.ml: Eden_base Eden_controller Eden_experiments Float List Printf String
