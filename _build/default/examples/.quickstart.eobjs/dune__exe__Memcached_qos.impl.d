examples/memcached_qos.ml: Eden_base Eden_enclave Eden_functions Eden_netsim Eden_stage Eden_workloads Float List Printf
