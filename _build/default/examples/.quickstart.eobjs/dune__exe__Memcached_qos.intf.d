examples/memcached_qos.mli:
