examples/port_knocking_demo.ml: Eden_base Eden_enclave Eden_functions Eden_lang Int64 List Printf String
