examples/port_knocking_demo.mli:
