examples/quickstart.ml: Array Eden_base Eden_bytecode Eden_enclave Eden_lang Eden_stage Int64 List Option Printf Result String
