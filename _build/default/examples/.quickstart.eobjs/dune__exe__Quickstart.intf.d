examples/quickstart.mli:
