examples/replica_selection.ml: Array Eden_base Eden_enclave Eden_functions Eden_netsim Eden_stage Hashtbl Int64 List Printf
