examples/replica_selection.mli:
