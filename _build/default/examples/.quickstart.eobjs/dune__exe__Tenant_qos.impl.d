examples/tenant_qos.ml: Eden_base Eden_experiments List Printf
