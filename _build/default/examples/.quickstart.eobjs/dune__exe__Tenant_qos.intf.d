examples/tenant_qos.mli:
