(* Writing your own network function, end to end.

   An operator writes an action function as *text* in the F#-style
   surface syntax (what a controller would receive), the library parses,
   type-checks, compiles and verifies it, the bytecode travels through
   the binary codec (the controller->enclave wire format), and the
   enclave runs it on traffic.

   The function: a tiny "heavy hitter" marker — any flow that has sent
   more than a threshold gets its packets tagged with low priority and
   its excess counted.

   Run with: dune exec examples/custom_function.exe *)

module Enclave = Eden_enclave.Enclave
module Addr = Eden_base.Addr
module Packet = Eden_base.Packet
module Time = Eden_base.Time

let source =
  {|
fun (packet : Packet, msg : Message, _global : Global) ->
  msg.Sent <- msg.Sent + packet.Size
  if msg.Sent > _global.Limit then
    (packet.Priority <- 1L
     _global.ExcessBytes <- _global.ExcessBytes + packet.Size)
  else
    packet.Priority <- 6L
|}

let schema =
  Eden_lang.Schema.with_standard_packet
    ~message:[ Eden_lang.Schema.field "Sent" ~access:Eden_lang.Schema.Read_write ]
    ~global:
      [
        Eden_lang.Schema.field "Limit";
        Eden_lang.Schema.field "ExcessBytes" ~access:Eden_lang.Schema.Read_write;
      ]
    ()

let ok_or_die = function Ok v -> v | Error msg -> failwith msg

let () =
  Printf.printf "Operator's source:\n%s\n" source;
  (* Parse the text... *)
  let action =
    match Eden_lang.Parser.parse_action ~name:"heavy_hitter" source with
    | Ok a -> a
    | Error e -> failwith (Eden_lang.Parser.error_to_string e)
  in
  (* ...compile and verify... *)
  let program =
    ok_or_die
      (Result.map_error Eden_lang.Compile.error_to_string
         (Eden_lang.Compile.compile schema action))
  in
  Printf.printf "Compiled: %d instructions, %s concurrency.\n"
    (Array.length program.Eden_bytecode.Program.code)
    (if Eden_bytecode.Program.writes_entity program Eden_bytecode.Program.Global then
       "serial"
     else "per-message");
  (* ...ship it over the controller->enclave wire format... *)
  let wire = Eden_bytecode.Codec.encode program in
  Printf.printf "Wire format: %d bytes.\n\n" (String.length wire);
  let received =
    match Eden_bytecode.Codec.decode wire with
    | Ok p -> p
    | Error e -> failwith (Eden_bytecode.Codec.error_to_string e)
  in
  (* ...install it on an enclave and run traffic through. *)
  let enclave = Enclave.create ~host:1 () in
  ok_or_die
    (Enclave.install_action enclave
       {
         Enclave.i_name = "heavy_hitter";
         i_impl = Enclave.Interpreted received;
         i_msg_sources = [ ("Sent", Enclave.Stateful 0L) ];
       });
  ok_or_die (Enclave.set_global enclave ~action:"heavy_hitter" "Limit" 10_000L);
  ignore
    (ok_or_die
       (Enclave.add_table_rule enclave ~pattern:Eden_base.Class_name.Pattern.any
          ~action:"heavy_hitter" ()));
  let flow =
    Addr.five_tuple ~src:(Addr.endpoint 1 5555) ~dst:(Addr.endpoint 2 80) ~proto:Addr.Tcp
  in
  Printf.printf "A flow sending 20 x 1 KB packets (limit 10 KB):\n";
  for i = 1 to 20 do
    let pkt = Packet.make ~id:(Int64.of_int i) ~flow ~kind:Packet.Data ~payload:1000 () in
    ignore (Enclave.process enclave ~now:(Time.us i) pkt);
    if i mod 5 = 0 then
      Printf.printf "  packet %2d -> priority %d\n" i pkt.Packet.priority
  done;
  match Enclave.get_global enclave ~action:"heavy_hitter" "ExcessBytes" with
  | Some excess -> Printf.printf "\nExcess bytes counted at the enclave: %Ld\n" excess
  | None -> ()
