(* Flow scheduling (paper case study 1, §5.1) at example scale.

   A worker answers web-search-sized requests at 70% load while
   background flows keep the link busy; we compare baseline, PIAS and
   SFF and print the FCT table.

   Run with: dune exec examples/flow_scheduling.exe *)

module Fig9 = Eden_experiments.Fig9

let () =
  let params =
    {
      Fig9.default_params with
      runs = 2;
      duration = Eden_base.Time.ms 150;
      link_rate_bps = 10e9;
    }
  in
  Printf.printf
    "Flow scheduling on a 10 Gbps link, web-search flow sizes, 70%% load.\n";
  Printf.printf
    "Small flows (<10 KB) ride the highest priority under PIAS/SFF.\n\n";
  let results = Fig9.run_all ~params () in
  Fig9.print results;
  (* Headline: how much PIAS/Eden improves small-flow FCT over baseline. *)
  let find scheme engine =
    List.find (fun r -> r.Fig9.scheme = scheme && r.Fig9.engine = engine) results
  in
  let baseline = find Fig9.Baseline Fig9.Native in
  let pias = find Fig9.Pias Fig9.Eden in
  if baseline.Fig9.small.Fig9.avg_us > 0.0 then
    Printf.printf
      "\nPIAS (EDEN) cuts average small-flow FCT by %.0f%% relative to baseline.\n"
      ((1.0 -. (pias.Fig9.small.Fig9.avg_us /. baseline.Fig9.small.Fig9.avg_us)) *. 100.0)
