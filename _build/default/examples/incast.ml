(* Partition–aggregate (incast) on a leaf–spine fabric.

   The search workload that motivates the paper's flow-size distribution:
   an aggregator fans a query out to workers, and every worker's response
   arrives at once — the classic incast collapse on the aggregator's
   downlink.  Two end-host remedies, both pure Eden policies:

   - DCTCP keeps the shared queue short, so the synchronized burst sees
     buffer headroom instead of drops;
   - SFF-style prioritization keeps the (small) responses ahead of
     background bulk transfers.

   Run with: dune exec examples/incast.exe *)

module Time = Eden_base.Time
module Metadata = Eden_base.Metadata
module Net = Eden_netsim.Net
module Host = Eden_netsim.Host
module Fabric = Eden_netsim.Fabric
module Tcp = Eden_netsim.Tcp
module Event = Eden_netsim.Event
module Enclave = Eden_enclave.Enclave
module Stats = Eden_base.Stats

let workers = 12
let response_bytes = 40_000
let rounds = 20

(* One experiment: [rounds] queries, each fanned out to [workers] other
   hosts, all responses to host 0; completion time of the slowest
   response is the round's latency. *)
let run ~ecn ~priorities =
  let net = Net.create ~seed:99L () in
  let fabric =
    Fabric.leaf_spine net ~leaves:4 ~spines:2 ~hosts_per_leaf:4
      ?ecn_threshold_bytes:(if ecn then Some 60_000 else None)
  in
  ignore fabric;
  let aggregator = 0 in
  if ecn then
    Array.iter
      (fun h -> Host.set_tcp_config h { Tcp.default_config with Tcp.ecn = true })
      fabric.Fabric.hosts;
  if priorities then
    Array.iter
      (fun h ->
        if Host.id h <> aggregator then begin
          let e = Enclave.create ~host:(Host.id h) () in
          (match
             Eden_functions.Sff.install e ~thresholds:[| 100_000L; 1_000_000L |]
           with
          | Ok () -> ()
          | Error m -> failwith m);
          Host.set_enclave h e
        end)
      fabric.Fabric.hosts;
  (* Background bulk flows crossing the fabric. *)
  for i = 1 to 3 do
    ignore
      (Net.start_flow net ~src:(4 + i) ~dst:aggregator
         ~metadata:(Eden_functions.Sff.metadata_for ~size:(1 lsl 30))
         ~size:50_000_000 ())
  done;
  let round_latencies = Stats.Samples.create () in
  let rec round i =
    if i < rounds then begin
      let start = Time.add (Time.ms 5) (Time.mul (Time.ms 4) i) in
      Event.schedule_at (Net.event net) start (fun () ->
          let pending = ref workers in
          let t0 = Net.now net in
          for w = 1 to workers do
            let md =
              Metadata.with_msg_id (Int64.of_int ((i * 100) + w))
                (Eden_functions.Sff.metadata_for ~size:response_bytes)
            in
            ignore
              (Net.start_flow net ~src:(w mod 15 + 1) ~dst:aggregator ~metadata:md
                 ~size:response_bytes
                 ~on_complete:(fun _ ->
                   decr pending;
                   if !pending = 0 then
                     Stats.Samples.add round_latencies
                       (Time.to_us (Time.sub (Net.now net) t0)))
                 ())
          done;
          round (i + 1))
    end
  in
  round 0;
  Net.run ~until:(Time.ms 200) net;
  (Stats.Samples.mean round_latencies, Stats.Samples.percentile round_latencies 95.0,
   Stats.Samples.count round_latencies)

let () =
  Printf.printf
    "Partition-aggregate: %d workers answer %d queries with %d KB responses\n\
     into one aggregator, over a 4-leaf/2-spine fabric with background bulk flows.\n\n"
    workers rounds (response_bytes / 1000);
  Printf.printf "  %-26s %14s %14s %4s\n" "configuration" "round avg" "round p95" "n";
  List.iter
    (fun (name, ecn, priorities) ->
      let avg, p95, n = run ~ecn ~priorities in
      Printf.printf "  %-26s %12.0fus %12.0fus %4d\n" name avg p95 n)
    [
      ("drop-tail, FIFO", false, false);
      ("DCTCP", true, false);
      ("SFF priorities", false, true);
      ("DCTCP + SFF", true, true);
    ];
  Printf.printf
    "\nBoth remedies are end-host-only: DCTCP is a transport change, the\n\
     priorities are an Eden action function — no switch upgrades involved.\n"
