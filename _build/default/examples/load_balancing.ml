(* Weighted load balancing (paper case study 2, §5.2) at example scale.

   The Fig. 1 topology — a 10 Gbps and a 1 Gbps path between two hosts —
   with the WCMP action function running per packet in a NIC-placed
   enclave.  The controller derives the 10:1 weights from its topology
   view; ECMP is the same function with equal weights.

   Run with: dune exec examples/load_balancing.exe *)

module Fig10 = Eden_experiments.Fig10
module Topology = Eden_controller.Topology

let () =
  (* Show the control-plane half: path enumeration and weights. *)
  let topo = Topology.create () in
  Topology.add_link topo "A" "C" ~capacity_bps:10e9;
  Topology.add_link topo "C" "B" ~capacity_bps:10e9;
  Topology.add_link topo "A" "D" ~capacity_bps:1e9;
  Topology.add_link topo "D" "B" ~capacity_bps:1e9;
  Printf.printf "Controller path computation for A -> B (Fig. 1 topology):\n";
  List.iter
    (fun (path, w) ->
      Printf.printf "  %-12s weight %.3f\n" (String.concat "-" path) w)
    (Topology.wcmp_weights topo ~src:"A" ~dst:"B");
  print_newline ();
  (* And the data-plane half: goodput under ECMP vs WCMP. *)
  let params = { Fig10.default_params with runs = 2; duration = Eden_base.Time.ms 120 } in
  let results = Fig10.run_all ~params () in
  Fig10.print results;
  let find b = List.find (fun r -> r.Fig10.balancing = b && r.Fig10.engine = Fig10.Eden) results in
  let e = find Fig10.Ecmp and w = find Fig10.Wcmp in
  Printf.printf "\nWCMP delivers %.1fx the goodput of ECMP on this topology.\n"
    (w.Fig10.goodput_mbps /. Float.max 1.0 e.Fig10.goodput_mbps)
