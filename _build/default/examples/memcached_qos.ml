(* Application-level QoS: prioritize memcached GETs over PUTs.

   The paper's opening example of why the data plane needs application
   semantics (§1): a GET and a PUT look identical to a header-matching
   data plane, but their latency requirements differ completely.  Here a
   client hammers its uplink with bulk PUT uploads while issuing small
   GETs; the memcached stage classifies both, and the App_priority
   action function lets GET packets overtake PUT bytes in every queue.

   Run with: dune exec examples/memcached_qos.exe *)

module Time = Eden_base.Time
module Net = Eden_netsim.Net
module Host = Eden_netsim.Host
module Switch = Eden_netsim.Switch
module Event = Eden_netsim.Event
module Enclave = Eden_enclave.Enclave
module Kv = Eden_workloads.Memcached_app
module Stage = Eden_stage.Stage
module Classifier = Eden_stage.Classifier
module Stats = Eden_base.Stats

let ok_or_die = function Ok v -> v | Error msg -> failwith msg

let run ~policy =
  let net = Net.create ~seed:7L () in
  let sw = Net.add_switch net in
  let client_host = Net.add_host net in
  let server_host = Net.add_host net in
  List.iter
    (fun h ->
      let p = Net.connect_host net h sw ~rate_bps:1e9 () in
      Switch.set_dst_route sw ~dst:(Host.id h) ~ports:[ p ])
    [ client_host; server_host ];
  let srv = Kv.server ~net ~host:(Host.id server_host) ~default_value_bytes:1000 () in
  let cl = Kv.client ~net ~server:srv ~host:(Host.id client_host) () in
  (* The controller programs the stage with Fig. 6-style GET/PUT rules. *)
  List.iter
    (fun (classifier_value, class_name) ->
      ignore
        (ok_or_die
           (Stage.Api.create_stage_rule (Kv.stage cl) ~ruleset:"r1"
              ~classifier:[ ("msg_type", Classifier.eq_str classifier_value) ]
              ~class_name
              ~metadata_fields:[ "msg_type"; "msg_size" ])))
    [ ("GET", "GET"); ("PUT", "PUT") ];
  if policy then begin
    let e = Enclave.create ~host:(Host.id client_host) () in
    ok_or_die
      (Eden_functions.App_priority.install e ~match_msg_type:"GET" ~match_priority:6
         ~other_priority:1);
    Host.set_enclave client_host e
  end;
  (* Two endless bulk PUT streams keep the uplink saturated. *)
  let rec put_loop key () =
    Kv.put cl ~key ~size:500_000 ~on_reply:(fun _ -> put_loop key ()) ()
  in
  put_loop "backup:a" ();
  put_loop "backup:b" ();
  (* Interactive GETs every 3 ms. *)
  let rec get_loop i =
    if i < 30 then
      Event.schedule_at (Net.event net) (Time.mul (Time.ms 3) i) (fun () ->
          Kv.get cl ~key:"session:42" ();
          get_loop (i + 1))
  in
  get_loop 1;
  Net.run ~until:(Time.ms 120) net;
  let lats = Stats.Samples.of_list (Kv.get_latencies_us cl) in
  (Stats.Samples.mean lats, Stats.Samples.percentile lats 95.0, Stats.Samples.count lats)

let () =
  Printf.printf
    "memcached GETs competing with bulk PUT uploads on a 1 Gbps uplink:\n\n";
  let fifo_avg, fifo_p95, n1 = run ~policy:false in
  let prio_avg, prio_p95, n2 = run ~policy:true in
  Printf.printf "  %-22s %12s %12s %6s\n" "" "GET avg" "GET p95" "n";
  Printf.printf "  %-22s %10.0fus %10.0fus %6d\n" "FIFO (no policy)" fifo_avg fifo_p95 n1;
  Printf.printf "  %-22s %10.0fus %10.0fus %6d\n" "GETs prioritized" prio_avg prio_p95 n2;
  Printf.printf
    "\nThe enclave classifies by the stage's message type and the GET path\n\
     never waits behind PUT bytes: a %.0fx improvement in mean GET latency.\n"
    (fifo_avg /. Float.max 1.0 prio_avg)
