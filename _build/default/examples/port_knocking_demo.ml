(* A stateful firewall at the end host (paper Table 1: port knocking).

   The action function keeps a per-source state machine in enclave global
   state: sources must knock on 7001, 7002, 7003 (in order) before port
   22 opens for them.  This is the paper's example of a function that
   OpenFlow-style match-action data planes cannot express but Eden runs
   out of the box.

   Run with: dune exec examples/port_knocking_demo.exe *)

module Enclave = Eden_enclave.Enclave
module Addr = Eden_base.Addr
module Packet = Eden_base.Packet
module Time = Eden_base.Time
module PK = Eden_functions.Port_knocking

let knocks = [ 7001; 7002; 7003 ]
let protected_port = 22

let () =
  let enclave = Enclave.create ~host:0 () in
  (match PK.install enclave ~knocks ~protected_port ~max_hosts:32 with
  | Ok () -> ()
  | Error msg -> failwith msg);
  Printf.printf "Firewall: knock on %s to open port %d\n\n"
    (String.concat ", " (List.map string_of_int knocks))
    protected_port;
  Printf.printf "The action function:\n%s\n\n" (Eden_lang.Pretty.action_to_string PK.action);
  let now = ref 0 in
  let send ~src ~dst_port =
    incr now;
    let pkt =
      Packet.make ~id:(Int64.of_int !now)
        ~flow:
          (Addr.five_tuple ~src:(Addr.endpoint src (30_000 + !now))
             ~dst:(Addr.endpoint 9 dst_port) ~proto:Addr.Tcp)
        ~kind:Packet.Data ~payload:64 ()
    in
    let verdict =
      match Enclave.process enclave ~now:(Time.us !now) pkt with
      | Enclave.Forward _ -> "forwarded"
      | Enclave.Dropped _ -> "DROPPED"
    in
    Printf.printf "  host %d -> port %-5d %-10s (knock state now %s)\n" src dst_port
      verdict
      (match PK.knock_state enclave ~src () with
      | Some s -> Int64.to_string s
      | None -> "?")
  in
  Printf.printf "An attacker tries port %d directly:\n" protected_port;
  send ~src:5 ~dst_port:protected_port;
  Printf.printf "\nA legitimate client knocks, then connects:\n";
  send ~src:3 ~dst_port:7001;
  send ~src:3 ~dst_port:7002;
  send ~src:3 ~dst_port:7003;
  send ~src:3 ~dst_port:protected_port;
  Printf.printf "\nThe attacker knocks in the wrong order:\n";
  send ~src:5 ~dst_port:7001;
  send ~src:5 ~dst_port:7003;
  send ~src:5 ~dst_port:protected_port;
  Printf.printf "\nOther traffic is never disturbed:\n";
  send ~src:5 ~dst_port:80
