(* Quickstart: the whole Eden pipeline on one page.

   1. A memcached application becomes a *stage*: the controller programs
      it with classification rules (the paper's Fig. 6).
   2. The end host's *enclave* is programmed with an action function,
      written in the DSL and compiled to bytecode, that prioritizes GETs
      over PUTs.
   3. Packets carrying stage metadata flow through the enclave and come
      out with 802.1q priorities set.

   Run with: dune exec examples/quickstart.exe *)

module Metadata = Eden_base.Metadata
module Addr = Eden_base.Addr
module Packet = Eden_base.Packet
module Time = Eden_base.Time
module Stage = Eden_stage.Stage
module Builtin = Eden_stage.Builtin
module Classifier = Eden_stage.Classifier
module Enclave = Eden_enclave.Enclave
module Pattern = Eden_base.Class_name.Pattern

let ok_or_die = function Ok v -> v | Error msg -> failwith msg

let () =
  (* --- 1. The stage -------------------------------------------------- *)
  let memcached = Builtin.memcached () in
  Printf.printf "Stage info (the controller's S0 getStageInfo call):\n";
  let info = Stage.Api.get_stage_info memcached in
  Printf.printf "  classifiers: %s\n  metadata:    %s\n\n"
    (String.concat ", " info.Stage.classifier_fields)
    (String.concat ", " info.Stage.metadata_fields);
  (* Fig. 6's rule-set r1: GETs and PUTs. *)
  let rule op =
    ignore
      (ok_or_die
         (Stage.Api.create_stage_rule memcached ~ruleset:"r1"
            ~classifier:[ ("msg_type", Classifier.eq_str op) ]
            ~class_name:op
            ~metadata_fields:[ "msg_type"; "msg_size" ]))
  in
  rule "GET";
  rule "PUT";

  (* --- 2. The enclave and the action function ------------------------ *)
  let enclave = Enclave.create ~host:1 () in
  (* The action function in the DSL: GETs (latency-sensitive) go out at
     priority 6; PUTs at priority 2. *)
  let schema =
    Eden_lang.Schema.with_standard_packet ~message:[ Eden_lang.Schema.field "IsGet" ] ()
  in
  let action =
    let open Eden_lang.Dsl in
    action "prioritize_gets"
      (if_ (msg "IsGet" = int 1)
         (set_pkt "Priority" (int 6))
         (set_pkt "Priority" (int 2)))
  in
  Printf.printf "The action function (F#-style, as the operator writes it):\n%s\n\n"
    (Eden_lang.Pretty.action_to_string action);
  let program = ok_or_die (Result.map_error Eden_lang.Compile.error_to_string
    (Eden_lang.Compile.compile schema action)) in
  Printf.printf "Compiled to %d bytecode instructions; verified.\n\n"
    (Array.length program.Eden_bytecode.Program.code);
  ok_or_die
    (Enclave.install_action enclave
       {
         Enclave.i_name = "prioritize_gets";
         i_impl = Enclave.Interpreted program;
         i_msg_sources = [ ("IsGet", Enclave.Metadata_flag ("msg_type", "GET")) ];
       });
  (* Match-action rule: any memcached class triggers the action. *)
  ignore
    (ok_or_die
       (Enclave.add_table_rule enclave
          ~pattern:(Option.get (Pattern.of_string "memcached.*.*"))
          ~action:"prioritize_gets" ()));

  (* --- 3. Traffic ----------------------------------------------------- *)
  let flow =
    Addr.five_tuple ~src:(Addr.endpoint 1 4242) ~dst:(Addr.endpoint 2 11211)
      ~proto:Addr.Tcp
  in
  let send op key size i =
    (* The application classifies its message through the stage... *)
    let md = Stage.classify memcached (Builtin.memcached_descriptor ~op ~key ~size) in
    (* ...and the metadata rides along with every packet of the message. *)
    let pkt =
      Packet.make ~id:(Int64.of_int i) ~flow ~kind:Packet.Data ~payload:size ~metadata:md ()
    in
    (match Enclave.process enclave ~now:(Time.us i) pkt with
    | Enclave.Forward _ -> ()
    | Enclave.Dropped reason -> Printf.printf "  dropped: %s\n" reason);
    Printf.printf "  %-4s %-8s -> classes [%s], priority %d\n"
      (match op with `Get -> "GET" | `Put -> "PUT")
      key
      (String.concat "; "
         (List.map Eden_base.Class_name.to_string (Metadata.classes pkt.Packet.metadata)))
      pkt.Packet.priority
  in
  Printf.printf "Traffic through the enclave:\n";
  send `Get "user:17" 120 1;
  send `Put "user:17" 4096 2;
  send `Get "cart:9" 80 3;
  send `Put "cart:9" 2048 4;
  let c = Enclave.counters enclave in
  Printf.printf
    "\nEnclave counters: %d packets, %d action invocations, %d interpreter steps\n"
    c.Enclave.packets c.Enclave.invocations c.Enclave.interp_steps
