(* Replica selection à la mcrouter (paper §2.1.1 and Table 1).

   The memcached stage attaches each request's key hash; the enclave's
   action function picks a replica deterministically from the hash and
   label-routes the packets there (the paper's SPAIN/MPLS-style source
   routing).  All packets of one message reach the same replica, and keys
   spread across the pool.

   Run with: dune exec examples/replica_selection.exe *)

module Net = Eden_netsim.Net
module Host = Eden_netsim.Host
module Switch = Eden_netsim.Switch
module Link = Eden_netsim.Link
module Enclave = Eden_enclave.Enclave
module Stage = Eden_stage.Stage
module Builtin = Eden_stage.Builtin
module Addr = Eden_base.Addr
module Packet = Eden_base.Packet
module Time = Eden_base.Time

let n_replicas = 3

let () =
  let net = Net.create ~seed:42L () in
  let sw = Net.add_switch net in
  let client = Net.add_host net in
  let replicas = List.init n_replicas (fun _ -> Net.add_host net) in
  let client_port = Net.connect_host net client sw ~rate_bps:10e9 () in
  Switch.set_dst_route sw ~dst:(Host.id client) ~ports:[ client_port ];
  let replica_ports =
    List.map
      (fun r ->
        let p = Net.connect_host net r sw ~rate_bps:10e9 () in
        Switch.set_dst_route sw ~dst:(Host.id r) ~ports:[ p ];
        p)
      replicas
  in
  (* Labels 301.. steer to the replicas. *)
  let labels = List.mapi (fun i _ -> 301 + i) replicas in
  List.iter2 (fun label port -> Switch.set_label_route sw ~label ~port) labels replica_ports;
  (* Client-side enclave with the replica-selection action. *)
  let enclave = Enclave.create ~host:(Host.id client) () in
  (match
     Eden_functions.Replica_select.install enclave
       ~replica_labels:(Array.of_list labels)
   with
  | Ok () -> ()
  | Error msg -> failwith msg);
  Host.set_enclave client enclave;
  (* The memcached stage, programmed to tag GETs with their key hash. *)
  let stage = Builtin.memcached () in
  (match
     Stage.Api.create_stage_rule stage ~ruleset:"r1" ~classifier:[] ~class_name:"GET"
       ~metadata_fields:[ "key"; "key_hash"; "msg_size" ]
   with
  | Ok _ -> ()
  | Error msg -> failwith msg);
  (* Issue GETs for a keyspace; every key's packets are steered by hash. *)
  let keys = List.init 30 (fun i -> Printf.sprintf "user:%d" i) in
  let label_of_key = Hashtbl.create 32 in
  List.iteri
    (fun i key ->
      let md =
        Stage.classify stage (Builtin.memcached_descriptor ~op:`Get ~key ~size:100)
      in
      let pkt =
        Packet.make ~id:(Int64.of_int i)
          ~flow:
            (Addr.five_tuple
               ~src:(Addr.endpoint (Host.id client) (20_000 + i))
               ~dst:(Addr.endpoint 99 11211) ~proto:Addr.Tcp)
          ~kind:Packet.Data ~payload:100 ~metadata:md ()
      in
      Host.transmit client pkt;
      Hashtbl.replace label_of_key key pkt.Packet.route_label)
    keys;
  Net.run net;
  Printf.printf "GETs steered by key hash across %d replicas:\n\n" n_replicas;
  List.iter
    (fun key ->
      match Hashtbl.find label_of_key key with
      | Some label -> Printf.printf "  %-10s -> replica label %d\n" key label
      | None -> Printf.printf "  %-10s -> (unrouted)\n" key)
    (List.filteri (fun i _ -> i < 8) keys);
  Printf.printf "  ...\n\nPackets received per replica:\n";
  List.iteri
    (fun i p ->
      Printf.printf "  replica %d (label %d): %d packets\n" i (301 + i)
        (Link.stats (Switch.port sw p)).Link.tx_packets)
    replica_ports;
  (* Determinism check: re-classifying the same key steers identically. *)
  let md = Stage.classify stage (Builtin.memcached_descriptor ~op:`Get ~key:"user:0" ~size:100) in
  let pkt =
    Packet.make ~id:999L
      ~flow:
        (Addr.five_tuple ~src:(Addr.endpoint (Host.id client) 30_000)
           ~dst:(Addr.endpoint 99 11211) ~proto:Addr.Tcp)
      ~kind:Packet.Data ~payload:100 ~metadata:md ()
  in
  ignore (Enclave.process enclave ~now:(Time.ms 1) pkt);
  Printf.printf "\nuser:0 routes to label %s again — same key, same replica.\n"
    (match pkt.Packet.route_label with Some l -> string_of_int l | None -> "?")
