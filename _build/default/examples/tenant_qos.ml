(* Tenant-level storage QoS with Pulsar (paper case study 3, §5.3).

   Two tenants share a storage server: one READs, one WRITEs, 64 KB IOs.
   Without control, cheap-to-send READ requests flood the server's IO
   queue and starve WRITEs; Pulsar's action function charges READs by
   operation size at each client's rate limiter and restores balance.

   Run with: dune exec examples/tenant_qos.exe *)

module Fig11 = Eden_experiments.Fig11

let () =
  Printf.printf
    "Two tenants, one storage server behind a 1 Gbps link, 64 KB IOs.\n\n";
  let params =
    { Fig11.default_params with duration = Eden_base.Time.ms 300 }
  in
  let results = Fig11.run_all ~params () in
  Fig11.print results;
  let find m engine =
    List.find (fun r -> r.Fig11.mode = m && r.Fig11.engine = engine) results
  in
  let sim = find Fig11.Simultaneous None in
  let ctl = find Fig11.Rate_controlled (Some Fig11.Eden) in
  Printf.printf
    "\nUncontrolled, WRITEs get %.0f MB/s while READs get %.0f MB/s;\n"
    sim.Fig11.write_mbps sim.Fig11.read_mbps;
  Printf.printf "with Pulsar rate control both tenants get ~%.0f MB/s.\n"
    ((ctl.Fig11.read_mbps +. ctl.Fig11.write_mbps) /. 2.0)
