lib/base/addr.ml: Format Hashtbl Map
