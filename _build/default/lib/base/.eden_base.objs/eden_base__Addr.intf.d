lib/base/addr.mli: Format Hashtbl Map
