lib/base/class_name.ml: Format Map Printf Set Stdlib String
