lib/base/class_name.mli: Format Map Set
