lib/base/dist.ml: Array Float List Rng Time
