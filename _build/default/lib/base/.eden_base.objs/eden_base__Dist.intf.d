lib/base/dist.mli: Rng Time
