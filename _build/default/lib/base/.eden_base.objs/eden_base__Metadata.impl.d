lib/base/metadata.ml: Class_name Format Int64 List Map String
