lib/base/metadata.mli: Class_name Format
