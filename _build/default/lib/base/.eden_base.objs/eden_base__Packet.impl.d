lib/base/packet.ml: Addr Format Metadata Printf
