lib/base/packet.mli: Addr Format Metadata
