lib/base/rng.mli:
