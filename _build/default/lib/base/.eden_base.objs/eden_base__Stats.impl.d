lib/base/stats.ml: Array Float List Stdlib Time
