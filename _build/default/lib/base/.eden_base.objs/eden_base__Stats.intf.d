lib/base/stats.mli: Time
