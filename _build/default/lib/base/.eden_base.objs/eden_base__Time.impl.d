lib/base/time.ml: Float Format Int64 Stdlib
