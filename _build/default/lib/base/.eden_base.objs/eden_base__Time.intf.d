lib/base/time.mli: Format
