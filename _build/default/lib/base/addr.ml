type host = int
type port = int
type proto = Tcp | Udp

let proto_to_string = function Tcp -> "tcp" | Udp -> "udp"

let proto_of_string = function
  | "tcp" -> Some Tcp
  | "udp" -> Some Udp
  | _ -> None

type endpoint = { host : host; port : port }

let endpoint host port = { host; port }
let pp_endpoint fmt e = Format.fprintf fmt "h%d:%d" e.host e.port

type five_tuple = { src : endpoint; dst : endpoint; proto : proto }

let five_tuple ~src ~dst ~proto = { src; dst; proto }
let reverse t = { t with src = t.dst; dst = t.src }

let compare_five_tuple a b =
  let c = compare a.src b.src in
  if c <> 0 then c
  else
    let c = compare a.dst b.dst in
    if c <> 0 then c else compare a.proto b.proto

let equal_five_tuple a b = compare_five_tuple a b = 0

(* FNV-1a over the tuple fields; deterministic across runs, unlike
   [Hashtbl.hash] on boxed values it is explicit about what is mixed. *)
let hash_five_tuple t =
  let fnv h x =
    let h = h lxor (x land 0xffff) in
    let h = h * 0x01000193 land max_int in
    let h = h lxor (x lsr 16) in
    h * 0x01000193 land max_int
  in
  let h = 0x811c9dc5 in
  let h = fnv h t.src.host in
  let h = fnv h t.src.port in
  let h = fnv h t.dst.host in
  let h = fnv h t.dst.port in
  fnv h (match t.proto with Tcp -> 6 | Udp -> 17)

let pp_five_tuple fmt t =
  Format.fprintf fmt "%a->%a/%s" pp_endpoint t.src pp_endpoint t.dst
    (proto_to_string t.proto)

module Flow_key = struct
  type t = five_tuple

  let compare = compare_five_tuple
end

module Flow_map = Map.Make (Flow_key)

module Flow_table = Hashtbl.Make (struct
  type t = five_tuple

  let equal = equal_five_tuple
  let hash = hash_five_tuple
end)
