(** Network endpoints.

    Hosts in the simulated datacenter are identified by small integers; an
    endpoint is a host plus a port.  The classic IP five-tuple is the flow
    key used by the enclave's built-in packet classifier. *)

type host = int
(** Identifier of a simulated host (also used as its "IP address"). *)

type port = int

type proto = Tcp | Udp

val proto_to_string : proto -> string
val proto_of_string : string -> proto option

type endpoint = { host : host; port : port }

val endpoint : host -> port -> endpoint
val pp_endpoint : Format.formatter -> endpoint -> unit

type five_tuple = {
  src : endpoint;
  dst : endpoint;
  proto : proto;
}

val five_tuple : src:endpoint -> dst:endpoint -> proto:proto -> five_tuple

val reverse : five_tuple -> five_tuple
(** Swap source and destination (the key of reply traffic). *)

val compare_five_tuple : five_tuple -> five_tuple -> int
val equal_five_tuple : five_tuple -> five_tuple -> bool
val hash_five_tuple : five_tuple -> int
(** Deterministic hash used by ECMP-style switches. *)

val pp_five_tuple : Format.formatter -> five_tuple -> unit

module Flow_map : Map.S with type key = five_tuple
module Flow_table : Hashtbl.S with type key = five_tuple
