type t = { stage : string; ruleset : string; name : string }

let valid_component s = s <> "" && not (String.contains s '.')

let v ~stage ~ruleset ~name =
  if not (valid_component stage && valid_component ruleset && valid_component name)
  then invalid_arg "Class_name.v: components must be non-empty and dot-free";
  { stage; ruleset; name }

let to_string c = Printf.sprintf "%s.%s.%s" c.stage c.ruleset c.name

let of_string s =
  match String.split_on_char '.' s with
  | [ stage; ruleset; name ]
    when valid_component stage && valid_component ruleset && valid_component name ->
    Some { stage; ruleset; name }
  | _ -> None

let compare = Stdlib.compare
let equal a b = compare a b = 0
let pp fmt c = Format.pp_print_string fmt (to_string c)

module Pattern = struct
  type class_name = t
  type component = Exact of string | Any
  type t = { stage : component; ruleset : component; name : component }

  let exact (c : class_name) =
    { stage = Exact c.stage; ruleset = Exact c.ruleset; name = Exact c.name }

  let any = { stage = Any; ruleset = Any; name = Any }

  let component_of_string = function
    | "*" -> Some Any
    | s when valid_component s -> Some (Exact s)
    | _ -> None

  let of_string s =
    match String.split_on_char '.' s with
    | [ a; b; c ] -> (
      match (component_of_string a, component_of_string b, component_of_string c) with
      | Some stage, Some ruleset, Some name -> Some { stage; ruleset; name }
      | _ -> None)
    | _ -> None

  let component_to_string = function Exact s -> s | Any -> "*"

  let to_string p =
    Printf.sprintf "%s.%s.%s"
      (component_to_string p.stage)
      (component_to_string p.ruleset)
      (component_to_string p.name)

  let component_matches c s =
    match c with Any -> true | Exact e -> String.equal e s

  let matches p (c : class_name) =
    component_matches p.stage c.stage
    && component_matches p.ruleset c.ruleset
    && component_matches p.name c.name

  let specificity p =
    let one = function Exact _ -> 1 | Any -> 0 in
    one p.stage + one p.ruleset + one p.name
end

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)
