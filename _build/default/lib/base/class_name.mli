(** Fully qualified traffic classes.

    Externally to a stage, a class is referred to as
    [stage.rule_set.class_name] (paper §3.3), e.g. [memcached.r1.GET].
    Enclave match-action tables match on these names, possibly with
    wildcards on any component. *)

type t = private { stage : string; ruleset : string; name : string }

val v : stage:string -> ruleset:string -> name:string -> t

val to_string : t -> string
(** [to_string c] is ["stage.ruleset.name"]. *)

val of_string : string -> t option
(** Parses ["stage.ruleset.name"]; [None] if not exactly three non-empty
    dot-separated components. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

(** Patterns over class names, for match-action tables. Each component is
    either exact or the wildcard [*]. *)
module Pattern : sig
  type class_name := t

  type component = Exact of string | Any
  type t = { stage : component; ruleset : component; name : component }

  val exact : class_name -> t
  (** Pattern matching exactly one class. *)

  val any : t
  (** Matches every class. *)

  val of_string : string -> t option
  (** ["memcached.r1.*"], ["*.*.GET"], … *)

  val to_string : t -> string
  val matches : t -> class_name -> bool

  val specificity : t -> int
  (** Number of exact components (0–3); used to order table rules from most
      to least specific. *)
end

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
