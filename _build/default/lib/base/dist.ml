module Zipf = struct
  type t = { cdf : float array }

  let create ~n ~alpha =
    if n <= 0 then invalid_arg "Zipf.create: n must be positive";
    let w = Array.init n (fun i -> 1.0 /. Float.pow (float_of_int (i + 1)) alpha) in
    let total = Array.fold_left ( +. ) 0.0 w in
    let acc = ref 0.0 in
    let cdf =
      Array.map
        (fun x ->
          acc := !acc +. (x /. total);
          !acc)
        w
    in
    cdf.(n - 1) <- 1.0;
    { cdf }

  let sample t rng =
    let u = Rng.float rng 1.0 in
    (* Binary search for the first index with cdf >= u. *)
    let lo = ref 0 and hi = ref (Array.length t.cdf - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if t.cdf.(mid) >= u then hi := mid else lo := mid + 1
    done;
    !lo
end

module Empirical_cdf = struct
  type t = { values : float array; probs : float array }

  let create points =
    if points = [] then invalid_arg "Empirical_cdf.create: empty";
    let values = Array.of_list (List.map fst points) in
    let probs = Array.of_list (List.map snd points) in
    let n = Array.length probs in
    for i = 1 to n - 1 do
      if probs.(i) < probs.(i - 1) || values.(i) < values.(i - 1) then
        invalid_arg "Empirical_cdf.create: points must be non-decreasing"
    done;
    if abs_float (probs.(n - 1) -. 1.0) > 1e-9 then
      invalid_arg "Empirical_cdf.create: cdf must end at 1.0";
    { values; probs }

  let quantile t u =
    let u = Float.min 1.0 (Float.max 0.0 u) in
    let n = Array.length t.probs in
    if u <= t.probs.(0) then t.values.(0)
    else begin
      (* First index with probs >= u. *)
      let lo = ref 0 and hi = ref (n - 1) in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if t.probs.(mid) >= u then hi := mid else lo := mid + 1
      done;
      let i = !lo in
      let p0 = t.probs.(i - 1) and p1 = t.probs.(i) in
      let v0 = t.values.(i - 1) and v1 = t.values.(i) in
      if p1 -. p0 <= 0.0 then v1 else v0 +. ((u -. p0) /. (p1 -. p0) *. (v1 -. v0))
    end

  let sample t rng = quantile t (Rng.float rng 1.0)

  let mean t =
    let n = Array.length t.probs in
    let acc = ref (t.values.(0) *. t.probs.(0)) in
    for i = 1 to n - 1 do
      let dp = t.probs.(i) -. t.probs.(i - 1) in
      acc := !acc +. (dp *. (t.values.(i) +. t.values.(i - 1)) /. 2.0)
    done;
    !acc
end

module Pareto = struct
  type t = { xmin : float; xmax : float; alpha : float }

  let create ~xmin ~xmax ~alpha =
    if xmin <= 0.0 || xmax < xmin || alpha <= 0.0 then
      invalid_arg "Pareto.create: need 0 < xmin <= xmax and alpha > 0";
    { xmin; xmax; alpha }

  let sample t rng =
    let u = Rng.float rng 1.0 in
    let la = Float.pow t.xmin t.alpha and ha = Float.pow t.xmax t.alpha in
    Float.pow (-.((u *. ha) -. (u *. la) -. ha) /. (ha *. la)) (-1.0 /. t.alpha)
end

let poisson_gap rng ~rate_per_sec =
  if rate_per_sec <= 0.0 then invalid_arg "Dist.poisson_gap: rate must be positive";
  Time.of_float_ns (Rng.exponential rng (1e9 /. rate_per_sec))
