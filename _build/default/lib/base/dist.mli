(** Samplers for workload generation. *)

(** Zipf-distributed ranks, the classic model for key popularity in
    key-value stores. *)
module Zipf : sig
  type t

  val create : n:int -> alpha:float -> t
  (** Ranks [0 .. n-1]; [alpha] is the skew (1.0 ≈ classic Zipf). *)

  val sample : t -> Rng.t -> int
end

(** Piecewise-linear empirical CDF, used for flow-size distributions
    published as (size, cumulative probability) points. *)
module Empirical_cdf : sig
  type t

  val create : (float * float) list -> t
  (** Points as [(value, cdf)] with cdf non-decreasing, ending at 1.0.
      @raise Invalid_argument on an empty or non-monotone list. *)

  val sample : t -> Rng.t -> float
  (** Inverse-transform sampling with linear interpolation. *)

  val quantile : t -> float -> float
  (** [quantile t u] for [u] in [0,1]. *)

  val mean : t -> float
  (** Mean of the piecewise-linear distribution. *)
end

(** Bounded Pareto, a standard heavy-tailed flow-size model. *)
module Pareto : sig
  type t

  val create : xmin:float -> xmax:float -> alpha:float -> t
  val sample : t -> Rng.t -> float
end

val poisson_gap : Rng.t -> rate_per_sec:float -> Time.t
(** Inter-arrival gap of a Poisson process with the given rate. *)
