type kind = Syn | Syn_ack | Data | Ack | Fin

let kind_to_string = function
  | Syn -> "SYN"
  | Syn_ack -> "SYN-ACK"
  | Data -> "DATA"
  | Ack -> "ACK"
  | Fin -> "FIN"

type t = {
  id : int64;
  flow : Addr.five_tuple;
  kind : kind;
  seq : int;
  ack : int;
  payload : int;
  header : int;
  mutable priority : int;
  mutable route_label : int option;
  mutable ecn : bool;
  mutable metadata : Metadata.t;
}

let default_header_bytes = 58

let make ~id ~flow ~kind ?(seq = 0) ?(ack = 0) ?(payload = 0)
    ?(header = default_header_bytes) ?(priority = 0) ?(metadata = Metadata.empty) () =
  if payload < 0 then invalid_arg "Packet.make: negative payload";
  if priority < 0 || priority > 7 then invalid_arg "Packet.make: priority out of range";
  {
    id;
    flow;
    kind;
    seq;
    ack;
    payload;
    header;
    priority;
    route_label = None;
    ecn = false;
    metadata;
  }

let wire_size p = p.payload + p.header
let is_data p = match p.kind with Data -> true | Syn | Syn_ack | Ack | Fin -> false
let end_seq p = p.seq + p.payload

let pp fmt p =
  Format.fprintf fmt "@[<h>#%Ld %a %s seq=%d ack=%d len=%d prio=%d%s@]" p.id
    Addr.pp_five_tuple p.flow (kind_to_string p.kind) p.seq p.ack p.payload p.priority
    (match p.route_label with Some l -> Printf.sprintf " label=%d" l | None -> "")
