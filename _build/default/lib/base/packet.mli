(** Network packets.

    The unit the enclave and the simulated network operate on.  Fields that
    an action function may rewrite ([priority], [route_label], the drop
    disposition) are mutable; identity and addressing are not.  The
    [metadata] field carries the stage-assigned classes and message
    metadata down the host stack, mirroring the paper's extended send path
    (§4.2). *)

type kind = Syn | Syn_ack | Data | Ack | Fin

val kind_to_string : kind -> string

type t = {
  id : int64;  (** Unique per simulation; assigned by the sender. *)
  flow : Addr.five_tuple;
  kind : kind;
  seq : int;  (** First payload byte's sequence number. *)
  ack : int;  (** Cumulative acknowledgement (bytes). *)
  payload : int;  (** Payload bytes. *)
  header : int;  (** Header bytes on the wire. *)
  mutable priority : int;  (** 802.1q PCP, 0 (lowest) – 7 (highest). *)
  mutable route_label : int option;
      (** VLAN-style source-routing label consumed by switches. *)
  mutable ecn : bool;
  mutable metadata : Metadata.t;
}

val default_header_bytes : int
(** Ethernet + IPv4 + TCP framing: 54 bytes plus the 4-byte 802.1q tag. *)

val make :
  id:int64 ->
  flow:Addr.five_tuple ->
  kind:kind ->
  ?seq:int ->
  ?ack:int ->
  ?payload:int ->
  ?header:int ->
  ?priority:int ->
  ?metadata:Metadata.t ->
  unit ->
  t

val wire_size : t -> int
(** Bytes occupying the link: [payload + header]. *)

val is_data : t -> bool
val end_seq : t -> int
(** [seq + payload]. *)

val pp : Format.formatter -> t -> unit
