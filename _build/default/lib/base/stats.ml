module Summary = struct
  type t = {
    mutable n : int;
    mutable mean : float;
    mutable m2 : float;
    mutable min : float;
    mutable max : float;
  }

  let create () = { n = 0; mean = 0.0; m2 = 0.0; min = infinity; max = neg_infinity }

  let add t x =
    t.n <- t.n + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if x < t.min then t.min <- x;
    if x > t.max then t.max <- x

  let count t = t.n
  let mean t = if t.n = 0 then 0.0 else t.mean
  let variance t = if t.n < 2 then 0.0 else t.m2 /. float_of_int (t.n - 1)
  let stddev t = sqrt (variance t)
  let min t = if t.n = 0 then 0.0 else t.min
  let max t = if t.n = 0 then 0.0 else t.max

  let merge a b =
    if a.n = 0 then { b with n = b.n }
    else if b.n = 0 then { a with n = a.n }
    else begin
      let n = a.n + b.n in
      let delta = b.mean -. a.mean in
      let mean = a.mean +. (delta *. float_of_int b.n /. float_of_int n) in
      let m2 =
        a.m2 +. b.m2
        +. (delta *. delta *. float_of_int a.n *. float_of_int b.n /. float_of_int n)
      in
      { n; mean; m2; min = Stdlib.min a.min b.min; max = Stdlib.max a.max b.max }
    end
end

module Samples = struct
  type t = { mutable data : float array; mutable n : int; mutable sorted : bool }

  let create () = { data = Array.make 64 0.0; n = 0; sorted = false }

  let add t x =
    if t.n = Array.length t.data then begin
      let bigger = Array.make (2 * t.n) 0.0 in
      Array.blit t.data 0 bigger 0 t.n;
      t.data <- bigger
    end;
    t.data.(t.n) <- x;
    t.n <- t.n + 1;
    t.sorted <- false

  let of_list xs =
    let t = create () in
    List.iter (add t) xs;
    t

  let count t = t.n
  let to_array t = Array.sub t.data 0 t.n

  let mean t =
    if t.n = 0 then 0.0
    else begin
      let s = ref 0.0 in
      for i = 0 to t.n - 1 do
        s := !s +. t.data.(i)
      done;
      !s /. float_of_int t.n
    end

  let stddev t =
    if t.n < 2 then 0.0
    else begin
      let m = mean t in
      let s = ref 0.0 in
      for i = 0 to t.n - 1 do
        let d = t.data.(i) -. m in
        s := !s +. (d *. d)
      done;
      sqrt (!s /. float_of_int (t.n - 1))
    end

  let ensure_sorted t =
    if not t.sorted then begin
      let a = to_array t in
      Array.sort compare a;
      Array.blit a 0 t.data 0 t.n;
      t.sorted <- true
    end

  let percentile t p =
    if t.n = 0 then 0.0
    else begin
      ensure_sorted t;
      let p = Float.min 100.0 (Float.max 0.0 p) in
      let rank = p /. 100.0 *. float_of_int (t.n - 1) in
      let lo = int_of_float (floor rank) in
      let hi = int_of_float (ceil rank) in
      if lo = hi then t.data.(lo)
      else begin
        let frac = rank -. float_of_int lo in
        (t.data.(lo) *. (1.0 -. frac)) +. (t.data.(hi) *. frac)
      end
    end

  let ci95 t =
    if t.n < 2 then 0.0 else 1.96 *. stddev t /. sqrt (float_of_int t.n)
end

let mbps ~bytes_transferred ~duration =
  let secs = Time.to_sec duration in
  if secs <= 0.0 then 0.0 else float_of_int bytes_transferred *. 8.0 /. secs /. 1e6
