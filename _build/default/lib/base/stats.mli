(** Summary statistics for experiment reporting.

    The paper reports means with 95% confidence intervals and 95th
    percentiles (Figs. 9–12); this module provides exactly those, plus a
    streaming accumulator so long simulations do not have to retain every
    sample. *)

(** Streaming accumulator (Welford's algorithm). *)
module Summary : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  (** 0 when empty. *)

  val variance : t -> float
  (** Unbiased sample variance; 0 with fewer than two samples. *)

  val stddev : t -> float
  val min : t -> float
  val max : t -> float
  val merge : t -> t -> t
  (** Combine two accumulators (e.g. across experiment runs). *)
end

(** Retains all samples; supports percentiles. *)
module Samples : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val of_list : float list -> t
  val count : t -> int
  val to_array : t -> float array
  val mean : t -> float
  val stddev : t -> float
  val percentile : t -> float -> float
  (** [percentile t 95.0] with linear interpolation; 0 when empty. *)

  val ci95 : t -> float
  (** Half-width of the normal-approximation 95% confidence interval of the
      mean: [1.96 * stddev / sqrt count]; 0 with fewer than two samples. *)
end

val mbps : bytes_transferred:int -> duration:Time.t -> float
(** Goodput in megabits per second; 0 for a non-positive duration. *)
