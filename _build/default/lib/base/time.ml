type t = int64

let zero = 0L
let ns x = Int64.of_int x
let us x = Int64.mul (Int64.of_int x) 1_000L
let ms x = Int64.mul (Int64.of_int x) 1_000_000L
let sec x = Int64.of_float (x *. 1e9)
let add = Int64.add
let sub = Int64.sub
let mul t k = Int64.mul t (Int64.of_int k)
let div t k = Int64.div t (Int64.of_int k)
let max = Stdlib.max
let min = Stdlib.min
let compare = Int64.compare
let ( <= ) a b = Int64.compare a b <= 0
let ( < ) a b = Int64.compare a b < 0
let ( >= ) a b = Int64.compare a b >= 0
let ( > ) a b = Int64.compare a b > 0
let to_ns t = t
let to_us t = Int64.to_float t /. 1e3
let to_ms t = Int64.to_float t /. 1e6
let to_sec t = Int64.to_float t /. 1e9
let of_float_ns f = Int64.of_float (Float.round f)

let pp fmt t =
  let f = Int64.to_float t in
  let open Stdlib in
  if Float.abs f >= 1e9 then Format.fprintf fmt "%.3fs" (f /. 1e9)
  else if Float.abs f >= 1e6 then Format.fprintf fmt "%.3fms" (f /. 1e6)
  else if Float.abs f >= 1e3 then Format.fprintf fmt "%.3fus" (f /. 1e3)
  else Format.fprintf fmt "%Ldns" t
