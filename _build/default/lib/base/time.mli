(** Simulated time.

    All simulator clocks are expressed in integer nanoseconds so that
    serialization delays on 10 Gbps links (0.8 ns per byte) stay exact.
    Values are plain [int64] wrapped in a private-like interface to keep
    unit errors out of the rest of the code base. *)

type t = int64
(** A point in time, or a duration, in nanoseconds. *)

val zero : t
val ns : int -> t
val us : int -> t
val ms : int -> t
val sec : float -> t

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> int -> t
val div : t -> int -> t
val max : t -> t -> t
val min : t -> t -> t
val compare : t -> t -> int
val ( <= ) : t -> t -> bool
val ( < ) : t -> t -> bool
val ( >= ) : t -> t -> bool
val ( > ) : t -> t -> bool

val to_ns : t -> int64
val to_us : t -> float
val to_ms : t -> float
val to_sec : t -> float

val of_float_ns : float -> t
(** Round a float nanosecond count to the nearest tick. *)

val pp : Format.formatter -> t -> unit
(** Human-readable rendering with an adaptive unit (ns/us/ms/s). *)
