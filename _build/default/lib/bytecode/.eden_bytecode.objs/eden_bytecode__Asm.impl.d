lib/bytecode/asm.ml: Array List Map Opcode Printf String
