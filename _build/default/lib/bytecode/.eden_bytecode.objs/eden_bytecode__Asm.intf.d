lib/bytecode/asm.mli: Opcode
