lib/bytecode/codec.ml: Array Buffer Char Format Int32 Int64 Opcode Printf Program String
