lib/bytecode/codec.mli: Format Program
