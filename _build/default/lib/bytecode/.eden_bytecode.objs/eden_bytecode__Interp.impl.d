lib/bytecode/interp.ml: Array Eden_base Format Int64 Opcode Printf Program
