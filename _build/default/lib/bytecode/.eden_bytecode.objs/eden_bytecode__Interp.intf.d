lib/bytecode/interp.mli: Eden_base Format Program
