lib/bytecode/opcode.ml: Format Printf
