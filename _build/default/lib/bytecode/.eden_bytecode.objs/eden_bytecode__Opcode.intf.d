lib/bytecode/opcode.mli: Format
