lib/bytecode/program.ml: Array Format Opcode String
