lib/bytecode/program.mli: Format Opcode
