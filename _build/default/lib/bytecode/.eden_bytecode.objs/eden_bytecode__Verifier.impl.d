lib/bytecode/verifier.ml: Array Format Opcode Printf Program Queue Result
