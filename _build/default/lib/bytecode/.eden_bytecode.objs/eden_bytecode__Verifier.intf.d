lib/bytecode/verifier.mli: Format Program
