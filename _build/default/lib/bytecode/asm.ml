type item =
  | I of Opcode.t
  | Label of string
  | Jmp_l of string
  | Jz_l of string
  | Jnz_l of string

let assemble items =
  let module Smap = Map.Make (String) in
  (* First pass: label -> instruction index. *)
  let rec index acc pos = function
    | [] -> Ok acc
    | Label l :: rest ->
      if Smap.mem l acc then Error (Printf.sprintf "duplicate label %S" l)
      else index (Smap.add l pos acc) pos rest
    | (I _ | Jmp_l _ | Jz_l _ | Jnz_l _) :: rest -> index acc (pos + 1) rest
  in
  match index Smap.empty 0 items with
  | Error _ as e -> e
  | Ok labels -> (
    let resolve l =
      match Smap.find_opt l labels with
      | Some pos -> Ok pos
      | None -> Error (Printf.sprintf "undefined label %S" l)
    in
    let rec emit acc = function
      | [] -> Ok (Array.of_list (List.rev acc))
      | Label _ :: rest -> emit acc rest
      | I op :: rest -> emit (op :: acc) rest
      | Jmp_l l :: rest -> (
        match resolve l with
        | Ok t -> emit (Opcode.Jmp t :: acc) rest
        | Error _ as e -> e)
      | Jz_l l :: rest -> (
        match resolve l with
        | Ok t -> emit (Opcode.Jz t :: acc) rest
        | Error _ as e -> e)
      | Jnz_l l :: rest -> (
        match resolve l with
        | Ok t -> emit (Opcode.Jnz t :: acc) rest
        | Error _ as e -> e)
    in
    match emit [] items with Ok _ as ok -> ok | Error _ as e -> e)

let assemble_exn items =
  match assemble items with
  | Ok code -> code
  | Error msg -> invalid_arg ("Asm.assemble: " ^ msg)
