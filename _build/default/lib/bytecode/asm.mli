(** Label-based assembly.

    The compiler back-end and hand-written test programs emit a list of
    items with symbolic labels; [assemble] resolves them to absolute
    instruction indices. *)

type item =
  | I of Opcode.t  (** A concrete instruction (its target, if any, is absolute). *)
  | Label of string
  | Jmp_l of string
  | Jz_l of string
  | Jnz_l of string

val assemble : item list -> (Opcode.t array, string) result
(** Errors on undefined or duplicate labels. *)

val assemble_exn : item list -> Opcode.t array
(** @raise Invalid_argument on assembly errors (compiler-internal use). *)
