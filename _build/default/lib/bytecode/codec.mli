(** Binary serialization of compiled programs.

    The controller compiles action functions once and pushes the bytecode
    to every enclave (§3.4.3: "the same bytecode across platforms"); this
    codec defines that wire format.  Little-endian, length-prefixed,
    versioned:

    {v
    "EDBC" | version u8 | name | limits (4 x u32)
    | scalar slots | array slots | code
    v}

    Decoding validates structure but not semantics — run
    {!Verifier.verify} on the result before installing, exactly as the
    enclave API does. *)

val encode : Program.t -> string
(** Deterministic: equal programs encode to equal strings. *)

type error = { offset : int; message : string }

val error_to_string : error -> string
val pp_error : Format.formatter -> error -> unit

val decode : string -> (Program.t, error) result

val version : int
