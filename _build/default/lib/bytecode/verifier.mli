(** Static bytecode verification.

    Run by the enclave before installing a program (the controller may push
    programs at run time, so installation is the trust boundary).  The
    verifier guarantees that a verified program cannot: jump outside the
    code, underflow or overflow the operand stack, touch locals outside its
    frame, address a non-existent environment array slot, or write to a
    read-only slot.  Dynamic properties (division by zero, heap and step
    budgets, array bounds) remain interpreter checks. *)

type error =
  | Bad_jump of { pc : int; target : int }
  | Stack_underflow of { pc : int; depth : int }
  | Stack_overflow of { pc : int; depth : int; limit : int }
  | Inconsistent_stack of { pc : int; expected : int; found : int }
      (** Two control-flow paths reach [pc] with different stack depths. *)
  | Bad_local of { pc : int; index : int; n_locals : int }
  | Bad_array_slot of { pc : int; slot : int }
  | Readonly_write of { pc : int; slot : int; name : string }
  | Bad_limits of string
  | Empty_code

val error_to_string : error -> string
val pp_error : Format.formatter -> error -> unit

val verify : Program.t -> (unit, error) result

val max_stack_depth : Program.t -> (int, error) result
(** The statically computed maximum operand-stack depth. *)
