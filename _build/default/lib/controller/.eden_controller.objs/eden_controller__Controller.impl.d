lib/controller/controller.ml: Array Eden_base Eden_enclave Eden_stage Float Format Int64 List Printf Result String Topology
