lib/controller/controller.mli: Eden_base Eden_enclave Eden_stage Format Topology
