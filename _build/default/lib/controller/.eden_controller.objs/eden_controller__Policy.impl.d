lib/controller/policy.ml: Array Controller Eden_enclave Eden_functions Eden_stage List Pias Pulsar Sff String Wcmp
