lib/controller/policy.mli: Controller Topology
