lib/controller/topology.ml: Float List Map String
