lib/controller/topology.mli:
