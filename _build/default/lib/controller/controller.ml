module Enclave = Eden_enclave.Enclave
module Stage = Eden_stage.Stage

type t = {
  topo : Topology.t;
  mutable encls : Enclave.t list;  (* newest first *)
  mutable stgs : Stage.t list;
  mutable generation : int;
}

let create ?topology () =
  let topo = match topology with Some t -> t | None -> Topology.create () in
  { topo; encls = []; stgs = []; generation = 0 }

let topology t = t.topo
let register_enclave t e = t.encls <- e :: t.encls
let register_stage t s = t.stgs <- s :: t.stgs
let enclaves t = List.rev t.encls
let stages t = List.rev t.stgs
let find_stage t name = List.find_opt (fun s -> String.equal (Stage.name s) name) t.stgs
let generation t = t.generation

let bump t = t.generation <- t.generation + 1

(* Apply [f] to every enclave; on failure undo with [undo] on those
   already done. *)
let all_or_nothing t f undo =
  let rec go done_ = function
    | [] ->
      bump t;
      Ok ()
    | e :: rest -> (
      match f e with
      | Ok () -> go (e :: done_) rest
      | Error msg ->
        List.iter undo done_;
        Error msg)
  in
  go [] (enclaves t)

let install_action_everywhere t spec =
  all_or_nothing t
    (fun e -> Enclave.install_action e spec)
    (fun e -> ignore (Enclave.remove_action e spec.Enclave.i_name))

let add_rule_everywhere t ?table ~pattern ~action () =
  let installed = ref [] in
  all_or_nothing t
    (fun e ->
      match Enclave.add_table_rule e ?table ~pattern ~action () with
      | Ok rule_id ->
        installed := (e, rule_id) :: !installed;
        Ok ()
      | Error _ as err -> err)
    (fun e ->
      match List.assq_opt e !installed with
      | Some rule_id -> ignore (Enclave.remove_table_rule e ?table rule_id)
      | None -> ())

let set_global_everywhere t ~action name v =
  all_or_nothing t (fun e -> Enclave.set_global e ~action name v) (fun _ -> ())

let set_global_array_everywhere t ~action name arr =
  all_or_nothing t
    (fun e -> Enclave.set_global_array e ~action name (Array.copy arr))
    (fun _ -> ())

let program_stage t ~stage ~ruleset ~rules =
  match find_stage t stage with
  | None -> Error (Printf.sprintf "stage %S not registered" stage)
  | Some s ->
    let rec go = function
      | [] ->
        bump t;
        Ok ()
      | (classifier, class_name, metadata_fields) :: rest -> (
        match
          Stage.Api.create_stage_rule s ~ruleset ~classifier ~class_name ~metadata_fields
        with
        | Ok _ -> go rest
        | Error _ as err -> Result.map (fun _ -> ()) err)
    in
    go rules

type enclave_report = {
  er_host : Eden_base.Addr.host;
  er_placement : Enclave.placement;
  er_packets : int;
  er_invocations : int;
  er_dropped : int;
  er_faults : int;
  er_interp_steps : int;
  er_actions : string list;
  er_overhead_pct : float;
}

let collect_reports t =
  List.map
    (fun e ->
      let c = Enclave.counters e in
      {
        er_host = Enclave.host e;
        er_placement = Enclave.placement e;
        er_packets = c.Enclave.packets;
        er_invocations = c.Enclave.invocations;
        er_dropped = c.Enclave.dropped;
        er_faults = c.Enclave.faults;
        er_interp_steps = c.Enclave.interp_steps;
        er_actions = Enclave.action_names e;
        er_overhead_pct =
          Eden_enclave.Cost.Accum.overhead_pct (Enclave.cost e) ~api:true ~enclave:true
            ~interp:true;
      })
    (enclaves t)

let pp_reports fmt reports =
  Format.fprintf fmt "@[<v>%-6s %-4s %10s %10s %7s %7s %9s %7s  %s@,"
    "host" "plc" "packets" "invocs" "drops" "faults" "steps" "ovh%" "actions";
  List.iter
    (fun r ->
      Format.fprintf fmt "%-6d %-4s %10d %10d %7d %7d %9d %6.2f%%  %s@," r.er_host
        (Enclave.placement_to_string r.er_placement)
        r.er_packets r.er_invocations r.er_dropped r.er_faults r.er_interp_steps
        r.er_overhead_pct
        (String.concat "," r.er_actions))
    reports;
  Format.fprintf fmt "@]"

(* Equal-split quantile thresholds (the PIAS control plane recomputes
   these periodically from the observed flow-size distribution). *)
let pias_thresholds ~cdf ~levels =
  if levels < 2 then invalid_arg "Controller.pias_thresholds: need >= 2 levels";
  let dist = Eden_base.Dist.Empirical_cdf.create cdf in
  Array.init (levels - 1) (fun i ->
      let q = float_of_int (i + 1) /. float_of_int levels in
      Int64.of_float (Eden_base.Dist.Empirical_cdf.quantile dist q))

let wcmp_path_matrix t ~src ~dst ~labels =
  let weighted = Topology.wcmp_weights t.topo ~src ~dst in
  let entries =
    List.filter_map
      (fun (path, w) ->
        match
          List.find_opt (fun (p, _) -> List.equal String.equal p path) labels
        with
        | Some (_, label) -> Some (label, w)
        | None -> None)
      weighted
  in
  let arr = Array.make (2 * List.length entries) 0L in
  List.iteri
    (fun i (label, w) ->
      arr.(2 * i) <- Int64.of_int label;
      arr.((2 * i) + 1) <- Int64.of_float (Float.round (w *. 1000.0)))
    entries;
  arr
