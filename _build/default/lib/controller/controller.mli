(** The logically centralized Eden controller (paper §3.2).

    Holds global visibility (the {!Topology}), computes the slow-timescale
    state that data-plane functions consume (WCMP path matrices, PIAS
    priority thresholds), and programs stages (stage API) and enclaves
    (enclave API) across the fleet.  Pushes are applied to every
    registered enclave and stamped with a generation counter, giving the
    single-enforcement-point consistency story of §2.2. *)

type t

val create : ?topology:Topology.t -> unit -> t
val topology : t -> Topology.t

val register_enclave : t -> Eden_enclave.Enclave.t -> unit
val register_stage : t -> Eden_stage.Stage.t -> unit
val enclaves : t -> Eden_enclave.Enclave.t list
val stages : t -> Eden_stage.Stage.t list
val find_stage : t -> string -> Eden_stage.Stage.t option

val generation : t -> int
(** Incremented by every successful push. *)

(** {2 Enclave programming (broadcast)} *)

val install_action_everywhere :
  t -> Eden_enclave.Enclave.install_spec -> (unit, string) result
(** All-or-nothing across registered enclaves: on any failure, installs
    made so far are rolled back. *)

val add_rule_everywhere :
  t ->
  ?table:int ->
  pattern:Eden_base.Class_name.Pattern.t ->
  action:string ->
  unit ->
  (unit, string) result

val set_global_everywhere : t -> action:string -> string -> int64 -> (unit, string) result

val set_global_array_everywhere :
  t -> action:string -> string -> int64 array -> (unit, string) result
(** Each enclave receives its own copy of the array. *)

(** {2 Stage programming} *)

val program_stage :
  t ->
  stage:string ->
  ruleset:string ->
  rules:(Eden_stage.Classifier.t * string * string list) list ->
  (unit, string) result
(** Install [(classifier, class, metadata fields)] rules on a registered
    stage. *)

(** {2 Monitoring} *)

type enclave_report = {
  er_host : Eden_base.Addr.host;
  er_placement : Eden_enclave.Enclave.placement;
  er_packets : int;
  er_invocations : int;
  er_dropped : int;
  er_faults : int;
  er_interp_steps : int;
  er_actions : string list;
  er_overhead_pct : float;
      (** Eden components as % of vanilla per-packet cost (Fig. 12's metric). *)
}

val collect_reports : t -> enclave_report list
(** Poll every registered enclave's counters — the monitoring half of the
    controller loop (switch-style SNMP polling, §3.5, applied to hosts). *)

val pp_reports : Format.formatter -> enclave_report list -> unit

(** {2 Control-plane computations} *)

val pias_thresholds : cdf:(float * float) list -> levels:int -> int64 array
(** Demotion thresholds from a flow-size CDF: the equal-split quantile
    rule (level [i] of [levels] demotes at the [i/levels] quantile).
    Returns [levels - 1] increasing byte counts. *)

val wcmp_path_matrix :
  t -> src:Topology.node -> dst:Topology.node -> labels:(Topology.path * int) list ->
  int64 array
(** Flatten the topology's WCMP weights into the [(label, weight‰) ...]
    encoding the data-plane function reads: element [2i] is the route
    label of path [i], element [2i+1] its weight in parts per 1000.
    [labels] maps each path to the label the switches were programmed
    with; paths without a label are skipped. *)
