type node = string

module Smap = Map.Make (String)

type t = { mutable adj : float Smap.t Smap.t }

let create () = { adj = Smap.empty }

let add_node t n = if not (Smap.mem n t.adj) then t.adj <- Smap.add n Smap.empty t.adj

let add_link t a b ~capacity_bps =
  if capacity_bps <= 0.0 then invalid_arg "Topology.add_link: capacity must be positive";
  add_node t a;
  add_node t b;
  let link x y =
    t.adj <- Smap.update x (function
      | Some nbrs -> Some (Smap.add y capacity_bps nbrs)
      | None -> Some (Smap.singleton y capacity_bps))
      t.adj
  in
  link a b;
  link b a

let nodes t = List.map fst (Smap.bindings t.adj)

let neighbours t n =
  match Smap.find_opt n t.adj with Some nbrs -> Smap.bindings nbrs | None -> []

type path = node list

let simple_paths ?(max_hops = 8) t ~src ~dst =
  let results = ref [] in
  let rec dfs node visited acc hops =
    if String.equal node dst then results := List.rev acc :: !results
    else if hops < max_hops then
      List.iter
        (fun (next, _) ->
          if not (List.mem next visited) then
            dfs next (next :: visited) (next :: acc) (hops + 1))
        (neighbours t node)
  in
  dfs src [ src ] [ src ] 0;
  List.rev !results

let rec bottleneck_links t = function
  | a :: (b :: _ as rest) -> (
    match Smap.find_opt a t.adj with
    | None -> 0.0
    | Some nbrs -> (
      match Smap.find_opt b nbrs with
      | None -> 0.0
      | Some cap -> Float.min cap (bottleneck_links t rest)))
  | [ _ ] | [] -> infinity

let bottleneck t path =
  match path with
  | [] | [ _ ] -> 0.0
  | _ ->
    let b = bottleneck_links t path in
    if b = infinity then 0.0 else b

let normalize weighted =
  let total = List.fold_left (fun acc (_, w) -> acc +. w) 0.0 weighted in
  if total <= 0.0 then []
  else List.map (fun (p, w) -> (p, w /. total)) weighted

let wcmp_weights ?max_hops t ~src ~dst =
  simple_paths ?max_hops t ~src ~dst
  |> List.map (fun p -> (p, bottleneck t p))
  |> List.filter (fun (_, w) -> w > 0.0)
  |> normalize

let ecmp_weights ?max_hops t ~src ~dst =
  simple_paths ?max_hops t ~src ~dst
  |> List.map (fun p -> (p, bottleneck t p))
  |> List.filter (fun (_, w) -> w > 0.0)
  |> List.map (fun (p, _) -> (p, 1.0))
  |> normalize
