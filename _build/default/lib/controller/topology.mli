(** The controller's view of the network.

    A capacity-annotated graph over named nodes.  The controller's half
    of WCMP lives here (paper §2.1.1, §3.2): enumerate the paths between
    a source and destination and assign each a weight proportional to its
    bottleneck capacity, normalized to probabilities — the [pathMatrix]
    the data-plane function consumes. *)

type node = string

type t

val create : unit -> t

val add_node : t -> node -> unit
val add_link : t -> node -> node -> capacity_bps:float -> unit
(** Bidirectional; re-adding replaces the capacity. *)

val nodes : t -> node list
val neighbours : t -> node -> (node * float) list

type path = node list
(** Node sequence, endpoints included. *)

val simple_paths : ?max_hops:int -> t -> src:node -> dst:node -> path list
(** All simple paths up to [max_hops] links (default 8), in discovery
    order (deterministic). *)

val bottleneck : t -> path -> float
(** Minimum link capacity along the path; 0 for broken paths. *)

val wcmp_weights : ?max_hops:int -> t -> src:node -> dst:node -> (path * float) list
(** Paths with normalized weights (summing to 1) proportional to
    bottleneck capacity — 10:1 for the paper's Fig. 1 topology. *)

val ecmp_weights : ?max_hops:int -> t -> src:node -> dst:node -> (path * float) list
(** Equal weights over the same path set: what ECMP effectively does. *)
