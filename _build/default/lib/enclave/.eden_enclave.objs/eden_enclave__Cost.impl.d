lib/enclave/cost.ml:
