lib/enclave/cost.mli:
