lib/enclave/enclave.ml: Array Cost Eden_base Eden_bytecode Eden_stage Hashtbl Int64 List Option Printf State String Table
