lib/enclave/enclave.mli: Cost Eden_base Eden_bytecode Eden_stage Table
