lib/enclave/queueing.ml: Array Eden_base Float Queue
