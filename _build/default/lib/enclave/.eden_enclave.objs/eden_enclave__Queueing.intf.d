lib/enclave/queueing.mli: Eden_base
