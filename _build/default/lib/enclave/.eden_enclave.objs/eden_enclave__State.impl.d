lib/enclave/state.ml: Eden_base Hashtbl List Option
