lib/enclave/state.mli: Eden_base
