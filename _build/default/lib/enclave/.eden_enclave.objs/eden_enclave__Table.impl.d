lib/enclave/table.ml: Eden_base Format List
