lib/enclave/table.mli: Eden_base Format
