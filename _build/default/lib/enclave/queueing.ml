module Time = Eden_base.Time

module Token_bucket = struct
  type t = {
    mutable rate_bps : float;
    burst_bytes : int;
    mutable tokens : float;  (* bytes *)
    mutable last_update : Time.t;
  }

  let create ~rate_bps ~burst_bytes =
    if rate_bps <= 0.0 then invalid_arg "Token_bucket.create: rate must be positive";
    { rate_bps; burst_bytes; tokens = float_of_int burst_bytes; last_update = Time.zero }

  let set_rate t ~rate_bps =
    if rate_bps <= 0.0 then invalid_arg "Token_bucket.set_rate: rate must be positive";
    t.rate_bps <- rate_bps

  let refill t ~now =
    if Time.( > ) now t.last_update then begin
      let elapsed_s = Time.to_sec (Time.sub now t.last_update) in
      t.tokens <-
        Float.min
          (float_of_int t.burst_bytes)
          (t.tokens +. (elapsed_s *. t.rate_bps /. 8.0));
      t.last_update <- now
    end

  let wait_for t deficit_bytes =
    Time.of_float_ns (deficit_bytes *. 8.0 /. t.rate_bps *. 1e9)

  let ready_at t ~now ~cost_bytes =
    refill t ~now;
    let deficit = float_of_int cost_bytes -. t.tokens in
    if deficit <= 0.0 then now else Time.add now (wait_for t deficit)

  let consume t ~now ~cost_bytes =
    refill t ~now;
    let deficit = float_of_int cost_bytes -. t.tokens in
    t.tokens <- t.tokens -. float_of_int cost_bytes;
    if deficit <= 0.0 then now else Time.add now (wait_for t deficit)
end

module Priority = struct
  let levels = 8

  type 'a t = {
    queues : 'a Queue.t array;  (* index = priority *)
    sizes : int Queue.t array;
    capacity_bytes : int option;
    level_bytes : int array;
    mutable total_bytes : int;
    mutable total_count : int;
    mutable drop_count : int;
  }

  let create ?capacity_bytes () =
    {
      queues = Array.init levels (fun _ -> Queue.create ());
      sizes = Array.init levels (fun _ -> Queue.create ());
      capacity_bytes;
      level_bytes = Array.make levels 0;
      total_bytes = 0;
      total_count = 0;
      drop_count = 0;
    }

  (* The byte budget applies per priority level (hardware priority queues
     have their own buffers), so bulk low-priority traffic cannot crowd
     out latency-sensitive high-priority packets. *)
  let push t ~prio ~size x =
    let prio = max 0 (min (levels - 1) prio) in
    let fits =
      match t.capacity_bytes with
      | None -> true
      | Some cap -> t.level_bytes.(prio) + size <= cap
    in
    if fits then begin
      Queue.add x t.queues.(prio);
      Queue.add size t.sizes.(prio);
      t.level_bytes.(prio) <- t.level_bytes.(prio) + size;
      t.total_bytes <- t.total_bytes + size;
      t.total_count <- t.total_count + 1;
      true
    end
    else begin
      t.drop_count <- t.drop_count + 1;
      false
    end

  let highest_nonempty t =
    let rec go p = if p < 0 then None else if Queue.is_empty t.queues.(p) then go (p - 1) else Some p in
    go (levels - 1)

  let pop t =
    match highest_nonempty t with
    | None -> None
    | Some p ->
      let x = Queue.pop t.queues.(p) in
      let size = Queue.pop t.sizes.(p) in
      t.level_bytes.(p) <- t.level_bytes.(p) - size;
      t.total_bytes <- t.total_bytes - size;
      t.total_count <- t.total_count - 1;
      Some x

  let peek t =
    match highest_nonempty t with None -> None | Some p -> Queue.peek_opt t.queues.(p)

  let is_empty t = t.total_count = 0
  let length t = t.total_count
  let bytes t = t.total_bytes
  let drops t = t.drop_count
end
