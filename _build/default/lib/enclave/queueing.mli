(** Enclave egress queueing: token-bucket rate limiters and strict
    priority queues.

    Action functions steer packets into rate-limited queues (Pulsar) and
    set 802.1q priorities (PIAS/SFF); this module supplies both
    mechanisms.  Everything is driven by explicit simulated time — no
    wall clocks. *)

module Token_bucket : sig
  type t

  val create : rate_bps:float -> burst_bytes:int -> t
  (** [rate_bps] is the drain rate in bits per second. *)

  val set_rate : t -> rate_bps:float -> unit

  val ready_at : t -> now:Eden_base.Time.t -> cost_bytes:int -> Eden_base.Time.t
  (** Earliest time a packet costing [cost_bytes] may leave; does not
      consume tokens. *)

  val consume : t -> now:Eden_base.Time.t -> cost_bytes:int -> Eden_base.Time.t
  (** Consumes the tokens and returns the departure time (≥ [now]).
      Callers must release packets no earlier than that. *)
end

(** Strict-priority FIFO set: 8 levels, 7 highest (802.1q PCP). *)
module Priority : sig
  type 'a t

  val levels : int
  val create : ?capacity_bytes:int -> unit -> 'a t
  (** [capacity_bytes] bounds the buffered bytes {e per level} (hardware
      priority queues have independent buffers, so bulk low-priority
      traffic cannot crowd out high-priority packets); default
      unbounded. *)

  val push : 'a t -> prio:int -> size:int -> 'a -> bool
  (** [false] when the packet was dropped for lack of buffer space. *)

  val pop : 'a t -> 'a option
  (** Highest priority first, FIFO within a level. *)

  val peek : 'a t -> 'a option
  val is_empty : 'a t -> bool
  val length : 'a t -> int
  val bytes : 'a t -> int
  val drops : 'a t -> int
end
