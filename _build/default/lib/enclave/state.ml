module Time = Eden_base.Time

type msg_entry = {
  fields : (string, int64) Hashtbl.t;
  mutable last_touch : Time.t;
}

type t = {
  global_scalars : (string, int64) Hashtbl.t;
  global_arrays : (string, int64 array) Hashtbl.t;
  messages : (int64, msg_entry) Hashtbl.t;
}

let create () =
  {
    global_scalars = Hashtbl.create 16;
    global_arrays = Hashtbl.create 8;
    messages = Hashtbl.create 256;
  }

let global_get t name = Option.value ~default:0L (Hashtbl.find_opt t.global_scalars name)
let global_set t name v = Hashtbl.replace t.global_scalars name v
let global_array t name = Option.value ~default:[||] (Hashtbl.find_opt t.global_arrays name)
let global_array_set t name a = Hashtbl.replace t.global_arrays name a

let msg_entry t msg now =
  match Hashtbl.find_opt t.messages msg with
  | Some e ->
    e.last_touch <- now;
    e
  | None ->
    let e = { fields = Hashtbl.create 4; last_touch = now } in
    Hashtbl.replace t.messages msg e;
    e

let msg_get t ~msg ~field ~default ~now =
  let e = msg_entry t msg now in
  match Hashtbl.find_opt e.fields field with
  | Some v -> v
  | None ->
    Hashtbl.replace e.fields field default;
    default

let msg_set t ~msg ~field v ~now =
  let e = msg_entry t msg now in
  Hashtbl.replace e.fields field v

let msg_known t ~msg = Hashtbl.mem t.messages msg
let msg_count t = Hashtbl.length t.messages
let msg_end t ~msg = Hashtbl.remove t.messages msg

let expire t ~now ~idle =
  let cutoff = Time.sub now idle in
  let stale =
    Hashtbl.fold
      (fun id e acc -> if Time.( < ) e.last_touch cutoff then id :: acc else acc)
      t.messages []
  in
  List.iter (Hashtbl.remove t.messages) stale;
  List.length stale
