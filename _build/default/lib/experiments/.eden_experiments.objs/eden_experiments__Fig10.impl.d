lib/experiments/fig10.ml: Eden_base Eden_controller Eden_enclave Eden_functions Eden_netsim Int64 List Printf String
