lib/experiments/fig10.mli: Eden_base
