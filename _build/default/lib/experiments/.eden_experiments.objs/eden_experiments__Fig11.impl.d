lib/experiments/fig11.ml: Eden_base Eden_enclave Eden_functions Eden_netsim Eden_stage Eden_workloads Int64 List Option Printf String
