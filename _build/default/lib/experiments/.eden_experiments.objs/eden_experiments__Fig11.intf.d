lib/experiments/fig11.mli: Eden_base
