lib/experiments/fig12.ml: Eden_base Eden_enclave Eden_functions Eden_netsim Int64 List Printf String
