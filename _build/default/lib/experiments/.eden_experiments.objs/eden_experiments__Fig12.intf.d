lib/experiments/fig12.mli: Eden_base
