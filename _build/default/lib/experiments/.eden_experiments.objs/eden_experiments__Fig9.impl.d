lib/experiments/fig9.ml: Eden_base Eden_enclave Eden_functions Eden_netsim Eden_workloads Int64 List Printf String
