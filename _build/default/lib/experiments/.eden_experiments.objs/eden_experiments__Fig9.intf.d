lib/experiments/fig9.mli: Eden_base
