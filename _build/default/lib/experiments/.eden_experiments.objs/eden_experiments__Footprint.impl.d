lib/experiments/footprint.ml: Array Eden_base Eden_bytecode Eden_functions List Pias Port_knocking Printf Pulsar Replica_select Sff String Wcmp
