lib/experiments/footprint.mli:
