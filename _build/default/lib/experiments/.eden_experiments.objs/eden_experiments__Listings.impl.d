lib/experiments/listings.ml: Eden_bytecode Eden_functions Eden_lang Format List Pias Port_knocking Printf Pulsar Replica_select Sff Wcmp
