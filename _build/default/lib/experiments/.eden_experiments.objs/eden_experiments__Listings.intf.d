lib/experiments/listings.mli:
