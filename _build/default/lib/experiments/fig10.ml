module Time = Eden_base.Time
module Stats = Eden_base.Stats
module Net = Eden_netsim.Net
module Host = Eden_netsim.Host
module Switch = Eden_netsim.Switch
module Tcp = Eden_netsim.Tcp
module Event = Eden_netsim.Event
module Enclave = Eden_enclave.Enclave
module Wcmp = Eden_functions.Wcmp
module Topology = Eden_controller.Topology
module Controller = Eden_controller.Controller

type balancing = Ecmp | Wcmp

let balancing_to_string = function Ecmp -> "ECMP" | Wcmp -> "WCMP"

type engine = Native | Eden

let engine_to_string = function Native -> "native" | Eden -> "EDEN"

type params = {
  runs : int;
  duration : Time.t;
  warmup : Time.t;
  flows : int;
  fast_path_bps : float;
  slow_path_bps : float;
  dupack_threshold : int;
      (* 3 = vanilla TCP; larger values model the reorder-tolerant TCP the
         paper points to for closing the gap to the min-cut. *)
  seed : int64;
}

let default_params =
  {
    runs = 3;
    duration = Time.ms 200;
    warmup = Time.ms 40;
    flows = 4;
    fast_path_bps = 10e9;
    slow_path_bps = 1e9;
    dupack_threshold = 3;
    seed = 1000L;
  }

type result = {
  balancing : balancing;
  engine : engine;
  goodput_mbps : float;
  goodput_ci95 : float;
  retransmissions : int;
}

let fast_label = 1
let slow_label = 2

(* The controller computes the 10:1 WCMP matrix from the Fig. 1 topology;
   ECMP is the equal-weight matrix over the same labels. *)
let matrix_for params = function
  | Wcmp ->
    let topo = Topology.create () in
    Topology.add_link topo "A" "C" ~capacity_bps:params.fast_path_bps;
    Topology.add_link topo "C" "B" ~capacity_bps:params.fast_path_bps;
    Topology.add_link topo "A" "D" ~capacity_bps:params.slow_path_bps;
    Topology.add_link topo "D" "B" ~capacity_bps:params.slow_path_bps;
    let ctl = Controller.create ~topology:topo () in
    Controller.wcmp_path_matrix ctl ~src:"A" ~dst:"B"
      ~labels:[ ([ "A"; "C"; "B" ], fast_label); ([ "A"; "D"; "B" ], slow_label) ]
  | Ecmp -> Eden_functions.Wcmp.ecmp_matrix ~labels:[ fast_label; slow_label ]

let run_once params balancing engine ~seed =
  let net = Net.create ~seed () in
  let sa = Net.add_switch net in
  let sb = Net.add_switch net in
  let h0 = Net.add_host net in
  let h1 = Net.add_host net in
  let edge_rate = params.fast_path_bps *. 2.0 in
  let p0 = Net.connect_host net h0 sa ~rate_bps:edge_rate () in
  Switch.set_dst_route sa ~dst:(Host.id h0) ~ports:[ p0 ];
  let p1 = Net.connect_host net h1 sb ~rate_bps:edge_rate () in
  Switch.set_dst_route sb ~dst:(Host.id h1) ~ports:[ p1 ];
  let fa, fb = Net.connect_switches net sa sb ~rate_bps:params.fast_path_bps () in
  let sl_a, sl_b = Net.connect_switches net sa sb ~rate_bps:params.slow_path_bps () in
  (* Label forwarding (the paper's VLAN source routing). *)
  Switch.set_label_route sa ~label:fast_label ~port:fa;
  Switch.set_label_route sa ~label:slow_label ~port:sl_a;
  Switch.set_label_route sb ~label:fast_label ~port:p1;
  Switch.set_label_route sb ~label:slow_label ~port:p1;
  (* Reverse direction (ACKs) rides destination routing on the fast path. *)
  Switch.set_dst_route sb ~dst:(Host.id h0) ~ports:[ fb ];
  Switch.set_dst_route sa ~dst:(Host.id h1) ~ports:[ fa ];
  ignore sl_b;
  (* NIC-placed enclave on the sender, as in the paper's testbed. *)
  let enclave = Enclave.create ~placement:Enclave.Nic ~host:(Host.id h0) ~seed () in
  let variant = match engine with Native -> `Native | Eden -> `Packet in
  (match Wcmp.install ~variant enclave ~matrix:(matrix_for params balancing) with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Fig10: " ^ msg));
  Host.set_enclave h0 enclave;
  Host.set_tcp_config h0
    { Tcp.default_config with Tcp.dupack_threshold = params.dupack_threshold };
  let flows =
    List.init params.flows (fun _ -> Net.open_flow net ~src:(Host.id h0) ~dst:(Host.id h1) ())
  in
  let total_bytes =
    int_of_float ((params.fast_path_bps +. params.slow_path_bps) /. 8.0
                  *. Time.to_sec (Time.add params.duration params.warmup))
  in
  List.iter
    (fun f ->
      Tcp.Sender.send_message f.Net.f_sender (total_bytes / params.flows * 2);
      Tcp.Sender.close f.Net.f_sender)
    flows;
  (* Measure goodput over [warmup, warmup + duration). *)
  let delivered () =
    List.fold_left (fun acc f -> acc + Tcp.Receiver.bytes_delivered f.Net.f_receiver) 0 flows
  in
  let at_warmup = ref 0 in
  Event.schedule_at (Net.event net) params.warmup (fun () -> at_warmup := delivered ());
  Net.run ~until:(Time.add params.warmup params.duration) net;
  let bytes = delivered () - !at_warmup in
  let retx =
    List.fold_left (fun acc f -> acc + Tcp.Sender.retransmissions f.Net.f_sender) 0 flows
  in
  (Stats.mbps ~bytes_transferred:bytes ~duration:params.duration, retx)

let run_config params balancing engine =
  let runs =
    List.init params.runs (fun i ->
        run_once params balancing engine ~seed:(Int64.add params.seed (Int64.of_int i)))
  in
  let s = Stats.Samples.of_list (List.map fst runs) in
  {
    balancing;
    engine;
    goodput_mbps = Stats.Samples.mean s;
    goodput_ci95 = Stats.Samples.ci95 s;
    retransmissions = List.fold_left (fun acc (_, r) -> acc + r) 0 runs / params.runs;
  }

let run_all ?(params = default_params) () =
  List.concat_map
    (fun balancing ->
      List.map (fun engine -> run_config params balancing engine) [ Native; Eden ])
    [ Ecmp; Wcmp ]

let print results =
  Printf.printf
    "Figure 10: aggregate TCP goodput over the asymmetric (10G + 1G) topology\n";
  Printf.printf "%-6s %-7s | %14s %10s\n" "scheme" "engine" "goodput (Mbps)" "retx/run";
  Printf.printf "%s\n" (String.make 48 '-');
  List.iter
    (fun r ->
      Printf.printf "%-6s %-7s | %9.0f±%-5.0f %9d\n"
        (balancing_to_string r.balancing)
        (engine_to_string r.engine) r.goodput_mbps r.goodput_ci95 r.retransmissions)
    results
