(** Case study 2 — load balancing on the programmable NIC (paper §5.2,
    Figs. 1 and 10).

    Two hosts connected through two paths, 10 Gbps and 1 Gbps, as in
    Fig. 1.  The enclave (placed on the NIC, as in the paper) runs the
    WCMP action per packet: ECMP splits 1:1, WCMP 10:1 using the
    controller's path matrix.  Long-running TCP flows measure aggregate
    goodput.  Expected shape: ECMP collapses towards the slow path
    (~2 Gbps), WCMP reaches several times that but stays below the
    11 Gbps min-cut because per-packet spraying reorders TCP. *)

type balancing = Ecmp | Wcmp

val balancing_to_string : balancing -> string

type engine = Native | Eden

val engine_to_string : engine -> string

type params = {
  runs : int;
  duration : Eden_base.Time.t;
  warmup : Eden_base.Time.t;
  flows : int;
  fast_path_bps : float;
  slow_path_bps : float;
  dupack_threshold : int;
      (** 3 = vanilla TCP; raise it for the reorder-tolerant-TCP ablation
          the paper suggests (citing MPTCP) to close the gap to the
          min-cut. *)
  seed : int64;
}

val default_params : params

type result = {
  balancing : balancing;
  engine : engine;
  goodput_mbps : float;
  goodput_ci95 : float;
  retransmissions : int;
}

val run_config : params -> balancing -> engine -> result
val run_all : ?params:params -> unit -> result list
val print : result list -> unit
