module Time = Eden_base.Time
module Metadata = Eden_base.Metadata
module Net = Eden_netsim.Net
module Host = Eden_netsim.Host
module Switch = Eden_netsim.Switch
module Enclave = Eden_enclave.Enclave
module Pulsar = Eden_functions.Pulsar
module Storage = Eden_workloads.Storage
module Stage = Eden_stage.Stage
module Builtin = Eden_stage.Builtin
module Classifier = Eden_stage.Classifier

type mode = Isolated | Simultaneous | Rate_controlled

let mode_to_string = function
  | Isolated -> "isolated"
  | Simultaneous -> "simultaneous"
  | Rate_controlled -> "rate-controlled"

type engine = Native | Eden

type params = {
  duration : Time.t;
  warmup : Time.t;
  link_rate_bps : float;
  disk_rate_bps : float;
  tenant_rate_bps : float;
  op_bytes : int;
  seed : int64;
}

let default_params =
  {
    duration = Time.ms 400;
    warmup = Time.ms 100;
    link_rate_bps = 1e9;
    disk_rate_bps = 1e9;
    tenant_rate_bps = 0.5e9;
    op_bytes = Storage.default_op_bytes;
    seed = 1100L;
  }

type result = {
  mode : mode;
  engine : engine option;
  read_mbps : float;
  write_mbps : float;
}

(* The storage stage, programmed (as the controller would) to classify IOs
   into READ/WRITE classes carrying {operation, msg_size, tenant}. *)
let make_storage_stage () =
  let stage = Builtin.storage () in
  let add op cls =
    match
      Stage.Api.create_stage_rule stage ~ruleset:"ops"
        ~classifier:[ (Builtin.Field.operation, Classifier.eq_str op) ]
        ~class_name:cls
        ~metadata_fields:
          [ Builtin.Field.operation; Builtin.Field.msg_size; Builtin.Field.tenant ]
    with
    | Ok _ -> ()
    | Error msg -> invalid_arg ("Fig11: stage rule: " ^ msg)
  in
  add "READ" "READ";
  add "WRITE" "WRITE";
  stage

let classify_with stage ~tenant ~op ~size =
  Stage.classify stage (Builtin.storage_descriptor ~op ~tenant ~size)

let run_mode params ?engine mode =
  let net = Net.create ~seed:params.seed () in
  let sw = Net.add_switch net in
  let reader_host = Net.add_host net in
  let writer_host = Net.add_host net in
  let server_host = Net.add_host net in
  List.iter
    (fun h ->
      let p = Net.connect_host net h sw ~rate_bps:params.link_rate_bps () in
      Switch.set_dst_route sw ~dst:(Host.id h) ~ports:[ p ])
    [ reader_host; writer_host; server_host ];
  let srv = Storage.server ~net ~host:(Host.id server_host) ~disk_rate_bps:params.disk_rate_bps in
  let stage = make_storage_stage () in
  let run_reader = mode <> Isolated || true in
  ignore run_reader;
  (* Pulsar: enclave on each client host, one rate-limited queue per
     tenant, charged by operation size for READs. *)
  if mode = Rate_controlled then begin
    let engine = Option.value ~default:Eden engine in
    List.iteri
      (fun tenant h ->
        let e =
          Enclave.create ~host:(Host.id h) ~seed:(Int64.add params.seed 31L) ()
        in
        let variant = match engine with Native -> `Native | Eden -> `Interpreted in
        (match Pulsar.install ~variant e ~queue_map:[| 0; 1 |] with
        | Ok () -> ()
        | Error msg -> invalid_arg ("Fig11: " ^ msg));
        Host.set_enclave h e;
        Host.define_rate_queue h ~queue:tenant ~rate_bps:params.tenant_rate_bps ())
      [ reader_host; writer_host ]
  end;
  let mk_reader () =
    Storage.read_client ~net ~server:srv ~host:(Host.id reader_host) ~tenant:0
      ~op_bytes:params.op_bytes
      ~classify:(fun ~op ~size -> classify_with stage ~tenant:0 ~op ~size)
      ()
  in
  let mk_writer () =
    Storage.write_client ~net ~server:srv ~host:(Host.id writer_host) ~tenant:1
      ~op_bytes:params.op_bytes
      ~classify:(fun ~op ~size -> classify_with stage ~tenant:1 ~op ~size)
      ()
  in
  let finish = Time.add params.warmup params.duration in
  let measure client =
    match client with
    | None -> 0.0
    | Some c -> Storage.throughput_mbytes_per_sec c ~since:params.warmup ~now:finish
  in
  let reader, writer =
    match mode with
    | Isolated ->
      (* Run the two tenants in separate simulations; here: reader only,
         then a fresh call handles the writer (see run_all).  For a single
         call we run both phases back to back in one run by running the
         reader alone — simplest is to do both in this function with two
         nets, but we already have one; run reader alone here and writer
         alone in a second net below. *)
      (Some (mk_reader ()), None)
    | Simultaneous | Rate_controlled -> (Some (mk_reader ()), Some (mk_writer ()))
  in
  (match reader with Some c -> Storage.start c ~at:Time.zero | None -> ());
  (match writer with Some c -> Storage.start c ~at:Time.zero | None -> ());
  Net.run ~until:finish net;
  let read_mbps = measure reader in
  let write_mbps = measure writer in
  (* Isolated writer: a second, independent run. *)
  let write_mbps =
    if mode = Isolated then begin
      let net2 = Net.create ~seed:(Int64.add params.seed 1L) () in
      let sw2 = Net.add_switch net2 in
      let wh = Net.add_host net2 in
      let sh = Net.add_host net2 in
      List.iter
        (fun h ->
          let p = Net.connect_host net2 h sw2 ~rate_bps:params.link_rate_bps () in
          Switch.set_dst_route sw2 ~dst:(Host.id h) ~ports:[ p ])
        [ wh; sh ];
      let srv2 = Storage.server ~net:net2 ~host:(Host.id sh) ~disk_rate_bps:params.disk_rate_bps in
      let w =
        Storage.write_client ~net:net2 ~server:srv2 ~host:(Host.id wh) ~tenant:1
          ~op_bytes:params.op_bytes
          ~classify:(fun ~op ~size -> classify_with stage ~tenant:1 ~op ~size)
          ()
      in
      Storage.start w ~at:Time.zero;
      Net.run ~until:finish net2;
      Storage.throughput_mbytes_per_sec w ~since:params.warmup ~now:finish
    end
    else write_mbps
  in
  { mode; engine = (if mode = Rate_controlled then Some (Option.value ~default:Eden engine) else None);
    read_mbps; write_mbps }

let run_all ?(params = default_params) () =
  [
    run_mode params Isolated;
    run_mode params Simultaneous;
    run_mode params ~engine:Eden Rate_controlled;
    run_mode params ~engine:Native Rate_controlled;
  ]

let print results =
  Printf.printf "Figure 11: READ vs WRITE throughput at the storage server (MB/s)\n";
  Printf.printf "%-24s | %10s %10s\n" "mode" "READs" "WRITEs";
  Printf.printf "%s\n" (String.make 50 '-');
  List.iter
    (fun r ->
      let label =
        match r.engine with
        | Some Eden -> mode_to_string r.mode ^ " (EDEN)"
        | Some Native -> mode_to_string r.mode ^ " (native)"
        | None -> mode_to_string r.mode
      in
      Printf.printf "%-24s | %10.1f %10.1f\n" label r.read_mbps r.write_mbps)
    results
