(** Case study 3 — datacenter QoS with Pulsar (paper §5.3, Fig. 11).

    Two tenants against one storage server behind a 1 Gbps link and a
    RAM-disk-speed backend: tenant R issues 64 KB READs, tenant W 64 KB
    WRITEs.  READ requests are tiny on the wire, so an unconstrained
    reader floods the server's FIFO IO queue and collapses WRITE
    throughput; charging READ requests by {e operation} size in each
    client's rate limiter (the Pulsar action function) restores balance.

    Three modes, as in the paper's figure: each tenant alone
    ([`Isolated]), both together ([`Simultaneous]), and both together
    with Pulsar rate control ([`Rate_controlled]). *)

type mode = Isolated | Simultaneous | Rate_controlled

val mode_to_string : mode -> string

type engine = Native | Eden

type params = {
  duration : Eden_base.Time.t;
  warmup : Eden_base.Time.t;
  link_rate_bps : float;
  disk_rate_bps : float;
  tenant_rate_bps : float;  (** per-tenant guarantee under rate control *)
  op_bytes : int;
  seed : int64;
}

val default_params : params

type result = {
  mode : mode;
  engine : engine option;  (** None for modes that do not use the enclave *)
  read_mbps : float;  (** MB/s, as the paper's y-axis *)
  write_mbps : float;
}

val run_mode : params -> ?engine:engine -> mode -> result

val run_all : ?params:params -> unit -> result list
(** Isolated, simultaneous, rate-controlled (Eden), rate-controlled
    (native). *)

val print : result list -> unit
