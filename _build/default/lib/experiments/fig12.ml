module Time = Eden_base.Time
module Stats = Eden_base.Stats
module Metadata = Eden_base.Metadata
module Net = Eden_netsim.Net
module Host = Eden_netsim.Host
module Switch = Eden_netsim.Switch
module Tcp = Eden_netsim.Tcp
module Event = Eden_netsim.Event
module Enclave = Eden_enclave.Enclave
module Cost = Eden_enclave.Cost
module Sff = Eden_functions.Sff

type component = Api | Enclave_mech | Interpreter

let component_to_string = function
  | Api -> "API"
  | Enclave_mech -> "enclave"
  | Interpreter -> "interpreter"

type params = {
  flows : int;
  duration : Time.t;
  warmup : Time.t;
  window : Time.t;
  link_rate_bps : float;
  seed : int64;
}

let default_params =
  {
    flows = 12;
    duration = Time.ms 200;
    warmup = Time.ms 20;
    window = Time.ms 10;
    link_rate_bps = 10e9;
    seed = 1200L;
  }

type result = { component : component; avg_pct : float; p95_pct : float }

type run_output = {
  results : result list;
  total_avg_pct : float;
  packets : int;
  windows : int;
}

type snapshot = { s_vanilla : float; s_api : float; s_enclave : float; s_interp : float }

let snapshot acc =
  {
    s_vanilla = Cost.Accum.vanilla_ns acc;
    s_api = Cost.Accum.api_ns acc;
    s_enclave = Cost.Accum.enclave_ns acc;
    s_interp = Cost.Accum.interp_ns acc;
  }

let run ?(params = default_params) () =
  let net = Net.create ~seed:params.seed () in
  let sw = Net.add_switch net in
  let sender = Net.add_host net in
  let sink = Net.add_host net in
  List.iter
    (fun h ->
      let p = Net.connect_host net h sw ~rate_bps:params.link_rate_bps () in
      Switch.set_dst_route sw ~dst:(Host.id h) ~ports:[ p ])
    [ sender; sink ];
  let enclave = Enclave.create ~host:(Host.id sender) ~seed:params.seed () in
  (match Sff.install enclave ~thresholds:[| 10_240L; 1_048_576L |] with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Fig12: " ^ msg));
  Host.set_enclave sender enclave;
  let bytes_per_flow =
    int_of_float (params.link_rate_bps /. 8.0
                  *. Time.to_sec (Time.add params.duration params.warmup))
    / params.flows * 2
  in
  for i = 1 to params.flows do
    let md =
      Metadata.with_msg_id (Int64.of_int i) (Sff.metadata_for ~size:bytes_per_flow)
    in
    let flow = Net.open_flow net ~src:(Host.id sender) ~dst:(Host.id sink) () in
    Tcp.Sender.send_message flow.Net.f_sender ~metadata:md bytes_per_flow;
    Tcp.Sender.close flow.Net.f_sender
  done;
  (* Sample the cost accumulator every window. *)
  let acc = Enclave.cost enclave in
  let api_s = Stats.Samples.create () in
  let enc_s = Stats.Samples.create () in
  let int_s = Stats.Samples.create () in
  let last = ref (snapshot acc) in
  let rec sample at =
    if Time.( <= ) at (Time.add params.warmup params.duration) then
      Event.schedule_at (Net.event net) at (fun () ->
          let s = snapshot acc in
          let dv = s.s_vanilla -. !last.s_vanilla in
          if dv > 0.0 then begin
            Stats.Samples.add api_s ((s.s_api -. !last.s_api) /. dv *. 100.0);
            Stats.Samples.add enc_s ((s.s_enclave -. !last.s_enclave) /. dv *. 100.0);
            Stats.Samples.add int_s ((s.s_interp -. !last.s_interp) /. dv *. 100.0)
          end;
          last := s;
          sample (Time.add at params.window))
  in
  Event.schedule_at (Net.event net) params.warmup (fun () -> last := snapshot acc);
  sample (Time.add params.warmup params.window);
  Net.run ~until:(Time.add params.warmup params.duration) net;
  let result component samples =
    {
      component;
      avg_pct = Stats.Samples.mean samples;
      p95_pct = Stats.Samples.percentile samples 95.0;
    }
  in
  {
    results = [ result Api api_s; result Enclave_mech enc_s; result Interpreter int_s ];
    total_avg_pct =
      Stats.Samples.mean api_s +. Stats.Samples.mean enc_s +. Stats.Samples.mean int_s;
    packets = Cost.Accum.packets acc;
    windows = Stats.Samples.count api_s;
  }

let print out =
  Printf.printf
    "Figure 12: Eden CPU overhead vs the vanilla stack (SFF, 12 flows at 10G)\n";
  Printf.printf "%-12s | %9s %9s\n" "component" "avg (%)" "p95 (%)";
  Printf.printf "%s\n" (String.make 36 '-');
  List.iter
    (fun r ->
      Printf.printf "%-12s | %9.2f %9.2f\n" (component_to_string r.component) r.avg_pct
        r.p95_pct)
    out.results;
  Printf.printf "%-12s | %9.2f\n" "total" out.total_avg_pct;
  Printf.printf "(%d packets, %d sampling windows)\n" out.packets out.windows
