(** Eden's CPU overheads (paper §5.4, Fig. 12).

    Twelve long-running TCP flows saturate a 10 Gbps uplink while the
    enclave runs the SFF policy; the per-packet cost model's busy time is
    sampled in 10 ms windows and each Eden component — the API (metadata
    handoff), the enclave (classification, lookup, marshalling) and the
    interpreter — is reported as a percentage of the vanilla stack's
    per-packet cost, average and 95th percentile across windows. *)

type component = Api | Enclave_mech | Interpreter

val component_to_string : component -> string

type params = {
  flows : int;
  duration : Eden_base.Time.t;
  warmup : Eden_base.Time.t;
  window : Eden_base.Time.t;
  link_rate_bps : float;
  seed : int64;
}

val default_params : params

type result = {
  component : component;
  avg_pct : float;
  p95_pct : float;
}

type run_output = {
  results : result list;
  total_avg_pct : float;
  packets : int;
  windows : int;
}

val run : ?params:params -> unit -> run_output
val print : run_output -> unit
