module Time = Eden_base.Time
module Rng = Eden_base.Rng
module Metadata = Eden_base.Metadata
module Stats = Eden_base.Stats
module Net = Eden_netsim.Net
module Host = Eden_netsim.Host
module Switch = Eden_netsim.Switch
module Tcp = Eden_netsim.Tcp
module Enclave = Eden_enclave.Enclave
module Pias = Eden_functions.Pias
module Sff = Eden_functions.Sff
module Flowsize = Eden_workloads.Flowsize
module Reqresp = Eden_workloads.Reqresp

type scheme = Baseline | Pias | Sff

let scheme_to_string = function Baseline -> "baseline" | Pias -> "PIAS" | Sff -> "SFF"

type engine = Native | Eden

let engine_to_string = function Native -> "native" | Eden -> "EDEN"

type params = {
  runs : int;
  duration : Time.t;
  load : float;
  link_rate_bps : float;
  ecn : bool;  (* run over DCTCP (marking links + reacting TCP) *)
  seed : int64;
}

let default_params =
  {
    runs = 5;
    duration = Time.ms 300;
    load = 0.7;
    link_rate_bps = 1e9;
    ecn = false;
    seed = 900L;
  }

type bucket_result = { avg_us : float; avg_ci95 : float; p95_us : float; count : int }

type result = {
  scheme : scheme;
  engine : engine;
  small : bucket_result;
  intermediate : bucket_result;
}

(* PIAS-style thresholds matching the paper's priority classes:
   small (<10 KB) highest, intermediate (10 KB–1 MB) next, rest
   background. *)
let thresholds = [| 10_240L; 1_048_576L |]
let background_flow_size_hint = 1 lsl 30

let install_policy scheme engine enclave =
  let ok = function
    | Ok () -> ()
    | Error msg -> invalid_arg ("Fig9: policy install failed: " ^ msg)
  in
  match (scheme, engine) with
  | Baseline, Native -> ()
  | Baseline, Eden ->
    (* Paper's "Baseline (EDEN)": full classification and interpretation,
       outputs ignored before transmission. *)
    ok (Pias.install ~variant:`Interpreted enclave ~thresholds);
    Enclave.set_enforce enclave false
  | Pias, Native -> ok (Pias.install ~variant:`Native enclave ~thresholds)
  | Pias, Eden -> ok (Pias.install ~variant:`Interpreted enclave ~thresholds)
  | Sff, Native -> ok (Sff.install ~variant:`Native enclave ~thresholds)
  | Sff, Eden -> ok (Sff.install ~variant:`Interpreted enclave ~thresholds)

let needs_enclave = function Baseline, Native -> false | _ -> true

(* One simulation run; returns (avg_small, p95_small, avg_int, p95_int). *)
let run_once params scheme engine ~seed =
  let net = Net.create ~seed () in
  let sw = Net.add_switch net in
  let worker = Net.add_host net in
  let bg = Net.add_host net in
  let client = Net.add_host net in
  List.iter
    (fun h ->
      let p =
        Net.connect_host net h sw ~rate_bps:params.link_rate_bps
          ?ecn_threshold_bytes:(if params.ecn then Some 60_000 else None)
          ()
      in
      Switch.set_dst_route sw ~dst:(Host.id h) ~ports:[ p ];
      if params.ecn then
        Host.set_tcp_config h { Tcp.default_config with Tcp.ecn = true })
    [ worker; bg; client ];
  if needs_enclave (scheme, engine) then begin
    List.iter
      (fun h ->
        let e = Enclave.create ~host:(Host.id h) ~seed:(Int64.add seed 17L) () in
        install_policy scheme engine e;
        Host.set_enclave h e)
      [ worker; bg ]
  end;
  (* Background: two long-running flows that keep the client link busy.
     Under SFF they announce an enormous flow size (lowest priority);
     under PIAS they demote on their own. *)
  let bg_md = Sff.metadata_for ~size:background_flow_size_hint in
  let bg_bytes =
    int_of_float (params.link_rate_bps /. 8.0 *. Time.to_sec params.duration) * 2
  in
  for _ = 1 to 2 do
    ignore
      (Net.start_flow net ~src:(Host.id bg) ~dst:(Host.id client) ~metadata:bg_md
         ~size:bg_bytes ())
  done;
  let msg_counter = ref 0L in
  let metadata_for ~size =
    msg_counter := Int64.add !msg_counter 1L;
    Metadata.with_msg_id !msg_counter (Sff.metadata_for ~size)
  in
  let gen =
    Reqresp.launch ~net
      ~rng:(Rng.create (Int64.add seed 101L))
      ~src:(Host.id worker)
      ~dsts:[ Host.id client ]
      ~sizes:Flowsize.web_search ~load:params.load ~link_rate_bps:params.link_rate_bps
      ~metadata_for ~until:params.duration ()
  in
  Net.run ~until:(Time.add params.duration (Time.ms 200)) net;
  let bucket b =
    let s = Stats.Samples.of_list (Reqresp.fcts_us gen b) in
    (Stats.Samples.mean s, Stats.Samples.percentile s 95.0, Stats.Samples.count s)
  in
  let sm_avg, sm_p95, sm_n = bucket Reqresp.Small in
  let im_avg, im_p95, im_n = bucket Reqresp.Intermediate in
  ((sm_avg, sm_p95, sm_n), (im_avg, im_p95, im_n))

let summarize per_run =
  let avgs = Stats.Samples.of_list (List.map (fun (a, _, _) -> a) per_run) in
  let p95s = Stats.Samples.of_list (List.map (fun (_, p, _) -> p) per_run) in
  let count = List.fold_left (fun acc (_, _, n) -> acc + n) 0 per_run in
  {
    avg_us = Stats.Samples.mean avgs;
    avg_ci95 = Stats.Samples.ci95 avgs;
    p95_us = Stats.Samples.mean p95s;
    count;
  }

let run_config params scheme engine =
  let runs =
    List.init params.runs (fun i ->
        run_once params scheme engine ~seed:(Int64.add params.seed (Int64.of_int i)))
  in
  {
    scheme;
    engine;
    small = summarize (List.map fst runs);
    intermediate = summarize (List.map snd runs);
  }

let run_all ?(params = default_params) () =
  List.concat_map
    (fun scheme -> List.map (fun engine -> run_config params scheme engine) [ Native; Eden ])
    [ Baseline; Pias; Sff ]

let print results =
  Printf.printf
    "Figure 9: flow completion times (request-response @70%% load, web-search sizes)\n";
  Printf.printf "%-10s %-7s | %12s %12s %8s | %12s %12s %8s\n" "scheme" "engine"
    "small avg" "small p95" "n" "inter avg" "inter p95" "n";
  Printf.printf "%s\n" (String.make 92 '-');
  List.iter
    (fun r ->
      Printf.printf
        "%-10s %-7s | %9.0fus±%-4.0f %9.0fus %8d | %9.0fus±%-4.0f %9.0fus %8d\n"
        (scheme_to_string r.scheme) (engine_to_string r.engine) r.small.avg_us
        r.small.avg_ci95 r.small.p95_us r.small.count r.intermediate.avg_us
        r.intermediate.avg_ci95 r.intermediate.p95_us r.intermediate.count)
    results
