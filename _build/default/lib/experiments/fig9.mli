(** Case study 1 — flow scheduling (paper §5.1, Fig. 9).

    A worker serves a request–response workload whose response sizes
    follow the web-search distribution, at ~70% load, while a background
    source keeps the client's downlink busy.  Six configurations:
    {baseline, PIAS, SFF} × {native, Eden}; "baseline (Eden)" runs the
    action function but discards its output, isolating pure data-path
    overhead.  Reported: average and 95th-percentile FCT for small
    (<10 KB) and intermediate (10 KB–1 MB) flows, with 95% confidence
    intervals over independent runs. *)

type scheme = Baseline | Pias | Sff

val scheme_to_string : scheme -> string

type engine = Native | Eden

val engine_to_string : engine -> string

type params = {
  runs : int;  (** independent seeds (paper: 10) *)
  duration : Eden_base.Time.t;  (** request generation window per run *)
  load : float;  (** offered load on the client link (paper: ~0.7) *)
  link_rate_bps : float;
  ecn : bool;
      (** Run over DCTCP (ECN-marking links + reacting senders) — the
          transport PIAS actually deploys on; an ablation beyond the
          paper's vanilla-TCP testbed. *)
  seed : int64;
}

val default_params : params
(** 5 runs × 300 ms at 70% of 1 Gbps — scaled down from the paper's
    10 Gbps testbed to keep a full sweep fast; shapes are preserved. *)

type bucket_result = {
  avg_us : float;
  avg_ci95 : float;
  p95_us : float;
  count : int;
}

type result = {
  scheme : scheme;
  engine : engine;
  small : bucket_result;
  intermediate : bucket_result;
}

val run_config : params -> scheme -> engine -> result

val run_all : ?params:params -> unit -> result list
(** The six bars of Fig. 9, baseline first. *)

val print : result list -> unit
