module P = Eden_bytecode.Program
module Interp = Eden_bytecode.Interp
module Verifier = Eden_bytecode.Verifier
open Eden_functions

type entry = {
  name : string;
  code_len : int;
  n_locals : int;
  max_stack : int;
  stack_bytes : int;
  steps_per_packet : int;
  heap_cells : int;
  concurrency : string;
}

(* Representative environment values for a 1058-byte data packet and the
   controller state each paper function runs with. *)
let scalar_default (slot : P.scalar_slot) =
  match (slot.P.s_entity, slot.P.s_name) with
  | P.Packet, "Size" -> 1058L
  | P.Packet, "PayloadSize" -> 1000L
  | P.Packet, "SrcHost" -> 1L
  | P.Packet, "DstHost" -> 2L
  | P.Packet, "SrcPort" -> 1234L
  | P.Packet, "DstPort" -> 80L
  | P.Packet, "IsData" -> 1L
  | P.Packet, ("Queue" | "Charge" | "GotoTable" | "Path") -> -1L
  | P.Message, "CachedPath" -> -1L
  | P.Message, "FlowSize" -> 500_000L
  | P.Message, "OpSize" -> 65_536L
  | P.Message, "IsRead" -> 1L
  | P.Message, "Size" -> 20_000L
  | P.Global, "Protected" -> 22L
  | _ -> 0L

let array_default (slot : P.array_slot) =
  match slot.P.a_name with
  | "Thresholds" | "Limits" -> [| 10_240L; 1_048_576L |]
  | "Paths" -> [| 1L; 909L; 2L; 91L |]
  | "QueueMap" -> [| 0L; 1L |]
  | "Knocks" -> [| 1111L; 2222L; 3333L |]
  | "State" -> Array.make 16 0L
  | "ReplicaLabels" -> [| 301L; 302L; 303L |]
  | _ -> [||]

let concurrency_string p =
  if P.writes_entity p P.Global then "serial"
  else if P.writes_entity p P.Message then "per-message"
  else "parallel"

let measure name (p : P.t) =
  let max_stack =
    match Verifier.max_stack_depth p with
    | Ok d -> d
    | Error e -> invalid_arg (Printf.sprintf "Footprint: %s: %s" name (Verifier.error_to_string e))
  in
  let env =
    Interp.make_env p
      ~scalars:(Array.map scalar_default p.P.scalar_slots)
      ~arrays:(Array.map array_default p.P.array_slots)
  in
  let stats =
    match
      Interp.run p ~env ~now:(Eden_base.Time.us 1) ~rng:(Eden_base.Rng.create 7L)
    with
    | Ok stats -> stats
    | Error (f, _) ->
      invalid_arg (Printf.sprintf "Footprint: %s faulted: %s" name (Interp.fault_to_string f))
  in
  {
    name;
    code_len = Array.length p.P.code;
    n_locals = p.P.n_locals;
    max_stack;
    stack_bytes = 8 * max_stack;
    steps_per_packet = stats.Interp.steps;
    heap_cells = stats.Interp.heap_cells;
    concurrency = concurrency_string p;
  }

let run () =
  [
    measure "wcmp" (Wcmp.program ());
    measure "message_wcmp" (Wcmp.message_program ());
    measure "pias" (Pias.program ());
    measure "sff" (Sff.program ());
    measure "pulsar" (Pulsar.program ());
    measure "port_knocking" (Port_knocking.program ());
    measure "replica_select" (Replica_select.program ());
  ]

let print entries =
  Printf.printf
    "Interpreter footprint of the paper's action functions (§5.4: ~64 B stack, ~256 B heap)\n";
  Printf.printf "%-15s | %6s %7s %7s %8s %7s %6s %12s\n" "function" "code" "locals"
    "stack" "stack B" "steps" "heap" "concurrency";
  Printf.printf "%s\n" (String.make 82 '-');
  List.iter
    (fun e ->
      Printf.printf "%-15s | %6d %7d %7d %8d %7d %6d %12s\n" e.name e.code_len e.n_locals
        e.max_stack e.stack_bytes e.steps_per_packet e.heap_cells e.concurrency)
    entries
