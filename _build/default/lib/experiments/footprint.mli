(** Interpreter footprint (paper §5.4, last paragraph).

    The paper reports operand stacks around 64 bytes and heaps around
    256 bytes for the example programs.  This experiment compiles every
    paper action function, verifies it, runs it on a representative
    packet and reports static and dynamic footprint: code size, verified
    maximum operand-stack depth, locals, heap cells, and steps per
    packet. *)

type entry = {
  name : string;
  code_len : int;  (** instructions *)
  n_locals : int;
  max_stack : int;  (** verifier bound, values (8 bytes each) *)
  stack_bytes : int;
  steps_per_packet : int;  (** measured on a representative invocation *)
  heap_cells : int;
  concurrency : string;
}

val run : unit -> entry list
val print : entry list -> unit
