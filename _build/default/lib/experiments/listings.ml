open Eden_functions

let render title action program =
  let source = Eden_lang.Pretty.action_to_string action in
  let disasm = Format.asprintf "%a" Eden_bytecode.Program.pp program in
  (title, Printf.sprintf "%s\n\n-- compiled --\n%s" source disasm)

let all () =
  [
    render "Fig. 2 (top): WCMP, per-packet" Wcmp.action (Wcmp.program ());
    render "Fig. 2 (bottom): messageWCMP" Wcmp.message_action (Wcmp.message_program ());
    render "Fig. 3: Pulsar rate control" Pulsar.action (Pulsar.program ());
    render "Figs. 4/7: PIAS priority selection" Pias.action (Pias.program ());
    render "SFF (shortest flow first)" Sff.action (Sff.program ());
    render "Port knocking (Table 1)" Port_knocking.action (Port_knocking.program ());
    render "Replica selection (mcrouter-style)" Replica_select.action
      (Replica_select.program ());
  ]

let print () =
  List.iter
    (fun (title, listing) ->
      Printf.printf "=== %s ===\n%s\n\n" title listing)
    (all ())
