(** Program listings (paper Figs. 2, 3, 4/7).

    Renders the action functions in the paper's F#-flavoured surface
    syntax (via {!Eden_lang.Pretty}) together with their bytecode
    disassembly, reproducing the listings the paper shows. *)

val all : unit -> (string * string) list
(** [(title, listing)] pairs. *)

val print : unit -> unit
