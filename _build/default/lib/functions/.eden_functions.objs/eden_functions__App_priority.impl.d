lib/functions/app_priority.ml: Compile Dsl Eden_base Eden_enclave Eden_lang Int64 Lazy Result Schema String
