lib/functions/catalog.ml: List
