lib/functions/catalog.mli:
