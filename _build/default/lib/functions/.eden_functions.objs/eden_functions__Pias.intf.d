lib/functions/pias.mli: Eden_bytecode Eden_enclave Eden_lang
