lib/functions/port_knocking.ml: Array Compile Dsl Eden_base Eden_enclave Eden_lang Int64 Lazy List Result Schema
