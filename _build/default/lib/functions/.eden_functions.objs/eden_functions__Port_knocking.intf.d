lib/functions/port_knocking.mli: Eden_bytecode Eden_enclave Eden_lang
