lib/functions/pulsar.ml: Array Compile Dsl Eden_base Eden_enclave Eden_lang Int64 Lazy Result Schema
