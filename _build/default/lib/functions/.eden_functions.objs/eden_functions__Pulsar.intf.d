lib/functions/pulsar.mli: Eden_bytecode Eden_enclave Eden_lang
