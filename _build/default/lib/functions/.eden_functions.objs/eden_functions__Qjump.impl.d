lib/functions/qjump.ml: Compile Dsl Eden_base Eden_enclave Eden_lang Float Int64 Lazy Result Schema
