lib/functions/qjump.mli: Eden_base Eden_bytecode Eden_enclave Eden_lang
