lib/functions/sff.ml: Array Compile Dsl Eden_base Eden_enclave Eden_lang Int64 Lazy Pias Result Schema
