lib/functions/wcmp.mli: Eden_bytecode Eden_enclave Eden_lang
