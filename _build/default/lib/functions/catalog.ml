type app_semantics = No | Yes | Beneficial

type entry = {
  category : string;
  example : string;
  citation : string;
  dp_state : bool;
  dp_compute : bool;
  app_semantics : app_semantics;
  network_support : bool;
  eden_out_of_box : bool;
  implemented : string option;
}

let e category example citation ~state ~compute ~app ~net ~eden ?impl () =
  {
    category;
    example;
    citation;
    dp_state = state;
    dp_compute = compute;
    app_semantics = app;
    network_support = net;
    eden_out_of_box = eden;
    implemented = impl;
  }

(* Paper Table 1, row for row. *)
let entries =
  [
    e "Load balancing" "WCMP" "Zhou et al. 2014" ~state:true ~compute:true ~app:No
      ~net:false ~eden:true ~impl:"Wcmp" ();
    e "Load balancing" "Message-based WCMP" "this paper" ~state:true ~compute:true
      ~app:Yes ~net:false ~eden:true ~impl:"Wcmp.message_action" ();
    e "Load balancing" "Ananta" "Patel et al. 2013" ~state:true ~compute:true ~app:No
      ~net:false ~eden:true ~impl:"Ananta" ();
    e "Load balancing" "Conga" "Alizadeh et al. 2014" ~state:true ~compute:true
      ~app:Beneficial ~net:true ~eden:false ();
    e "Load balancing" "Duet" "Gandhi et al. 2014" ~state:true ~compute:true ~app:No
      ~net:true ~eden:false ();
    e "Replica selection" "mcrouter" "Facebook 2014" ~state:true ~compute:true ~app:Yes
      ~net:false ~eden:true ~impl:"Replica_select" ();
    e "Replica selection" "SINBAD" "Chowdhury et al. 2013" ~state:true ~compute:true
      ~app:Yes ~net:false ~eden:true ();
    e "Datacenter QoS" "Pulsar" "Angel et al. 2014" ~state:true ~compute:true ~app:Yes
      ~net:false ~eden:true ~impl:"Pulsar" ();
    e "Datacenter QoS" "Storage QoS" "IOFlow/Pisces" ~state:true ~compute:true ~app:Yes
      ~net:false ~eden:true ();
    e "Datacenter QoS" "Network QoS" "Oktopus/FairCloud/NetShare/EyeQ" ~state:true
      ~compute:true ~app:Yes ~net:false ~eden:true ();
    e "Flow scheduling" "PIAS" "Bai et al. 2015" ~state:true ~compute:true ~app:No
      ~net:false ~eden:true ~impl:"Pias" ();
    e "Flow scheduling" "QJump" "Grosvenor et al. 2015" ~state:true ~compute:true
      ~app:No ~net:false ~eden:true ~impl:"Qjump" ();
    e "Congestion control" "Centralized congestion control" "Fastpass et al."
      ~state:true ~compute:true ~app:Beneficial ~net:false ~eden:true ();
    e "Congestion control" "Explicit rate control (D3, PASE, PDQ)"
      "Wilson et al. 2011 …" ~state:true ~compute:true ~app:Yes ~net:true ~eden:false ();
    e "Stateful firewall" "IDS (e.g. Snort)" "Cisco 2015" ~state:true ~compute:true
      ~app:No ~net:false ~eden:false ();
    e "Stateful firewall" "Port knocking" "Bianchi et al. 2014" ~state:true
      ~compute:true ~app:No ~net:false ~eden:true ~impl:"Port_knocking" ();
  ]

let implemented_entries = List.filter (fun x -> x.implemented <> None) entries

let app_to_string = function No -> "" | Yes -> "yes" | Beneficial -> "yes*"
let b = function true -> "yes" | false -> ""

let to_table () =
  [ "Function"; "Example"; "DP state"; "DP compute"; "App semantics"; "Network support";
    "Eden (out of the box)"; "In this repo" ]
  :: List.map
       (fun x ->
         [
           x.category;
           x.example;
           b x.dp_state;
           b x.dp_compute;
           app_to_string x.app_semantics;
           b x.network_support;
           b x.eden_out_of_box;
           (match x.implemented with Some m -> m | None -> "");
         ])
       entries
