(** The paper's Table 1: example network functions, their data-plane
    requirements, and whether Eden supports them out of the box.

    Entries marked [implemented] have a runnable implementation in this
    repository; the rest are catalogued for the table reproduction. *)

type app_semantics = No | Yes | Beneficial
(** [Beneficial] renders as the paper's 3*: the function works without
    application semantics but would benefit from them (e.g. CONGA's
    flowlets approximate messages). *)

type entry = {
  category : string;
  example : string;
  citation : string;
  dp_state : bool;
  dp_compute : bool;
  app_semantics : app_semantics;
  network_support : bool;  (** needs switch features beyond commodity *)
  eden_out_of_box : bool;
  implemented : string option;  (** module name in [eden.functions] *)
}

val entries : entry list
(** Rows in the paper's order. *)

val implemented_entries : entry list

val to_table : unit -> string list list
(** Header row plus one row per entry, for the bench harness printer. *)
