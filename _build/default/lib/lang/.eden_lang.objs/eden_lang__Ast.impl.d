lib/lang/ast.ml: Eden_bytecode Hashtbl List
