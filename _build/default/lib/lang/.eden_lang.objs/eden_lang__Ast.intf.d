lib/lang/ast.mli: Eden_bytecode
