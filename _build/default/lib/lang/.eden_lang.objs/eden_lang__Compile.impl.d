lib/lang/compile.ml: Array Ast Eden_bytecode Format Hashtbl Int64 List Map Printf String Typecheck
