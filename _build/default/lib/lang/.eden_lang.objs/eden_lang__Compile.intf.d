lib/lang/compile.mli: Ast Eden_bytecode Format Schema Typecheck
