lib/lang/dsl.ml: Ast Int64 List
