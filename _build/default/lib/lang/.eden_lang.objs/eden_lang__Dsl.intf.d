lib/lang/dsl.mli: Ast
