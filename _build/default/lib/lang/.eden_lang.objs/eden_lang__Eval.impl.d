lib/lang/eval.ml: Array Ast Eden_base Hashtbl Int64 List Map Option Printf String
