lib/lang/eval.mli: Ast Eden_base
