lib/lang/parser.ml: Ast Format Int64 List Printf String
