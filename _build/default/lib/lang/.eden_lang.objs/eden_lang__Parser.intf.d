lib/lang/parser.mli: Ast Format
