lib/lang/pretty.ml: Ast Format Int64 List Printf Stdlib String
