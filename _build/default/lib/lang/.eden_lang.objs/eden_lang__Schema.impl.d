lib/lang/schema.ml: Ast List String
