lib/lang/schema.mli: Ast
