lib/lang/typecheck.ml: Ast Format List Map Printf Schema String
