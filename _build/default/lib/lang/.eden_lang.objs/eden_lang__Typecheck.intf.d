lib/lang/typecheck.mli: Ast Format Schema
