type entity = Packet | Message | Global

let entity_to_string = function
  | Packet -> "packet"
  | Message -> "msg"
  | Global -> "_global"

let entity_of_program = function
  | Eden_bytecode.Program.Packet -> Packet
  | Eden_bytecode.Program.Message -> Message
  | Eden_bytecode.Program.Global -> Global

let entity_to_program = function
  | Packet -> Eden_bytecode.Program.Packet
  | Message -> Eden_bytecode.Program.Message
  | Global -> Eden_bytecode.Program.Global

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | And
  | Or
  | Band
  | Bor
  | Bxor
  | Shl
  | Shr
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge

type unop = Neg | Not

type expr =
  | Int of int64
  | Bool of bool
  | Unit
  | Var of string
  | Field of entity * string
  | Arr_get of entity * string * expr
  | Arr_len of entity * string
  | Let of { name : string; mutable_ : bool; rhs : expr; body : expr }
  | Assign of string * expr
  | Set_field of entity * string * expr
  | Arr_set of entity * string * expr * expr
  | If of expr * expr * expr
  | While of expr * expr
  | Seq of expr * expr
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Call of string * expr list
  | Rand of expr
  | Clock
  | Hash of expr * expr

type fundef = { fn_name : string; fn_params : string list; fn_body : expr }
type t = { af_name : string; af_funs : fundef list; af_body : expr }

let binop_to_string = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Rem -> "%"
  | And -> "&&"
  | Or -> "||"
  | Band -> "&&&"
  | Bor -> "|||"
  | Bxor -> "^^^"
  | Shl -> "<<<"
  | Shr -> ">>>"
  | Eq -> "="
  | Ne -> "<>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let unop_to_string = function Neg -> "-" | Not -> "not"

let rec fold_expr f acc e =
  let acc = f acc e in
  match e with
  | Int _ | Bool _ | Unit | Var _ | Field _ | Arr_len _ | Clock -> acc
  | Arr_get (_, _, i) -> fold_expr f acc i
  | Let { rhs; body; _ } -> fold_expr f (fold_expr f acc rhs) body
  | Assign (_, e1) | Set_field (_, _, e1) | Unop (_, e1) | Rand e1 -> fold_expr f acc e1
  | Arr_set (_, _, i, v) -> fold_expr f (fold_expr f acc i) v
  | If (c, t, e1) -> fold_expr f (fold_expr f (fold_expr f acc c) t) e1
  | While (c, b) | Seq (c, b) | Binop (_, c, b) | Hash (c, b) ->
    fold_expr f (fold_expr f acc c) b
  | Call (_, args) -> List.fold_left (fold_expr f) acc args

let fold_action f acc t =
  let acc = List.fold_left (fun acc fd -> fold_expr f acc fd.fn_body) acc t.af_funs in
  fold_expr f acc t.af_body

(* Merge accesses, upgrading to `Write when both appear. *)
let merge_accesses items =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun (ent, name, access) ->
      let key = (ent, name) in
      match Hashtbl.find_opt tbl key with
      | None ->
        Hashtbl.add tbl key access;
        order := key :: !order
      | Some `Write -> ()
      | Some `Read -> if access = `Write then Hashtbl.replace tbl key `Write)
    items;
  List.rev_map (fun (ent, name) -> (ent, name, Hashtbl.find tbl (ent, name))) !order

let fields_used t =
  let collect acc = function
    | Field (ent, name) -> (ent, name, `Read) :: acc
    | Set_field (ent, name, _) -> (ent, name, `Write) :: acc
    | _ -> acc
  in
  merge_accesses (List.rev (fold_action collect [] t))

let arrays_used t =
  let collect acc = function
    | Arr_get (ent, name, _) | Arr_len (ent, name) -> (ent, name, `Read) :: acc
    | Arr_set (ent, name, _, _) -> (ent, name, `Write) :: acc
    | _ -> acc
  in
  merge_accesses (List.rev (fold_action collect [] t))
