(** Abstract syntax of the action-function language.

    The paper writes action functions as F# code quotations over a subset
    of F# — no objects, exceptions or floating point; arithmetic,
    assignments, function definitions and basic control flow (§3.4.2).
    Here the same subset is an OCaml-embedded AST: what the F# quotation
    machinery delivered to the paper's compiler, we build directly (see
    {!Dsl} for concise constructors).

    Action functions receive three implicit entities — [packet], [msg] and
    [_global] — whose fields and arrays are declared by a {!Schema.t} and
    accessed with the [Field]/[Arr_*] constructors. *)

type entity = Packet | Message | Global

val entity_to_string : entity -> string
val entity_of_program : Eden_bytecode.Program.entity -> entity
val entity_to_program : entity -> Eden_bytecode.Program.entity

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | And  (** strict boolean and (both sides evaluated) *)
  | Or
  | Band
  | Bor
  | Bxor
  | Shl
  | Shr
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge

type unop = Neg | Not

type expr =
  | Int of int64
  | Bool of bool
  | Unit
  | Var of string
  | Field of entity * string  (** [packet.Size] *)
  | Arr_get of entity * string * expr  (** [_global.Priorities.[i]] *)
  | Arr_len of entity * string
  | Let of { name : string; mutable_ : bool; rhs : expr; body : expr }
  | Assign of string * expr  (** [x <- e] on a mutable local *)
  | Set_field of entity * string * expr  (** [packet.Priority <- e] *)
  | Arr_set of entity * string * expr * expr  (** [arr.[i] <- e] *)
  | If of expr * expr * expr
  | While of expr * expr
  | Seq of expr * expr
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Call of string * expr list  (** user function defined in the same action *)
  | Rand of expr  (** intrinsic: uniform in [0, bound) *)
  | Clock  (** intrinsic: high-frequency clock, ns *)
  | Hash of expr * expr  (** intrinsic: 64-bit mix *)

type fundef = {
  fn_name : string;
  fn_params : string list;  (** all parameters are integers *)
  fn_body : expr;
}
(** [let rec f x y = body].  Direct tail self-recursion is compiled to a
    loop; other recursion is rejected (the enclave has no call frames). *)

type t = {
  af_name : string;
  af_funs : fundef list;
  af_body : expr;
}
(** A complete action function: auxiliary definitions plus the body that
    runs once per packet. *)

val binop_to_string : binop -> string
val unop_to_string : unop -> string

val fold_expr : ('a -> expr -> 'a) -> 'a -> expr -> 'a
(** Pre-order fold over an expression and all sub-expressions. *)

val fields_used : t -> (entity * string * [ `Read | `Write ]) list
(** Every scalar entity field the action touches, deduplicated, with the
    strongest access observed. *)

val arrays_used : t -> (entity * string * [ `Read | `Write ]) list
