open Ast

let int n = Int (Int64.of_int n)
let i64 v = Int v
let tru = Bool true
let fls = Bool false
let unit = Unit
let var x = Var x
let pkt f = Field (Packet, f)
let msg f = Field (Message, f)
let glob f = Field (Global, f)
let set_pkt f e = Set_field (Packet, f, e)
let set_msg f e = Set_field (Message, f, e)
let set_glob f e = Set_field (Global, f, e)
let msg_arr a i = Arr_get (Message, a, i)
let glob_arr a i = Arr_get (Global, a, i)
let set_msg_arr a i v = Arr_set (Message, a, i, v)
let set_glob_arr a i v = Arr_set (Global, a, i, v)
let msg_arr_len a = Arr_len (Message, a)
let glob_arr_len a = Arr_len (Global, a)
let let_ name rhs body = Let { name; mutable_ = false; rhs; body = body (Var name) }
let let_mut name rhs body = Let { name; mutable_ = true; rhs; body = body (Var name) }
let assign x e = Assign (x, e)
let if_ c t f = If (c, t, f)
let when_ c body = If (c, body, Unit)
let while_ c body = While (c, body)
let ( ^^ ) a b = Seq (a, b)

let seq = function
  | [] -> Unit
  | e :: rest -> List.fold_left (fun acc x -> Seq (acc, x)) e rest

let ( + ) a b = Binop (Add, a, b)
let ( - ) a b = Binop (Sub, a, b)
let ( * ) a b = Binop (Mul, a, b)
let ( / ) a b = Binop (Div, a, b)
let ( % ) a b = Binop (Rem, a, b)
let ( = ) a b = Binop (Eq, a, b)
let ( <> ) a b = Binop (Ne, a, b)
let ( < ) a b = Binop (Lt, a, b)
let ( <= ) a b = Binop (Le, a, b)
let ( > ) a b = Binop (Gt, a, b)
let ( >= ) a b = Binop (Ge, a, b)
let ( && ) a b = Binop (And, a, b)
let ( || ) a b = Binop (Or, a, b)
let not_ a = Unop (Not, a)
let neg a = Unop (Neg, a)
let shl a b = Binop (Shl, a, b)
let shr a b = Binop (Shr, a, b)
let band a b = Binop (Band, a, b)
let bor a b = Binop (Bor, a, b)
let bxor a b = Binop (Bxor, a, b)
let call fn args = Call (fn, args)
let rand bound = Rand bound
let clock = Clock
let hash a b = Hash (a, b)
let fn name params body = { fn_name = name; fn_params = params; fn_body = body }
let action ?(funs = []) name body = { af_name = name; af_funs = funs; af_body = body }
