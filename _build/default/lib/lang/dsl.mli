(** Concise constructors for action-function ASTs.

    Intended to be opened locally:
    {[
      let open Eden_lang.Dsl in
      action "pias"
        (let_ "msg_size" (msg "Size" + pkt "Size") @@ fun msg_size ->
         set_msg "Size" msg_size
         ^^ set_pkt "Priority" (call "search" [ int 0 ]))
    ]} *)

open Ast

val int : int -> expr
val i64 : int64 -> expr
val tru : expr
val fls : expr
val unit : expr
val var : string -> expr

val pkt : string -> expr
(** [pkt "Size"] is [packet.Size]. *)

val msg : string -> expr
val glob : string -> expr
val set_pkt : string -> expr -> expr
val set_msg : string -> expr -> expr
val set_glob : string -> expr -> expr

val msg_arr : string -> expr -> expr
(** [msg_arr "Window" i] is [msg.Window.[i]]. *)

val glob_arr : string -> expr -> expr
val set_msg_arr : string -> expr -> expr -> expr
val set_glob_arr : string -> expr -> expr -> expr
val msg_arr_len : string -> expr
val glob_arr_len : string -> expr

val let_ : string -> expr -> (expr -> expr) -> expr
(** [let_ x rhs body] builds [let x = rhs in body (var x)]. *)

val let_mut : string -> expr -> (expr -> expr) -> expr
val assign : string -> expr -> expr

val if_ : expr -> expr -> expr -> expr
val when_ : expr -> expr -> expr
(** [when_ c body] is [if c then body else ()] (body must be unit). *)

val while_ : expr -> expr -> expr
val ( ^^ ) : expr -> expr -> expr
(** Sequencing. *)

val seq : expr list -> expr
(** [seq [a; b; c]] is [a ^^ b ^^ c]; [seq []] is [unit]. *)

val ( + ) : expr -> expr -> expr
val ( - ) : expr -> expr -> expr
val ( * ) : expr -> expr -> expr
val ( / ) : expr -> expr -> expr
val ( % ) : expr -> expr -> expr
val ( = ) : expr -> expr -> expr
val ( <> ) : expr -> expr -> expr
val ( < ) : expr -> expr -> expr
val ( <= ) : expr -> expr -> expr
val ( > ) : expr -> expr -> expr
val ( >= ) : expr -> expr -> expr
val ( && ) : expr -> expr -> expr
val ( || ) : expr -> expr -> expr
val not_ : expr -> expr
val neg : expr -> expr
val shl : expr -> expr -> expr
val shr : expr -> expr -> expr
val band : expr -> expr -> expr
val bor : expr -> expr -> expr
val bxor : expr -> expr -> expr

val call : string -> expr list -> expr
val rand : expr -> expr
val clock : expr
val hash : expr -> expr -> expr

val fn : string -> string list -> expr -> fundef
val action : ?funs:fundef list -> string -> expr -> t
