module Time = Eden_base.Time
module Rng = Eden_base.Rng

module State = struct
  type t = {
    fields_tbl : (Ast.entity * string, int64) Hashtbl.t;
    arrays_tbl : (Ast.entity * string, int64 array) Hashtbl.t;
  }

  let create () = { fields_tbl = Hashtbl.create 16; arrays_tbl = Hashtbl.create 8 }
  let set_field t ent name v = Hashtbl.replace t.fields_tbl (ent, name) v
  let field t ent name = Option.value ~default:0L (Hashtbl.find_opt t.fields_tbl (ent, name))
  let set_array t ent name a = Hashtbl.replace t.arrays_tbl (ent, name) a
  let array t ent name = Option.value ~default:[||] (Hashtbl.find_opt t.arrays_tbl (ent, name))

  let fields t =
    Hashtbl.fold (fun (ent, name) v acc -> (ent, name, v) :: acc) t.fields_tbl []
    |> List.sort compare
end

type error =
  | Division_by_zero
  | Array_bounds of { entity : Ast.entity; name : string; index : int }
  | Step_limit_exceeded
  | Bad_random_bound of int64
  | Unbound of string

let error_to_string = function
  | Division_by_zero -> "division by zero"
  | Array_bounds { entity; name; index } ->
    Printf.sprintf "array %s.%s index %d out of bounds" (Ast.entity_to_string entity) name
      index
  | Step_limit_exceeded -> "step limit exceeded"
  | Bad_random_bound b -> Printf.sprintf "rand bound %Ld not positive" b
  | Unbound what -> Printf.sprintf "unbound %s" what

exception Eval_error of error

module Smap = Map.Make (String)

type ctx = {
  state : State.t;
  funs : Ast.fundef Smap.t;
  now : Time.t;
  rng : Rng.t;
  step_limit : int;
  mutable steps : int;
}

(* Matches the interpreter's Hashmix op-code bit for bit. *)
let hashmix a b =
  let m = Int64.mul (Int64.logxor (Int64.mul a 0x9E3779B97F4A7C15L) b) 0xBF58476D1CE4E5B9L in
  Int64.logxor m (Int64.shift_right_logical m 31)

let bool_of v = not (Int64.equal v 0L)
let of_bool b = if b then 1L else 0L

(* Locals are immutable-by-reference cells so [Assign] is visible to the
   rest of the scope. *)
let rec eval ctx (locals : int64 ref Smap.t) (e : Ast.expr) : int64 =
  ctx.steps <- ctx.steps + 1;
  if ctx.steps > ctx.step_limit then raise (Eval_error Step_limit_exceeded);
  match e with
  | Ast.Int v -> v
  | Ast.Bool b -> of_bool b
  | Ast.Unit -> 0L
  | Ast.Var x -> (
    match Smap.find_opt x locals with
    | Some r -> !r
    | None -> raise (Eval_error (Unbound ("variable " ^ x))))
  | Ast.Field (ent, name) -> State.field ctx.state ent name
  | Ast.Arr_get (ent, name, idx) ->
    let arr = State.array ctx.state ent name in
    let i = Int64.to_int (eval ctx locals idx) in
    if i < 0 || i >= Array.length arr then
      raise (Eval_error (Array_bounds { entity = ent; name; index = i }));
    arr.(i)
  | Ast.Arr_len (ent, name) -> Int64.of_int (Array.length (State.array ctx.state ent name))
  | Ast.Let { name; mutable_ = _; rhs; body } ->
    let v = eval ctx locals rhs in
    eval ctx (Smap.add name (ref v) locals) body
  | Ast.Assign (x, rhs) -> (
    let v = eval ctx locals rhs in
    match Smap.find_opt x locals with
    | Some r ->
      r := v;
      0L
    | None -> raise (Eval_error (Unbound ("variable " ^ x))))
  | Ast.Set_field (ent, name, rhs) ->
    let v = eval ctx locals rhs in
    State.set_field ctx.state ent name v;
    0L
  | Ast.Arr_set (ent, name, idx, rhs) ->
    let arr = State.array ctx.state ent name in
    let i = Int64.to_int (eval ctx locals idx) in
    let v = eval ctx locals rhs in
    if i < 0 || i >= Array.length arr then
      raise (Eval_error (Array_bounds { entity = ent; name; index = i }));
    arr.(i) <- v;
    0L
  | Ast.If (c, t, f) -> if bool_of (eval ctx locals c) then eval ctx locals t else eval ctx locals f
  | Ast.While (c, body) ->
    while bool_of (eval ctx locals c) do
      ignore (eval ctx locals body)
    done;
    0L
  | Ast.Seq (a, b) ->
    ignore (eval ctx locals a);
    eval ctx locals b
  | Ast.Binop (op, a, b) -> binop ctx locals op a b
  | Ast.Unop (Ast.Neg, a) -> Int64.neg (eval ctx locals a)
  | Ast.Unop (Ast.Not, a) -> of_bool (not (bool_of (eval ctx locals a)))
  | Ast.Call (fn, args) -> (
    match Smap.find_opt fn ctx.funs with
    | None -> raise (Eval_error (Unbound ("function " ^ fn)))
    | Some fd ->
      let values = List.map (fun a -> eval ctx locals a) args in
      let frame =
        List.fold_left2
          (fun acc p v -> Smap.add p (ref v) acc)
          Smap.empty fd.Ast.fn_params values
      in
      eval ctx frame fd.Ast.fn_body)
  | Ast.Rand bound ->
    let b = eval ctx locals bound in
    if Int64.compare b 0L <= 0 then raise (Eval_error (Bad_random_bound b));
    Int64.of_int (Rng.int ctx.rng (Int64.to_int b))
  | Ast.Clock -> Time.to_ns ctx.now
  | Ast.Hash (a, b) ->
    let x = eval ctx locals a in
    let y = eval ctx locals b in
    hashmix x y

and binop ctx locals op a b =
  let x = eval ctx locals a in
  let y = eval ctx locals b in
  match op with
  | Ast.Add -> Int64.add x y
  | Ast.Sub -> Int64.sub x y
  | Ast.Mul -> Int64.mul x y
  | Ast.Div ->
    if Int64.equal y 0L then raise (Eval_error Division_by_zero);
    Int64.div x y
  | Ast.Rem ->
    if Int64.equal y 0L then raise (Eval_error Division_by_zero);
    Int64.rem x y
  | Ast.And -> of_bool (bool_of x && bool_of y)
  | Ast.Or -> of_bool (bool_of x || bool_of y)
  | Ast.Band -> Int64.logand x y
  | Ast.Bor -> Int64.logor x y
  | Ast.Bxor -> Int64.logxor x y
  | Ast.Shl -> Int64.shift_left x (Int64.to_int y land 63)
  | Ast.Shr -> Int64.shift_right_logical x (Int64.to_int y land 63)
  | Ast.Eq -> of_bool (Int64.equal x y)
  | Ast.Ne -> of_bool (not (Int64.equal x y))
  | Ast.Lt -> of_bool (Int64.compare x y < 0)
  | Ast.Le -> of_bool (Int64.compare x y <= 0)
  | Ast.Gt -> of_bool (Int64.compare x y > 0)
  | Ast.Ge -> of_bool (Int64.compare x y >= 0)

let make_ctx ?(step_limit = 100_000) ?(now = Time.zero) ?rng funs =
  let rng = match rng with Some r -> r | None -> Rng.create 0L in
  {
    state = State.create ();
    funs;
    now;
    rng;
    step_limit;
    steps = 0;
  }

let run ?step_limit ?now ?rng (action : Ast.t) state =
  let funs =
    List.fold_left
      (fun acc (fd : Ast.fundef) -> Smap.add fd.Ast.fn_name fd acc)
      Smap.empty action.Ast.af_funs
  in
  let ctx = { (make_ctx ?step_limit ?now ?rng funs) with state } in
  try
    ignore (eval ctx Smap.empty action.Ast.af_body);
    Ok ()
  with Eval_error e -> Error e

let eval_expr ?step_limit ?now ?rng expr state =
  let ctx = { (make_ctx ?step_limit ?now ?rng Smap.empty) with state } in
  try Ok (eval ctx Smap.empty expr) with Eval_error e -> Error e
