(** Reference evaluator for action functions.

    A big-step interpreter over the AST with exactly the semantics the
    compiled bytecode must have — 64-bit wrap-around arithmetic, faults on
    division by zero and out-of-bounds array access, a step budget.  It
    exists as the oracle for differential testing of the compiler
    (compile+interpret vs evaluate must agree on every write), and doubles
    as the "run and debug the program locally" workflow the paper gets
    from the F# toolchain (§6). *)

(** Mutable entity state the evaluation reads and writes. *)
module State : sig
  type t

  val create : unit -> t
  val set_field : t -> Ast.entity -> string -> int64 -> unit
  val field : t -> Ast.entity -> string -> int64
  (** 0 when never set. *)

  val set_array : t -> Ast.entity -> string -> int64 array -> unit
  val array : t -> Ast.entity -> string -> int64 array
  (** [[||]] when never set. *)

  val fields : t -> (Ast.entity * string * int64) list
  (** All scalar bindings, sorted. *)
end

type error =
  | Division_by_zero
  | Array_bounds of { entity : Ast.entity; name : string; index : int }
  | Step_limit_exceeded
  | Bad_random_bound of int64
  | Unbound of string  (** variable / function / recursion too deep *)

val error_to_string : error -> string

val run :
  ?step_limit:int ->
  ?now:Eden_base.Time.t ->
  ?rng:Eden_base.Rng.t ->
  Ast.t ->
  State.t ->
  (unit, error) result
(** Evaluate the action body against the state; writable effects land in
    the state.  [step_limit] (default 100_000) bounds AST nodes visited. *)

val eval_expr :
  ?step_limit:int ->
  ?now:Eden_base.Time.t ->
  ?rng:Eden_base.Rng.t ->
  Ast.expr ->
  State.t ->
  (int64, error) result
(** Evaluate a single (non-unit) expression; booleans come back as 0/1. *)
