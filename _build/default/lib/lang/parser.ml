type error = { line : int; col : int; message : string }

let error_to_string e = Printf.sprintf "line %d, column %d: %s" e.line e.col e.message
let pp_error fmt e = Format.pp_print_string fmt (error_to_string e)

exception Parse_error of error

(* ------------------------------------------------------------------ *)
(* Lexer *)

type token =
  | INT of int64
  | IDENT of string
  | KW_TRUE
  | KW_FALSE
  | KW_LET
  | KW_REC
  | KW_MUTABLE
  | KW_IF
  | KW_THEN
  | KW_ELSE
  | KW_ELIF
  | KW_WHILE
  | KW_DO
  | KW_DONE
  | KW_FUN
  | KW_NOT
  | KW_IN
  | KW_BEGIN
  | KW_END
  | LPAREN
  | RPAREN
  | DOT
  | DOT_LBRACKET  (** [.[]: array indexing *)
  | RBRACKET
  | ARROW  (** -> *)
  | LARROW  (** <- *)
  | NEWLINE
  | SEMI
  | OP of string  (** binary operators *)
  | EOF

let token_to_string = function
  | INT v -> Printf.sprintf "%LdL" v
  | IDENT s -> s
  | KW_TRUE -> "true"
  | KW_FALSE -> "false"
  | KW_LET -> "let"
  | KW_REC -> "rec"
  | KW_MUTABLE -> "mutable"
  | KW_IF -> "if"
  | KW_THEN -> "then"
  | KW_ELSE -> "else"
  | KW_ELIF -> "elif"
  | KW_WHILE -> "while"
  | KW_DO -> "do"
  | KW_DONE -> "done"
  | KW_FUN -> "fun"
  | KW_NOT -> "not"
  | KW_IN -> "in"
  | KW_BEGIN -> "begin"
  | KW_END -> "end"
  | LPAREN -> "("
  | RPAREN -> ")"
  | DOT -> "."
  | DOT_LBRACKET -> ".["
  | RBRACKET -> "]"
  | ARROW -> "->"
  | LARROW -> "<-"
  | NEWLINE -> "newline"
  | SEMI -> ";"
  | OP s -> s
  | EOF -> "end of input"

type ltoken = { tok : token; tline : int; tcol : int }

let keyword_of_string = function
  | "true" -> Some KW_TRUE
  | "false" -> Some KW_FALSE
  | "let" -> Some KW_LET
  | "rec" -> Some KW_REC
  | "mutable" -> Some KW_MUTABLE
  | "if" -> Some KW_IF
  | "then" -> Some KW_THEN
  | "else" -> Some KW_ELSE
  | "elif" -> Some KW_ELIF
  | "while" -> Some KW_WHILE
  | "do" -> Some KW_DO
  | "done" -> Some KW_DONE
  | "fun" -> Some KW_FUN
  | "not" -> Some KW_NOT
  | "in" -> Some KW_IN
  | "begin" -> Some KW_BEGIN
  | "end" -> Some KW_END
  | _ -> None

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let lex src =
  let n = String.length src in
  let tokens = ref [] in
  let line = ref 1 and col = ref 1 in
  let i = ref 0 in
  let err message = raise (Parse_error { line = !line; col = !col; message }) in
  let emit tok = tokens := { tok; tline = !line; tcol = !col } :: !tokens in
  let advance ?(k = 1) () =
    for _ = 1 to k do
      (if !i < n && src.[!i] = '\n' then begin
         incr line;
         col := 1
       end
       else incr col);
      incr i
    done
  in
  let peek k = if !i + k < n then Some src.[!i + k] else None in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then begin
      emit NEWLINE;
      advance ()
    end
    else if c = ' ' || c = '\t' || c = '\r' then advance ()
    else if c = '/' && peek 1 = Some '/' then begin
      (* line comment *)
      while !i < n && src.[!i] <> '\n' do
        advance ()
      done
    end
    else if c = '(' && peek 1 = Some '*' then begin
      (* block comment, nested *)
      let depth = ref 0 in
      let continue = ref true in
      while !continue do
        if !i + 1 >= n then err "unterminated comment"
        else if src.[!i] = '(' && src.[!i + 1] = '*' then begin
          incr depth;
          advance ~k:2 ()
        end
        else if src.[!i] = '*' && src.[!i + 1] = ')' then begin
          decr depth;
          advance ~k:2 ();
          if !depth = 0 then continue := false
        end
        else advance ()
      done
    end
    else if is_digit c then begin
      let start = !i in
      while !i < n && (is_digit src.[!i] || src.[!i] = '_') do
        advance ()
      done;
      (* optional L suffix *)
      let text = String.sub src start (!i - start) in
      if !i < n && src.[!i] = 'L' then advance ();
      let text = String.concat "" (String.split_on_char '_' text) in
      match Int64.of_string_opt text with
      | Some v -> emit (INT v)
      | None -> err (Printf.sprintf "bad integer literal %S" text)
    end
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char src.[!i] do
        advance ()
      done;
      let text = String.sub src start (!i - start) in
      match keyword_of_string text with
      | Some kw -> emit kw
      | None -> emit (IDENT text)
    end
    else begin
      let two = if !i + 1 < n then String.sub src !i 2 else "" in
      let three = if !i + 2 < n then String.sub src !i 3 else "" in
      match () with
      | _ when three = "&&&" || three = "|||" || three = "^^^" || three = "<<<" || three = ">>>" ->
        emit (OP three);
        advance ~k:3 ()
      | _ when two = "->" ->
        emit ARROW;
        advance ~k:2 ()
      | _ when two = "<-" ->
        emit LARROW;
        advance ~k:2 ()
      | _ when two = "&&" || two = "||" || two = "<>" || two = "<=" || two = ">=" ->
        emit (OP two);
        advance ~k:2 ()
      | _ when c = '.' && peek 1 = Some '[' ->
        emit DOT_LBRACKET;
        advance ~k:2 ()
      | _ -> (
        match c with
        | '(' ->
          emit LPAREN;
          advance ()
        | ')' ->
          emit RPAREN;
          advance ()
        | ']' ->
          emit RBRACKET;
          advance ()
        | '.' ->
          emit DOT;
          advance ()
        | ';' ->
          emit SEMI;
          advance ()
        | '+' | '-' | '*' | '/' | '%' | '=' | '<' | '>' ->
          emit (OP (String.make 1 c));
          advance ()
        (* ':' and ',' only occur in the fun-header, which is skipped
           wholesale; they are never valid in expressions. *)
        | ':' | ',' ->
          emit (OP (String.make 1 c));
          advance ()
        | _ -> err (Printf.sprintf "unexpected character %C" c))
    end
  done;
  emit EOF;
  List.rev !tokens

(* ------------------------------------------------------------------ *)
(* Parser state *)

type state = { mutable toks : ltoken list }

let current st = match st.toks with t :: _ -> t | [] -> assert false

let perr st message =
  let t = current st in
  raise (Parse_error { line = t.tline; col = t.tcol; message })

let advance st = match st.toks with _ :: rest when rest <> [] -> st.toks <- rest | _ -> ()

let skip_newlines st =
  while (current st).tok = NEWLINE || (current st).tok = SEMI do
    advance st
  done

(* Skip newlines only (used where a ';' would be meaningful). *)
let peek_past_newlines st =
  let rec go = function
    | { tok = NEWLINE; _ } :: rest -> go rest
    | t :: _ -> t.tok
    | [] -> EOF
  in
  go st.toks

let expect st tok message =
  skip_newlines st;
  if (current st).tok = tok then advance st
  else perr st (Printf.sprintf "%s (found %s)" message (token_to_string (current st).tok))

(* ------------------------------------------------------------------ *)
(* Expression parsing (precedence climbing) *)

let binop_of_string = function
  | "+" -> Some Ast.Add
  | "-" -> Some Ast.Sub
  | "*" -> Some Ast.Mul
  | "/" -> Some Ast.Div
  | "%" -> Some Ast.Rem
  | "&&" -> Some Ast.And
  | "||" -> Some Ast.Or
  | "&&&" -> Some Ast.Band
  | "|||" -> Some Ast.Bor
  | "^^^" -> Some Ast.Bxor
  | "<<<" -> Some Ast.Shl
  | ">>>" -> Some Ast.Shr
  | "=" -> Some Ast.Eq
  | "<>" -> Some Ast.Ne
  | "<" -> Some Ast.Lt
  | "<=" -> Some Ast.Le
  | ">" -> Some Ast.Gt
  | ">=" -> Some Ast.Ge
  | _ -> None

let prec_of_binop = function
  | Ast.Or -> 2
  | Ast.And -> 3
  | Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge -> 4
  | Ast.Bor | Ast.Bxor -> 5
  | Ast.Band -> 6
  | Ast.Shl | Ast.Shr -> 7
  | Ast.Add | Ast.Sub -> 8
  | Ast.Mul | Ast.Div | Ast.Rem -> 9

let entity_of_ident = function
  | "packet" -> Some Ast.Packet
  | "msg" -> Some Ast.Message
  | "_global" -> Some Ast.Global
  | _ -> None

(* Expressions that continue across a newline: when the next meaningful
   token is an infix operator or [then]/[do]/etc., newlines are soft. *)
let rec parse_expr_prec st min_prec =
  let lhs = parse_unary st in
  parse_binop_rhs st lhs min_prec

and parse_binop_rhs st lhs min_prec =
  match peek_past_newlines st with
  | OP s -> (
    match binop_of_string s with
    | Some op when prec_of_binop op >= min_prec ->
      skip_newlines st;
      advance st;
      let rhs = parse_expr_prec st (prec_of_binop op + 1) in
      parse_binop_rhs st (Ast.Binop (op, lhs, rhs)) min_prec
    | Some _ | None -> lhs)
  | _ -> lhs

and parse_unary st =
  skip_newlines st;
  match (current st).tok with
  | KW_NOT ->
    advance st;
    Ast.Unop (Ast.Not, parse_unary st)
  | OP "-" ->
    advance st;
    Ast.Unop (Ast.Neg, parse_unary st)
  | _ -> parse_application st

(* Function application: IDENT atom+ (juxtaposition binds tightest). *)
and parse_application st =
  let head = parse_postfix st in
  match head with
  | Ast.Var name -> (
    let args = parse_atoms st [] in
    match (name, args) with
    | _, [] -> head
    | "rand", [ bound ] -> Ast.Rand bound
    | "clock", [ Ast.Unit ] -> Ast.Clock
    | "hash", [ a; b ] -> Ast.Hash (a, b)
    | _, args -> Ast.Call (name, List.filter (fun a -> a <> Ast.Unit) args))
  | _ -> head

and parse_atoms st acc =
  match (current st).tok with
  | INT _ | KW_TRUE | KW_FALSE | LPAREN | IDENT _ ->
    let a = parse_postfix st in
    parse_atoms st (a :: acc)
  | _ -> List.rev acc

(* Postfix: primary with .Field, .[index], .Length chains. *)
and parse_postfix st =
  let base = parse_primary st in
  parse_postfix_chain st base

and parse_postfix_chain st base =
  match (current st).tok with
  | DOT -> (
    advance st;
    match ((current st).tok, base) with
    | IDENT "Length", Ast.Field (ent, name) ->
      advance st;
      parse_postfix_chain st (Ast.Arr_len (ent, name))
    | IDENT field, Ast.Var v -> (
      match entity_of_ident v with
      | Some ent ->
        advance st;
        parse_postfix_chain st (Ast.Field (ent, field))
      | None -> perr st (Printf.sprintf "%S is not an entity (packet, msg, _global)" v))
    | IDENT _, _ -> perr st "field access on a non-entity expression"
    | _ -> perr st "expected a field name after '.'")
  | DOT_LBRACKET -> (
    match base with
    | Ast.Field (ent, name) ->
      advance st;
      let idx = parse_expr_prec st 0 in
      expect st RBRACKET "expected ']'";
      parse_postfix_chain st (Ast.Arr_get (ent, name, idx))
    | _ -> perr st "array indexing on a non-entity field")
  | _ -> base

and parse_primary st =
  skip_newlines st;
  match (current st).tok with
  | INT v ->
    advance st;
    Ast.Int v
  | KW_TRUE ->
    advance st;
    Ast.Bool true
  | KW_FALSE ->
    advance st;
    Ast.Bool false
  | IDENT name ->
    advance st;
    Ast.Var name
  | KW_BEGIN ->
    advance st;
    let e = parse_block st in
    expect st KW_END "expected 'end'";
    e
  | LPAREN -> (
    advance st;
    match peek_past_newlines st with
    | RPAREN ->
      skip_newlines st;
      advance st;
      Ast.Unit
    | _ ->
      let e = parse_block st in
      expect st RPAREN "expected ')'";
      e)
  | KW_IF -> parse_if st
  | KW_WHILE ->
    advance st;
    let cond = parse_expr_prec st 0 in
    expect st KW_DO "expected 'do'";
    let body = parse_block st in
    expect st KW_DONE "expected 'done'";
    Ast.While (cond, body)
  | t -> perr st (Printf.sprintf "unexpected %s" (token_to_string t))

and parse_if st =
  expect st KW_IF "expected 'if'";
  let cond = parse_expr_prec st 0 in
  expect st KW_THEN "expected 'then'";
  let then_ = parse_statement st in
  match peek_past_newlines st with
  | KW_ELSE ->
    skip_newlines st;
    advance st;
    (match peek_past_newlines st with
    | KW_IF ->
      skip_newlines st;
      Ast.If (cond, then_, parse_if st)
    | _ -> Ast.If (cond, then_, parse_statement st))
  | KW_ELIF ->
    skip_newlines st;
    (* treat elif as else-if: rewrite the token and recurse *)
    (match st.toks with
    | t :: rest -> st.toks <- { t with tok = KW_IF } :: rest
    | [] -> ());
    Ast.If (cond, then_, parse_if st)
  | _ -> Ast.If (cond, then_, Ast.Unit)

(* A statement: a let-binding header, an assignment, or an expression.
   Branch bodies are single statements; use (...) or begin...end for
   sequences. *)
and parse_statement st =
  skip_newlines st;
  match (current st).tok with
  | KW_LET -> perr st "let-bindings are only allowed at block level; wrap in (...)"
  | _ -> (
    let e = parse_expr_prec st 0 in
    match (current st).tok with
    | LARROW -> (
      advance st;
      let rhs = parse_expr_prec st 0 in
      match e with
      | Ast.Var x -> Ast.Assign (x, rhs)
      | Ast.Field (ent, name) -> Ast.Set_field (ent, name, rhs)
      | Ast.Arr_get (ent, name, idx) -> Ast.Arr_set (ent, name, idx, rhs)
      | _ -> perr st "invalid assignment target")
    | _ -> e)

(* A block: let-bindings and statements separated by newlines or ';'. *)
and parse_block st =
  skip_newlines st;
  match (current st).tok with
  | KW_LET ->
    advance st;
    let mutable_ =
      if (current st).tok = KW_MUTABLE then begin
        advance st;
        true
      end
      else false
    in
    let name =
      match (current st).tok with
      | IDENT n ->
        advance st;
        n
      | t -> perr st (Printf.sprintf "expected a variable name, found %s" (token_to_string t))
    in
    expect st (OP "=") "expected '='";
    let rhs = parse_expr_prec st 0 in
    (* optional 'in' *)
    (if peek_past_newlines st = KW_IN then begin
       skip_newlines st;
       advance st
     end);
    let body = parse_block st in
    Ast.Let { name; mutable_; rhs; body }
  | _ -> (
    let stmt = parse_statement st in
    match peek_past_newlines st with
    | EOF | RPAREN | KW_END | KW_ELSE | KW_ELIF | KW_DONE | KW_THEN | KW_DO -> stmt
    | _ ->
      (* Another statement follows. *)
      skip_newlines st;
      let rest = parse_block st in
      Ast.Seq (stmt, rest))

(* ------------------------------------------------------------------ *)
(* Action functions: optional fun-header, let rec definitions, body. *)

let parse_header st =
  if peek_past_newlines st = KW_FUN then begin
    skip_newlines st;
    advance st;
    (* Skip everything to the '->'. *)
    let rec go () =
      match (current st).tok with
      | ARROW -> advance st
      | EOF -> perr st "unterminated 'fun' header (missing '->')"
      | _ ->
        advance st;
        go ()
    in
    go ()
  end

let rec parse_fundefs st acc =
  skip_newlines st;
  match st.toks with
  | { tok = KW_LET; _ } :: { tok = KW_REC; _ } :: _ ->
    advance st;
    advance st;
    let name =
      match (current st).tok with
      | IDENT n ->
        advance st;
        n
      | t -> perr st (Printf.sprintf "expected function name, found %s" (token_to_string t))
    in
    let rec params acc =
      match (current st).tok with
      | IDENT p ->
        advance st;
        params (p :: acc)
      | LPAREN ->
        (* () = no parameters *)
        advance st;
        expect st RPAREN "expected ')'";
        List.rev acc
      | _ -> List.rev acc
    in
    let ps = params [] in
    expect st (OP "=") "expected '='";
    let body = parse_statement_or_let st in
    parse_fundefs st ({ Ast.fn_name = name; fn_params = ps; fn_body = body } :: acc)
  | _ -> List.rev acc

(* A fundef body: a single statement, or a let-chain in parens. *)
and parse_statement_or_let st =
  skip_newlines st;
  match (current st).tok with
  | LPAREN | KW_BEGIN -> parse_statement st
  | _ -> parse_statement st

let parse_action ?(name = "anonymous") src =
  try
    let st = { toks = lex src } in
    parse_header st;
    let funs = parse_fundefs st [] in
    let body = parse_block st in
    skip_newlines st;
    (match (current st).tok with
    | EOF -> ()
    | t -> perr st (Printf.sprintf "trailing input: %s" (token_to_string t)));
    Ok { Ast.af_name = name; af_funs = funs; af_body = body }
  with Parse_error e -> Error e

let parse_expr src =
  try
    let st = { toks = lex src } in
    let e = parse_block st in
    skip_newlines st;
    (match (current st).tok with
    | EOF -> ()
    | t -> perr st (Printf.sprintf "trailing input: %s" (token_to_string t)));
    Ok e
  with Parse_error e -> Error e
