(** Parser for the action-function surface syntax.

    The controller ships action functions to operators and tooling as
    text; this parser accepts the same F#-flavoured syntax {!Pretty}
    prints, so programs round-trip:

    {v
    fun (packet : Packet, msg : Message, _global : Global) ->
      let rec search i =
        if i >= _global.Thresholds.Length then 0L
        else if msg.Size <= _global.Thresholds.[i] then 7L - i
        else search (i + 1L)
      msg.Size <- msg.Size + packet.Size
      packet.Priority <- search 0L
    v}

    Grammar summary (layout-insensitive; sequencing by newline or [;]):
    - literals: [42L], [42], [true], [false], [()]
    - entity access: [packet.F], [msg.F], [_global.F], [e.A.[i]],
      [e.A.Length]
    - [let x = e], [let mutable x = e], [x <- e], [e.F <- e],
      [e.A.[i] <- e]
    - [if c then e1 else e2], [if c then e1] (unit), [while c do e done]
    - [let rec f x y = body] function definitions before the body
    - calls: [f a b]; intrinsics [rand e], [clock ()], [hash a b]
    - operators with F# spellings: [+ - * / %], [= <> < <= > >=],
      [&& ||], [not], [&&& ||| ^^^ <<< >>>] *)

type error = { line : int; col : int; message : string }

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string

val parse_action : ?name:string -> string -> (Ast.t, error) result
(** Parse a complete action function (the [fun (packet, …) ->] header is
    optional).  [name] defaults to ["anonymous"]. *)

val parse_expr : string -> (Ast.expr, error) result
(** Parse a single expression (tests and tooling). *)
