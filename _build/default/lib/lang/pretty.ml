open Ast

(* Precedence levels, loosely following F#: higher binds tighter. *)
let binop_prec = function
  | Or -> 2
  | And -> 3
  | Eq | Ne | Lt | Le | Gt | Ge -> 4
  | Bor | Bxor -> 5
  | Band -> 6
  | Shl | Shr -> 7
  | Add | Sub -> 8
  | Mul | Div | Rem -> 9

let entity_field ent name = Printf.sprintf "%s.%s" (entity_to_string ent) name

let rec pp_expr fmt prec e =
  let paren p body =
    if prec > p then Format.fprintf fmt "(%t)" body else body fmt
  in
  match e with
  | Int v ->
    (* Negative literals are parenthesized so they re-parse as literals
       rather than a subtraction in argument position. *)
    if Int64.compare v 0L < 0 then Format.fprintf fmt "(%LdL)" v
    else Format.fprintf fmt "%LdL" v
  | Bool b -> Format.fprintf fmt "%b" b
  | Unit -> Format.fprintf fmt "()"
  | Var x -> Format.fprintf fmt "%s" x
  | Field (ent, name) -> Format.fprintf fmt "%s" (entity_field ent name)
  | Arr_get (ent, name, i) ->
    Format.fprintf fmt "%s.[%a]" (entity_field ent name) (fun f -> pp_expr f 0) i
  | Arr_len (ent, name) -> Format.fprintf fmt "%s.Length" (entity_field ent name)
  | Let { name; mutable_; rhs; body } ->
    paren 0 (fun fmt ->
        Format.fprintf fmt "@[<v>let %s%s = %a@,%a@]"
          (if mutable_ then "mutable " else "")
          name
          (fun f -> pp_expr f 0)
          rhs
          (fun f -> pp_expr f 0)
          body)
  | Assign (x, v) ->
    paren 1 (fun fmt -> Format.fprintf fmt "%s <- %a" x (fun f -> pp_expr f 2) v)
  | Set_field (ent, name, v) ->
    paren 1 (fun fmt ->
        Format.fprintf fmt "%s <- %a" (entity_field ent name) (fun f -> pp_expr f 2) v)
  | Arr_set (ent, name, i, v) ->
    paren 1 (fun fmt ->
        Format.fprintf fmt "%s.[%a] <- %a" (entity_field ent name)
          (fun f -> pp_expr f 0)
          i
          (fun f -> pp_expr f 2)
          v)
  | If (c, t, Unit) ->
    (* Branches print at precedence 1 so sequences and lets come out
       parenthesized — the parser's branch bodies are single statements. *)
    paren 1 (fun fmt ->
        Format.fprintf fmt "@[<v>if %a then@;<1 2>@[<v>%a@]@]"
          (fun f -> pp_expr f 0)
          c
          (fun f -> pp_expr f 1)
          t)
  | If (c, t, f) ->
    (* A nested [if] in then-position is parenthesized, otherwise the
       [else] would attach to it on re-parse (dangling else). *)
    let then_prec = match t with If _ -> 2 | _ -> 1 in
    paren 1 (fun fmt ->
        Format.fprintf fmt "@[<v>if %a then@;<1 2>@[<v>%a@]@,else@;<1 2>@[<v>%a@]@]"
          (fun fm -> pp_expr fm 0)
          c
          (fun fm -> pp_expr fm then_prec)
          t
          (fun fm -> pp_expr fm 1)
          f)
  | While (c, b) ->
    paren 1 (fun fmt ->
        Format.fprintf fmt "@[<v>while %a do@;<1 2>@[<v>%a@]@,done@]"
          (fun f -> pp_expr f 0)
          c
          (fun f -> pp_expr f 0)
          b)
  | Seq (a, b) ->
    paren 0 (fun fmt ->
        Format.fprintf fmt "@[<v>%a@,%a@]"
          (fun f -> pp_expr f 1)
          a
          (fun f -> pp_expr f 0)
          b)
  | Binop (op, a, b) ->
    let p = binop_prec op in
    paren p (fun fmt ->
        Format.fprintf fmt "%a %s %a"
          (fun f -> pp_expr f p)
          a (binop_to_string op)
          (fun f -> pp_expr f (Stdlib.( + ) p 1))
          b)
  | Unop (Neg, a) -> paren 10 (fun fmt -> Format.fprintf fmt "-%a" (fun f -> pp_expr f 11) a)
  | Unop (Not, a) ->
    paren 10 (fun fmt -> Format.fprintf fmt "not %a" (fun f -> pp_expr f 11) a)
  | Call (fn, args) ->
    paren 10 (fun fmt ->
        Format.fprintf fmt "%s%t" fn (fun fmt ->
            if args = [] then Format.fprintf fmt " ()"
            else
              List.iter (fun a -> Format.fprintf fmt " %a" (fun f -> pp_expr f 11) a) args))
  | Rand b -> paren 10 (fun fmt -> Format.fprintf fmt "rand %a" (fun f -> pp_expr f 11) b)
  | Clock -> Format.fprintf fmt "clock ()"
  | Hash (a, b) ->
    paren 10 (fun fmt ->
        Format.fprintf fmt "hash %a %a"
          (fun f -> pp_expr f 11)
          a
          (fun f -> pp_expr f 11)
          b)

let pp_fundef fmt (fd : fundef) =
  (* Precedence 1: a sequence or let body gets parentheses, matching the
     parser's single-statement function bodies. *)
  Format.fprintf fmt "@[<v>let rec %s %s =@;<1 2>@[<v>%a@]@]" fd.fn_name
    (if fd.fn_params = [] then "()" else String.concat " " fd.fn_params)
    (fun f -> pp_expr f 1)
    fd.fn_body

let pp_action fmt (t : t) =
  Format.fprintf fmt "@[<v>fun (packet : Packet, msg : Message, _global : Global) ->@,";
  List.iter (fun fd -> Format.fprintf fmt "  @[<v>%a@]@," pp_fundef fd) t.af_funs;
  Format.fprintf fmt "  @[<v>%a@]@]" (fun f -> pp_expr f 0) t.af_body

let expr_to_string e = Format.asprintf "%a" (fun f -> pp_expr f 0) e
let action_to_string t = Format.asprintf "%a" pp_action t
