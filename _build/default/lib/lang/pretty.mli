(** F#-style rendering of action functions.

    Reproduces the paper's program listings (e.g. Fig. 7): actions are
    printed as F# lambdas over [(packet, msg, _global)] with [let]
    bindings, [let rec] auxiliaries and [<-] assignments, so the bench
    harness can emit the same listings the paper shows. *)

val expr_to_string : Ast.expr -> string
val action_to_string : Ast.t -> string
val pp_action : Format.formatter -> Ast.t -> unit
