type ty = T_int | T_bool | T_unit

let ty_to_string = function T_int -> "int" | T_bool -> "bool" | T_unit -> "unit"

type error = { message : string }

let pp_error fmt e = Format.pp_print_string fmt e.message

exception Type_error of string

let err fmt = Printf.ksprintf (fun message -> raise (Type_error message)) fmt

module Smap = Map.Make (String)

type binding = { b_ty : ty; b_mutable : bool }

(* Environment: locals in scope, the function table, and — while checking a
   recursive function body — the assumed return type of the function itself. *)
type ctx = {
  schema : Schema.t;
  locals : binding Smap.t;
  funs : Ast.fundef Smap.t;
  fun_returns : ty Smap.t;  (* known return types *)
  checking : string list;  (* stack of functions currently being checked *)
}

let lookup_field ctx ent name =
  match Schema.find_field ctx.schema ent name with
  | Some f -> f
  | None -> err "entity %s has no field %S" (Ast.entity_to_string ent) name

let lookup_array ctx ent name =
  match Schema.find_array ctx.schema ent name with
  | Some a -> a
  | None -> err "entity %s has no array %S" (Ast.entity_to_string ent) name

let expect what expected found =
  if expected <> found then
    err "%s: expected %s, found %s" what (ty_to_string expected) (ty_to_string found)

let rec infer ctx (e : Ast.expr) : ty =
  match e with
  | Int _ -> T_int
  | Bool _ -> T_bool
  | Unit -> T_unit
  | Var x -> (
    match Smap.find_opt x ctx.locals with
    | Some b -> b.b_ty
    | None -> err "unbound variable %S" x)
  | Field (ent, name) ->
    ignore (lookup_field ctx ent name);
    T_int
  | Arr_get (ent, name, idx) ->
    ignore (lookup_array ctx ent name);
    expect "array index" T_int (infer ctx idx);
    T_int
  | Arr_len (ent, name) ->
    ignore (lookup_array ctx ent name);
    T_int
  | Let { name; mutable_; rhs; body } ->
    let rhs_ty = infer ctx rhs in
    if rhs_ty = T_unit then err "let %s: cannot bind unit" name;
    let locals = Smap.add name { b_ty = rhs_ty; b_mutable = mutable_ } ctx.locals in
    infer { ctx with locals } body
  | Assign (x, rhs) -> (
    match Smap.find_opt x ctx.locals with
    | None -> err "assignment to unbound variable %S" x
    | Some b ->
      if not b.b_mutable then err "assignment to immutable variable %S" x;
      expect (Printf.sprintf "assignment to %s" x) b.b_ty (infer ctx rhs);
      T_unit)
  | Set_field (ent, name, rhs) ->
    let f = lookup_field ctx ent name in
    if f.f_access = Schema.Read_only then
      err "field %s.%s is read-only" (Ast.entity_to_string ent) name;
    expect (Printf.sprintf "%s.%s <-" (Ast.entity_to_string ent) name) T_int
      (infer ctx rhs);
    T_unit
  | Arr_set (ent, name, idx, rhs) ->
    let a = lookup_array ctx ent name in
    if a.a_access = Schema.Read_only then
      err "array %s.%s is read-only" (Ast.entity_to_string ent) name;
    expect "array index" T_int (infer ctx idx);
    expect "array element" T_int (infer ctx rhs);
    T_unit
  | If (cond, then_, else_) ->
    expect "if condition" T_bool (infer ctx cond);
    let t1 = infer ctx then_ in
    let t2 = infer ctx else_ in
    if t1 <> t2 then
      err "if branches disagree: %s vs %s" (ty_to_string t1) (ty_to_string t2);
    t1
  | While (cond, body) ->
    expect "while condition" T_bool (infer ctx cond);
    expect "while body" T_unit (infer ctx body);
    T_unit
  | Seq (a, b) ->
    expect "sequence left-hand side" T_unit (infer ctx a);
    infer ctx b
  | Binop (op, a, b) -> (
    let ta = infer ctx a in
    let tb = infer ctx b in
    match op with
    | Add | Sub | Mul | Div | Rem | Band | Bor | Bxor | Shl | Shr ->
      expect "arithmetic operand" T_int ta;
      expect "arithmetic operand" T_int tb;
      T_int
    | And | Or ->
      expect "boolean operand" T_bool ta;
      expect "boolean operand" T_bool tb;
      T_bool
    | Eq | Ne | Lt | Le | Gt | Ge ->
      expect "comparison operand" T_int ta;
      expect "comparison operand" T_int tb;
      T_bool)
  | Unop (Neg, a) ->
    expect "negation operand" T_int (infer ctx a);
    T_int
  | Unop (Not, a) ->
    expect "not operand" T_bool (infer ctx a);
    T_bool
  | Call (fn, args) -> (
    match Smap.find_opt fn ctx.funs with
    | None -> err "call to undefined function %S" fn
    | Some fd ->
      let n_params = List.length fd.fn_params in
      let n_args = List.length args in
      if n_params <> n_args then
        err "function %S expects %d argument(s), got %d" fn n_params n_args;
      List.iter (fun a -> expect "function argument" T_int (infer ctx a)) args;
      return_type ctx fn fd)
  | Rand bound ->
    expect "rand bound" T_int (infer ctx bound);
    T_int
  | Clock -> T_int
  | Hash (a, b) ->
    expect "hash operand" T_int (infer ctx a);
    expect "hash operand" T_int (infer ctx b);
    T_int

and return_type ctx fn fd =
  match Smap.find_opt fn ctx.fun_returns with
  | Some ty -> ty
  | None ->
    if List.mem fn ctx.checking then
      (* Recursive occurrence: recursive functions return int by convention
         (the only recursive functions the compiler accepts are loop-shaped
         integer searches). *)
      T_int
    else begin
      let locals =
        List.fold_left
          (fun acc p -> Smap.add p { b_ty = T_int; b_mutable = false } acc)
          Smap.empty fd.fn_params
      in
      let ty =
        infer { ctx with locals; checking = fn :: ctx.checking } fd.fn_body
      in
      ty
    end

let initial_ctx schema (t : Ast.t) =
  let funs =
    List.fold_left
      (fun acc (fd : Ast.fundef) ->
        if Smap.mem fd.fn_name acc then err "duplicate function %S" fd.fn_name
        else Smap.add fd.fn_name fd acc)
      Smap.empty t.af_funs
  in
  { schema; locals = Smap.empty; funs; fun_returns = Smap.empty; checking = [] }

let check schema t =
  try
    let ctx = initial_ctx schema t in
    (* Check every auxiliary function even if unused. *)
    Smap.iter (fun name fd -> ignore (return_type ctx name fd)) ctx.funs;
    let body_ty = infer ctx t.af_body in
    if body_ty <> T_unit then
      err "action body must have type unit, found %s" (ty_to_string body_ty);
    Ok ()
  with Type_error message -> Error { message }

let infer_fun_return schema t fn =
  try
    let ctx = initial_ctx schema t in
    match Smap.find_opt fn ctx.funs with
    | None -> Error { message = Printf.sprintf "no function %S" fn }
    | Some fd -> Ok (return_type ctx fn fd)
  with Type_error message -> Error { message }
