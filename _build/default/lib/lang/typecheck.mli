(** Type checking for action functions.

    The language has three value types — integers, booleans, unit — and no
    implicit conversions.  Entity fields and array elements are integers.
    The checker also enforces the annotation discipline of §3.4.4: writes
    only to [Read_write] fields and arrays, assignments only to
    [let mutable] locals, and an overall [unit] body (an action's effects
    are its writes, not a return value). *)

type ty = T_int | T_bool | T_unit

val ty_to_string : ty -> string

type error = { message : string }

val pp_error : Format.formatter -> error -> unit

val check : Schema.t -> Ast.t -> (unit, error) result

val infer_fun_return : Schema.t -> Ast.t -> string -> (ty, error) result
(** Return type of a named auxiliary function (used by the compiler). *)
