lib/netsim/event.ml: Array Eden_base
