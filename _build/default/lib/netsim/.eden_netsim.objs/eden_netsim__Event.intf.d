lib/netsim/event.mli: Eden_base
