lib/netsim/fabric.ml: Array Host Net Switch
