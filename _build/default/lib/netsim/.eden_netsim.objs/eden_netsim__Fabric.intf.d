lib/netsim/fabric.mli: Eden_base Host Net Switch
