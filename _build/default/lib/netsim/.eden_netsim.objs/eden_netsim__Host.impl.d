lib/netsim/host.ml: Eden_base Eden_enclave Event Hashtbl Int64 Link Option Tcp
