lib/netsim/host.mli: Eden_base Eden_enclave Event Link Tcp
