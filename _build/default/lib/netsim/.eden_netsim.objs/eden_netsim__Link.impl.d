lib/netsim/link.ml: Eden_base Eden_enclave Event Trace
