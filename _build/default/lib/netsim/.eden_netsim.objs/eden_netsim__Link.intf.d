lib/netsim/link.mli: Eden_base Event Trace
