lib/netsim/net.ml: Eden_base Event Host Int64 Link List Option Printf Switch Tcp Trace
