lib/netsim/net.mli: Eden_base Event Host Switch Tcp Trace
