lib/netsim/switch.ml: Array Eden_base Hashtbl Link
