lib/netsim/switch.mli: Eden_base Event Link
