lib/netsim/tcp.ml: Array Eden_base Event Float Hashtbl Int64 List Option
