lib/netsim/tcp.mli: Eden_base Event
