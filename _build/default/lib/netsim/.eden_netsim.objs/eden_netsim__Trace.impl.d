lib/netsim/trace.ml: Array Eden_base Format Fun List String
