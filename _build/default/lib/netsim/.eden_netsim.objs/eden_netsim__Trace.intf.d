lib/netsim/trace.mli: Eden_base Format
