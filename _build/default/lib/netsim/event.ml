module Time = Eden_base.Time

type entry = { at : Time.t; seq : int; fire : unit -> unit }

(* Binary min-heap ordered by (at, seq). *)
type t = {
  mutable heap : entry array;
  mutable size : int;
  mutable clock : Time.t;
  mutable next_seq : int;
}

let dummy = { at = 0L; seq = 0; fire = (fun () -> ()) }
let create () = { heap = Array.make 256 dummy; size = 0; clock = Time.zero; next_seq = 0 }
let now t = t.clock

let earlier a b = Time.( < ) a.at b.at || (Time.compare a.at b.at = 0 && a.seq < b.seq)

let swap t i j =
  let tmp = t.heap.(i) in
  t.heap.(i) <- t.heap.(j);
  t.heap.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if earlier t.heap.(i) t.heap.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && earlier t.heap.(l) t.heap.(!smallest) then smallest := l;
  if r < t.size && earlier t.heap.(r) t.heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let schedule_at t at fire =
  let at = Time.max at t.clock in
  if t.size = Array.length t.heap then begin
    let bigger = Array.make (2 * t.size) dummy in
    Array.blit t.heap 0 bigger 0 t.size;
    t.heap <- bigger
  end;
  t.heap.(t.size) <- { at; seq = t.next_seq; fire };
  t.next_seq <- t.next_seq + 1;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let schedule_in t delta fire =
  schedule_at t (Time.add t.clock (Time.max delta Time.zero)) fire

let pending t = t.size

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.heap.(0) in
    t.size <- t.size - 1;
    t.heap.(0) <- t.heap.(t.size);
    t.heap.(t.size) <- dummy;
    if t.size > 0 then sift_down t 0;
    Some top
  end

let step t =
  match pop t with
  | None -> false
  | Some e ->
    t.clock <- e.at;
    e.fire ();
    true

let run ?until ?max_events t =
  let fired = ref 0 in
  let continue () =
    (match max_events with Some m -> !fired < m | None -> true)
    && t.size > 0
    && (match until with
       | Some stop -> Time.( <= ) t.heap.(0).at stop
       | None -> true)
    &&
    match pop t with
    | None -> false
    | Some e ->
      t.clock <- e.at;
      e.fire ();
      incr fired;
      true
  in
  while continue () do
    ()
  done;
  (* When stopped by [until] (not by [max_events]), advance the clock to
     the horizon so repeated bounded runs observe monotonic time. *)
  match until with
  | Some stop ->
    if
      (t.size = 0 || Time.( > ) t.heap.(0).at stop)
      && Time.( < ) t.clock stop
    then t.clock <- stop
  | None -> ()
