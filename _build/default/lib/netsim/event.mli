(** Discrete-event engine.

    A binary-heap calendar of closures.  Events scheduled for the same
    instant fire in schedule order (a strict tiebreaker keeps runs
    deterministic). *)

type t

val create : unit -> t

val now : t -> Eden_base.Time.t

val schedule_at : t -> Eden_base.Time.t -> (unit -> unit) -> unit
(** Schedule at an absolute time; times in the past fire "now". *)

val schedule_in : t -> Eden_base.Time.t -> (unit -> unit) -> unit
(** Schedule after a relative delay (clamped to ≥ 0). *)

val pending : t -> int

val run : ?until:Eden_base.Time.t -> ?max_events:int -> t -> unit
(** Dispatch events in time order until the calendar empties, the clock
    passes [until], or [max_events] have fired. *)

val step : t -> bool
(** Dispatch one event; [false] when the calendar is empty. *)
