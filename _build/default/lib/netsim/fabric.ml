type t = {
  net : Net.t;
  hosts : Host.t array;
  leaves : Switch.t array;
  spines : Switch.t array;
}

let star ?(host_rate_bps = 10e9) ?capacity_bytes ?ecn_threshold_bytes net ~hosts =
  if hosts < 1 then invalid_arg "Fabric.star: need at least one host";
  let sw = Net.add_switch net in
  let host_arr =
    Array.init hosts (fun _ ->
        let h = Net.add_host net in
        let port =
          Net.connect_host net h sw ~rate_bps:host_rate_bps ?capacity_bytes
            ?ecn_threshold_bytes ()
        in
        Switch.set_dst_route sw ~dst:(Host.id h) ~ports:[ port ];
        h)
  in
  { net; hosts = host_arr; leaves = [| sw |]; spines = [||] }

let leaf_spine ?(host_rate_bps = 10e9) ?(fabric_rate_bps = 40e9) ?capacity_bytes
    ?ecn_threshold_bytes net ~leaves ~spines ~hosts_per_leaf =
  if leaves < 1 || spines < 1 || hosts_per_leaf < 1 then
    invalid_arg "Fabric.leaf_spine: all dimensions must be at least 1";
  let leaf_arr = Array.init leaves (fun _ -> Net.add_switch net) in
  let spine_arr = Array.init spines (fun _ -> Net.add_switch net) in
  (* Leaf <-> spine mesh; remember port indices both ways. *)
  let leaf_up = Array.make_matrix leaves spines 0 in
  (* port on leaf l toward spine s *)
  let spine_down = Array.make_matrix spines leaves 0 in
  (* port on spine s toward leaf l *)
  Array.iteri
    (fun l leaf ->
      Array.iteri
        (fun s spine ->
          let pl, ps =
            Net.connect_switches net leaf spine ~rate_bps:fabric_rate_bps ?capacity_bytes
              ?ecn_threshold_bytes ()
          in
          leaf_up.(l).(s) <- pl;
          spine_down.(s).(l) <- ps)
        spine_arr)
    leaf_arr;
  (* Hosts, leaf-major. *)
  let hosts =
    Array.init (leaves * hosts_per_leaf) (fun i ->
        let l = i / hosts_per_leaf in
        let h = Net.add_host net in
        let port =
          Net.connect_host net h leaf_arr.(l) ~rate_bps:host_rate_bps ?capacity_bytes
            ?ecn_threshold_bytes ()
        in
        Switch.set_dst_route leaf_arr.(l) ~dst:(Host.id h) ~ports:[ port ];
        h)
  in
  (* Routing: leaves send non-local traffic to all spines (ECMP); spines
     know which leaf owns each host. *)
  Array.iteri
    (fun i h ->
      let owner = i / hosts_per_leaf in
      Array.iteri
        (fun l leaf ->
          if l <> owner then
            Switch.set_dst_route leaf ~dst:(Host.id h)
              ~ports:(Array.to_list leaf_up.(l)))
        leaf_arr;
      Array.iteri
        (fun s spine ->
          Switch.set_dst_route spine ~dst:(Host.id h) ~ports:[ spine_down.(s).(owner) ])
        spine_arr)
    hosts;
  { net; hosts; leaves = leaf_arr; spines = spine_arr }

let host_leaf t host =
  let per_leaf =
    if Array.length t.leaves = 0 then invalid_arg "Fabric.host_leaf: no leaves"
    else Array.length t.hosts / Array.length t.leaves
  in
  let idx = host - Host.id t.hosts.(0) in
  if idx < 0 || idx >= Array.length t.hosts then
    invalid_arg "Fabric.host_leaf: not a fabric host";
  t.leaves.(idx / per_leaf)

let install_spine_labels t ~base_label =
  Array.iteri
    (fun l leaf ->
      Array.iteri
        (fun s _ ->
          (* Port indices on the leaf toward spine s: spines were connected
             before hosts, so leaf port s is the uplink to spine s. *)
          Switch.set_label_route leaf ~label:(base_label + s) ~port:s;
          ignore l)
        t.spines)
    t.leaves
