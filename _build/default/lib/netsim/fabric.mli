(** Datacenter fabric builders.

    Constructs standard topologies on a {!Net} with routing pre-wired:
    a single-switch star and a two-tier leaf–spine Clos (the shape of the
    paper's deployment setting).  Leaf switches ECMP across every spine
    for non-local destinations; label routes can be layered on top for
    Eden's source routing. *)

type t = {
  net : Net.t;
  hosts : Host.t array;
  leaves : Switch.t array;
  spines : Switch.t array;
}

val star :
  ?host_rate_bps:float ->
  ?capacity_bytes:int ->
  ?ecn_threshold_bytes:int ->
  Net.t ->
  hosts:int ->
  t
(** [hosts] hosts on one switch (exposed as the single "leaf"). *)

val leaf_spine :
  ?host_rate_bps:float ->
  ?fabric_rate_bps:float ->
  ?capacity_bytes:int ->
  ?ecn_threshold_bytes:int ->
  Net.t ->
  leaves:int ->
  spines:int ->
  hosts_per_leaf:int ->
  t
(** Hosts are numbered leaf-major: host [l * hosts_per_leaf + i] sits on
    leaf [l].  Default rates: 10 Gbps host links, 40 Gbps fabric links. *)

val host_leaf : t -> Eden_base.Addr.host -> Switch.t
(** The leaf a host attaches to. *)

val install_spine_labels : t -> base_label:int -> unit
(** Program label routes so that label [base_label + s] pins a packet's
    leaf->spine hop to spine [s] (the spine and destination leaf then
    route by destination) — source-routed path control as in §3.5. *)
