module Time = Eden_base.Time
module Packet = Eden_base.Packet
module Priority = Eden_enclave.Queueing.Priority

type stats = {
  mutable tx_packets : int;
  mutable tx_bytes : int;
  mutable dropped_packets : int;
}

type t = {
  ev : Event.t;
  rate_bps : float;
  delay : Time.t;
  name : string;
  ecn_threshold_bytes : int option;
  buffer : Packet.t Priority.t;
  mutable deliver : (Packet.t -> unit) option;
  mutable busy : bool;
  mutable tracer : (Trace.entry -> unit) option;
  stats : stats;
}

let create ?(capacity_bytes = 512 * 1024) ?(name = "link") ?ecn_threshold_bytes ev
    ~rate_bps ~delay () =
  if rate_bps <= 0.0 then invalid_arg "Link.create: rate must be positive";
  {
    ev;
    rate_bps;
    delay;
    name;
    ecn_threshold_bytes;
    buffer = Priority.create ~capacity_bytes ();
    deliver = None;
    busy = false;
    tracer = None;
    stats = { tx_packets = 0; tx_bytes = 0; dropped_packets = 0 };
  }

let attach t deliver = t.deliver <- Some deliver
let set_tracer t tracer = t.tracer <- Some tracer

let trace t kind (pkt : Packet.t) =
  match t.tracer with
  | None -> ()
  | Some f ->
    f
      {
        Trace.at = Event.now t.ev;
        link = t.name;
        kind;
        packet_id = pkt.Packet.id;
        flow = pkt.Packet.flow;
        packet_kind = pkt.Packet.kind;
        size = Packet.wire_size pkt;
        priority = pkt.Packet.priority;
      }

let tx_time t bytes = Time.of_float_ns (float_of_int bytes *. 8.0 /. t.rate_bps *. 1e9)

let rec start_tx t =
  match Priority.pop t.buffer with
  | None -> t.busy <- false
  | Some pkt ->
    t.busy <- true;
    let bytes = Packet.wire_size pkt in
    let tx = tx_time t bytes in
    t.stats.tx_packets <- t.stats.tx_packets + 1;
    t.stats.tx_bytes <- t.stats.tx_bytes + bytes;
    (* Delivery happens a propagation delay after serialization ends. *)
    Event.schedule_in t.ev (Time.add tx t.delay) (fun () ->
        trace t Trace.Delivered pkt;
        match t.deliver with
        | Some deliver -> deliver pkt
        | None -> ());
    Event.schedule_in t.ev tx (fun () -> start_tx t)

let send t pkt =
  (* DCTCP-style marking: set the congestion bit when the instantaneous
     queue exceeds the threshold K. *)
  (match t.ecn_threshold_bytes with
  | Some k when Priority.bytes t.buffer > k -> pkt.Packet.ecn <- true
  | Some _ | None -> ());
  let ok = Priority.push t.buffer ~prio:pkt.Packet.priority ~size:(Packet.wire_size pkt) pkt in
  if not ok then begin
    t.stats.dropped_packets <- t.stats.dropped_packets + 1;
    trace t Trace.Dropped pkt
  end
  else begin
    trace t Trace.Enqueued pkt;
    if not t.busy then start_tx t
  end;
  ok

let rate_bps t = t.rate_bps
let stats t = t.stats
let queue_bytes t = Priority.bytes t.buffer
let name t = t.name
