(** Unidirectional links with strict-priority egress buffering.

    A link models one output port of a device: a priority buffer
    (802.1q-style, 8 levels, drop-tail on a shared byte budget), a
    serializer running at the link rate, and a propagation delay to the
    attached peer.  Transmission completions and deliveries are scheduled
    on the shared {!Event} calendar. *)

type t

type stats = {
  mutable tx_packets : int;
  mutable tx_bytes : int;
  mutable dropped_packets : int;
}

val create :
  ?capacity_bytes:int ->
  ?name:string ->
  ?ecn_threshold_bytes:int ->
  Event.t ->
  rate_bps:float ->
  delay:Eden_base.Time.t ->
  unit ->
  t
(** Default buffer capacity: 512 KB, a typical shallow datacenter port.
    [ecn_threshold_bytes] enables DCTCP-style marking: packets enqueued
    while the buffer holds more than the threshold get their ECN bit
    set. *)

val attach : t -> (Eden_base.Packet.t -> unit) -> unit
(** Set the receiver at the far end.  Must be called before traffic. *)

val set_tracer : t -> (Trace.entry -> unit) -> unit
(** Report every enqueue / delivery / drop on this link (see {!Trace}). *)

val send : t -> Eden_base.Packet.t -> bool
(** Enqueue for transmission at the packet's priority; [false] when the
    buffer overflowed and the packet was dropped. *)

val rate_bps : t -> float
val stats : t -> stats
val queue_bytes : t -> int
val name : t -> string
