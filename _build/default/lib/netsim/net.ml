module Addr = Eden_base.Addr
module Time = Eden_base.Time
module Rng = Eden_base.Rng
module Metadata = Eden_base.Metadata

type t = {
  ev : Event.t;
  rng : Rng.t;
  mutable hosts : Host.t list;  (* reversed *)
  mutable switches : Switch.t list;  (* reversed *)
  mutable next_host : int;
  mutable next_switch : int;
  mutable next_packet_id : int64;
  mutable completions : Tcp.Sender.flow_completion list;  (* reversed *)
  mutable links : Link.t list;  (* reversed *)
  mutable tracer : Trace.t option;
}

let create ?(seed = 42L) () =
  {
    ev = Event.create ();
    rng = Rng.create seed;
    hosts = [];
    switches = [];
    next_host = 0;
    next_switch = 0;
    next_packet_id = 0L;
    completions = [];
    links = [];
    tracer = None;
  }

let event t = t.ev
let now t = Event.now t.ev
let rng t = t.rng

let alloc_packet_id t =
  let id = t.next_packet_id in
  t.next_packet_id <- Int64.add id 1L;
  id

let add_host t =
  let id = t.next_host in
  t.next_host <- id + 1;
  let h =
    Host.create ~seed:(Rng.int64 t.rng) t.ev ~id
      ~alloc_packet_id:(fun () -> alloc_packet_id t)
  in
  t.hosts <- h :: t.hosts;
  h

let add_switch t =
  let id = t.next_switch in
  t.next_switch <- id + 1;
  let s = Switch.create t.ev ~id in
  t.switches <- s :: t.switches;
  s

let host t id =
  match List.find_opt (fun h -> Host.id h = id) t.hosts with
  | Some h -> h
  | None -> invalid_arg (Printf.sprintf "Net.host: no host %d" id)

let hosts t = List.rev t.hosts
let switches t = List.rev t.switches

let register_link t link =
  t.links <- link :: t.links;
  match t.tracer with
  | Some tr -> Link.set_tracer link (Trace.record tr)
  | None -> ()

let enable_tracing ?capacity t =
  match t.tracer with
  | Some tr -> tr
  | None ->
    let tr = Trace.create ?capacity () in
    t.tracer <- Some tr;
    List.iter (fun l -> Link.set_tracer l (Trace.record tr)) t.links;
    tr

let trace t = t.tracer

let default_delay = Time.us 1

let connect_host t h s ~rate_bps ?(delay = default_delay) ?capacity_bytes
    ?ecn_threshold_bytes () =
  let up =
    Link.create ?capacity_bytes ?ecn_threshold_bytes t.ev ~rate_bps ~delay
      ~name:(Printf.sprintf "h%d->s%d" (Host.id h) (Switch.id s))
      ()
  in
  let down =
    Link.create ?capacity_bytes ?ecn_threshold_bytes t.ev ~rate_bps ~delay
      ~name:(Printf.sprintf "s%d->h%d" (Switch.id s) (Host.id h))
      ()
  in
  Link.attach up (fun pkt -> Switch.receive s pkt);
  Link.attach down (fun pkt -> Host.receive h pkt);
  register_link t up;
  register_link t down;
  Host.set_uplink h up;
  Switch.add_port s down

let connect_switches t a b ~rate_bps ?(delay = default_delay) ?capacity_bytes
    ?ecn_threshold_bytes () =
  let ab =
    Link.create ?capacity_bytes ?ecn_threshold_bytes t.ev ~rate_bps ~delay
      ~name:(Printf.sprintf "s%d->s%d" (Switch.id a) (Switch.id b))
      ()
  in
  let ba =
    Link.create ?capacity_bytes ?ecn_threshold_bytes t.ev ~rate_bps ~delay
      ~name:(Printf.sprintf "s%d->s%d" (Switch.id b) (Switch.id a))
      ()
  in
  Link.attach ab (fun pkt -> Switch.receive b pkt);
  Link.attach ba (fun pkt -> Switch.receive a pkt);
  register_link t ab;
  register_link t ba;
  let pa = Switch.add_port a ab in
  let pb = Switch.add_port b ba in
  (pa, pb)

type flow = {
  f_sender : Tcp.Sender.t;
  f_receiver : Tcp.Receiver.t;
  f_tuple : Addr.five_tuple;
}

let open_flow t ~src ~dst ?(dst_port = 80) ?config ?on_complete ?on_message_received () =
  let src_host = host t src in
  let dst_host = host t dst in
  let tuple =
    Addr.five_tuple
      ~src:(Addr.endpoint src (Host.fresh_port src_host))
      ~dst:(Addr.endpoint dst dst_port) ~proto:Addr.Tcp
  in
  let config = Option.value ~default:(Host.tcp_config src_host) config in
  let on_flow_complete fc =
    t.completions <- fc :: t.completions;
    Host.unregister_flow src_host tuple;
    Host.unregister_flow dst_host tuple;
    match on_complete with Some f -> f fc | None -> ()
  in
  let sender =
    Tcp.Sender.create ~config ~on_flow_complete ~ev:t.ev ~flow:tuple
      ~alloc_packet_id:(fun () -> alloc_packet_id t)
      ~transmit:(fun pkt -> Host.transmit src_host pkt)
      ()
  in
  let receiver =
    Tcp.Receiver.create ~config ?on_message:on_message_received ~ev:t.ev ~flow:tuple
      ~alloc_packet_id:(fun () -> alloc_packet_id t)
      ~transmit:(fun pkt -> Host.transmit dst_host pkt)
      ()
  in
  Host.register_sender src_host sender;
  Host.register_receiver dst_host ~flow:tuple receiver;
  { f_sender = sender; f_receiver = receiver; f_tuple = tuple }

let start_flow t ~src ~dst ?dst_port ?config ?metadata ?on_complete ~size () =
  let flow = open_flow t ~src ~dst ?dst_port ?config ?on_complete () in
  let metadata = Option.value ~default:Metadata.empty metadata in
  Tcp.Sender.send_message flow.f_sender ~metadata size;
  Tcp.Sender.close flow.f_sender;
  flow

let run ?until t = Event.run ?until t.ev
let completions t = List.rev t.completions
