(** Topology builder and simulation façade.

    Owns the event calendar, the packet-id allocator, hosts and switches,
    and flow bookkeeping (completions, goodput).  Experiments build a
    topology, start flows (optionally with per-message metadata from a
    stage), run the calendar, and read the metrics back. *)

type t

val create : ?seed:int64 -> unit -> t
val event : t -> Event.t
val now : t -> Eden_base.Time.t
val rng : t -> Eden_base.Rng.t

val add_host : t -> Host.t
(** Hosts receive consecutive ids starting at 0. *)

val add_switch : t -> Switch.t
val host : t -> Eden_base.Addr.host -> Host.t
val hosts : t -> Host.t list
val switches : t -> Switch.t list

val connect_host :
  t ->
  Host.t ->
  Switch.t ->
  rate_bps:float ->
  ?delay:Eden_base.Time.t ->
  ?capacity_bytes:int ->
  ?ecn_threshold_bytes:int ->
  unit ->
  int
(** Bidirectional host–switch attachment; the host's uplink is set and
    the switch gains a port toward the host whose index is returned.
    Default delay 1 µs. *)

val connect_switches :
  t ->
  Switch.t ->
  Switch.t ->
  rate_bps:float ->
  ?delay:Eden_base.Time.t ->
  ?capacity_bytes:int ->
  ?ecn_threshold_bytes:int ->
  unit ->
  int * int
(** Bidirectional switch–switch trunk; returns (port on a toward b,
    port on b toward a). *)

(** {2 Flows} *)

type flow = {
  f_sender : Tcp.Sender.t;
  f_receiver : Tcp.Receiver.t;
  f_tuple : Eden_base.Addr.five_tuple;
}

val open_flow :
  t ->
  src:Eden_base.Addr.host ->
  dst:Eden_base.Addr.host ->
  ?dst_port:int ->
  ?config:Tcp.config ->
  ?on_complete:(Tcp.Sender.flow_completion -> unit) ->
  ?on_message_received:(Eden_base.Metadata.t -> Eden_base.Time.t -> unit) ->
  unit ->
  flow
(** Wire a sender on [src] to a receiver on [dst].  Completions are also
    recorded in {!completions}; on completion the flow is unregistered on
    both hosts (closing enclave flow state). *)

val start_flow :
  t ->
  src:Eden_base.Addr.host ->
  dst:Eden_base.Addr.host ->
  ?dst_port:int ->
  ?config:Tcp.config ->
  ?metadata:Eden_base.Metadata.t ->
  ?on_complete:(Tcp.Sender.flow_completion -> unit) ->
  size:int ->
  unit ->
  flow
(** [open_flow] + one message of [size] bytes + close: the classic
    fixed-size flow whose FCT the paper's Fig. 9 measures. *)

val enable_tracing : ?capacity:int -> t -> Trace.t
(** Attach a {!Trace} recorder to every link, present and future;
    idempotent (returns the existing recorder on repeat calls). *)

val trace : t -> Trace.t option

val run : ?until:Eden_base.Time.t -> t -> unit

val completions : t -> Tcp.Sender.flow_completion list
(** In completion order. *)

val alloc_packet_id : t -> int64
