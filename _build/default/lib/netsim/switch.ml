module Addr = Eden_base.Addr
module Packet = Eden_base.Packet
module Rng = Eden_base.Rng

type t = {
  id : int;
  mutable ports : Link.t array;
  mutable n_ports : int;
  dst_routes : (Addr.host, int array) Hashtbl.t;
  label_routes : (int, int) Hashtbl.t;
  mutable rx_packets : int;
  mutable no_route_drops : int;
}

let create ?seed:_ _ev ~id =
  {
    id;
    ports = [||];
    n_ports = 0;
    dst_routes = Hashtbl.create 16;
    label_routes = Hashtbl.create 16;
    rx_packets = 0;
    no_route_drops = 0;
  }

let id t = t.id

let add_port t link =
  (* Ports are added a handful of times at topology-build time; appending
     is simpler than amortized growth. *)
  t.ports <- Array.append t.ports [| link |];
  t.n_ports <- t.n_ports + 1;
  t.n_ports - 1

let port t i =
  if i < 0 || i >= t.n_ports then invalid_arg "Switch.port: no such port";
  t.ports.(i)

let set_dst_route t ~dst ~ports = Hashtbl.replace t.dst_routes dst (Array.of_list ports)
let set_label_route t ~label ~port = Hashtbl.replace t.label_routes label port

let route t (pkt : Packet.t) =
  match pkt.Packet.route_label with
  | Some label when Hashtbl.mem t.label_routes label ->
    Some (Hashtbl.find t.label_routes label)
  | Some _ | None -> (
    (* A switch with no entry for the packet's label pops it: the label
       has left its routing domain (the paper's VLAN tags are similarly
       scoped to the engineered paths). *)
    if pkt.Packet.route_label <> None then pkt.Packet.route_label <- None;
    match Hashtbl.find_opt t.dst_routes pkt.Packet.flow.Addr.dst.Addr.host with
    | None -> None
    | Some [||] -> None
    | Some [| p |] -> Some p
    | Some ports ->
      (* ECMP: deterministic per-flow hashing. *)
      Some ports.(Addr.hash_five_tuple pkt.Packet.flow mod Array.length ports))

let receive t pkt =
  t.rx_packets <- t.rx_packets + 1;
  match route t pkt with
  | Some p -> ignore (Link.send t.ports.(p) pkt)
  | None -> t.no_route_drops <- t.no_route_drops + 1

let rx_packets t = t.rx_packets
let no_route_drops t = t.no_route_drops
