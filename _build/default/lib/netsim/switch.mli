(** Output-queued switches.

    Forwarding is label-first: a packet carrying a source-routing label
    (the 802.1q VLAN tag Eden uses for path control, §3.5) follows the
    switch's label table; everything else follows destination routes,
    with ECMP hashing over the five-tuple when a destination has several
    equal ports.  Priority queueing happens in the output {!Link}s. *)

type t

val create : ?seed:int64 -> Event.t -> id:int -> t
val id : t -> int

val add_port : t -> Link.t -> int
(** Register an output port; returns its index. *)

val port : t -> int -> Link.t

val set_dst_route : t -> dst:Eden_base.Addr.host -> ports:int list -> unit
(** ECMP set for a destination host. *)

val set_label_route : t -> label:int -> port:int -> unit
(** Label-forwarding entry (installed by the controller, e.g. via LDP or
    SPAIN-style spanning trees in the paper). *)

val receive : t -> Eden_base.Packet.t -> unit

val rx_packets : t -> int
val no_route_drops : t -> int
