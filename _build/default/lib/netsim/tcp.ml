module Time = Eden_base.Time
module Packet = Eden_base.Packet
module Addr = Eden_base.Addr
module Metadata = Eden_base.Metadata

type config = {
  mss : int;
  init_cwnd_segments : int;
  min_rto : Time.t;
  max_rto : Time.t;
  max_cwnd_bytes : int option;
  ack_priority : int;
  dupack_threshold : int;
  ecn : bool;  (* DCTCP-style reaction to marked ACKs *)
}

let default_config =
  {
    mss = 1460;
    init_cwnd_segments = 10;
    min_rto = Time.ms 2;
    max_rto = Time.ms 200;
    max_cwnd_bytes = None;
    ack_priority = 7;
    dupack_threshold = 3;
    ecn = false;
  }

(* Internal metadata field: the number of stream bytes a message spans. *)
let wire_len_field = "__wire_len"

(* A message is a contiguous byte range of the stream plus the metadata
   every packet of that range carries. *)
type message = {
  m_start : int;
  m_len : int;
  m_metadata : Metadata.t;
  m_on_complete : (Time.t -> unit) option;
}

module Sender = struct
  type flow_completion = {
    fc_flow : Addr.five_tuple;
    fc_bytes : int;
    fc_started : Time.t;
    fc_completed : Time.t;
    fc_retransmissions : int;
  }

  type t = {
    cfg : config;
    ev : Event.t;
    flow : Addr.five_tuple;
    alloc_packet_id : unit -> int64;
    transmit : Packet.t -> unit;
    on_flow_complete : (flow_completion -> unit) option;
    (* Stream state *)
    mutable messages : message array;  (* append-only, sorted by m_start *)
    mutable n_messages : int;
    mutable first_incomplete : int;  (* index of first un-ACKed message *)
    mutable stream_len : int;
    mutable closed : bool;
    (* Congestion state *)
    mutable una : int;  (* lowest unacknowledged byte *)
    mutable next_seq : int;
    mutable max_sent : int;  (* high-water mark of bytes ever sent *)
    mutable cwnd : float;  (* bytes *)
    mutable ssthresh : float;
    mutable dupacks : int;
    mutable in_recovery : bool;
    mutable recover_point : int;
    (* DCTCP (when cfg.ecn) *)
    mutable dctcp_alpha : float;
    mutable ecn_window_end : int;  (* observation window boundary (seq) *)
    mutable ecn_acked : int;  (* bytes acked in the window *)
    mutable ecn_marked : int;  (* of which carried a mark *)
    (* RTT / RTO *)
    mutable srtt : float option;  (* ns *)
    mutable rttvar : float;
    mutable rto : Time.t;
    mutable rto_generation : int;
    mutable rto_armed : bool;
    send_times : (int, Time.t) Hashtbl.t;  (* end_seq -> first-tx time *)
    (* Stats / lifecycle *)
    mutable retransmissions : int;
    mutable started : Time.t option;
    mutable completed : bool;
  }

  let create ?(config = default_config) ?on_flow_complete ~ev ~flow ~alloc_packet_id
      ~transmit () =
    {
      cfg = config;
      ev;
      flow;
      alloc_packet_id;
      transmit;
      on_flow_complete;
      messages = Array.make 16 { m_start = 0; m_len = 0; m_metadata = Metadata.empty; m_on_complete = None };
      n_messages = 0;
      first_incomplete = 0;
      stream_len = 0;
      closed = false;
      una = 0;
      next_seq = 0;
      max_sent = 0;
      cwnd = float_of_int (config.init_cwnd_segments * config.mss);
      ssthresh = infinity;
      dupacks = 0;
      in_recovery = false;
      recover_point = 0;
      dctcp_alpha = 0.0;
      ecn_window_end = 0;
      ecn_acked = 0;
      ecn_marked = 0;
      srtt = None;
      rttvar = 0.0;
      rto = config.min_rto;
      rto_generation = 0;
      rto_armed = false;
      send_times = Hashtbl.create 64;
      retransmissions = 0;
      started = None;
      completed = false;
    }

  let flow t = t.flow
  let bytes_acked t = t.una
  let bytes_queued t = t.stream_len
  let cwnd_bytes t = int_of_float t.cwnd
  let retransmissions t = t.retransmissions
  let is_complete t = t.completed
  let srtt t = Option.map Time.of_float_ns t.srtt

  let flight t = t.next_seq - t.una

  (* Find the message covering byte [seq] (binary search over starts). *)
  let message_at t seq =
    let lo = ref 0 and hi = ref (t.n_messages - 1) in
    let found = ref None in
    while !lo <= !hi do
      let mid = (!lo + !hi) / 2 in
      let m = t.messages.(mid) in
      if seq < m.m_start then hi := mid - 1
      else if seq >= m.m_start + m.m_len then lo := mid + 1
      else begin
        found := Some m;
        lo := !hi + 1
      end
    done;
    !found

  let cap_cwnd t =
    (match t.cfg.max_cwnd_bytes with
    | Some cap -> if t.cwnd > float_of_int cap then t.cwnd <- float_of_int cap
    | None -> ());
    if t.cwnd < float_of_int t.cfg.mss then t.cwnd <- float_of_int t.cfg.mss

  let emit_segment t ~seq ~retransmit =
    let remaining = t.stream_len - seq in
    (* Segments never span message boundaries: every packet belongs to
       exactly one message, so the class and metadata carried with it are
       unambiguous (the per-packet association of 4.2). *)
    let message = message_at t seq in
    let boundary =
      match message with
      | Some m -> m.m_start + m.m_len - seq
      | None -> remaining
    in
    let payload = min t.cfg.mss (min remaining boundary) in
    if payload > 0 then begin
      let metadata =
        match message with
        | Some m -> m.m_metadata
        | None -> Metadata.empty
      in
      let pkt =
        Packet.make ~id:(t.alloc_packet_id ()) ~flow:t.flow ~kind:Packet.Data ~seq
          ~payload ~metadata ()
      in
      let end_seq = seq + payload in
      if retransmit then begin
        t.retransmissions <- t.retransmissions + 1;
        (* Karn's rule: never sample RTT off a retransmitted segment. *)
        Hashtbl.remove t.send_times end_seq
      end
      else if not (Hashtbl.mem t.send_times end_seq) then
        Hashtbl.replace t.send_times end_seq (Event.now t.ev);
      t.transmit pkt
    end;
    payload

  (* --- RTO management --------------------------------------------- *)

  let update_rto t rtt_ns =
    (match t.srtt with
    | None ->
      t.srtt <- Some rtt_ns;
      t.rttvar <- rtt_ns /. 2.0
    | Some srtt ->
      let err = Float.abs (srtt -. rtt_ns) in
      t.rttvar <- (0.75 *. t.rttvar) +. (0.25 *. err);
      t.srtt <- Some ((0.875 *. srtt) +. (0.125 *. rtt_ns)));
    let srtt = Option.value ~default:0.0 t.srtt in
    let rto = Time.of_float_ns (srtt +. (4.0 *. t.rttvar)) in
    t.rto <- Time.min t.cfg.max_rto (Time.max t.cfg.min_rto rto)

  let disarm_rto t =
    t.rto_generation <- t.rto_generation + 1;
    t.rto_armed <- false

  let rec arm_rto t =
    t.rto_generation <- t.rto_generation + 1;
    t.rto_armed <- true;
    let gen = t.rto_generation in
    Event.schedule_in t.ev t.rto (fun () -> on_rto t gen)

  and on_rto t gen =
    if gen = t.rto_generation && (not t.completed) && flight t > 0 then begin
      (* Timeout: multiplicative backoff, collapse the window and resend
         from the lowest unACKed byte (go-back-N; the receiver's
         out-of-order buffer acknowledges past anything it already has,
         so duplicate coverage costs little). *)
      t.ssthresh <- Float.max (float_of_int (flight t) /. 2.0) (float_of_int (2 * t.cfg.mss));
      t.cwnd <- float_of_int t.cfg.mss;
      cap_cwnd t;
      t.in_recovery <- false;
      t.dupacks <- 0;
      t.rto <- Time.min t.cfg.max_rto (Time.mul t.rto 2);
      t.next_seq <- t.una;
      (* Karn's rule: no RTT samples across the rewind. *)
      Hashtbl.reset t.send_times;
      try_send t;
      arm_rto t
    end
    else if gen = t.rto_generation then t.rto_armed <- false

  (* --- Sending ------------------------------------------------------ *)

  and try_send t =
    if t.next_seq < t.stream_len && flight t + t.cfg.mss <= int_of_float t.cwnd then begin
      if t.started = None then t.started <- Some (Event.now t.ev);
      let sent = emit_segment t ~seq:t.next_seq ~retransmit:(t.next_seq < t.max_sent) in
      t.next_seq <- min t.stream_len (t.next_seq + max 1 sent);
      if t.next_seq > t.max_sent then t.max_sent <- t.next_seq;
      if not t.rto_armed then arm_rto t;
      try_send t
    end

  let push_message t msg =
    if t.n_messages = Array.length t.messages then begin
      let bigger = Array.make (2 * t.n_messages) msg in
      Array.blit t.messages 0 bigger 0 t.n_messages;
      t.messages <- bigger
    end;
    t.messages.(t.n_messages) <- msg;
    t.n_messages <- t.n_messages + 1

  let send_message t ?(metadata = Metadata.empty) ?on_complete len =
    if len <= 0 then invalid_arg "Tcp.Sender.send_message: length must be positive";
    if t.closed then invalid_arg "Tcp.Sender.send_message: flow is closed";
    (* Stamp the on-wire message length so the receiver can detect
       completion; user metadata like [msg_size] may describe the
       application operation (e.g. a 64 KB READ carried by a 256-byte
       request) rather than the bytes in the stream. *)
    let metadata =
      if Metadata.msg_id metadata <> None then
        Metadata.add wire_len_field (Metadata.int len) metadata
      else metadata
    in
    push_message t
      { m_start = t.stream_len; m_len = len; m_metadata = metadata; m_on_complete = on_complete };
    t.stream_len <- t.stream_len + len;
    if t.started = None then t.started <- Some (Event.now t.ev);
    try_send t

  let close t = t.closed <- true

  (* --- Receiving ACKs ---------------------------------------------- *)

  let fire_message_completions t now =
    let continue = ref true in
    while !continue && t.first_incomplete < t.n_messages do
      let m = t.messages.(t.first_incomplete) in
      if m.m_start + m.m_len <= t.una then begin
        (match m.m_on_complete with Some f -> f now | None -> ());
        t.first_incomplete <- t.first_incomplete + 1
      end
      else continue := false
    done

  let check_flow_complete t now =
    if (not t.completed) && t.closed && t.una >= t.stream_len && t.stream_len > 0 then begin
      t.completed <- true;
      disarm_rto t;
      match t.on_flow_complete with
      | Some f ->
        f
          {
            fc_flow = t.flow;
            fc_bytes = t.stream_len;
            fc_started = Option.value ~default:now t.started;
            fc_completed = now;
            fc_retransmissions = t.retransmissions;
          }
      | None -> ()
    end

  let gc_send_times t =
    if Hashtbl.length t.send_times > 8192 then begin
      let stale =
        Hashtbl.fold (fun k _ acc -> if k <= t.una then k :: acc else acc) t.send_times []
      in
      List.iter (Hashtbl.remove t.send_times) stale
    end

  let handle_ack t (pkt : Packet.t) =
    if t.completed then ()
    else begin
      let now = Event.now t.ev in
      let ack = pkt.Packet.ack in
      if ack > t.una then begin
        let newly = ack - t.una in
        t.una <- ack;
        t.dupacks <- 0;
        if t.cfg.ecn then begin
          (* DCTCP: estimate the marked fraction over ~one RTT of data and
             scale the window back by alpha/2 once per window. *)
          t.ecn_acked <- t.ecn_acked + newly;
          if pkt.Packet.ecn then t.ecn_marked <- t.ecn_marked + newly;
          if ack >= t.ecn_window_end then begin
            let g = 1.0 /. 16.0 in
            let fraction =
              if t.ecn_acked = 0 then 0.0
              else float_of_int t.ecn_marked /. float_of_int t.ecn_acked
            in
            t.dctcp_alpha <- ((1.0 -. g) *. t.dctcp_alpha) +. (g *. fraction);
            if t.ecn_marked > 0 && not t.in_recovery then begin
              t.cwnd <- t.cwnd *. (1.0 -. (t.dctcp_alpha /. 2.0));
              cap_cwnd t;
              (* Marks mean congestion: leave slow start, as a real
                 ECN-reacting sender does on ECE. *)
              t.ssthresh <- t.cwnd
            end;
            t.ecn_window_end <- t.next_seq;
            t.ecn_acked <- 0;
            t.ecn_marked <- 0
          end
        end;
        (match Hashtbl.find_opt t.send_times ack with
        | Some sent ->
          Hashtbl.remove t.send_times ack;
          update_rto t (Int64.to_float (Time.sub now sent))
        | None -> ());
        gc_send_times t;
        if t.in_recovery then begin
          if ack >= t.recover_point then begin
            t.in_recovery <- false;
            t.cwnd <- t.ssthresh;
            cap_cwnd t
          end
          else
            (* NewReno partial ACK: the next hole is lost too. *)
            ignore (emit_segment t ~seq:t.una ~retransmit:true)
        end
        else begin
          if t.cwnd < t.ssthresh then t.cwnd <- t.cwnd +. float_of_int newly
          else
            t.cwnd <-
              t.cwnd
              +. (float_of_int t.cfg.mss *. float_of_int t.cfg.mss /. t.cwnd);
          cap_cwnd t
        end;
        if flight t > 0 then arm_rto t else disarm_rto t;
        fire_message_completions t now;
        check_flow_complete t now;
        try_send t
      end
      else if ack = t.una && flight t > 0 then begin
        t.dupacks <- t.dupacks + 1;
        if t.dupacks = t.cfg.dupack_threshold && not t.in_recovery then begin
          t.in_recovery <- true;
          t.recover_point <- t.next_seq;
          t.ssthresh <-
            Float.max (float_of_int (flight t) /. 2.0) (float_of_int (2 * t.cfg.mss));
          t.cwnd <- t.ssthresh;
          cap_cwnd t;
          ignore (emit_segment t ~seq:t.una ~retransmit:true)
        end
      end
    end
end

module Receiver = struct
  type msg_progress = { mutable mp_start : int; mp_size : int; mp_metadata : Metadata.t }

  type t = {
    cfg : config;
    ev : Event.t;
    flow : Addr.five_tuple;  (* sender's tuple; ACKs are reversed *)
    alloc_packet_id : unit -> int64;
    transmit : Packet.t -> unit;
    on_message : (Metadata.t -> Time.t -> unit) option;
    mutable intervals : (int * int) list;  (* disjoint, sorted [start, end) *)
    mutable cum : int;
    mutable delivered : int;
    msgs : (int64, msg_progress) Hashtbl.t;  (* in-flight tagged messages *)
  }

  let create ?(config = default_config) ?on_message ~ev ~flow ~alloc_packet_id ~transmit
      () =
    {
      cfg = config;
      ev;
      flow;
      alloc_packet_id;
      transmit;
      on_message;
      intervals = [];
      cum = 0;
      delivered = 0;
      msgs = Hashtbl.create 16;
    }

  (* Insert [s, e) keeping the list disjoint and sorted. *)
  let rec insert_interval intervals s e =
    match intervals with
    | [] -> [ (s, e) ]
    | (s0, e0) :: rest ->
      if e < s0 then (s, e) :: intervals
      else if s > e0 then (s0, e0) :: insert_interval rest s e
      else insert_interval rest (min s s0) (max e e0)

  let rec advance_cum t =
    match t.intervals with
    | (s, e) :: rest when s <= t.cum ->
      if e > t.cum then begin
        t.delivered <- t.delivered + (e - t.cum);
        t.cum <- e
      end;
      t.intervals <- rest;
      advance_cum t
    | _ -> ()

  let note_message t (pkt : Packet.t) =
    match (t.on_message, Metadata.msg_id pkt.Packet.metadata) with
    | Some _, Some id -> (
      let len =
        match Metadata.find_int wire_len_field pkt.Packet.metadata with
        | Some _ as l -> l
        | None -> Metadata.find_int Metadata.Field.msg_size pkt.Packet.metadata
      in
      match len with
      | None -> ()
      | Some size ->
        let mp =
          match Hashtbl.find_opt t.msgs id with
          | Some mp -> mp
          | None ->
            let mp =
              {
                mp_start = pkt.Packet.seq;
                mp_size = Int64.to_int size;
                mp_metadata = pkt.Packet.metadata;
              }
            in
            Hashtbl.replace t.msgs id mp;
            mp
        in
        if pkt.Packet.seq < mp.mp_start then mp.mp_start <- pkt.Packet.seq)
    | (Some _ | None), _ -> ()

  let fire_completed_messages t =
    match t.on_message with
    | None -> ()
    | Some f ->
      let now = Event.now t.ev in
      let done_ids =
        Hashtbl.fold
          (fun id mp acc -> if mp.mp_start + mp.mp_size <= t.cum then (id, mp) :: acc else acc)
          t.msgs []
      in
      List.iter
        (fun (id, mp) ->
          Hashtbl.remove t.msgs id;
          f mp.mp_metadata now)
        done_ids

  let handle_data t (pkt : Packet.t) =
    if pkt.Packet.payload > 0 then begin
      note_message t pkt;
      t.intervals <- insert_interval t.intervals pkt.Packet.seq (Packet.end_seq pkt);
      advance_cum t;
      fire_completed_messages t;
      let ack =
        Packet.make ~id:(t.alloc_packet_id ()) ~flow:(Addr.reverse t.flow) ~kind:Packet.Ack
          ~ack:t.cum ~priority:t.cfg.ack_priority ()
      in
      (* ECN echo: the ACK for a marked segment carries the mark back. *)
      if pkt.Packet.ecn then ack.Packet.ecn <- true;
      t.transmit ack
    end

  let bytes_delivered t = t.delivered
end
