(** A byte-stream transport with NewReno-style congestion control.

    Deliberately "vanilla TCP" (the paper's experiments all run unmodified
    TCP over Eden): slow start, AIMD congestion avoidance, triple-dupack
    fast retransmit with NewReno partial-ACK recovery, and RTO with
    exponential backoff.  Because dup-ACKs trigger fast retransmit,
    in-network packet reordering degrades throughput — exactly the effect
    that keeps per-packet WCMP below the topology min-cut in the paper's
    Fig. 10.

    The application writes {e messages} into the stream; each message
    carries {!Eden_base.Metadata.t} that is attached to every data packet
    covering its byte range (the paper's extended socket interface,
    §4.2). *)

type config = {
  mss : int;  (** Payload bytes per segment. *)
  init_cwnd_segments : int;
  min_rto : Eden_base.Time.t;
  max_rto : Eden_base.Time.t;
  max_cwnd_bytes : int option;
  ack_priority : int;  (** PCP for pure ACKs (7 keeps ACK clocking alive). *)
  dupack_threshold : int;
      (** Dup-ACKs before fast retransmit (3 = classic NewReno).  Raising
          it makes the sender reorder-tolerant — the TCP modification the
          paper suggests to push per-packet WCMP closer to the min-cut. *)
  ecn : bool;
      (** DCTCP-style congestion control: react to ECN-marked ACKs by
          scaling the window with the smoothed marked fraction (requires
          marking links, {!Link.create}'s [ecn_threshold_bytes]).  The
          datacenter transport of the paper's setting. *)
}

val default_config : config

(** {2 Sender} *)

module Sender : sig
  type t

  type flow_completion = {
    fc_flow : Eden_base.Addr.five_tuple;
    fc_bytes : int;
    fc_started : Eden_base.Time.t;
    fc_completed : Eden_base.Time.t;
    fc_retransmissions : int;
  }

  val create :
    ?config:config ->
    ?on_flow_complete:(flow_completion -> unit) ->
    ev:Event.t ->
    flow:Eden_base.Addr.five_tuple ->
    alloc_packet_id:(unit -> int64) ->
    transmit:(Eden_base.Packet.t -> unit) ->
    unit ->
    t

  val send_message :
    t ->
    ?metadata:Eden_base.Metadata.t ->
    ?on_complete:(Eden_base.Time.t -> unit) ->
    int ->
    unit
  (** [send_message t n] appends [n] bytes to the stream.  [on_complete]
      fires when the message's last byte is cumulatively acknowledged. *)

  val close : t -> unit
  (** No more messages; the flow completes when everything is ACKed. *)

  val handle_ack : t -> Eden_base.Packet.t -> unit
  (** Host dispatch: an ACK for this flow arrived. *)

  val flow : t -> Eden_base.Addr.five_tuple
  val bytes_acked : t -> int
  val bytes_queued : t -> int
  val cwnd_bytes : t -> int
  val retransmissions : t -> int
  val is_complete : t -> bool
  val srtt : t -> Eden_base.Time.t option
end

(** {2 Receiver} *)

module Receiver : sig
  type t

  val create :
    ?config:config ->
    ?on_message:(Eden_base.Metadata.t -> Eden_base.Time.t -> unit) ->
    ev:Event.t ->
    flow:Eden_base.Addr.five_tuple ->
    alloc_packet_id:(unit -> int64) ->
    transmit:(Eden_base.Packet.t -> unit) ->
    unit ->
    t
  (** [flow] is the {e sender's} five-tuple (ACKs go out reversed).
      [on_message] fires when all bytes of a metadata-tagged message have
      arrived in-order. *)

  val handle_data : t -> Eden_base.Packet.t -> unit
  val bytes_delivered : t -> int
  (** Cumulative in-order bytes — the goodput counter. *)
end
