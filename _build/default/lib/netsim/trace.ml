module Time = Eden_base.Time
module Addr = Eden_base.Addr
module Packet = Eden_base.Packet

type kind = Enqueued | Delivered | Dropped

let kind_to_string = function
  | Enqueued -> "enq"
  | Delivered -> "rx"
  | Dropped -> "drop"

type entry = {
  at : Time.t;
  link : string;
  kind : kind;
  packet_id : int64;
  flow : Addr.five_tuple;
  packet_kind : Packet.kind;
  size : int;
  priority : int;
}

type t = {
  buf : entry option array;
  mutable next : int;  (* next write position *)
  mutable total : int;
}

let create ?(capacity = 65536) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  { buf = Array.make capacity None; next = 0; total = 0 }

let record t e =
  t.buf.(t.next) <- Some e;
  t.next <- (t.next + 1) mod Array.length t.buf;
  t.total <- t.total + 1

let entries t =
  let n = Array.length t.buf in
  let start = if t.total >= n then t.next else 0 in
  let len = min t.total n in
  List.init len (fun i -> t.buf.((start + i) mod n))
  |> List.filter_map Fun.id

let count t = t.total

let clear t =
  Array.fill t.buf 0 (Array.length t.buf) None;
  t.next <- 0;
  t.total <- 0

let filter ?link ?kind ?flow t =
  List.filter
    (fun e ->
      (match link with Some l -> String.equal l e.link | None -> true)
      && (match kind with Some k -> k = e.kind | None -> true)
      && match flow with Some f -> Addr.equal_five_tuple f e.flow | None -> true)
    (entries t)

let pp_entry fmt e =
  Format.fprintf fmt "%a %-12s %-4s #%Ld %a %s %dB prio%d" Time.pp e.at e.link
    (kind_to_string e.kind) e.packet_id Addr.pp_five_tuple e.flow
    (Packet.kind_to_string e.packet_kind)
    e.size e.priority

let dump ?limit fmt t =
  let es = entries t in
  let es = match limit with Some n -> List.filteri (fun i _ -> i < n) es | None -> es in
  List.iter (fun e -> Format.fprintf fmt "%a@." pp_entry e) es
