(** Packet-level event tracing.

    A bounded in-memory recorder for link events — transmissions,
    deliveries, buffer drops — in time order; the simulator's answer to
    tcpdump.  Attach one recorder to every link of a {!Net} with
    {!Net.enable_tracing}, or to individual links via {!Link.set_tracer}. *)

type kind =
  | Enqueued  (** accepted into a link's egress buffer *)
  | Delivered  (** handed to the receiver at the far end *)
  | Dropped  (** drop-tail overflow *)

val kind_to_string : kind -> string

type entry = {
  at : Eden_base.Time.t;
  link : string;
  kind : kind;
  packet_id : int64;
  flow : Eden_base.Addr.five_tuple;
  packet_kind : Eden_base.Packet.kind;
  size : int;
  priority : int;
}

type t

val create : ?capacity:int -> unit -> t
(** Ring buffer; default capacity 65536 entries (oldest evicted first). *)

val record : t -> entry -> unit
val entries : t -> entry list
(** Oldest first. *)

val count : t -> int
(** Total entries ever recorded (including evicted ones). *)

val clear : t -> unit

val filter :
  ?link:string -> ?kind:kind -> ?flow:Eden_base.Addr.five_tuple -> t -> entry list

val pp_entry : Format.formatter -> entry -> unit

val dump : ?limit:int -> Format.formatter -> t -> unit
(** Human-readable listing, oldest first. *)
