lib/stage/builtin.ml: Char Classifier Eden_base Stage String
