lib/stage/builtin.mli: Classifier Eden_base Stage
