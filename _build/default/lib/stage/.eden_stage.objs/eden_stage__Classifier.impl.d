lib/stage/classifier.ml: Eden_base Format Int64 List Map Printf String
