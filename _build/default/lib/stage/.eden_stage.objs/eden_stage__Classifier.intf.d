lib/stage/classifier.mli: Eden_base Format
