lib/stage/ruleset.ml: Classifier Format List String
