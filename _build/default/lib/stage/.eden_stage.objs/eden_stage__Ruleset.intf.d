lib/stage/ruleset.mli: Classifier Format
