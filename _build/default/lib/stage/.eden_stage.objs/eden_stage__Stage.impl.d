lib/stage/stage.ml: Classifier Eden_base Format Int64 List Printf Ruleset String
