lib/stage/stage.mli: Classifier Eden_base Format Ruleset
