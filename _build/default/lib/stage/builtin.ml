module Metadata = Eden_base.Metadata
module Addr = Eden_base.Addr

module Field = struct
  let msg_type = Metadata.Field.msg_type
  let key = Metadata.Field.key
  let url = Metadata.Field.url
  let msg_size = Metadata.Field.msg_size
  let operation = Metadata.Field.operation
  let tenant = Metadata.Field.tenant
  let key_hash = "key_hash"
  let src_host = "src_host"
  let src_port = "src_port"
  let dst_host = "dst_host"
  let dst_port = "dst_port"
  let proto = "proto"
end

let key_hash key =
  (* Deterministic, platform-independent FNV-1a over the key bytes. *)
  let h = ref 0x811c9dc5 in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x01000193 land 0x3fffffff)
    key;
  !h

let memcached () =
  Stage.create ~name:"memcached"
    ~classifier_fields:[ Field.msg_type; Field.key ]
    ~metadata_fields:[ Field.msg_type; Field.key; Field.msg_size; Field.key_hash ]

let memcached_descriptor ~op ~key ~size =
  Classifier.Descriptor.of_list
    [
      (Field.msg_type, Metadata.str (match op with `Get -> "GET" | `Put -> "PUT"));
      (Field.key, Metadata.str key);
      (Field.msg_size, Metadata.int size);
      (Field.key_hash, Metadata.int (key_hash key));
    ]

let http () =
  Stage.create ~name:"http"
    ~classifier_fields:[ Field.msg_type; Field.url ]
    ~metadata_fields:[ Field.msg_type; Field.url; Field.msg_size ]

let http_descriptor ~msg_type ~url ~size =
  Classifier.Descriptor.of_list
    [
      ( Field.msg_type,
        Metadata.str (match msg_type with `Request -> "REQUEST" | `Response -> "RESPONSE") );
      (Field.url, Metadata.str url);
      (Field.msg_size, Metadata.int size);
    ]

let storage () =
  Stage.create ~name:"storage"
    ~classifier_fields:[ Field.operation; Field.tenant ]
    ~metadata_fields:[ Field.operation; Field.msg_size; Field.tenant ]

let storage_descriptor ~op ~tenant ~size =
  Classifier.Descriptor.of_list
    [
      (Field.operation, Metadata.str (match op with `Read -> "READ" | `Write -> "WRITE"));
      (Field.tenant, Metadata.int tenant);
      (Field.msg_size, Metadata.int size);
    ]

let flow () =
  Stage.create ~name:"enclave"
    ~classifier_fields:
      [ Field.src_host; Field.src_port; Field.dst_host; Field.dst_port; Field.proto ]
    ~metadata_fields:[]

let flow_descriptor (ft : Addr.five_tuple) =
  Classifier.Descriptor.of_list
    [
      (Field.src_host, Metadata.int ft.Addr.src.Addr.host);
      (Field.src_port, Metadata.int ft.Addr.src.Addr.port);
      (Field.dst_host, Metadata.int ft.Addr.dst.Addr.host);
      (Field.dst_port, Metadata.int ft.Addr.dst.Addr.port);
      (Field.proto, Metadata.str (Addr.proto_to_string ft.Addr.proto));
    ]

let install_default_rule stage ~ruleset =
  match
    Stage.Api.create_stage_rule stage ~ruleset ~classifier:[] ~class_name:"DEFAULT"
      ~metadata_fields:(Stage.info stage).Stage.metadata_fields
  with
  | Ok _ -> ()
  | Error msg -> invalid_arg ("Builtin.install_default_rule: " ^ msg)
