(** Built-in stages (paper Table 2).

    Three application stages — memcached, an HTTP library, and a storage
    service — plus the enclave's own five-tuple stage.  Each comes with a
    descriptor builder translating application events into classifier
    descriptors. *)

module Field : sig
  val msg_type : string
  val key : string
  val url : string
  val msg_size : string
  val key_hash : string
  val operation : string
  val tenant : string
  val src_host : string
  val src_port : string
  val dst_host : string
  val dst_port : string
  val proto : string
end

val memcached : unit -> Stage.t
(** Classifies on [msg_type] (GET/PUT) and [key]; generates
    [{msg_id, msg_type, key, msg_size, key_hash}] — the integer key hash
    feeds replica-selection functions (mcrouter, paper Table 1). *)

val memcached_descriptor :
  op:[ `Get | `Put ] -> key:string -> size:int -> Classifier.Descriptor.t

val http : unit -> Stage.t
(** Classifies on [msg_type] (request/response) and [url]; generates
    [{msg_id, msg_type, url, msg_size}]. *)

val http_descriptor :
  msg_type:[ `Request | `Response ] -> url:string -> size:int -> Classifier.Descriptor.t

val storage : unit -> Stage.t
(** Classifies on IO [operation] (READ/WRITE) and [tenant]; generates
    [{msg_id, operation, msg_size, tenant}] — what Pulsar's rate control
    needs (paper Fig. 3). *)

val storage_descriptor :
  op:[ `Read | `Write ] -> tenant:int -> size:int -> Classifier.Descriptor.t

val flow : unit -> Stage.t
(** The Eden enclave's own stage: classifies packets on the IP five-tuple
    (paper Table 2, last row); each transport connection is a message. *)

val flow_descriptor : Eden_base.Addr.five_tuple -> Classifier.Descriptor.t

val install_default_rule : Stage.t -> ruleset:string -> unit
(** Fig. 6's [r2]: a catch-all rule placing every message in class
    [DEFAULT] with all of the stage's metadata attached. *)
