module Metadata = Eden_base.Metadata

module Descriptor = struct
  module Smap = Map.Make (String)

  type t = Metadata.value Smap.t

  let empty = Smap.empty
  let add k v t = Smap.add k v t
  let of_list l = List.fold_left (fun acc (k, v) -> add k v acc) empty l
  let find k t = Smap.find_opt k t
  let fields t = Smap.bindings t

  let pp fmt t =
    let pp_field fmt (k, v) = Format.fprintf fmt "%s=%a" k Metadata.pp_value v in
    Format.fprintf fmt "{%a}"
      (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f ";@ ") pp_field)
      (fields t)
end

type pattern =
  | Any
  | Present
  | Eq of Metadata.value
  | Ne of Metadata.value
  | In_set of Metadata.value list
  | Range of int64 * int64
  | Prefix of string

let pattern_to_string = function
  | Any -> "*"
  | Present -> "present"
  | Eq v -> Metadata.value_to_string v
  | Ne v -> "!" ^ Metadata.value_to_string v
  | In_set vs -> "{" ^ String.concat "," (List.map Metadata.value_to_string vs) ^ "}"
  | Range (lo, hi) -> Printf.sprintf "[%Ld..%Ld]" lo hi
  | Prefix p -> p ^ "*"

type t = (string * pattern) list

let eq_str s = Eq (Metadata.str s)
let eq_int i = Eq (Metadata.int i)

let pattern_matches pattern value =
  match (pattern, value) with
  | Any, _ -> true
  | Present, Some _ -> true
  | Present, None -> false
  | _, None -> false
  | Eq expected, Some v -> Metadata.equal_value expected v
  | Ne expected, Some v -> not (Metadata.equal_value expected v)
  | In_set vs, Some v -> List.exists (Metadata.equal_value v) vs
  | Range (lo, hi), Some (Metadata.Int i) ->
    Int64.compare lo i <= 0 && Int64.compare i hi <= 0
  | Range _, Some (Metadata.Str _) -> false
  | Prefix p, Some (Metadata.Str s) ->
    String.length s >= String.length p && String.equal (String.sub s 0 (String.length p)) p
  | Prefix _, Some (Metadata.Int _) -> false

let matches t descriptor =
  List.for_all (fun (field, pattern) -> pattern_matches pattern (Descriptor.find field descriptor)) t

let to_string t =
  "<"
  ^ String.concat ", "
      (List.map (fun (f, p) -> Printf.sprintf "%s:%s" f (pattern_to_string p)) t)
  ^ ">"

let pp fmt t = Format.pp_print_string fmt (to_string t)

let fields_referenced t =
  List.fold_left
    (fun acc (f, _) -> if List.mem f acc then acc else f :: acc)
    [] t
  |> List.rev
