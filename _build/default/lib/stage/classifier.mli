(** Classifier expressions (paper §3.3, Fig. 6).

    A stage describes each application message with a {e descriptor} — the
    application-specific fields it knows about the message ([msg_type],
    [key], [url], [msg_size], [tenant], the five-tuple, …).  A classifier
    is a conjunction of per-field patterns over such descriptors; the
    paper's rule [<GET, "a">] becomes
    [[ ("msg_type", eq_str "GET"); ("key", eq_str "a") ]]. *)

module Descriptor : sig
  type t

  val empty : t
  val of_list : (string * Eden_base.Metadata.value) list -> t
  val add : string -> Eden_base.Metadata.value -> t -> t
  val find : string -> t -> Eden_base.Metadata.value option
  val fields : t -> (string * Eden_base.Metadata.value) list
  val pp : Format.formatter -> t -> unit
end

type pattern =
  | Any  (** ["-"] / ["*"]: field may even be absent *)
  | Present  (** field must exist, any value *)
  | Eq of Eden_base.Metadata.value
  | Ne of Eden_base.Metadata.value
  | In_set of Eden_base.Metadata.value list
  | Range of int64 * int64  (** integer field within [lo, hi] inclusive *)
  | Prefix of string  (** string field starting with the given prefix *)

val pattern_to_string : pattern -> string

type t = (string * pattern) list
(** Conjunction over fields; [[]] matches everything. *)

val eq_str : string -> pattern
val eq_int : int -> pattern

val matches : t -> Descriptor.t -> bool
val to_string : t -> string
val pp : Format.formatter -> t -> unit

val fields_referenced : t -> string list
(** Field names the classifier inspects, deduplicated, in order. *)
