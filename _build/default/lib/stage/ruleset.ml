type rule = {
  rule_id : int;
  classifier : Classifier.t;
  class_name : string;
  metadata_fields : string list;
}

type t = { id : string; mutable rules : rule list; mutable next_rule_id : int }

let create id = { id; rules = []; next_rule_id = 0 }
let id t = t.id

let add_rule t ~classifier ~class_name ~metadata_fields =
  let rule = { rule_id = t.next_rule_id; classifier; class_name; metadata_fields } in
  t.next_rule_id <- t.next_rule_id + 1;
  t.rules <- t.rules @ [ rule ];
  rule

let remove_rule t rule_id =
  let before = List.length t.rules in
  t.rules <- List.filter (fun r -> r.rule_id <> rule_id) t.rules;
  List.length t.rules < before

let rules t = t.rules
let classify t descriptor = List.find_opt (fun r -> Classifier.matches r.classifier descriptor) t.rules

let pp fmt t =
  Format.fprintf fmt "@[<v>rule-set %s:@," t.id;
  List.iter
    (fun r ->
      Format.fprintf fmt "  %s -> [%s, {msg_id%s}]@,"
        (Classifier.to_string r.classifier)
        r.class_name
        (match r.metadata_fields with
        | [] -> ""
        | fs -> ", " ^ String.concat ", " fs))
    t.rules;
  Format.fprintf fmt "@]"
