(** Classification rule-sets (paper §3.3).

    A rule maps a classifier to a class name and the metadata fields to
    attach: [<classifier> -> \[class_name, {meta-data}\]].  Rules are
    arranged in rule-sets so that a message matches at most one rule per
    rule-set — implemented as ordered first-match.  A message can belong
    to one class per rule-set, so installing several rule-sets tags it
    with several classes (Fig. 6's [r1]/[r2]/[r3]). *)

type rule = {
  rule_id : int;
  classifier : Classifier.t;
  class_name : string;  (** Unqualified; qualified by stage and rule-set. *)
  metadata_fields : string list;
      (** Descriptor fields to copy into the message metadata, e.g.
          [\["msg_size"; "msg_type"\]].  The message identifier is always
          attached, as in every example of Fig. 6. *)
}

type t

val create : string -> t
(** [create id] makes an empty rule-set named [id] (e.g. ["r1"]). *)

val id : t -> string

val add_rule :
  t -> classifier:Classifier.t -> class_name:string -> metadata_fields:string list -> rule
(** Appends a rule (lowest priority so far) and returns it. *)

val remove_rule : t -> int -> bool
(** [remove_rule t rule_id] returns whether a rule was removed. *)

val rules : t -> rule list
(** In match order. *)

val classify : t -> Classifier.Descriptor.t -> rule option
(** First matching rule, if any. *)

val pp : Format.formatter -> t -> unit
