module Metadata = Eden_base.Metadata
module Class_name = Eden_base.Class_name

type info = {
  stage_name : string;
  classifier_fields : string list;
  metadata_fields : string list;
}

type t = {
  name : string;
  classifier_fields : string list;
  metadata_fields : string list;
  mutable rulesets : Ruleset.t list;  (* in creation order *)
  mutable next_msg_id : int64;
}

let create ~name ~classifier_fields ~metadata_fields =
  { name; classifier_fields; metadata_fields; rulesets = []; next_msg_id = 0L }

let name t = t.name

let info t =
  {
    stage_name = t.name;
    classifier_fields = t.classifier_fields;
    metadata_fields = t.metadata_fields;
  }

let rulesets t = t.rulesets
let find_ruleset t id = List.find_opt (fun rs -> String.equal (Ruleset.id rs) id) t.rulesets

let new_msg_id t =
  let id = t.next_msg_id in
  t.next_msg_id <- Int64.add id 1L;
  id

let qualified_class t ~ruleset cls = Class_name.v ~stage:t.name ~ruleset ~name:cls

let classify ?msg_id t descriptor =
  let msg_id = match msg_id with Some id -> id | None -> new_msg_id t in
  let md = Metadata.with_msg_id msg_id Metadata.empty in
  List.fold_left
    (fun md rs ->
      match Ruleset.classify rs descriptor with
      | None -> md
      | Some rule ->
        let md =
          Metadata.add_class (qualified_class t ~ruleset:(Ruleset.id rs) rule.Ruleset.class_name) md
        in
        List.fold_left
          (fun md field ->
            match Classifier.Descriptor.find field descriptor with
            | Some v -> Metadata.add field v md
            | None -> md)
          md rule.Ruleset.metadata_fields)
    md t.rulesets

module Api = struct
  let get_stage_info = info

  let create_stage_rule t ~ruleset ~classifier ~class_name ~metadata_fields =
    let unknown_classifier =
      List.filter
        (fun f -> not (List.mem f t.classifier_fields))
        (Classifier.fields_referenced classifier)
    in
    let unknown_metadata =
      List.filter (fun f -> not (List.mem f t.metadata_fields)) metadata_fields
    in
    if unknown_classifier <> [] then
      Error
        (Printf.sprintf "stage %s cannot classify on: %s" t.name
           (String.concat ", " unknown_classifier))
    else if unknown_metadata <> [] then
      Error
        (Printf.sprintf "stage %s cannot generate metadata: %s" t.name
           (String.concat ", " unknown_metadata))
    else begin
      let rs =
        match find_ruleset t ruleset with
        | Some rs -> rs
        | None ->
          let rs = Ruleset.create ruleset in
          t.rulesets <- t.rulesets @ [ rs ];
          rs
      in
      let rule = Ruleset.add_rule rs ~classifier ~class_name ~metadata_fields in
      Ok rule.Ruleset.rule_id
    end

  let remove_stage_rule t ~ruleset ~rule_id =
    match find_ruleset t ruleset with
    | None -> false
    | Some rs -> Ruleset.remove_rule rs rule_id
end

let pp fmt t =
  Format.fprintf fmt "@[<v>stage %s@,  classifiers: %s@,  metadata: %s@," t.name
    (String.concat ", " t.classifier_fields)
    (String.concat ", " t.metadata_fields);
  List.iter (fun rs -> Format.fprintf fmt "  %a@," Ruleset.pp rs) t.rulesets;
  Format.fprintf fmt "@]"
