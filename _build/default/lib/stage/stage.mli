(** Eden stages.

    A stage is any Eden-compliant application, library or service: it
    declares which application-specific fields it can classify on and
    which metadata it can generate, holds controller-installed rule-sets,
    and tags every message it sends with classes and metadata that travel
    with the message's packets down the stack (paper §3.3).

    The controller talks to stages through {!Api}, the paper's Table 3. *)

type info = {
  stage_name : string;
  classifier_fields : string list;
      (** Fields usable in classifiers, e.g. [\["msg_type"; "key"\]]. *)
  metadata_fields : string list;
      (** Metadata the stage can attach, e.g. [\["msg_type"; "msg_size"\]].
          The message identifier is always available and always attached. *)
}

type t

val create :
  name:string -> classifier_fields:string list -> metadata_fields:string list -> t

val name : t -> string
val info : t -> info

val rulesets : t -> Ruleset.t list
val find_ruleset : t -> string -> Ruleset.t option

val new_msg_id : t -> int64
(** Allocate a fresh message identifier (unique within the stage). *)

val classify : ?msg_id:int64 -> t -> Classifier.Descriptor.t -> Eden_base.Metadata.t
(** Run every installed rule-set over the descriptor.  The result carries
    a message id (fresh unless provided), one fully-qualified class per
    matching rule-set, and the union of the metadata fields requested by
    the matched rules (values taken from the descriptor). *)

val qualified_class : t -> ruleset:string -> string -> Eden_base.Class_name.t

(** The Stage API (paper Table 3): what the controller calls. *)
module Api : sig
  val get_stage_info : t -> info
  (** S0. *)

  val create_stage_rule :
    t ->
    ruleset:string ->
    classifier:Classifier.t ->
    class_name:string ->
    metadata_fields:string list ->
    (int, string) result
  (** S1.  Creates the rule-set on first use.  Rejects classifiers over
      fields the stage cannot classify on and metadata the stage cannot
      generate; returns the rule id. *)

  val remove_stage_rule : t -> ruleset:string -> rule_id:int -> bool
  (** S2.  Returns whether a rule was removed. *)
end

val pp : Format.formatter -> t -> unit
