lib/workloads/flowsize.ml: Eden_base Printf
