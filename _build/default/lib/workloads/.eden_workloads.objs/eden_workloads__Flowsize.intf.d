lib/workloads/flowsize.mli: Eden_base
