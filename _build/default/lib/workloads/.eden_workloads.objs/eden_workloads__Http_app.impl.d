lib/workloads/http_app.ml: Eden_base Eden_netsim Eden_stage List Option Rpc String
