lib/workloads/http_app.mli: Eden_base Eden_netsim Eden_stage
