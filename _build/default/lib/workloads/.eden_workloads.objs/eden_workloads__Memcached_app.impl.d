lib/workloads/memcached_app.ml: Eden_base Eden_netsim Eden_stage Hashtbl Int64 List Option Rpc
