lib/workloads/reqresp.ml: Array Eden_base Eden_netsim Flowsize List Option
