lib/workloads/reqresp.mli: Eden_base Eden_netsim Flowsize
