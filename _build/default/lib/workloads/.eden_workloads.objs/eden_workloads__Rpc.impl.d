lib/workloads/rpc.ml: Eden_base Eden_netsim Hashtbl Int64 Option
