lib/workloads/rpc.mli: Eden_base Eden_netsim
