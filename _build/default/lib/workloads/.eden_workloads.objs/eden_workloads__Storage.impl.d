lib/workloads/storage.ml: Eden_base Eden_netsim Int64 List Queue
