lib/workloads/storage.mli: Eden_base Eden_netsim
