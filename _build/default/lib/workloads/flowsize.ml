module Dist = Eden_base.Dist
module Rng = Eden_base.Rng

type kind =
  | Empirical of Dist.Empirical_cdf.t * (float * float) list
  | Fixed of int
  | Uniform of int * int

type t = { name : string; kind : kind }

let kb = 1024.0
let mb = 1024.0 *. 1024.0

(* Web-search workload (DCTCP, Alizadeh et al. 2010), as tabulated in the
   PIAS/pFabric literature. *)
let web_search_points =
  [
    (1.0 *. kb, 0.0);
    (6.0 *. kb, 0.15);
    (13.0 *. kb, 0.2);
    (19.0 *. kb, 0.3);
    (33.0 *. kb, 0.4);
    (53.0 *. kb, 0.53);
    (133.0 *. kb, 0.6);
    (667.0 *. kb, 0.7);
    (1.4 *. mb, 0.8);
    (2.0 *. mb, 0.9);
    (6.5 *. mb, 0.95);
    (20.0 *. mb, 0.98);
    (30.0 *. mb, 1.0);
  ]

(* Data-mining workload (VL2, Greenberg et al. 2009). *)
let data_mining_points =
  [
    (100.0, 0.0);
    (180.0, 0.1);
    (216.0, 0.2);
    (560.0, 0.3);
    (900.0, 0.4);
    (1100.0, 0.5);
    (60.0 *. kb, 0.6);
    (380.0 *. kb, 0.7);
    (2.5 *. mb, 0.8);
    (10.0 *. mb, 0.9);
    (100.0 *. mb, 0.98);
    (1000.0 *. mb, 1.0);
  ]

let empirical name points =
  { name; kind = Empirical (Dist.Empirical_cdf.create points, points) }

let web_search = empirical "web-search" web_search_points
let data_mining = empirical "data-mining" data_mining_points
let fixed n = { name = Printf.sprintf "fixed-%d" n; kind = Fixed n }

let uniform ~lo ~hi =
  if lo > hi then invalid_arg "Flowsize.uniform: lo > hi";
  { name = Printf.sprintf "uniform-%d-%d" lo hi; kind = Uniform (lo, hi) }

let sample t rng =
  let v =
    match t.kind with
    | Empirical (cdf, _) -> int_of_float (Dist.Empirical_cdf.sample cdf rng)
    | Fixed n -> n
    | Uniform (lo, hi) -> lo + Rng.int rng (hi - lo + 1)
  in
  max 1 v

let mean t =
  match t.kind with
  | Empirical (cdf, _) -> Dist.Empirical_cdf.mean cdf
  | Fixed n -> float_of_int n
  | Uniform (lo, hi) -> float_of_int (lo + hi) /. 2.0

let name t = t.name

let cdf t =
  match t.kind with
  | Empirical (_, points) -> points
  | Fixed n -> [ (float_of_int n, 0.0); (float_of_int n, 1.0) ]
  | Uniform (lo, hi) -> [ (float_of_int lo, 0.0); (float_of_int hi, 1.0) ]
