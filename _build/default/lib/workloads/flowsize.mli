(** Flow-size distributions.

    The paper's flow-scheduling case study (§5.1) drives a realistic
    request–response workload "with responses reflecting the flow size
    distribution found in search applications", citing DCTCP and PIAS.
    [web_search] is that distribution; [data_mining] is the other
    standard datacenter workload (VL2), useful for extra experiments. *)

type t

val web_search : t
(** DCTCP-style web-search workload: >50% of flows under ~100 KB with a
    heavy multi-megabyte tail. *)

val data_mining : t
(** VL2-style data-mining workload: even more extreme — most flows are a
    few KB, the tail reaches 1 GB. *)

val fixed : int -> t
val uniform : lo:int -> hi:int -> t

val sample : t -> Eden_base.Rng.t -> int
(** A flow size in bytes (at least 1). *)

val mean : t -> float
val name : t -> string

val cdf : t -> (float * float) list
(** The (bytes, cumulative probability) points of an empirical
    distribution; for [fixed]/[uniform] a two-point rendering. *)
