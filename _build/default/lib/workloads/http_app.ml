module Time = Eden_base.Time
module Addr = Eden_base.Addr
module Metadata = Eden_base.Metadata
module Net = Eden_netsim.Net
module Stage = Eden_stage.Stage
module Builtin = Eden_stage.Builtin

let request_wire_bytes = 200

type server = {
  s_host : Addr.host;
  s_default_response_bytes : int;
  s_stage : Stage.t;  (* the server's own HTTP-library stage *)
  mutable s_routes : (string * int) list;  (* prefix -> response size *)
}

let server ~net:_ ~host ?(default_response_bytes = 8192) () =
  {
    s_host = host;
    s_default_response_bytes = default_response_bytes;
    s_stage = Builtin.http ();
    s_routes = [];
  }

let server_stage srv = srv.s_stage

let set_route srv ~prefix ~response_bytes =
  srv.s_routes <- (prefix, response_bytes) :: List.remove_assoc prefix srv.s_routes

let is_prefix p s =
  String.length s >= String.length p && String.equal (String.sub s 0 (String.length p)) p

let route srv url =
  let best =
    List.fold_left
      (fun acc (prefix, size) ->
        if is_prefix prefix url then
          match acc with
          | Some (p, _) when String.length p >= String.length prefix -> acc
          | _ -> Some (prefix, size)
        else acc)
      None srv.s_routes
  in
  match best with Some (_, size) -> size | None -> srv.s_default_response_bytes

let handle srv md =
  let url = Option.value ~default:"/" (Metadata.find_str Metadata.Field.url md) in
  route srv url

type fetch_result = { url : string; latency : Time.t; response_bytes : int }

type client = {
  c_stage : Stage.t;
  c_rpc : Rpc.client;
  c_server : server;
  mutable c_results : fetch_result list;  (* newest first *)
}

(* The server classifies its responses through its own stage: a response
   to /api/cart is an http RESPONSE message for that URL, and carries
   whatever classes the controller's rule-sets assign. *)
let response_metadata srv request_md =
  let url = Option.value ~default:"/" (Metadata.find_str Metadata.Field.url request_md) in
  Stage.classify srv.s_stage
    (Builtin.http_descriptor ~msg_type:`Response ~url ~size:(route srv url))

let client ~net ~server:srv ~host ?stage () =
  let c_stage = match stage with Some s -> s | None -> Builtin.http () in
  let endpoint =
    {
      Rpc.host = srv.s_host;
      port = 80;
      handler = handle srv;
      response_metadata = Some (response_metadata srv);
    }
  in
  {
    c_stage;
    c_rpc = Rpc.connect ~net ~endpoint ~client_host:host ~response_port:(24_000 + host) ();
    c_server = srv;
    c_results = [];
  }

let stage c = c.c_stage

let fetch c ~url ?on_reply () =
  let expected = route c.c_server url in
  let md =
    Stage.classify c.c_stage (Builtin.http_descriptor ~msg_type:`Request ~url ~size:expected)
  in
  (* As with memcached: the application guarantees the server-visible
     fields whether or not a classification rule requested them. *)
  let md = Metadata.add Metadata.Field.url (Metadata.str url) md in
  Rpc.call c.c_rpc ~metadata:md ~request_bytes:request_wire_bytes
    ~on_reply:(fun (r : Rpc.reply) ->
      let result =
        { url; latency = r.Rpc.latency; response_bytes = r.Rpc.response_bytes }
      in
      c.c_results <- result :: c.c_results;
      match on_reply with Some f -> f result | None -> ())
    ()

let results c = List.rev c.c_results
let outstanding c = Rpc.outstanding c.c_rpc

let latencies_us ?url_prefix c =
  List.filter_map
    (fun r ->
      let keep = match url_prefix with Some p -> is_prefix p r.url | None -> true in
      if keep then Some (Time.to_us r.latency) else None)
    (results c)
