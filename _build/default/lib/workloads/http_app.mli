(** An HTTP-library application over the simulator.

    The second application stage of the paper's Table 2: requests are
    classified by message type and URL, so enclave policies can treat
    [/api/…] calls differently from [/static/…] bulk fetches.  The server
    maps URL prefixes to response sizes (longest prefix wins). *)

type server

val server :
  net:Eden_netsim.Net.t ->
  host:Eden_base.Addr.host ->
  ?default_response_bytes:int ->
  unit ->
  server
(** Unrouted URLs yield [default_response_bytes] (default 8192). *)

val set_route : server -> prefix:string -> response_bytes:int -> unit

val server_stage : server -> Eden_stage.Stage.t
(** The server's own HTTP stage: program it to classify {e responses}
    (URL + RESPONSE type), so server-side enclaves can prioritize them. *)

type client

val client :
  net:Eden_netsim.Net.t ->
  server:server ->
  host:Eden_base.Addr.host ->
  ?stage:Eden_stage.Stage.t ->
  unit ->
  client
(** [stage] defaults to a fresh {!Eden_stage.Builtin.http}. *)

val stage : client -> Eden_stage.Stage.t

type fetch_result = {
  url : string;
  latency : Eden_base.Time.t;
  response_bytes : int;
}

val fetch : client -> url:string -> ?on_reply:(fetch_result -> unit) -> unit -> unit

val results : client -> fetch_result list
val outstanding : client -> int

val latencies_us : ?url_prefix:string -> client -> float list
