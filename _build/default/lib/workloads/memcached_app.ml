module Time = Eden_base.Time
module Addr = Eden_base.Addr
module Metadata = Eden_base.Metadata
module Net = Eden_netsim.Net
module Stage = Eden_stage.Stage
module Builtin = Eden_stage.Builtin

let request_wire_bytes = 100
let ack_wire_bytes = 64

type server = {
  s_net : Net.t;
  s_host : Addr.host;
  s_default_value_bytes : int;
  s_store : (string, int) Hashtbl.t;  (* key -> value size *)
}

let server ~net ~host ?(default_value_bytes = 2048) () =
  { s_net = net; s_host = host; s_default_value_bytes = default_value_bytes;
    s_store = Hashtbl.create 64 }

let stored_size srv ~key = Hashtbl.find_opt srv.s_store key

(* Request metadata -> response size, updating the store for PUTs. *)
let handle srv md =
  let key = Option.value ~default:"" (Metadata.find_str Metadata.Field.key md) in
  match Metadata.find_str Metadata.Field.msg_type md with
  | Some "PUT" ->
    let size =
      Int64.to_int (Option.value ~default:0L (Metadata.find_int Metadata.Field.msg_size md))
    in
    Hashtbl.replace srv.s_store key size;
    ack_wire_bytes
  | Some "GET" | Some _ | None ->
    Option.value ~default:srv.s_default_value_bytes (Hashtbl.find_opt srv.s_store key)

type op_result = {
  key : string;
  op : [ `Get | `Put ];
  latency : Time.t;
  response_bytes : int;
}

type client = {
  c_server : server;
  c_stage : Stage.t;
  (* GETs and PUTs ride separate connections (the usual client-pool
     setup), so a latency-critical GET is never stuck behind bulk PUT
     bytes in its own stream — class-based priorities can then act on
     the wire. *)
  c_get : Rpc.client;
  c_put : Rpc.client;
  mutable c_results : op_result list;  (* newest first *)
}

let client ~net ~server:srv ~host ?stage () =
  let c_stage = match stage with Some s -> s | None -> Builtin.memcached () in
  let endpoint port =
    { Rpc.host = srv.s_host; port; handler = handle srv; response_metadata = None }
  in
  {
    c_server = srv;
    c_stage;
    c_get =
      Rpc.connect ~net ~endpoint:(endpoint 11211) ~client_host:host
        ~response_port:(22_000 + host) ();
    c_put =
      Rpc.connect ~net ~endpoint:(endpoint 11212) ~client_host:host
        ~response_port:(23_000 + host) ();
    c_results = [];
  }

let stage c = c.c_stage

let issue c ~key ~op ~wire_bytes ~descriptor_size ?on_reply () =
  let md =
    Stage.classify c.c_stage (Builtin.memcached_descriptor ~op ~key ~size:descriptor_size)
  in
  (* The stage attaches key/type metadata only when a rule asks for it;
     the server needs both, so the app ensures they are present (an
     Eden-compliant application always knows its own message). *)
  let md = Metadata.add Metadata.Field.key (Metadata.str key) md in
  let md =
    Metadata.add Metadata.Field.msg_type
      (Metadata.str (match op with `Get -> "GET" | `Put -> "PUT"))
      md
  in
  let md = Metadata.add Metadata.Field.msg_size (Metadata.int descriptor_size) md in
  let rpc = match op with `Get -> c.c_get | `Put -> c.c_put in
  Rpc.call rpc ~metadata:md ~request_bytes:wire_bytes
    ~on_reply:(fun (r : Rpc.reply) ->
      let result =
        { key; op; latency = r.Rpc.latency; response_bytes = r.Rpc.response_bytes }
      in
      c.c_results <- result :: c.c_results;
      match on_reply with Some f -> f result | None -> ())
    ()

let get c ~key ?on_reply () =
  issue c ~key ~op:`Get ~wire_bytes:request_wire_bytes
    ~descriptor_size:
      (Option.value ~default:c.c_server.s_default_value_bytes
         (Hashtbl.find_opt c.c_server.s_store key))
    ?on_reply ()

let put c ~key ~size ?on_reply () =
  issue c ~key ~op:`Put ~wire_bytes:size ~descriptor_size:size ?on_reply ()

let results c = List.rev c.c_results
let outstanding c = Rpc.outstanding c.c_get + Rpc.outstanding c.c_put

let latencies c op =
  List.filter_map
    (fun r -> if r.op = op then Some (Time.to_us r.latency) else None)
    (results c)

let get_latencies_us c = latencies c `Get
let put_latencies_us c = latencies c `Put
