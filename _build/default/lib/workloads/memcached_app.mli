(** A networked memcached-style key-value application.

    The paper's running example (§1, §2.1.1): clients issue GETs and PUTs
    whose packets the memcached {e stage} classifies, so enclave policies
    can treat them differently — prioritize GETs, steer by key, balance
    per message.  This module provides the client/server pair over the
    simulator: requests and responses are TCP messages carrying stage
    metadata, and the client measures per-operation latency.

    Wire model: a GET is a ~100-byte request answered by a value-sized
    response; a PUT carries the value and is answered by a small ack. *)

type server

val server :
  net:Eden_netsim.Net.t ->
  host:Eden_base.Addr.host ->
  ?default_value_bytes:int ->
  unit ->
  server
(** Serves from an in-memory store; unknown keys yield
    [default_value_bytes] (default 2048) values, PUTs update sizes. *)

val stored_size : server -> key:string -> int option

type client

val client :
  net:Eden_netsim.Net.t ->
  server:server ->
  host:Eden_base.Addr.host ->
  ?stage:Eden_stage.Stage.t ->
  unit ->
  client
(** [stage] (default a fresh {!Eden_stage.Builtin.memcached} with no
    rules) classifies each operation; install rule-sets on it to give the
    enclave classes to match on. *)

val stage : client -> Eden_stage.Stage.t

type op_result = {
  key : string;
  op : [ `Get | `Put ];
  latency : Eden_base.Time.t;
  response_bytes : int;
}

val get : client -> key:string -> ?on_reply:(op_result -> unit) -> unit -> unit
val put : client -> key:string -> size:int -> ?on_reply:(op_result -> unit) -> unit -> unit

val results : client -> op_result list
(** Completed operations, oldest first. *)

val outstanding : client -> int

val get_latencies_us : client -> float list
val put_latencies_us : client -> float list
