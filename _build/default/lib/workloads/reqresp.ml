module Time = Eden_base.Time
module Rng = Eden_base.Rng
module Dist = Eden_base.Dist
module Metadata = Eden_base.Metadata
module Net = Eden_netsim.Net
module Event = Eden_netsim.Event
module Tcp = Eden_netsim.Tcp

type bucket = Small | Intermediate | Large

let bucket_of_size size =
  if size < 10_240 then Small else if size <= 1_048_576 then Intermediate else Large

let bucket_to_string = function
  | Small -> "small"
  | Intermediate -> "intermediate"
  | Large -> "large"

type record = {
  r_size : int;
  r_bucket : bucket;
  r_fct : Time.t;
  r_retransmissions : int;
}

type t = {
  mutable records : record list;
  mutable launched : int;
  mutable completed : int;
}

let launch ~net ~rng ~src ~dsts ~sizes ~load ~link_rate_bps ?metadata_for ?until () =
  if load <= 0.0 || load >= 1.0 then invalid_arg "Reqresp.launch: load must be in (0,1)";
  if dsts = [] then invalid_arg "Reqresp.launch: no destinations";
  let until = Option.value ~default:(Time.sec 1.0) until in
  let t = { records = []; launched = 0; completed = 0 } in
  let dsts = Array.of_list dsts in
  let mean_size = Flowsize.mean sizes in
  (* Offered load = arrival_rate * mean_size * 8 / link_rate. *)
  let rate_per_sec = load *. link_rate_bps /. (mean_size *. 8.0) in
  let ev = Net.event net in
  let start_one () =
    let size = Flowsize.sample sizes rng in
    let dst = dsts.(Rng.int rng (Array.length dsts)) in
    let metadata =
      match metadata_for with Some f -> Some (f ~size) | None -> None
    in
    t.launched <- t.launched + 1;
    ignore
      (Net.start_flow net ~src ~dst ?metadata
         ~on_complete:(fun fc ->
           t.completed <- t.completed + 1;
           t.records <-
             {
               r_size = size;
               r_bucket = bucket_of_size size;
               r_fct = Time.sub fc.Tcp.Sender.fc_completed fc.Tcp.Sender.fc_started;
               r_retransmissions = fc.Tcp.Sender.fc_retransmissions;
             }
             :: t.records)
         ~size ())
  in
  let rec schedule_next at =
    if Time.( <= ) at until then
      Event.schedule_at ev at (fun () ->
          start_one ();
          schedule_next (Time.add at (Dist.poisson_gap rng ~rate_per_sec)))
  in
  schedule_next (Dist.poisson_gap rng ~rate_per_sec);
  t

let records t = List.rev t.records

let fcts_us t bucket =
  List.filter_map
    (fun r -> if r.r_bucket = bucket then Some (Time.to_us r.r_fct) else None)
    (records t)

let launched t = t.launched
let completed t = t.completed
