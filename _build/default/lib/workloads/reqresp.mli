(** Open-loop request–response traffic (paper §5.1).

    Flow arrivals follow a Poisson process whose rate is chosen so the
    offered load hits a target fraction of a reference link's capacity;
    each arrival launches a response flow whose size is drawn from a
    {!Flowsize.t}.  Completion times are recorded per size bucket —
    small (< 10 KB), intermediate (10 KB – 1 MB), large — matching the
    buckets of the paper's Fig. 9. *)

type bucket = Small | Intermediate | Large

val bucket_of_size : int -> bucket
val bucket_to_string : bucket -> string

type record = {
  r_size : int;
  r_bucket : bucket;
  r_fct : Eden_base.Time.t;
  r_retransmissions : int;
}

type t

val launch :
  net:Eden_netsim.Net.t ->
  rng:Eden_base.Rng.t ->
  src:Eden_base.Addr.host ->
  dsts:Eden_base.Addr.host list ->
  sizes:Flowsize.t ->
  load:float ->
  link_rate_bps:float ->
  ?metadata_for:(size:int -> Eden_base.Metadata.t) ->
  ?until:Eden_base.Time.t ->
  unit ->
  t
(** Schedule arrivals on the net's calendar from time ~0 until [until]
    (default 1 s of simulated time).  [metadata_for] lets the caller tag
    each flow's single message with stage metadata (e.g. SFF flow-size
    hints). Destinations are chosen uniformly. *)

val records : t -> record list
val fcts_us : t -> bucket -> float list
(** Completion times, microseconds, for one bucket. *)

val launched : t -> int
val completed : t -> int
