module Time = Eden_base.Time
module Metadata = Eden_base.Metadata
module Net = Eden_netsim.Net
module Tcp = Eden_netsim.Tcp

type endpoint = {
  host : Eden_base.Addr.host;
  port : int;
  handler : Metadata.t -> int;
  response_metadata : (Metadata.t -> Metadata.t) option;
}

type reply = { latency : Time.t; response_bytes : int }

let rpc_id_field = "__rpc_id"
let reply_to_field = "__rpc_reply_to"

type pending = { p_issued : Time.t; p_on_reply : (reply -> unit) option }

type client = {
  c_net : Net.t;
  c_request_flow : Net.flow;
  c_pending : (int64, pending) Hashtbl.t;
  mutable c_next_id : int64;
  mutable c_completed : int;
}

let connect ~net ~endpoint ~client_host ?response_port () =
  let response_port = Option.value ~default:(20_000 + client_host) response_port in
  let client_box = ref None in
  let on_response md at =
    match (!client_box, Metadata.find_int reply_to_field md) with
    | Some c, Some reply_to -> (
      match Hashtbl.find_opt c.c_pending reply_to with
      | None -> ()
      | Some p ->
        Hashtbl.remove c.c_pending reply_to;
        c.c_completed <- c.c_completed + 1;
        (match p.p_on_reply with
        | Some f ->
          f
            {
              latency = Time.sub at p.p_issued;
              response_bytes =
                Int64.to_int
                  (Option.value ~default:0L (Metadata.find_int "__wire_len" md));
            }
        | None -> ()))
    | _ -> ()
  in
  let response_flow =
    Net.open_flow net ~src:endpoint.host ~dst:client_host ~dst_port:response_port
      ~on_message_received:on_response ()
  in
  let on_request md _at =
    let response_bytes = max 1 (endpoint.handler md) in
    let rpc_id = Option.value ~default:(-1L) (Metadata.find_int rpc_id_field md) in
    let base =
      match endpoint.response_metadata with
      | Some classify -> classify md
      | None -> Metadata.empty
    in
    let resp_md =
      base
      |> Metadata.with_msg_id (Net.alloc_packet_id net)
      |> Metadata.add reply_to_field (Metadata.int64 rpc_id)
    in
    Tcp.Sender.send_message response_flow.Net.f_sender ~metadata:resp_md response_bytes
  in
  let request_flow =
    Net.open_flow net ~src:client_host ~dst:endpoint.host ~dst_port:endpoint.port
      ~on_message_received:on_request ()
  in
  let c =
    {
      c_net = net;
      c_request_flow = request_flow;
      c_pending = Hashtbl.create 32;
      c_next_id = 1L;
      c_completed = 0;
    }
  in
  client_box := Some c;
  c

let call c ?(metadata = Metadata.empty) ?on_reply ~request_bytes () =
  let id = c.c_next_id in
  c.c_next_id <- Int64.add id 1L;
  (* The request must carry a message id for receiver-side reassembly;
     keep the application's if it set one. *)
  let metadata =
    match Metadata.msg_id metadata with
    | Some _ -> metadata
    | None -> Metadata.with_msg_id (Net.alloc_packet_id c.c_net) metadata
  in
  let metadata = Metadata.add rpc_id_field (Metadata.int64 id) metadata in
  Hashtbl.replace c.c_pending id { p_issued = Net.now c.c_net; p_on_reply = on_reply };
  Tcp.Sender.send_message c.c_request_flow.Net.f_sender ~metadata request_bytes

let outstanding c = Hashtbl.length c.c_pending
let completed c = c.c_completed
