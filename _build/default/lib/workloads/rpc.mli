(** Request–response plumbing over simulated TCP.

    The application substrates (memcached, HTTP, storage-like services)
    share one shape: a client sends a metadata-tagged request message and
    awaits a response message on a dedicated reverse flow.  [Rpc] owns
    the matching (request ids, reply-to echoing) and per-call callbacks;
    applications supply the request metadata and a server-side handler
    that turns a request into a response size. *)

type endpoint = {
  host : Eden_base.Addr.host;
  port : int;
  handler : Eden_base.Metadata.t -> int;
      (** Request metadata → response payload bytes (≥ 1 enforced); runs
          when the request message has fully arrived and may side-effect
          application state. *)
  response_metadata : (Eden_base.Metadata.t -> Eden_base.Metadata.t) option;
      (** Stage classification for the {e response} message, given the
          request's metadata — lets server-side enclaves act on response
          classes (e.g. prioritize API responses). *)
}

type reply = {
  latency : Eden_base.Time.t;
  response_bytes : int;
}

type client

val connect :
  net:Eden_netsim.Net.t ->
  endpoint:endpoint ->
  client_host:Eden_base.Addr.host ->
  ?response_port:int ->
  unit ->
  client
(** Open the request flow (client → server) and the response flow
    (server → client).  [response_port] must be unique per client on the
    same host pair (default derives from the client host). *)

val call :
  client ->
  ?metadata:Eden_base.Metadata.t ->
  ?on_reply:(reply -> unit) ->
  request_bytes:int ->
  unit ->
  unit
(** Issue one request.  The caller's metadata travels with the request
    (the handler sees it); matching uses a private field, so application
    message ids are untouched. *)

val outstanding : client -> int
val completed : client -> int
