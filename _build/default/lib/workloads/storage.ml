module Time = Eden_base.Time
module Addr = Eden_base.Addr
module Metadata = Eden_base.Metadata
module Net = Eden_netsim.Net
module Event = Eden_netsim.Event
module Tcp = Eden_netsim.Tcp

let default_op_bytes = 64 * 1024
let request_wire_bytes = 256
let ack_wire_bytes = 64

type io_op = { op_bytes : int; reply : unit -> unit }

type server = {
  s_net : Net.t;
  s_host : Addr.host;
  s_disk_rate_bps : float;
  s_queue : io_op Queue.t;
  mutable s_busy : bool;
  s_port : int;
}

let server ~net ~host ~disk_rate_bps =
  if disk_rate_bps <= 0.0 then invalid_arg "Storage.server: rate must be positive";
  { s_net = net; s_host = host; s_disk_rate_bps = disk_rate_bps; s_queue = Queue.create ();
    s_busy = false; s_port = 9000 }

let service_time srv bytes =
  Time.of_float_ns (float_of_int bytes *. 8.0 /. srv.s_disk_rate_bps *. 1e9)

let rec disk_start srv =
  match Queue.take_opt srv.s_queue with
  | None -> srv.s_busy <- false
  | Some op ->
    srv.s_busy <- true;
    Event.schedule_in (Net.event srv.s_net) (service_time srv op.op_bytes) (fun () ->
        op.reply ();
        disk_start srv)

let disk_submit srv op =
  Queue.add op srv.s_queue;
  if not srv.s_busy then disk_start srv

type kind = Read | Write

type client = {
  c_kind : kind;
  c_net : Net.t;
  c_tenant : int;
  c_op_bytes : int;
  c_outstanding : int;
  c_classify : (op:[ `Read | `Write ] -> size:int -> Metadata.t) option;
  c_request_flow : Net.flow;  (* client -> server *)
  c_issue_one : client -> unit;
  mutable c_bytes_completed : int;
  mutable c_ops_completed : int;
  mutable c_bytes_at : (Time.t * int) list;  (* completion log, newest first *)
}

let metadata_for c op =
  match c.c_classify with
  | Some f -> f ~op ~size:c.c_op_bytes
  | None -> Metadata.empty

let complete c =
  c.c_ops_completed <- c.c_ops_completed + 1;
  c.c_bytes_completed <- c.c_bytes_completed + c.c_op_bytes;
  c.c_bytes_at <- (Net.now c.c_net, c.c_op_bytes) :: c.c_bytes_at

(* ------------------------------------------------------------------ *)
(* Read client: small requests out, 64 KB responses back on a dedicated
   server->client flow; the response flow itself is what the disk feeds. *)

let read_client ~net ~server:srv ~host ~tenant ?(op_bytes = default_op_bytes)
    ?(outstanding = 64) ?classify () =
  (* Response flow: server -> client, one per client. *)
  let rec client_ref = ref None
  and on_response_message _md _at =
    match !client_ref with
    | Some c ->
      complete c;
      c.c_issue_one c
    | None -> ()
  in
  let response_flow =
    Net.open_flow net ~src:srv.s_host ~dst:host ~dst_port:(7000 + tenant)
      ~on_message_received:on_response_message ()
  in
  (* Request flow: client -> server.  The server reacts to each complete
     request message by queueing a disk op whose completion sends the
     response. *)
  let on_request_message md _at =
    let op_size =
      match Metadata.find_int Metadata.Field.msg_size md with
      | Some s -> Int64.to_int s
      | None -> op_bytes
    in
    disk_submit srv
      {
        op_bytes = op_size;
        reply =
          (fun () ->
            (* Response metadata carries the size so the client's
               on_message fires when it fully arrives. *)
            let resp_md =
              Metadata.empty
              |> Metadata.with_msg_id (Net.alloc_packet_id net)
              |> Metadata.add Metadata.Field.msg_size (Metadata.int op_size)
            in
            Tcp.Sender.send_message response_flow.Net.f_sender ~metadata:resp_md op_size);
      }
  in
  let request_flow =
    Net.open_flow net ~src:host ~dst:srv.s_host ~dst_port:srv.s_port
      ~on_message_received:on_request_message ()
  in
  let issue_one c =
    let md = metadata_for c `Read in
    (* The request must carry the operation size even without a policy
       classifier, because the server reads it. *)
    let md = Metadata.add Metadata.Field.msg_size (Metadata.int c.c_op_bytes) md in
    let md =
      match Metadata.msg_id md with
      | Some _ -> md
      | None -> Metadata.with_msg_id (Net.alloc_packet_id c.c_net) md
    in
    Tcp.Sender.send_message c.c_request_flow.Net.f_sender ~metadata:md request_wire_bytes
  in
  let c =
    {
      c_kind = Read;
      c_net = net;
      c_tenant = tenant;
      c_op_bytes = op_bytes;
      c_outstanding = outstanding;
      c_classify = classify;
      c_request_flow = request_flow;
      c_issue_one = issue_one;
      c_bytes_completed = 0;
      c_ops_completed = 0;
      c_bytes_at = [];
    }
  in
  client_ref := Some c;
  c

(* ------------------------------------------------------------------ *)
(* Write client: 64 KB messages out; the server services the op after the
   data fully arrives and acks with a tiny message on the reverse flow. *)

let write_client ~net ~server:srv ~host ~tenant ?(op_bytes = default_op_bytes)
    ?(outstanding = 8) ?classify () =
  let rec client_ref = ref None
  and on_ack_message _md _at =
    match !client_ref with
    | Some c ->
      complete c;
      c.c_issue_one c
    | None -> ()
  in
  let ack_flow =
    Net.open_flow net ~src:srv.s_host ~dst:host ~dst_port:(7100 + tenant)
      ~on_message_received:on_ack_message ()
  in
  let on_write_message md _at =
    let op_size =
      match Metadata.find_int Metadata.Field.msg_size md with
      | Some s -> Int64.to_int s
      | None -> op_bytes
    in
    disk_submit srv
      {
        op_bytes = op_size;
        reply =
          (fun () ->
            let ack_md =
              Metadata.empty
              |> Metadata.with_msg_id (Net.alloc_packet_id net)
              |> Metadata.add Metadata.Field.msg_size (Metadata.int ack_wire_bytes)
            in
            Tcp.Sender.send_message ack_flow.Net.f_sender ~metadata:ack_md ack_wire_bytes);
      }
  in
  let write_flow =
    Net.open_flow net ~src:host ~dst:srv.s_host ~dst_port:(srv.s_port + 1)
      ~on_message_received:on_write_message ()
  in
  let issue_one c =
    let md = metadata_for c `Write in
    let md = Metadata.add Metadata.Field.msg_size (Metadata.int c.c_op_bytes) md in
    let md =
      match Metadata.msg_id md with
      | Some _ -> md
      | None -> Metadata.with_msg_id (Net.alloc_packet_id c.c_net) md
    in
    Tcp.Sender.send_message c.c_request_flow.Net.f_sender ~metadata:md c.c_op_bytes
  in
  let c =
    {
      c_kind = Write;
      c_net = net;
      c_tenant = tenant;
      c_op_bytes = op_bytes;
      c_outstanding = outstanding;
      c_classify = classify;
      c_request_flow = write_flow;
      c_issue_one = issue_one;
      c_bytes_completed = 0;
      c_ops_completed = 0;
      c_bytes_at = [];
    }
  in
  client_ref := Some c;
  c

let start c ~at =
  Event.schedule_at (Net.event c.c_net) at (fun () ->
      for _ = 1 to c.c_outstanding do
        c.c_issue_one c
      done)

let bytes_completed c = c.c_bytes_completed
let ops_completed c = c.c_ops_completed

let throughput_mbytes_per_sec c ~since ~now =
  let window = Time.to_sec (Time.sub now since) in
  if window <= 0.0 then 0.0
  else begin
    let bytes =
      List.fold_left
        (fun acc (at, b) -> if Time.( >= ) at since && Time.( <= ) at now then acc + b else acc)
        0 c.c_bytes_at
    in
    float_of_int bytes /. window /. 1e6
  end
