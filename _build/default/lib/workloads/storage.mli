(** Storage substrate for the datacenter-QoS case study (paper §5.3).

    The paper's experiment runs two tenants against a storage server
    backed by a RAM disk behind a 1 Gbps link: one tenant READs, the
    other WRITEs, 64 KB IOs.  READ requests are tiny on the forward
    (client→server) path, so an unconstrained reader floods the server's
    IO queue and starves the writer; Pulsar's rate control charges READ
    requests by {e operation} size, restoring balance (Fig. 11).

    This module provides the server (a FIFO disk-service queue plus
    response generation) and closed-loop read/write clients. *)

type server

val server :
  net:Eden_netsim.Net.t -> host:Eden_base.Addr.host -> disk_rate_bps:float -> server
(** The server host must already be connected to the topology.  Incoming
    IO messages are serviced FIFO at [disk_rate_bps]. *)

type client

val read_client :
  net:Eden_netsim.Net.t ->
  server:server ->
  host:Eden_base.Addr.host ->
  tenant:int ->
  ?op_bytes:int ->
  ?outstanding:int ->
  ?classify:(op:[ `Read | `Write ] -> size:int -> Eden_base.Metadata.t) ->
  unit ->
  client
(** Keeps [outstanding] (default 64) READ requests in flight: each
    request is a ~256-byte message tagged by [classify]; the 64 KB
    response arrives on a server→client flow.  Closed loop: a completed
    response immediately triggers the next request. *)

val write_client :
  net:Eden_netsim.Net.t ->
  server:server ->
  host:Eden_base.Addr.host ->
  tenant:int ->
  ?op_bytes:int ->
  ?outstanding:int ->
  ?classify:(op:[ `Read | `Write ] -> size:int -> Eden_base.Metadata.t) ->
  unit ->
  client
(** Keeps [outstanding] (default 8) WRITE operations in flight; each is a
    full 64 KB transfer followed by a small server acknowledgement. *)

val start : client -> at:Eden_base.Time.t -> unit

val bytes_completed : client -> int
(** Payload bytes of fully completed operations (response received for
    reads, server ack received for writes). *)

val ops_completed : client -> int

val throughput_mbytes_per_sec : client -> since:Eden_base.Time.t -> now:Eden_base.Time.t -> float

val default_op_bytes : int
(** 64 KB, the paper's IO size. *)
