test/test_base.ml: Addr Alcotest Array Class_name Dist Eden_base Format Gen Int64 List Metadata Option QCheck QCheck_alcotest Rng Stats Time
