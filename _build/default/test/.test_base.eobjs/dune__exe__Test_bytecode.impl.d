test/test_bytecode.ml: Alcotest Array Asm Bytes Codec Eden_base Eden_bytecode Int64 Interp Opcode Printf Program QCheck QCheck_alcotest Result String Verifier
