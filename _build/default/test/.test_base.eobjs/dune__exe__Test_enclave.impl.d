test/test_enclave.ml: Alcotest Array Compile Dsl Eden_base Eden_enclave Eden_lang Float Int64 List Option Printf Result Schema String
