test/test_eval.ml: Alcotest Array Ast Compile Dsl Eden_base Eden_bytecode Eden_functions Eden_lang Eval Int64 Parser Pretty QCheck QCheck_alcotest Schema
