test/test_experiments.ml: Alcotest Eden_base Eden_experiments Fig10 Fig11 Fig12 Fig9 Float Footprint List Listings Printf String
