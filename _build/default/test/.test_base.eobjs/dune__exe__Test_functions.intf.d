test/test_functions.mli:
