test/test_lang.ml: Alcotest Array Ast Compile Dsl Eden_base Eden_bytecode Eden_lang Gen Int64 List Pretty Printf QCheck QCheck_alcotest Result Schema Stdlib String Test Typecheck
