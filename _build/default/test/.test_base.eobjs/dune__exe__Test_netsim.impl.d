test/test_netsim.ml: Alcotest Array Eden_base Eden_enclave Eden_functions Eden_netsim Event Fabric Host Int64 Link List Net Printf Switch Tcp Trace
