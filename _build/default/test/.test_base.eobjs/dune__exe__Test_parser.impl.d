test/test_parser.ml: Alcotest Ast Compile Eden_functions Eden_lang Int64 List Parser Pretty QCheck QCheck_alcotest Result Schema
