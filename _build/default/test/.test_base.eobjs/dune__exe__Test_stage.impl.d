test/test_stage.ml: Alcotest Builtin Classifier Eden_base Eden_stage Gen List QCheck QCheck_alcotest Stage String
