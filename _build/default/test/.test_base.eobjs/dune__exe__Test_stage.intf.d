test/test_stage.mli:
