test/test_workloads.ml: Alcotest Eden_base Eden_enclave Eden_functions Eden_netsim Eden_stage Eden_workloads Hashtbl Int64 List Option Printf
