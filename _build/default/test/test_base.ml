(* Unit and property tests for eden_base. *)

open Eden_base

let check_float = Alcotest.(check (float 1e-9))
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Time *)

let test_time_units () =
  Alcotest.(check int64) "us" 1_000L (Time.us 1);
  Alcotest.(check int64) "ms" 1_000_000L (Time.ms 1);
  Alcotest.(check int64) "sec" 1_000_000_000L (Time.sec 1.0);
  Alcotest.(check int64) "add" 1_500L Time.(add (us 1) (ns 500));
  Alcotest.(check int64) "mul" 3_000L Time.(mul (us 1) 3);
  check_float "to_us" 1.5 (Time.to_us 1_500L);
  check_float "to_sec" 2e-6 (Time.to_sec 2_000L)

let test_time_ordering () =
  check_bool "lt" true Time.(us 1 < us 2);
  check_bool "le" true Time.(us 2 <= us 2);
  check_bool "gt" false Time.(us 1 > us 2);
  Alcotest.(check int64) "max" (Time.us 2) (Time.max (Time.us 1) (Time.us 2))

let test_time_pp () =
  let s t = Format.asprintf "%a" Time.pp t in
  Alcotest.(check string) "ns" "12ns" (s (Time.ns 12));
  Alcotest.(check string) "us" "1.500us" (s (Time.ns 1500));
  Alcotest.(check string) "ms" "2.000ms" (s (Time.ms 2));
  Alcotest.(check string) "s" "1.000s" (s (Time.sec 1.0))

(* ------------------------------------------------------------------ *)
(* Rng *)

let test_rng_determinism () =
  let a = Rng.create 42L and b = Rng.create 42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_rng_split_independence () =
  let a = Rng.create 42L in
  let c = Rng.split a in
  let x = Rng.int64 a and y = Rng.int64 c in
  check_bool "split streams differ" true (not (Int64.equal x y))

let test_rng_int_bounds () =
  let rng = Rng.create 7L in
  for _ = 1 to 1000 do
    let v = Rng.int rng 10 in
    check_bool "in range" true (v >= 0 && v < 10)
  done

let test_rng_weighted_index () =
  let rng = Rng.create 9L in
  let counts = Array.make 2 0 in
  let w = [| 10.0; 1.0 |] in
  for _ = 1 to 11_000 do
    let i = Rng.weighted_index rng w in
    counts.(i) <- counts.(i) + 1
  done;
  (* Expect ~10000 vs ~1000; allow generous slack. *)
  check_bool "ratio respected" true (counts.(0) > 9 * counts.(1) / 2)

let test_rng_exponential_mean () =
  let rng = Rng.create 3L in
  let s = Stats.Summary.create () in
  for _ = 1 to 20_000 do
    Stats.Summary.add s (Rng.exponential rng 5.0)
  done;
  check_bool "mean near 5" true (abs_float (Stats.Summary.mean s -. 5.0) < 0.25)

let prop_rng_int_uniformish =
  QCheck.Test.make ~name:"rng int stays in bounds" ~count:500
    QCheck.(pair int64 (int_range 1 1000))
    (fun (seed, bound) ->
      let rng = Rng.create seed in
      let v = Rng.int rng bound in
      v >= 0 && v < bound)

(* ------------------------------------------------------------------ *)
(* Addr *)

let test_five_tuple_reverse () =
  let t =
    Addr.five_tuple
      ~src:(Addr.endpoint 1 1000)
      ~dst:(Addr.endpoint 2 80)
      ~proto:Addr.Tcp
  in
  let r = Addr.reverse t in
  check_int "src host" 2 r.Addr.src.Addr.host;
  check_int "dst port" 1000 r.Addr.dst.Addr.port;
  check_bool "double reverse" true (Addr.equal_five_tuple t (Addr.reverse r))

let test_five_tuple_hash_deterministic () =
  let t =
    Addr.five_tuple
      ~src:(Addr.endpoint 1 1000)
      ~dst:(Addr.endpoint 2 80)
      ~proto:Addr.Tcp
  in
  check_int "same hash" (Addr.hash_five_tuple t) (Addr.hash_five_tuple t);
  let t' = Addr.five_tuple ~src:(Addr.endpoint 1 1001) ~dst:t.Addr.dst ~proto:Addr.Tcp in
  check_bool "different flows usually differ" true
    (Addr.hash_five_tuple t <> Addr.hash_five_tuple t')

(* ------------------------------------------------------------------ *)
(* Class names *)

let test_class_name_roundtrip () =
  let c = Class_name.v ~stage:"memcached" ~ruleset:"r1" ~name:"GET" in
  Alcotest.(check string) "to_string" "memcached.r1.GET" (Class_name.to_string c);
  match Class_name.of_string "memcached.r1.GET" with
  | Some c' -> check_bool "roundtrip" true (Class_name.equal c c')
  | None -> Alcotest.fail "parse failed"

let test_class_name_invalid () =
  check_bool "two parts" true (Class_name.of_string "a.b" = None);
  check_bool "empty part" true (Class_name.of_string "a..c" = None);
  check_bool "four parts" true (Class_name.of_string "a.b.c.d" = None)

let test_pattern_matching () =
  let c = Class_name.v ~stage:"memcached" ~ruleset:"r1" ~name:"GET" in
  let p s = Option.get (Class_name.Pattern.of_string s) in
  check_bool "exact" true (Class_name.Pattern.matches (p "memcached.r1.GET") c);
  check_bool "wild name" true (Class_name.Pattern.matches (p "memcached.r1.*") c);
  check_bool "wild all" true (Class_name.Pattern.matches (p "*.*.*") c);
  check_bool "mismatch" false (Class_name.Pattern.matches (p "memcached.r1.PUT") c);
  check_int "specificity" 2 (Class_name.Pattern.specificity (p "memcached.r1.*"))

(* ------------------------------------------------------------------ *)
(* Metadata *)

let test_metadata_fields () =
  let m =
    Metadata.empty
    |> Metadata.with_msg_id 42L
    |> Metadata.add Metadata.Field.msg_type (Metadata.str "GET")
    |> Metadata.add Metadata.Field.msg_size (Metadata.int 1024)
  in
  check_bool "msg_id" true (Metadata.msg_id m = Some 42L);
  check_bool "msg_type" true (Metadata.find_str Metadata.Field.msg_type m = Some "GET");
  check_bool "msg_size" true (Metadata.find_int Metadata.Field.msg_size m = Some 1024L);
  check_bool "missing" true (Metadata.find "nope" m = None)

let test_metadata_classes () =
  let g = Class_name.v ~stage:"s" ~ruleset:"r" ~name:"G" in
  let p = Class_name.v ~stage:"s" ~ruleset:"r" ~name:"P" in
  let m = Metadata.empty |> Metadata.add_class g |> Metadata.add_class p in
  check_int "two classes" 2 (List.length (Metadata.classes m));
  let m2 = Metadata.add_class g m in
  check_int "dedup" 2 (List.length (Metadata.classes m2));
  check_bool "has" true (Metadata.has_class p m)

let test_metadata_union () =
  let a =
    Metadata.empty |> Metadata.with_msg_id 1L |> Metadata.add "x" (Metadata.int 1)
  in
  let b = Metadata.empty |> Metadata.add "x" (Metadata.int 2) in
  let u = Metadata.union a b in
  check_bool "b wins field" true (Metadata.find_int "x" u = Some 2L);
  check_bool "id kept" true (Metadata.msg_id u = Some 1L)

(* ------------------------------------------------------------------ *)
(* Stats *)

let test_summary_basics () =
  let s = Stats.Summary.create () in
  List.iter (Stats.Summary.add s) [ 1.0; 2.0; 3.0; 4.0 ];
  check_float "mean" 2.5 (Stats.Summary.mean s);
  check_float "min" 1.0 (Stats.Summary.min s);
  check_float "max" 4.0 (Stats.Summary.max s);
  check_bool "variance" true (abs_float (Stats.Summary.variance s -. 5.0 /. 3.0) < 1e-9)

let test_summary_merge () =
  let a = Stats.Summary.create () and b = Stats.Summary.create () in
  let all = Stats.Summary.create () in
  List.iter
    (fun x ->
      Stats.Summary.add all x;
      if x < 3.0 then Stats.Summary.add a x else Stats.Summary.add b x)
    [ 1.0; 2.0; 3.0; 4.0; 5.0 ];
  let m = Stats.Summary.merge a b in
  check_float "merged mean" (Stats.Summary.mean all) (Stats.Summary.mean m);
  check_bool "merged var" true
    (abs_float (Stats.Summary.variance all -. Stats.Summary.variance m) < 1e-9)

let test_percentiles () =
  let s = Stats.Samples.create () in
  for i = 1 to 100 do
    Stats.Samples.add s (float_of_int i)
  done;
  check_float "p50" 50.5 (Stats.Samples.percentile s 50.0);
  check_bool "p95" true (abs_float (Stats.Samples.percentile s 95.0 -. 95.05) < 0.01);
  check_float "p0" 1.0 (Stats.Samples.percentile s 0.0);
  check_float "p100" 100.0 (Stats.Samples.percentile s 100.0)

let test_samples_empty () =
  let s = Stats.Samples.create () in
  check_float "empty mean" 0.0 (Stats.Samples.mean s);
  check_float "empty pct" 0.0 (Stats.Samples.percentile s 95.0);
  check_float "empty ci" 0.0 (Stats.Samples.ci95 s)

let test_summary_merge_empty () =
  let a = Stats.Summary.create () and b = Stats.Summary.create () in
  Stats.Summary.add b 5.0;
  check_float "empty+b mean" 5.0 (Stats.Summary.mean (Stats.Summary.merge a b));
  check_float "b+empty mean" 5.0 (Stats.Summary.mean (Stats.Summary.merge b a));
  check_int "empty+empty count" 0 (Stats.Summary.count (Stats.Summary.merge a a))

let test_mbps () =
  check_float "1 MB in 1 s" 8.0
    (Stats.mbps ~bytes_transferred:1_000_000 ~duration:(Time.sec 1.0));
  check_float "zero duration" 0.0 (Stats.mbps ~bytes_transferred:100 ~duration:Time.zero)

let prop_percentile_monotone =
  QCheck.Test.make ~name:"percentiles are monotone" ~count:200
    QCheck.(list_of_size (Gen.int_range 2 50) (float_range (-1000.) 1000.))
    (fun xs ->
      let s = Stats.Samples.of_list xs in
      let p25 = Stats.Samples.percentile s 25.0 in
      let p50 = Stats.Samples.percentile s 50.0 in
      let p95 = Stats.Samples.percentile s 95.0 in
      p25 <= p50 && p50 <= p95)

(* ------------------------------------------------------------------ *)
(* Dist *)

let test_zipf_skew () =
  let z = Dist.Zipf.create ~n:100 ~alpha:1.0 in
  let rng = Rng.create 11L in
  let counts = Array.make 100 0 in
  for _ = 1 to 50_000 do
    let i = Dist.Zipf.sample z rng in
    counts.(i) <- counts.(i) + 1
  done;
  check_bool "rank 0 most popular" true (counts.(0) > counts.(10));
  check_bool "rank 0 beats rank 50" true (counts.(0) > counts.(50))

let test_empirical_cdf_quantiles () =
  let cdf = Dist.Empirical_cdf.create [ (0.0, 0.0); (10.0, 0.5); (100.0, 1.0) ] in
  check_float "q0" 0.0 (Dist.Empirical_cdf.quantile cdf 0.0);
  check_float "q0.5" 10.0 (Dist.Empirical_cdf.quantile cdf 0.5);
  check_float "q0.25" 5.0 (Dist.Empirical_cdf.quantile cdf 0.25);
  check_float "q1" 100.0 (Dist.Empirical_cdf.quantile cdf 1.0)

let test_empirical_cdf_invalid () =
  Alcotest.check_raises "empty" (Invalid_argument "Empirical_cdf.create: empty")
    (fun () -> ignore (Dist.Empirical_cdf.create []));
  check_bool "non-monotone rejected" true
    (try
       ignore (Dist.Empirical_cdf.create [ (0.0, 0.5); (1.0, 0.4); (2.0, 1.0) ]);
       false
     with Invalid_argument _ -> true)

let test_cdf_mean () =
  let cdf = Dist.Empirical_cdf.create [ (0.0, 0.0); (10.0, 1.0) ] in
  check_float "uniform mean" 5.0 (Dist.Empirical_cdf.mean cdf)

let test_pareto_bounds () =
  let p = Dist.Pareto.create ~xmin:1.0 ~xmax:1000.0 ~alpha:1.2 in
  let rng = Rng.create 5L in
  for _ = 1 to 2000 do
    let x = Dist.Pareto.sample p rng in
    check_bool "in bounds" true (x >= 1.0 && x <= 1000.0 +. 1e-6)
  done

let test_poisson_gap_positive () =
  let rng = Rng.create 17L in
  for _ = 1 to 100 do
    check_bool "gap >= 0" true Time.(Dist.poisson_gap rng ~rate_per_sec:1000.0 >= zero)
  done

let qcheck t = QCheck_alcotest.to_alcotest t

let () =
  Alcotest.run "eden_base"
    [
      ( "time",
        [
          Alcotest.test_case "units" `Quick test_time_units;
          Alcotest.test_case "ordering" `Quick test_time_ordering;
          Alcotest.test_case "pretty printing" `Quick test_time_pp;
        ] );
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "split independence" `Quick test_rng_split_independence;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "weighted index" `Quick test_rng_weighted_index;
          Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
          qcheck prop_rng_int_uniformish;
        ] );
      ( "addr",
        [
          Alcotest.test_case "reverse" `Quick test_five_tuple_reverse;
          Alcotest.test_case "hash" `Quick test_five_tuple_hash_deterministic;
        ] );
      ( "class_name",
        [
          Alcotest.test_case "roundtrip" `Quick test_class_name_roundtrip;
          Alcotest.test_case "invalid" `Quick test_class_name_invalid;
          Alcotest.test_case "patterns" `Quick test_pattern_matching;
        ] );
      ( "metadata",
        [
          Alcotest.test_case "fields" `Quick test_metadata_fields;
          Alcotest.test_case "classes" `Quick test_metadata_classes;
          Alcotest.test_case "union" `Quick test_metadata_union;
        ] );
      ( "stats",
        [
          Alcotest.test_case "summary" `Quick test_summary_basics;
          Alcotest.test_case "merge" `Quick test_summary_merge;
          Alcotest.test_case "merge empty" `Quick test_summary_merge_empty;
          Alcotest.test_case "percentiles" `Quick test_percentiles;
          Alcotest.test_case "empty samples" `Quick test_samples_empty;
          Alcotest.test_case "mbps" `Quick test_mbps;
          qcheck prop_percentile_monotone;
        ] );
      ( "dist",
        [
          Alcotest.test_case "zipf skew" `Quick test_zipf_skew;
          Alcotest.test_case "empirical cdf" `Quick test_empirical_cdf_quantiles;
          Alcotest.test_case "cdf invalid" `Quick test_empirical_cdf_invalid;
          Alcotest.test_case "cdf mean" `Quick test_cdf_mean;
          Alcotest.test_case "pareto bounds" `Quick test_pareto_bounds;
          Alcotest.test_case "poisson gaps" `Quick test_poisson_gap_positive;
        ] );
    ]
