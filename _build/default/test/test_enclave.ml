(* Tests for the enclave: state store, tables, queueing, cost accounting,
   and the full process() pipeline with interpreted and native actions. *)

module Enclave = Eden_enclave.Enclave
module State = Eden_enclave.State
module Table = Eden_enclave.Table
module Queueing = Eden_enclave.Queueing
module Cost = Eden_enclave.Cost
module Addr = Eden_base.Addr
module Packet = Eden_base.Packet
module Metadata = Eden_base.Metadata
module Class_name = Eden_base.Class_name
module Time = Eden_base.Time
open Eden_lang

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_i64 = Alcotest.(check int64)

let get_ok = function
  | Ok v -> v
  | Error msg -> Alcotest.failf "unexpected error: %s" msg

let flow ?(src_port = 1000) ?(dst_port = 80) () =
  Addr.five_tuple ~src:(Addr.endpoint 1 src_port) ~dst:(Addr.endpoint 2 dst_port)
    ~proto:Addr.Tcp

let data_packet ?(id = 0L) ?(payload = 1000) ?(metadata = Metadata.empty) ?(seq = 0) f =
  Packet.make ~id ~flow:f ~kind:Packet.Data ~seq ~payload ~metadata ()

let cls name = Class_name.v ~stage:"test" ~ruleset:"r" ~name
let pat s = Option.get (Class_name.Pattern.of_string s)

let tagged_metadata ?(msg_id = 1L) ?(extra = []) names =
  let md = Metadata.with_msg_id msg_id Metadata.empty in
  let md = List.fold_left (fun md n -> Metadata.add_class (cls n) md) md names in
  List.fold_left (fun md (k, v) -> Metadata.add k v md) md extra

(* ------------------------------------------------------------------ *)
(* State store *)

let test_state_globals () =
  let s = State.create () in
  check_i64 "default" 0L (State.global_get s "x");
  State.global_set s "x" 42L;
  check_i64 "set" 42L (State.global_get s "x");
  check_bool "array default" true (State.global_array s "a" = [||]);
  State.global_array_set s "a" [| 1L; 2L |];
  check_i64 "array" 2L (State.global_array s "a").(1)

let test_state_messages () =
  let s = State.create () in
  let now = Time.us 1 in
  check_i64 "default seeded" 7L (State.msg_get s ~msg:1L ~field:"Size" ~default:7L ~now);
  State.msg_set s ~msg:1L ~field:"Size" 100L ~now;
  check_i64 "updated" 100L (State.msg_get s ~msg:1L ~field:"Size" ~default:7L ~now);
  check_i64 "other message isolated" 7L
    (State.msg_get s ~msg:2L ~field:"Size" ~default:7L ~now);
  check_int "two messages" 2 (State.msg_count s);
  State.msg_end s ~msg:1L;
  check_int "one left" 1 (State.msg_count s);
  check_bool "gone" false (State.msg_known s ~msg:1L)

let test_state_expiry () =
  let s = State.create () in
  ignore (State.msg_get s ~msg:1L ~field:"x" ~default:0L ~now:(Time.us 1));
  ignore (State.msg_get s ~msg:2L ~field:"x" ~default:0L ~now:(Time.ms 5));
  let dropped = State.expire s ~now:(Time.ms 6) ~idle:(Time.ms 2) in
  check_int "one expired" 1 dropped;
  check_bool "recent kept" true (State.msg_known s ~msg:2L)

(* ------------------------------------------------------------------ *)
(* Tables *)

let test_table_specificity_order () =
  let tbl = Table.create ~id:0 in
  ignore (Table.add_rule tbl ~pattern:(pat "*.*.*") ~action:"fallback");
  ignore (Table.add_rule tbl ~pattern:(pat "test.r.GET") ~action:"get_action");
  ignore (Table.add_rule tbl ~pattern:(pat "test.r.*") ~action:"stage_action");
  (match Table.lookup tbl [ cls "GET" ] with
  | Some r -> Alcotest.(check string) "most specific" "get_action" r.Table.action
  | None -> Alcotest.fail "no match");
  (match Table.lookup tbl [ cls "PUT" ] with
  | Some r -> Alcotest.(check string) "prefix" "stage_action" r.Table.action
  | None -> Alcotest.fail "no match");
  match Table.lookup tbl [ Class_name.v ~stage:"other" ~ruleset:"r" ~name:"X" ] with
  | Some r -> Alcotest.(check string) "fallback" "fallback" r.Table.action
  | None -> Alcotest.fail "no match"

let test_table_multi_class_packet () =
  let tbl = Table.create ~id:0 in
  ignore (Table.add_rule tbl ~pattern:(pat "test.r.PUT") ~action:"put_action");
  match Table.lookup tbl [ cls "GET"; cls "PUT" ] with
  | Some r -> Alcotest.(check string) "matches any class" "put_action" r.Table.action
  | None -> Alcotest.fail "no match"

let test_table_remove () =
  let tbl = Table.create ~id:0 in
  let r = Table.add_rule tbl ~pattern:(pat "*.*.*") ~action:"a" in
  check_bool "removed" true (Table.remove_rule tbl r.Table.rule_id);
  check_bool "no match" true (Table.lookup tbl [ cls "GET" ] = None)

(* ------------------------------------------------------------------ *)
(* Queueing *)

let test_token_bucket_rate () =
  (* 8 Mbps = 1 MB/s; after the burst is spent, 1000-byte packets leave
     1 ms apart. *)
  let tb = Queueing.Token_bucket.create ~rate_bps:8e6 ~burst_bytes:1000 in
  let d0 = Queueing.Token_bucket.consume tb ~now:Time.zero ~cost_bytes:1000 in
  check_bool "burst departs immediately" true (Time.compare d0 Time.zero = 0);
  let d1 = Queueing.Token_bucket.consume tb ~now:Time.zero ~cost_bytes:1000 in
  check_bool "second waits ~1ms" true
    (Float.abs (Time.to_ms d1 -. 1.0) < 0.01);
  let d2 = Queueing.Token_bucket.consume tb ~now:Time.zero ~cost_bytes:1000 in
  check_bool "third waits ~2ms" true (Float.abs (Time.to_ms d2 -. 2.0) < 0.01)

let test_token_bucket_refill () =
  let tb = Queueing.Token_bucket.create ~rate_bps:8e6 ~burst_bytes:1000 in
  let _ = Queueing.Token_bucket.consume tb ~now:Time.zero ~cost_bytes:1000 in
  (* After 1 ms the bucket holds 1000 bytes again. *)
  let d = Queueing.Token_bucket.consume tb ~now:(Time.ms 1) ~cost_bytes:1000 in
  check_bool "no extra wait" true (Time.compare d (Time.ms 1) <= 0)

let test_priority_queue_order () =
  let q = Queueing.Priority.create () in
  ignore (Queueing.Priority.push q ~prio:0 ~size:10 "low");
  ignore (Queueing.Priority.push q ~prio:7 ~size:10 "high");
  ignore (Queueing.Priority.push q ~prio:3 ~size:10 "mid");
  ignore (Queueing.Priority.push q ~prio:7 ~size:10 "high2");
  Alcotest.(check (option string)) "high first" (Some "high") (Queueing.Priority.pop q);
  Alcotest.(check (option string)) "fifo within level" (Some "high2") (Queueing.Priority.pop q);
  Alcotest.(check (option string)) "then mid" (Some "mid") (Queueing.Priority.pop q);
  Alcotest.(check (option string)) "then low" (Some "low") (Queueing.Priority.pop q);
  Alcotest.(check (option string)) "empty" None (Queueing.Priority.pop q)

let test_priority_queue_drop_tail () =
  let q = Queueing.Priority.create ~capacity_bytes:25 () in
  check_bool "fits" true (Queueing.Priority.push q ~prio:0 ~size:10 "a");
  check_bool "fits" true (Queueing.Priority.push q ~prio:0 ~size:10 "b");
  check_bool "level full -> dropped" false (Queueing.Priority.push q ~prio:0 ~size:10 "c");
  check_bool "other level has its own budget" true
    (Queueing.Priority.push q ~prio:7 ~size:10 "d");
  check_int "drops counted" 1 (Queueing.Priority.drops q);
  check_int "bytes" 30 (Queueing.Priority.bytes q)

(* ------------------------------------------------------------------ *)
(* Enclave pipeline with interpreted actions *)

let pias_like_schema =
  Schema.with_standard_packet
    ~message:[ Schema.field "Size" ~access:Schema.Read_write ]
    ~global_arrays:[ Schema.array "Limits" ]
    ()

(* PIAS: accumulate message size, look up priority by threshold. *)
let pias_action () =
  let open Dsl in
  let search =
    fn "search" [ "i" ]
      (if_ (var "i" >= glob_arr_len "Limits") (int 0)
         (if_ (msg "Size" <= glob_arr "Limits" (var "i"))
            (int 7 - var "i")
            (call "search" [ var "i" + int 1 ])))
  in
  action ~funs:[ search ] "pias"
    (set_msg "Size" (msg "Size" + pkt "Size") ^^ set_pkt "Priority" (call "search" [ int 0 ]))

let compiled_pias () = get_ok (Result.map_error Compile.error_to_string
  (Compile.compile pias_like_schema (pias_action ())))

let installed_enclave () =
  let e = Enclave.create ~host:1 () in
  get_ok
    (Enclave.install_action e
       {
         Enclave.i_name = "pias";
         i_impl = Enclave.Interpreted (compiled_pias ());
         i_msg_sources = [ ("Size", Enclave.Stateful 0L) ];
       });
  ignore (get_ok (Enclave.add_table_rule e ~pattern:(pat "*.*.*") ~action:"pias" ()));
  get_ok (Enclave.set_global_array e ~action:"pias" "Limits" [| 10_000L; 1_000_000L |]);
  e

let test_process_sets_priority () =
  let e = installed_enclave () in
  let f = flow () in
  let pkt = data_packet ~payload:1000 f in
  (match Enclave.process e ~now:(Time.us 1) pkt with
  | Enclave.Forward _ -> ()
  | Enclave.Dropped r -> Alcotest.failf "dropped: %s" r);
  (* 1058 bytes accumulated <= 10KB: highest priority (7). *)
  check_int "small flow high prio" 7 pkt.Packet.priority

let test_process_accumulates_message_state () =
  let e = installed_enclave () in
  let f = flow () in
  (* Push ~20 KB through: priority must drop to 6 once size > 10 KB. *)
  let final_prio = ref 7 in
  for i = 0 to 19 do
    let pkt = data_packet ~id:(Int64.of_int i) ~payload:1000 ~seq:(i * 1000) f in
    (match Enclave.process e ~now:(Time.us (i + 1)) pkt with
    | Enclave.Forward _ -> ()
    | Enclave.Dropped r -> Alcotest.failf "dropped: %s" r);
    final_prio := pkt.Packet.priority
  done;
  check_int "demoted" 6 !final_prio

let test_flow_state_isolated_per_flow () =
  let e = installed_enclave () in
  let f1 = flow ~src_port:1000 () in
  let f2 = flow ~src_port:2000 () in
  for i = 0 to 19 do
    ignore (Enclave.process e ~now:(Time.us i) (data_packet ~payload:1000 f1))
  done;
  let pkt = data_packet ~payload:1000 f2 in
  ignore (Enclave.process e ~now:(Time.us 100) pkt);
  check_int "fresh flow still high prio" 7 pkt.Packet.priority

let test_stage_metadata_message_id_used () =
  let e = installed_enclave () in
  let f = flow () in
  (* Two packets of the same application message (metadata msg id),
     different flows: state accumulates under the message id. *)
  let md = tagged_metadata ~msg_id:5L [ "GET" ] in
  for i = 0 to 19 do
    let pkt = data_packet ~id:(Int64.of_int i) ~payload:1000 ~metadata:md f in
    ignore (Enclave.process e ~now:(Time.us i) pkt)
  done;
  let pkt = data_packet ~payload:1000 ~metadata:md (flow ~src_port:9999 ()) in
  ignore (Enclave.process e ~now:(Time.us 100) pkt);
  check_int "accumulated across flows" 6 pkt.Packet.priority

let test_note_message_end_clears_state () =
  let e = installed_enclave () in
  let md = tagged_metadata ~msg_id:5L [ "GET" ] in
  let f = flow () in
  for i = 0 to 19 do
    ignore (Enclave.process e ~now:(Time.us i) (data_packet ~payload:1000 ~metadata:md f))
  done;
  Enclave.note_message_end e ~msg_id:5L;
  let pkt = data_packet ~payload:1000 ~metadata:md f in
  ignore (Enclave.process e ~now:(Time.us 100) pkt);
  check_int "state reset" 7 pkt.Packet.priority

let test_unmatched_class_means_no_action () =
  let e = Enclave.create ~host:1 () in
  get_ok
    (Enclave.install_action e
       {
         Enclave.i_name = "pias";
         i_impl = Enclave.Interpreted (compiled_pias ());
         i_msg_sources = [];
       });
  ignore
    (get_ok (Enclave.add_table_rule e ~pattern:(pat "test.r.GET") ~action:"pias" ()));
  let pkt = data_packet (flow ()) in
  (match Enclave.process e ~now:Time.zero pkt with
  | Enclave.Forward _ -> ()
  | Enclave.Dropped _ -> Alcotest.fail "dropped");
  check_int "untouched" 0 pkt.Packet.priority;
  check_int "no invocation" 0 (Enclave.counters e).Enclave.invocations

let test_drop_action () =
  let e = Enclave.create ~host:1 () in
  let schema = Schema.with_standard_packet () in
  let drop_put =
    let open Dsl in
    action "drop_all" (set_pkt "Drop" (int 1))
  in
  let p = get_ok (Result.map_error Compile.error_to_string (Compile.compile schema drop_put)) in
  get_ok
    (Enclave.install_action e
       { Enclave.i_name = "drop_all"; i_impl = Enclave.Interpreted p; i_msg_sources = [] });
  ignore (get_ok (Enclave.add_table_rule e ~pattern:(pat "*.*.*") ~action:"drop_all" ()));
  (match Enclave.process e ~now:Time.zero (data_packet (flow ())) with
  | Enclave.Dropped _ -> ()
  | Enclave.Forward _ -> Alcotest.fail "expected drop");
  check_int "counted" 1 (Enclave.counters e).Enclave.dropped

let test_queue_and_charge_outputs () =
  let e = Enclave.create ~host:1 () in
  let schema =
    Schema.with_standard_packet ~message:[ Schema.field "OpSize" ] ()
  in
  (* Pulsar-style: steer to queue 3, charge the operation size. *)
  let act =
    let open Dsl in
    action "pulsar" (set_pkt "Queue" (int 3) ^^ set_pkt "Charge" (msg "OpSize"))
  in
  let p = get_ok (Result.map_error Compile.error_to_string (Compile.compile schema act)) in
  get_ok
    (Enclave.install_action e
       {
         Enclave.i_name = "pulsar";
         i_impl = Enclave.Interpreted p;
         i_msg_sources = [ ("OpSize", Enclave.Metadata_int "msg_size") ];
       });
  ignore (get_ok (Enclave.add_table_rule e ~pattern:(pat "*.*.*") ~action:"pulsar" ()));
  let md = tagged_metadata ~msg_id:9L ~extra:[ ("msg_size", Metadata.int 65536) ] [ "READ" ] in
  let pkt = data_packet ~payload:100 ~metadata:md (flow ()) in
  match Enclave.process e ~now:Time.zero pkt with
  | Enclave.Forward { queue = Some 3; charge = 65536 } -> ()
  | Enclave.Forward { queue; charge } ->
    Alcotest.failf "wrong outputs: queue=%s charge=%d"
      (match queue with Some q -> string_of_int q | None -> "-")
      charge
  | Enclave.Dropped _ -> Alcotest.fail "dropped"

let test_metadata_flag_source () =
  let e = Enclave.create ~host:1 () in
  let schema = Schema.with_standard_packet ~message:[ Schema.field "IsRead" ] () in
  let act =
    let open Dsl in
    action "flagtest"
      (if_ (msg "IsRead" = int 1) (set_pkt "Priority" (int 6)) (set_pkt "Priority" (int 1)))
  in
  let p = get_ok (Result.map_error Compile.error_to_string (Compile.compile schema act)) in
  get_ok
    (Enclave.install_action e
       {
         Enclave.i_name = "flagtest";
         i_impl = Enclave.Interpreted p;
         i_msg_sources = [ ("IsRead", Enclave.Metadata_flag ("operation", "READ")) ];
       });
  ignore (get_ok (Enclave.add_table_rule e ~pattern:(pat "*.*.*") ~action:"flagtest" ()));
  let md_read = tagged_metadata ~msg_id:1L ~extra:[ ("operation", Metadata.str "READ") ] [] in
  let pkt = data_packet ~metadata:md_read (flow ()) in
  ignore (Enclave.process e ~now:Time.zero pkt);
  check_int "read" 6 pkt.Packet.priority;
  let md_write = tagged_metadata ~msg_id:2L ~extra:[ ("operation", Metadata.str "WRITE") ] [] in
  let pkt2 = data_packet ~metadata:md_write (flow ~src_port:2000 ()) in
  ignore (Enclave.process e ~now:Time.zero pkt2);
  check_int "write" 1 pkt2.Packet.priority

let test_enforce_off_leaves_packet_untouched () =
  let e = installed_enclave () in
  Enclave.set_enforce e false;
  let pkt = data_packet (flow ()) in
  ignore (Enclave.process e ~now:Time.zero pkt);
  check_int "priority unchanged" 0 pkt.Packet.priority;
  check_int "but action ran" 1 (Enclave.counters e).Enclave.invocations

let test_fault_isolation_and_fail_open () =
  let e = Enclave.create ~host:1 () in
  let schema =
    Schema.with_standard_packet ~global_arrays:[ Schema.array "Empty" ] ()
  in
  (* Reads Empty[5] — faults at run time because the array is empty. *)
  let act =
    let open Dsl in
    action "faulty" (set_pkt "Priority" (glob_arr "Empty" (int 5)))
  in
  let p = get_ok (Result.map_error Compile.error_to_string (Compile.compile schema act)) in
  get_ok
    (Enclave.install_action e
       { Enclave.i_name = "faulty"; i_impl = Enclave.Interpreted p; i_msg_sources = [] });
  ignore (get_ok (Enclave.add_table_rule e ~pattern:(pat "*.*.*") ~action:"faulty" ()));
  let pkt = data_packet (flow ()) in
  (match Enclave.process e ~now:Time.zero pkt with
  | Enclave.Forward _ -> ()
  | Enclave.Dropped _ -> Alcotest.fail "fail-open expected");
  check_int "fault recorded" 1 (Enclave.counters e).Enclave.faults;
  check_int "packet untouched" 0 pkt.Packet.priority;
  match Enclave.faults e with
  | { Enclave.fr_action = "faulty"; _ } :: _ -> ()
  | _ -> Alcotest.fail "fault record missing"

let test_install_rejects_bad_packet_field () =
  let e = Enclave.create ~host:1 () in
  let schema = Schema.make ~packet:[ Schema.field "Bogus" ~access:Schema.Read_write ] () in
  let act =
    let open Dsl in
    action "bad" (set_pkt "Bogus" (int 1))
  in
  let p = get_ok (Result.map_error Compile.error_to_string (Compile.compile schema act)) in
  match
    Enclave.install_action e
      { Enclave.i_name = "bad"; i_impl = Enclave.Interpreted p; i_msg_sources = [] }
  with
  | Ok () -> Alcotest.fail "expected rejection"
  | Error msg -> check_bool "mentions field" true (String.length msg > 0)

let test_install_rejects_writable_metadata_source () =
  let e = Enclave.create ~host:1 () in
  let schema =
    Schema.with_standard_packet
      ~message:[ Schema.field "OpSize" ~access:Schema.Read_write ]
      ()
  in
  let act =
    let open Dsl in
    action "bad" (set_msg "OpSize" (int 1))
  in
  let p = get_ok (Result.map_error Compile.error_to_string (Compile.compile schema act)) in
  match
    Enclave.install_action e
      {
        Enclave.i_name = "bad";
        i_impl = Enclave.Interpreted p;
        i_msg_sources = [ ("OpSize", Enclave.Metadata_int "msg_size") ];
      }
  with
  | Ok () -> Alcotest.fail "expected rejection"
  | Error _ -> ()

let test_duplicate_install_rejected () =
  let e = installed_enclave () in
  match
    Enclave.install_action e
      {
        Enclave.i_name = "pias";
        i_impl = Enclave.Interpreted (compiled_pias ());
        i_msg_sources = [];
      }
  with
  | Ok () -> Alcotest.fail "expected rejection"
  | Error _ -> ()

let test_concurrency_levels () =
  let e = installed_enclave () in
  check_bool "pias per-message" true (Enclave.concurrency_of e "pias" = Some `Per_message);
  let schema = Schema.with_standard_packet ~global:[ Schema.field "N" ~access:Schema.Read_write ] () in
  let act =
    let open Dsl in
    action "counter" (set_glob "N" (glob "N" + int 1))
  in
  let p = get_ok (Result.map_error Compile.error_to_string (Compile.compile schema act)) in
  get_ok
    (Enclave.install_action e
       { Enclave.i_name = "counter"; i_impl = Enclave.Interpreted p; i_msg_sources = [] });
  check_bool "global writer serial" true (Enclave.concurrency_of e "counter" = Some `Serial);
  let ro =
    let open Dsl in
    action "mirror" (set_pkt "Priority" (pkt "PayloadSize" % int 8))
  in
  let p2 =
    get_ok
      (Result.map_error Compile.error_to_string
         (Compile.compile (Schema.with_standard_packet ()) ro))
  in
  get_ok
    (Enclave.install_action e
       { Enclave.i_name = "mirror"; i_impl = Enclave.Interpreted p2; i_msg_sources = [] });
  check_bool "packet-only parallel" true (Enclave.concurrency_of e "mirror" = Some `Parallel)

let test_goto_table_chain () =
  let e = Enclave.create ~host:1 () in
  let schema = Schema.with_standard_packet () in
  let jump =
    let open Dsl in
    action "jump" (set_pkt "GotoTable" (int 1))
  in
  let mark =
    let open Dsl in
    action "mark" (set_pkt "Priority" (int 5))
  in
  let pj = get_ok (Result.map_error Compile.error_to_string (Compile.compile schema jump)) in
  let pm = get_ok (Result.map_error Compile.error_to_string (Compile.compile schema mark)) in
  get_ok
    (Enclave.install_action e
       { Enclave.i_name = "jump"; i_impl = Enclave.Interpreted pj; i_msg_sources = [] });
  get_ok
    (Enclave.install_action e
       { Enclave.i_name = "mark"; i_impl = Enclave.Interpreted pm; i_msg_sources = [] });
  let t1 = Enclave.add_table e in
  ignore (get_ok (Enclave.add_table_rule e ~pattern:(pat "*.*.*") ~action:"jump" ()));
  ignore (get_ok (Enclave.add_table_rule e ~table:t1 ~pattern:(pat "*.*.*") ~action:"mark" ()));
  let pkt = data_packet (flow ()) in
  ignore (Enclave.process e ~now:Time.zero pkt);
  check_int "chained action applied" 5 pkt.Packet.priority;
  check_int "two invocations" 2 (Enclave.counters e).Enclave.invocations

let test_batch_processing_equivalent () =
  (* Same packet stream via process() and process_batch(): identical
     priorities and state evolution, cheaper classification. *)
  let mk () = installed_enclave () in
  let e1 = mk () and e2 = mk () in
  let f = flow () in
  let stream () =
    List.init 30 (fun i -> data_packet ~id:(Int64.of_int i) ~payload:1000 ~seq:(i * 1000) f)
  in
  let s1 = stream () and s2 = stream () in
  List.iter (fun pkt -> ignore (Enclave.process e1 ~now:(Time.us 1) pkt)) s1;
  ignore (Enclave.process_batch e2 ~now:(Time.us 1) s2);
  List.iter2
    (fun p1 p2 -> check_int "same priority" p1.Packet.priority p2.Packet.priority)
    s1 s2;
  let c1 = Cost.Accum.enclave_ns (Enclave.cost e1) in
  let c2 = Cost.Accum.enclave_ns (Enclave.cost e2) in
  check_bool (Printf.sprintf "batching cheaper (%.0f < %.0f)" c2 c1) true (c2 < c1)

let test_batch_multi_message_split () =
  (* A batch mixing two messages still charges classification once per
     message run, and decisions are per packet. *)
  let e = installed_enclave () in
  let md1 = tagged_metadata ~msg_id:1L [ "A" ] in
  let md2 = tagged_metadata ~msg_id:2L [ "B" ] in
  let batch =
    [
      data_packet ~id:0L ~metadata:md1 (flow ());
      data_packet ~id:1L ~metadata:md1 (flow ());
      data_packet ~id:2L ~metadata:md2 (flow ());
      data_packet ~id:3L ~metadata:md2 (flow ());
      data_packet ~id:4L ~metadata:md1 (flow ());
    ]
  in
  let decisions = Enclave.process_batch e ~now:Time.zero batch in
  check_int "five decisions" 5 (List.length decisions);
  check_int "five packets" 5 (Enclave.counters e).Enclave.packets

(* ------------------------------------------------------------------ *)
(* Native actions *)

let test_native_action_equivalent () =
  let e = Enclave.create ~host:1 () in
  let native ctx =
    let pkt = Enclave.Native_ctx.packet ctx in
    let size =
      Int64.add
        (Enclave.Native_ctx.msg_get ctx "Size" ~default:0L)
        (Int64.of_int (Packet.wire_size pkt))
    in
    Enclave.Native_ctx.msg_set ctx "Size" size;
    let limits = Enclave.Native_ctx.global_array ctx "Limits" in
    let rec search i =
      if i >= Array.length limits then 0
      else if Int64.compare size limits.(i) <= 0 then 7 - i
      else search (i + 1)
    in
    Enclave.Native_ctx.set_priority ctx (search 0)
  in
  get_ok
    (Enclave.install_action e
       { Enclave.i_name = "pias_native"; i_impl = Enclave.Native native; i_msg_sources = [] });
  ignore (get_ok (Enclave.add_table_rule e ~pattern:(pat "*.*.*") ~action:"pias_native" ()));
  get_ok (Enclave.set_global_array e ~action:"pias_native" "Limits" [| 10_000L; 1_000_000L |]);
  (* Compare against the interpreted enclave on the same packet series. *)
  let e_interp = installed_enclave () in
  let f = flow () in
  for i = 0 to 19 do
    let p1 = data_packet ~id:(Int64.of_int i) ~payload:1000 f in
    let p2 = data_packet ~id:(Int64.of_int i) ~payload:1000 f in
    ignore (Enclave.process e ~now:(Time.us i) p1);
    ignore (Enclave.process e_interp ~now:(Time.us i) p2);
    check_int
      (Printf.sprintf "packet %d same priority" i)
      p2.Packet.priority p1.Packet.priority
  done

(* ------------------------------------------------------------------ *)
(* Cost accounting *)

let test_cost_accounting () =
  let e = installed_enclave () in
  let f = flow () in
  for i = 0 to 9 do
    ignore (Enclave.process e ~now:(Time.us i) (data_packet ~payload:1000 f))
  done;
  let c = Enclave.cost e in
  check_int "10 packets" 10 (Cost.Accum.packets c);
  check_bool "interp time accrued" true (Cost.Accum.interp_ns c > 0.0);
  check_bool "enclave time accrued" true (Cost.Accum.enclave_ns c > 0.0);
  let pct = Cost.Accum.overhead_pct c ~api:true ~enclave:true ~interp:true in
  check_bool "overhead positive" true (pct > 0.0);
  check_bool "overhead sane (<100%)" true (pct < 100.0)

let test_nic_placement_costs_more () =
  let run placement =
    let e = Enclave.create ~placement ~host:1 () in
    get_ok
      (Enclave.install_action e
         {
           Enclave.i_name = "pias";
           i_impl = Enclave.Interpreted (compiled_pias ());
           i_msg_sources = [];
         });
    ignore (get_ok (Enclave.add_table_rule e ~pattern:(pat "*.*.*") ~action:"pias" ()));
    get_ok (Enclave.set_global_array e ~action:"pias" "Limits" [| 10_000L |]);
    let f = flow () in
    for i = 0 to 9 do
      ignore (Enclave.process e ~now:(Time.us i) (data_packet ~payload:1000 f))
    done;
    Cost.Accum.overhead_pct (Enclave.cost e) ~api:true ~enclave:true ~interp:true
  in
  check_bool "nic interp dearer than os" true (run Enclave.Nic > run Enclave.Os)

let () =
  Alcotest.run "eden_enclave"
    [
      ( "state",
        [
          Alcotest.test_case "globals" `Quick test_state_globals;
          Alcotest.test_case "messages" `Quick test_state_messages;
          Alcotest.test_case "expiry" `Quick test_state_expiry;
        ] );
      ( "table",
        [
          Alcotest.test_case "specificity" `Quick test_table_specificity_order;
          Alcotest.test_case "multi-class" `Quick test_table_multi_class_packet;
          Alcotest.test_case "remove" `Quick test_table_remove;
        ] );
      ( "queueing",
        [
          Alcotest.test_case "token bucket rate" `Quick test_token_bucket_rate;
          Alcotest.test_case "token bucket refill" `Quick test_token_bucket_refill;
          Alcotest.test_case "priority order" `Quick test_priority_queue_order;
          Alcotest.test_case "drop tail" `Quick test_priority_queue_drop_tail;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "sets priority" `Quick test_process_sets_priority;
          Alcotest.test_case "accumulates msg state" `Quick
            test_process_accumulates_message_state;
          Alcotest.test_case "per-flow isolation" `Quick test_flow_state_isolated_per_flow;
          Alcotest.test_case "stage msg id" `Quick test_stage_metadata_message_id_used;
          Alcotest.test_case "message end clears" `Quick test_note_message_end_clears_state;
          Alcotest.test_case "no class no action" `Quick test_unmatched_class_means_no_action;
          Alcotest.test_case "drop output" `Quick test_drop_action;
          Alcotest.test_case "queue/charge outputs" `Quick test_queue_and_charge_outputs;
          Alcotest.test_case "metadata flag" `Quick test_metadata_flag_source;
          Alcotest.test_case "enforce off" `Quick test_enforce_off_leaves_packet_untouched;
          Alcotest.test_case "fault isolation" `Quick test_fault_isolation_and_fail_open;
          Alcotest.test_case "goto table" `Quick test_goto_table_chain;
          Alcotest.test_case "batch equivalent" `Quick test_batch_processing_equivalent;
          Alcotest.test_case "batch multi-message" `Quick test_batch_multi_message_split;
        ] );
      ( "api",
        [
          Alcotest.test_case "bad packet field" `Quick test_install_rejects_bad_packet_field;
          Alcotest.test_case "writable metadata source" `Quick
            test_install_rejects_writable_metadata_source;
          Alcotest.test_case "duplicate install" `Quick test_duplicate_install_rejected;
          Alcotest.test_case "concurrency levels" `Quick test_concurrency_levels;
        ] );
      ("native", [ Alcotest.test_case "equivalent to interpreted" `Quick test_native_action_equivalent ]);
      ( "cost",
        [
          Alcotest.test_case "accounting" `Quick test_cost_accounting;
          Alcotest.test_case "nic dearer" `Quick test_nic_placement_costs_more;
        ] );
    ]
