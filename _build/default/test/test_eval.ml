(* Differential testing: the reference AST evaluator vs the compiled
   bytecode must agree on every observable effect, over thousands of
   randomly generated programs. *)

open Eden_lang
module P = Eden_bytecode.Program
module Interp = Eden_bytecode.Interp

let now = Eden_base.Time.us 77

(* ------------------------------------------------------------------ *)
(* Unit tests of the evaluator itself *)

let eval_int expr =
  match Eval.eval_expr ~now expr (Eval.State.create ()) with
  | Ok v -> v
  | Error e -> Alcotest.failf "eval error: %s" (Eval.error_to_string e)

let test_eval_basics () =
  let open Dsl in
  Alcotest.(check int64) "arith" 42L (eval_int ((int 6 * int 8) - int 6));
  Alcotest.(check int64) "if" 1L (eval_int (if_ (int 2 > int 1) (int 1) (int 0)));
  Alcotest.(check int64) "let" 30L
    (eval_int (let_ "x" (int 10) (fun x -> x + x + x)));
  Alcotest.(check int64) "clock" (Eden_base.Time.to_ns now) (eval_int clock)

let test_eval_state_effects () =
  let st = Eval.State.create () in
  Eval.State.set_array st Ast.Global "Tbl" [| 5L; 6L |];
  let action =
    let open Dsl in
    action "t"
      (set_pkt "Priority" (glob_arr "Tbl" (int 1))
      ^^ set_glob_arr "Tbl" (int 0) (int 9)
      ^^ set_msg "Size" (int 123))
  in
  (match Eval.run ~now action st with
  | Ok () -> ()
  | Error e -> Alcotest.failf "eval failed: %s" (Eval.error_to_string e));
  Alcotest.(check int64) "field write" 6L (Eval.State.field st Ast.Packet "Priority");
  Alcotest.(check int64) "array write" 9L (Eval.State.array st Ast.Global "Tbl").(0);
  Alcotest.(check int64) "msg write" 123L (Eval.State.field st Ast.Message "Size")

let test_eval_faults () =
  let st = Eval.State.create () in
  let open Dsl in
  (match Eval.run (action "t" (set_msg "X" (int 1 / int 0))) st with
  | Error Eval.Division_by_zero -> ()
  | Ok () | Error _ -> Alcotest.fail "expected division fault");
  (match Eval.run (action "t" (set_msg "X" (glob_arr "None" (int 0)))) st with
  | Error (Eval.Array_bounds _) -> ()
  | Ok () | Error _ -> Alcotest.fail "expected bounds fault");
  match Eval.run ~step_limit:100 (action "t" (while_ tru (set_msg "X" (int 1)))) st with
  | Error Eval.Step_limit_exceeded -> ()
  | Ok () | Error _ -> Alcotest.fail "expected step fault"

let test_eval_matches_paper_function () =
  (* PIAS through the evaluator agrees with the reference model. *)
  let st = Eval.State.create () in
  Eval.State.set_array st Ast.Global "Thresholds" [| 10_000L; 1_000_000L |];
  Eval.State.set_field st Ast.Message "Size" 50_000L;
  Eval.State.set_field st Ast.Packet "Size" 1058L;
  (match Eval.run ~now Eden_functions.Pias.action st with
  | Ok () -> ()
  | Error e -> Alcotest.failf "eval failed: %s" (Eval.error_to_string e));
  let expected =
    Eden_functions.Pias.priority_for ~thresholds:[| 10_000L; 1_000_000L |] ~size:51_058L
  in
  Alcotest.(check int64) "pias priority" (Int64.of_int expected)
    (Eval.State.field st Ast.Packet "Priority")

(* ------------------------------------------------------------------ *)
(* Differential property: eval vs compile+interpret *)

(* Random programs over: packet.Size (ro), packet.Priority (rw),
   msg.A/msg.B (rw), global.C (rw), global array Tbl (rw, length 4). *)
let gen_program =
  let open QCheck.Gen in
  let lit = map (fun v -> Ast.Int (Int64.of_int (v - 500))) (int_range 0 1000) in
  let scalar_reads =
    [ Ast.Field (Ast.Packet, "Size"); Ast.Field (Ast.Message, "A");
      Ast.Field (Ast.Message, "B"); Ast.Field (Ast.Global, "C") ]
  in
  let rec int_expr n =
    if n <= 0 then oneof [ lit; oneofl scalar_reads ]
    else
      frequency
        [
          (2, lit);
          (2, oneofl scalar_reads);
          ( 4,
            let* op =
              oneofl
                [ Ast.Add; Ast.Sub; Ast.Mul; Ast.Div; Ast.Rem; Ast.Band; Ast.Bor;
                  Ast.Bxor; Ast.Shl; Ast.Shr ]
            in
            let* a = int_expr (n / 2) in
            let* b = int_expr (n / 2) in
            return (Ast.Binop (op, a, b)) );
          (1, map (fun e -> Ast.Unop (Ast.Neg, e)) (int_expr (n - 1)));
          ( 1,
            let* i = int_expr (n / 2) in
            return (Ast.Arr_get (Ast.Global, "Tbl", Ast.Binop (Ast.Rem, i, Ast.Int 4L))) );
          ( 1,
            let* a = int_expr (n / 2) in
            let* b = int_expr (n / 2) in
            return (Ast.Hash (a, b)) );
          ( 1,
            let* c = cond (n / 2) in
            let* a = int_expr (n / 2) in
            let* b = int_expr (n / 2) in
            return (Ast.If (c, a, b)) );
        ]
  and cond n =
    let* op = oneofl [ Ast.Lt; Ast.Le; Ast.Eq; Ast.Ne; Ast.Gt; Ast.Ge ] in
    let* a = int_expr (n / 2) in
    let* b = int_expr (n / 2) in
    return (Ast.Binop (op, a, b))
  in
  let stmt_leaf n =
    oneof
      [
        map (fun e -> Ast.Set_field (Ast.Packet, "Priority", e)) (int_expr n);
        map (fun e -> Ast.Set_field (Ast.Message, "A", e)) (int_expr n);
        map (fun e -> Ast.Set_field (Ast.Message, "B", e)) (int_expr n);
        map (fun e -> Ast.Set_field (Ast.Global, "C", e)) (int_expr n);
        ( let* i = int_expr (n / 2) in
          let* v = int_expr (n / 2) in
          return
            (Ast.Arr_set (Ast.Global, "Tbl", Ast.Binop (Ast.Rem, i, Ast.Int 4L), v)) );
      ]
  in
  let rec stmt n =
    if n <= 0 then stmt_leaf 0
    else
      frequency
        [
          (4, stmt_leaf n);
          ( 2,
            let* c = cond (n / 2) in
            let* a = stmt (n / 2) in
            let* b = stmt (n / 2) in
            return (Ast.If (c, a, b)) );
          ( 2,
            let* a = stmt (n / 2) in
            let* b = stmt (n / 2) in
            return (Ast.Seq (a, b)) );
          ( 1,
            let* rhs = int_expr (n / 2) in
            let* body = stmt (n / 2) in
            return (Ast.Let { name = "v"; mutable_ = false; rhs; body }) );
        ]
  in
  sized (fun n -> stmt (min n 24))

let schema =
  Schema.with_standard_packet
    ~message:
      [ Schema.field "A" ~access:Schema.Read_write; Schema.field "B" ~access:Schema.Read_write ]
    ~global:[ Schema.field "C" ~access:Schema.Read_write ]
    ~global_arrays:[ Schema.array "Tbl" ~access:Schema.Read_write ]
    ()

(* Negative Rem indices still fault on bounds in both engines: the AST
   wraps indices with [i % 4] which can be negative — both engines treat
   that as out of bounds, which is exactly the agreement we test. *)
let run_differential body =
  let action = { Ast.af_name = "diff"; af_funs = []; af_body = body } in
  match Compile.compile schema action with
  | Error e -> QCheck.Test.fail_reportf "compile failed: %s" (Compile.error_to_string e)
  | Ok program ->
    (* Shared initial values. *)
    let tbl0 = [| 11L; 22L; 33L; 44L |] in
    let init_scalar ent name =
      match (ent, name) with
      | P.Packet, "Size" -> 1058L
      | P.Message, "A" -> 7L
      | P.Message, "B" -> -3L
      | P.Global, "C" -> 1000L
      | _ -> 0L
    in
    (* Reference evaluation. *)
    let st = Eval.State.create () in
    Eval.State.set_field st Ast.Packet "Size" 1058L;
    Eval.State.set_field st Ast.Message "A" 7L;
    Eval.State.set_field st Ast.Message "B" (-3L);
    Eval.State.set_field st Ast.Global "C" 1000L;
    Eval.State.set_array st Ast.Global "Tbl" (Array.copy tbl0);
    let eval_result = Eval.run ~now ~rng:(Eden_base.Rng.create 5L) action st in
    (* Compiled execution. *)
    let scalars =
      Array.map (fun (s : P.scalar_slot) -> init_scalar s.P.s_entity s.P.s_name)
        program.P.scalar_slots
    in
    let arrays =
      Array.map
        (fun (a : P.array_slot) ->
          match a.P.a_name with "Tbl" -> Array.copy tbl0 | _ -> [||])
        program.P.array_slots
    in
    let env = Interp.make_env program ~scalars ~arrays in
    let interp_result = Interp.run program ~env ~now ~rng:(Eden_base.Rng.create 5L) in
    (match (eval_result, interp_result) with
    | Error _, Error _ -> true (* both faulted: agreement *)
    | Ok (), Ok _ ->
      (* Compare every scalar slot and the array. *)
      let scalars_agree = ref true in
      Array.iteri
        (fun i (s : P.scalar_slot) ->
          let expected = Eval.State.field st (Ast.entity_of_program s.P.s_entity) s.P.s_name in
          (* Read-only slots are not written back by the interpreter. *)
          let got = if s.P.s_access = P.Read_write then env.Interp.scalars.(i) else expected in
          if not (Int64.equal expected got) then scalars_agree := false)
        program.P.scalar_slots;
      let arrays_agree = ref true in
      Array.iteri
        (fun i (a : P.array_slot) ->
          if a.P.a_name = "Tbl" && env.Interp.arrays.(i) <> Eval.State.array st Ast.Global "Tbl"
          then arrays_agree := false)
        program.P.array_slots;
      if not (!scalars_agree && !arrays_agree) then
        QCheck.Test.fail_reportf "state divergence on:\n%s"
          (Pretty.action_to_string action)
      else true
    | Ok (), Error (f, _) ->
      QCheck.Test.fail_reportf "interp faulted (%s), eval did not:\n%s"
        (Eden_bytecode.Interp.fault_to_string f)
        (Pretty.action_to_string action)
    | Error e, Ok _ ->
      QCheck.Test.fail_reportf "eval faulted (%s), interp did not:\n%s"
        (Eval.error_to_string e)
        (Pretty.action_to_string action))

let prop_differential =
  QCheck.Test.make ~name:"eval and compiled bytecode agree" ~count:2000
    (QCheck.make gen_program) run_differential

let prop_differential_via_parser =
  (* Full pipeline: AST -> text -> parse -> compile vs direct eval. *)
  QCheck.Test.make ~name:"eval agrees across the parser round-trip" ~count:300
    (QCheck.make gen_program) (fun body ->
      let action = { Ast.af_name = "diff"; af_funs = []; af_body = body } in
      let src = Pretty.action_to_string action in
      match Parser.parse_action ~name:"diff" src with
      | Error e -> QCheck.Test.fail_reportf "parse failed: %s" (Parser.error_to_string e)
      | Ok parsed -> run_differential parsed.Ast.af_body)

(* The verifier's static stack bound is sound: on every run of a compiled
   random program, the observed peak operand-stack depth stays within it. *)
let prop_verifier_stack_bound_sound =
  QCheck.Test.make ~name:"verifier stack bound is sound" ~count:500
    (QCheck.make gen_program) (fun body ->
      let action = { Ast.af_name = "vs"; af_funs = []; af_body = body } in
      match Compile.compile schema action with
      | Error e -> QCheck.Test.fail_reportf "compile failed: %s" (Compile.error_to_string e)
      | Ok program -> (
        let bound =
          match Eden_bytecode.Verifier.max_stack_depth program with
          | Ok d -> d
          | Error e ->
            QCheck.Test.fail_reportf "verifier rejected compiled code: %s"
              (Eden_bytecode.Verifier.error_to_string e)
        in
        let scalars = Array.map (fun _ -> 3L) program.P.scalar_slots in
        let arrays =
          Array.map
            (fun (a : P.array_slot) ->
              match a.P.a_name with "Tbl" -> [| 1L; 2L; 3L; 4L |] | _ -> [||])
            program.P.array_slots
        in
        let env = Interp.make_env program ~scalars ~arrays in
        match Interp.run program ~env ~now ~rng:(Eden_base.Rng.create 9L) with
        | Ok stats -> stats.Interp.max_stack <= bound
        | Error (_, stats) -> stats.Interp.max_stack <= bound))

let qcheck t = QCheck_alcotest.to_alcotest t

let () =
  Alcotest.run "eden_eval"
    [
      ( "eval",
        [
          Alcotest.test_case "basics" `Quick test_eval_basics;
          Alcotest.test_case "state effects" `Quick test_eval_state_effects;
          Alcotest.test_case "faults" `Quick test_eval_faults;
          Alcotest.test_case "pias" `Quick test_eval_matches_paper_function;
        ] );
      ( "differential",
        [
          qcheck prop_differential;
          qcheck prop_differential_via_parser;
          qcheck prop_verifier_stack_bound_sound;
        ] );
    ]
