(* Small-scale smoke tests of the figure-reproduction experiments: each
   must run end to end and reproduce the paper's qualitative shape. *)

module Time = Eden_base.Time
open Eden_experiments

let check_bool = Alcotest.(check bool)

(* Tiny parameter sets keep these below a couple of seconds each. *)

let fig9_params =
  { Fig9.default_params with runs = 2; duration = Time.ms 120; link_rate_bps = 10e9 }

let test_fig9_priorities_beat_baseline () =
  let baseline = Fig9.run_config fig9_params Fig9.Baseline Fig9.Native in
  let pias = Fig9.run_config fig9_params Fig9.Pias Fig9.Eden in
  let sff = Fig9.run_config fig9_params Fig9.Sff Fig9.Eden in
  check_bool
    (Printf.sprintf "pias small (%.0f) < baseline small (%.0f)" pias.Fig9.small.Fig9.avg_us
       baseline.Fig9.small.Fig9.avg_us)
    true
    (pias.Fig9.small.Fig9.avg_us < baseline.Fig9.small.Fig9.avg_us);
  check_bool "sff small < baseline small" true
    (sff.Fig9.small.Fig9.avg_us < baseline.Fig9.small.Fig9.avg_us);
  check_bool "pias intermediate < baseline intermediate" true
    (pias.Fig9.intermediate.Fig9.avg_us < baseline.Fig9.intermediate.Fig9.avg_us);
  check_bool "buckets populated" true
    (baseline.Fig9.small.Fig9.count > 5 && baseline.Fig9.intermediate.Fig9.count > 5)

let test_fig9_eden_close_to_native () =
  let native = Fig9.run_config fig9_params Fig9.Pias Fig9.Native in
  let eden = Fig9.run_config fig9_params Fig9.Pias Fig9.Eden in
  (* Same order of magnitude: interpretation must not change the story. *)
  let ratio = eden.Fig9.small.Fig9.avg_us /. Float.max 1.0 native.Fig9.small.Fig9.avg_us in
  check_bool (Printf.sprintf "ratio %.2f in [0.3, 3]" ratio) true (ratio > 0.3 && ratio < 3.0)

let fig10_params = { Fig10.default_params with runs = 2; duration = Time.ms 100 }

let test_fig10_wcmp_beats_ecmp () =
  let ecmp = Fig10.run_config fig10_params Fig10.Ecmp Fig10.Eden in
  let wcmp = Fig10.run_config fig10_params Fig10.Wcmp Fig10.Eden in
  check_bool
    (Printf.sprintf "wcmp %.0f > 2x ecmp %.0f" wcmp.Fig10.goodput_mbps ecmp.Fig10.goodput_mbps)
    true
    (wcmp.Fig10.goodput_mbps > 2.0 *. ecmp.Fig10.goodput_mbps);
  (* Reordering keeps WCMP below the 11 Gbps min-cut. *)
  check_bool "wcmp below min-cut" true (wcmp.Fig10.goodput_mbps < 11_000.0);
  check_bool "ecmp dominated by slow path" true (ecmp.Fig10.goodput_mbps < 4_000.0)

let fig11_params = { Fig11.default_params with duration = Time.ms 250; warmup = Time.ms 50 }

let test_fig11_rate_control_restores_balance () =
  let isolated = Fig11.run_mode fig11_params Fig11.Isolated in
  let simultaneous = Fig11.run_mode fig11_params Fig11.Simultaneous in
  let controlled = Fig11.run_mode fig11_params ~engine:Fig11.Eden Fig11.Rate_controlled in
  check_bool "isolated read ~ line rate" true (isolated.Fig11.read_mbps > 100.0);
  check_bool "isolated write ~ line rate" true (isolated.Fig11.write_mbps > 100.0);
  (* Competing writes collapse (paper: -72%). *)
  check_bool
    (Printf.sprintf "writes collapse: %.0f -> %.0f" isolated.Fig11.write_mbps
       simultaneous.Fig11.write_mbps)
    true
    (simultaneous.Fig11.write_mbps < 0.5 *. isolated.Fig11.write_mbps);
  (* Rate control roughly equalizes. *)
  let r = controlled.Fig11.read_mbps and w = controlled.Fig11.write_mbps in
  check_bool (Printf.sprintf "balanced %.0f vs %.0f" r w) true
    (Float.abs (r -. w) < 0.3 *. Float.max r w);
  check_bool "each near half capacity" true (w > 40.0 && r > 40.0)

let test_fig12_overheads_reasonable () =
  let params = { Fig12.default_params with duration = Time.ms 60 } in
  let out = Fig12.run ~params () in
  check_bool "packets flowed" true (out.Fig12.packets > 10_000);
  check_bool "windows sampled" true (out.Fig12.windows >= 4);
  check_bool
    (Printf.sprintf "total overhead %.1f%% in (0, 30)" out.Fig12.total_avg_pct)
    true
    (out.Fig12.total_avg_pct > 0.0 && out.Fig12.total_avg_pct < 30.0);
  (* The interpreter dominates API and enclave mechanics, as in Fig. 12. *)
  let find c = List.find (fun r -> r.Fig12.component = c) out.Fig12.results in
  check_bool "interpreter is the largest component" true
    ((find Fig12.Interpreter).Fig12.avg_pct >= (find Fig12.Api).Fig12.avg_pct)

let test_footprint_matches_paper_budget () =
  let entries = Footprint.run () in
  Alcotest.(check int) "all seven paper functions" 7 (List.length entries);
  List.iter
    (fun e ->
      (* §5.4: operand stacks on the order of 64 B, heaps ~256 B. *)
      check_bool (e.Footprint.name ^ " stack <= 64B") true (e.Footprint.stack_bytes <= 64);
      check_bool (e.Footprint.name ^ " heap <= 256 cells") true (e.Footprint.heap_cells <= 256);
      check_bool (e.Footprint.name ^ " steps < 200") true (e.Footprint.steps_per_packet < 200))
    entries

let test_listings_render () =
  let listings = Listings.all () in
  check_bool "seven listings" true (List.length listings = 7);
  List.iter
    (fun (title, body) ->
      check_bool (title ^ " non-empty") true (String.length body > 100);
      let contains sub s =
        let n = String.length sub in
        let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
        go 0
      in
      check_bool (title ^ " has compiled section") true (contains "-- compiled --" body))
    listings

let () =
  Alcotest.run "eden_experiments"
    [
      ( "fig9",
        [
          Alcotest.test_case "priorities beat baseline" `Slow
            test_fig9_priorities_beat_baseline;
          Alcotest.test_case "eden close to native" `Slow test_fig9_eden_close_to_native;
        ] );
      ("fig10", [ Alcotest.test_case "wcmp beats ecmp" `Slow test_fig10_wcmp_beats_ecmp ]);
      ( "fig11",
        [ Alcotest.test_case "rate control balances" `Slow test_fig11_rate_control_restores_balance ] );
      ("fig12", [ Alcotest.test_case "overheads" `Slow test_fig12_overheads_reasonable ]);
      ("footprint", [ Alcotest.test_case "paper budget" `Quick test_footprint_matches_paper_budget ]);
      ("listings", [ Alcotest.test_case "render" `Quick test_listings_render ]);
    ]
