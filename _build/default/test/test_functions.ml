(* Tests for the network-function library and the controller. *)

module Enclave = Eden_enclave.Enclave
module Addr = Eden_base.Addr
module Packet = Eden_base.Packet
module Metadata = Eden_base.Metadata
module Time = Eden_base.Time
module Rng = Eden_base.Rng
open Eden_functions
module Topology = Eden_controller.Topology
module Controller = Eden_controller.Controller
module Policy = Eden_controller.Policy

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let get_ok = function
  | Ok v -> v
  | Error msg -> Alcotest.failf "unexpected error: %s" msg

let flow ?(src = 1) ?(src_port = 1000) ?(dst = 2) ?(dst_port = 80) () =
  Addr.five_tuple ~src:(Addr.endpoint src src_port) ~dst:(Addr.endpoint dst dst_port)
    ~proto:Addr.Tcp

let data_packet ?(id = 0L) ?(payload = 1000) ?(metadata = Metadata.empty) f =
  Packet.make ~id ~flow:f ~kind:Packet.Data ~payload ~metadata ()

(* ------------------------------------------------------------------ *)
(* WCMP *)

let test_wcmp_weighted_split () =
  let e = Enclave.create ~host:1 () in
  (* Labels 101 (weight 909) and 102 (weight 91): the paper's 10:1. *)
  get_ok (Wcmp.install e ~matrix:[| 101L; 909L; 102L; 91L |]);
  let counts = Hashtbl.create 4 in
  let f = flow () in
  for i = 0 to 9_999 do
    let pkt = data_packet ~id:(Int64.of_int i) f in
    ignore (Enclave.process e ~now:(Time.us i) pkt);
    let label = Option.value ~default:(-1) pkt.Packet.route_label in
    Hashtbl.replace counts label (1 + Option.value ~default:0 (Hashtbl.find_opt counts label))
  done;
  let n101 = Option.value ~default:0 (Hashtbl.find_opt counts 101) in
  let n102 = Option.value ~default:0 (Hashtbl.find_opt counts 102) in
  check_int "all labelled" 10_000 (n101 + n102);
  (* Expect ~9090 vs ~910; allow slack. *)
  check_bool (Printf.sprintf "split %d:%d near 10:1" n101 n102) true
    (n101 > 8_800 && n101 < 9_350)

let test_ecmp_equal_split () =
  let e = Enclave.create ~host:1 () in
  get_ok (Wcmp.install e ~matrix:(Wcmp.ecmp_matrix ~labels:[ 201; 202 ]));
  let c = Array.make 2 0 in
  let f = flow () in
  for i = 0 to 3_999 do
    let pkt = data_packet ~id:(Int64.of_int i) f in
    ignore (Enclave.process e ~now:(Time.us i) pkt);
    match pkt.Packet.route_label with
    | Some 201 -> c.(0) <- c.(0) + 1
    | Some 202 -> c.(1) <- c.(1) + 1
    | Some _ | None -> ()
  done;
  check_int "all labelled" 4_000 (c.(0) + c.(1));
  check_bool "roughly equal" true (abs (c.(0) - c.(1)) < 400)

let test_message_wcmp_stable_per_message () =
  let e = Enclave.create ~host:1 () in
  get_ok (Wcmp.install ~variant:`Message e ~matrix:[| 101L; 500L; 102L; 500L |]);
  (* Two app messages, ten packets each: labels constant within each. *)
  let labels_of msg_id =
    let md = Metadata.with_msg_id msg_id Metadata.empty in
    let md = Metadata.add_class (Eden_base.Class_name.v ~stage:"s" ~ruleset:"r" ~name:"M") md in
    List.init 10 (fun i ->
        let pkt = data_packet ~id:(Int64.of_int i) ~metadata:md (flow ()) in
        ignore (Enclave.process e ~now:(Time.us i) pkt);
        pkt.Packet.route_label)
  in
  let uniq l = List.sort_uniq compare l in
  let l1 = labels_of 1L in
  check_int "message 1 single label" 1 (List.length (uniq l1));
  (* Across many messages both labels appear. *)
  let firsts = List.init 50 (fun i -> List.hd (labels_of (Int64.of_int (i + 10)))) in
  check_bool "both paths used across messages" true (List.length (uniq firsts) = 2)

let test_wcmp_native_agrees_with_interpreted_distribution () =
  let run variant seed =
    let e = Enclave.create ~seed ~host:1 () in
    get_ok (Wcmp.install ~variant e ~matrix:[| 1L; 750L; 2L; 250L |]);
    let hits = ref 0 in
    let f = flow () in
    for i = 0 to 3_999 do
      let pkt = data_packet ~id:(Int64.of_int i) f in
      ignore (Enclave.process e ~now:(Time.us i) pkt);
      if pkt.Packet.route_label = Some 1 then incr hits
    done;
    float_of_int !hits /. 4000.0
  in
  let i = run `Packet 11L and n = run `Native 12L in
  check_bool (Printf.sprintf "interp %.3f vs native %.3f" i n) true (Float.abs (i -. n) < 0.05)

(* ------------------------------------------------------------------ *)
(* PIAS *)

let thresholds = [| 10_000L; 1_000_000L |]

let test_pias_reference_model () =
  check_int "small" 7 (Pias.priority_for ~thresholds ~size:500L);
  check_int "boundary" 7 (Pias.priority_for ~thresholds ~size:10_000L);
  check_int "mid" 6 (Pias.priority_for ~thresholds ~size:10_001L);
  check_int "large" 5 (Pias.priority_for ~thresholds ~size:2_000_000L)

let pias_enclave variant =
  let e = Enclave.create ~host:1 () in
  get_ok (Pias.install ~variant e ~thresholds);
  e

let test_pias_demotion_sequence () =
  List.iter
    (fun variant ->
      let e = pias_enclave variant in
      let f = flow () in
      let seen = ref [] in
      (* 1200 packets * 1058B ≈ 1.27 MB total: passes both thresholds. *)
      for i = 0 to 1199 do
        let pkt = data_packet ~id:(Int64.of_int i) f in
        ignore (Enclave.process e ~now:(Time.us i) pkt);
        if not (List.mem pkt.Packet.priority !seen) then seen := pkt.Packet.priority :: !seen
      done;
      Alcotest.(check (list int)) "priorities visited in order" [ 5; 6; 7 ] !seen)
    [ `Interpreted; `Native ]

let test_pias_native_interpreted_equivalent () =
  let ei = pias_enclave `Interpreted and en = pias_enclave `Native in
  let f = flow () in
  for i = 0 to 499 do
    let p1 = data_packet ~id:(Int64.of_int i) ~payload:((i mod 5) * 700) f in
    let p2 = data_packet ~id:(Int64.of_int i) ~payload:((i mod 5) * 700) f in
    ignore (Enclave.process ei ~now:(Time.us i) p1);
    ignore (Enclave.process en ~now:(Time.us i) p2);
    check_int (Printf.sprintf "packet %d" i) p2.Packet.priority p1.Packet.priority
  done

let prop_pias_program_matches_reference =
  QCheck.Test.make ~name:"pias program = reference model" ~count:100
    QCheck.(int_range 1 3_000_000)
    (fun total ->
      let e = pias_enclave `Interpreted in
      let f = flow () in
      (* Send [total] bytes in one 1000-byte-payload packet stream and
         check the last priority equals the reference on accumulated
         wire bytes. *)
      let pkt = ref None in
      let sent = ref 0 in
      let i = ref 0 in
      while !sent < total do
        let payload = min 1000 (total - !sent) in
        let p = data_packet ~id:(Int64.of_int !i) ~payload f in
        ignore (Enclave.process e ~now:(Time.us !i) p);
        sent := !sent + payload;
        incr i;
        pkt := Some p
      done;
      let accumulated = Int64.of_int (!sent + (!i * 58)) in
      match !pkt with
      | None -> false
      | Some p -> p.Packet.priority = Pias.priority_for ~thresholds ~size:accumulated)

(* ------------------------------------------------------------------ *)
(* SFF *)

let test_sff_priority_from_metadata () =
  List.iter
    (fun variant ->
      let e = Enclave.create ~host:1 () in
      get_ok (Sff.install ~variant e ~thresholds);
      let check_size size expected =
        let md =
          Metadata.with_msg_id (Int64.of_int size) (Sff.metadata_for ~size)
        in
        let pkt = data_packet ~metadata:md (flow ~src_port:(size mod 60_000) ()) in
        ignore (Enclave.process e ~now:Time.zero pkt);
        check_int (Printf.sprintf "size %d" size) expected pkt.Packet.priority
      in
      check_size 5_000 7;
      check_size 500_000 6;
      check_size 5_000_000 5)
    [ `Interpreted; `Native ]

let test_sff_constant_priority_over_flow () =
  let e = Enclave.create ~host:1 () in
  get_ok (Sff.install e ~thresholds);
  let md = Metadata.with_msg_id 1L (Sff.metadata_for ~size:500_000) in
  let f = flow () in
  for i = 0 to 399 do
    let pkt = data_packet ~id:(Int64.of_int i) ~metadata:md f in
    ignore (Enclave.process e ~now:(Time.us i) pkt);
    check_int "stays 6" 6 pkt.Packet.priority
  done

let test_sff_no_metadata_untouched () =
  let e = Enclave.create ~host:1 () in
  get_ok (Sff.install e ~thresholds);
  let pkt = data_packet (flow ()) in
  ignore (Enclave.process e ~now:Time.zero pkt);
  check_int "no hint, no change" 0 pkt.Packet.priority

(* ------------------------------------------------------------------ *)
(* Pulsar *)

let storage_md ~op ~tenant ~opsize =
  let stage = Eden_stage.Builtin.storage () in
  ignore
    (get_ok
       (Eden_stage.Stage.Api.create_stage_rule stage ~ruleset:"ops" ~classifier:[]
          ~class_name:"IO" ~metadata_fields:[ "operation"; "msg_size"; "tenant" ]));
  Eden_stage.Stage.classify stage
    (Eden_stage.Builtin.storage_descriptor ~op ~tenant ~size:opsize)

let test_pulsar_read_charged_by_op_size () =
  List.iter
    (fun variant ->
      let e = Enclave.create ~host:1 () in
      get_ok (Pulsar.install ~variant e ~queue_map:[| 0; 1 |]);
      let md = storage_md ~op:`Read ~tenant:1 ~opsize:65536 in
      let pkt = data_packet ~payload:198 ~metadata:md (flow ()) in
      (match Enclave.process e ~now:Time.zero pkt with
      | Enclave.Forward { queue = Some 1; charge = 65536 } -> ()
      | Enclave.Forward { queue; charge } ->
        Alcotest.failf "read: queue=%s charge=%d"
          (match queue with Some q -> string_of_int q | None -> "-")
          charge
      | Enclave.Dropped _ -> Alcotest.fail "dropped");
      let mdw = storage_md ~op:`Write ~tenant:0 ~opsize:65536 in
      let pktw = data_packet ~payload:1400 ~metadata:mdw (flow ~src_port:2000 ()) in
      match Enclave.process e ~now:Time.zero pktw with
      | Enclave.Forward { queue = Some 0; charge } ->
        check_int "write charged by wire size" (Packet.wire_size pktw) charge
      | Enclave.Forward _ -> Alcotest.fail "write: wrong queue"
      | Enclave.Dropped _ -> Alcotest.fail "dropped")
    [ `Interpreted; `Native ]

let test_pulsar_ignores_non_storage_traffic () =
  let e = Enclave.create ~host:1 () in
  get_ok (Pulsar.install e ~queue_map:[| 0 |]);
  let pkt = data_packet (flow ()) in
  match Enclave.process e ~now:Time.zero pkt with
  | Enclave.Forward { queue = None; _ } -> ()
  | Enclave.Forward _ -> Alcotest.fail "should not be steered"
  | Enclave.Dropped _ -> Alcotest.fail "dropped"

(* ------------------------------------------------------------------ *)
(* Port knocking *)

let knock_packet ~src ~dst_port i =
  data_packet ~id:(Int64.of_int i) ~payload:10 (flow ~src ~dst_port ~src_port:(4000 + i) ())

let test_port_knocking_sequence () =
  List.iter
    (fun variant ->
      let e = Enclave.create ~host:9 () in
      get_ok
        (Port_knocking.install ~variant e ~knocks:[ 1111; 2222; 3333 ] ~protected_port:22
           ~max_hosts:16);
      let send ~src ~dst_port i =
        Enclave.process e ~now:(Time.us i) (knock_packet ~src ~dst_port i)
      in
      (* Protected before knocking: dropped. *)
      (match send ~src:3 ~dst_port:22 0 with
      | Enclave.Dropped _ -> ()
      | Enclave.Forward _ -> Alcotest.fail "should be blocked");
      (* Knock the right sequence. *)
      ignore (send ~src:3 ~dst_port:1111 1);
      ignore (send ~src:3 ~dst_port:2222 2);
      ignore (send ~src:3 ~dst_port:3333 3);
      check_bool "unlocked state" true
        (Port_knocking.knock_state e ~src:3 () = Some 3L);
      (match send ~src:3 ~dst_port:22 4 with
      | Enclave.Forward _ -> ()
      | Enclave.Dropped _ -> Alcotest.fail "should be open after knocks");
      (* Another source remains blocked. *)
      match send ~src:4 ~dst_port:22 5 with
      | Enclave.Dropped _ -> ()
      | Enclave.Forward _ -> Alcotest.fail "per-source state leaked")
    [ `Interpreted; `Native ]

let test_port_knocking_wrong_knock_resets () =
  let e = Enclave.create ~host:9 () in
  get_ok
    (Port_knocking.install e ~knocks:[ 1111; 2222; 3333 ] ~protected_port:22 ~max_hosts:8);
  let send ~dst_port i =
    ignore (Enclave.process e ~now:(Time.us i) (knock_packet ~src:3 ~dst_port i))
  in
  send ~dst_port:1111 0;
  send ~dst_port:2222 1;
  send ~dst_port:1111 2;
  (* wrong: resets *)
  check_bool "reset" true (Port_knocking.knock_state e ~src:3 () = Some 0L);
  match Enclave.process e ~now:(Time.us 3) (knock_packet ~src:3 ~dst_port:22 3) with
  | Enclave.Dropped _ -> ()
  | Enclave.Forward _ -> Alcotest.fail "still blocked after reset"

let test_port_knocking_other_traffic_unaffected () =
  let e = Enclave.create ~host:9 () in
  get_ok
    (Port_knocking.install e ~knocks:[ 1111 ] ~protected_port:22 ~max_hosts:8);
  ignore (Enclave.process e ~now:Time.zero (knock_packet ~src:3 ~dst_port:80 0));
  check_bool "ordinary traffic does not disturb state" true
    (Port_knocking.knock_state e ~src:3 () = Some 0L);
  match Enclave.process e ~now:(Time.us 1) (knock_packet ~src:3 ~dst_port:80 1) with
  | Enclave.Forward _ -> ()
  | Enclave.Dropped _ -> Alcotest.fail "ordinary traffic dropped"

(* ------------------------------------------------------------------ *)
(* Replica selection *)

let memcached_md key =
  let stage = Eden_stage.Builtin.memcached () in
  ignore
    (get_ok
       (Eden_stage.Stage.Api.create_stage_rule stage ~ruleset:"r1" ~classifier:[]
          ~class_name:"GET" ~metadata_fields:[ "key"; "key_hash"; "msg_size" ]));
  Eden_stage.Stage.classify stage
    (Eden_stage.Builtin.memcached_descriptor ~op:`Get ~key ~size:100)

let test_replica_select_deterministic_per_key () =
  List.iter
    (fun variant ->
      let e = Enclave.create ~host:1 () in
      get_ok (Replica_select.install ~variant e ~replica_labels:[| 301; 302; 303 |]);
      let label_for key =
        let pkt = data_packet ~metadata:(memcached_md key) (flow ()) in
        ignore (Enclave.process e ~now:Time.zero pkt);
        pkt.Packet.route_label
      in
      check_bool "same key same replica" true (label_for "user:17" = label_for "user:17");
      let labels = List.sort_uniq compare (List.map label_for
        [ "a"; "b"; "c"; "d"; "e"; "f"; "g"; "h"; "i"; "j"; "k"; "l" ]) in
      check_bool "multiple replicas used" true (List.length labels >= 2))
    [ `Interpreted; `Native ]

let test_replica_select_skips_other_traffic () =
  let e = Enclave.create ~host:1 () in
  get_ok (Replica_select.install e ~replica_labels:[| 301; 302 |]);
  let pkt = data_packet (flow ()) in
  ignore (Enclave.process e ~now:Time.zero pkt);
  check_bool "unclassified untouched" true (pkt.Packet.route_label = None)

(* ------------------------------------------------------------------ *)
(* Ananta *)

let test_ananta_per_flow_consistency () =
  List.iter
    (fun variant ->
      let e = Enclave.create ~host:1 () in
      get_ok
        (Ananta.install ~variant e
           ~dips:(Ananta.dip_table ~labels:[ 401; 402; 403 ] ~weights:[ 1; 1; 1 ]));
      (* All packets of one connection keep the same DIP label. *)
      let f1 = flow ~src_port:1000 () in
      let labels =
        List.init 20 (fun i ->
            let pkt = data_packet ~id:(Int64.of_int i) f1 in
            ignore (Enclave.process e ~now:(Time.us i) pkt);
            pkt.Packet.route_label)
      in
      check_int "single dip per flow" 1 (List.length (List.sort_uniq compare labels));
      (* Many connections spread over several DIPs. *)
      let firsts =
        List.init 40 (fun i ->
            let pkt = data_packet (flow ~src_port:(2000 + i) ()) in
            ignore (Enclave.process e ~now:(Time.us (100 + i)) pkt);
            pkt.Packet.route_label)
      in
      check_bool "multiple dips used" true
        (List.length (List.sort_uniq compare firsts) >= 2))
    [ `Interpreted; `Native ]

let test_ananta_weighted () =
  let e = Enclave.create ~host:1 () in
  get_ok
    (Ananta.install e ~dips:(Ananta.dip_table ~labels:[ 401; 402 ] ~weights:[ 9; 1 ]));
  let hits = ref 0 and total = 600 in
  for i = 0 to total - 1 do
    let pkt = data_packet (flow ~src_port:(3000 + i) ()) in
    ignore (Enclave.process e ~now:(Time.us i) pkt);
    if pkt.Packet.route_label = Some 401 then incr hits
  done;
  let frac = float_of_int !hits /. float_of_int total in
  check_bool (Printf.sprintf "9:1 split (%.2f)" frac) true (frac > 0.82 && frac < 0.97)

let test_ananta_flow_close_releases_dip () =
  let e = Enclave.create ~host:1 () in
  get_ok (Ananta.install e ~dips:(Ananta.dip_table ~labels:[ 401; 402 ] ~weights:[ 1; 1 ]));
  let f = flow () in
  let pkt = data_packet f in
  ignore (Enclave.process e ~now:Time.zero pkt);
  Enclave.note_flow_closed e f;
  (* The next "connection" with the same five-tuple re-picks; state was
     dropped (we can only observe that processing still works). *)
  let pkt2 = data_packet ~id:1L f in
  ignore (Enclave.process e ~now:(Time.us 1) pkt2);
  check_bool "still steered" true (pkt2.Packet.route_label <> None)

(* ------------------------------------------------------------------ *)
(* QJump *)

let test_qjump_levels () =
  List.iter
    (fun variant ->
      let e = Enclave.create ~host:1 () in
      get_ok (Qjump.install ~variant e ~levels:4);
      let send level =
        let md =
          Metadata.with_msg_id (Int64.of_int (100 + level)) (Qjump.metadata_for ~level)
        in
        let pkt = data_packet ~metadata:md (flow ~src_port:(4000 + level) ()) in
        let d = Enclave.process e ~now:Time.zero pkt in
        (pkt.Packet.priority, d)
      in
      (match send 3 with
      | 3, Enclave.Forward { queue = Some 3; _ } -> ()
      | p, _ -> Alcotest.failf "level 3: priority %d" p);
      (* Levels above the maximum clamp. *)
      (match send 9 with
      | 4, Enclave.Forward { queue = Some 4; _ } -> ()
      | p, _ -> Alcotest.failf "clamped level: priority %d" p);
      (* Unlevelled traffic untouched. *)
      let pkt = data_packet (flow ~src_port:4999 ()) in
      match Enclave.process e ~now:Time.zero pkt with
      | Enclave.Forward { queue = None; _ } -> check_int "prio" 0 pkt.Packet.priority
      | _ -> Alcotest.fail "unlevelled traffic steered")
    [ `Interpreted; `Native ]

let test_qjump_rates () =
  let r l = Qjump.rate_for_level ~link_rate_bps:8e9 ~levels:4 ~level:l in
  check_bool "level 1 full" true (Float.abs (r 1 -. 8e9) < 1.0);
  check_bool "level 2 half" true (Float.abs (r 2 -. 4e9) < 1.0);
  check_bool "level 4 eighth" true (Float.abs (r 4 -. 1e9) < 1.0)

(* ------------------------------------------------------------------ *)
(* Catalog (Table 1) *)

let test_catalog_shape () =
  check_int "16 rows" 16 (List.length Catalog.entries);
  check_bool "several implemented" true (List.length Catalog.implemented_entries >= 7);
  let table = Catalog.to_table () in
  check_int "header + rows" 17 (List.length table);
  List.iter (fun row -> check_int "8 columns" 8 (List.length row)) table;
  (* Every implemented entry is Eden-out-of-the-box. *)
  List.iter
    (fun e -> check_bool "implemented => out of box" true e.Catalog.eden_out_of_box)
    Catalog.implemented_entries

(* ------------------------------------------------------------------ *)
(* Controller *)

let fig1_topology () =
  (* The paper's Fig. 1: A reaches B via a 10 G path and a 1 G path. *)
  let topo = Topology.create () in
  Topology.add_link topo "A" "C" ~capacity_bps:10e9;
  Topology.add_link topo "C" "B" ~capacity_bps:10e9;
  Topology.add_link topo "A" "D" ~capacity_bps:1e9;
  Topology.add_link topo "D" "B" ~capacity_bps:1e9;
  topo

let test_topology_paths () =
  let topo = fig1_topology () in
  let paths = Topology.simple_paths topo ~src:"A" ~dst:"B" in
  check_int "two paths" 2 (List.length paths);
  check_bool "via C" true (List.mem [ "A"; "C"; "B" ] paths);
  check_bool "via D" true (List.mem [ "A"; "D"; "B" ] paths)

let test_wcmp_weights_ten_to_one () =
  let topo = fig1_topology () in
  let weights = Topology.wcmp_weights topo ~src:"A" ~dst:"B" in
  let w_of p = List.assoc p weights in
  check_bool "10/11" true (Float.abs (w_of [ "A"; "C"; "B" ] -. (10.0 /. 11.0)) < 1e-9);
  check_bool "1/11" true (Float.abs (w_of [ "A"; "D"; "B" ] -. (1.0 /. 11.0)) < 1e-9);
  let ecmp = Topology.ecmp_weights topo ~src:"A" ~dst:"B" in
  List.iter (fun (_, w) -> check_bool "equal" true (Float.abs (w -. 0.5) < 1e-9)) ecmp

let test_wcmp_path_matrix_encoding () =
  let ctl = Controller.create ~topology:(fig1_topology ()) () in
  let matrix =
    Controller.wcmp_path_matrix ctl ~src:"A" ~dst:"B"
      ~labels:[ ([ "A"; "C"; "B" ], 101); ([ "A"; "D"; "B" ], 102) ]
  in
  check_int "four entries" 4 (Array.length matrix);
  let weight_of label =
    let found = ref 0L in
    Array.iteri (fun i v -> if i mod 2 = 0 && v = Int64.of_int label then found := matrix.(i + 1)) matrix;
    Int64.to_int !found
  in
  check_bool "10:1 in permille" true
    (weight_of 101 > 890 && weight_of 101 < 920 && weight_of 102 > 80 && weight_of 102 < 100)

let test_pias_thresholds_monotone () =
  let cdf = Eden_workloads.Flowsize.cdf Eden_workloads.Flowsize.web_search in
  let th = Controller.pias_thresholds ~cdf ~levels:8 in
  check_int "7 thresholds" 7 (Array.length th);
  Array.iteri
    (fun i v -> if i > 0 then check_bool "ascending" true (Int64.compare v th.(i - 1) >= 0))
    th;
  check_bool "median-ish threshold below 1MB" true (Int64.compare th.(3) 1_000_000L < 0)

let test_controller_broadcast_and_rollback () =
  let ctl = Controller.create () in
  let e1 = Enclave.create ~host:1 () in
  let e2 = Enclave.create ~host:2 () in
  Controller.register_enclave ctl e1;
  Controller.register_enclave ctl e2;
  let gen0 = Controller.generation ctl in
  get_ok
    (Controller.install_action_everywhere ctl
       {
         Enclave.i_name = "pias";
         i_impl = Enclave.Interpreted (Pias.program ());
         i_msg_sources = [];
       });
  check_bool "both installed" true
    (List.mem "pias" (Enclave.action_names e1) && List.mem "pias" (Enclave.action_names e2));
  check_bool "generation bumped" true (Controller.generation ctl > gen0);
  (* Second install of the same action fails everywhere and rolls back
     nothing new (e1 fails first). *)
  (match
     Controller.install_action_everywhere ctl
       {
         Enclave.i_name = "pias";
         i_impl = Enclave.Interpreted (Pias.program ());
         i_msg_sources = [];
       }
   with
  | Ok () -> Alcotest.fail "expected failure"
  | Error _ -> ());
  get_ok (Controller.set_global_array_everywhere ctl ~action:"pias" "Thresholds" thresholds);
  check_bool "array distributed" true
    (Enclave.get_global_array e2 ~action:"pias" "Thresholds" = Some thresholds
    || Enclave.get_global_array e2 ~action:"pias" "Thresholds"
       = Some (Array.copy thresholds))

let test_controller_rollback_on_partial_failure () =
  let ctl = Controller.create () in
  let e1 = Enclave.create ~host:1 () in
  let e2 = Enclave.create ~host:2 () in
  Controller.register_enclave ctl e1;
  Controller.register_enclave ctl e2;
  (* Pre-install on e2 only, so a broadcast fails there after e1 worked. *)
  get_ok
    (Enclave.install_action e2
       { Enclave.i_name = "wcmp"; i_impl = Enclave.Native Wcmp.native; i_msg_sources = [] });
  (match
     Controller.install_action_everywhere ctl
       { Enclave.i_name = "wcmp"; i_impl = Enclave.Native Wcmp.native; i_msg_sources = [] }
   with
  | Ok () -> Alcotest.fail "expected failure"
  | Error _ -> ());
  check_bool "rolled back on e1" true (not (List.mem "wcmp" (Enclave.action_names e1)))

let test_policy_flow_scheduling () =
  let ctl = Controller.create () in
  let e1 = Enclave.create ~host:1 () in
  let e2 = Enclave.create ~host:2 () in
  Controller.register_enclave ctl e1;
  Controller.register_enclave ctl e2;
  let cdf = Eden_workloads.Flowsize.cdf Eden_workloads.Flowsize.web_search in
  get_ok (Policy.flow_scheduling ctl ~scheme:`Pias ~cdf ());
  check_bool "installed everywhere" true
    (List.mem "pias" (Enclave.action_names e1) && List.mem "pias" (Enclave.action_names e2));
  (* The data plane acts immediately. *)
  let pkt = data_packet ~payload:1000 (flow ()) in
  ignore (Enclave.process e1 ~now:Time.zero pkt);
  check_int "priority applied" 7 pkt.Packet.priority;
  (* Periodic control loop: tighter thresholds demote sooner. *)
  get_ok
    (Policy.update_flow_scheduling_thresholds ctl ~scheme:`Pias
       ~cdf:[ (100.0, 0.0); (200.0, 1.0) ]
       ());
  let pkt2 = data_packet ~payload:1000 (flow ~src_port:2000 ()) in
  ignore (Enclave.process e1 ~now:(Time.us 1) pkt2);
  check_bool "new thresholds in force" true (pkt2.Packet.priority < 7)

let test_policy_rollback () =
  let ctl = Controller.create () in
  let e1 = Enclave.create ~host:1 () in
  let e2 = Enclave.create ~host:2 () in
  (* Pre-install on e2 so the fleet install fails there. *)
  get_ok (Sff.install e2 ~thresholds:[| 1L |]);
  Controller.register_enclave ctl e1;
  Controller.register_enclave ctl e2;
  (match
     Policy.flow_scheduling ctl ~scheme:`Sff
       ~cdf:(Eden_workloads.Flowsize.cdf Eden_workloads.Flowsize.web_search)
       ()
   with
  | Ok () -> Alcotest.fail "expected failure"
  | Error _ -> ());
  check_bool "rolled back on e1" true (not (List.mem "sff" (Enclave.action_names e1)))

let test_policy_wcmp_from_topology () =
  let topo = fig1_topology () in
  let ctl = Controller.create ~topology:topo () in
  let e = Enclave.create ~host:1 () in
  Controller.register_enclave ctl e;
  get_ok
    (Policy.weighted_load_balancing ctl ~src:"A" ~dst:"B"
       ~labels:[ ([ "A"; "C"; "B" ], 101); ([ "A"; "D"; "B" ], 102) ]
       ());
  (* ~10:1 split out of the box. *)
  let hits = ref 0 in
  for i = 0 to 999 do
    let pkt = data_packet ~id:(Int64.of_int i) (flow ()) in
    ignore (Enclave.process e ~now:(Time.us i) pkt);
    if pkt.Packet.route_label = Some 101 then incr hits
  done;
  check_bool (Printf.sprintf "fast path share %d/1000" !hits) true
    (!hits > 850 && !hits < 970)

let test_policy_tenant_qos () =
  let ctl = Controller.create () in
  let e = Enclave.create ~host:1 () in
  Controller.register_enclave ctl e;
  let stage = Eden_stage.Builtin.storage () in
  Controller.register_stage ctl stage;
  get_ok (Policy.tenant_qos ctl ~queue_map:[| 0; 1 |] ());
  (* The stage now classifies READs and the enclave steers them. *)
  let md =
    Eden_stage.Stage.classify stage
      (Eden_stage.Builtin.storage_descriptor ~op:`Read ~tenant:1 ~size:65536)
  in
  let pkt = data_packet ~payload:200 ~metadata:md (flow ()) in
  match Enclave.process e ~now:Time.zero pkt with
  | Enclave.Forward { queue = Some 1; charge = 65536 } -> ()
  | _ -> Alcotest.fail "pulsar not in force"

let test_collect_reports () =
  let ctl = Controller.create () in
  let e = Enclave.create ~host:3 () in
  Controller.register_enclave ctl e;
  get_ok (Policy.flow_scheduling ctl ~scheme:`Pias
            ~cdf:(Eden_workloads.Flowsize.cdf Eden_workloads.Flowsize.web_search) ());
  for i = 0 to 9 do
    ignore (Enclave.process e ~now:(Time.us i) (data_packet ~id:(Int64.of_int i) (flow ())))
  done;
  match Controller.collect_reports ctl with
  | [ r ] ->
    check_int "host" 3 r.Controller.er_host;
    check_int "packets" 10 r.Controller.er_packets;
    check_int "invocations" 10 r.Controller.er_invocations;
    check_bool "overhead positive" true (r.Controller.er_overhead_pct > 0.0);
    check_bool "action listed" true (List.mem "pias" r.Controller.er_actions)
  | _ -> Alcotest.fail "expected one report"

(* ------------------------------------------------------------------ *)
(* Workloads *)

let test_flowsize_sampling () =
  let rng = Rng.create 1L in
  let ws = Eden_workloads.Flowsize.web_search in
  let small = ref 0 and total = 10_000 in
  for _ = 1 to total do
    let s = Eden_workloads.Flowsize.sample ws rng in
    check_bool "positive" true (s >= 1);
    check_bool "below max" true (s <= 32 * 1024 * 1024);
    if s < 100 * 1024 then incr small
  done;
  (* Web search: ~55-60% of flows under ~100KB. *)
  check_bool
    (Printf.sprintf "small fraction %.2f" (float_of_int !small /. float_of_int total))
    true
    (float_of_int !small /. float_of_int total > 0.45)

let test_reqresp_offered_load () =
  (* Generate with no contention and verify arrival count matches the
     load equation within tolerance. *)
  let net = Eden_netsim.Net.create ~seed:5L () in
  let sw = Eden_netsim.Net.add_switch net in
  let h0 = Eden_netsim.Net.add_host net in
  let h1 = Eden_netsim.Net.add_host net in
  List.iter
    (fun h ->
      let p = Eden_netsim.Net.connect_host net h sw ~rate_bps:100e9 () in
      Eden_netsim.Switch.set_dst_route sw ~dst:(Eden_netsim.Host.id h) ~ports:[ p ])
    [ h0; h1 ];
  let sizes = Eden_workloads.Flowsize.fixed 10_000 in
  let gen =
    Eden_workloads.Reqresp.launch ~net ~rng:(Rng.create 6L) ~src:0 ~dsts:[ 1 ] ~sizes
      ~load:0.5 ~link_rate_bps:10e9 ~until:(Time.ms 100) ()
  in
  Eden_netsim.Net.run net;
  (* Expected arrivals: 0.5 * 10G / (8 * 10k) = 62.5 kflows/s -> 6250 in 100 ms. *)
  let n = Eden_workloads.Reqresp.launched gen in
  check_bool (Printf.sprintf "arrivals %d near 6250" n) true (n > 5_000 && n < 7_500);
  check_int "all completed" n (Eden_workloads.Reqresp.completed gen)

let test_reqresp_buckets () =
  Alcotest.(check string) "small" "small"
    (Eden_workloads.Reqresp.bucket_to_string (Eden_workloads.Reqresp.bucket_of_size 5_000));
  Alcotest.(check string) "intermediate" "intermediate"
    (Eden_workloads.Reqresp.bucket_to_string (Eden_workloads.Reqresp.bucket_of_size 500_000));
  Alcotest.(check string) "large" "large"
    (Eden_workloads.Reqresp.bucket_to_string (Eden_workloads.Reqresp.bucket_of_size 5_000_000))

let qcheck t = QCheck_alcotest.to_alcotest t

let () =
  Alcotest.run "eden_functions"
    [
      ( "wcmp",
        [
          Alcotest.test_case "weighted split" `Quick test_wcmp_weighted_split;
          Alcotest.test_case "ecmp equal split" `Quick test_ecmp_equal_split;
          Alcotest.test_case "message wcmp stable" `Quick test_message_wcmp_stable_per_message;
          Alcotest.test_case "native agrees" `Quick
            test_wcmp_native_agrees_with_interpreted_distribution;
        ] );
      ( "pias",
        [
          Alcotest.test_case "reference model" `Quick test_pias_reference_model;
          Alcotest.test_case "demotion sequence" `Quick test_pias_demotion_sequence;
          Alcotest.test_case "native equivalent" `Quick test_pias_native_interpreted_equivalent;
          qcheck prop_pias_program_matches_reference;
        ] );
      ( "sff",
        [
          Alcotest.test_case "priority from metadata" `Quick test_sff_priority_from_metadata;
          Alcotest.test_case "constant over flow" `Quick test_sff_constant_priority_over_flow;
          Alcotest.test_case "no metadata" `Quick test_sff_no_metadata_untouched;
        ] );
      ( "pulsar",
        [
          Alcotest.test_case "read charged by op size" `Quick test_pulsar_read_charged_by_op_size;
          Alcotest.test_case "non-storage ignored" `Quick test_pulsar_ignores_non_storage_traffic;
        ] );
      ( "port_knocking",
        [
          Alcotest.test_case "sequence unlocks" `Quick test_port_knocking_sequence;
          Alcotest.test_case "wrong knock resets" `Quick test_port_knocking_wrong_knock_resets;
          Alcotest.test_case "other traffic unaffected" `Quick
            test_port_knocking_other_traffic_unaffected;
        ] );
      ( "replica_select",
        [
          Alcotest.test_case "deterministic per key" `Quick
            test_replica_select_deterministic_per_key;
          Alcotest.test_case "skips other traffic" `Quick test_replica_select_skips_other_traffic;
        ] );
      ( "ananta",
        [
          Alcotest.test_case "per-flow consistency" `Quick test_ananta_per_flow_consistency;
          Alcotest.test_case "weighted split" `Quick test_ananta_weighted;
          Alcotest.test_case "flow close" `Quick test_ananta_flow_close_releases_dip;
        ] );
      ( "qjump",
        [
          Alcotest.test_case "levels" `Quick test_qjump_levels;
          Alcotest.test_case "rates" `Quick test_qjump_rates;
        ] );
      ("catalog", [ Alcotest.test_case "table shape" `Quick test_catalog_shape ]);
      ( "controller",
        [
          Alcotest.test_case "paths" `Quick test_topology_paths;
          Alcotest.test_case "wcmp weights" `Quick test_wcmp_weights_ten_to_one;
          Alcotest.test_case "path matrix" `Quick test_wcmp_path_matrix_encoding;
          Alcotest.test_case "pias thresholds" `Quick test_pias_thresholds_monotone;
          Alcotest.test_case "broadcast" `Quick test_controller_broadcast_and_rollback;
          Alcotest.test_case "rollback" `Quick test_controller_rollback_on_partial_failure;
        ] );
      ( "policy",
        [
          Alcotest.test_case "flow scheduling" `Quick test_policy_flow_scheduling;
          Alcotest.test_case "rollback" `Quick test_policy_rollback;
          Alcotest.test_case "wcmp from topology" `Quick test_policy_wcmp_from_topology;
          Alcotest.test_case "tenant qos" `Quick test_policy_tenant_qos;
          Alcotest.test_case "reports" `Quick test_collect_reports;
        ] );
      ( "workloads",
        [
          Alcotest.test_case "flowsize sampling" `Quick test_flowsize_sampling;
          Alcotest.test_case "reqresp offered load" `Quick test_reqresp_offered_load;
          Alcotest.test_case "buckets" `Quick test_reqresp_buckets;
        ] );
    ]
