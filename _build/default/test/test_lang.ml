(* Tests for the DSL: type checking, compilation, end-to-end execution of
   paper action functions through the interpreter. *)

open Eden_lang
module P = Eden_bytecode.Program
module Interp = Eden_bytecode.Interp

let check_bool = Alcotest.(check bool)
let check_i64 = Alcotest.(check int64)
let now = Eden_base.Time.us 10
let rng () = Eden_base.Rng.create 99L

let compile_ok ?stack_limit ?heap_limit ?step_limit schema action =
  match Compile.compile ?stack_limit ?heap_limit ?step_limit schema action with
  | Ok p -> p
  | Error e -> Alcotest.failf "compile failed: %s" (Compile.error_to_string e)

let expect_compile_error schema action pred name =
  match Compile.compile schema action with
  | Ok _ -> Alcotest.failf "%s: expected compile error" name
  | Error e -> check_bool name true (pred e)

(* Build an environment from (name, value) assoc lists, honouring the
   program's slot order. *)
let slot_entity_name = function
  | P.Packet -> "packet"
  | P.Message -> "msg"
  | P.Global -> "_global"

let env_for p ~scalars ~arrays =
  let s =
    Array.map
      (fun (slot : P.scalar_slot) ->
        match List.assoc_opt (slot_entity_name slot.P.s_entity ^ "." ^ slot.P.s_name) scalars with
        | Some v -> v
        | None -> 0L)
      p.P.scalar_slots
  in
  let a =
    Array.map
      (fun (slot : P.array_slot) ->
        match List.assoc_opt (slot_entity_name slot.P.a_entity ^ "." ^ slot.P.a_name) arrays with
        | Some v -> v
        | None -> [||])
      p.P.array_slots
  in
  Interp.make_env p ~scalars:s ~arrays:a

let scalar_out p env name =
  let found = ref None in
  Array.iteri
    (fun i (slot : P.scalar_slot) ->
      if String.equal (slot_entity_name slot.P.s_entity ^ "." ^ slot.P.s_name) name then
        found := Some env.Interp.scalars.(i))
    p.P.scalar_slots;
  match !found with
  | Some v -> v
  | None -> Alcotest.failf "no scalar slot %s" name

let run p env =
  match Interp.run p ~env ~now ~rng:(rng ()) with
  | Ok stats -> stats
  | Error (f, _) -> Alcotest.failf "fault: %s" (Interp.fault_to_string f)

(* ------------------------------------------------------------------ *)
(* Type checking *)

let simple_schema =
  Schema.with_standard_packet
    ~message:[ Schema.field "Size" ~access:Schema.Read_write ]
    ~global:[ Schema.field "Counter" ~access:Schema.Read_write ]
    ~global_arrays:[ Schema.array "Limits" ]
    ()

let test_typecheck_accepts_pias_like () =
  let open Dsl in
  let action =
    action "t"
      (set_msg "Size" (msg "Size" + pkt "Size") ^^ set_pkt "Priority" (int 1))
  in
  check_bool "ok" true (Result.is_ok (Typecheck.check simple_schema action))

let expect_type_error action msg_fragment =
  match Typecheck.check simple_schema action with
  | Ok () -> Alcotest.failf "expected type error (%s)" msg_fragment
  | Error e ->
    let contains s sub =
      let n = String.length sub in
      let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
      go 0
    in
    check_bool
      (Printf.sprintf "error mentions %S (got %S)" msg_fragment e.Typecheck.message)
      true
      (contains e.Typecheck.message msg_fragment)

let test_typecheck_unknown_field () =
  let open Dsl in
  expect_type_error (action "t" (set_pkt "Nope" (int 1))) "no field"

let test_typecheck_readonly_field () =
  let open Dsl in
  expect_type_error (action "t" (set_pkt "Size" (int 1))) "read-only"

let test_typecheck_bool_int_confusion () =
  let open Dsl in
  expect_type_error (action "t" (set_pkt "Priority" (int 1 < int 2))) "expected int";
  expect_type_error (action "t" (when_ (pkt "Size") (set_pkt "Priority" (int 1))))
    "expected bool"

let test_typecheck_immutable_assign () =
  let open Dsl in
  expect_type_error
    (action "t" (let_ "x" (int 1) (fun _ -> assign "x" (int 2))))
    "immutable"

let test_typecheck_unbound_var () =
  let open Dsl in
  expect_type_error (action "t" (set_pkt "Priority" (var "ghost"))) "unbound"

let test_typecheck_body_must_be_unit () =
  let open Dsl in
  expect_type_error (action "t" (pkt "Size")) "unit"

let test_typecheck_branch_mismatch () =
  let open Dsl in
  expect_type_error
    (action "t"
       (set_pkt "Priority" (if_ (int 1 < int 2) (int 1) (int 1 < int 3))))
    "disagree"

let test_typecheck_arity () =
  let open Dsl in
  let f = fn "f" [ "a"; "b" ] (var "a" + var "b") in
  expect_type_error
    (action ~funs:[ f ] "t" (set_pkt "Priority" (call "f" [ int 1 ])))
    "argument"

let test_typecheck_unknown_array () =
  let open Dsl in
  expect_type_error (action "t" (set_pkt "Priority" (glob_arr "Ghost" (int 0)))) "no array"

let test_typecheck_readonly_array () =
  let open Dsl in
  expect_type_error (action "t" (set_glob_arr "Limits" (int 0) (int 1))) "read-only"

(* ------------------------------------------------------------------ *)
(* Compilation + execution *)

let test_compile_simple_assignment () =
  let open Dsl in
  let action = action "prio" (set_pkt "Priority" (int 5)) in
  let p = compile_ok simple_schema action in
  let env = env_for p ~scalars:[] ~arrays:[] in
  ignore (run p env);
  check_i64 "priority set" 5L (scalar_out p env "packet.Priority")

let test_compile_field_arith () =
  let open Dsl in
  let action = action "t" (set_msg "Size" (msg "Size" + pkt "Size")) in
  let p = compile_ok simple_schema action in
  let env = env_for p ~scalars:[ ("msg.Size", 100L); ("packet.Size", 1460L) ] ~arrays:[] in
  ignore (run p env);
  check_i64 "accumulated" 1560L (scalar_out p env "msg.Size")

let test_compile_if () =
  let open Dsl in
  let action =
    action "t"
      (if_ (pkt "Size" > int 1000)
         (set_pkt "Priority" (int 0))
         (set_pkt "Priority" (int 7)))
  in
  let p = compile_ok simple_schema action in
  let env = env_for p ~scalars:[ ("packet.Size", 2000L) ] ~arrays:[] in
  ignore (run p env);
  check_i64 "big flow low prio" 0L (scalar_out p env "packet.Priority");
  let env = env_for p ~scalars:[ ("packet.Size", 10L) ] ~arrays:[] in
  ignore (run p env);
  check_i64 "small flow high prio" 7L (scalar_out p env "packet.Priority")

let test_compile_let_and_mutation () =
  let open Dsl in
  let action =
    action "t"
      (let_mut "x" (int 0) @@ fun x ->
       assign "x" (x + int 40) ^^ assign "x" (x + int 2) ^^ set_msg "Size" x)
  in
  let p = compile_ok simple_schema action in
  let env = env_for p ~scalars:[] ~arrays:[] in
  ignore (run p env);
  check_i64 "42" 42L (scalar_out p env "msg.Size")

let test_compile_while_loop () =
  let open Dsl in
  (* Sum 1..10 with a while loop. *)
  let action =
    action "t"
      (let_mut "i" (int 1) @@ fun i ->
       let_mut "acc" (int 0) @@ fun acc ->
       while_ (i <= int 10) (assign "acc" (acc + i) ^^ assign "i" (i + int 1))
       ^^ set_msg "Size" acc)
  in
  let p = compile_ok simple_schema action in
  let env = env_for p ~scalars:[] ~arrays:[] in
  ignore (run p env);
  check_i64 "55" 55L (scalar_out p env "msg.Size")

let test_compile_global_array_read () =
  let open Dsl in
  let action = action "t" (set_msg "Size" (glob_arr "Limits" (int 1))) in
  let p = compile_ok simple_schema action in
  let env = env_for p ~scalars:[] ~arrays:[ ("_global.Limits", [| 10L; 20L; 30L |]) ] in
  ignore (run p env);
  check_i64 "read" 20L (scalar_out p env "msg.Size")

let test_compile_inline_function () =
  let open Dsl in
  let double = fn "double" [ "x" ] (var "x" * int 2) in
  let action = action ~funs:[ double ] "t" (set_msg "Size" (call "double" [ int 21 ])) in
  let p = compile_ok simple_schema action in
  let env = env_for p ~scalars:[] ~arrays:[] in
  ignore (run p env);
  check_i64 "inlined" 42L (scalar_out p env "msg.Size")

let test_compile_nested_inline () =
  let open Dsl in
  let double = fn "double" [ "x" ] (var "x" * int 2) in
  let quad = fn "quad" [ "x" ] (call "double" [ call "double" [ var "x" ] ]) in
  let action =
    action ~funs:[ double; quad ] "t" (set_msg "Size" (call "quad" [ int 10 ]))
  in
  let p = compile_ok simple_schema action in
  let env = env_for p ~scalars:[] ~arrays:[] in
  ignore (run p env);
  check_i64 "nested" 40L (scalar_out p env "msg.Size")

let test_compile_tail_recursion () =
  let open Dsl in
  (* let rec search i = if i >= len then 0 elif limits[i] >= size then i
     else search (i+1) — the paper's PIAS search shape. *)
  let search =
    fn "search" [ "i" ]
      (if_ (var "i" >= glob_arr_len "Limits") (int 99)
         (if_ (glob_arr "Limits" (var "i") >= msg "Size")
            (var "i")
            (call "search" [ var "i" + int 1 ])))
  in
  let action = action ~funs:[ search ] "t" (set_pkt "Priority" (call "search" [ int 0 ])) in
  let p = compile_ok simple_schema action in
  let limits = [| 10_000L; 1_000_000L |] in
  let check size expected =
    let env =
      env_for p ~scalars:[ ("msg.Size", size) ] ~arrays:[ ("_global.Limits", limits) ]
    in
    ignore (run p env);
    check_i64
      (Printf.sprintf "size %Ld -> prio %Ld" size expected)
      expected
      (scalar_out p env "packet.Priority")
  in
  check 500L 0L;
  check 500_000L 1L;
  check 5_000_000L 99L

let test_compile_tail_recursion_is_loop () =
  (* Deep recursion must not exhaust anything: it compiles to a loop. *)
  let open Dsl in
  let count =
    fn "count" [ "i" ]
      (if_ (var "i" >= int 10_000) (var "i") (call "count" [ var "i" + int 1 ]))
  in
  let action =
    action ~funs:[ count ] "t" (set_msg "Size" (call "count" [ int 0 ]))
  in
  let p = compile_ok ~step_limit:1_000_000 simple_schema action in
  let env = env_for p ~scalars:[] ~arrays:[] in
  let stats = run p env in
  check_i64 "looped to 10000" 10_000L (scalar_out p env "msg.Size");
  check_bool "stack stayed small" true (Stdlib.( < ) stats.Interp.max_stack 8)

let test_compile_rejects_non_tail_recursion () =
  let open Dsl in
  let bad = fn "bad" [ "i" ] (int 1 + call "bad" [ var "i" ]) in
  expect_compile_error simple_schema
    (action ~funs:[ bad ] "t" (set_msg "Size" (call "bad" [ int 0 ])))
    (function Compile.Unsupported _ -> true | _ -> false)
    "non-tail"

let test_compile_rejects_mutual_recursion () =
  let open Dsl in
  let f = fn "f" [ "i" ] (call "g" [ var "i" ]) in
  let g = fn "g" [ "i" ] (call "f" [ var "i" ]) in
  expect_compile_error simple_schema
    (action ~funs:[ f; g ] "t" (set_msg "Size" (call "f" [ int 0 ])))
    (function Compile.Unsupported _ -> true | _ -> false)
    "mutual"

let test_compile_constant_folding () =
  let open Dsl in
  let action = action "t" (set_msg "Size" (int 6 * int 7)) in
  let p = compile_ok simple_schema action in
  (* Folded to a single push + store. *)
  check_bool "short code" true (Stdlib.( <= ) (Array.length p.P.code) 3);
  let env = env_for p ~scalars:[] ~arrays:[] in
  ignore (run p env);
  check_i64 "42" 42L (scalar_out p env "msg.Size")

let test_compile_env_contract () =
  let action =
    let open Dsl in
    action "t" (set_msg "Size" (msg "Size" + pkt "Size") ^^ set_pkt "Priority" (int 1))
  in
  let p = compile_ok simple_schema action in
  check_bool "writes message" true (P.writes_entity p P.Message);
  check_bool "writes packet" true (P.writes_entity p P.Packet);
  check_bool "no global writes" false (P.writes_entity p P.Global);
  (match P.find_scalar p "Size" with
  | Some s -> check_bool "size slot exists" true (String.equal s.P.s_name "Size")
  | None -> Alcotest.fail "no Size slot");
  check_bool "packet.Size read-only" true
    (Array.exists
       (fun (s : P.scalar_slot) ->
         String.equal s.P.s_name "Size" && Stdlib.( = ) s.P.s_entity P.Packet && Stdlib.( = ) s.P.s_access P.Read_only)
       p.P.scalar_slots)

let test_compiled_code_verifies () =
  (* compile already verifies, but double-check the public contract. *)
  let open Dsl in
  let search =
    fn "search" [ "i" ]
      (if_ (var "i" >= int 8) (int 0) (call "search" [ var "i" + int 1 ]))
  in
  let action = action ~funs:[ search ] "t" (set_msg "Size" (call "search" [ int 0 ])) in
  let p = compile_ok simple_schema action in
  check_bool "verifies" true (Result.is_ok (Eden_bytecode.Verifier.verify p))

let test_schema_infer () =
  let action =
    let open Dsl in
    action "t"
      (set_msg "Count" (msg "Count" + int 1)
      ^^ set_glob_arr "Tbl" (int 0) (glob "Limit")
      ^^ set_pkt "Priority" (int 2))
  in
  let schema = Schema.infer action in
  (* Inferred schemas are permissive: everything touched is read-write. *)
  (match Schema.find_field schema Ast.Message "Count" with
  | Some f -> check_bool "msg rw" true (Stdlib.( = ) f.Schema.f_access Schema.Read_write)
  | None -> Alcotest.fail "Count missing");
  (match Schema.find_array schema Ast.Global "Tbl" with
  | Some a -> check_bool "array rw" true (Stdlib.( = ) a.Schema.a_access Schema.Read_write)
  | None -> Alcotest.fail "Tbl missing");
  check_bool "Limit present" true (Schema.find_field schema Ast.Global "Limit" <> None);
  (* Standard packet fields still enforce their access: the inferred
     schema never lets an action write packet.Size. *)
  let bad = let open Dsl in action "bad" (set_pkt "Size" (int 1)) in
  check_bool "packet.Size still read-only" true
    (Result.is_error (Compile.compile (Schema.infer bad) bad));
  (* And the inferred schema compiles the original action. *)
  check_bool "compiles" true (Result.is_ok (Compile.compile schema action))

let test_rand_in_action () =
  let open Dsl in
  let action = action "t" (set_msg "Size" (rand (int 10))) in
  let p = compile_ok simple_schema action in
  let env = env_for p ~scalars:[] ~arrays:[] in
  ignore (run p env);
  let v = scalar_out p env "msg.Size" in
  check_bool "in range" true (Stdlib.( && ) (Stdlib.( >= ) v 0L) (Stdlib.( < ) v 10L))

let test_pretty_printer_mentions_structure () =
  let action =
    let open Dsl in
    let search =
      fn "search" [ "index" ]
        (if_ (var "index" >= glob_arr_len "Limits") (int 0) (var "index"))
    in
    action ~funs:[ search ] "pias" (set_pkt "Priority" (call "search" [ int 0 ]))
  in
  let s = Pretty.action_to_string action in
  let contains sub =
    let n = String.length sub in
    let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  check_bool "lambda header" true (contains "fun (packet : Packet");
  check_bool "let rec" true (contains "let rec search index");
  check_bool "assignment" true (contains "packet.Priority <-")

(* ------------------------------------------------------------------ *)
(* Property tests *)

let prop_constant_folding_preserves_value =
  (* Random arithmetic expression trees evaluate to the same value
     compiled with and without folding being effective (folding is always
     on; we compare against a reference OCaml evaluation). *)
  let open QCheck in
  let gen_expr =
    let open Gen in
    let leaf = map (fun v -> Ast.Int (Int64.of_int (v mod 1000))) small_int in
    let node self n =
      if n <= 0 then leaf
      else
        oneof
          [
            leaf;
            map2 (fun a b -> Ast.Binop (Ast.Add, a, b)) (self (n / 2)) (self (n / 2));
            map2 (fun a b -> Ast.Binop (Ast.Sub, a, b)) (self (n / 2)) (self (n / 2));
            map2 (fun a b -> Ast.Binop (Ast.Mul, a, b)) (self (n / 2)) (self (n / 2));
          ]
    in
    sized (fix node)
  in
  let rec eval (e : Ast.expr) =
    match e with
    | Ast.Int v -> v
    | Ast.Binop (Ast.Add, a, b) -> Int64.add (eval a) (eval b)
    | Ast.Binop (Ast.Sub, a, b) -> Int64.sub (eval a) (eval b)
    | Ast.Binop (Ast.Mul, a, b) -> Int64.mul (eval a) (eval b)
    | _ -> 0L
  in
  Test.make ~name:"compiled arithmetic equals reference evaluation" ~count:200
    (make gen_expr) (fun expr ->
      let open Dsl in
      let action = action "t" (set_msg "Size" expr) in
      match Compile.compile simple_schema action with
      | Error _ -> false
      | Ok p -> (
        let env = env_for p ~scalars:[] ~arrays:[] in
        match Interp.run p ~env ~now ~rng:(rng ()) with
        | Error _ -> false
        | Ok _ -> Int64.equal (scalar_out p env "msg.Size") (eval expr)))

let qcheck t = QCheck_alcotest.to_alcotest t

let () =
  Alcotest.run "eden_lang"
    [
      ( "typecheck",
        [
          Alcotest.test_case "accepts pias-like" `Quick test_typecheck_accepts_pias_like;
          Alcotest.test_case "unknown field" `Quick test_typecheck_unknown_field;
          Alcotest.test_case "read-only field" `Quick test_typecheck_readonly_field;
          Alcotest.test_case "bool/int confusion" `Quick test_typecheck_bool_int_confusion;
          Alcotest.test_case "immutable assign" `Quick test_typecheck_immutable_assign;
          Alcotest.test_case "unbound var" `Quick test_typecheck_unbound_var;
          Alcotest.test_case "body unit" `Quick test_typecheck_body_must_be_unit;
          Alcotest.test_case "branch mismatch" `Quick test_typecheck_branch_mismatch;
          Alcotest.test_case "arity" `Quick test_typecheck_arity;
          Alcotest.test_case "unknown array" `Quick test_typecheck_unknown_array;
          Alcotest.test_case "read-only array" `Quick test_typecheck_readonly_array;
        ] );
      ( "compile",
        [
          Alcotest.test_case "assignment" `Quick test_compile_simple_assignment;
          Alcotest.test_case "field arithmetic" `Quick test_compile_field_arith;
          Alcotest.test_case "if" `Quick test_compile_if;
          Alcotest.test_case "let/mutation" `Quick test_compile_let_and_mutation;
          Alcotest.test_case "while" `Quick test_compile_while_loop;
          Alcotest.test_case "global array" `Quick test_compile_global_array_read;
          Alcotest.test_case "inline function" `Quick test_compile_inline_function;
          Alcotest.test_case "nested inline" `Quick test_compile_nested_inline;
          Alcotest.test_case "tail recursion" `Quick test_compile_tail_recursion;
          Alcotest.test_case "tail recursion is loop" `Quick
            test_compile_tail_recursion_is_loop;
          Alcotest.test_case "rejects non-tail" `Quick test_compile_rejects_non_tail_recursion;
          Alcotest.test_case "rejects mutual" `Quick test_compile_rejects_mutual_recursion;
          Alcotest.test_case "constant folding" `Quick test_compile_constant_folding;
          Alcotest.test_case "env contract" `Quick test_compile_env_contract;
          Alcotest.test_case "verifies" `Quick test_compiled_code_verifies;
          Alcotest.test_case "schema infer" `Quick test_schema_infer;
          Alcotest.test_case "rand" `Quick test_rand_in_action;
          Alcotest.test_case "pretty printer" `Quick test_pretty_printer_mentions_structure;
        ] );
      ("properties", [ qcheck prop_constant_folding_preserves_value ]);
    ]
