(* Tests for the network simulator: event engine, links, switches, TCP. *)

open Eden_netsim
module Enclave = Eden_enclave.Enclave
module Time = Eden_base.Time
module Addr = Eden_base.Addr
module Packet = Eden_base.Packet
module Metadata = Eden_base.Metadata
module Stats = Eden_base.Stats

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Event engine *)

let test_event_ordering () =
  let ev = Event.create () in
  let log = ref [] in
  Event.schedule_at ev (Time.us 30) (fun () -> log := 3 :: !log);
  Event.schedule_at ev (Time.us 10) (fun () -> log := 1 :: !log);
  Event.schedule_at ev (Time.us 20) (fun () -> log := 2 :: !log);
  Event.run ev;
  Alcotest.(check (list int)) "time order" [ 1; 2; 3 ] (List.rev !log)

let test_event_tie_breaking () =
  let ev = Event.create () in
  let log = ref [] in
  for i = 1 to 5 do
    Event.schedule_at ev (Time.us 10) (fun () -> log := i :: !log)
  done;
  Event.run ev;
  Alcotest.(check (list int)) "fifo on ties" [ 1; 2; 3; 4; 5 ] (List.rev !log)

let test_event_until () =
  let ev = Event.create () in
  let fired = ref 0 in
  Event.schedule_at ev (Time.us 10) (fun () -> incr fired);
  Event.schedule_at ev (Time.us 20) (fun () -> incr fired);
  Event.run ~until:(Time.us 15) ev;
  check_int "only first" 1 !fired;
  check_bool "clock at horizon" true (Time.compare (Event.now ev) (Time.us 15) = 0);
  Event.run ev;
  check_int "rest fired" 2 !fired

let test_event_max_events () =
  let ev = Event.create () in
  let fired = ref 0 in
  for _ = 1 to 10 do
    Event.schedule_in ev (Time.us 1) (fun () -> incr fired)
  done;
  Event.run ~max_events:3 ev;
  check_int "stopped at budget" 3 !fired;
  Event.run ev;
  check_int "rest fired later" 10 !fired

let test_event_cascade () =
  let ev = Event.create () in
  let count = ref 0 in
  let rec chain n = if n > 0 then Event.schedule_in ev (Time.us 1) (fun () -> incr count; chain (n - 1)) in
  chain 100;
  Event.run ev;
  check_int "all fired" 100 !count;
  check_bool "clock advanced" true (Time.compare (Event.now ev) (Time.us 100) = 0)

(* ------------------------------------------------------------------ *)
(* Link *)

let test_link_serialization_rate () =
  let ev = Event.create () in
  (* 1 Gbps link, zero delay: a 1250-byte packet takes 10 us. *)
  let link = Link.create ev ~rate_bps:1e9 ~delay:Time.zero () in
  let deliveries = ref [] in
  Link.attach link (fun pkt -> deliveries := (pkt.Packet.id, Event.now ev) :: !deliveries);
  let f = Addr.five_tuple ~src:(Addr.endpoint 0 1) ~dst:(Addr.endpoint 1 2) ~proto:Addr.Tcp in
  for i = 1 to 3 do
    ignore
      (Link.send link
         (Packet.make ~id:(Int64.of_int i) ~flow:f ~kind:Packet.Data ~payload:(1250 - 58) ()))
  done;
  Event.run ev;
  let d = List.rev !deliveries in
  Alcotest.(check int) "all delivered" 3 (List.length d);
  List.iteri
    (fun i (_, at) ->
      let expect = Time.us (10 * (i + 1)) in
      check_bool
        (Printf.sprintf "packet %d at %dus" i (10 * (i + 1)))
        true
        (Time.compare at expect = 0))
    d

let test_link_priority_preemption () =
  let ev = Event.create () in
  let link = Link.create ev ~rate_bps:1e9 ~delay:Time.zero () in
  let order = ref [] in
  Link.attach link (fun pkt -> order := pkt.Packet.id :: !order);
  let f = Addr.five_tuple ~src:(Addr.endpoint 0 1) ~dst:(Addr.endpoint 1 2) ~proto:Addr.Tcp in
  let mk id prio = Packet.make ~id ~flow:f ~kind:Packet.Data ~payload:1000 ~priority:prio () in
  (* First packet starts transmitting immediately; the rest queue. *)
  ignore (Link.send link (mk 1L 0));
  ignore (Link.send link (mk 2L 0));
  ignore (Link.send link (mk 3L 7));
  Event.run ev;
  Alcotest.(check (list int64)) "high priority overtakes queued packet" [ 1L; 3L; 2L ]
    (List.rev !order)

let test_link_drop_tail () =
  let ev = Event.create () in
  let link = Link.create ~capacity_bytes:3000 ev ~rate_bps:1e6 ~delay:Time.zero () in
  Link.attach link (fun _ -> ());
  let f = Addr.five_tuple ~src:(Addr.endpoint 0 1) ~dst:(Addr.endpoint 1 2) ~proto:Addr.Tcp in
  let sent = ref 0 in
  for i = 1 to 10 do
    if Link.send link (Packet.make ~id:(Int64.of_int i) ~flow:f ~kind:Packet.Data ~payload:1000 ())
    then incr sent
  done;
  check_bool "some dropped" true ((Link.stats link).Link.dropped_packets > 0);
  check_bool "some sent" true (!sent > 0);
  Event.run ev

(* ------------------------------------------------------------------ *)
(* Topology helpers *)

(* A star: n hosts on one switch, every link [rate_bps]. *)
let star ?(seed = 1L) ?(rate_bps = 10e9) ?capacity_bytes n =
  let net = Net.create ~seed () in
  let sw = Net.add_switch net in
  let hosts = List.init n (fun _ -> Net.add_host net) in
  List.iter
    (fun h ->
      let port = Net.connect_host net h sw ~rate_bps ?capacity_bytes () in
      Switch.set_dst_route sw ~dst:(Host.id h) ~ports:[ port ])
    hosts;
  (net, sw, hosts)

let run_flow ?(size = 100_000) ?(rate_bps = 10e9) () =
  let net, _, _ = star ~rate_bps 2 in
  let done_at = ref None in
  let _flow =
    Net.start_flow net ~src:0 ~dst:1 ~size
      ~on_complete:(fun fc -> done_at := Some fc)
      ()
  in
  Net.run net;
  !done_at

let test_flow_completes () =
  match run_flow () with
  | Some fc ->
    check_int "bytes" 100_000 fc.Tcp.Sender.fc_bytes;
    check_bool "positive fct" true
      (Time.compare fc.Tcp.Sender.fc_completed fc.Tcp.Sender.fc_started > 0)
  | None -> Alcotest.fail "flow did not complete"

let test_small_flow_fct_reasonable () =
  (* 10 KB over 10 Gbps with ~4 us RTT: a handful of RTTs; must finish
     well under a millisecond and take at least the serialization time. *)
  match run_flow ~size:10_000 () with
  | Some fc ->
    let fct = Time.sub fc.Tcp.Sender.fc_completed fc.Tcp.Sender.fc_started in
    check_bool "fct > 8us (serialization + rtt)" true (Time.compare fct (Time.us 8) > 0);
    check_bool "fct < 1ms" true (Time.compare fct (Time.ms 1) < 0)
  | None -> Alcotest.fail "flow did not complete"

let test_long_flow_saturates_link () =
  (* 12.5 MB over 1 Gbps ≈ 100 ms at line rate. *)
  match run_flow ~size:12_500_000 ~rate_bps:1e9 () with
  | Some fc ->
    let fct_s = Time.to_sec (Time.sub fc.Tcp.Sender.fc_completed fc.Tcp.Sender.fc_started) in
    let goodput_mbps = float_of_int fc.Tcp.Sender.fc_bytes *. 8.0 /. fct_s /. 1e6 in
    check_bool
      (Printf.sprintf "goodput %.0f Mbps > 850" goodput_mbps)
      true (goodput_mbps > 850.0);
    check_bool "goodput below line rate" true (goodput_mbps < 1000.0)
  | None -> Alcotest.fail "flow did not complete"

let test_two_flows_share_link () =
  let net, _, _ = star ~rate_bps:1e9 3 in
  let fcts = ref [] in
  let on_complete fc = fcts := fc :: !fcts in
  ignore (Net.start_flow net ~src:0 ~dst:2 ~size:2_500_000 ~on_complete ());
  ignore (Net.start_flow net ~src:1 ~dst:2 ~size:2_500_000 ~on_complete ());
  Net.run net;
  check_int "both complete" 2 (List.length !fcts);
  (* Sharing a 1 Gbps bottleneck, 2.5 MB each: at least 40 ms. *)
  List.iter
    (fun fc ->
      let fct = Time.sub fc.Tcp.Sender.fc_completed fc.Tcp.Sender.fc_started in
      check_bool "slower than alone" true (Time.compare fct (Time.ms 30) > 0))
    !fcts

let test_loss_recovery () =
  (* Tiny switch buffers force drops; the flow must still complete, via
     fast retransmit / RTO. *)
  let net, _, _ = star ~rate_bps:1e9 ~capacity_bytes:8_000 2 in
  let result = ref None in
  ignore
    (Net.start_flow net ~src:0 ~dst:1 ~size:2_000_000
       ~on_complete:(fun fc -> result := Some fc)
       ());
  Net.run net;
  match !result with
  | Some fc ->
    check_bool "had retransmissions" true (fc.Tcp.Sender.fc_retransmissions > 0)
  | None -> Alcotest.fail "flow did not survive loss"

let test_priority_scheduling_helps_small_flows () =
  (* One long low-priority background flow; a short high-priority flow
     starts mid-way.  With strict priority queues, the short flow's FCT
     should be close to its no-contention FCT. *)
  let fct_with_priority prio =
    let net, _, _ = star ~rate_bps:1e9 3 in
    ignore (Net.start_flow net ~src:0 ~dst:2 ~size:50_000_000 ());
    let short_fct = ref None in
    Event.schedule_at (Net.event net) (Time.ms 10) (fun () ->
        let flow =
          Net.open_flow net ~src:1 ~dst:2
            ~on_complete:(fun fc ->
              short_fct := Some (Time.sub fc.Tcp.Sender.fc_completed fc.Tcp.Sender.fc_started))
            ()
        in
        (* Mark every packet of the short flow with the given priority via
           a metadata-free hack: set packets' priority through TCP is not
           supported directly, so emulate with an enclave-free priority:
           messages inherit packet priority 0.  Instead we use the ACK
           priority trick: not applicable — so this test uses the enclave
           in test_functions; here we only check the low-priority case
           completes. *)
        ignore prio;
        Tcp.Sender.send_message flow.Net.f_sender 100_000;
        Tcp.Sender.close flow.Net.f_sender);
    Net.run ~until:(Time.sec 1.0) net;
    !short_fct
  in
  match fct_with_priority 0 with
  | Some fct -> check_bool "short flow completed" true (Time.compare fct Time.zero > 0)
  | None -> Alcotest.fail "short flow starved entirely"

let test_ecmp_spreads_flows () =
  (* Two switches linked by two parallel trunks; many flows from h0..h3
     to h4..h7.  ECMP should use both trunks. *)
  let net = Net.create ~seed:3L () in
  let s1 = Net.add_switch net in
  let s2 = Net.add_switch net in
  let left = List.init 4 (fun _ -> Net.add_host net) in
  let right = List.init 4 (fun _ -> Net.add_host net) in
  List.iter
    (fun h ->
      let p = Net.connect_host net h s1 ~rate_bps:10e9 () in
      Switch.set_dst_route s1 ~dst:(Host.id h) ~ports:[ p ])
    left;
  List.iter
    (fun h ->
      let p = Net.connect_host net h s2 ~rate_bps:10e9 () in
      Switch.set_dst_route s2 ~dst:(Host.id h) ~ports:[ p ])
    right;
  let t1a, t1b = Net.connect_switches net s1 s2 ~rate_bps:10e9 () in
  let t2a, t2b = Net.connect_switches net s1 s2 ~rate_bps:10e9 () in
  List.iter
    (fun h ->
      Switch.set_dst_route s1 ~dst:(Host.id h) ~ports:[ t1a; t2a ])
    right;
  List.iter
    (fun h ->
      Switch.set_dst_route s2 ~dst:(Host.id h) ~ports:[ t1b; t2b ])
    left;
  let completions = ref 0 in
  List.iteri
    (fun i l ->
      let r = List.nth right i in
      for _ = 1 to 8 do
        ignore
          (Net.start_flow net ~src:(Host.id l) ~dst:(Host.id r) ~size:100_000
             ~on_complete:(fun _ -> incr completions)
             ())
      done)
    left;
  Net.run net;
  check_int "all flows complete" 32 !completions;
  let trunk1 = (Link.stats (Switch.port s1 t1a)).Link.tx_packets in
  let trunk2 = (Link.stats (Switch.port s1 t2a)).Link.tx_packets in
  check_bool "trunk1 used" true (trunk1 > 0);
  check_bool "trunk2 used" true (trunk2 > 0)

let test_label_routing_overrides_ecmp () =
  (* Same dual-trunk topology; a label steers all packets onto trunk 2
     regardless of the ECMP hash. *)
  let net = Net.create ~seed:4L () in
  let s1 = Net.add_switch net in
  let s2 = Net.add_switch net in
  let h0 = Net.add_host net in
  let h1 = Net.add_host net in
  let p0 = Net.connect_host net h0 s1 ~rate_bps:10e9 () in
  Switch.set_dst_route s1 ~dst:(Host.id h0) ~ports:[ p0 ];
  let p1 = Net.connect_host net h1 s2 ~rate_bps:10e9 () in
  Switch.set_dst_route s2 ~dst:(Host.id h1) ~ports:[ p1 ];
  let t1a, t1b = Net.connect_switches net s1 s2 ~rate_bps:10e9 () in
  let t2a, t2b = Net.connect_switches net s1 s2 ~rate_bps:10e9 () in
  Switch.set_dst_route s1 ~dst:(Host.id h1) ~ports:[ t1a ];
  Switch.set_dst_route s2 ~dst:(Host.id h0) ~ports:[ t1b ];
  ignore t2b;
  Switch.set_label_route s1 ~label:42 ~port:t2a;
  Switch.set_label_route s2 ~label:42 ~port:p1;
  (* Send hand-made labelled packets straight through h0's NIC. *)
  let delivered = ref 0 in
  let flow =
    Addr.five_tuple
      ~src:(Addr.endpoint (Host.id h0) 1)
      ~dst:(Addr.endpoint (Host.id h1) 2)
      ~proto:Addr.Tcp
  in
  (* Count what arrives at h1 via a receiver-less hack: watch trunk stats. *)
  for i = 1 to 5 do
    let pkt = Packet.make ~id:(Int64.of_int i) ~flow ~kind:Packet.Data ~payload:1000 () in
    pkt.Packet.route_label <- Some 42;
    Host.transmit h0 pkt
  done;
  Net.run net;
  ignore delivered;
  check_int "all took trunk2" 5 (Link.stats (Switch.port s1 t2a)).Link.tx_packets;
  check_int "trunk1 unused" 0 (Link.stats (Switch.port s1 t1a)).Link.tx_packets

let test_message_receive_callback () =
  let net, _, _ = star 2 in
  let received = ref [] in
  let flow =
    Net.open_flow net ~src:0 ~dst:1
      ~on_message_received:(fun md at -> received := (Metadata.msg_id md, at) :: !received)
      ()
  in
  let md i =
    Metadata.empty |> Metadata.with_msg_id i
    |> Metadata.add Metadata.Field.msg_size (Metadata.int 5000)
  in
  Tcp.Sender.send_message flow.Net.f_sender ~metadata:(md 1L) 5000;
  Tcp.Sender.send_message flow.Net.f_sender ~metadata:(md 2L) 5000;
  Tcp.Sender.close flow.Net.f_sender;
  Net.run net;
  check_int "two messages" 2 (List.length !received);
  check_bool "ids" true
    (List.sort compare (List.map fst !received) = [ Some 1L; Some 2L ])

let test_message_completion_callbacks_in_order () =
  let net, _, _ = star 2 in
  let order = ref [] in
  let flow = Net.open_flow net ~src:0 ~dst:1 () in
  Tcp.Sender.send_message flow.Net.f_sender ~on_complete:(fun _ -> order := 1 :: !order) 3000;
  Tcp.Sender.send_message flow.Net.f_sender ~on_complete:(fun _ -> order := 2 :: !order) 3000;
  Tcp.Sender.send_message flow.Net.f_sender ~on_complete:(fun _ -> order := 3 :: !order) 3000;
  Tcp.Sender.close flow.Net.f_sender;
  Net.run net;
  Alcotest.(check (list int)) "in order" [ 1; 2; 3 ] (List.rev !order)

let test_throughput_accounting () =
  let net, _, _ = star ~rate_bps:1e9 2 in
  let flow = Net.open_flow net ~src:0 ~dst:1 () in
  Tcp.Sender.send_message flow.Net.f_sender 1_000_000;
  Tcp.Sender.close flow.Net.f_sender;
  Net.run net;
  check_int "delivered all" 1_000_000 (Tcp.Receiver.bytes_delivered flow.Net.f_receiver)

let test_deterministic_given_seed () =
  let run () =
    let net, _, _ = star ~seed:7L ~rate_bps:1e9 ~capacity_bytes:20_000 3 in
    let fcts = ref [] in
    for _ = 1 to 5 do
      ignore
        (Net.start_flow net ~src:0 ~dst:2 ~size:500_000
           ~on_complete:(fun fc ->
             fcts := Time.to_ns (Time.sub fc.Tcp.Sender.fc_completed fc.Tcp.Sender.fc_started) :: !fcts)
           ())
    done;
    ignore (Net.start_flow net ~src:1 ~dst:2 ~size:500_000 ());
    Net.run net;
    !fcts
  in
  check_bool "identical runs" true (run () = run ())

(* ------------------------------------------------------------------ *)
(* Ingress enclave *)

let test_ingress_firewall_blocks_flows () =
  (* A port-knocking firewall on the receive path of host 1: a flow to
     the protected port from an un-knocked source never delivers data,
     while an allowed port works end to end. *)
  let net, _, _ = star 3 in
  let victim = Net.host net 1 in
  let e = Enclave.create ~host:1 () in
  (match
     Eden_functions.Port_knocking.install e ~knocks:[ 7001 ] ~protected_port:2222
       ~max_hosts:8
   with
  | Ok () -> ()
  | Error m -> failwith m);
  Host.set_ingress_enclave victim e;
  let blocked = ref false in
  let flow_blocked =
    Net.open_flow net ~src:0 ~dst:1 ~dst_port:2222
      ~on_complete:(fun _ -> blocked := true)
      ()
  in
  Tcp.Sender.send_message flow_blocked.Net.f_sender 5_000;
  Tcp.Sender.close flow_blocked.Net.f_sender;
  let allowed = ref false in
  let flow_ok =
    Net.open_flow net ~src:2 ~dst:1 ~dst_port:80 ~on_complete:(fun _ -> allowed := true) ()
  in
  Tcp.Sender.send_message flow_ok.Net.f_sender 5_000;
  Tcp.Sender.close flow_ok.Net.f_sender;
  Net.run ~until:(Time.ms 100) net;
  check_bool "allowed flow completed" true !allowed;
  check_bool "protected flow blocked" true (not !blocked);
  check_bool "drops counted" true (Host.packets_dropped_by_enclave victim > 0)

let test_ingress_after_knock_allows () =
  let net, _, _ = star 2 in
  let victim = Net.host net 1 in
  let e = Enclave.create ~host:1 () in
  (match
     Eden_functions.Port_knocking.install e ~knocks:[ 7001 ] ~protected_port:2222
       ~max_hosts:8
   with
  | Ok () -> ()
  | Error m -> failwith m);
  Host.set_ingress_enclave victim e;
  (* Knock first (a tiny flow to the knock port), then connect. *)
  let knock = Net.open_flow net ~src:0 ~dst:1 ~dst_port:7001 () in
  Tcp.Sender.send_message knock.Net.f_sender 100;
  Tcp.Sender.close knock.Net.f_sender;
  Net.run net;
  let completed = ref false in
  ignore
    (Net.start_flow net ~src:0 ~dst:1 ~dst_port:2222 ~size:5_000
       ~on_complete:(fun _ -> completed := true)
       ());
  Net.run ~until:(Time.ms 200) net;
  check_bool "post-knock flow completes" true !completed

(* ------------------------------------------------------------------ *)
(* ECN / DCTCP *)

let dctcp_star ?(ecn = true) () =
  let net = Net.create ~seed:31L () in
  let sw = Net.add_switch net in
  let hosts = List.init 3 (fun _ -> Net.add_host net) in
  List.iter
    (fun h ->
      let port =
        Net.connect_host net h sw ~rate_bps:1e9
          ?ecn_threshold_bytes:(if ecn then Some 30_000 else None)
          ()
      in
      Switch.set_dst_route sw ~dst:(Host.id h) ~ports:[ port ];
      if ecn then Host.set_tcp_config h { Tcp.default_config with Tcp.ecn = true })
    hosts;
  (net, sw, hosts)

let test_dctcp_keeps_queue_short () =
  (* Two long flows into one 1 Gbps port: with DCTCP the standing queue
     stays near the 30 KB marking threshold instead of filling 512 KB. *)
  let run ecn =
    let net, sw, _ = dctcp_star ~ecn () in
    ignore (Net.start_flow net ~src:0 ~dst:2 ~size:12_500_000 ());
    ignore (Net.start_flow net ~src:1 ~dst:2 ~size:12_500_000 ());
    let samples = ref [] in
    let rec sample at =
      if Time.( <= ) at (Time.ms 80) then
        Event.schedule_at (Net.event net) at (fun () ->
            samples := Link.queue_bytes (Switch.port sw 2) :: !samples;
            sample (Time.add at (Time.ms 2)))
    in
    sample (Time.ms 20);
    Net.run ~until:(Time.ms 100) net;
    let n = List.length !samples in
    if n = 0 then 0.0
    else float_of_int (List.fold_left ( + ) 0 !samples) /. float_of_int n
  in
  let q_dctcp = run true and q_tail = run false in
  check_bool
    (Printf.sprintf "queue %.0fB (dctcp) << %.0fB (drop-tail)" q_dctcp q_tail)
    true
    (q_dctcp < q_tail /. 3.0);
  check_bool "dctcp queue near threshold" true (q_dctcp < 100_000.0)

let test_dctcp_retains_throughput () =
  let net, _, _ = dctcp_star ~ecn:true () in
  let fct = ref None in
  ignore
    (Net.start_flow net ~src:0 ~dst:2 ~size:12_500_000
       ~on_complete:(fun fc ->
         fct := Some (Time.sub fc.Tcp.Sender.fc_completed fc.Tcp.Sender.fc_started))
       ());
  Net.run net;
  match !fct with
  | Some fct ->
    let mbps = 12_500_000.0 *. 8.0 /. Time.to_sec fct /. 1e6 in
    check_bool (Printf.sprintf "goodput %.0f Mbps" mbps) true (mbps > 800.0)
  | None -> Alcotest.fail "flow did not complete"

(* ------------------------------------------------------------------ *)
(* Trace *)

let test_trace_records_flow_events () =
  let net, _, _ = star ~rate_bps:1e9 2 in
  let tr = Net.enable_tracing net in
  ignore (Net.start_flow net ~src:0 ~dst:1 ~size:20_000 ());
  Net.run net;
  let entries = Trace.entries tr in
  check_bool "events recorded" true (List.length entries > 20);
  (* Time-ordered. *)
  let rec ordered = function
    | a :: (b :: _ as rest) -> Time.( <= ) a.Trace.at b.Trace.at && ordered rest
    | _ -> true
  in
  check_bool "time ordered" true (ordered entries);
  (* Every delivery was preceded by an enqueue of the same packet. *)
  let enq = Trace.filter ~kind:Trace.Enqueued tr in
  let dlv = Trace.filter ~kind:Trace.Delivered tr in
  check_bool "deliveries <= enqueues" true (List.length dlv <= List.length enq);
  check_bool "acks traced too" true
    (List.exists (fun e -> e.Trace.packet_kind = Packet.Ack) entries)

let test_trace_drops_visible () =
  let net, _, _ = star ~rate_bps:1e9 ~capacity_bytes:8_000 2 in
  let tr = Net.enable_tracing net in
  ignore (Net.start_flow net ~src:0 ~dst:1 ~size:1_000_000 ());
  Net.run net;
  check_bool "drops recorded" true (Trace.filter ~kind:Trace.Dropped tr <> [])

let test_trace_ring_eviction () =
  let tr = Trace.create ~capacity:4 () in
  let entry i =
    {
      Trace.at = Time.us i;
      link = "l";
      kind = Trace.Enqueued;
      packet_id = Int64.of_int i;
      flow =
        Addr.five_tuple ~src:(Addr.endpoint 0 1) ~dst:(Addr.endpoint 1 2) ~proto:Addr.Tcp;
      packet_kind = Packet.Data;
      size = 100;
      priority = 0;
    }
  in
  for i = 1 to 10 do
    Trace.record tr (entry i)
  done;
  check_int "total counts all" 10 (Trace.count tr);
  let kept = Trace.entries tr in
  check_int "ring keeps capacity" 4 (List.length kept);
  check_bool "keeps newest" true
    (List.map (fun e -> e.Trace.packet_id) kept = [ 7L; 8L; 9L; 10L ])

(* ------------------------------------------------------------------ *)
(* Fabric *)

let test_leaf_spine_all_to_all () =
  let net = Net.create ~seed:21L () in
  let fabric = Fabric.leaf_spine net ~leaves:3 ~spines:2 ~hosts_per_leaf:2 in
  check_int "hosts" 6 (Array.length fabric.Fabric.hosts);
  let completions = ref 0 in
  Array.iter
    (fun src ->
      Array.iter
        (fun dst ->
          if Host.id src <> Host.id dst then
            ignore
              (Net.start_flow net ~src:(Host.id src) ~dst:(Host.id dst) ~size:50_000
                 ~on_complete:(fun _ -> incr completions)
                 ()))
        fabric.Fabric.hosts)
    fabric.Fabric.hosts;
  Net.run net;
  check_int "all pairs complete" 30 !completions

let test_leaf_spine_uses_both_spines () =
  let net = Net.create ~seed:22L () in
  let fabric = Fabric.leaf_spine net ~leaves:2 ~spines:2 ~hosts_per_leaf:4 in
  let done_ = ref 0 in
  (* Many cross-leaf flows: ECMP should hit both spines. *)
  for i = 0 to 3 do
    for j = 4 to 7 do
      ignore
        (Net.start_flow net
           ~src:(Host.id fabric.Fabric.hosts.(i))
           ~dst:(Host.id fabric.Fabric.hosts.(j))
           ~size:100_000
           ~on_complete:(fun _ -> incr done_)
           ())
    done
  done;
  Net.run net;
  check_int "flows done" 16 !done_;
  Array.iter
    (fun spine -> check_bool "spine carried traffic" true (Switch.rx_packets spine > 0))
    fabric.Fabric.spines

let test_leaf_spine_label_pinning () =
  let net = Net.create ~seed:23L () in
  let fabric = Fabric.leaf_spine net ~leaves:2 ~spines:2 ~hosts_per_leaf:1 in
  Fabric.install_spine_labels fabric ~base_label:500;
  (* Hand-labelled packets all traverse spine 1, regardless of hashing. *)
  let src = fabric.Fabric.hosts.(0) and dst = fabric.Fabric.hosts.(1) in
  let before = Switch.rx_packets fabric.Fabric.spines.(1) in
  for i = 1 to 10 do
    let pkt =
      Packet.make ~id:(Int64.of_int i)
        ~flow:
          (Addr.five_tuple
             ~src:(Addr.endpoint (Host.id src) (6000 + i))
             ~dst:(Addr.endpoint (Host.id dst) 80)
             ~proto:Addr.Tcp)
        ~kind:Packet.Data ~payload:500 ()
    in
    pkt.Packet.route_label <- Some 501;
    Host.transmit src pkt
  done;
  Net.run net;
  check_int "all ten via spine 1" (before + 10) (Switch.rx_packets fabric.Fabric.spines.(1));
  check_int "spine 0 untouched" 0 (Switch.rx_packets fabric.Fabric.spines.(0))

let test_fabric_star () =
  let net = Net.create ~seed:24L () in
  let fabric = Fabric.star net ~hosts:4 in
  let done_ = ref 0 in
  ignore (Net.start_flow net ~src:0 ~dst:3 ~size:10_000 ~on_complete:(fun _ -> incr done_) ());
  Net.run net;
  check_int "completes" 1 !done_;
  check_int "one switch" 1 (Array.length fabric.Fabric.leaves)

let () =
  Alcotest.run "eden_netsim"
    [
      ( "event",
        [
          Alcotest.test_case "ordering" `Quick test_event_ordering;
          Alcotest.test_case "tie breaking" `Quick test_event_tie_breaking;
          Alcotest.test_case "until" `Quick test_event_until;
          Alcotest.test_case "max events" `Quick test_event_max_events;
          Alcotest.test_case "cascade" `Quick test_event_cascade;
        ] );
      ( "link",
        [
          Alcotest.test_case "serialization rate" `Quick test_link_serialization_rate;
          Alcotest.test_case "priority" `Quick test_link_priority_preemption;
          Alcotest.test_case "drop tail" `Quick test_link_drop_tail;
        ] );
      ( "tcp",
        [
          Alcotest.test_case "flow completes" `Quick test_flow_completes;
          Alcotest.test_case "small flow fct" `Quick test_small_flow_fct_reasonable;
          Alcotest.test_case "saturates link" `Quick test_long_flow_saturates_link;
          Alcotest.test_case "two flows share" `Quick test_two_flows_share_link;
          Alcotest.test_case "loss recovery" `Quick test_loss_recovery;
          Alcotest.test_case "short among long" `Quick
            test_priority_scheduling_helps_small_flows;
          Alcotest.test_case "message receive callback" `Quick test_message_receive_callback;
          Alcotest.test_case "message completion order" `Quick
            test_message_completion_callbacks_in_order;
          Alcotest.test_case "throughput accounting" `Quick test_throughput_accounting;
          Alcotest.test_case "deterministic" `Quick test_deterministic_given_seed;
        ] );
      ( "routing",
        [
          Alcotest.test_case "ecmp spreads" `Quick test_ecmp_spreads_flows;
          Alcotest.test_case "label override" `Quick test_label_routing_overrides_ecmp;
        ] );
      ( "ingress",
        [
          Alcotest.test_case "firewall blocks" `Quick test_ingress_firewall_blocks_flows;
          Alcotest.test_case "knock then connect" `Quick test_ingress_after_knock_allows;
        ] );
      ( "dctcp",
        [
          Alcotest.test_case "short queues" `Quick test_dctcp_keeps_queue_short;
          Alcotest.test_case "throughput retained" `Quick test_dctcp_retains_throughput;
        ] );
      ( "trace",
        [
          Alcotest.test_case "flow events" `Quick test_trace_records_flow_events;
          Alcotest.test_case "drops visible" `Quick test_trace_drops_visible;
          Alcotest.test_case "ring eviction" `Quick test_trace_ring_eviction;
        ] );
      ( "fabric",
        [
          Alcotest.test_case "all-to-all" `Quick test_leaf_spine_all_to_all;
          Alcotest.test_case "both spines used" `Quick test_leaf_spine_uses_both_spines;
          Alcotest.test_case "label pinning" `Quick test_leaf_spine_label_pinning;
          Alcotest.test_case "star" `Quick test_fabric_star;
        ] );
    ]
