(* Tests for the action-function parser: syntax forms, error reporting,
   and print->parse round-trips (hand-written and property-based). *)

open Eden_lang

let check_bool = Alcotest.(check bool)

let parse_ok src =
  match Parser.parse_expr src with
  | Ok e -> e
  | Error e -> Alcotest.failf "parse failed: %s\nsource:\n%s" (Parser.error_to_string e) src

let expect_expr src expected =
  let e = parse_ok src in
  if e <> expected then
    Alcotest.failf "parsed %s as:\n%s\nexpected:\n%s" src (Pretty.expr_to_string e)
      (Pretty.expr_to_string expected)

let expect_error src =
  match Parser.parse_expr src with
  | Ok e -> Alcotest.failf "expected error, parsed: %s" (Pretty.expr_to_string e)
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Expression forms *)

let test_literals () =
  expect_expr "42L" (Ast.Int 42L);
  expect_expr "42" (Ast.Int 42L);
  expect_expr "1_000_000L" (Ast.Int 1_000_000L);
  expect_expr "true" (Ast.Bool true);
  expect_expr "false" (Ast.Bool false);
  expect_expr "()" Ast.Unit;
  expect_expr "(-5L)" (Ast.Unop (Ast.Neg, Ast.Int 5L))

let test_fields () =
  expect_expr "packet.Size" (Ast.Field (Ast.Packet, "Size"));
  expect_expr "msg.Size" (Ast.Field (Ast.Message, "Size"));
  expect_expr "_global.Counter" (Ast.Field (Ast.Global, "Counter"));
  expect_expr "_global.Paths.[0L]" (Ast.Arr_get (Ast.Global, "Paths", Ast.Int 0L));
  expect_expr "_global.Paths.Length" (Ast.Arr_len (Ast.Global, "Paths"));
  expect_expr "msg.Window.[packet.Size]"
    (Ast.Arr_get (Ast.Message, "Window", Ast.Field (Ast.Packet, "Size")))

let test_operators_and_precedence () =
  expect_expr "1L + 2L * 3L" (Ast.Binop (Ast.Add, Ast.Int 1L, Ast.Binop (Ast.Mul, Ast.Int 2L, Ast.Int 3L)));
  expect_expr "(1L + 2L) * 3L" (Ast.Binop (Ast.Mul, Ast.Binop (Ast.Add, Ast.Int 1L, Ast.Int 2L), Ast.Int 3L));
  expect_expr "1L < 2L && 3L >= 2L"
    (Ast.Binop (Ast.And, Ast.Binop (Ast.Lt, Ast.Int 1L, Ast.Int 2L),
       Ast.Binop (Ast.Ge, Ast.Int 3L, Ast.Int 2L)));
  expect_expr "1L <<< 2L" (Ast.Binop (Ast.Shl, Ast.Int 1L, Ast.Int 2L));
  expect_expr "1L &&& 3L" (Ast.Binop (Ast.Band, Ast.Int 1L, Ast.Int 3L));
  expect_expr "not true" (Ast.Unop (Ast.Not, Ast.Bool true));
  expect_expr "1L - 2L - 3L"
    (Ast.Binop (Ast.Sub, Ast.Binop (Ast.Sub, Ast.Int 1L, Ast.Int 2L), Ast.Int 3L))

let test_statements () =
  expect_expr "packet.Priority <- 5L" (Ast.Set_field (Ast.Packet, "Priority", Ast.Int 5L));
  expect_expr "_global.State.[0L] <- 1L"
    (Ast.Arr_set (Ast.Global, "State", Ast.Int 0L, Ast.Int 1L));
  expect_expr "packet.Priority <- 1L\npacket.Path <- 2L"
    (Ast.Seq
       ( Ast.Set_field (Ast.Packet, "Priority", Ast.Int 1L),
         Ast.Set_field (Ast.Packet, "Path", Ast.Int 2L) ));
  expect_expr "packet.Priority <- 1L; packet.Path <- 2L"
    (Ast.Seq
       ( Ast.Set_field (Ast.Packet, "Priority", Ast.Int 1L),
         Ast.Set_field (Ast.Packet, "Path", Ast.Int 2L) ))

let test_let_bindings () =
  expect_expr "let x = 1L\nx + 1L"
    (Ast.Let { name = "x"; mutable_ = false; rhs = Ast.Int 1L;
               body = Ast.Binop (Ast.Add, Ast.Var "x", Ast.Int 1L) });
  expect_expr "let mutable x = 1L\nx <- 2L"
    (Ast.Let { name = "x"; mutable_ = true; rhs = Ast.Int 1L;
               body = Ast.Assign ("x", Ast.Int 2L) });
  expect_expr "let x = 1L in x" (Ast.Let { name = "x"; mutable_ = false; rhs = Ast.Int 1L; body = Ast.Var "x" })

let test_if_while () =
  expect_expr "if true then 1L else 2L" (Ast.If (Ast.Bool true, Ast.Int 1L, Ast.Int 2L));
  expect_expr "if true then packet.Priority <- 1L"
    (Ast.If (Ast.Bool true, Ast.Set_field (Ast.Packet, "Priority", Ast.Int 1L), Ast.Unit));
  expect_expr "if true then 1L elif false then 2L else 3L"
    (Ast.If (Ast.Bool true, Ast.Int 1L, Ast.If (Ast.Bool false, Ast.Int 2L, Ast.Int 3L)));
  expect_expr "if true then 1L else if false then 2L else 3L"
    (Ast.If (Ast.Bool true, Ast.Int 1L, Ast.If (Ast.Bool false, Ast.Int 2L, Ast.Int 3L)));
  expect_expr "while true do packet.Priority <- 1L done"
    (Ast.While (Ast.Bool true, Ast.Set_field (Ast.Packet, "Priority", Ast.Int 1L)))

let test_calls_and_intrinsics () =
  expect_expr "f 1L 2L" (Ast.Call ("f", [ Ast.Int 1L; Ast.Int 2L ]));
  expect_expr "f (1L + 2L)" (Ast.Call ("f", [ Ast.Binop (Ast.Add, Ast.Int 1L, Ast.Int 2L) ]));
  expect_expr "rand 10L" (Ast.Rand (Ast.Int 10L));
  expect_expr "clock ()" Ast.Clock;
  expect_expr "hash 1L 2L" (Ast.Hash (Ast.Int 1L, Ast.Int 2L));
  expect_expr "f packet.Size msg.Size"
    (Ast.Call ("f", [ Ast.Field (Ast.Packet, "Size"); Ast.Field (Ast.Message, "Size") ]))

let test_begin_end_and_comments () =
  expect_expr "begin 1L end" (Ast.Int 1L);
  expect_expr "1L // comment\n + 2L" (Ast.Binop (Ast.Add, Ast.Int 1L, Ast.Int 2L));
  expect_expr "1L (* block (* nested *) comment *) + 2L"
    (Ast.Binop (Ast.Add, Ast.Int 1L, Ast.Int 2L))

let test_errors () =
  expect_error "1L +";
  expect_error "if true then";
  expect_error "packet.";
  expect_error "while true do 1L";
  expect_error "(1L";
  expect_error "let = 3L";
  expect_error "1L @ 2L";
  expect_error "foo.Bar" (* not an entity *)

let test_error_positions () =
  match Parser.parse_expr "1L +\n  @" with
  | Ok _ -> Alcotest.fail "expected error"
  | Error e -> check_bool "line 2" true (e.Parser.line = 2)

(* ------------------------------------------------------------------ *)
(* Action functions *)

let test_parse_action_with_header () =
  let src =
    "fun (packet : Packet, msg : Message, _global : Global) ->\n\
     \  let rec search i =\n\
     \    if i >= _global.Thresholds.Length then 0L\n\
     \    else if msg.Size <= _global.Thresholds.[i] then 7L - i\n\
     \    else search (i + 1L)\n\
     \  msg.Size <- msg.Size + packet.Size\n\
     \  packet.Priority <- search 0L\n"
  in
  match Parser.parse_action ~name:"pias" src with
  | Error e -> Alcotest.failf "parse failed: %s" (Parser.error_to_string e)
  | Ok action ->
    check_bool "one function" true (List.length action.Ast.af_funs = 1);
    check_bool "named" true ((List.hd action.Ast.af_funs).Ast.fn_name = "search");
    (* It must compile and run through the full pipeline. *)
    let schema =
      Schema.with_standard_packet
        ~message:[ Schema.field "Size" ~access:Schema.Read_write ]
        ~global_arrays:[ Schema.array "Thresholds" ]
        ()
    in
    check_bool "typechecks and compiles" true
      (Result.is_ok (Compile.compile schema action))

let test_parse_action_without_header () =
  match Parser.parse_action "packet.Priority <- 3L" with
  | Ok a -> check_bool "body" true (a.Ast.af_body = Ast.Set_field (Ast.Packet, "Priority", Ast.Int 3L))
  | Error e -> Alcotest.failf "parse failed: %s" (Parser.error_to_string e)

(* ------------------------------------------------------------------ *)
(* Round-trips *)

let paper_actions =
  [
    Eden_functions.Wcmp.action;
    Eden_functions.Wcmp.message_action;
    Eden_functions.Pias.action;
    Eden_functions.Sff.action;
    Eden_functions.Pulsar.action;
    Eden_functions.Port_knocking.action;
    Eden_functions.Replica_select.action;
  ]

let test_paper_functions_roundtrip () =
  List.iter
    (fun action ->
      let src = Pretty.action_to_string action in
      match Parser.parse_action ~name:action.Ast.af_name src with
      | Error e ->
        Alcotest.failf "%s: parse failed: %s" action.Ast.af_name (Parser.error_to_string e)
      | Ok parsed ->
        if parsed <> action then
          Alcotest.failf "%s: round-trip mismatch:\n%s\nvs\n%s" action.Ast.af_name src
            (Pretty.action_to_string parsed))
    paper_actions

(* Property: random well-formed statements round-trip. *)
let gen_expr =
  let open QCheck.Gen in
  let lit = map (fun v -> Ast.Int (Int64.of_int (abs v mod 1000))) small_int in
  let field = oneofl [ Ast.Field (Ast.Packet, "Size"); Ast.Field (Ast.Message, "Size");
                       Ast.Arr_get (Ast.Global, "Tbl", Ast.Int 0L) ] in
  let rec int_expr n =
    if n <= 0 then oneof [ lit; field ]
    else
      frequency
        [
          (2, lit);
          (2, field);
          ( 3,
            let* op = oneofl [ Ast.Add; Ast.Sub; Ast.Mul ] in
            let* a = int_expr (n / 2) in
            let* b = int_expr (n / 2) in
            return (Ast.Binop (op, a, b)) );
          (1, map (fun e -> Ast.Unop (Ast.Neg, e)) (int_expr (n - 1)));
          (1, map (fun e -> Ast.Rand e) (map (fun v -> Ast.Int (Int64.of_int (1 + abs v))) small_int));
          ( 1,
            let* a = int_expr (n / 2) in
            let* b = int_expr (n / 2) in
            return (Ast.Hash (a, b)) );
        ]
  in
  let cond n =
    let* op = oneofl [ Ast.Lt; Ast.Le; Ast.Eq; Ast.Ne; Ast.Gt; Ast.Ge ] in
    let* a = int_expr (n / 2) in
    let* b = int_expr (n / 2) in
    return (Ast.Binop (op, a, b))
  in
  let stmt_leaf n =
    oneof
      [
        map (fun e -> Ast.Set_field (Ast.Packet, "Priority", e)) (int_expr n);
        map (fun e -> Ast.Arr_set (Ast.Global, "Tbl", Ast.Int 0L, e)) (int_expr n);
      ]
  in
  let rec stmt n =
    if n <= 0 then stmt_leaf 0
    else
      frequency
        [
          (3, stmt_leaf n);
          ( 2,
            let* c = cond (n / 2) in
            let* t = stmt (n / 2) in
            let* f = stmt (n / 2) in
            return (Ast.If (c, t, f)) );
          ( 1,
            let* c = cond (n / 2) in
            let* t = stmt (n / 2) in
            return (Ast.If (c, t, Ast.Unit)) );
          ( 2,
            let* a = stmt (n / 2) in
            let* b = stmt (n / 2) in
            return (Ast.Seq (a, b)) );
          ( 1,
            let* rhs = int_expr (n / 2) in
            let* body = stmt (n / 2) in
            return (Ast.Let { name = "x"; mutable_ = false; rhs; body }) );
          ( 1,
            let* c = cond (n / 2) in
            let* b = stmt (n / 2) in
            return (Ast.While (c, b)) );
        ]
  in
  QCheck.Gen.sized (fun n -> stmt (min n 20))

let prop_print_parse_roundtrip =
  QCheck.Test.make ~name:"print -> parse round-trip" ~count:500 (QCheck.make gen_expr)
    (fun e ->
      let src = Pretty.expr_to_string e in
      match Parser.parse_expr src with
      | Ok e' -> e' = e
      | Error err ->
        QCheck.Test.fail_reportf "parse error %s on:\n%s" (Parser.error_to_string err) src)

let prop_action_roundtrip =
  QCheck.Test.make ~name:"action print -> parse round-trip" ~count:200
    (QCheck.make gen_expr) (fun body ->
      let action =
        {
          Ast.af_name = "t";
          af_funs =
            [ { Ast.fn_name = "aux"; fn_params = [ "i" ];
                fn_body = Ast.Binop (Ast.Add, Ast.Var "i", Ast.Int 1L) } ];
          af_body = body;
        }
      in
      let src = Pretty.action_to_string action in
      match Parser.parse_action ~name:"t" src with
      | Ok a -> a = action
      | Error err ->
        QCheck.Test.fail_reportf "parse error %s on:\n%s" (Parser.error_to_string err) src)

let qcheck t = QCheck_alcotest.to_alcotest t

let () =
  Alcotest.run "eden_parser"
    [
      ( "expressions",
        [
          Alcotest.test_case "literals" `Quick test_literals;
          Alcotest.test_case "fields" `Quick test_fields;
          Alcotest.test_case "operators" `Quick test_operators_and_precedence;
          Alcotest.test_case "statements" `Quick test_statements;
          Alcotest.test_case "let" `Quick test_let_bindings;
          Alcotest.test_case "if/while" `Quick test_if_while;
          Alcotest.test_case "calls" `Quick test_calls_and_intrinsics;
          Alcotest.test_case "begin/end, comments" `Quick test_begin_end_and_comments;
          Alcotest.test_case "errors" `Quick test_errors;
          Alcotest.test_case "error positions" `Quick test_error_positions;
        ] );
      ( "actions",
        [
          Alcotest.test_case "with header" `Quick test_parse_action_with_header;
          Alcotest.test_case "without header" `Quick test_parse_action_without_header;
          Alcotest.test_case "paper functions round-trip" `Quick
            test_paper_functions_roundtrip;
        ] );
      ("properties", [ qcheck prop_print_parse_roundtrip; qcheck prop_action_roundtrip ]);
    ]
