(* Tests for stages: classifiers, rule-sets, the Stage API, built-ins. *)

open Eden_stage
module Metadata = Eden_base.Metadata
module Class_name = Eden_base.Class_name

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let get_ok = function
  | Ok v -> v
  | Error msg -> Alcotest.failf "unexpected error: %s" msg

(* ------------------------------------------------------------------ *)
(* Classifier *)

let d = Builtin.memcached_descriptor ~op:`Get ~key:"a" ~size:100

let test_classifier_exact () =
  check_bool "msg_type GET" true
    (Classifier.matches [ ("msg_type", Classifier.eq_str "GET") ] d);
  check_bool "msg_type PUT" false
    (Classifier.matches [ ("msg_type", Classifier.eq_str "PUT") ] d);
  check_bool "conjunction" true
    (Classifier.matches
       [ ("msg_type", Classifier.eq_str "GET"); ("key", Classifier.eq_str "a") ]
       d);
  check_bool "conjunction fails" false
    (Classifier.matches
       [ ("msg_type", Classifier.eq_str "GET"); ("key", Classifier.eq_str "b") ]
       d)

let test_classifier_wildcards () =
  check_bool "empty matches" true (Classifier.matches [] d);
  check_bool "any" true (Classifier.matches [ ("msg_type", Classifier.Any) ] d);
  check_bool "any matches absent field" true
    (Classifier.matches [ ("nonexistent", Classifier.Any) ] d);
  check_bool "present fails on absent" false
    (Classifier.matches [ ("nonexistent", Classifier.Present) ] d);
  check_bool "present" true (Classifier.matches [ ("key", Classifier.Present) ] d)

let test_classifier_rich_patterns () =
  check_bool "range hit" true
    (Classifier.matches [ ("msg_size", Classifier.Range (50L, 150L)) ] d);
  check_bool "range miss" false
    (Classifier.matches [ ("msg_size", Classifier.Range (200L, 300L)) ] d);
  check_bool "range on string" false
    (Classifier.matches [ ("key", Classifier.Range (0L, 10L)) ] d);
  check_bool "in_set" true
    (Classifier.matches
       [ ("msg_type", Classifier.In_set [ Metadata.str "PUT"; Metadata.str "GET" ]) ]
       d);
  check_bool "ne" true (Classifier.matches [ ("msg_type", Classifier.Ne (Metadata.str "PUT")) ] d);
  let d2 = Builtin.http_descriptor ~msg_type:`Request ~url:"/api/users/1" ~size:10 in
  check_bool "prefix hit" true (Classifier.matches [ ("url", Classifier.Prefix "/api/") ] d2);
  check_bool "prefix miss" false (Classifier.matches [ ("url", Classifier.Prefix "/static/") ] d2)

let test_classifier_fields_referenced () =
  let c = [ ("a", Classifier.Any); ("b", Classifier.Present); ("a", Classifier.Present) ] in
  Alcotest.(check (list string)) "dedup in order" [ "a"; "b" ] (Classifier.fields_referenced c)

(* ------------------------------------------------------------------ *)
(* Rule-sets: Fig. 6 of the paper *)

let memcached_with_fig6_rules () =
  let st = Builtin.memcached () in
  (* r1: GET / PUT *)
  ignore
    (get_ok
       (Stage.Api.create_stage_rule st ~ruleset:"r1"
          ~classifier:[ ("msg_type", Classifier.eq_str "GET") ]
          ~class_name:"GET" ~metadata_fields:[ "msg_size" ]));
  ignore
    (get_ok
       (Stage.Api.create_stage_rule st ~ruleset:"r1"
          ~classifier:[ ("msg_type", Classifier.eq_str "PUT") ]
          ~class_name:"PUT" ~metadata_fields:[ "msg_size" ]));
  (* r2: everything -> DEFAULT *)
  Builtin.install_default_rule st ~ruleset:"r2";
  (* r3: GETs for key "a", other requests for "a", everything else *)
  ignore
    (get_ok
       (Stage.Api.create_stage_rule st ~ruleset:"r3"
          ~classifier:
            [ ("msg_type", Classifier.eq_str "GET"); ("key", Classifier.eq_str "a") ]
          ~class_name:"GETA" ~metadata_fields:[ "msg_size" ]));
  ignore
    (get_ok
       (Stage.Api.create_stage_rule st ~ruleset:"r3"
          ~classifier:[ ("key", Classifier.eq_str "a") ]
          ~class_name:"A" ~metadata_fields:[ "msg_size" ]));
  ignore
    (get_ok
       (Stage.Api.create_stage_rule st ~ruleset:"r3" ~classifier:[] ~class_name:"OTHER"
          ~metadata_fields:[ "msg_size" ]));
  st

let class_strings md = List.map Class_name.to_string (Metadata.classes md)

let test_fig6_get_a () =
  let st = memcached_with_fig6_rules () in
  let md = Stage.classify st (Builtin.memcached_descriptor ~op:`Get ~key:"a" ~size:64) in
  let cs = class_strings md in
  check_bool "GET" true (List.mem "memcached.r1.GET" cs);
  check_bool "DEFAULT" true (List.mem "memcached.r2.DEFAULT" cs);
  check_bool "GETA" true (List.mem "memcached.r3.GETA" cs);
  check_int "exactly one class per rule-set" 3 (List.length cs)

let test_fig6_put_a () =
  (* The paper: a PUT for key "a" belongs to memcached.r1.PUT,
     memcached.r2.DEFAULT and memcached.r3.A. *)
  let st = memcached_with_fig6_rules () in
  let md = Stage.classify st (Builtin.memcached_descriptor ~op:`Put ~key:"a" ~size:64) in
  let cs = class_strings md in
  Alcotest.(check (list string))
    "classes"
    [ "memcached.r1.PUT"; "memcached.r2.DEFAULT"; "memcached.r3.A" ]
    (List.sort compare cs)

let test_fig6_put_other_key () =
  let st = memcached_with_fig6_rules () in
  let md = Stage.classify st (Builtin.memcached_descriptor ~op:`Put ~key:"zz" ~size:64) in
  let cs = class_strings md in
  check_bool "OTHER" true (List.mem "memcached.r3.OTHER" cs);
  check_bool "not A" false (List.mem "memcached.r3.A" cs)

let test_classify_attaches_metadata () =
  let st = memcached_with_fig6_rules () in
  let md = Stage.classify st (Builtin.memcached_descriptor ~op:`Get ~key:"a" ~size:640) in
  check_bool "has msg id" true (Metadata.msg_id md <> None);
  check_bool "msg_size" true (Metadata.find_int "msg_size" md = Some 640L)

let test_msg_ids_unique () =
  let st = memcached_with_fig6_rules () in
  let d1 = Builtin.memcached_descriptor ~op:`Get ~key:"a" ~size:1 in
  let md1 = Stage.classify st d1 in
  let md2 = Stage.classify st d1 in
  check_bool "distinct ids" true (Metadata.msg_id md1 <> Metadata.msg_id md2)

let test_first_match_wins () =
  let st = Builtin.memcached () in
  ignore
    (get_ok
       (Stage.Api.create_stage_rule st ~ruleset:"r" ~classifier:[] ~class_name:"FIRST"
          ~metadata_fields:[]));
  ignore
    (get_ok
       (Stage.Api.create_stage_rule st ~ruleset:"r"
          ~classifier:[ ("msg_type", Classifier.eq_str "GET") ]
          ~class_name:"SECOND" ~metadata_fields:[]));
  let md = Stage.classify st d in
  Alcotest.(check (list string)) "first" [ "memcached.r.FIRST" ] (class_strings md)

(* ------------------------------------------------------------------ *)
(* Stage API *)

let test_get_stage_info () =
  let st = Builtin.memcached () in
  let info = Stage.Api.get_stage_info st in
  check_string "name" "memcached" info.Stage.stage_name;
  check_bool "classifies msg_type" true (List.mem "msg_type" info.Stage.classifier_fields);
  check_bool "classifies key" true (List.mem "key" info.Stage.classifier_fields);
  check_bool "generates msg_size" true (List.mem "msg_size" info.Stage.metadata_fields)

let test_create_rule_validates_classifier_fields () =
  let st = Builtin.memcached () in
  match
    Stage.Api.create_stage_rule st ~ruleset:"r"
      ~classifier:[ ("tenant", Classifier.Any) ]
      ~class_name:"X" ~metadata_fields:[]
  with
  | Ok _ -> Alcotest.fail "expected rejection"
  | Error msg -> check_bool "mentions field" true (String.length msg > 0)

let test_create_rule_validates_metadata_fields () =
  let st = Builtin.memcached () in
  match
    Stage.Api.create_stage_rule st ~ruleset:"r" ~classifier:[] ~class_name:"X"
      ~metadata_fields:[ "tenant" ]
  with
  | Ok _ -> Alcotest.fail "expected rejection"
  | Error _ -> ()

let test_remove_rule () =
  let st = Builtin.memcached () in
  let id =
    get_ok
      (Stage.Api.create_stage_rule st ~ruleset:"r" ~classifier:[] ~class_name:"X"
         ~metadata_fields:[])
  in
  let md = Stage.classify st d in
  check_int "one class" 1 (List.length (Metadata.classes md));
  check_bool "removed" true (Stage.Api.remove_stage_rule st ~ruleset:"r" ~rule_id:id);
  let md2 = Stage.classify st d in
  check_int "no classes" 0 (List.length (Metadata.classes md2));
  check_bool "second removal fails" false (Stage.Api.remove_stage_rule st ~ruleset:"r" ~rule_id:id)

(* ------------------------------------------------------------------ *)
(* Built-ins *)

let test_storage_stage () =
  let st = Builtin.storage () in
  ignore
    (get_ok
       (Stage.Api.create_stage_rule st ~ruleset:"ops"
          ~classifier:[ ("operation", Classifier.eq_str "READ") ]
          ~class_name:"READ"
          ~metadata_fields:[ "operation"; "msg_size"; "tenant" ]));
  ignore
    (get_ok
       (Stage.Api.create_stage_rule st ~ruleset:"ops"
          ~classifier:[ ("operation", Classifier.eq_str "WRITE") ]
          ~class_name:"WRITE"
          ~metadata_fields:[ "operation"; "msg_size"; "tenant" ]));
  let md = Stage.classify st (Builtin.storage_descriptor ~op:`Read ~tenant:3 ~size:65536) in
  check_bool "READ class" true
    (List.mem "storage.ops.READ" (class_strings md));
  check_bool "tenant" true (Metadata.find_int "tenant" md = Some 3L);
  check_bool "op size" true (Metadata.find_int "msg_size" md = Some 65536L);
  check_bool "operation str" true (Metadata.find_str "operation" md = Some "READ")

let test_flow_stage_five_tuple () =
  let st = Builtin.flow () in
  ignore
    (get_ok
       (Stage.Api.create_stage_rule st ~ruleset:"r0"
          ~classifier:[ ("dst_port", Classifier.eq_int 80) ]
          ~class_name:"HTTP" ~metadata_fields:[]));
  let ft =
    Eden_base.Addr.five_tuple
      ~src:(Eden_base.Addr.endpoint 1 1234)
      ~dst:(Eden_base.Addr.endpoint 2 80)
      ~proto:Eden_base.Addr.Tcp
  in
  let md = Stage.classify st (Builtin.flow_descriptor ft) in
  check_bool "HTTP class" true (List.mem "enclave.r0.HTTP" (class_strings md));
  let ft2 =
    Eden_base.Addr.five_tuple
      ~src:(Eden_base.Addr.endpoint 1 1234)
      ~dst:(Eden_base.Addr.endpoint 2 443)
      ~proto:Eden_base.Addr.Tcp
  in
  let md2 = Stage.classify st (Builtin.flow_descriptor ft2) in
  check_int "no class" 0 (List.length (Metadata.classes md2))

(* Property: classification is deterministic. *)
let prop_classification_deterministic =
  QCheck.Test.make ~name:"classification is deterministic" ~count:200
    QCheck.(pair (pair bool (string_of_size (Gen.int_range 1 5))) small_int)
    (fun ((is_get, key), size) ->
      let st = memcached_with_fig6_rules () in
      let d =
        Builtin.memcached_descriptor
          ~op:(if is_get then `Get else `Put)
          ~key ~size:(abs size)
      in
      let md1 = Stage.classify ~msg_id:7L st d in
      let md2 = Stage.classify ~msg_id:7L st d in
      class_strings md1 = class_strings md2)

let qcheck t = QCheck_alcotest.to_alcotest t

let () =
  Alcotest.run "eden_stage"
    [
      ( "classifier",
        [
          Alcotest.test_case "exact" `Quick test_classifier_exact;
          Alcotest.test_case "wildcards" `Quick test_classifier_wildcards;
          Alcotest.test_case "rich patterns" `Quick test_classifier_rich_patterns;
          Alcotest.test_case "fields referenced" `Quick test_classifier_fields_referenced;
        ] );
      ( "fig6",
        [
          Alcotest.test_case "GET a" `Quick test_fig6_get_a;
          Alcotest.test_case "PUT a" `Quick test_fig6_put_a;
          Alcotest.test_case "PUT other" `Quick test_fig6_put_other_key;
          Alcotest.test_case "metadata attached" `Quick test_classify_attaches_metadata;
          Alcotest.test_case "msg ids unique" `Quick test_msg_ids_unique;
          Alcotest.test_case "first match wins" `Quick test_first_match_wins;
        ] );
      ( "api",
        [
          Alcotest.test_case "get_stage_info" `Quick test_get_stage_info;
          Alcotest.test_case "classifier validation" `Quick
            test_create_rule_validates_classifier_fields;
          Alcotest.test_case "metadata validation" `Quick
            test_create_rule_validates_metadata_fields;
          Alcotest.test_case "remove rule" `Quick test_remove_rule;
        ] );
      ( "builtin",
        [
          Alcotest.test_case "storage" `Quick test_storage_stage;
          Alcotest.test_case "flow five-tuple" `Quick test_flow_stage_five_tuple;
        ] );
      ("properties", [ qcheck prop_classification_deterministic ]);
    ]
