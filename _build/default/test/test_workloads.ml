(* Tests for the application substrates: the memcached client/server and
   the storage tenants, including an end-to-end GET-over-PUT QoS check. *)

module Time = Eden_base.Time
module Metadata = Eden_base.Metadata
module Net = Eden_netsim.Net
module Host = Eden_netsim.Host
module Switch = Eden_netsim.Switch
module Event = Eden_netsim.Event
module Enclave = Eden_enclave.Enclave
module Kv = Eden_workloads.Memcached_app
module Storage = Eden_workloads.Storage
module Stage = Eden_stage.Stage
module Classifier = Eden_stage.Classifier

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let star ?(rate_bps = 1e9) n =
  let net = Net.create ~seed:51L () in
  let sw = Net.add_switch net in
  let hosts = List.init n (fun _ -> Net.add_host net) in
  List.iter
    (fun h ->
      let p = Net.connect_host net h sw ~rate_bps () in
      Switch.set_dst_route sw ~dst:(Host.id h) ~ports:[ p ])
    hosts;
  (net, hosts)

(* ------------------------------------------------------------------ *)
(* Memcached application *)

let test_kv_get_put_roundtrip () =
  let net, _ = star 2 in
  let srv = Kv.server ~net ~host:1 ~default_value_bytes:4096 () in
  let cl = Kv.client ~net ~server:srv ~host:0 () in
  let got = ref [] in
  Kv.put cl ~key:"user:1" ~size:10_000 ~on_reply:(fun r -> got := ("put", r) :: !got) ();
  Net.run net;
  Kv.get cl ~key:"user:1" ~on_reply:(fun r -> got := ("get", r) :: !got) ();
  Net.run net;
  check_int "both completed" 2 (List.length !got);
  check_int "no pending" 0 (Kv.outstanding cl);
  check_bool "stored size" true (Kv.stored_size srv ~key:"user:1" = Some 10_000);
  (match List.assoc_opt "get" !got with
  | Some r ->
    check_bool "get latency positive" true (Time.compare r.Kv.latency Time.zero > 0);
    check_int "get returned the stored value" 10_000 r.Kv.response_bytes
  | None -> Alcotest.fail "no get result");
  check_int "two results recorded" 2 (List.length (Kv.results cl))

let test_kv_get_default_value () =
  let net, _ = star 2 in
  let srv = Kv.server ~net ~host:1 ~default_value_bytes:2048 () in
  let cl = Kv.client ~net ~server:srv ~host:0 () in
  let size = ref 0 in
  Kv.get cl ~key:"missing" ~on_reply:(fun r -> size := r.Kv.response_bytes) ();
  Net.run net;
  check_int "default value size" 2048 !size

let test_kv_many_operations () =
  let net, _ = star 2 in
  let srv = Kv.server ~net ~host:1 () in
  let cl = Kv.client ~net ~server:srv ~host:0 () in
  for i = 0 to 49 do
    let key = Printf.sprintf "k%d" (i mod 7) in
    if i mod 3 = 0 then Kv.put cl ~key ~size:(1000 + i) ()
    else Kv.get cl ~key ()
  done;
  Net.run net;
  check_int "all 50 completed" 50 (List.length (Kv.results cl));
  check_int "none pending" 0 (Kv.outstanding cl)

(* GET prioritization: with the client uplink congested by PUT uploads,
   the App_priority function keeps GET latency low (the paper's opening
   application-QoS example). *)
let kv_qos_run ~policy =
  let net, hosts = star ~rate_bps:1e9 2 in
  let client_host = List.nth hosts 0 in
  let srv = Kv.server ~net ~host:1 ~default_value_bytes:1000 () in
  let cl = Kv.client ~net ~server:srv ~host:0 () in
  (* The stage needs a GET/PUT rule-set so packets carry classes. *)
  (match
     Stage.Api.create_stage_rule (Kv.stage cl) ~ruleset:"r1"
       ~classifier:[ ("msg_type", Classifier.eq_str "GET") ]
       ~class_name:"GET" ~metadata_fields:[ "msg_type"; "msg_size" ]
   with
  | Ok _ -> ()
  | Error m -> failwith m);
  (match
     Stage.Api.create_stage_rule (Kv.stage cl) ~ruleset:"r1"
       ~classifier:[ ("msg_type", Classifier.eq_str "PUT") ]
       ~class_name:"PUT" ~metadata_fields:[ "msg_type"; "msg_size" ]
   with
  | Ok _ -> ()
  | Error m -> failwith m);
  if policy then begin
    let e = Enclave.create ~host:0 () in
    (match
       Eden_functions.App_priority.install e ~match_msg_type:"GET" ~match_priority:6
         ~other_priority:1
     with
    | Ok () -> ()
    | Error m -> failwith m);
    Host.set_enclave client_host e
  end;
  (* Closed-loop bulk PUTs keep the uplink busy... *)
  let rec put_loop key () =
    Kv.put cl ~key ~size:500_000 ~on_reply:(fun _ -> put_loop key ()) ()
  in
  put_loop "bulk1" ();
  put_loop "bulk2" ();
  (* ...while periodic GETs measure request latency. *)
  let rec get_loop i =
    if i < 30 then
      Event.schedule_at (Net.event net) (Time.mul (Time.ms 3) i) (fun () ->
          Kv.get cl ~key:"hot" ();
          get_loop (i + 1))
  in
  get_loop 1;
  Net.run ~until:(Time.ms 120) net;
  let lats = Kv.get_latencies_us cl in
  check_bool "enough gets completed" true (List.length lats >= 20);
  List.fold_left ( +. ) 0.0 lats /. float_of_int (List.length lats)

let test_kv_get_prioritization () =
  let without = kv_qos_run ~policy:false in
  let with_policy = kv_qos_run ~policy:true in
  check_bool
    (Printf.sprintf "GET latency %.0fus (policy) << %.0fus (fifo)" with_policy without)
    true
    (with_policy < without /. 2.0)

(* ------------------------------------------------------------------ *)
(* Rpc plumbing *)

module Rpc = Eden_workloads.Rpc

let test_rpc_basics () =
  let net, _ = star 2 in
  let calls = ref [] in
  let endpoint =
    {
      Rpc.host = 1;
      port = 9999;
      handler =
        (fun md ->
          calls := Metadata.find_str "what" md :: !calls;
          1234);
      response_metadata = None;
    }
  in
  let cl = Rpc.connect ~net ~endpoint ~client_host:0 () in
  let replies = ref [] in
  for i = 1 to 5 do
    Rpc.call cl
      ~metadata:(Metadata.add "what" (Metadata.str (string_of_int i)) Metadata.empty)
      ~on_reply:(fun r -> replies := r :: !replies)
      ~request_bytes:100 ()
  done;
  Net.run net;
  check_int "handler saw all" 5 (List.length !calls);
  check_int "all replied" 5 (List.length !replies);
  check_int "completed counter" 5 (Rpc.completed cl);
  check_int "none outstanding" 0 (Rpc.outstanding cl);
  List.iter
    (fun (r : Rpc.reply) ->
      check_int "response size" 1234 r.Rpc.response_bytes;
      check_bool "latency > 0" true (Time.compare r.Rpc.latency Time.zero > 0))
    !replies

let test_rpc_concurrent_interleaving () =
  (* Replies match their calls even when many are outstanding. *)
  let net, _ = star 2 in
  let endpoint =
    {
      Rpc.host = 1;
      port = 9998;
      handler =
        (fun md ->
          Int64.to_int (Option.value ~default:1L (Metadata.find_int "want" md)));
      response_metadata = None;
    }
  in
  let cl = Rpc.connect ~net ~endpoint ~client_host:0 () in
  let mismatches = ref 0 in
  for i = 1 to 20 do
    let want = 100 * i in
    Rpc.call cl
      ~metadata:(Metadata.add "want" (Metadata.int want) Metadata.empty)
      ~on_reply:(fun r -> if r.Rpc.response_bytes <> want then incr mismatches)
      ~request_bytes:64 ()
  done;
  Net.run net;
  check_int "all matched" 0 !mismatches;
  check_int "all done" 20 (Rpc.completed cl)

(* ------------------------------------------------------------------ *)
(* HTTP application *)

module Http = Eden_workloads.Http_app

let test_http_routes () =
  let net, _ = star 2 in
  let srv = Http.server ~net ~host:1 ~default_response_bytes:4000 () in
  Http.set_route srv ~prefix:"/api/" ~response_bytes:500;
  Http.set_route srv ~prefix:"/static/" ~response_bytes:200_000;
  Http.set_route srv ~prefix:"/api/v2/" ~response_bytes:900;
  let cl = Http.client ~net ~server:srv ~host:0 () in
  let sizes = Hashtbl.create 4 in
  List.iter
    (fun url ->
      Http.fetch cl ~url ~on_reply:(fun r -> Hashtbl.replace sizes url r.Http.response_bytes) ())
    [ "/api/users"; "/api/v2/users"; "/static/logo.png"; "/unknown" ];
  Net.run net;
  check_int "api route" 500 (Hashtbl.find sizes "/api/users");
  check_int "longest prefix wins" 900 (Hashtbl.find sizes "/api/v2/users");
  check_int "static route" 200_000 (Hashtbl.find sizes "/static/logo.png");
  check_int "default" 4000 (Hashtbl.find sizes "/unknown");
  check_int "none pending" 0 (Http.outstanding cl)

let test_http_url_classification_drives_priorities () =
  (* Two clients: one fetches /api/ endpoints, the other hammers /static/
     bundles.  Both servers' responses share the server uplink; the
     server-side enclave prioritizes responses classified http.urls.API
     by the server's own stage (paper Table 2, HTTP-library row). *)
  let run ~policy =
    let net, hosts = star ~rate_bps:1e9 3 in
    let server_host = List.nth hosts 2 in
    let srv = Http.server ~net ~host:2 ~default_response_bytes:1000 () in
    Http.set_route srv ~prefix:"/api/" ~response_bytes:600;
    Http.set_route srv ~prefix:"/static/" ~response_bytes:400_000;
    (* The controller programs the server's stage: API responses get a
       class of their own. *)
    (match
       Stage.Api.create_stage_rule (Http.server_stage srv) ~ruleset:"urls"
         ~classifier:[ ("url", Classifier.Prefix "/api/") ]
         ~class_name:"API" ~metadata_fields:[ "url"; "msg_type" ]
     with
    | Ok _ -> ()
    | Error m -> failwith m);
    let api_client = Http.client ~net ~server:srv ~host:0 () in
    let bulk_client = Http.client ~net ~server:srv ~host:1 () in
    if policy then begin
      let e = Enclave.create ~host:2 () in
      (match
         Eden_functions.App_priority.install e
           ~pattern:(Option.get (Eden_base.Class_name.Pattern.of_string "http.urls.API"))
           ~match_msg_type:"RESPONSE" ~match_priority:6 ~other_priority:6
       with
      | Ok () -> ()
      | Error m -> failwith m);
      Host.set_enclave server_host e
    end;
    (* Saturate the server uplink with static responses... *)
    let rec static_loop () =
      Http.fetch bulk_client ~url:"/static/bundle.js" ~on_reply:(fun _ -> static_loop ()) ()
    in
    static_loop ();
    static_loop ();
    (* ...and sample API latency. *)
    let rec api_loop i =
      if i < 25 then
        Event.schedule_at (Net.event net) (Time.mul (Time.ms 3) i) (fun () ->
            Http.fetch api_client ~url:"/api/cart" ();
            api_loop (i + 1))
    in
    api_loop 1;
    Net.run ~until:(Time.ms 100) net;
    let lats = Http.latencies_us ~url_prefix:"/api/" api_client in
    check_bool "api calls completed" true (List.length lats >= 15);
    List.fold_left ( +. ) 0.0 lats /. float_of_int (List.length lats)
  in
  let without = run ~policy:false in
  let with_policy = run ~policy:true in
  check_bool
    (Printf.sprintf "api latency %.0fus (policy) << %.0fus (fifo)" with_policy without)
    true
    (with_policy < without /. 2.0)

(* ------------------------------------------------------------------ *)
(* Storage substrate *)

let test_storage_isolated_read_throughput () =
  let net, _ = star ~rate_bps:1e9 2 in
  let srv = Storage.server ~net ~host:1 ~disk_rate_bps:1e9 in
  let reader = Storage.read_client ~net ~server:srv ~host:0 ~tenant:0 () in
  Storage.start reader ~at:Time.zero;
  Net.run ~until:(Time.ms 200) net;
  let mbps =
    Storage.throughput_mbytes_per_sec reader ~since:(Time.ms 50) ~now:(Time.ms 200)
  in
  check_bool (Printf.sprintf "read throughput %.0f MB/s near line rate" mbps) true
    (mbps > 100.0 && mbps < 130.0)

let test_storage_reads_starve_writes_fifo () =
  let net, _ = star ~rate_bps:1e9 3 in
  let srv = Storage.server ~net ~host:2 ~disk_rate_bps:1e9 in
  let reader = Storage.read_client ~net ~server:srv ~host:0 ~tenant:0 () in
  let writer = Storage.write_client ~net ~server:srv ~host:1 ~tenant:1 () in
  Storage.start reader ~at:Time.zero;
  Storage.start writer ~at:Time.zero;
  Net.run ~until:(Time.ms 200) net;
  let r = Storage.throughput_mbytes_per_sec reader ~since:(Time.ms 50) ~now:(Time.ms 200) in
  let w = Storage.throughput_mbytes_per_sec writer ~since:(Time.ms 50) ~now:(Time.ms 200) in
  check_bool (Printf.sprintf "reads dominate (%.0f vs %.0f)" r w) true (r > 3.0 *. w)

let test_storage_ops_counted () =
  let net, _ = star ~rate_bps:1e9 2 in
  let srv = Storage.server ~net ~host:1 ~disk_rate_bps:1e9 in
  let writer = Storage.write_client ~net ~server:srv ~host:0 ~tenant:0 ~outstanding:2 () in
  Storage.start writer ~at:Time.zero;
  Net.run ~until:(Time.ms 50) net;
  check_bool "ops completed" true (Storage.ops_completed writer > 10);
  check_int "bytes consistent" (Storage.ops_completed writer * Storage.default_op_bytes)
    (Storage.bytes_completed writer)

let () =
  Alcotest.run "eden_workloads"
    [
      ( "memcached",
        [
          Alcotest.test_case "get/put roundtrip" `Quick test_kv_get_put_roundtrip;
          Alcotest.test_case "default value" `Quick test_kv_get_default_value;
          Alcotest.test_case "many operations" `Quick test_kv_many_operations;
          Alcotest.test_case "GET prioritization" `Quick test_kv_get_prioritization;
        ] );
      ( "rpc",
        [
          Alcotest.test_case "basics" `Quick test_rpc_basics;
          Alcotest.test_case "interleaving" `Quick test_rpc_concurrent_interleaving;
        ] );
      ( "http",
        [
          Alcotest.test_case "routes" `Quick test_http_routes;
          Alcotest.test_case "url classification" `Quick
            test_http_url_classification_drives_priorities;
        ] );
      ( "storage",
        [
          Alcotest.test_case "isolated read throughput" `Quick
            test_storage_isolated_read_throughput;
          Alcotest.test_case "reads starve writes" `Quick
            test_storage_reads_starve_writes_fifo;
          Alcotest.test_case "ops counted" `Quick test_storage_ops_counted;
        ] );
    ]
