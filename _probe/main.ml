open Eden_netsim
module Time = Eden_base.Time
let () =
  let net = Net.create ~seed:1L () in
  let sw = Net.add_switch net in
  let hosts = List.init 3 (fun _ -> Net.add_host net) in
  List.iter (fun h ->
    let port = Net.connect_host net h sw ~rate_bps:1e9 () in
    Switch.set_dst_route sw ~dst:(Host.id h) ~ports:[ port ]) hosts;
  let on_complete fc =
    Printf.printf "flow done: fct=%.3f ms retx=%d\n"
      (Time.to_ms (Time.sub fc.Tcp.Sender.fc_completed fc.Tcp.Sender.fc_started))
      fc.Tcp.Sender.fc_retransmissions in
  ignore (Net.start_flow net ~src:0 ~dst:2 ~size:2_500_000 ~on_complete ());
  ignore (Net.start_flow net ~src:1 ~dst:2 ~size:2_500_000 ~on_complete ());
  Net.run net
