(* CI perf-regression gate.

   Usage:
     dune exec bench/check_regress.exe -- --current BENCH_micro.json
         compare a bench --json output against bench/baseline.json;
         exit 1 on any regression (timing band, steps mismatch, or
         missing row), 0 otherwise.

     dune exec bench/check_regress.exe -- --update
         refresh the baseline in one command: run the bench's measured
         sections (quick, --json) and rewrite bench/baseline.json from
         the result, preserving the committed tolerance policy.

   Tolerances live in the baseline file, not here: the policy is
   reviewed with the numbers it judges.  Sections marked core_sensitive
   are skipped loudly when this machine has fewer cores than the one
   that recorded the baseline. *)

module Json = Eden_telemetry.Json
module Regress = Eden_telemetry.Regress

let default_baseline = "bench/baseline.json"
let measured_sections = [ "micro"; "analysis"; "resilience"; "parallel"; "telemetry" ]

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let fail fmt = Printf.ksprintf (fun msg -> prerr_endline ("check_regress: " ^ msg); exit 2) fmt

let load_json path =
  match Json.parse (read_file path) with
  | Ok j -> j
  | Error msg -> fail "%s: %s" path msg
  | exception Sys_error msg -> fail "%s" msg

let load_baseline path =
  match Regress.parse_baseline (load_json path) with
  | Ok b -> b
  | Error msg -> fail "%s: %s" path msg

let load_rows path =
  match Regress.parse_rows (load_json path) with
  | Ok rows -> rows
  | Error msg -> fail "%s: %s" path msg

(* Run the bench binary sitting next to this executable.  Calling the
   sibling directly (not through `dune exec`) keeps --update usable from
   inside a dune run without deadlocking on the build lock. *)
let run_bench ~json_out =
  let dir = Filename.dirname Sys.executable_name in
  let bench = Filename.concat dir "main.exe" in
  if not (Sys.file_exists bench) then
    fail "%s not found (build it first: dune build bench)" bench;
  let cmd =
    Filename.quote_command bench (measured_sections @ [ "quick"; "--json"; json_out ])
  in
  print_endline ("running: " ^ cmd);
  match Sys.command cmd with 0 -> () | n -> fail "bench run failed with exit code %d" n

let update ~baseline_path =
  let prev =
    if Sys.file_exists baseline_path then Some (load_baseline baseline_path) else None
  in
  let tmp = Filename.temp_file "bench_rows" ".json" in
  run_bench ~json_out:tmp;
  let rows = load_rows tmp in
  Sys.remove tmp;
  if rows = [] then fail "bench produced no rows";
  let cores = Domain.recommended_domain_count () in
  let b = Regress.baseline_of_rows ~prev ~cores rows in
  let oc = open_out baseline_path in
  output_string oc (Json.to_string_pretty (Regress.baseline_to_json b));
  output_string oc "\n";
  close_out oc;
  Printf.printf "wrote %s: %d rows, cores=%d\n" baseline_path (List.length b.Regress.b_rows)
    cores

let check ~baseline_path ~current_path =
  let b = load_baseline baseline_path in
  let rows = load_rows current_path in
  let report = Regress.compare b rows ~cores:(Domain.recommended_domain_count ()) in
  print_string (Regress.render report);
  if report.Regress.regressions > 0 then exit 1

let usage () =
  prerr_endline
    "usage: check_regress [--baseline FILE] (--current BENCH.json | --update)";
  exit 2

let () =
  let baseline = ref default_baseline in
  let current = ref None in
  let do_update = ref false in
  let rec parse = function
    | [] -> ()
    | "--baseline" :: f :: rest ->
      baseline := f;
      parse rest
    | "--current" :: f :: rest ->
      current := Some f;
      parse rest
    | "--update" :: rest ->
      do_update := true;
      parse rest
    | a :: _ ->
      prerr_endline ("check_regress: unknown argument " ^ a);
      usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  match (!do_update, !current) with
  | true, None -> update ~baseline_path:!baseline
  | false, Some cur -> check ~baseline_path:!baseline ~current_path:cur
  | true, Some _ | false, None -> usage ()
