(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation (§5) plus micro-benchmarks and ablations.

   Usage:
     dune exec bench/main.exe                 -- everything
     dune exec bench/main.exe -- fig9 fig11   -- selected sections
     dune exec bench/main.exe -- quick        -- everything, scaled down
     dune exec bench/main.exe -- micro --json BENCH_micro.json

   Sections: table1 table2 listings footprint micro analysis parallel
             telemetry fig9 fig10 fig11 fig12 resilience ablations

   [--json FILE] additionally writes the measured rows of the Bechamel
   sections (micro, analysis, resilience), the parallel scaling sweep
   and the telemetry overhead runs to FILE as a JSON array of {section,
   name, params, ns_per_op, steps} objects, so CI can diff runs against
   bench/baseline.json (bench/check_regress.exe) without scraping the
   human tables. *)

module Time = Eden_base.Time
module Metadata = Eden_base.Metadata
module Addr = Eden_base.Addr
module Packet = Eden_base.Packet
module Enclave = Eden_enclave.Enclave
module Interp = Eden_bytecode.Interp
module P = Eden_bytecode.Program
module Stage = Eden_stage.Stage
module Builtin = Eden_stage.Builtin
module Channel = Eden_controller.Channel
module Controller = Eden_controller.Controller
open Eden_experiments

let section_header title =
  Printf.printf "\n%s\n%s\n%s\n" (String.make 78 '=') title (String.make 78 '=')

(* ------------------------------------------------------------------ *)
(* JSON result sink (--json FILE) *)

let json_rows : (string * string * float * int option) list ref = ref []
let bench_quick = ref false

let add_json ~section ?steps name ns = json_rows := (section, name, ns, steps) :: !json_rows

let write_json path =
  let rows = List.rev !json_rows in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "[\n";
  let n = List.length rows in
  List.iteri
    (fun i (section, name, ns, steps) ->
      Buffer.add_string buf
        (Printf.sprintf
           "  {\"section\": %S, \"name\": %S, \"params\": {\"quick\": %b}, \
            \"ns_per_op\": %.3f, \"steps\": %s}%s\n"
           section name !bench_quick ns
           (match steps with Some s -> string_of_int s | None -> "null")
           (if i < n - 1 then "," else "")))
    rows;
  Buffer.add_string buf "]\n";
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "\njson: %d rows written to %s\n" n path

(* ------------------------------------------------------------------ *)
(* Generic table printing *)

let print_table rows =
  match rows with
  | [] -> ()
  | header :: _ ->
    let cols = List.length header in
    let width c =
      List.fold_left (fun acc row -> max acc (String.length (List.nth row c))) 0 rows
    in
    let widths = List.init cols width in
    let print_row row =
      List.iteri
        (fun i cell -> Printf.printf "%-*s  " (List.nth widths i) cell)
        row;
      print_newline ()
    in
    print_row header;
    Printf.printf "%s\n" (String.make (List.fold_left ( + ) (2 * cols) widths) '-');
    List.iter print_row (List.tl rows)

(* ------------------------------------------------------------------ *)
(* Table 1 *)

let table1 () =
  section_header "Table 1: network functions and their data-plane requirements";
  print_table (Eden_functions.Catalog.to_table ())

(* ------------------------------------------------------------------ *)
(* Table 2: stage classification capabilities *)

let table2 () =
  section_header "Table 2: classification capabilities of the built-in stages";
  let stages =
    [ Builtin.memcached (); Builtin.http (); Builtin.storage (); Builtin.flow () ]
  in
  let rows =
    [ "Stage"; "Classifiers"; "Meta-data" ]
    :: List.map
         (fun st ->
           let info = Stage.Api.get_stage_info st in
           [
             info.Stage.stage_name;
             "<" ^ String.concat ", " info.Stage.classifier_fields ^ ">";
             "{msg_id"
             ^ (match info.Stage.metadata_fields with
               | [] -> "}"
               | fs -> ", " ^ String.concat ", " fs ^ "}");
           ])
         stages
  in
  print_table rows

(* ------------------------------------------------------------------ *)
(* Micro-benchmarks (Bechamel, on this machine's real interpreter) *)

let make_interp_env p =
  Interp.make_env p
    ~scalars:
      (Array.map
         (fun (s : P.scalar_slot) ->
           match s.P.s_name with
           | "Size" -> 1058L
           | "PayloadSize" -> 1000L
           | "FlowSize" -> 500_000L
           | "OpSize" -> 65_536L
           | "IsRead" -> 1L
           | "Tenant" -> 1L
           | "DstPort" -> 80L
           | "SrcHost" -> 1L
           | _ -> 0L)
         p.P.scalar_slots)
    ~arrays:
      (Array.map
         (fun (a : P.array_slot) ->
           match a.P.a_name with
           | "Thresholds" | "Limits" -> [| 10_240L; 1_048_576L |]
           | "Paths" -> [| 1L; 909L; 2L; 91L |]
           | "QueueMap" -> [| 0L; 1L |]
           | "Knocks" -> [| 1111L; 2222L; 3333L |]
           | "State" -> Array.make 16 0L
           | "ReplicaLabels" -> [| 301L; 302L |]
           | "Table" -> Array.init 64 (fun i -> Int64.of_int (i * 7))
           | _ -> [||])
         p.P.array_slots)

let pias_process_enclave variant =
  let e = Enclave.create ~host:1 () in
  (match Eden_functions.Pias.install ~variant e ~thresholds:[| 10_240L; 1_048_576L |] with
  | Ok () -> ()
  | Error msg -> invalid_arg msg);
  e

let bench_packet () =
  Packet.make ~id:1L
    ~flow:
      (Addr.five_tuple ~src:(Addr.endpoint 1 1000) ~dst:(Addr.endpoint 2 80)
         ~proto:Addr.Tcp)
    ~kind:Packet.Data ~payload:1000 ()

let run_bechamel tests =
  let open Bechamel in
  let ols = Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |] in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg instances (Test.make_grouped ~name:"micro" tests) in
  let results = List.map (fun i -> Analyze.all ols i raw) instances in
  let merged = Analyze.merge ols instances results in
  let clock_label = Measure.label Toolkit.Instance.monotonic_clock in
  let tbl = Hashtbl.find merged clock_label in
  Hashtbl.fold
    (fun name ols acc ->
      match Analyze.OLS.estimates ols with
      | Some (est :: _) -> (name, est) :: acc
      | Some [] | None -> acc)
    tbl []
  |> List.sort compare

(* Instructions a program retires on the bench environment — attached to
   the JSON rows so ns/op can be read as ns/step. *)
let program_steps p =
  let env = make_interp_env p in
  match Interp.run p ~env ~now:(Eden_base.Time.us 5) ~rng:(Eden_base.Rng.create 3L) with
  | Ok s -> s.Interp.steps
  | Error (_, s) -> s.Interp.steps

(* Steady-state allocation of the cached compiled data path: after the
   flow cache and marshal plans are warm, [process] must not allocate for
   marshalling or table lookup.  What remains above the no-policy
   baseline is the int64 boxing of scalar copy-in plus the cost
   accumulator's boxed floats — a small constant, asserted here so a
   regression (a stray [Array.map], option, or closure on the per-packet
   path) fails the bench loudly. *)
let allocation_words_budget = 64.0

let allocation_check () =
  let words_per_packet e =
    let pkt = bench_packet () in
    for i = 1 to 1_000 do
      ignore (Enclave.process e ~now:(Eden_base.Time.us i) pkt)
    done;
    let n = 10_000 in
    let before = Gc.minor_words () in
    for i = 1 to n do
      ignore (Enclave.process e ~now:(Eden_base.Time.us (1_000 + i)) pkt)
    done;
    (Gc.minor_words () -. before) /. float_of_int n
  in
  let base = words_per_packet (Enclave.create ~host:1 ()) in
  let compiled = words_per_packet (pias_process_enclave `Compiled) in
  let delta = compiled -. base in
  Printf.printf
    "\nallocation (minor words/packet): no-policy %.1f, compiled pias %.1f, delta %.1f \
     (budget %.0f)\n"
    base compiled delta allocation_words_budget;
  if delta > allocation_words_budget then begin
    Printf.printf
      "ALLOCATION REGRESSION: the cached compiled data path allocates %.1f words/packet \
       over the no-policy baseline\n"
      delta;
    exit 1
  end;
  (* The batched entry point must stay on the same budget: its
     per-packet grouping state is two preallocated refs, so the only
     extra allocation over [process] is the result list and decision
     records it returns. *)
  let batch_words_per_packet e =
    let pkts = List.init 32 (fun _ -> bench_packet ()) in
    for i = 1 to 100 do
      ignore (Enclave.process_batch e ~now:(Eden_base.Time.us i) pkts)
    done;
    let rounds = 400 in
    let before = Gc.minor_words () in
    for i = 1 to rounds do
      ignore (Enclave.process_batch e ~now:(Eden_base.Time.us (100 + i)) pkts)
    done;
    (Gc.minor_words () -. before) /. float_of_int (rounds * 32)
  in
  let batched = batch_words_per_packet (pias_process_enclave `Compiled) in
  Printf.printf
    "allocation (minor words/packet): compiled pias via process_batch %.1f (budget %.0f)\n"
    batched allocation_words_budget;
  if batched -. base > allocation_words_budget then begin
    Printf.printf
      "ALLOCATION REGRESSION: process_batch allocates %.1f words/packet over the \
       no-policy baseline\n"
      (batched -. base);
    exit 1
  end

let micro () =
  section_header "Micro-benchmarks: real interpreter cost on this machine (Bechamel)";
  let open Bechamel in
  let interp_test name program =
    let env = make_interp_env program in
    let rng = Eden_base.Rng.create 3L in
    Test.make ~name:("interp/" ^ name)
      (Staged.stage (fun () ->
           ignore (Interp.run program ~env ~now:(Eden_base.Time.us 5) ~rng)))
  in
  let compiled_test name program =
    match Eden_bytecode.Compiled.compile program with
    | Error e -> invalid_arg (Eden_bytecode.Verifier.error_to_string e)
    | Ok cp ->
      let env = make_interp_env program in
      let rng = Eden_base.Rng.create 3L in
      Test.make ~name:("compiled/" ^ name)
        (Staged.stage (fun () ->
             ignore (Eden_bytecode.Compiled.exec cp ~env ~now:(Eden_base.Time.us 5) ~rng)))
  in
  let ei = pias_process_enclave `Interpreted in
  let en = pias_process_enclave `Native in
  let ec = pias_process_enclave `Compiled in
  let e0 = Enclave.create ~host:1 () in
  let pkt = bench_packet () in
  let stage = Builtin.memcached () in
  (match
     Stage.Api.create_stage_rule stage ~ruleset:"r1"
       ~classifier:[ (Builtin.Field.msg_type, Eden_stage.Classifier.eq_str "GET") ]
       ~class_name:"GET" ~metadata_fields:[ "msg_size" ]
   with
  | Ok _ -> ()
  | Error msg -> invalid_arg msg);
  let descriptor = Builtin.memcached_descriptor ~op:`Get ~key:"user:1" ~size:1024 in
  let scratch_test name program =
    let env = make_interp_env program in
    let scratch = Interp.make_scratch program in
    let rng = Eden_base.Rng.create 3L in
    Test.make ~name:("interp/" ^ name ^ " (scratch)")
      (Staged.stage (fun () ->
           ignore (Interp.run ~scratch program ~env ~now:(Eden_base.Time.us 5) ~rng)))
  in
  let engine_subjects =
    [
      ("pias", Eden_functions.Pias.program ());
      ("wcmp", Eden_functions.Wcmp.program ());
      ("pulsar", Eden_functions.Pulsar.program ());
      ("port_knocking", Eden_functions.Port_knocking.program ());
    ]
  in
  let tests =
    List.map (fun (n, p) -> interp_test n p) engine_subjects
    @ [ scratch_test "pias" (Eden_functions.Pias.program ()) ]
    @ List.map (fun (n, p) -> compiled_test n p) engine_subjects
    @ [
        Test.make ~name:"enclave/process interpreted pias"
          (Staged.stage (fun () -> ignore (Enclave.process ei ~now:(Eden_base.Time.us 1) pkt)));
        Test.make ~name:"enclave/process compiled pias"
          (Staged.stage (fun () -> ignore (Enclave.process ec ~now:(Eden_base.Time.us 1) pkt)));
        Test.make ~name:"enclave/process native pias"
          (Staged.stage (fun () -> ignore (Enclave.process en ~now:(Eden_base.Time.us 1) pkt)));
        Test.make ~name:"enclave/process no-policy"
          (Staged.stage (fun () -> ignore (Enclave.process e0 ~now:(Eden_base.Time.us 1) pkt)));
        Test.make ~name:"stage/classify memcached"
          (Staged.stage (fun () -> ignore (Stage.classify stage descriptor)));
        Test.make ~name:"compiler/compile pias"
          (Staged.stage (fun () ->
               ignore
                 (Eden_lang.Compile.compile Eden_functions.Pias.schema
                    Eden_functions.Pias.action)));
      ]
  in
  let results = run_bechamel tests in
  let steps_of name =
    List.find_map
      (fun (n, p) ->
        if
          String.equal name ("micro/interp/" ^ n)
          || String.equal name ("micro/compiled/" ^ n)
          || String.equal name ("micro/interp/" ^ n ^ " (scratch)")
        then Some (program_steps p)
        else None)
      engine_subjects
  in
  Printf.printf "%-42s %14s\n" "benchmark" "ns/iteration";
  Printf.printf "%s\n" (String.make 58 '-');
  List.iter
    (fun (name, ns) ->
      add_json ~section:"micro" ?steps:(steps_of name) name ns;
      Printf.printf "%-42s %14.1f\n" name ns)
    results;
  (* Interpreted-vs-compiled: the tentpole's payoff, per function. *)
  Printf.printf "\ncompiled engine vs checked interpreter (same programs, same envs):\n";
  List.iter
    (fun (n, _) ->
      match
        ( List.assoc_opt ("micro/interp/" ^ n) results,
          List.assoc_opt ("micro/compiled/" ^ n) results )
      with
      | Some i, Some c when c > 0.0 ->
        Printf.printf "  %-16s interp %8.1f ns -> compiled %8.1f ns  (%.1fx)\n" n i c
          (i /. c)
      | _ -> ())
    engine_subjects;
  (* Calibration: ns per interpreter step for PIAS. *)
  (match List.assoc_opt "micro/interp/pias" results with
  | Some ns -> (
    let p = Eden_functions.Pias.program () in
    let env = make_interp_env p in
    match Interp.run p ~env ~now:(Eden_base.Time.us 5) ~rng:(Eden_base.Rng.create 3L) with
    | Ok stats ->
      Printf.printf
        "\ncalibration: PIAS runs %d steps -> measured %.2f ns/step (cost model: %.1f)\n"
        stats.Interp.steps
        (ns /. float_of_int stats.Interp.steps)
        Eden_enclave.Cost.os_model.Eden_enclave.Cost.per_step_ns
    | Error _ -> ())
  | None -> ());
  (* Flow-cache behaviour under a many-flow workload: the per-table
     match-action cache is bounded ([flow_cache_capacity]), so a stream
     of more distinct class vectors than the capacity churns it. *)
  let e = pias_process_enclave `Compiled in
  let n_flows = 64 in
  let pkts =
    Array.init n_flows (fun i ->
        Packet.make ~id:(Int64.of_int i)
          ~flow:
            (Addr.five_tuple ~src:(Addr.endpoint 1 (1000 + i)) ~dst:(Addr.endpoint 2 80)
               ~proto:Addr.Tcp)
          ~kind:Packet.Data ~payload:1000 ())
  in
  for i = 0 to 9_999 do
    ignore (Enclave.process e ~now:(Eden_base.Time.us (i + 1)) pkts.(i mod n_flows))
  done;
  let c = Enclave.counters e in
  Printf.printf
    "\nflow cache (capacity %d): 10k packets over %d flows -> %d hits, %d misses, %d \
     evictions (the cache keys on class vectors; metadata-less flows share one)\n"
    (Enclave.flow_cache_capacity e) n_flows c.Enclave.cache_hits c.Enclave.cache_misses
    c.Enclave.cache_evictions;
  allocation_check ()

(* ------------------------------------------------------------------ *)
(* Install-time analysis: analyzer cost and the unchecked-path payoff *)

(* A synthetic subject where proved array loads dominate: a 64-entry
   table scan.  The paper functions touch their arrays a handful of times
   per packet, so the per-access saving drowns in interpreter dispatch;
   this one makes it visible. *)
let table_scan_program () =
  let a =
    let open Eden_lang.Dsl in
    action "table_scan"
      (let_mut "i" (int 0) @@ fun i ->
       let_mut "acc" (int 0) @@ fun acc ->
       while_ (i < glob_arr_len "Table")
         (assign "acc" (acc + glob_arr "Table" i) ^^ assign "i" (i + int 1))
       ^^ set_pkt "Priority" (acc % int 8))
  in
  let schema =
    Eden_lang.Schema.with_standard_packet
      ~global_arrays:[ Eden_lang.Schema.array ~min_length:64 "Table" ] ()
  in
  match Eden_lang.Compile.compile schema a with
  | Ok p -> p
  | Error e -> invalid_arg (Eden_lang.Compile.error_to_string e)

let analysis () =
  section_header
    "Install-time analysis: analyzer cost and the unchecked fast path";
  let open Bechamel in
  let analyze_test name schema action =
    Test.make ~name:("analyze/" ^ name)
      (Staged.stage (fun () -> ignore (Eden_analysis.Analyze.run schema action)))
  in
  let interp_pair name program =
    let bounds, hardened = Eden_analysis.Bounds.of_program program in
    let t p tag =
      let env = make_interp_env p in
      let scratch = Interp.make_scratch p in
      let rng = Eden_base.Rng.create 3L in
      Test.make ~name:(Printf.sprintf "interp/%s (%s)" name tag)
        (Staged.stage (fun () ->
             ignore (Interp.run ~scratch p ~env ~now:(Eden_base.Time.us 5) ~rng)))
    in
    (bounds, [ t program "checked"; t hardened "unchecked" ])
  in
  let subjects =
    [
      ("wcmp", Eden_functions.Wcmp.program ());
      ("pias", Eden_functions.Pias.program ());
      ("port_knocking", Eden_functions.Port_knocking.program ());
      ("table_scan", table_scan_program ());
    ]
  in
  let pairs = List.map (fun (n, p) -> (n, interp_pair n p)) subjects in
  let tests =
    analyze_test "wcmp" Eden_functions.Wcmp.schema Eden_functions.Wcmp.action
    :: analyze_test "pias" Eden_functions.Pias.schema Eden_functions.Pias.action
    :: analyze_test "sff" Eden_functions.Sff.schema Eden_functions.Sff.action
    :: List.concat_map (fun (_, (_, ts)) -> ts) pairs
  in
  let results = run_bechamel tests in
  Printf.printf "%-42s %14s\n" "benchmark" "ns/iteration";
  Printf.printf "%s\n" (String.make 58 '-');
  List.iter
    (fun (name, ns) ->
      add_json ~section:"analysis" name ns;
      Printf.printf "%-42s %14.1f\n" name ns)
    results;
  Printf.printf "\nunchecked-path payoff (bounds proofs -> no per-access checks):\n";
  List.iter
    (fun (name, (bounds, _)) ->
      match
        ( List.assoc_opt (Printf.sprintf "micro/interp/%s (checked)" name) results,
          List.assoc_opt (Printf.sprintf "micro/interp/%s (unchecked)" name) results
        )
      with
      | Some c, Some u ->
        Printf.printf
          "  %-14s %d/%d accesses proved: checked %7.1f ns -> unchecked %7.1f ns \
           (%+.1f%%)\n"
          name bounds.Eden_analysis.Bounds.proved bounds.Eden_analysis.Bounds.total c
          u
          ((u -. c) /. c *. 100.0)
      | _ -> ())
    pairs

(* ------------------------------------------------------------------ *)
(* Ablations *)

let ablation_message_vs_packet_wcmp quick =
  Printf.printf "\nAblation: packet-level vs message-level WCMP (Fig. 2's two functions)\n";
  let params =
    if quick then { Fig10.default_params with runs = 2; duration = Time.ms 100 }
    else { Fig10.default_params with runs = 3 }
  in
  let pkt = Fig10.run_config params Fig10.Wcmp Fig10.Eden in
  let message_goodput =
    let open Eden_netsim in
    let run seed =
      let net = Net.create ~seed () in
      let sa = Net.add_switch net in
      let sb = Net.add_switch net in
      let h0 = Net.add_host net in
      let h1 = Net.add_host net in
      let p0 = Net.connect_host net h0 sa ~rate_bps:20e9 () in
      Switch.set_dst_route sa ~dst:(Host.id h0) ~ports:[ p0 ];
      let p1 = Net.connect_host net h1 sb ~rate_bps:20e9 () in
      Switch.set_dst_route sb ~dst:(Host.id h1) ~ports:[ p1 ];
      let fa, fb = Net.connect_switches net sa sb ~rate_bps:10e9 () in
      let sl_a, _ = Net.connect_switches net sa sb ~rate_bps:1e9 () in
      Switch.set_label_route sa ~label:1 ~port:fa;
      Switch.set_label_route sa ~label:2 ~port:sl_a;
      Switch.set_label_route sb ~label:1 ~port:p1;
      Switch.set_label_route sb ~label:2 ~port:p1;
      Switch.set_dst_route sb ~dst:(Host.id h0) ~ports:[ fb ];
      Switch.set_dst_route sa ~dst:(Host.id h1) ~ports:[ fa ];
      let e = Enclave.create ~placement:Enclave.Nic ~host:(Host.id h0) ~seed () in
      (match
         Eden_functions.Wcmp.install ~variant:`Message e ~matrix:[| 1L; 909L; 2L; 91L |]
       with
      | Ok () -> ()
      | Error msg -> invalid_arg msg);
      Host.set_enclave h0 e;
      (* Message-level balancing needs many concurrent messages; run 16
         flows (each flow = one message under enclave classification). *)
      let flows =
        List.init 16 (fun _ -> Net.open_flow net ~src:(Host.id h0) ~dst:(Host.id h1) ())
      in
      List.iter
        (fun f ->
          Tcp.Sender.send_message f.Net.f_sender 80_000_000;
          Tcp.Sender.close f.Net.f_sender)
        flows;
      Net.run ~until:params.Fig10.duration net;
      let bytes =
        List.fold_left
          (fun acc f -> acc + Tcp.Receiver.bytes_delivered f.Net.f_receiver)
          0 flows
      in
      Eden_base.Stats.mbps ~bytes_transferred:bytes ~duration:params.Fig10.duration
    in
    (run 77L +. run 78L) /. 2.0
  in
  Printf.printf "  per-packet WCMP : %8.0f Mbps (max balance, TCP reordering)\n"
    pkt.Fig10.goodput_mbps;
  Printf.printf "  per-message WCMP: %8.0f Mbps (no reordering, coarser balance)\n"
    message_goodput

let ablation_concurrency () =
  Printf.printf "\nAblation: concurrency level derived from access annotations (§3.4.4)\n";
  let e = Enclave.create ~host:1 () in
  let install name f = match f with Ok () -> ignore name | Error m -> invalid_arg m in
  install "pias" (Eden_functions.Pias.install e ~thresholds:[| 10_240L |]);
  install "sff" (Eden_functions.Sff.install e ~thresholds:[| 10_240L |]);
  install "wcmp" (Eden_functions.Wcmp.install e ~matrix:[| 1L; 1000L |]);
  install "knock"
    (Eden_functions.Port_knocking.install e ~knocks:[ 1; 2 ] ~protected_port:22
       ~max_hosts:4);
  List.iter
    (fun name ->
      match Enclave.concurrency_of e name with
      | Some level ->
        Printf.printf "  %-16s %s\n" name
          (match level with
          | `Parallel -> "parallel (read-only state)"
          | `Per_message -> "per-message (writes message state)"
          | `Serial -> "serial (writes global state)")
      | None -> ())
    [ "sff"; "wcmp"; "pias"; "port_knocking" ]

let ablation_fault_isolation () =
  Printf.printf "\nAblation: fault isolation — a faulty action cannot take the host down\n";
  let e = Enclave.create ~host:1 () in
  (* An action that loops forever: the step budget terminates it. *)
  let looping =
    let open Eden_lang.Dsl in
    action "looper" (while_ tru (set_pkt "Priority" (int 1)))
  in
  let p =
    match
      Eden_lang.Compile.compile ~step_limit:2_000
        (Eden_lang.Schema.with_standard_packet ())
        looping
    with
    | Ok p -> p
    | Error e -> invalid_arg (Eden_lang.Compile.error_to_string e)
  in
  (match
     Enclave.install_action e
       { Enclave.i_name = "looper"; i_impl = Enclave.Interpreted p; i_msg_sources = [] }
   with
  | Ok () -> ()
  | Error msg -> invalid_arg msg);
  (match
     Enclave.add_table_rule e ~pattern:Eden_base.Class_name.Pattern.any ~action:"looper" ()
   with
  | Ok _ -> ()
  | Error msg -> invalid_arg msg);
  let pkt = bench_packet () in
  let forwarded = ref 0 in
  for i = 1 to 1000 do
    match Enclave.process e ~now:(Time.us i) pkt with
    | Enclave.Forward _ -> incr forwarded
    | Enclave.Dropped _ -> ()
  done;
  let c = Enclave.counters e in
  Printf.printf
    "  1000 packets through an infinitely-looping action: %d forwarded, %d faults recorded\n"
    !forwarded c.Enclave.faults;
  match Enclave.faults e with
  | { Enclave.fr_fault = Eden_bytecode.Interp.Step_limit_exceeded _; _ } :: _ ->
    Printf.printf "  every invocation was cut off by the %d-step budget (fail-open)\n" 2_000
  | _ -> Printf.printf "  unexpected fault kind\n"

let ablation_reorder_tolerant_tcp quick =
  Printf.printf
    "\nAblation: vanilla vs reorder-tolerant TCP under per-packet WCMP (paper 5.2, [53])\n";
  let base =
    if quick then { Fig10.default_params with runs = 2; duration = Time.ms 100 }
    else { Fig10.default_params with runs = 3 }
  in
  List.iter
    (fun threshold ->
      let params = { base with Fig10.dupack_threshold = threshold } in
      let r = Fig10.run_config params Fig10.Wcmp Fig10.Eden in
      Printf.printf "  dupack threshold %3d: %8.0f Mbps (retx/run %d)\n" threshold
        r.Fig10.goodput_mbps r.Fig10.retransmissions)
    [ 3; 10; 50 ];
  Printf.printf "  (min-cut of the topology: 11000 Mbps)\n"

let ablation_batching () =
  Printf.printf "\nAblation: IO batching amortizes classification (paper 6)\n";
  let overhead batch =
    let e = pias_process_enclave `Interpreted in
    let f =
      Addr.five_tuple ~src:(Addr.endpoint 1 1000) ~dst:(Addr.endpoint 2 80) ~proto:Addr.Tcp
    in
    let n = 20_000 in
    let i = ref 0 in
    while !i < n do
      let batch_pkts =
        List.init (min batch (n - !i)) (fun k ->
            Packet.make ~id:(Int64.of_int (!i + k)) ~flow:f ~kind:Packet.Data
              ~payload:1000 ())
      in
      ignore (Enclave.process_batch e ~now:(Time.us !i) batch_pkts);
      i := !i + batch
    done;
    Eden_enclave.Cost.Accum.overhead_pct (Enclave.cost e) ~api:true ~enclave:true
      ~interp:true
  in
  List.iter
    (fun b -> Printf.printf "  batch %3d: total overhead %5.2f%%\n" b (overhead b))
    [ 1; 8; 32 ]

let ablation_pias_over_dctcp quick =
  Printf.printf
    "\nAblation: PIAS over vanilla TCP vs DCTCP (PIAS's native transport)\n";
  let base =
    if quick then
      { Fig9.default_params with runs = 2; duration = Time.ms 120; link_rate_bps = 10e9 }
    else { Fig9.default_params with runs = 3; link_rate_bps = 10e9 }
  in
  List.iter
    (fun ecn ->
      let r = Fig9.run_config { base with Fig9.ecn } Fig9.Pias Fig9.Eden in
      Printf.printf "  %-12s small avg %6.0fus p95 %6.0fus | inter avg %6.0fus p95 %6.0fus\n"
        (if ecn then "DCTCP" else "vanilla TCP")
        r.Fig9.small.Fig9.avg_us r.Fig9.small.Fig9.p95_us r.Fig9.intermediate.Fig9.avg_us
        r.Fig9.intermediate.Fig9.p95_us)
    [ false; true ]

let ablations quick =
  section_header "Ablations";
  ablation_message_vs_packet_wcmp quick;
  ablation_reorder_tolerant_tcp quick;
  ablation_pias_over_dctcp quick;
  ablation_batching ();
  ablation_concurrency ();
  ablation_fault_isolation ()

(* ------------------------------------------------------------------ *)
(* Resilience: the robustness machinery must be free on the fault-free
   hot path.  Three measured claims:

   - the per-action circuit breaker, OFF by default, adds nothing to
     [process]; enabled-but-healthy it adds only the admit/record pair,
     and a quarantined action is *cheaper* than a healthy one (the whole
     point of quarantine is not paying for a failing invocation);
   - a control-plane op through the fallible channel costs only op-id
     memoization over the direct enclave call, and the full controller
     broadcast (retry wrapper + desired store + two-phase commit) stays
     in the same order of magnitude — none of it is per-packet;
   - the breaker's bookkeeping allocates nothing: the enabled-healthy
     data path stays within a few words of the disabled one, asserted
     like the main allocation budget. *)

let breaker_allocation_budget = 8.0

let resilience () =
  section_header "Resilience: fault machinery off the fault-free hot path";
  let open Bechamel in
  let pkt = bench_packet () in
  let e_off = pias_process_enclave `Compiled in
  let e_on = pias_process_enclave `Compiled in
  Enclave.set_breaker e_on (Some Enclave.default_breaker);
  (* An action that faults on every invocation (division by a zeroed
     global), so the breaker trips and steady state is the quarantined
     fall-through. *)
  let e_quar =
    let open Eden_lang in
    let schema = Schema.with_standard_packet ~global:[ Schema.field "D" ] () in
    let act = Dsl.(action "divider" (set_pkt "Priority" (int 6 / glob "D"))) in
    let program =
      match Compile.compile schema act with
      | Ok p -> p
      | Error e -> invalid_arg (Compile.error_to_string e)
    in
    let e = Enclave.create ~host:9 () in
    let ok = function Ok _ -> () | Error msg -> invalid_arg msg in
    ok
      (Enclave.install_action e
         { Enclave.i_name = "divider"; i_impl = Enclave.Compiled program; i_msg_sources = [] });
    ok (Enclave.set_global e ~action:"divider" "D" 0L);
    ok (Enclave.add_table_rule e ~pattern:Eden_base.Class_name.Pattern.any ~action:"divider" ());
    e
  in
  Enclave.set_breaker e_quar
    (Some { Enclave.default_breaker with Enclave.br_cooldown = Eden_base.Time.ms 100_000 });
  for i = 1 to 100 do
    ignore (Enclave.process e_quar ~now:(Eden_base.Time.us i) pkt)
  done;
  assert (Enclave.breaker_state e_quar "divider" = Some `Open);
  let e_direct = pias_process_enclave `Compiled in
  let ch = Channel.create (pias_process_enclave `Compiled) in
  let ch_op_id = ref 0L in
  let ctl = Controller.create () in
  Controller.register_enclave ctl (Enclave.create ~host:7 ());
  (match Controller.install_action_everywhere ctl (Eden_functions.Pias.spec ()) with
  | Ok () -> ()
  | Error msg -> invalid_arg msg);
  let tests =
    [
      Test.make ~name:"process/breaker off (default)"
        (Staged.stage (fun () -> ignore (Enclave.process e_off ~now:(Eden_base.Time.us 1) pkt)));
      Test.make ~name:"process/breaker on, healthy"
        (Staged.stage (fun () -> ignore (Enclave.process e_on ~now:(Eden_base.Time.us 1) pkt)));
      Test.make ~name:"process/breaker on, quarantined"
        (Staged.stage (fun () ->
             ignore (Enclave.process e_quar ~now:(Eden_base.Time.us 200) pkt)));
      Test.make ~name:"control/set_global direct"
        (Staged.stage (fun () ->
             ignore (Enclave.set_global e_direct ~action:"pias" "K" 1L)));
      Test.make ~name:"control/set_global via channel"
        (Staged.stage (fun () ->
             ch_op_id := Int64.add !ch_op_id 1L;
             ignore
               (Channel.send ch ~op_id:!ch_op_id ~gen:1
                  (Channel.Set_global { action = "pias"; name = "K"; value = 1L }))));
      Test.make ~name:"control/set_global_everywhere"
        (Staged.stage (fun () ->
             ignore (Controller.set_global_everywhere ctl ~action:"pias" "K" 1L)));
    ]
  in
  let results = run_bechamel tests in
  List.iter
    (fun (name, ns) ->
      Printf.printf "  %-40s %10.1f ns/op\n" name ns;
      add_json ~section:"resilience" name ns)
    results;
  (* Allocation: enabling the breaker must not put allocation on the
     per-packet path. *)
  let words_per_packet e =
    for i = 1 to 1_000 do
      ignore (Enclave.process e ~now:(Eden_base.Time.us i) pkt)
    done;
    let n = 10_000 in
    let before = Gc.minor_words () in
    for i = 1 to n do
      ignore (Enclave.process e ~now:(Eden_base.Time.us (1_000 + i)) pkt)
    done;
    (Gc.minor_words () -. before) /. float_of_int n
  in
  let off = words_per_packet e_off in
  let on = words_per_packet e_on in
  let delta = on -. off in
  Printf.printf
    "\nallocation (minor words/packet): breaker off %.1f, breaker on %.1f, delta %.1f \
     (budget %.0f)\n"
    off on delta breaker_allocation_budget;
  if delta > breaker_allocation_budget then begin
    Printf.printf
      "ALLOCATION REGRESSION: the enabled-healthy breaker path allocates %.1f \
       words/packet over the disabled one\n"
      delta;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Parallel sharded data path: throughput scaling across worker domains
   (Shard).  Packets are prebuilt and fed fire-and-forget through the
   SPSC rings; wall-clock over the whole stream gives pps.  On a
   single-core container the sweep still runs (workers park on condvars,
   the feeder blocks on full rings) but shows no speedup, so the scaling
   assertion below is gated on the machine actually having cores. *)

let parallel_bench quick =
  section_header "Parallel sharded data path (RSS-style flow sharding)";
  let module Shard = Eden_enclave.Shard in
  let n_packets = if quick then 20_000 else 120_000 in
  let shard_counts = [ 1; 2; 4; 8 ] in
  let pool_mask = 4095 in
  let mk_flow i =
    Addr.five_tuple
      ~src:(Addr.endpoint 1 (1000 + (i mod 64)))
      ~dst:(Addr.endpoint 2 80) ~proto:Addr.Tcp
  in
  let mk_pool md_of =
    Array.init (pool_mask + 1) (fun i ->
        Packet.make ~id:(Int64.of_int i) ~flow:(mk_flow i) ~kind:Packet.Data ~seq:i
          ~payload:(200 + (113 * i mod 1200))
          ~metadata:(md_of i) ())
  in
  let plain_pool = mk_pool (fun _ -> Metadata.empty) in
  let storage_pool =
    (* Pulsar only fires on storage-stage classes; give it its own
       workload of READ/WRITE ops spread over 64 messages and 3 tenants. *)
    mk_pool (fun i ->
        let op = if i mod 2 = 0 then "READ" else "WRITE" in
        let md = Metadata.with_msg_id (Int64.of_int (100 + (i mod 64))) Metadata.empty in
        let md =
          Metadata.add_class
            (Eden_base.Class_name.v ~stage:"storage" ~ruleset:"ops" ~name:op)
            md
        in
        let md = Metadata.add "operation" (Metadata.str op) md in
        let md = Metadata.add "tenant" (Metadata.int (i mod 3)) md in
        Metadata.add "msg_size" (Metadata.int (512 * (1 + (i mod 7)))) md)
  in
  let sff_pool =
    mk_pool (fun i -> Eden_functions.Sff.metadata_for ~size:(512 * (1 + (i mod 9))))
  in
  let subjects =
    [
      ( "wcmp",
        (fun e v ->
          Eden_functions.Wcmp.install
            ~variant:(match v with `Interp -> `Packet | `Compiled -> `Compiled)
            e
            ~matrix:(Eden_functions.Wcmp.ecmp_matrix ~labels:[ 1; 2; 3 ])),
        plain_pool );
      ( "pias",
        (fun e v ->
          Eden_functions.Pias.install
            ~variant:(match v with `Interp -> `Interpreted | `Compiled -> `Compiled)
            e ~thresholds:[| 10_240L; 1_048_576L |]),
        plain_pool );
      ( "pulsar",
        (fun e v ->
          Eden_functions.Pulsar.install
            ~variant:(match v with `Interp -> `Interpreted | `Compiled -> `Compiled)
            e ~queue_map:[| 1; 2; 3 |]),
        storage_pool );
      ( "sff",
        (fun e v ->
          Eden_functions.Sff.install
            ~variant:(match v with `Interp -> `Interpreted | `Compiled -> `Compiled)
            e ~thresholds:[| 1024L; 4096L |]),
        sff_pool );
    ]
  in
  let measure install pool variant shards =
    let e = Enclave.create ~host:1 () in
    (match install e variant with Ok () -> () | Error msg -> invalid_arg msg);
    match Eden_enclave.Shard.create ~shards ~parallel:true e with
    | Error msg -> invalid_arg msg
    | Ok s ->
      let now = ref 0 in
      let feed n =
        for _ = 1 to n do
          incr now;
          Shard.feed s ~now:(Time.us !now) pool.(!now land pool_mask)
        done;
        Shard.drain s
      in
      feed 2_000;
      let t0 = Unix.gettimeofday () in
      feed n_packets;
      let dt = Unix.gettimeofday () -. t0 in
      let c = Shard.counters s in
      if c.Enclave.packets < n_packets then invalid_arg "parallel bench lost packets";
      Shard.stop s;
      float_of_int n_packets /. dt
  in
  Printf.printf "throughput (Mpps), %d-packet stream, %d flows/messages:\n\n" n_packets 64;
  Printf.printf "%-20s" "function/engine";
  List.iter (fun n -> Printf.printf "%10s" (Printf.sprintf "%d shard%s" n (if n = 1 then "" else "s"))) shard_counts;
  Printf.printf "%12s\n" "4v1 speedup";
  Printf.printf "%s\n" (String.make 72 '-');
  let speedups = Hashtbl.create 8 in
  List.iter
    (fun (name, install, pool) ->
      List.iter
        (fun (vlabel, variant) ->
          let pps =
            List.map
              (fun shards ->
                let pps = measure install pool variant shards in
                add_json ~section:"parallel"
                  (Printf.sprintf "parallel/%s/%s/shards=%d" name vlabel shards)
                  (1e9 /. pps);
                (shards, pps))
              shard_counts
          in
          let p1 = List.assoc 1 pps and p4 = List.assoc 4 pps in
          Hashtbl.replace speedups (name, vlabel) (p4 /. p1);
          Printf.printf "%-20s" (name ^ "/" ^ vlabel);
          List.iter (fun (_, p) -> Printf.printf "%10.2f" (p /. 1e6)) pps;
          Printf.printf "%11.2fx\n" (p4 /. p1))
        [ ("interp", `Interp); ("compiled", `Compiled) ])
    subjects;
  let cores = Domain.recommended_domain_count () in
  let sp = try Hashtbl.find speedups ("pias", "compiled") with Not_found -> 0.0 in
  if cores >= 4 then begin
    Printf.printf "\ncompiled PIAS at 4 shards: %.2fx vs 1 shard (%d cores, require >= 1.6x)\n"
      sp cores;
    if sp < 1.6 then begin
      Printf.printf
        "PARALLEL SCALING REGRESSION: compiled PIAS speedup %.2fx at 4 shards < 1.6x\n" sp;
      exit 1
    end
  end
  else
    Printf.printf
      "\ncompiled PIAS at 4 shards: %.2fx vs 1 shard — scaling assertion skipped: only %d \
       core%s available, 4-domain speedup is not measurable here\n"
      sp cores (if cores = 1 then "" else "s")

(* ------------------------------------------------------------------ *)
(* Telemetry overhead: the fully instrumented data path (stage-timing
   histograms on, flight recorder attached at 1-in-64) vs the bare one
   (timing off, no recorder; the plain counters are part of the data
   path and stay on in both).  The budget is the DESIGN.md contract:
   instrumentation must cost < 3% of compiled-PIAS throughput.  1 shard
   runs inline (serial replay — a clean per-packet cost comparison
   anywhere); 4 shards run real domains and are measured only when the
   machine has the cores, like the parallel sweep. *)

let telemetry_overhead_budget_pct = 3.0

let telemetry_bench quick =
  section_header "Telemetry: instrumented vs bare data path (compiled PIAS)";
  let module Shard = Eden_enclave.Shard in
  let n_packets = if quick then 30_000 else 100_000 in
  let pool_mask = 4095 in
  let pool =
    Array.init (pool_mask + 1) (fun i ->
        Packet.make ~id:(Int64.of_int i)
          ~flow:
            (Addr.five_tuple
               ~src:(Addr.endpoint 1 (1000 + (i mod 64)))
               ~dst:(Addr.endpoint 2 80) ~proto:Addr.Tcp)
          ~kind:Packet.Data ~payload:1000 ())
  in
  (* Bare and instrumented trials interleave on ONE shard instance
     (set_timing / attach_traces are toggled between trials), so the two
     best-of-5 times see the same memory layout, the same cache warmth
     and the same share of machine noise — comparing two separately
     created instances on a busy box swamps a 3% budget with variance. *)
  let measure_pair ~shards =
    let e = pias_process_enclave `Compiled in
    match Shard.create ~shards ~parallel:(shards > 1) e with
    | Error msg -> invalid_arg msg
    | Ok s ->
      let now = ref 0 in
      let feed n =
        for _ = 1 to n do
          incr now;
          Shard.feed s ~now:(Time.us !now) pool.(!now land pool_mask)
        done;
        Shard.drain s
      in
      let time_one instrumented =
        Shard.set_timing s instrumented;
        if instrumented then Shard.attach_traces s ~every:64 ()
        else Shard.detach_traces s;
        feed 2_000;
        let t0 = Unix.gettimeofday () in
        feed n_packets;
        Unix.gettimeofday () -. t0
      in
      let best_bare = ref infinity and best_inst = ref infinity in
      for _ = 1 to 5 do
        let b = time_one false in
        if b < !best_bare then best_bare := b;
        let i = time_one true in
        if i < !best_inst then best_inst := i
      done;
      Shard.stop s;
      let n = float_of_int n_packets in
      (n /. !best_bare, n /. !best_inst)
  in
  let cores = Domain.recommended_domain_count () in
  let configs = if cores >= 4 then [ 1; 4 ] else [ 1 ] in
  let overhead_pct (bare, inst) = (bare -. inst) /. bare *. 100.0 in
  let suspects =
    List.filter_map
      (fun shards ->
        let ((bare, inst) as pair) = measure_pair ~shards in
        let overhead = overhead_pct pair in
        add_json ~section:"telemetry"
          (Printf.sprintf "telemetry/pias/compiled/shards=%d/bare" shards)
          (1e9 /. bare);
        add_json ~section:"telemetry"
          (Printf.sprintf "telemetry/pias/compiled/shards=%d/instrumented" shards)
          (1e9 /. inst);
        Printf.printf
          "  %d shard%s: bare %.2f Mpps, instrumented %.2f Mpps, overhead %+.2f%% (budget %.0f%%)\n"
          shards
          (if shards = 1 then " " else "s")
          (bare /. 1e6) (inst /. 1e6) overhead telemetry_overhead_budget_pct;
        if overhead > telemetry_overhead_budget_pct then Some shards else None)
      configs
  in
  if cores < 4 then
    Printf.printf "  (4-shard run skipped: only %d core%s available)\n" cores
      (if cores = 1 then "" else "s");
  (* A busy machine can fake an overshoot; only fail when it reproduces. *)
  List.iter
    (fun shards ->
      let overhead = overhead_pct (measure_pair ~shards) in
      Printf.printf "  %d shard(s) re-measured: overhead %+.2f%%\n" shards overhead;
      if overhead > telemetry_overhead_budget_pct then begin
        Printf.printf
          "TELEMETRY OVERHEAD REGRESSION: instrumentation costs %.2f%% of compiled PIAS \
           throughput at %d shard(s) (budget %.0f%%), reproduced on re-measurement\n"
          overhead shards telemetry_overhead_budget_pct;
        exit 1
      end)
    suspects

(* ------------------------------------------------------------------ *)
(* Driver *)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let rec split sections json = function
    | [] -> (List.rev sections, json)
    | "--json" :: file :: rest -> split sections (Some file) rest
    | "--json" :: [] -> invalid_arg "--json requires a file argument"
    | a :: rest -> split (a :: sections) json rest
  in
  let args, json_file = split [] None args in
  let quick = List.mem "quick" args in
  bench_quick := quick;
  let sections = List.filter (fun a -> a <> "quick") args in
  let want s = sections = [] || List.mem s sections in
  let t0 = Unix.gettimeofday () in
  if want "table1" then table1 ();
  if want "table2" then table2 ();
  if want "listings" then begin
    section_header "Program listings (paper Figs. 2, 3, 4/7)";
    Listings.print ()
  end;
  if want "footprint" then begin
    section_header "Interpreter footprint (paper 5.4)";
    Footprint.print (Footprint.run ())
  end;
  if want "micro" then micro ();
  if want "analysis" then analysis ();
  if want "parallel" then parallel_bench quick;
  if want "telemetry" then telemetry_bench quick;
  if want "fig9" then begin
    section_header "Figure 9 (case study 1: flow scheduling)";
    let params =
      if quick then
        { Fig9.default_params with runs = 2; duration = Time.ms 120; link_rate_bps = 10e9 }
      else { Fig9.default_params with link_rate_bps = 10e9 }
    in
    Fig9.print (Fig9.run_all ~params ())
  end;
  if want "fig10" then begin
    section_header "Figure 10 (case study 2: WCMP load balancing)";
    let params =
      if quick then { Fig10.default_params with runs = 2; duration = Time.ms 100 }
      else Fig10.default_params
    in
    Fig10.print (Fig10.run_all ~params ())
  end;
  if want "fig11" then begin
    section_header "Figure 11 (case study 3: Pulsar rate control)";
    let params =
      if quick then { Fig11.default_params with duration = Time.ms 250 }
      else Fig11.default_params
    in
    Fig11.print (Fig11.run_all ~params ())
  end;
  if want "fig12" then begin
    section_header "Figure 12 (CPU overheads)";
    let params =
      if quick then { Fig12.default_params with duration = Time.ms 80 }
      else Fig12.default_params
    in
    Fig12.print (Fig12.run ~params ())
  end;
  if want "resilience" then resilience ();
  if want "ablations" then ablations quick;
  (match json_file with Some f -> write_json f | None -> ());
  Printf.printf "\nTotal wall time: %.1fs\n" (Unix.gettimeofday () -. t0)
