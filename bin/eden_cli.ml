(* The Eden command-line interface.

   A front door to the library: inspect the function catalog and stages,
   compile and disassemble action functions, and run the paper's
   experiments with custom parameters. *)

open Cmdliner
module Time = Eden_base.Time
open Eden_experiments

(* ------------------------------------------------------------------ *)
(* Common options *)

let duration_ms =
  let doc = "Simulated duration per run, in milliseconds." in
  Arg.(value & opt int 0 & info [ "d"; "duration-ms" ] ~doc ~docv:"MS")

let runs =
  let doc = "Number of independent runs (seeds)." in
  Arg.(value & opt int 0 & info [ "r"; "runs" ] ~doc ~docv:"N")

let override_duration ms default = if ms > 0 then Time.ms ms else default
let override_runs n default = if n > 0 then n else default

(* ------------------------------------------------------------------ *)
(* catalog / stages / listings / footprint *)

let catalog_cmd =
  let run () =
    List.iter
      (fun row -> print_endline (String.concat " | " row))
      (Eden_functions.Catalog.to_table ())
  in
  Cmd.v (Cmd.info "catalog" ~doc:"Print the network-function catalog (paper Table 1)")
    Term.(const run $ const ())

let stages_cmd =
  let run () =
    List.iter
      (fun st ->
        Format.printf "%a@." Eden_stage.Stage.pp st)
      [
        Eden_stage.Builtin.memcached ();
        Eden_stage.Builtin.http ();
        Eden_stage.Builtin.storage ();
        Eden_stage.Builtin.flow ();
      ]
  in
  Cmd.v
    (Cmd.info "stages" ~doc:"Print the built-in stages' classification abilities (Table 2)")
    Term.(const run $ const ())

let listings_cmd =
  let run () = Listings.print () in
  Cmd.v
    (Cmd.info "listings"
       ~doc:"Print the paper's action functions (Figs. 2/3/7) and their bytecode")
    Term.(const run $ const ())

let footprint_cmd =
  let run () = Footprint.print (Footprint.run ()) in
  Cmd.v
    (Cmd.info "footprint" ~doc:"Interpreter footprint of the paper functions (paper 5.4)")
    Term.(const run $ const ())

(* ------------------------------------------------------------------ *)
(* compile: show the pipeline for one named function *)

let functions =
  [
    ("wcmp", (Eden_functions.Wcmp.action, Eden_functions.Wcmp.schema));
    ("message-wcmp", (Eden_functions.Wcmp.message_action, Eden_functions.Wcmp.schema));
    ("pias", (Eden_functions.Pias.action, Eden_functions.Pias.schema));
    ("sff", (Eden_functions.Sff.action, Eden_functions.Sff.schema));
    ("pulsar", (Eden_functions.Pulsar.action, Eden_functions.Pulsar.schema));
    ( "port-knocking",
      (Eden_functions.Port_knocking.action, Eden_functions.Port_knocking.schema) );
    ( "replica-select",
      (Eden_functions.Replica_select.action, Eden_functions.Replica_select.schema) );
  ]

let compile_cmd =
  let fn_arg =
    let doc =
      Printf.sprintf "Function to compile: %s."
        (String.concat ", " (List.map fst functions))
    in
    Arg.(required & pos 0 (some (enum functions)) None & info [] ~doc ~docv:"FUNCTION")
  in
  let run (action, schema) =
    Printf.printf "-- source --\n%s\n\n" (Eden_lang.Pretty.action_to_string action);
    match Eden_lang.Compile.compile schema action with
    | Ok program ->
      Format.printf "-- bytecode --@.%a@." Eden_bytecode.Program.pp program;
      (match Eden_bytecode.Verifier.analyse program with
      | Ok an ->
        Printf.printf "verified; max operand stack %d values\n"
          an.Eden_bytecode.Verifier.an_max_stack;
        List.iter
          (fun pc -> Printf.printf "warning: unreachable instruction at pc %d\n" pc)
          an.Eden_bytecode.Verifier.an_unreachable
      | Error e ->
        Printf.printf "verifier: %s\n" (Eden_bytecode.Verifier.error_to_string e));
      `Ok ()
    | Error e -> `Error (false, Eden_lang.Compile.error_to_string e)
  in
  Cmd.v
    (Cmd.info "compile" ~doc:"Compile an action function and print its bytecode")
    Term.(ret (const run $ fn_arg))

let parse_cmd =
  let file_arg =
    Arg.(required & pos 0 (some file) None
         & info [] ~doc:"Action-function source file (F#-style syntax)." ~docv:"FILE")
  in
  let run_packets =
    Arg.(value & opt int 0
         & info [ "run" ]
             ~doc:"Also install the function on a fresh enclave and push $(docv) \
                   synthetic 1000-byte data packets through it, printing the \
                   resulting priorities and state."
             ~docv:"N")
  in
  let run file n_packets =
    let ic = open_in file in
    let n = in_channel_length ic in
    let src = really_input_string ic n in
    close_in ic;
    match Eden_lang.Parser.parse_action ~name:(Filename.remove_extension (Filename.basename file)) src with
    | Error e -> `Error (false, Eden_lang.Parser.error_to_string e)
    | Ok action -> (
      Printf.printf "-- parsed --\n%s\n\n" (Eden_lang.Pretty.action_to_string action);
      let schema = Eden_lang.Schema.infer action in
      match Eden_lang.Compile.compile schema action with
      | Error e -> `Error (false, Eden_lang.Compile.error_to_string e)
      | Ok program -> (
        Format.printf "-- bytecode --@.%a@." Eden_bytecode.Program.pp program;
        Printf.printf "wire format: %d bytes\n"
          (String.length (Eden_bytecode.Codec.encode program));
        if n_packets <= 0 then `Ok ()
        else begin
          let module Enclave = Eden_enclave.Enclave in
          let module Packet = Eden_base.Packet in
          let module Addr = Eden_base.Addr in
          let e = Enclave.create ~host:1 () in
          match
            Enclave.install_action e
              { Enclave.i_name = program.Eden_bytecode.Program.name;
                i_impl = Enclave.Interpreted program; i_msg_sources = [] }
          with
          | Error msg -> `Error (false, msg)
          | Ok () ->
            ignore
              (Enclave.add_table_rule e ~pattern:Eden_base.Class_name.Pattern.any
                 ~action:program.Eden_bytecode.Program.name ());
            let flow =
              Addr.five_tuple ~src:(Addr.endpoint 1 1000) ~dst:(Addr.endpoint 2 80)
                ~proto:Addr.Tcp
            in
            Printf.printf "\n-- run --\n";
            for i = 1 to n_packets do
              let pkt =
                Packet.make ~id:(Int64.of_int i) ~flow ~kind:Packet.Data ~payload:1000 ()
              in
              let verdict =
                match Enclave.process e ~now:(Time.us i) pkt with
                | Enclave.Forward _ -> "forward"
                | Enclave.Dropped _ -> "DROP"
              in
              Printf.printf "packet %3d: %s priority=%d%s\n" i verdict
                pkt.Packet.priority
                (match pkt.Packet.route_label with
                | Some l -> Printf.sprintf " label=%d" l
                | None -> "")
            done;
            let c = Enclave.counters e in
            Printf.printf
              "counters: %d packets, %d invocations, %d faults, %d interpreter steps\n"
              c.Enclave.packets c.Enclave.invocations c.Enclave.faults
              c.Enclave.interp_steps;
            `Ok ()
        end))
  in
  Cmd.v
    (Cmd.info "parse"
       ~doc:"Parse an action function from a source file, compile, disassemble and \
             optionally execute it")
    Term.(ret (const run $ file_arg $ run_packets))

(* ------------------------------------------------------------------ *)
(* analyze: the install-time static analysis pipeline *)

let analyze_cmd =
  let target_arg =
    let doc =
      Printf.sprintf
        "Built-in function (%s) or a source file (F#-style syntax)."
        (String.concat ", " (List.map fst functions))
    in
    Arg.(required & pos 0 (some string) None & info [] ~doc ~docv:"FUNCTION|FILE")
  in
  let resolve target =
    match List.assoc_opt target functions with
    | Some (action, schema) -> Ok (action, schema)
    | None ->
      if not (Sys.file_exists target) then
        Error
          (Printf.sprintf "%s: not a built-in function and no such file" target)
      else begin
        let ic = open_in target in
        let n = in_channel_length ic in
        let src = really_input_string ic n in
        close_in ic;
        match
          Eden_lang.Parser.parse_action
            ~name:(Filename.remove_extension (Filename.basename target))
            src
        with
        | Error e -> Error (Eden_lang.Parser.error_to_string e)
        | Ok action -> Ok (action, Eden_lang.Schema.infer action)
      end
  in
  let run target =
    match resolve target with
    | Error msg -> `Error (false, msg)
    | Ok (action, schema) -> (
      match Eden_analysis.Analyze.run schema action with
      | Error e -> `Error (false, Eden_analysis.Analyze.error_to_string e)
      | Ok (report, _hardened) ->
        Format.printf "%a@." Eden_analysis.Report.pp report;
        `Ok ())
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Run the install-time static analysis on an action function: effect \
          footprint and concurrency class, AST optimization, bounds proofs for \
          array accesses (unlocking unchecked interpreter opcodes) and \
          worst-case cost versus each placement's admission budget")
    Term.(ret (const run $ target_arg))

(* ------------------------------------------------------------------ *)
(* Experiments *)

let fig9_cmd =
  let load =
    Arg.(value & opt float 0.7 & info [ "load" ] ~doc:"Offered load (0,1)." ~docv:"L")
  in
  let run runs_n ms load =
    let params =
      {
        Fig9.default_params with
        runs = override_runs runs_n Fig9.default_params.Fig9.runs;
        duration = override_duration ms Fig9.default_params.Fig9.duration;
        load;
        link_rate_bps = 10e9;
      }
    in
    Fig9.print (Fig9.run_all ~params ())
  in
  Cmd.v (Cmd.info "fig9" ~doc:"Case study 1: flow scheduling FCTs (paper Fig. 9)")
    Term.(const run $ runs $ duration_ms $ load)

let fig10_cmd =
  let run runs_n ms =
    let params =
      {
        Fig10.default_params with
        runs = override_runs runs_n Fig10.default_params.Fig10.runs;
        duration = override_duration ms Fig10.default_params.Fig10.duration;
      }
    in
    Fig10.print (Fig10.run_all ~params ())
  in
  Cmd.v (Cmd.info "fig10" ~doc:"Case study 2: ECMP vs WCMP goodput (paper Fig. 10)")
    Term.(const run $ runs $ duration_ms)

let fig11_cmd =
  let run ms =
    let params =
      { Fig11.default_params with duration = override_duration ms Fig11.default_params.Fig11.duration }
    in
    Fig11.print (Fig11.run_all ~params ())
  in
  Cmd.v (Cmd.info "fig11" ~doc:"Case study 3: Pulsar rate control (paper Fig. 11)")
    Term.(const run $ duration_ms)

let fig12_cmd =
  let run ms =
    let params =
      { Fig12.default_params with duration = override_duration ms Fig12.default_params.Fig12.duration }
    in
    Fig12.print (Fig12.run ~params ())
  in
  Cmd.v (Cmd.info "fig12" ~doc:"CPU overheads of the Eden data path (paper Fig. 12)")
    Term.(const run $ duration_ms)

let chaos_cmd =
  let seed =
    Arg.(
      value & opt int64 42L
      & info [ "seed" ] ~doc:"Fault-schedule seed; the same seed replays the same run."
          ~docv:"SEED")
  in
  let list =
    Arg.(value & flag & info [ "list" ] ~doc:"List the scenario names and exit.")
  in
  let scenario =
    Arg.(
      value & pos 0 (some string) None
      & info [] ~docv:"SCENARIO" ~doc:"Run only this scenario (default: all).")
  in
  let run list seed scenario =
    if list then begin
      List.iter print_endline Chaos.scenario_names;
      `Ok ()
    end
    else
      let reports =
        match scenario with
        | None -> Ok (Chaos.run_all ~seed ())
        | Some name -> Result.map (fun r -> [ r ]) (Chaos.run ~seed name)
      in
      match reports with
      | Error msg -> `Error (false, msg)
      | Ok reports ->
        Chaos.print reports;
        if Chaos.all_passed reports then `Ok () else exit 1
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Run the scripted fault scenarios (partition, crash, duplicate delivery, fault \
          storm) and check the convergence invariants")
    Term.(ret (const run $ list $ seed $ scenario))

(* ------------------------------------------------------------------ *)
(* stats: run a synthetic workload and scrape the telemetry registry *)

let stats_cmd =
  let module Tel = Eden_telemetry in
  let module Enclave = Eden_enclave.Enclave in
  let module Shard = Eden_enclave.Shard in
  let module Packet = Eden_base.Packet in
  let module Addr = Eden_base.Addr in
  let packets =
    Arg.(value & opt int 10_000
         & info [ "p"; "packets" ] ~doc:"Synthetic data packets to push." ~docv:"N")
  in
  let flows =
    Arg.(value & opt int 32
         & info [ "flows" ] ~doc:"Distinct five-tuples the packets cycle over." ~docv:"F")
  in
  let shards =
    Arg.(value & opt int 0
         & info [ "shards" ]
             ~doc:"Run the sharded data path with $(docv) worker domains (0: the plain \
                   single-enclave path)."
             ~docv:"K")
  in
  let format =
    let formats = [ ("human", `Human); ("prom", `Prom); ("json", `Json) ] in
    Arg.(value & opt (enum formats) `Human
         & info [ "format" ] ~doc:"Output format: human, prom or json." ~docv:"FMT")
  in
  let json_flag =
    Arg.(value & flag & info [ "json" ] ~doc:"Shorthand for --format=json.")
  in
  let trace_every =
    Arg.(value & opt int 0
         & info [ "trace" ]
             ~doc:"Attach a flight recorder sampling 1 in $(docv) packets and dump it \
                   after the metrics (0: off)."
             ~docv:"EVERY")
  in
  let seed =
    Arg.(value & opt int64 7L & info [ "seed" ] ~doc:"Workload seed." ~docv:"SEED")
  in
  let mk_packet ~flows ~seq =
    let flow =
      Addr.five_tuple
        ~src:(Addr.endpoint 1 (1000 + (seq mod flows)))
        ~dst:(Addr.endpoint 2 80) ~proto:Addr.Tcp
    in
    Packet.make ~id:(Int64.of_int seq) ~flow ~kind:Packet.Data ~payload:1000 ()
  in
  let render fmt samples =
    match fmt with
    | `Human -> print_string (Tel.Export.to_table samples)
    | `Prom -> print_string (Tel.Export.to_prometheus samples)
    | `Json -> print_endline (Tel.Export.to_json_string samples)
  in
  let run packets flows shards fmt json_flag trace_every seed =
    let fmt = if json_flag then `Json else fmt in
    if packets < 1 then `Error (false, "--packets must be >= 1")
    else if flows < 1 then `Error (false, "--flows must be >= 1")
    else begin
      let e = Enclave.create ~host:1 ~seed () in
      match Eden_functions.Pias.install ~variant:`Compiled e ~thresholds:[| 10_240L; 1_048_576L |] with
      | Error msg -> `Error (false, msg)
      | Ok () ->
        if shards > 0 then begin
          match Shard.create ~shards e with
          | Error msg -> `Error (false, msg)
          | Ok sh ->
            if trace_every > 0 then Shard.attach_traces sh ~every:trace_every ();
            for i = 1 to packets do
              Shard.feed sh ~now:(Time.us i) (mk_packet ~flows ~seq:i)
            done;
            Shard.drain sh;
            let samples = Shard.scrape sh in
            render fmt samples;
            if trace_every > 0 then
              for w = 0 to Shard.shards sh - 1 do
                match Shard.worker_trace sh w with
                | Some tr ->
                  Format.printf "@.-- flight recorder (shard %d) --@.%a@." w Tel.Trace.pp_dump tr
                | None -> ()
              done;
            Shard.stop sh;
            `Ok ()
        end
        else begin
          Enclave.set_timing e true;
          if trace_every > 0 then
            Enclave.set_trace e
              (Some (Tel.Trace.create ~seed ~every:trace_every ~capacity:256 ()));
          for i = 1 to packets do
            ignore (Enclave.process e ~now:(Time.us i) (mk_packet ~flows ~seq:i))
          done;
          render fmt (Enclave.scrape e);
          (match Enclave.trace e with
          | Some tr -> Format.printf "@.-- flight recorder --@.%a@." Tel.Trace.pp_dump tr
          | None -> ());
          `Ok ()
        end
    end
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Push a synthetic PIAS workload through an enclave (optionally sharded), then \
          print the telemetry registry as a table, Prometheus exposition or JSON, with \
          an optional flight-recorder dump")
    Term.(ret (const run $ packets $ flows $ shards $ format $ json_flag $ trace_every $ seed))

(* ------------------------------------------------------------------ *)

let main_cmd =
  let doc = "Eden: end-host network functions (SIGCOMM 2015), reproduced in OCaml" in
  let info = Cmd.info "eden" ~version:"1.0.0" ~doc in
  Cmd.group info
    [
      catalog_cmd;
      stages_cmd;
      listings_cmd;
      footprint_cmd;
      compile_cmd;
      analyze_cmd;
      parse_cmd;
      fig9_cmd;
      fig10_cmd;
      fig11_cmd;
      fig12_cmd;
      chaos_cmd;
      stats_cmd;
    ]

let () = exit (Cmd.eval main_cmd)
