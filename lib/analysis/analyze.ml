module Ast = Eden_lang.Ast
module Schema = Eden_lang.Schema
module P = Eden_bytecode.Program

type error =
  | Rejected of string list  (** effect-analysis diagnostics *)
  | Type_error of Eden_lang.Typecheck.error
  | Compile_error of Eden_lang.Compile.error
  | Verifier_error of Eden_bytecode.Verifier.error

let error_to_string = function
  | Rejected ds -> String.concat "; " ds
  | Type_error e -> Format.asprintf "%a" Eden_lang.Typecheck.pp_error e
  | Compile_error e -> Eden_lang.Compile.error_to_string e
  | Verifier_error e -> Eden_bytecode.Verifier.error_to_string e

let pp_error fmt e = Format.pp_print_string fmt (error_to_string e)

let run schema (a : Ast.t) =
  (* Effect analysis first: name-level diagnostics beat the type
     checker's generic message when state is misused. *)
  let footprint = Effects.of_action a in
  match Effects.diagnostics schema a with
  | _ :: _ as ds -> Error (Rejected ds)
  | [] -> (
    match Eden_lang.Typecheck.check schema a with
    | Error e -> Error (Type_error e)
    | Ok () -> (
      let optimized, stats = Optimize.run a in
      match Eden_lang.Compile.compile schema optimized with
      | Error e -> Error (Compile_error e)
      | Ok program -> (
        let bounds, hardened = Bounds.of_program program in
        (* The hardened program must re-verify from scratch: unsafe
           opcodes carry no certificate, so this is the same check a
           remote enclave will run at install. *)
        match Eden_bytecode.Verifier.analyse ~strict:true hardened with
        | Error e -> Error (Verifier_error e)
        | Ok an ->
          let report =
            {
              Report.r_name = a.Ast.af_name;
              r_footprint = footprint;
              r_concurrency = Effects.concurrency footprint;
              r_shard = Eden_bytecode.Shardclass.classify hardened;
              r_diagnostics = [];
              r_nodes_before = stats.Optimize.nodes_before;
              r_nodes_after = stats.Optimize.nodes_after;
              r_code_len = Array.length hardened.P.code;
              r_max_stack = an.Eden_bytecode.Verifier.an_max_stack;
              r_bounds = bounds;
              r_cost = Cost.of_program hardened;
            }
          in
          Ok (report, hardened))))
