(** The install-time analysis pipeline (effects → optimize → compile →
    bounds-harden → re-verify → cost).

    [run schema action] returns the full {!Report.t} plus the hardened
    program — the one a controller should actually ship to enclaves:
    semantically identical to compiling [action] directly, but with
    optimized code, proved array accesses rewritten to unchecked opcodes
    and a strict verifier pass already survived. *)

type error =
  | Rejected of string list
      (** Writes to read-only state or undeclared state, by name. *)
  | Type_error of Eden_lang.Typecheck.error
  | Compile_error of Eden_lang.Compile.error
  | Verifier_error of Eden_bytecode.Verifier.error

val error_to_string : error -> string
val pp_error : Format.formatter -> error -> unit

val run :
  Eden_lang.Schema.t ->
  Eden_lang.Ast.t ->
  (Report.t * Eden_bytecode.Program.t, error) result
