module P = Eden_bytecode.Program
module Op = Eden_bytecode.Opcode

type access = {
  b_pc : int;
  b_slot : int;
  b_array : string;
  b_store : bool;
  b_proved : bool;
}

type t = { accesses : access list; proved : int; total : int }

let of_program (p : P.t) =
  let hardened, _ = Eden_bytecode.Absint.harden p in
  let accesses = ref [] in
  Array.iteri
    (fun pc op ->
      let add slot ~store ~proved =
        accesses :=
          {
            b_pc = pc;
            b_slot = slot;
            b_array = hardened.P.array_slots.(slot).P.a_name;
            b_store = store;
            b_proved = proved;
          }
          :: !accesses
      in
      match op with
      | Op.Gaload s -> add s ~store:false ~proved:false
      | Op.Gaload_unsafe s -> add s ~store:false ~proved:true
      | Op.Gastore s -> add s ~store:true ~proved:false
      | Op.Gastore_unsafe s -> add s ~store:true ~proved:true
      | _ -> ())
    hardened.P.code;
  let accesses = List.rev !accesses in
  let proved = List.length (List.filter (fun a -> a.b_proved) accesses) in
  ({ accesses; proved; total = List.length accesses }, hardened)

let pp fmt t =
  Format.fprintf fmt "@[<v>";
  Format.fprintf fmt "  %d of %d array accesses proved in bounds@," t.proved t.total;
  List.iter
    (fun a ->
      Format.fprintf fmt "  pc %d: %s %s -> %s@," a.b_pc
        (if a.b_store then "store to" else "load from")
        a.b_array
        (if a.b_proved then "proved (unchecked)" else "runtime check"))
    t.accesses;
  Format.fprintf fmt "@]"
