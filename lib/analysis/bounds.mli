(** Bounds analysis: which array accesses are provably in bounds.

    A thin reporting layer over {!Eden_bytecode.Absint.harden}: the
    interval abstract interpreter proves [Gaload]/[Gastore] indices in
    bounds (from schema [min_length] contracts and dominating length
    guards) and rewrites them to unchecked opcodes; this module records
    the per-access outcome for the analysis report. *)

type access = {
  b_pc : int;  (** In the {e hardened} program. *)
  b_slot : int;
  b_array : string;
  b_store : bool;
  b_proved : bool;  (** Proved accesses skip the interpreter's index check. *)
}

type t = { accesses : access list; proved : int; total : int }

val of_program : Eden_bytecode.Program.t -> t * Eden_bytecode.Program.t
(** Returns the report and the hardened program (unchanged when nothing
    was proved). *)

val pp : Format.formatter -> t -> unit
