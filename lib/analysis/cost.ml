module P = Eden_bytecode.Program
module Ecost = Eden_enclave.Cost

type estimate = { placement : string; est_ns : float; budget_ns : float; fits : bool }

type t = {
  wcet_steps : int option;
  admission_steps : int;
  step_limit : int;
  estimates : estimate list;
}

let of_program (p : P.t) =
  let wcet_steps = Eden_bytecode.Wcet.worst_case_steps p in
  let admission_steps =
    match wcet_steps with Some n -> min n p.P.step_limit | None -> p.P.step_limit
  in
  let est placement (m : Ecost.model) =
    let est_ns = Ecost.admission_ns m ~steps:admission_steps in
    { placement; est_ns; budget_ns = m.Ecost.budget_ns; fits = est_ns <= m.Ecost.budget_ns }
  in
  {
    wcet_steps;
    admission_steps;
    step_limit = p.P.step_limit;
    estimates = [ est "os" Ecost.os_model; est "nic" Ecost.nic_model ];
  }

let pp fmt t =
  Format.fprintf fmt "@[<v>";
  (match t.wcet_steps with
  | Some n ->
    Format.fprintf fmt "  worst case %d steps (acyclic; step limit %d)@," n t.step_limit
  | None ->
    Format.fprintf fmt "  loops: bounded only by the step limit (%d steps)@,"
      t.step_limit);
  List.iter
    (fun e ->
      Format.fprintf fmt "  %s enclave: %.0f ns worst case vs %.0f ns budget -> %s@,"
        e.placement e.est_ns e.budget_ns
        (if e.fits then "admitted" else "REJECTED"))
    t.estimates;
  Format.fprintf fmt "@]"
