(** Static cost bounds and admission estimates.

    The worst-case step count comes from {!Eden_bytecode.Wcet}: the
    longest path through an acyclic control-flow graph, or the program's
    [step_limit] when it has loops (the interpreter enforces that limit,
    so it is always a sound bound).  The estimate is evaluated against
    each placement's {!Eden_enclave.Cost.model} the same way
    [Enclave.install_action] does, so "REJECTED" here predicts an
    [Over_budget] install error. *)

type estimate = { placement : string; est_ns : float; budget_ns : float; fits : bool }

type t = {
  wcet_steps : int option;  (** [None]: the CFG has a cycle. *)
  admission_steps : int;  (** The step count admission control charges. *)
  step_limit : int;
  estimates : estimate list;
}

val of_program : Eden_bytecode.Program.t -> t
val pp : Format.formatter -> t -> unit
