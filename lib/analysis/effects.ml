module Ast = Eden_lang.Ast
module Schema = Eden_lang.Schema

type access = [ `Read | `Write ]

type footprint = {
  fields : (Ast.entity * string * access) list;
  arrays : (Ast.entity * string * access) list;
  uses_rand : bool;
  uses_clock : bool;
  uses_hash : bool;
}

let fold_action f acc (a : Ast.t) =
  let acc =
    List.fold_left (fun acc fd -> Ast.fold_expr f acc fd.Ast.fn_body) acc a.Ast.af_funs
  in
  Ast.fold_expr f acc a.Ast.af_body

let of_action (a : Ast.t) =
  let uses p = fold_action (fun found e -> found || p e) false a in
  {
    fields = Ast.fields_used a;
    arrays = Ast.arrays_used a;
    uses_rand = uses (function Ast.Rand _ -> true | _ -> false);
    uses_clock = uses (function Ast.Clock -> true | _ -> false);
    uses_hash = uses (function Ast.Hash _ -> true | _ -> false);
  }

(* Mirror of the enclave's concurrency decision (§3.4.4): writes to
   global state force serial execution, writes to message state allow one
   packet per message, a read-only footprint runs fully parallel.  Packet
   writes are inherently per-packet and constrain nothing. *)
let concurrency fp =
  let writes ent l = List.exists (fun (e, _, acc) -> e = ent && acc = `Write) l in
  if writes Ast.Global fp.fields || writes Ast.Global fp.arrays then `Serial
  else if writes Ast.Message fp.fields || writes Ast.Message fp.arrays then `Per_message
  else `Parallel

let concurrency_to_string = function
  | `Parallel -> "parallel"
  | `Per_message -> "per-message"
  | `Serial -> "serial"

let diagnostics schema (a : Ast.t) =
  let fp = of_action a in
  let check kind find l =
    List.filter_map
      (fun (ent, name, acc) ->
        let where = Printf.sprintf "%s.%s" (Ast.entity_to_string ent) name in
        match find schema ent name with
        | None -> Some (Printf.sprintf "%s: undeclared %s" where kind)
        | Some ro when acc = `Write && ro = Schema.Read_only ->
          Some (Printf.sprintf "%s: write to read-only %s" where kind)
        | Some _ -> None)
      l
  in
  check "field"
    (fun s e n -> Option.map (fun f -> f.Schema.f_access) (Schema.find_field s e n))
    fp.fields
  @ check "array"
      (fun s e n -> Option.map (fun d -> d.Schema.a_access) (Schema.find_array s e n))
      fp.arrays

let pp_footprint fmt fp =
  let pp_item fmt (ent, name, acc) =
    Format.fprintf fmt "%s.%s (%s)" (Ast.entity_to_string ent) name
      (match acc with `Read -> "r" | `Write -> "rw")
  in
  let pp_list what l =
    if l <> [] then
      Format.fprintf fmt "  %s: %a@," what
        (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f ", ") pp_item)
        l
  in
  Format.fprintf fmt "@[<v>";
  pp_list "fields" fp.fields;
  pp_list "arrays" fp.arrays;
  let intrinsics =
    List.filter_map
      (fun (used, n) -> if used then Some n else None)
      [ (fp.uses_rand, "rand"); (fp.uses_clock, "clock"); (fp.uses_hash, "hash") ]
  in
  if intrinsics <> [] then
    Format.fprintf fmt "  intrinsics: %s@," (String.concat ", " intrinsics);
  Format.fprintf fmt "@]"
