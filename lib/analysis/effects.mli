(** Effect analysis: the state footprint of an action function.

    Computed from the AST at install time, the footprint drives two
    decisions the paper attributes to type annotations (§3.4.4):

    - {b concurrency}: a function that never writes shared state can run
      on many packets in parallel; message-state writers serialise per
      message; global-state writers run serially.
    - {b rejection}: writes to state the schema declares [Read_only], or
      touches on undeclared state, are install-time errors rather than
      runtime faults. *)

type access = [ `Read | `Write ]

type footprint = {
  fields : (Eden_lang.Ast.entity * string * access) list;
  arrays : (Eden_lang.Ast.entity * string * access) list;
  uses_rand : bool;
  uses_clock : bool;
  uses_hash : bool;
}

val of_action : Eden_lang.Ast.t -> footprint

val concurrency : footprint -> [ `Parallel | `Per_message | `Serial ]
(** Same decision {!Eden_enclave.Enclave.concurrency_of} makes from the
    compiled program's slot accesses, available before compilation. *)

val concurrency_to_string : [ `Parallel | `Per_message | `Serial ] -> string

val diagnostics : Eden_lang.Schema.t -> Eden_lang.Ast.t -> string list
(** Human-readable install blockers: writes to read-only state and uses
    of undeclared state.  Empty for a well-typed action (the type checker
    enforces the same rules); non-empty output pinpoints the offending
    state by name for controller diagnostics. *)

val pp_footprint : Format.formatter -> footprint -> unit
