module Ast = Eden_lang.Ast

type stats = { nodes_before : int; nodes_after : int }

let count_action (a : Ast.t) =
  let count acc e = Ast.fold_expr (fun n _ -> n + 1) acc e in
  List.fold_left (fun acc fd -> count acc fd.Ast.fn_body) (count 0 a.Ast.af_body)
    a.Ast.af_funs

(* Effect-free and fault-free: safe to delete when the value is unused.
   [Div]/[Rem] can fault, [Arr_get] can fault on a bad index, [Rand] both
   faults and consumes entropy, [Call]/[While] may not terminate. *)
let rec pure (e : Ast.expr) =
  match e with
  | Ast.Int _ | Ast.Bool _ | Ast.Unit | Ast.Var _ | Ast.Field _ | Ast.Arr_len _ -> true
  | Ast.Binop ((Ast.Div | Ast.Rem), _, _) -> false
  | Ast.Binop (_, a, b) -> pure a && pure b
  | Ast.Unop (_, a) -> pure a
  | Ast.If (c, t, f) -> pure c && pure t && pure f
  | Ast.Seq (a, b) -> pure a && pure b
  | _ -> false

(* Bottom-up rewrite: children first, then [f] at the node. *)
let rec map_expr f (e : Ast.expr) =
  let r = map_expr f in
  let e =
    match e with
    | Ast.Int _ | Ast.Bool _ | Ast.Unit | Ast.Var _ | Ast.Field _ | Ast.Arr_len _
    | Ast.Clock ->
      e
    | Ast.Arr_get (ent, n, i) -> Ast.Arr_get (ent, n, r i)
    | Ast.Let l -> Ast.Let { l with rhs = r l.rhs; body = r l.body }
    | Ast.Assign (x, v) -> Ast.Assign (x, r v)
    | Ast.Set_field (ent, n, v) -> Ast.Set_field (ent, n, r v)
    | Ast.Arr_set (ent, n, i, v) -> Ast.Arr_set (ent, n, r i, r v)
    | Ast.If (c, t, e') -> Ast.If (r c, r t, r e')
    | Ast.While (c, b) -> Ast.While (r c, r b)
    | Ast.Seq (a, b) -> Ast.Seq (r a, r b)
    | Ast.Binop (op, a, b) -> Ast.Binop (op, r a, r b)
    | Ast.Unop (op, a) -> Ast.Unop (op, r a)
    | Ast.Call (fn, args) -> Ast.Call (fn, List.map r args)
    | Ast.Rand b -> Ast.Rand (r b)
    | Ast.Hash (a, b) -> Ast.Hash (r a, r b)
  in
  f e

let simplify_node (e : Ast.expr) =
  match e with
  (* Dead code: a loop that never runs, a statement with no effect. *)
  | Ast.While (Ast.Bool false, _) -> Ast.Unit
  | Ast.Seq (a, b) when pure a -> b
  | Ast.Seq (a, Ast.Unit) when not (pure a) -> a
  (* [fold_consts] handles constant conditions before this pass; loop
     unswitching above can re-expose them. *)
  | Ast.If (Ast.Bool true, t, _) -> t
  | Ast.If (Ast.Bool false, _, f) -> f
  (* Arithmetic identities (sound under wrapping). *)
  | Ast.Binop (Ast.Add, x, Ast.Int 0L) | Ast.Binop (Ast.Add, Ast.Int 0L, x) -> x
  | Ast.Binop (Ast.Sub, x, Ast.Int 0L) -> x
  | Ast.Binop (Ast.Mul, x, Ast.Int 1L) | Ast.Binop (Ast.Mul, Ast.Int 1L, x) -> x
  | Ast.Binop (Ast.Div, x, Ast.Int 1L) -> x
  | Ast.Binop ((Ast.Bor | Ast.Bxor), x, Ast.Int 0L)
  | Ast.Binop ((Ast.Bor | Ast.Bxor), Ast.Int 0L, x)
  | Ast.Binop ((Ast.Shl | Ast.Shr), x, Ast.Int 0L) ->
    x
  | e -> e

let run (a : Ast.t) =
  let opt e = map_expr simplify_node (Eden_lang.Compile.fold_consts e) in
  let a' =
    {
      a with
      Ast.af_funs =
        List.map (fun fd -> { fd with Ast.fn_body = opt fd.Ast.fn_body }) a.Ast.af_funs;
      af_body = opt a.Ast.af_body;
    }
  in
  (a', { nodes_before = count_action a; nodes_after = count_action a' })
