(** Install-time AST optimizer.

    Runs before compilation: constant folding (via
    {!Eden_lang.Compile.fold_consts}, sharing the interpreter's exact
    wrapping [Int64] semantics), dead-branch and dead-loop elimination,
    removal of effect-free statements, and arithmetic identities.  Every
    rewrite preserves observable behaviour — including runtime faults
    (division by zero, array bounds) and non-termination, which is why
    e.g. [x * 0] is {e not} rewritten unless [x] is provably pure. *)

type stats = { nodes_before : int; nodes_after : int }

val run : Eden_lang.Ast.t -> Eden_lang.Ast.t * stats

val count_action : Eden_lang.Ast.t -> int
(** AST nodes across the body and all auxiliary functions. *)
