type t = {
  r_name : string;
  r_footprint : Effects.footprint;
  r_concurrency : [ `Parallel | `Per_message | `Serial ];
  r_shard : Eden_bytecode.Shardclass.klass;
  r_diagnostics : string list;
  r_nodes_before : int;
  r_nodes_after : int;
  r_code_len : int;
  r_max_stack : int;
  r_bounds : Bounds.t;
  r_cost : Cost.t;
}

let pp fmt r =
  Format.fprintf fmt "@[<v>";
  Format.fprintf fmt "action %S@," r.r_name;
  Format.fprintf fmt "effects:@,%a" Effects.pp_footprint r.r_footprint;
  Format.fprintf fmt "  concurrency: %s@,"
    (Effects.concurrency_to_string r.r_concurrency);
  Format.fprintf fmt "  sharding: %s@," (Eden_bytecode.Shardclass.to_string r.r_shard);
  List.iter (fun d -> Format.fprintf fmt "  problem: %s@," d) r.r_diagnostics;
  Format.fprintf fmt "optimizer: %d -> %d AST nodes@," r.r_nodes_before r.r_nodes_after;
  Format.fprintf fmt "bytecode: %d instructions, max stack %d@," r.r_code_len
    r.r_max_stack;
  Format.fprintf fmt "bounds:@,%a" Bounds.pp r.r_bounds;
  Format.fprintf fmt "cost:@,%a" Cost.pp r.r_cost;
  Format.fprintf fmt "@]"

let to_string r = Format.asprintf "%a" pp r
