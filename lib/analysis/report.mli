(** The combined result of the install-time analysis pipeline. *)

type t = {
  r_name : string;
  r_footprint : Effects.footprint;
  r_concurrency : [ `Parallel | `Per_message | `Serial ];
  r_shard : Eden_bytecode.Shardclass.klass;
      (** How the multicore front-end ({!Eden_enclave.Shard}) will run
          this action: fully sharded, per-shard delta accumulators, or
          serialized behind a per-action mutex. *)
  r_diagnostics : string list;  (** Empty unless the action is rejectable. *)
  r_nodes_before : int;
  r_nodes_after : int;
  r_code_len : int;
  r_max_stack : int;
  r_bounds : Bounds.t;
  r_cost : Cost.t;
}

val pp : Format.formatter -> t -> unit
val to_string : t -> string
