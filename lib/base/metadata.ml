type value = Int of int64 | Str of string

let int i = Int (Int64.of_int i)
let int64 i = Int i
let str s = Str s
let value_to_string = function Int i -> Int64.to_string i | Str s -> s

let equal_value a b =
  match (a, b) with
  | Int x, Int y -> Int64.equal x y
  | Str x, Str y -> String.equal x y
  | Int _, Str _ | Str _, Int _ -> false

let pp_value fmt = function
  | Int i -> Format.fprintf fmt "%Ld" i
  | Str s -> Format.fprintf fmt "%S" s

module Smap = Map.Make (String)

type t = {
  msg_id : int64 option;
  fields : value Smap.t;
  classes : Class_name.t list; (* newest first *)
}

let empty = { msg_id = None; fields = Smap.empty; classes = [] }
let with_msg_id id t = { t with msg_id = Some id }
let msg_id t = t.msg_id
let add field v t = { t with fields = Smap.add field v t.fields }
let find field t = Smap.find_opt field t.fields

let find_int field t =
  match find field t with Some (Int i) -> Some i | Some (Str _) | None -> None

let find_str field t =
  match find field t with Some (Str s) -> Some s | Some (Int _) | None -> None

(* Allocation-free variants for the enclave data path: [Smap.find] plus
   [Not_found] avoids materialising an option per packet. *)
let int_field field ~default t =
  match Smap.find field t.fields with
  | Int i -> i
  | Str _ -> default
  | exception Not_found -> default

let str_field_is field ~expected t =
  match Smap.find field t.fields with
  | Str s -> String.equal s expected
  | Int _ -> false
  | exception Not_found -> false

let mem field t = Smap.mem field t.fields
let fields t = Smap.bindings t.fields

let add_class c t =
  if List.exists (Class_name.equal c) t.classes then t
  else { t with classes = c :: t.classes }

let classes t = List.rev t.classes
let has_class c t = List.exists (Class_name.equal c) t.classes

let union a b =
  let msg_id = match b.msg_id with Some _ as id -> id | None -> a.msg_id in
  let fields = Smap.union (fun _ _ vb -> Some vb) a.fields b.fields in
  let classes =
    List.fold_left (fun acc c -> if List.exists (Class_name.equal c) acc then acc else c :: acc)
      a.classes (List.rev b.classes)
  in
  { msg_id; fields; classes }

let pp fmt t =
  let pp_field fmt (k, v) = Format.fprintf fmt "%s=%a" k pp_value v in
  Format.fprintf fmt "@[<h>{id=%s; classes=[%a]; %a}@]"
    (match t.msg_id with Some i -> Int64.to_string i | None -> "-")
    (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f ",") Class_name.pp)
    (classes t)
    (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f ";@ ") pp_field)
    (fields t)

module Field = struct
  let msg_type = "msg_type"
  let key = "key"
  let url = "url"
  let msg_size = "msg_size"
  let tenant = "tenant"
  let flow_size = "flow_size"
  let operation = "operation"
end
