(** Message metadata.

    Stages associate application messages with a set of classes plus
    free-form metadata fields (paper Table 2): a unique message identifier,
    message type, key/url being accessed, message size, tenant, …  The
    metadata travels with every packet of the message down the host stack
    and is the input to enclave classification and to action functions. *)

type value = Int of int64 | Str of string

val int : int -> value
val int64 : int64 -> value
val str : string -> value

val value_to_string : value -> string
val equal_value : value -> value -> bool
val pp_value : Format.formatter -> value -> unit

type t
(** An immutable field map plus class bindings. *)

val empty : t

val with_msg_id : int64 -> t -> t
val msg_id : t -> int64 option

val add : string -> value -> t -> t
(** [add field v t] binds [field]; replaces any previous binding. *)

val find : string -> t -> value option
val find_int : string -> t -> int64 option
val find_str : string -> t -> string option

val int_field : string -> default:int64 -> t -> int64
(** [find_int] without the option allocation, for per-packet paths.
    Returns [default] when the field is absent or not an integer. *)

val str_field_is : string -> expected:string -> t -> bool
(** True when the (string) field is present and equals [expected];
    allocation-free. *)

val mem : string -> t -> bool
val fields : t -> (string * value) list
(** Bindings in field-name order. *)

val add_class : Class_name.t -> t -> t
val classes : t -> Class_name.t list
val has_class : Class_name.t -> t -> bool

val union : t -> t -> t
(** [union a b] merges classes and fields; on field conflict [b] wins. *)

val pp : Format.formatter -> t -> unit

(** Conventional field names used by the built-in stages. *)
module Field : sig
  val msg_type : string
  val key : string
  val url : string
  val msg_size : string
  val tenant : string
  val flow_size : string
  val operation : string
end
