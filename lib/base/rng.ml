type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

(* Finalizer from Steele et al., "Fast splittable pseudorandom number
   generators" (OOPSLA 2014). *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix64 seed }

(* Shard streams: the SplitMix split construction, applied statically.
   Stream [i] of a seed starts from an independently mixed point of the
   gamma sequence, so per-shard generators neither collide with each
   other nor with [create seed] itself (stream indices are offset by
   one), and a fixed (seed, shard count) always yields the same set of
   streams. *)
let stream_seed seed index =
  if index < 0 then invalid_arg "Rng.stream_seed: index must be non-negative";
  mix64
    (Int64.add
       (mix64 (Int64.logxor seed 0x5851F42D4C957F2DL))
       (Int64.mul (Int64.of_int (index + 1)) golden_gamma))

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t = create (int64 t)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let b = Int64.of_int bound in
  let rec go () =
    let r = Int64.shift_right_logical (int64 t) 1 in
    let v = Int64.rem r b in
    if Int64.sub r v > Int64.sub (Int64.sub Int64.max_int b) 1L then go ()
    else Int64.to_int v
  in
  go ()

let float t bound =
  let r = Int64.shift_right_logical (int64 t) 11 in
  Int64.to_float r /. 9007199254740992.0 *. bound

let bool t = Int64.logand (int64 t) 1L = 1L
let bits t = Int64.to_int (Int64.shift_right_logical (int64 t) 34)

let exponential t mean =
  let u = float t 1.0 in
  (* Guard against log 0. *)
  let u = if u <= 0.0 then 1e-300 else u in
  -.mean *. log u

let choice t a =
  if Array.length a = 0 then invalid_arg "Rng.choice: empty array";
  a.(int t (Array.length a))

let weighted_index t w =
  let total = Array.fold_left ( +. ) 0.0 w in
  if total <= 0.0 then invalid_arg "Rng.weighted_index: weights must sum > 0";
  let x = float t total in
  let n = Array.length w in
  let rec go i acc =
    if i >= n - 1 then n - 1
    else
      let acc = acc +. w.(i) in
      if x < acc then i else go (i + 1) acc
  in
  go 0 0.0

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
