(** Deterministic pseudo-random number generation.

    A SplitMix64 generator: fast, high quality for simulation purposes, and
    splittable so that every simulated component can own an independent
    stream derived from one experiment seed.  Determinism matters here —
    every experiment in the benchmark harness must be replayable from its
    seed alone. *)

type t

val create : int64 -> t
(** [create seed] makes a fresh generator. Two generators created with the
    same seed produce identical streams. *)

val split : t -> t
(** [split t] derives an independent generator; [t] advances. *)

val stream_seed : int64 -> int -> int64
(** [stream_seed seed i] derives the seed of the [i]-th independent
    stream of [seed] (SplitMix split, computed statically): shard [i] of
    a sharded data path seeds its generator with it.  Distinct indices
    give unrelated streams, none collides with [create seed], and the
    mapping is a pure function — a fixed (seed, shard count) always
    reproduces the same streams.  Requires [i >= 0]. *)

val int64 : t -> int64
(** Next raw 64-bit value. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Requires [bound > 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val bits : t -> int
(** 30 uniform bits, as a non-negative [int]. *)

val exponential : t -> float -> float
(** [exponential t mean] samples Exp with the given mean. *)

val choice : t -> 'a array -> 'a
(** Uniform choice from a non-empty array. *)

val weighted_index : t -> float array -> int
(** [weighted_index t w] returns [i] with probability [w.(i) / sum w].
    Requires a non-empty array with non-negative weights and positive sum. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
