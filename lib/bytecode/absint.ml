module IMap = Map.Make (Int)

type unproved = { up_pc : int; up_slot : int }

(* Where an operand's value came from.  [S_local (i, k)] means the
   operand is (the current value of local [i]) + [k] — the offset form
   covers guards like [i + 1 >= arr.Length]; [S_len s] means it is the
   length of environment array slot [s].  Lengths never change during a
   run, so [S_len] is always current; [S_local] is invalidated by
   [Store]. *)
type src = S_local of int * int | S_len of int | S_other

type cmp = Ceq | Cne | Clt | Cle | Cgt | Cge

(* A comparison result remembered on the stack: operand sources and
   interval snapshots from the moment the comparison executed.  The
   snapshots stay sound even if a source is later invalidated — they
   bound the values that were actually compared. *)
type test = {
  t_op : cmp;
  t_a_src : src;
  t_a_itv : Interval.t;
  t_b_src : src;
  t_b_itv : Interval.t;
}

type operand = { o_itv : Interval.t; o_src : src; o_test : test option }

type lstate = {
  l_itv : Interval.t;
  l_lt : int IMap.t;
      (** [s -> k]: [local + k < length(slot s)] proved.  Larger [k] is
          the stronger fact (it implies every smaller offset). *)
}

type state = { stack : operand list; locals : lstate array }

exception Stuck
(* The program violates the basic stack discipline this analysis assumes
   (underflow, bad local, inconsistent depths).  [Verifier.analyse] runs
   its own dataflow first, so reaching this means the precondition was
   broken; treat everything as unprovable. *)

let negate_cmp = function
  | Ceq -> Cne
  | Cne -> Ceq
  | Clt -> Cge
  | Cge -> Clt
  | Cle -> Cgt
  | Cgt -> Cle

let swap_cmp = function
  | Ceq -> Ceq
  | Cne -> Cne
  | Clt -> Cgt
  | Cgt -> Clt
  | Cle -> Cge
  | Cge -> Cle

let anon itv = { o_itv = itv; o_src = S_other; o_test = None }
let top_op = anon Interval.top

let src_equal a b =
  match (a, b) with
  | S_local (i, k), S_local (j, m) -> i = j && k = m
  | S_len i, S_len j -> i = j
  | S_other, S_other -> true
  | _ -> false

let test_equal a b =
  a.t_op = b.t_op && src_equal a.t_a_src b.t_a_src && src_equal a.t_b_src b.t_b_src
  && Interval.equal a.t_a_itv b.t_a_itv
  && Interval.equal a.t_b_itv b.t_b_itv

let join_operand a b =
  {
    o_itv = Interval.join a.o_itv b.o_itv;
    o_src = (if src_equal a.o_src b.o_src then a.o_src else S_other);
    o_test =
      (* Same comparison of the same sources: keep it, with the snapshot
         bounds joined (the compared value satisfies one side or the
         other, so the union bounds it).  Snapshots differ on every
         fixpoint iteration while the locals converge, so requiring
         equality here would erase the test before the branch uses it. *)
      (match (a.o_test, b.o_test) with
      | Some ta, Some tb
        when ta.t_op = tb.t_op && src_equal ta.t_a_src tb.t_a_src
             && src_equal ta.t_b_src tb.t_b_src ->
        Some
          {
            ta with
            t_a_itv = Interval.join ta.t_a_itv tb.t_a_itv;
            t_b_itv = Interval.join ta.t_b_itv tb.t_b_itv;
          }
      | _ -> None);
  }

let join_lstate a b =
  {
    l_itv = Interval.join a.l_itv b.l_itv;
    (* Keep facts both sides prove, at the weaker (smaller) offset. *)
    l_lt =
      IMap.merge
        (fun _ ka kb ->
          match (ka, kb) with Some ka, Some kb -> Some (min ka kb) | _ -> None)
        a.l_lt b.l_lt;
  }

let join_state a b =
  if List.length a.stack <> List.length b.stack then raise Stuck;
  {
    stack = List.map2 join_operand a.stack b.stack;
    locals = Array.map2 join_lstate a.locals b.locals;
  }

(* Widening against the previous state at a pc: intervals that grew jump
   to infinity so loop fixpoints terminate; provenance lattices are
   finite and need no widening. *)
let widen_state old next =
  let widen_test o n =
    match (o, n) with
    | Some to_, Some tn ->
      Some
        {
          tn with
          t_a_itv = Interval.widen to_.t_a_itv tn.t_a_itv;
          t_b_itv = Interval.widen to_.t_b_itv tn.t_b_itv;
        }
    | _ -> n
  in
  {
    stack =
      List.map2
        (fun o n ->
          {
            n with
            o_itv = Interval.widen o.o_itv n.o_itv;
            o_test = widen_test o.o_test n.o_test;
          })
        old.stack next.stack;
    locals =
      Array.map2
        (fun o n -> { n with l_itv = Interval.widen o.l_itv n.l_itv })
        old.locals next.locals;
  }

let operand_equal a b =
  Interval.equal a.o_itv b.o_itv && src_equal a.o_src b.o_src
  &&
  match (a.o_test, b.o_test) with
  | None, None -> true
  | Some ta, Some tb -> test_equal ta tb
  | _ -> false

let lstate_equal a b =
  Interval.equal a.l_itv b.l_itv && IMap.equal Int.equal a.l_lt b.l_lt

let state_equal a b =
  List.length a.stack = List.length b.stack
  && List.for_all2 operand_equal a.stack b.stack
  && Array.for_all2 lstate_equal a.locals b.locals

let min_len_itv (p : Program.t) s =
  Interval.of_bounds (Int64.of_int p.array_slots.(s).Program.a_min_len) Int64.max_int

(* Refine [state] under the assumption that [test] evaluated to [truth].
   Returns [None] when the assumption is infeasible (branch dead). *)
let apply_test st test truth =
  let op = if truth then test.t_op else negate_cmp test.t_op in
  let refine_local st i f =
    if i < 0 || i >= Array.length st.locals then st
    else
      match f st.locals.(i).l_itv with
      | None -> raise Exit
      | Some itv ->
        let locals = Array.copy st.locals in
        locals.(i) <- { (locals.(i)) with l_itv = itv };
        { st with locals }
  in
  let add_lt st i s k =
    if i < 0 || i >= Array.length st.locals then st
    else begin
      let locals = Array.copy st.locals in
      let l = locals.(i) in
      let k' = match IMap.find_opt s l.l_lt with Some k0 -> max k0 k | None -> k in
      locals.(i) <- { l with l_lt = IMap.add s k' l.l_lt };
      { st with locals }
    end
  in
  let refine_by op cur bound =
    match op with
    | Clt -> Interval.refine_lt cur bound
    | Cle -> Interval.refine_le cur bound
    | Cgt -> Interval.refine_gt cur bound
    | Cge -> Interval.refine_ge cur bound
    | Ceq -> Interval.refine_eq cur bound
    | Cne -> Some cur
  in
  (* [(local i + k) op bound]  <=>  [local i op (bound - k)]. *)
  let shift bound k =
    if k = 0 then bound else Interval.sub bound (Interval.const (Int64.of_int k))
  in
  try
    let st =
      match test.t_a_src with
      | S_local (i, k) ->
        refine_local st i (fun cur -> refine_by op cur (shift test.t_b_itv k))
      | _ -> st
    in
    let st =
      match test.t_b_src with
      | S_local (j, k) ->
        refine_local st j (fun cur -> refine_by (swap_cmp op) cur (shift test.t_a_itv k))
      | _ -> st
    in
    let st =
      match (op, test.t_a_src, test.t_b_src) with
      | Clt, S_local (i, k), S_len s -> add_lt st i s k
      | Cgt, S_len s, S_local (i, k) -> add_lt st i s k
      | _ -> st
    in
    Some st
  with Exit -> None

(* After any array access to slot [s] with index operand [x] that did not
   fault (checked access) or was proved (unsafe access), the index is in
   [0, length s).  If [x] is still the current value of local [i], record
   both facts on the local for later accesses. *)
let refine_after_access st x s =
  match x.o_src with
  | S_local (i, k) when i >= 0 && i < Array.length st.locals ->
    let locals = Array.copy st.locals in
    let l = locals.(i) in
    (* 0 <= local + k < len: local >= -k, and the fact (s, k). *)
    let itv =
      match
        Interval.meet l.l_itv (Interval.of_bounds (Int64.of_int (-k)) Int64.max_int)
      with
      | Some itv -> itv
      | None -> l.l_itv
    in
    let k' = match IMap.find_opt s l.l_lt with Some k0 -> max k0 k | None -> k in
    locals.(i) <- { l_itv = itv; l_lt = IMap.add s k' l.l_lt };
    { st with locals }
  | _ -> st

(* [Store i] makes stack references to local [i] stale: operands sourced
   from it lose their provenance, and remembered comparisons drop the
   side that named it (the interval snapshot stays — it bounds the value
   that was compared, which no write can retroactively change). *)
let invalidate_local st i =
  let fix_src s = match s with S_local (j, _) when j = i -> S_other | s -> s in
  let fix_test t =
    { t with t_a_src = fix_src t.t_a_src; t_b_src = fix_src t.t_b_src }
  in
  {
    st with
    stack =
      List.map
        (fun o ->
          { o with o_src = fix_src o.o_src; o_test = Option.map fix_test o.o_test })
        st.stack;
  }

let pop st =
  match st.stack with x :: rest -> (x, { st with stack = rest }) | [] -> raise Stuck

let push st x = { st with stack = x :: st.stack }

let proved (p : Program.t) st s x =
  Int64.compare x.o_itv.Interval.lo 0L >= 0
  && (Int64.compare x.o_itv.Interval.hi
        (Int64.of_int p.array_slots.(s).Program.a_min_len)
      < 0
     ||
     match x.o_src with
     | S_local (i, m) when i >= 0 && i < Array.length st.locals -> (
       (* The operand is local+m; a fact at offset k >= m gives
          local+m <= local+k < len. *)
       match IMap.find_opt s st.locals.(i).l_lt with
       | Some k -> m <= k
       | None -> false)
     | _ -> false)

(* One instruction's successors: (pc', state') pairs. *)
let step (p : Program.t) pc st =
  let len = Array.length p.code in
  let next st = [ (pc + 1, st) ] in
  let binop f =
    let b, st = pop st in
    let a, st = pop st in
    next (push st (anon (f a.o_itv b.o_itv)))
  in
  (* A small constant operand, for offset provenance through [Add]/[Sub]. *)
  let as_const o =
    let itv = o.o_itv in
    if
      Interval.equal itv (Interval.const itv.Interval.lo)
      && Int64.compare (Int64.abs itv.Interval.lo) (Int64.of_int (1 lsl 20)) < 0
    then Some (Int64.to_int itv.Interval.lo)
    else None
  in
  let offset_binop ~sub =
    let b, st = pop st in
    let a, st = pop st in
    let o_itv = (if sub then Interval.sub else Interval.add) a.o_itv b.o_itv in
    let o_src =
      match (a.o_src, as_const b, b.o_src, as_const a) with
      | S_local (i, k), Some c, _, _ -> S_local (i, if sub then k - c else k + c)
      | _, _, S_local (i, k), Some c when not sub -> S_local (i, k + c)
      | _ -> S_other
    in
    next (push st { o_itv; o_src; o_test = None })
  in
  let cmpop t_op =
    let b, st = pop st in
    let a, st = pop st in
    let test =
      { t_op; t_a_src = a.o_src; t_a_itv = a.o_itv; t_b_src = b.o_src; t_b_itv = b.o_itv }
    in
    next (push st { o_itv = Interval.booleanish; o_src = S_other; o_test = Some test })
  in
  let branch target ~jump_when_zero =
    let x, st = pop st in
    let feasible truth =
      match x.o_test with
      | None -> Some st
      | Some test -> apply_test st test truth
    in
    (* Numeric pruning: a condition whose interval excludes 0 never
       jumps on zero, and a constant 0 always does. *)
    let can_be_zero = Interval.contains x.o_itv 0L in
    let can_be_nonzero =
      not (Int64.equal x.o_itv.Interval.lo 0L && Int64.equal x.o_itv.Interval.hi 0L)
    in
    let on_zero = if can_be_zero then feasible false else None in
    let on_nonzero = if can_be_nonzero then feasible true else None in
    let zero_pc, nonzero_pc =
      if jump_when_zero then (target, pc + 1) else (pc + 1, target)
    in
    List.filter_map
      (fun x -> x)
      [
        Option.map (fun s -> (zero_pc, s)) on_zero;
        Option.map (fun s -> (nonzero_pc, s)) on_nonzero;
      ]
  in
  match p.code.(pc) with
  | Opcode.Push v -> next (push st (anon (Interval.const v)))
  | Opcode.Pop ->
    let _, st = pop st in
    next st
  | Opcode.Dup ->
    let x, st = pop st in
    next (push (push st x) x)
  | Opcode.Swap ->
    let b, st = pop st in
    let a, st = pop st in
    next (push (push st b) a)
  | Opcode.Load i ->
    if i < 0 || i >= Array.length st.locals then raise Stuck;
    next (push st { o_itv = st.locals.(i).l_itv; o_src = S_local (i, 0); o_test = None })
  | Opcode.Store i ->
    if i < 0 || i >= Array.length st.locals then raise Stuck;
    let x, st = pop st in
    let st = invalidate_local st i in
    let l_lt =
      match x.o_src with
      (* New value = local j + k, so a fact [j + m < len] becomes
         [new + (m - k) < len]. *)
      | S_local (j, k) -> IMap.map (fun m -> m - k) st.locals.(j).l_lt
      | _ -> IMap.empty
    in
    let locals = Array.copy st.locals in
    locals.(i) <- { l_itv = x.o_itv; l_lt };
    next { st with locals }
  | Opcode.Add -> offset_binop ~sub:false
  | Opcode.Sub -> offset_binop ~sub:true
  | Opcode.Mul -> binop Interval.mul
  | Opcode.Div -> binop Interval.div
  | Opcode.Rem -> binop Interval.rem
  | Opcode.Neg ->
    let x, st = pop st in
    next (push st (anon (Interval.neg x.o_itv)))
  | Opcode.Band | Opcode.Bor | Opcode.Bxor | Opcode.Shl | Opcode.Shr ->
    binop (fun _ _ -> Interval.top)
  | Opcode.Not ->
    let x, st = pop st in
    let o_test =
      Option.map (fun t -> { t with t_op = negate_cmp t.t_op }) x.o_test
    in
    next (push st { o_itv = Interval.booleanish; o_src = S_other; o_test })
  | Opcode.Eq -> cmpop Ceq
  | Opcode.Ne -> cmpop Cne
  | Opcode.Lt -> cmpop Clt
  | Opcode.Le -> cmpop Cle
  | Opcode.Gt -> cmpop Cgt
  | Opcode.Ge -> cmpop Cge
  | Opcode.Jmp t -> [ (t, st) ]
  | Opcode.Jz t -> branch t ~jump_when_zero:true
  | Opcode.Jnz t -> branch t ~jump_when_zero:false
  | Opcode.Gaload s | Opcode.Gaload_unsafe s ->
    let x, st = pop st in
    let st = refine_after_access st x s in
    next (push st top_op)
  | Opcode.Gastore s | Opcode.Gastore_unsafe s ->
    let _v, st = pop st in
    let x, st = pop st in
    next (refine_after_access st x s)
  | Opcode.Galen s -> next (push st { o_itv = min_len_itv p s; o_src = S_len s; o_test = None })
  | Opcode.Newarr ->
    let _, st = pop st in
    next (push st top_op)
  | Opcode.Aload ->
    let _, st = pop st in
    let _, st = pop st in
    next (push st top_op)
  | Opcode.Astore ->
    let _, st = pop st in
    let _, st = pop st in
    let _, st = pop st in
    next st
  | Opcode.Alen ->
    let _, st = pop st in
    next (push st (anon (Interval.of_bounds 0L Int64.max_int)))
  | Opcode.Rand ->
    let b, st = pop st in
    next (push st (anon (Interval.rand b.o_itv)))
  | Opcode.Clock ->
    next (push st (anon (Interval.of_bounds 0L Int64.max_int)))
  | Opcode.Hashmix ->
    let _, st = pop st in
    let _, st = pop st in
    next (push st top_op)
  | Opcode.Halt -> [ (len, st) ]

let widen_threshold = 20

(* Fixpoint over all pcs; returns the final abstract state before each
   instruction ([None] = unreachable). *)
let fixpoint (p : Program.t) =
  let len = Array.length p.code in
  let states : state option array = Array.make (len + 1) None in
  let visits = Array.make (len + 1) 0 in
  (* Widening points: targets of backward edges.  Every CFG cycle passes
     through its minimum pc, which is entered by a backward edge, so
     widening there is enough for termination.  Widening anywhere else
     would overshoot guard refinements inside loop bodies (a widened
     bound near [max_int] makes the next [i + c] overflow-collapse to
     top, and the damage is a self-sustaining fixpoint). *)
  let loop_head = Array.make (len + 1) false in
  Array.iteri
    (fun pc op ->
      match Opcode.jump_target op with
      | Some t when t <= pc && t >= 0 && t <= len -> loop_head.(t) <- true
      | _ -> ())
    p.code;
  let pending = Queue.create () in
  let schedule pc st =
    if pc < 0 || pc > len then raise Stuck;
    match states.(pc) with
    | None ->
      states.(pc) <- Some st;
      if pc < len then Queue.add pc pending
    | Some old ->
      let joined = join_state old st in
      let joined =
        if loop_head.(pc) && visits.(pc) > widen_threshold then widen_state old joined
        else joined
      in
      if not (state_equal old joined) then begin
        states.(pc) <- Some joined;
        if pc < len then Queue.add pc pending
      end
  in
  let init =
    {
      stack = [];
      locals =
        Array.make (max p.n_locals 1) { l_itv = Interval.top; l_lt = IMap.empty };
    }
  in
  schedule 0 init;
  while not (Queue.is_empty pending) do
    let pc = Queue.pop pending in
    visits.(pc) <- visits.(pc) + 1;
    match states.(pc) with
    | None -> ()
    | Some st -> List.iter (fun (pc', st') -> schedule pc' st') (step p pc st)
  done;
  states

(* The index operand of an access: top of stack for loads, below the
   value for stores. *)
let index_operand op st =
  match (op, st.stack) with
  | (Opcode.Gaload _ | Opcode.Gaload_unsafe _), x :: _ -> x
  | (Opcode.Gastore _ | Opcode.Gastore_unsafe _), _ :: x :: _ -> x
  | _ -> raise Stuck

let check (p : Program.t) =
  let uses_unsafe =
    Array.exists
      (function Opcode.Gaload_unsafe _ | Opcode.Gastore_unsafe _ -> true | _ -> false)
      p.code
  in
  if not uses_unsafe then Ok ()
  else
    try
      let states = fixpoint p in
      let result = ref (Ok ()) in
      Array.iteri
        (fun pc op ->
          match (op, !result) with
          | (Opcode.Gaload_unsafe s | Opcode.Gastore_unsafe s), Ok () -> (
            match states.(pc) with
            | None -> () (* unreachable: never executes *)
            | Some st ->
              if not (proved p st s (index_operand op st)) then
                result := Error { up_pc = pc; up_slot = s })
          | _ -> ())
        p.code;
      !result
    with Stuck ->
      let pc = ref 0 in
      let slot = ref 0 in
      (try
         Array.iteri
           (fun i op ->
             match op with
             | Opcode.Gaload_unsafe s | Opcode.Gastore_unsafe s ->
               pc := i;
               slot := s;
               raise Exit
             | _ -> ())
           p.code
       with Exit -> ());
      Error { up_pc = !pc; up_slot = !slot }

let harden (p : Program.t) =
  try
    let states = fixpoint p in
    let count = ref 0 in
    let code =
      Array.mapi
        (fun pc op ->
          match op with
          | (Opcode.Gaload s | Opcode.Gastore s) as op -> (
            match states.(pc) with
            | None -> op
            | Some st ->
              if proved p st s (index_operand op st) then begin
                incr count;
                match op with
                | Opcode.Gaload s -> Opcode.Gaload_unsafe s
                | _ -> Opcode.Gastore_unsafe s
              end
              else op)
          | op -> op)
        p.code
    in
    if !count = 0 then (p, 0) else ({ p with code }, !count)
  with Stuck -> (p, 0)
