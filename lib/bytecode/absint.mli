(** Interval abstract interpretation over bytecode.

    Re-derives, from the code alone, which [Gaload]/[Gastore] indices are
    provably in bounds.  Two proof routes exist for an access to slot [s]
    with index operand [x]:

    - {b min-length}: [0 <= x] and [x < a_min_len s].  The runtime
      refuses to invoke the program with an array shorter than
      [a_min_len], so the access is safe for any conforming environment.
    - {b guard}: [0 <= x], [x] is the current value of local [i], and a
      dominating comparison established [local i < length(slot s)]
      (e.g. the loop guard [if i >= arr.Length then ... else body]).
      Environment arrays cannot be resized during a run, so the fact
      survives until local [i] is written.

    Because the proof is recomputed here, unsafe opcodes carry no trusted
    certificate: {!Verifier.analyse} calls {!check} on any program using
    them, and hand-crafted bytecode whose accesses cannot be re-proved is
    rejected before installation. *)

type unproved = { up_pc : int; up_slot : int }
(** An unsafe access the analysis could not prove in bounds. *)

val check : Program.t -> (unit, unproved) result
(** Verify that every [Gaload_unsafe] / [Gastore_unsafe] access is
    provably in bounds.  Assumes the program already passed the basic
    stack-discipline dataflow (call from {!Verifier.analyse}). *)

val harden : Program.t -> Program.t * int
(** Rewrite every provably-in-bounds [Gaload]/[Gastore] to its unchecked
    form; returns the rewritten program and the number of accesses
    proved.  [harden] never changes semantics: an access it cannot prove
    keeps its runtime check.  The result always satisfies {!check}. *)
