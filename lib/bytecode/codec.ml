let version = 2
let magic = "EDBC"

(* ------------------------------------------------------------------ *)
(* Encoding *)

let put_u8 b v = Buffer.add_uint8 b (v land 0xff)
let put_u16 b v = Buffer.add_uint16_le b (v land 0xffff)
let put_u32 b v = Buffer.add_int32_le b (Int32.of_int v)
let put_i64 b v = Buffer.add_int64_le b v

let put_string b s =
  put_u16 b (String.length s);
  Buffer.add_string b s

let entity_code = function Program.Packet -> 0 | Program.Message -> 1 | Program.Global -> 2
let access_code = function Program.Read_only -> 0 | Program.Read_write -> 1

(* Opcode tags.  Operand-free opcodes and operand-carrying ones share the
   byte space; the tag determines how many operand bytes follow. *)
let opcode_tag : Opcode.t -> int = function
  | Opcode.Push _ -> 0
  | Opcode.Pop -> 1
  | Opcode.Dup -> 2
  | Opcode.Swap -> 3
  | Opcode.Load _ -> 4
  | Opcode.Store _ -> 5
  | Opcode.Add -> 6
  | Opcode.Sub -> 7
  | Opcode.Mul -> 8
  | Opcode.Div -> 9
  | Opcode.Rem -> 10
  | Opcode.Neg -> 11
  | Opcode.Band -> 12
  | Opcode.Bor -> 13
  | Opcode.Bxor -> 14
  | Opcode.Shl -> 15
  | Opcode.Shr -> 16
  | Opcode.Not -> 17
  | Opcode.Eq -> 18
  | Opcode.Ne -> 19
  | Opcode.Lt -> 20
  | Opcode.Le -> 21
  | Opcode.Gt -> 22
  | Opcode.Ge -> 23
  | Opcode.Jmp _ -> 24
  | Opcode.Jz _ -> 25
  | Opcode.Jnz _ -> 26
  | Opcode.Gaload _ -> 27
  | Opcode.Gastore _ -> 28
  | Opcode.Galen _ -> 29
  | Opcode.Newarr -> 30
  | Opcode.Aload -> 31
  | Opcode.Astore -> 32
  | Opcode.Alen -> 33
  | Opcode.Rand -> 34
  | Opcode.Clock -> 35
  | Opcode.Hashmix -> 36
  | Opcode.Halt -> 37
  | Opcode.Gaload_unsafe _ -> 38
  | Opcode.Gastore_unsafe _ -> 39

let put_opcode b op =
  put_u8 b (opcode_tag op);
  match op with
  | Opcode.Push v -> put_i64 b v
  | Opcode.Load i | Opcode.Store i | Opcode.Jmp i | Opcode.Jz i | Opcode.Jnz i
  | Opcode.Gaload i | Opcode.Gastore i | Opcode.Galen i
  | Opcode.Gaload_unsafe i | Opcode.Gastore_unsafe i ->
    put_u32 b i
  | _ -> ()

let encode (p : Program.t) =
  let b = Buffer.create 256 in
  Buffer.add_string b magic;
  put_u8 b version;
  put_string b p.Program.name;
  put_u32 b p.Program.n_locals;
  put_u32 b p.Program.stack_limit;
  put_u32 b p.Program.heap_limit;
  put_u32 b p.Program.step_limit;
  put_u16 b (Array.length p.Program.scalar_slots);
  Array.iter
    (fun (s : Program.scalar_slot) ->
      put_string b s.Program.s_name;
      put_u8 b (entity_code s.Program.s_entity);
      put_u8 b (access_code s.Program.s_access);
      put_u16 b s.Program.s_local)
    p.Program.scalar_slots;
  put_u16 b (Array.length p.Program.array_slots);
  Array.iter
    (fun (a : Program.array_slot) ->
      put_string b a.Program.a_name;
      put_u8 b (entity_code a.Program.a_entity);
      put_u8 b (access_code a.Program.a_access);
      put_u16 b a.Program.a_min_len)
    p.Program.array_slots;
  put_u32 b (Array.length p.Program.code);
  Array.iter (put_opcode b) p.Program.code;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Decoding *)

type error = { offset : int; message : string }

let error_to_string e = Printf.sprintf "offset %d: %s" e.offset e.message
let pp_error fmt e = Format.pp_print_string fmt (error_to_string e)

exception Decode_error of error

type reader = { data : string; mutable pos : int }

let derr r message = raise (Decode_error { offset = r.pos; message })

let need r n =
  if r.pos + n > String.length r.data then derr r (Printf.sprintf "truncated (need %d bytes)" n)

let get_u8 r =
  need r 1;
  let v = Char.code r.data.[r.pos] in
  r.pos <- r.pos + 1;
  v

let get_u16 r =
  need r 2;
  let v = Char.code r.data.[r.pos] lor (Char.code r.data.[r.pos + 1] lsl 8) in
  r.pos <- r.pos + 2;
  v

let get_u32 r =
  need r 4;
  let v = ref 0 in
  for k = 3 downto 0 do
    v := (!v lsl 8) lor Char.code r.data.[r.pos + k]
  done;
  r.pos <- r.pos + 4;
  !v

let get_i64 r =
  need r 8;
  let v = ref 0L in
  for k = 7 downto 0 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code r.data.[r.pos + k]))
  done;
  r.pos <- r.pos + 8;
  !v

let get_string r =
  let len = get_u16 r in
  need r len;
  let s = String.sub r.data r.pos len in
  r.pos <- r.pos + len;
  s

let entity_of_code r = function
  | 0 -> Program.Packet
  | 1 -> Program.Message
  | 2 -> Program.Global
  | c -> derr r (Printf.sprintf "bad entity code %d" c)

let access_of_code r = function
  | 0 -> Program.Read_only
  | 1 -> Program.Read_write
  | c -> derr r (Printf.sprintf "bad access code %d" c)

let get_opcode r =
  let tag = get_u8 r in
  match tag with
  | 0 -> Opcode.Push (get_i64 r)
  | 1 -> Opcode.Pop
  | 2 -> Opcode.Dup
  | 3 -> Opcode.Swap
  | 4 -> Opcode.Load (get_u32 r)
  | 5 -> Opcode.Store (get_u32 r)
  | 6 -> Opcode.Add
  | 7 -> Opcode.Sub
  | 8 -> Opcode.Mul
  | 9 -> Opcode.Div
  | 10 -> Opcode.Rem
  | 11 -> Opcode.Neg
  | 12 -> Opcode.Band
  | 13 -> Opcode.Bor
  | 14 -> Opcode.Bxor
  | 15 -> Opcode.Shl
  | 16 -> Opcode.Shr
  | 17 -> Opcode.Not
  | 18 -> Opcode.Eq
  | 19 -> Opcode.Ne
  | 20 -> Opcode.Lt
  | 21 -> Opcode.Le
  | 22 -> Opcode.Gt
  | 23 -> Opcode.Ge
  | 24 -> Opcode.Jmp (get_u32 r)
  | 25 -> Opcode.Jz (get_u32 r)
  | 26 -> Opcode.Jnz (get_u32 r)
  | 27 -> Opcode.Gaload (get_u32 r)
  | 28 -> Opcode.Gastore (get_u32 r)
  | 29 -> Opcode.Galen (get_u32 r)
  | 30 -> Opcode.Newarr
  | 31 -> Opcode.Aload
  | 32 -> Opcode.Astore
  | 33 -> Opcode.Alen
  | 34 -> Opcode.Rand
  | 35 -> Opcode.Clock
  | 36 -> Opcode.Hashmix
  | 37 -> Opcode.Halt
  | 38 -> Opcode.Gaload_unsafe (get_u32 r)
  | 39 -> Opcode.Gastore_unsafe (get_u32 r)
  | t -> derr r (Printf.sprintf "bad opcode tag %d" t)

let max_reasonable = 1 lsl 20

let check_count r what n =
  if n < 0 || n > max_reasonable then derr r (Printf.sprintf "unreasonable %s count %d" what n)

let decode data =
  let r = { data; pos = 0 } in
  try
    need r 4;
    if String.sub data 0 4 <> magic then derr r "bad magic";
    r.pos <- 4;
    let v = get_u8 r in
    if v <> version then derr r (Printf.sprintf "unsupported version %d" v);
    let name = get_string r in
    let n_locals = get_u32 r in
    let stack_limit = get_u32 r in
    let heap_limit = get_u32 r in
    let step_limit = get_u32 r in
    check_count r "locals" n_locals;
    check_count r "stack" stack_limit;
    check_count r "heap" heap_limit;
    let n_scalars = get_u16 r in
    let scalar_slots =
      Array.init n_scalars (fun _ ->
          let s_name = get_string r in
          let s_entity = entity_of_code r (get_u8 r) in
          let s_access = access_of_code r (get_u8 r) in
          let s_local = get_u16 r in
          { Program.s_name; s_entity; s_access; s_local })
    in
    let n_arrays = get_u16 r in
    let array_slots =
      Array.init n_arrays (fun _ ->
          let a_name = get_string r in
          let a_entity = entity_of_code r (get_u8 r) in
          let a_access = access_of_code r (get_u8 r) in
          let a_min_len = get_u16 r in
          { Program.a_name; a_entity; a_access; a_min_len })
    in
    let n_code = get_u32 r in
    check_count r "instruction" n_code;
    let code = Array.init n_code (fun _ -> get_opcode r) in
    if r.pos <> String.length data then derr r "trailing bytes";
    Ok
      (Program.make ~name ~code ~scalar_slots ~array_slots ~n_locals ~stack_limit
         ~heap_limit ~step_limit ())
  with Decode_error e -> Error e
