(* Install-time closure compilation of verified bytecode (threaded code).

   [Interp.run] pays a per-step tax that has nothing to do with the
   action function's logic: an opcode [match] dispatch, a heap-allocated
   [next] ref per retired instruction, pc/sp ref-cell bookkeeping and a
   step-limit test on every instruction.  Installation is the natural
   place to spend one-off work removing it (the same trade eBPF makes:
   verify once, then run native), so this module translates a verified
   program into nested OCaml closures — one chain per basic block,
   direct calls between blocks — fixing at compile time everything the
   verifier proved static:

   - the verifier guarantees a single consistent operand-stack depth per
     pc, so the stack becomes direct slot addressing: no sp, no
     push/pop, every operand read and written at a byte offset known at
     compile time (and below [stack_limit], so accesses are unchecked);
   - the operand stack and locals live in a [Bytes.t] of unboxed 8-byte
     slots accessed through the [%caml_bytes_get64u]/[set64u]
     primitives.  An [int64 array] would box every arithmetic result
     and run the write barrier on every store; with raw slots the
     native compiler keeps whole operand chains unboxed, so straight-
     line arithmetic neither allocates nor touches the GC;
   - steps are bulk-charged per basic block (one add + compare instead
     of one per instruction), with the charge corrected at fault sites
     so accounting matches the interpreter exactly;
   - the peak-stack statistic is a per-block constant, folded in at
     block exit;
   - locals indices and array-slot numbers were range-checked by the
     verifier, so those accesses are unchecked too;
   - [Gaload_unsafe]/[Gastore_unsafe] keep the bounds proofs the
     verifier re-derived — no checks on the proved path.

   Faults, stats and published state are bit-identical to [Interp.run]
   on the same env/now/rng: test/test_compiled.ml enforces this
   differentially on every example function and on randomized programs.

   When a block's remaining step budget cannot cover the whole block,
   execution falls back to [slow_run], a per-instruction twin of
   [Interp.run] over the same machine state, so step-limit faults land
   on exactly the same instruction with exactly the same partial
   effects. *)

module P = Program
module Rng = Eden_base.Rng

type state = {
  stack : Bytes.t; (* stack_limit unboxed int64 slots, 8 bytes each *)
  locals : Bytes.t; (* n_locals unboxed int64 slots *)
  mutable env_scalars : int64 array;
  mutable env_arrays : int64 array array;
  mutable heap : int64 array array;
  mutable n_heap : int;
  mutable heap_cells : int;
  mutable steps : int;
  mutable max_sp : int;
  mutable now_ns : int64;
  mutable rng : Rng.t;
}

exception F of Interp.fault

external b64get : Bytes.t -> int -> int64 = "%caml_bytes_get64u"
external b64set : Bytes.t -> int -> int64 -> unit = "%caml_bytes_set64u"

(* Keep this alias monomorphic: with a polymorphic scheme the
   generic-array primitive can specialise wrongly for unboxable
   elements on OCaml 5.1 and read garbage. *)
let aget : int64 array array -> int -> int64 array = Array.unsafe_get

(* ------------------------------------------------------------------ *)
(* Slow path: per-instruction execution from an arbitrary pc, used when
   the remaining step budget cannot cover a whole block.  Mirrors
   [Interp.run] exactly (fault sites, step accounting, stack peaks). *)

let slow_run (p : P.t) (st : state) pc0 sp0 =
  let code = p.P.code in
  let len = Array.length code in
  let stack = st.stack and locals = st.locals in
  let pc = ref pc0 in
  let sp = ref sp0 in
  let push v =
    b64set stack (!sp lsl 3) v;
    incr sp;
    if !sp > st.max_sp then st.max_sp <- !sp
  in
  let pop () =
    decr sp;
    b64get stack (!sp lsl 3)
  in
  let to_bool v = if Int64.equal v 0L then 0L else 1L in
  let env_array s = st.env_arrays.(s) in
  let check_index arr i =
    let n = Array.length arr in
    if i < 0 || i >= n then raise (F (Interp.Array_bounds { pc = !pc; index = i; length = n }))
  in
  let heap_get r =
    let r = Int64.to_int r in
    if r < 0 || r >= st.n_heap then raise (F (Interp.Invalid_reference { pc = !pc }));
    st.heap.(r)
  in
  let alloc n =
    if n < 0 then raise (F (Interp.Negative_array_length { pc = !pc; length = n }));
    if st.heap_cells + n > p.P.heap_limit then
      raise (F (Interp.Heap_exhausted { pc = !pc; requested = n; limit = p.P.heap_limit }));
    if st.n_heap = Array.length st.heap then begin
      let bigger = Array.make (2 * st.n_heap) [||] in
      Array.blit st.heap 0 bigger 0 st.n_heap;
      st.heap <- bigger
    end;
    st.heap.(st.n_heap) <- Array.make n 0L;
    st.heap_cells <- st.heap_cells + n;
    let r = st.n_heap in
    st.n_heap <- r + 1;
    Int64.of_int r
  in
  while !pc < len do
    if st.steps >= p.P.step_limit then
      raise (F (Interp.Step_limit_exceeded { limit = p.P.step_limit }));
    st.steps <- st.steps + 1;
    let op = code.(!pc) in
    let next = ref (!pc + 1) in
    (match op with
    | Opcode.Push v -> push v
    | Opcode.Pop -> ignore (pop ())
    | Opcode.Dup ->
      let v = pop () in
      push v;
      push v
    | Opcode.Swap ->
      let b = pop () in
      let a = pop () in
      push b;
      push a
    | Opcode.Load i -> push (b64get locals (i lsl 3))
    | Opcode.Store i -> b64set locals (i lsl 3) (pop ())
    | Opcode.Add ->
      let b = pop () and a = pop () in
      push (Int64.add a b)
    | Opcode.Sub ->
      let b = pop () and a = pop () in
      push (Int64.sub a b)
    | Opcode.Mul ->
      let b = pop () and a = pop () in
      push (Int64.mul a b)
    | Opcode.Div ->
      let b = pop () and a = pop () in
      if Int64.equal b 0L then raise (F (Interp.Division_by_zero { pc = !pc }));
      push (Int64.div a b)
    | Opcode.Rem ->
      let b = pop () and a = pop () in
      if Int64.equal b 0L then raise (F (Interp.Division_by_zero { pc = !pc }));
      push (Int64.rem a b)
    | Opcode.Neg -> push (Int64.neg (pop ()))
    | Opcode.Band ->
      let b = pop () and a = pop () in
      push (Int64.logand a b)
    | Opcode.Bor ->
      let b = pop () and a = pop () in
      push (Int64.logor a b)
    | Opcode.Bxor ->
      let b = pop () and a = pop () in
      push (Int64.logxor a b)
    | Opcode.Shl ->
      let b = pop () and a = pop () in
      push (Int64.shift_left a (Int64.to_int b land 63))
    | Opcode.Shr ->
      let b = pop () and a = pop () in
      push (Int64.shift_right_logical a (Int64.to_int b land 63))
    | Opcode.Not -> push (if Int64.equal (pop ()) 0L then 1L else 0L)
    | Opcode.Eq ->
      let b = pop () and a = pop () in
      push (if Int64.equal a b then 1L else 0L)
    | Opcode.Ne ->
      let b = pop () and a = pop () in
      push (if Int64.equal a b then 0L else 1L)
    | Opcode.Lt ->
      let b = pop () and a = pop () in
      push (if Int64.compare a b < 0 then 1L else 0L)
    | Opcode.Le ->
      let b = pop () and a = pop () in
      push (if Int64.compare a b <= 0 then 1L else 0L)
    | Opcode.Gt ->
      let b = pop () and a = pop () in
      push (if Int64.compare a b > 0 then 1L else 0L)
    | Opcode.Ge ->
      let b = pop () and a = pop () in
      push (if Int64.compare a b >= 0 then 1L else 0L)
    | Opcode.Jmp t -> next := t
    | Opcode.Jz t -> if Int64.equal (to_bool (pop ())) 0L then next := t
    | Opcode.Jnz t -> if not (Int64.equal (to_bool (pop ())) 0L) then next := t
    | Opcode.Gaload s ->
      let i = Int64.to_int (pop ()) in
      let arr = env_array s in
      check_index arr i;
      push arr.(i)
    | Opcode.Gastore s ->
      let v = pop () in
      let i = Int64.to_int (pop ()) in
      let arr = env_array s in
      check_index arr i;
      arr.(i) <- v
    | Opcode.Gaload_unsafe s ->
      let i = Int64.to_int (pop ()) in
      push (Array.unsafe_get (env_array s) i)
    | Opcode.Gastore_unsafe s ->
      let v = pop () in
      let i = Int64.to_int (pop ()) in
      Array.unsafe_set (env_array s) i v
    | Opcode.Galen s -> push (Int64.of_int (Array.length (env_array s)))
    | Opcode.Newarr -> push (alloc (Int64.to_int (pop ())))
    | Opcode.Aload ->
      let i = Int64.to_int (pop ()) in
      let arr = heap_get (pop ()) in
      check_index arr i;
      push arr.(i)
    | Opcode.Astore ->
      let v = pop () in
      let i = Int64.to_int (pop ()) in
      let arr = heap_get (pop ()) in
      check_index arr i;
      arr.(i) <- v
    | Opcode.Alen -> push (Int64.of_int (Array.length (heap_get (pop ()))))
    | Opcode.Rand ->
      let bound = pop () in
      if Int64.compare bound 0L <= 0 then
        raise (F (Interp.Bad_random_bound { pc = !pc; bound }));
      push (Int64.of_int (Rng.int st.rng (Int64.to_int bound)))
    | Opcode.Clock -> push st.now_ns
    | Opcode.Hashmix ->
      let b = pop () and a = pop () in
      let m =
        Int64.mul (Int64.logxor (Int64.mul a 0x9E3779B97F4A7C15L) b) 0xBF58476D1CE4E5B9L
      in
      push (Int64.logxor m (Int64.shift_right_logical m 31))
    | Opcode.Halt -> next := len);
    pc := !next
  done

(* ------------------------------------------------------------------ *)
(* Fast path: one closure per instruction, chained within a basic block;
   blocks linked through patchable refs.  [d] is the statically known
   operand-stack depth before the instruction; [k] the next closure;
   [die] corrects the block's bulk step charge and the deferred stack
   peak before raising a mid-block fault.  Stack-slot and local byte
   offsets are fixed here, at compile time. *)

let comp_instr (p : P.t) ~pc ~d ~(k : state -> unit) ~(die : state -> Interp.fault -> unit) :
    state -> unit =
  let heap_limit = p.P.heap_limit in
  (* Byte offsets of the slot at depth d and the one/two/three below. *)
  let o0 = d lsl 3 in
  let o1 = (d - 1) lsl 3 in
  let o2 = (d - 2) lsl 3 in
  let o3 = (d - 3) lsl 3 in
  match p.P.code.(pc) with
  | Opcode.Push v ->
    fun st ->
      b64set st.stack o0 v;
      k st
  | Opcode.Pop -> k (* the value simply drops below the live depth *)
  | Opcode.Dup ->
    fun st ->
      b64set st.stack o0 (b64get st.stack o1);
      k st
  | Opcode.Swap ->
    fun st ->
      let a = b64get st.stack o2 and b = b64get st.stack o1 in
      b64set st.stack o2 b;
      b64set st.stack o1 a;
      k st
  | Opcode.Load i ->
    let oi = i lsl 3 in
    fun st ->
      b64set st.stack o0 (b64get st.locals oi);
      k st
  | Opcode.Store i ->
    let oi = i lsl 3 in
    fun st ->
      b64set st.locals oi (b64get st.stack o1);
      k st
  | Opcode.Add ->
    fun st ->
      b64set st.stack o2 (Int64.add (b64get st.stack o2) (b64get st.stack o1));
      k st
  | Opcode.Sub ->
    fun st ->
      b64set st.stack o2 (Int64.sub (b64get st.stack o2) (b64get st.stack o1));
      k st
  | Opcode.Mul ->
    fun st ->
      b64set st.stack o2 (Int64.mul (b64get st.stack o2) (b64get st.stack o1));
      k st
  | Opcode.Div ->
    fun st ->
      let b = b64get st.stack o1 in
      if Int64.equal b 0L then die st (Interp.Division_by_zero { pc })
      else begin
        b64set st.stack o2 (Int64.div (b64get st.stack o2) b);
        k st
      end
  | Opcode.Rem ->
    fun st ->
      let b = b64get st.stack o1 in
      if Int64.equal b 0L then die st (Interp.Division_by_zero { pc })
      else begin
        b64set st.stack o2 (Int64.rem (b64get st.stack o2) b);
        k st
      end
  | Opcode.Neg ->
    fun st ->
      b64set st.stack o1 (Int64.neg (b64get st.stack o1));
      k st
  | Opcode.Band ->
    fun st ->
      b64set st.stack o2 (Int64.logand (b64get st.stack o2) (b64get st.stack o1));
      k st
  | Opcode.Bor ->
    fun st ->
      b64set st.stack o2 (Int64.logor (b64get st.stack o2) (b64get st.stack o1));
      k st
  | Opcode.Bxor ->
    fun st ->
      b64set st.stack o2 (Int64.logxor (b64get st.stack o2) (b64get st.stack o1));
      k st
  | Opcode.Shl ->
    fun st ->
      b64set st.stack o2
        (Int64.shift_left (b64get st.stack o2) (Int64.to_int (b64get st.stack o1) land 63));
      k st
  | Opcode.Shr ->
    fun st ->
      b64set st.stack o2
        (Int64.shift_right_logical (b64get st.stack o2)
           (Int64.to_int (b64get st.stack o1) land 63));
      k st
  | Opcode.Not ->
    fun st ->
      b64set st.stack o1 (if Int64.equal (b64get st.stack o1) 0L then 1L else 0L);
      k st
  | Opcode.Eq ->
    fun st ->
      b64set st.stack o2
        (if Int64.equal (b64get st.stack o2) (b64get st.stack o1) then 1L else 0L);
      k st
  | Opcode.Ne ->
    fun st ->
      b64set st.stack o2
        (if Int64.equal (b64get st.stack o2) (b64get st.stack o1) then 0L else 1L);
      k st
  | Opcode.Lt ->
    fun st ->
      b64set st.stack o2
        (if Int64.compare (b64get st.stack o2) (b64get st.stack o1) < 0 then 1L else 0L);
      k st
  | Opcode.Le ->
    fun st ->
      b64set st.stack o2
        (if Int64.compare (b64get st.stack o2) (b64get st.stack o1) <= 0 then 1L else 0L);
      k st
  | Opcode.Gt ->
    fun st ->
      b64set st.stack o2
        (if Int64.compare (b64get st.stack o2) (b64get st.stack o1) > 0 then 1L else 0L);
      k st
  | Opcode.Ge ->
    fun st ->
      b64set st.stack o2
        (if Int64.compare (b64get st.stack o2) (b64get st.stack o1) >= 0 then 1L else 0L);
      k st
  | Opcode.Gaload s ->
    fun st ->
      let arr = aget st.env_arrays s in
      let i = Int64.to_int (b64get st.stack o1) in
      if i < 0 || i >= Array.length arr then
        die st (Interp.Array_bounds { pc; index = i; length = Array.length arr })
      else begin
        b64set st.stack o1 (Array.unsafe_get arr i);
        k st
      end
  | Opcode.Gastore s ->
    fun st ->
      let arr = aget st.env_arrays s in
      let i = Int64.to_int (b64get st.stack o2) in
      if i < 0 || i >= Array.length arr then
        die st (Interp.Array_bounds { pc; index = i; length = Array.length arr })
      else begin
        Array.unsafe_set arr i (b64get st.stack o1);
        k st
      end
  | Opcode.Gaload_unsafe s ->
    fun st ->
      b64set st.stack o1
        (Array.unsafe_get (aget st.env_arrays s) (Int64.to_int (b64get st.stack o1)));
      k st
  | Opcode.Gastore_unsafe s ->
    fun st ->
      Array.unsafe_set (aget st.env_arrays s)
        (Int64.to_int (b64get st.stack o2))
        (b64get st.stack o1);
      k st
  | Opcode.Galen s ->
    fun st ->
      b64set st.stack o0 (Int64.of_int (Array.length (aget st.env_arrays s)));
      k st
  | Opcode.Newarr ->
    fun st ->
      let n = Int64.to_int (b64get st.stack o1) in
      if n < 0 then die st (Interp.Negative_array_length { pc; length = n })
      else if st.heap_cells + n > heap_limit then
        die st (Interp.Heap_exhausted { pc; requested = n; limit = heap_limit })
      else begin
        if st.n_heap = Array.length st.heap then begin
          let bigger = Array.make (2 * st.n_heap) [||] in
          Array.blit st.heap 0 bigger 0 st.n_heap;
          st.heap <- bigger
        end;
        st.heap.(st.n_heap) <- Array.make n 0L;
        st.heap_cells <- st.heap_cells + n;
        b64set st.stack o1 (Int64.of_int st.n_heap);
        st.n_heap <- st.n_heap + 1;
        k st
      end
  | Opcode.Aload ->
    fun st ->
      let r = Int64.to_int (b64get st.stack o2) in
      if r < 0 || r >= st.n_heap then die st (Interp.Invalid_reference { pc })
      else begin
        let arr = aget st.heap r in
        let i = Int64.to_int (b64get st.stack o1) in
        if i < 0 || i >= Array.length arr then
          die st (Interp.Array_bounds { pc; index = i; length = Array.length arr })
        else begin
          b64set st.stack o2 (Array.unsafe_get arr i);
          k st
        end
      end
  | Opcode.Astore ->
    fun st ->
      let r = Int64.to_int (b64get st.stack o3) in
      if r < 0 || r >= st.n_heap then die st (Interp.Invalid_reference { pc })
      else begin
        let arr = aget st.heap r in
        let i = Int64.to_int (b64get st.stack o2) in
        if i < 0 || i >= Array.length arr then
          die st (Interp.Array_bounds { pc; index = i; length = Array.length arr })
        else begin
          Array.unsafe_set arr i (b64get st.stack o1);
          k st
        end
      end
  | Opcode.Alen ->
    fun st ->
      let r = Int64.to_int (b64get st.stack o1) in
      if r < 0 || r >= st.n_heap then die st (Interp.Invalid_reference { pc })
      else begin
        b64set st.stack o1 (Int64.of_int (Array.length (aget st.heap r)));
        k st
      end
  | Opcode.Rand ->
    fun st ->
      let bound = b64get st.stack o1 in
      if Int64.compare bound 0L <= 0 then die st (Interp.Bad_random_bound { pc; bound })
      else begin
        b64set st.stack o1 (Int64.of_int (Rng.int st.rng (Int64.to_int bound)));
        k st
      end
  | Opcode.Clock ->
    fun st ->
      b64set st.stack o0 st.now_ns;
      k st
  | Opcode.Hashmix ->
    fun st ->
      let m =
        Int64.mul
          (Int64.logxor (Int64.mul (b64get st.stack o2) 0x9E3779B97F4A7C15L)
             (b64get st.stack o1))
          0xBF58476D1CE4E5B9L
      in
      b64set st.stack o2 (Int64.logxor m (Int64.shift_right_logical m 31));
      k st
  | Opcode.Jmp _ | Opcode.Jz _ | Opcode.Jnz _ | Opcode.Halt ->
    (* Block terminators are compiled by [build], never here. *)
    assert false

(* ------------------------------------------------------------------ *)
(* Block discovery and threading *)

let build (p : P.t) : state -> unit =
  let code = p.P.code in
  let len = Array.length code in
  (* Static operand-stack depth before each reachable pc (the verifier
     proved it unique); -1 marks unreachable instructions, which get no
     closure because control can never arrive there. *)
  let depth = Array.make len (-1) in
  let q = Queue.create () in
  let sched pc dpt =
    if pc < len && depth.(pc) < 0 then begin
      depth.(pc) <- dpt;
      Queue.add pc q
    end
  in
  sched 0 0;
  while not (Queue.is_empty q) do
    let pc = Queue.pop q in
    let op = code.(pc) in
    let pops, pushes = Opcode.stack_effect op in
    let d' = depth.(pc) - pops + pushes in
    (match Opcode.jump_target op with Some t -> sched t d' | None -> ());
    if not (Opcode.is_terminator op) then sched (pc + 1) d'
  done;
  let dafter pc =
    let pops, pushes = Opcode.stack_effect code.(pc) in
    depth.(pc) - pops + pushes
  in
  let leader = Array.make len false in
  leader.(0) <- true;
  for pc = 0 to len - 1 do
    if depth.(pc) >= 0 then begin
      (match Opcode.jump_target code.(pc) with
      | Some t when t < len -> leader.(t) <- true
      | Some _ | None -> ());
      match code.(pc) with
      | (Opcode.Jz _ | Opcode.Jnz _) when pc + 1 < len -> leader.(pc + 1) <- true
      | _ -> ()
    end
  done;
  let entries =
    Array.init len (fun _ -> ref (fun (_ : state) -> assert false))
  in
  (* Transfer control to pc [t]; [t = len] is normal completion. *)
  let jump_to t : state -> unit =
    if t >= len then fun _ -> ()
    else begin
      let r = entries.(t) in
      fun st -> !r st
    end
  in
  let block_end l =
    let rec go pc =
      match code.(pc) with
      | Opcode.Jmp _ | Opcode.Halt | Opcode.Jz _ | Opcode.Jnz _ -> pc
      | _ -> if pc + 1 >= len || leader.(pc + 1) then pc else go (pc + 1)
    in
    go l
  in
  let compile_block l =
    let e = block_end l in
    let n = e - l + 1 in
    (* Peak depth inside the block and its per-instruction prefixes; the
       peak is folded into [max_sp] once, at block exit (or, corrected,
       at a fault site), never per push. *)
    let pmax = Array.make (n + 1) (-1) in
    for k = 1 to n do
      pmax.(k) <- max pmax.(k - 1) (dafter (l + k - 1))
    done;
    let bmax = pmax.(n) in
    let upd st = if bmax > st.max_sp then st.max_sp <- bmax in
    let die_for idx =
      let rollback = n - (idx + 1) in
      let mupto = pmax.(idx) in
      fun st f ->
        st.steps <- st.steps - rollback;
        if mupto > st.max_sp then st.max_sp <- mupto;
        raise (F f)
    in
    let last : state -> unit =
      let d = depth.(e) in
      let o1 = (d - 1) lsl 3 in
      match code.(e) with
      | Opcode.Jmp t ->
        let g = jump_to t in
        fun st ->
          upd st;
          g st
      | Opcode.Halt -> upd
      | Opcode.Jz t ->
        let g = jump_to t and h = jump_to (e + 1) in
        fun st ->
          upd st;
          if Int64.equal (b64get st.stack o1) 0L then g st else h st
      | Opcode.Jnz t ->
        let g = jump_to t and h = jump_to (e + 1) in
        fun st ->
          upd st;
          if Int64.equal (b64get st.stack o1) 0L then h st else g st
      | _ ->
        let k =
          if e + 1 >= len then upd
          else begin
            let g = jump_to (e + 1) in
            fun st ->
              upd st;
              g st
          end
        in
        comp_instr p ~pc:e ~d ~k ~die:(die_for (e - l))
    in
    let body = ref last in
    for pc = e - 1 downto l do
      body := comp_instr p ~pc ~d:depth.(pc) ~k:!body ~die:(die_for (pc - l))
    done;
    let body = !body in
    let entry_depth = depth.(l) in
    let limit = p.P.step_limit in
    entries.(l) :=
      fun st ->
        let s = st.steps + n in
        if s <= limit then begin
          st.steps <- s;
          body st
        end
        else slow_run p st l entry_depth
  in
  for pc = 0 to len - 1 do
    if leader.(pc) && depth.(pc) >= 0 then compile_block pc
  done;
  !(entries.(0))

(* ------------------------------------------------------------------ *)
(* Public interface *)

type t = { cp_program : P.t; cp_entry : state -> unit; cp_state : state }

let program t = t.cp_program

let compile ?strict (p : P.t) =
  match Verifier.analyse ?strict p with
  | Error e -> Error e
  | Ok _ ->
    let st =
      {
        stack = Bytes.make (8 * max p.P.stack_limit 1) '\000';
        locals = Bytes.make (8 * max p.P.n_locals 1) '\000';
        env_scalars = [||];
        env_arrays = [||];
        heap = Array.make 16 [||];
        n_heap = 0;
        heap_cells = 0;
        steps = 0;
        max_sp = 0;
        now_ns = 0L;
        rng = Rng.create 0L;
      }
    in
    Ok { cp_program = p; cp_entry = build p; cp_state = st }

let exec t ~(env : Interp.env) ~now ~rng =
  let p = t.cp_program in
  let st = t.cp_state in
  if
    Array.length env.Interp.scalars <> Array.length p.P.scalar_slots
    || Array.length env.Interp.arrays <> Array.length p.P.array_slots
  then invalid_arg "Compiled.exec: env does not match the program's slot tables";
  st.env_scalars <- env.Interp.scalars;
  st.env_arrays <- env.Interp.arrays;
  st.now_ns <- Eden_base.Time.to_ns now;
  st.rng <- rng;
  Array.fill st.heap 0 st.n_heap [||];
  st.n_heap <- 0;
  st.heap_cells <- 0;
  st.steps <- 0;
  st.max_sp <- 0;
  Bytes.fill st.locals 0 (Bytes.length st.locals) '\000';
  let scalar_slots = p.P.scalar_slots in
  for i = 0 to Array.length scalar_slots - 1 do
    b64set st.locals ((Array.unsafe_get scalar_slots i).P.s_local lsl 3)
      (Array.unsafe_get env.Interp.scalars i)
  done;
  match t.cp_entry st with
  | () ->
    (* Successful completion: publish writable scalar slots, as
       [Interp.run] does. *)
    for i = 0 to Array.length scalar_slots - 1 do
      let s = Array.unsafe_get scalar_slots i in
      if s.P.s_access = P.Read_write then
        Array.unsafe_set env.Interp.scalars i (b64get st.locals (s.P.s_local lsl 3))
    done;
    None
  | exception F f -> Some f

let last_steps t = t.cp_state.steps
let last_max_stack t = t.cp_state.max_sp
let last_heap_cells t = t.cp_state.heap_cells

let stats t =
  {
    Interp.steps = t.cp_state.steps;
    max_stack = t.cp_state.max_sp;
    heap_cells = t.cp_state.heap_cells;
  }

let run t ~env ~now ~rng =
  match exec t ~env ~now ~rng with
  | None -> Ok (stats t)
  | Some f -> Error (f, stats t)
