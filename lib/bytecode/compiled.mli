(** Install-time closure compilation of verified bytecode.

    A second execution engine alongside {!Interp.run}: [compile]
    translates a verifier-accepted program into threaded code — one
    OCaml closure chain per basic block, blocks linked by direct calls —
    paying the translation cost once at install so the per-packet path
    carries none of the interpreter's per-step overhead (opcode [match]
    dispatch, pc/step ref cells, per-instruction step-limit checks,
    dynamic operand-stack pointer).

    The engine is observationally identical to {!Interp.run}: same
    published state, same faults at the same pc with the same partial
    effects, same [steps]/[max_stack]/[heap_cells] statistics.
    [test/test_compiled.ml] enforces this differentially on randomized
    programs.

    A [t] owns its mutable machine state (like {!Interp.scratch}), so a
    given [t] must not be run concurrently from multiple domains; wrap
    it in the enclave's concurrency control as for interpreted
    actions. *)

type t

val compile : ?strict:bool -> Program.t -> (t, Verifier.error) result
(** Verify (via {!Verifier.analyse}, so unsafe array ops are re-proved)
    and translate. The closure code relies on the verifier's invariants
    — single consistent stack depth per pc, in-range locals and slots —
    hence compilation of an unverifiable program is refused rather than
    attempted. *)

val program : t -> Program.t

val run :
  t ->
  env:Interp.env ->
  now:Eden_base.Time.t ->
  rng:Eden_base.Rng.t ->
  (Interp.stats, Interp.fault * Interp.stats) result
(** Drop-in for {!Interp.run} (same env mutation and publication
    contract). Allocates only the [stats] record / result constructor;
    use {!exec} on paths that must not allocate. *)

val exec :
  t ->
  env:Interp.env ->
  now:Eden_base.Time.t ->
  rng:Eden_base.Rng.t ->
  Interp.fault option
(** Like {!run} but allocation-free on success ([None]); read the
    statistics of the completed run from the accessors below. The
    returned fault (if any) is freshly allocated only on the fault
    path. *)

val last_steps : t -> int
val last_max_stack : t -> int
val last_heap_cells : t -> int
(** Statistics of the most recent {!run}/{!exec} on this [t]. *)

val stats : t -> Interp.stats
(** Allocates a fresh record from the three accessors above. *)
