type env = { scalars : int64 array; arrays : int64 array array }

let make_env (p : Program.t) ~scalars ~arrays =
  if Array.length scalars <> Array.length p.scalar_slots then
    invalid_arg
      (Printf.sprintf "Interp.make_env: %d scalars supplied, program %S declares %d"
         (Array.length scalars) p.name (Array.length p.scalar_slots));
  if Array.length arrays <> Array.length p.array_slots then
    invalid_arg
      (Printf.sprintf "Interp.make_env: %d arrays supplied, program %S declares %d"
         (Array.length arrays) p.name (Array.length p.array_slots));
  Array.iteri
    (fun i (a : Program.array_slot) ->
      if Array.length arrays.(i) < a.a_min_len then
        invalid_arg
          (Printf.sprintf
             "Interp.make_env: array %S has %d elements, program %S requires >= %d"
             a.a_name (Array.length arrays.(i)) p.name a.a_min_len))
    p.array_slots;
  { scalars; arrays }

let zero_env (p : Program.t) ~array_lengths =
  let arrays = Array.map (fun len -> Array.make len 0L) array_lengths in
  make_env p ~scalars:(Array.make (Array.length p.scalar_slots) 0L) ~arrays

type fault =
  | Division_by_zero of { pc : int }
  | Array_bounds of { pc : int; index : int; length : int }
  | Invalid_reference of { pc : int }
  | Negative_array_length of { pc : int; length : int }
  | Heap_exhausted of { pc : int; requested : int; limit : int }
  | Step_limit_exceeded of { limit : int }
  | Operand_stack_overflow of { pc : int }
  | Operand_stack_underflow of { pc : int }
  | Bad_random_bound of { pc : int; bound : int64 }
  | Undersized_env_array of { slot : int; length : int; min_len : int }

let fault_to_string = function
  | Division_by_zero { pc } -> Printf.sprintf "pc %d: division by zero" pc
  | Array_bounds { pc; index; length } ->
    Printf.sprintf "pc %d: index %d out of bounds (length %d)" pc index length
  | Invalid_reference { pc } -> Printf.sprintf "pc %d: invalid heap reference" pc
  | Negative_array_length { pc; length } ->
    Printf.sprintf "pc %d: negative array length %d" pc length
  | Heap_exhausted { pc; requested; limit } ->
    Printf.sprintf "pc %d: heap exhausted (requested %d, limit %d cells)" pc requested limit
  | Step_limit_exceeded { limit } -> Printf.sprintf "step limit %d exceeded" limit
  | Operand_stack_overflow { pc } -> Printf.sprintf "pc %d: operand stack overflow" pc
  | Operand_stack_underflow { pc } -> Printf.sprintf "pc %d: operand stack underflow" pc
  | Bad_random_bound { pc; bound } ->
    Printf.sprintf "pc %d: rand bound %Ld not positive" pc bound
  | Undersized_env_array { slot; length; min_len } ->
    Printf.sprintf "env array slot %d has %d elements, proof requires >= %d" slot
      length min_len

let pp_fault fmt f = Format.pp_print_string fmt (fault_to_string f)

type stats = { steps : int; max_stack : int; heap_cells : int }

(* Reusable per-program buffers: one allocation at install time instead of
   three per invocation, which matters when the simulator runs an action
   on every packet. *)
type scratch = { sc_stack : int64 array; sc_locals : int64 array }

let make_scratch (p : Program.t) =
  { sc_stack = Array.make p.stack_limit 0L; sc_locals = Array.make (max p.n_locals 1) 0L }

exception Fault of fault

let run ?scratch (p : Program.t) ~env ~now ~rng =
  let code = p.code in
  let len = Array.length code in
  let stack, locals =
    match scratch with
    | Some sc ->
      if
        Array.length sc.sc_stack < p.stack_limit
        || Array.length sc.sc_locals < max p.n_locals 1
      then invalid_arg "Interp.run: scratch buffers too small for this program";
      (* Clear locals so hand-written bytecode cannot observe a previous
         invocation's values through an uninitialized local. *)
      Array.fill sc.sc_locals 0 (Array.length sc.sc_locals) 0L;
      (sc.sc_stack, sc.sc_locals)
    | None -> (Array.make p.stack_limit 0L, Array.make (max p.n_locals 1) 0L)
  in
  let sp = ref 0 in
  let max_sp = ref 0 in
  (* Pre-load scalar environment slots into locals. *)
  Array.iteri
    (fun i (s : Program.scalar_slot) -> locals.(s.s_local) <- env.scalars.(i))
    p.scalar_slots;
  let heap : int64 array array = Array.make 16 [||] in
  let heap = ref heap in
  let n_heap = ref 0 in
  let heap_cells = ref 0 in
  let steps = ref 0 in
  let pc = ref 0 in
  let push v =
    if !sp >= p.stack_limit then raise (Fault (Operand_stack_overflow { pc = !pc }));
    stack.(!sp) <- v;
    incr sp;
    if !sp > !max_sp then max_sp := !sp
  in
  let pop () =
    if !sp <= 0 then raise (Fault (Operand_stack_underflow { pc = !pc }));
    decr sp;
    stack.(!sp)
  in
  let to_bool v = if Int64.equal v 0L then 0L else 1L in
  let env_array s = env.arrays.(s) in
  let check_index arr i =
    let n = Array.length arr in
    if i < 0 || i >= n then raise (Fault (Array_bounds { pc = !pc; index = i; length = n }))
  in
  let heap_get r =
    let r = Int64.to_int r in
    if r < 0 || r >= !n_heap then raise (Fault (Invalid_reference { pc = !pc }));
    !heap.(r)
  in
  let alloc n =
    if n < 0 then raise (Fault (Negative_array_length { pc = !pc; length = n }));
    if !heap_cells + n > p.heap_limit then
      raise (Fault (Heap_exhausted { pc = !pc; requested = n; limit = p.heap_limit }));
    if !n_heap = Array.length !heap then begin
      let bigger = Array.make (2 * !n_heap) [||] in
      Array.blit !heap 0 bigger 0 !n_heap;
      heap := bigger
    end;
    !heap.(!n_heap) <- Array.make n 0L;
    heap_cells := !heap_cells + n;
    let r = !n_heap in
    incr n_heap;
    Int64.of_int r
  in
  let stats () = { steps = !steps; max_stack = !max_sp; heap_cells = !heap_cells } in
  try
    while !pc < len do
      if !steps >= p.step_limit then
        raise (Fault (Step_limit_exceeded { limit = p.step_limit }));
      incr steps;
      let op = code.(!pc) in
      let next = ref (!pc + 1) in
      (match op with
      | Opcode.Push v -> push v
      | Opcode.Pop -> ignore (pop ())
      | Opcode.Dup ->
        let v = pop () in
        push v;
        push v
      | Opcode.Swap ->
        let b = pop () in
        let a = pop () in
        push b;
        push a
      | Opcode.Load i -> push locals.(i)
      | Opcode.Store i -> locals.(i) <- pop ()
      | Opcode.Add ->
        let b = pop () and a = pop () in
        push (Int64.add a b)
      | Opcode.Sub ->
        let b = pop () and a = pop () in
        push (Int64.sub a b)
      | Opcode.Mul ->
        let b = pop () and a = pop () in
        push (Int64.mul a b)
      | Opcode.Div ->
        let b = pop () and a = pop () in
        if Int64.equal b 0L then raise (Fault (Division_by_zero { pc = !pc }));
        push (Int64.div a b)
      | Opcode.Rem ->
        let b = pop () and a = pop () in
        if Int64.equal b 0L then raise (Fault (Division_by_zero { pc = !pc }));
        push (Int64.rem a b)
      | Opcode.Neg -> push (Int64.neg (pop ()))
      | Opcode.Band ->
        let b = pop () and a = pop () in
        push (Int64.logand a b)
      | Opcode.Bor ->
        let b = pop () and a = pop () in
        push (Int64.logor a b)
      | Opcode.Bxor ->
        let b = pop () and a = pop () in
        push (Int64.logxor a b)
      | Opcode.Shl ->
        let b = pop () and a = pop () in
        push (Int64.shift_left a (Int64.to_int b land 63))
      | Opcode.Shr ->
        let b = pop () and a = pop () in
        push (Int64.shift_right_logical a (Int64.to_int b land 63))
      | Opcode.Not -> push (if Int64.equal (pop ()) 0L then 1L else 0L)
      | Opcode.Eq ->
        let b = pop () and a = pop () in
        push (if Int64.equal a b then 1L else 0L)
      | Opcode.Ne ->
        let b = pop () and a = pop () in
        push (if Int64.equal a b then 0L else 1L)
      | Opcode.Lt ->
        let b = pop () and a = pop () in
        push (if Int64.compare a b < 0 then 1L else 0L)
      | Opcode.Le ->
        let b = pop () and a = pop () in
        push (if Int64.compare a b <= 0 then 1L else 0L)
      | Opcode.Gt ->
        let b = pop () and a = pop () in
        push (if Int64.compare a b > 0 then 1L else 0L)
      | Opcode.Ge ->
        let b = pop () and a = pop () in
        push (if Int64.compare a b >= 0 then 1L else 0L)
      | Opcode.Jmp t -> next := t
      | Opcode.Jz t -> if Int64.equal (to_bool (pop ())) 0L then next := t
      | Opcode.Jnz t -> if not (Int64.equal (to_bool (pop ())) 0L) then next := t
      | Opcode.Gaload s ->
        let i = Int64.to_int (pop ()) in
        let arr = env_array s in
        check_index arr i;
        push arr.(i)
      | Opcode.Gastore s ->
        let v = pop () in
        let i = Int64.to_int (pop ()) in
        let arr = env_array s in
        check_index arr i;
        arr.(i) <- v
      | Opcode.Gaload_unsafe s ->
        (* Bounds proved statically (verifier re-checks the proof and the
           runtime enforces [a_min_len]), so skip [check_index]. *)
        let i = Int64.to_int (pop ()) in
        push (Array.unsafe_get (env_array s) i)
      | Opcode.Gastore_unsafe s ->
        let v = pop () in
        let i = Int64.to_int (pop ()) in
        Array.unsafe_set (env_array s) i v
      | Opcode.Galen s -> push (Int64.of_int (Array.length (env_array s)))
      | Opcode.Newarr -> push (alloc (Int64.to_int (pop ())))
      | Opcode.Aload ->
        let i = Int64.to_int (pop ()) in
        let arr = heap_get (pop ()) in
        check_index arr i;
        push arr.(i)
      | Opcode.Astore ->
        let v = pop () in
        let i = Int64.to_int (pop ()) in
        let arr = heap_get (pop ()) in
        check_index arr i;
        arr.(i) <- v
      | Opcode.Alen -> push (Int64.of_int (Array.length (heap_get (pop ()))))
      | Opcode.Rand ->
        let bound = pop () in
        if Int64.compare bound 0L <= 0 then
          raise (Fault (Bad_random_bound { pc = !pc; bound }));
        (* Bounds beyond [max_int] do not occur in practice; reject via to_int. *)
        push (Int64.of_int (Eden_base.Rng.int rng (Int64.to_int bound)))
      | Opcode.Clock -> push (Eden_base.Time.to_ns now)
      | Opcode.Hashmix ->
        let b = pop () and a = pop () in
        let m =
          Int64.mul (Int64.logxor (Int64.mul a 0x9E3779B97F4A7C15L) b) 0xBF58476D1CE4E5B9L
        in
        push (Int64.logxor m (Int64.shift_right_logical m 31))
      | Opcode.Halt -> next := len);
      pc := !next
    done;
    (* Successful completion: publish writable scalar slots. *)
    Array.iteri
      (fun i (s : Program.scalar_slot) ->
        if s.s_access = Program.Read_write then env.scalars.(i) <- locals.(s.s_local))
      p.scalar_slots;
    Ok (stats ())
  with Fault f -> Error (f, stats ())
