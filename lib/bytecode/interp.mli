(** The enclave interpreter.

    Executes a verified program against an environment snapshot.  The
    environment is whatever copy of packet / message / global state the
    enclave state store prepared (copy-in / copy-out is the store's job;
    the interpreter mutates the [env] it is handed and writes scalar
    locals back on successful completion only, so a faulting program
    never publishes partial scalar updates).

    Faults terminate the offending invocation without affecting the rest
    of the system (paper §3.4.3); the caller receives the fault and the
    execution statistics accumulated so far. *)

type env = {
  scalars : int64 array;  (** One per [Program.scalar_slots] entry. *)
  arrays : int64 array array;  (** One per [Program.array_slots] entry. *)
}

val make_env : Program.t -> scalars:int64 array -> arrays:int64 array array -> env
(** Validates counts against the program's slot tables and each array's
    length against its slot's [a_min_len].
    @raise Invalid_argument on a mismatch. *)

val zero_env : Program.t -> array_lengths:int array -> env
(** All-zero environment with the given array-slot lengths. *)

type fault =
  | Division_by_zero of { pc : int }
  | Array_bounds of { pc : int; index : int; length : int }
  | Invalid_reference of { pc : int }
  | Negative_array_length of { pc : int; length : int }
  | Heap_exhausted of { pc : int; requested : int; limit : int }
  | Step_limit_exceeded of { limit : int }
  | Operand_stack_overflow of { pc : int }
  | Operand_stack_underflow of { pc : int }
  | Bad_random_bound of { pc : int; bound : int64 }
  | Undersized_env_array of { slot : int; length : int; min_len : int }
      (** Raised by the enclave before a run, not by the interpreter: the
          environment broke an [a_min_len] promise a bounds proof relies
          on, so the invocation is refused (fail-open). *)

val fault_to_string : fault -> string
val pp_fault : Format.formatter -> fault -> unit

type stats = {
  steps : int;  (** Instructions retired. *)
  max_stack : int;  (** Peak operand-stack depth (values). *)
  heap_cells : int;  (** Heap cells allocated by the run. *)
}

type scratch
(** Reusable operand-stack and locals buffers for one program, avoiding
    per-invocation allocation on the data path. *)

val make_scratch : Program.t -> scratch

val run :
  ?scratch:scratch ->
  Program.t -> env:env -> now:Eden_base.Time.t -> rng:Eden_base.Rng.t ->
  (stats, fault * stats) result
(** Assumes the program passed {!Verifier.verify}; behaviour on unverified
    programs is safe (all accesses are still bounds-checked) but faults may
    differ from what the verifier would have reported.  A [scratch] made
    for this program (or a larger one) removes the per-run allocations;
    locals are zeroed between runs so no state leaks across invocations. *)
