type t = { lo : int64; hi : int64 }

let ninf = Int64.min_int
let pinf = Int64.max_int
let top = { lo = ninf; hi = pinf }
let const v = { lo = v; hi = v }

let of_bounds lo hi =
  if Int64.compare lo hi > 0 then invalid_arg "Interval.of_bounds: lo > hi";
  { lo; hi }

let is_top t = Int64.equal t.lo ninf && Int64.equal t.hi pinf
let min64 a b = if Int64.compare a b <= 0 then a else b
let max64 a b = if Int64.compare a b >= 0 then a else b
let join a b = { lo = min64 a.lo b.lo; hi = max64 a.hi b.hi }

let meet a b =
  let lo = max64 a.lo b.lo and hi = min64 a.hi b.hi in
  if Int64.compare lo hi > 0 then None else Some { lo; hi }

(* Widening with one intermediate threshold just inside the extremes:
   a growing bound jumps to [pinf - 1] (resp. [ninf + 1]) before the
   infinity, so a loop counter capped by a guard can still be
   incremented without the wrap check collapsing it to [top]; a bound
   that grows past the threshold then jumps to the infinity, keeping the
   ladder (and hence the fixpoint) finite. *)
let widen old next =
  {
    lo =
      (if Int64.compare next.lo old.lo >= 0 then old.lo
       else if Int64.compare next.lo (Int64.add ninf 1L) >= 0 then Int64.add ninf 1L
       else ninf);
    hi =
      (if Int64.compare next.hi old.hi <= 0 then old.hi
       else if Int64.compare next.hi (Int64.sub pinf 1L) <= 0 then Int64.sub pinf 1L
       else pinf);
  }

let equal a b = Int64.equal a.lo b.lo && Int64.equal a.hi b.hi
let contains t v = Int64.compare t.lo v <= 0 && Int64.compare v t.hi <= 0

(* The interpreter's [Int64] arithmetic wraps, so saturating endpoints
   would be unsound (a sum that wraps negative is NOT >= the saturated
   bound).  Instead each transfer is exact when no endpoint combination
   can overflow, and collapses to [top] otherwise — [top] is the whole
   wrapped domain, hence always sound.  The endpoint "infinities" are the
   literal extreme values of that domain, so checking the endpoint
   computations covers the interior (the operations are monotone in each
   argument). *)

let checked_add a b =
  let s = Int64.add a b in
  if Int64.compare a 0L >= 0 && Int64.compare b 0L >= 0 && Int64.compare s 0L < 0 then
    None
  else if Int64.compare a 0L < 0 && Int64.compare b 0L < 0 && Int64.compare s 0L >= 0
  then None
  else Some s

let checked_sub a b =
  let s = Int64.sub a b in
  if Int64.compare a 0L >= 0 && Int64.compare b 0L < 0 && Int64.compare s 0L < 0 then
    None
  else if Int64.compare a 0L < 0 && Int64.compare b 0L >= 0 && Int64.compare s 0L >= 0
  then None
  else Some s

let checked_mul a b =
  if Int64.equal a 0L || Int64.equal b 0L then Some 0L
  else if Int64.equal a ninf || Int64.equal b ninf then
    if Int64.equal a 1L || Int64.equal b 1L then Some ninf else None
  else if Int64.equal a (-1L) then Some (Int64.neg b)
  else
    let p = Int64.mul a b in
    if Int64.equal (Int64.div p a) b then Some p else None

let add a b =
  match (checked_add a.lo b.lo, checked_add a.hi b.hi) with
  | Some lo, Some hi -> { lo; hi }
  | _ -> top

let sub a b =
  match (checked_sub a.lo b.hi, checked_sub a.hi b.lo) with
  | Some lo, Some hi -> { lo; hi }
  | _ -> top

let neg a =
  if Int64.equal a.lo ninf then top else { lo = Int64.neg a.hi; hi = Int64.neg a.lo }

let mul a b =
  match
    ( checked_mul a.lo b.lo,
      checked_mul a.lo b.hi,
      checked_mul a.hi b.lo,
      checked_mul a.hi b.hi )
  with
  | Some c1, Some c2, Some c3, Some c4 ->
    { lo = min64 (min64 c1 c2) (min64 c3 c4); hi = max64 (max64 c1 c2) (max64 c3 c4) }
  | _ -> top

let div a b =
  (* Division by a range containing 0 faults at run time for the 0 case;
     for the analysis we only need an over-approximation of the values a
     *successful* division can produce.  [min_int / -1] overflows in the
     concrete machine; treat it as top. *)
  if contains a ninf && contains b (-1L) then top
  else if Int64.equal b.lo 0L && Int64.equal b.hi 0L then top
  else begin
    let candidates = ref [] in
    let push v = candidates := v :: !candidates in
    let divisors =
      List.filter (fun d -> not (Int64.equal d 0L))
        [ b.lo; b.hi; (if contains b 1L then 1L else b.hi);
          (if contains b (-1L) then -1L else b.lo) ]
    in
    List.iter
      (fun d ->
        if not (Int64.equal a.lo ninf || Int64.equal a.lo pinf) then
          push (Int64.div a.lo d);
        if not (Int64.equal a.hi ninf || Int64.equal a.hi pinf) then
          push (Int64.div a.hi d))
      divisors;
    match !candidates with
    | [] -> top
    | c :: rest ->
      let lo = List.fold_left min64 c rest and hi = List.fold_left max64 c rest in
      (* Infinite numerator endpoints can still shrink in magnitude but
         never flip past the finite candidates' span only when divisors
         keep one sign; be conservative otherwise. *)
      if Int64.equal a.lo ninf || Int64.equal a.hi pinf then top
      else { lo; hi }
  end

let rem _a b =
  (* a rem b has |result| < |b| and the sign of a; bound by |b|-1. *)
  let mag =
    let abs v =
      if Int64.equal v ninf then pinf
      else if Int64.compare v 0L < 0 then Int64.neg v
      else v
    in
    max64 (abs b.lo) (abs b.hi)
  in
  if Int64.equal mag pinf || Int64.equal mag 0L then top
  else
    let m = Int64.sub mag 1L in
    { lo = Int64.neg m; hi = m }

let booleanish = { lo = 0L; hi = 1L }

let rand bound =
  if Int64.compare bound.lo 1L >= 0 && not (Int64.equal bound.hi pinf) then
    { lo = 0L; hi = Int64.sub bound.hi 1L }
  else { lo = 0L; hi = pinf }

(* Refinements: interval for [a] given that [a op b] holds. *)

let refine_lt a b =
  if Int64.equal b.hi ninf then None
  else meet a { lo = ninf; hi = Int64.sub b.hi 1L }

let refine_le a b = meet a { lo = ninf; hi = b.hi }

let refine_gt a b =
  if Int64.equal b.lo pinf then None
  else meet a { lo = Int64.add b.lo 1L; hi = pinf }

let refine_ge a b = meet a { lo = b.lo; hi = pinf }
let refine_eq a b = meet a b

let to_string t =
  let e v =
    if Int64.equal v ninf then "-inf" else if Int64.equal v pinf then "+inf"
    else Int64.to_string v
  in
  Printf.sprintf "[%s, %s]" (e t.lo) (e t.hi)

let pp fmt t = Format.pp_print_string fmt (to_string t)
