(** Integer intervals over [int64] for bounds analysis.

    The domain is the complete lattice of closed intervals
    [\[lo, hi\]] with saturating endpoints: [Int64.min_int] and
    [Int64.max_int] act as minus / plus infinity.  All arithmetic is
    conservative — the result interval contains every value the concrete
    operation can produce for operands drawn from the inputs, including
    wrap-around cases (where the transfer function falls back to
    {!top}). *)

type t = { lo : int64; hi : int64 }
(** Invariant: [lo <= hi].  The empty interval is represented by
    {!bottom} checks at the joins; [meet] returns [None] when empty. *)

val top : t
val const : int64 -> t
val of_bounds : int64 -> int64 -> t
val is_top : t -> bool

val join : t -> t -> t
val meet : t -> t -> t option
val widen : t -> t -> t
(** [widen old next]: endpoints that grew jump to infinity, guaranteeing
    termination of the fixpoint. *)

val equal : t -> t -> bool
val contains : t -> int64 -> bool

(** Transfer functions.  Each returns an over-approximation of the
    concrete [Int64] operation; overflow-prone cases degrade to {!top}. *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
val rem : t -> t -> t
val neg : t -> t
val booleanish : t
(** The interval [\[0, 1\]] produced by comparisons and [Not]. *)

val rand : t -> t
(** Result interval of [Rand] given the bound's interval: [\[0, hi-1\]]
    when the bound is provably positive, else top-ish non-negative. *)

(** Comparison refinements: given [a op b] known true (or false), return
    the refined interval for [a].  Used on conditional branches. *)

val refine_lt : t -> t -> t option
val refine_le : t -> t -> t option
val refine_gt : t -> t -> t option
val refine_ge : t -> t -> t option
val refine_eq : t -> t -> t option

val to_string : t -> string
val pp : Format.formatter -> t -> unit
