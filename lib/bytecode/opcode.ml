type t =
  | Push of int64
  | Pop
  | Dup
  | Swap
  | Load of int
  | Store of int
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | Neg
  | Band
  | Bor
  | Bxor
  | Shl
  | Shr
  | Not
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | Jmp of int
  | Jz of int
  | Jnz of int
  | Gaload of int
  | Gastore of int
  | Gaload_unsafe of int
  | Gastore_unsafe of int
  | Galen of int
  | Newarr
  | Aload
  | Astore
  | Alen
  | Rand
  | Clock
  | Hashmix
  | Halt

let to_string = function
  | Push v -> Printf.sprintf "push %Ld" v
  | Pop -> "pop"
  | Dup -> "dup"
  | Swap -> "swap"
  | Load i -> Printf.sprintf "load %d" i
  | Store i -> Printf.sprintf "store %d" i
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | Rem -> "rem"
  | Neg -> "neg"
  | Band -> "band"
  | Bor -> "bor"
  | Bxor -> "bxor"
  | Shl -> "shl"
  | Shr -> "shr"
  | Not -> "not"
  | Eq -> "eq"
  | Ne -> "ne"
  | Lt -> "lt"
  | Le -> "le"
  | Gt -> "gt"
  | Ge -> "ge"
  | Jmp a -> Printf.sprintf "jmp %d" a
  | Jz a -> Printf.sprintf "jz %d" a
  | Jnz a -> Printf.sprintf "jnz %d" a
  | Gaload s -> Printf.sprintf "gaload %d" s
  | Gastore s -> Printf.sprintf "gastore %d" s
  | Gaload_unsafe s -> Printf.sprintf "gaload! %d" s
  | Gastore_unsafe s -> Printf.sprintf "gastore! %d" s
  | Galen s -> Printf.sprintf "galen %d" s
  | Newarr -> "newarr"
  | Aload -> "aload"
  | Astore -> "astore"
  | Alen -> "alen"
  | Rand -> "rand"
  | Clock -> "clock"
  | Hashmix -> "hashmix"
  | Halt -> "halt"

let pp fmt op = Format.pp_print_string fmt (to_string op)

let stack_effect = function
  | Push _ -> (0, 1)
  | Pop -> (1, 0)
  | Dup -> (1, 2)
  | Swap -> (2, 2)
  | Load _ -> (0, 1)
  | Store _ -> (1, 0)
  | Add | Sub | Mul | Div | Rem | Band | Bor | Bxor | Shl | Shr -> (2, 1)
  | Neg | Not -> (1, 1)
  | Eq | Ne | Lt | Le | Gt | Ge -> (2, 1)
  | Jmp _ -> (0, 0)
  | Jz _ | Jnz _ -> (1, 0)
  | Gaload _ | Gaload_unsafe _ -> (1, 1)
  | Gastore _ | Gastore_unsafe _ -> (2, 0)
  | Galen _ -> (0, 1)
  | Newarr -> (1, 1)
  | Aload -> (2, 1)
  | Astore -> (3, 0)
  | Alen -> (1, 1)
  | Rand -> (1, 1)
  | Clock -> (0, 1)
  | Hashmix -> (2, 1)
  | Halt -> (0, 0)

let is_terminator = function Jmp _ | Halt -> true | _ -> false
let jump_target = function Jmp a | Jz a | Jnz a -> Some a | _ -> None
