(** The enclave's bytecode instruction set.

    A stack machine in the spirit of the JVM (paper §4.1): loads and
    stores, 64-bit integer arithmetic, branches and conditionals, plus a
    small set of intrinsic op-codes (random numbers, a high-frequency
    clock, hashing).  There are deliberately no call/return op-codes: the
    compiler inlines non-recursive calls and turns tail recursion into
    loops, which keeps interpreter frames — and hence the per-packet cycle
    budget — predictable.

    All values are [int64]; booleans are 0/1.  State shared with the
    enclave lives in statically numbered environment slots: scalars are
    pre-loaded into low-numbered locals, arrays are accessed through the
    [Ga*] op-codes, so read-only enforcement is a static (verifier) check
    rather than a run-time one. *)

type t =
  (* Stack *)
  | Push of int64
  | Pop
  | Dup
  | Swap
  (* Locals *)
  | Load of int  (** push local[i] *)
  | Store of int  (** pop into local[i] *)
  (* Arithmetic: pop b, pop a, push a OP b *)
  | Add
  | Sub
  | Mul
  | Div  (** faults on division by zero *)
  | Rem  (** faults on division by zero *)
  | Neg
  (* Bitwise *)
  | Band
  | Bor
  | Bxor
  | Shl
  | Shr  (** logical shift right *)
  (* Logic and comparisons (results are 0/1) *)
  | Not
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  (* Control flow: absolute instruction indices *)
  | Jmp of int
  | Jz of int  (** pop; jump when zero *)
  | Jnz of int  (** pop; jump when non-zero *)
  (* Environment arrays (static slot ids) *)
  | Gaload of int  (** pop index; push env_array[slot][index] *)
  | Gastore of int  (** pop value, pop index; env_array[slot][index] := value *)
  | Gaload_unsafe of int
      (** [Gaload] without the runtime bounds check.  Only installable
          when the verifier's interval analysis re-proves the index in
          bounds ({!Absint}); rejected otherwise. *)
  | Gastore_unsafe of int  (** [Gastore] without the runtime bounds check. *)
  | Galen of int  (** push length of env_array[slot] *)
  (* Program-local heap arrays *)
  | Newarr  (** pop length; allocate zeroed array; push reference *)
  | Aload  (** pop index, pop ref; push element *)
  | Astore  (** pop value, pop index, pop ref *)
  | Alen  (** pop ref; push length *)
  (* Intrinsics *)
  | Rand  (** pop bound; push uniform in [0, bound); faults if bound <= 0 *)
  | Clock  (** push current time in nanoseconds *)
  | Hashmix  (** pop b, pop a; push a 64-bit mix of both *)
  | Halt

val to_string : t -> string
val pp : Format.formatter -> t -> unit

val stack_effect : t -> int * int
(** [(pops, pushes)] of an instruction, for static stack-depth analysis. *)

val is_terminator : t -> bool
(** [Halt] and unconditional [Jmp] end a basic block with no fall-through. *)

val jump_target : t -> int option
