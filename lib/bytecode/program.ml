type entity = Packet | Message | Global

let entity_to_string = function
  | Packet -> "packet"
  | Message -> "message"
  | Global -> "global"

type access = Read_only | Read_write

let access_to_string = function Read_only -> "ro" | Read_write -> "rw"

type scalar_slot = {
  s_name : string;
  s_entity : entity;
  s_access : access;
  s_local : int;
}

type array_slot = {
  a_name : string;
  a_entity : entity;
  a_access : access;
  a_min_len : int;
}

type t = {
  name : string;
  code : Opcode.t array;
  scalar_slots : scalar_slot array;
  array_slots : array_slot array;
  n_locals : int;
  stack_limit : int;
  heap_limit : int;
  step_limit : int;
}

let default_stack_limit = 64
let default_heap_limit = 256
let default_step_limit = 100_000

let max_local_in_code code =
  Array.fold_left
    (fun acc op ->
      match op with Opcode.Load i | Opcode.Store i -> max acc i | _ -> acc)
    (-1) code

let make ~name ~code ?(scalar_slots = [||]) ?(array_slots = [||]) ?n_locals
    ?(stack_limit = default_stack_limit) ?(heap_limit = default_heap_limit)
    ?(step_limit = default_step_limit) () =
  let slot_max =
    Array.fold_left (fun acc s -> max acc s.s_local) (-1) scalar_slots
  in
  let n_locals =
    match n_locals with
    | Some n -> n
    | None -> 1 + max (max_local_in_code code) slot_max
  in
  { name; code; scalar_slots; array_slots; n_locals; stack_limit; heap_limit; step_limit }

let writes_entity t entity =
  Array.exists
    (fun s -> s.s_entity = entity && s.s_access = Read_write)
    t.scalar_slots
  || Array.exists
       (fun a -> a.a_entity = entity && a.a_access = Read_write)
       t.array_slots

let find_scalar t name =
  Array.find_opt (fun s -> String.equal s.s_name name) t.scalar_slots

let find_array t name =
  let found = ref None in
  Array.iteri
    (fun i a -> if String.equal a.a_name name && !found = None then found := Some (i, a))
    t.array_slots;
  !found

(* Splice out instructions never scheduled by the reachability walk and
   remap the surviving jump targets.  Any target a *reachable* jump
   names is itself reachable (or is [len], the fall-off-the-end pc), so
   remapping is total over the code that remains. *)
let strip_unreachable t =
  let len = Array.length t.code in
  if len = 0 then t
  else begin
    let reached = Array.make len false in
    let pending = Queue.create () in
    let schedule pc = if pc >= 0 && pc < len && not reached.(pc) then begin
        reached.(pc) <- true;
        Queue.add pc pending
      end
    in
    schedule 0;
    while not (Queue.is_empty pending) do
      let pc = Queue.pop pending in
      let op = t.code.(pc) in
      (match Opcode.jump_target op with Some tgt -> schedule tgt | None -> ());
      if not (Opcode.is_terminator op) then schedule (pc + 1)
    done;
    if Array.for_all Fun.id reached then t
    else begin
      (* new_pc.(pc) = index of pc's instruction after splicing. *)
      let new_pc = Array.make (len + 1) 0 in
      let n = ref 0 in
      for pc = 0 to len do
        new_pc.(pc) <- !n;
        if pc < len && reached.(pc) then incr n
      done;
      let remap op =
        match op with
        | Opcode.Jmp tgt -> Opcode.Jmp new_pc.(tgt)
        | Opcode.Jz tgt -> Opcode.Jz new_pc.(tgt)
        | Opcode.Jnz tgt -> Opcode.Jnz new_pc.(tgt)
        | op -> op
      in
      let code = Array.make !n Opcode.Halt in
      for pc = 0 to len - 1 do
        if reached.(pc) then code.(new_pc.(pc)) <- remap t.code.(pc)
      done;
      { t with code }
    end
  end

let pp fmt t =
  Format.fprintf fmt "@[<v>program %S (locals=%d stack<=%d heap<=%d steps<=%d)@,"
    t.name t.n_locals t.stack_limit t.heap_limit t.step_limit;
  Array.iter
    (fun s ->
      Format.fprintf fmt "  scalar %-28s %s %s -> local %d@," s.s_name
        (entity_to_string s.s_entity) (access_to_string s.s_access) s.s_local)
    t.scalar_slots;
  Array.iteri
    (fun i a ->
      Format.fprintf fmt "  array  %-28s %s %s -> slot %d%s@," a.a_name
        (entity_to_string a.a_entity) (access_to_string a.a_access) i
        (if a.a_min_len > 0 then Printf.sprintf " (len>=%d)" a.a_min_len else ""))
    t.array_slots;
  Array.iteri (fun i op -> Format.fprintf fmt "  %4d: %s@," i (Opcode.to_string op)) t.code;
  Format.fprintf fmt "@]"
