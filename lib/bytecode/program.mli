(** Compiled action-function programs.

    A program is bytecode plus the environment contract the enclave
    runtime must honour: which locals to pre-load from packet / message /
    global state, which array slots exist, what may be written back, and
    the resource limits (operand stack, heap, instruction budget) within
    which the interpreter confines execution. *)

type entity = Packet | Message | Global

val entity_to_string : entity -> string

type access = Read_only | Read_write

val access_to_string : access -> string

type scalar_slot = {
  s_name : string;  (** Field name within the entity, e.g. ["Size"]. *)
  s_entity : entity;
  s_access : access;
  s_local : int;  (** Local index the runtime pre-loads / reads back. *)
}

type array_slot = {
  a_name : string;  (** Array name within the entity, e.g. ["Priorities"]. *)
  a_entity : entity;
  a_access : access;
  a_min_len : int;
      (** Minimum length the runtime promises for this array (0 = no
          promise).  Bounds proofs behind [Gaload_unsafe] /
          [Gastore_unsafe] may rely on it; {!Interp.make_env} and the
          enclave enforce it before every invocation. *)
}
(** Array slots are numbered by their position in [array_slots] and
    addressed by the [Ga*] op-codes. *)

type t = {
  name : string;
  code : Opcode.t array;
  scalar_slots : scalar_slot array;
  array_slots : array_slot array;
  n_locals : int;  (** Total locals, environment slots included. *)
  stack_limit : int;  (** Operand-stack capacity (values). *)
  heap_limit : int;  (** Total heap cells a run may allocate. *)
  step_limit : int;  (** Instruction budget per invocation. *)
}

val default_stack_limit : int
(** 64 values — the paper reports operand stacks on the order of 64 bytes. *)

val default_heap_limit : int
(** 256 cells. *)

val default_step_limit : int

val make :
  name:string ->
  code:Opcode.t array ->
  ?scalar_slots:scalar_slot array ->
  ?array_slots:array_slot array ->
  ?n_locals:int ->
  ?stack_limit:int ->
  ?heap_limit:int ->
  ?step_limit:int ->
  unit ->
  t
(** [n_locals] defaults to one past the highest local mentioned by the
    code or the scalar slots. *)

val strip_unreachable : t -> t
(** Remove instructions no control-flow path from pc 0 can reach and
    remap the surviving jump targets.  Semantics are unchanged; the
    result passes the verifier's strict (no-unreachable-code) mode. *)

val writes_entity : t -> entity -> bool
(** Does any slot of this entity have read-write access?  Drives the
    enclave's concurrency admission (paper §3.4.4). *)

val find_scalar : t -> string -> scalar_slot option
val find_array : t -> string -> (int * array_slot) option

val pp : Format.formatter -> t -> unit
(** Disassembly listing with the environment contract. *)
