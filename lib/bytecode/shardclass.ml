(* Shard classification (see the .mli for the contract).

   The accumulator proof looks for the unique occurrence of

       pc_l: Load l          ; the accumulated global
             <E>             ; computes the delta, never touching l
       pc_s-1: Add
       pc_s: Store l

   and checks three things: E is straight-line whitelisted code, no
   jump anywhere in the program lands inside (pc_l, pc_s], and a static
   stack-depth walk shows the loaded value stays strictly below every
   operand E consumes — so the published value is exactly
   [old + delta] with [old] otherwise unobservable.  Under that shape,
   running per-shard and summing deltas commutes with any interleaving
   of the sequential stream. *)

type klass = Sharded | Sharded_delta of int list | Serialized

let to_string = function
  | Sharded -> "sharded"
  | Sharded_delta slots ->
    Printf.sprintf "sharded-delta(%s)"
      (String.concat "," (List.map string_of_int slots))
  | Serialized -> "serialized"

let pp fmt k = Format.pp_print_string fmt (to_string k)

let uses_rand (p : Program.t) =
  Array.exists (function Opcode.Rand -> true | _ -> false) p.Program.code

(* Opcodes allowed between the accumulator's Load and its Add: pure
   (state-wise), non-branching, and operating only on the operand stack
   above the loaded value.  Div/Rem/Rand may fault, which aborts the
   invocation before anything is published — still sound. *)
let delta_op_ok ~acc_local = function
  | Opcode.Push _ | Opcode.Pop | Opcode.Dup -> true
  | Opcode.Load l -> l <> acc_local
  | Opcode.Add | Opcode.Sub | Opcode.Mul | Opcode.Div | Opcode.Rem | Opcode.Neg
  | Opcode.Band | Opcode.Bor | Opcode.Bxor | Opcode.Shl | Opcode.Shr | Opcode.Not
  | Opcode.Eq | Opcode.Ne | Opcode.Lt | Opcode.Le | Opcode.Gt | Opcode.Ge ->
    true
  | Opcode.Gaload _ | Opcode.Gaload_unsafe _ | Opcode.Galen _ -> true
  | Opcode.Clock | Opcode.Hashmix | Opcode.Rand -> true
  (* Swap could sink the accumulated value into the delta computation;
     stores, heap ops and control flow are out wholesale. *)
  | Opcode.Swap | Opcode.Store _ | Opcode.Gastore _ | Opcode.Gastore_unsafe _
  | Opcode.Newarr | Opcode.Aload | Opcode.Astore | Opcode.Alen
  | Opcode.Jmp _ | Opcode.Jz _ | Opcode.Jnz _ | Opcode.Halt ->
    false

let positions code pred =
  let acc = ref [] in
  Array.iteri (fun i op -> if pred op then acc := i :: !acc) code;
  List.rev !acc

(* Is local [l]'s unique Load/Store pair a proved pure accumulator? *)
let accumulator_ok (p : Program.t) l =
  let code = p.Program.code in
  match
    ( positions code (function Opcode.Load x -> x = l | _ -> false),
      positions code (function Opcode.Store x -> x = l | _ -> false) )
  with
  | [ pc_l ], [ pc_s ] when pc_s >= pc_l + 2 && code.(pc_s - 1) = Opcode.Add ->
    (* No jump may land strictly inside the pattern: entry is only by
       falling through the Load, exit only past the Store. *)
    let jump_into =
      Array.exists
        (fun op ->
          match Opcode.jump_target op with
          | Some tgt -> tgt > pc_l && tgt <= pc_s
          | None -> false)
        code
    in
    (not jump_into)
    &&
    (* Walk E = code[pc_l+1 .. pc_s-2]: whitelisted ops only, and the
       loaded value (depth 1 at entry) is never consumed — every op
       must find all its operands strictly above it. *)
    let rec walk pc depth =
      if pc > pc_s - 2 then depth = 2 (* exactly [old; delta] before the Add *)
      else
        let op = code.(pc) in
        if not (delta_op_ok ~acc_local:l op) then false
        else
          let pops, pushes = Opcode.stack_effect op in
          if depth - pops < 1 then false else walk (pc + 1) (depth - pops + pushes)
    in
    walk (pc_l + 1) 1
  | _ -> false

let classify (p : Program.t) =
  let code = p.Program.code in
  let stores_array s =
    Array.exists
      (function
        | Opcode.Gastore x | Opcode.Gastore_unsafe x -> x = s
        | _ -> false)
      code
  in
  let stores_local l =
    Array.exists (function Opcode.Store x -> x = l | _ -> false) code
  in
  let array_written = ref false in
  Array.iteri
    (fun i (a : Program.array_slot) ->
      if a.Program.a_entity = Program.Global && a.Program.a_access = Program.Read_write
         && stores_array i
      then array_written := true)
    p.Program.array_slots;
  if !array_written then Serialized
  else begin
    (* Slots sharing one local make per-slot reasoning ambiguous; bail
       to the serialization fallback if a written global is involved. *)
    let dup_local =
      let seen = Hashtbl.create 8 in
      Array.exists
        (fun (s : Program.scalar_slot) ->
          let d = Hashtbl.mem seen s.Program.s_local in
          Hashtbl.replace seen s.Program.s_local ();
          d)
        p.Program.scalar_slots
    in
    let written_globals = ref [] in
    Array.iteri
      (fun i (s : Program.scalar_slot) ->
        if s.Program.s_entity = Program.Global && s.Program.s_access = Program.Read_write
           && stores_local s.Program.s_local
        then written_globals := (i, s.Program.s_local) :: !written_globals)
      p.Program.scalar_slots;
    match List.rev !written_globals with
    | [] -> Sharded
    | writes ->
      if dup_local then Serialized
      else if List.for_all (fun (_, l) -> accumulator_ok p l) writes then
        Sharded_delta (List.map fst writes)
      else Serialized
  end
