(** Install-time shard classification of action functions.

    A multicore enclave front-end ({!Eden_enclave}'s shard runtime) runs
    one data-path replica per worker domain and partitions state by
    flow/message key.  Whether that is safe for a given action is a
    static property of its effect footprint, decided here once at
    install time:

    - [Sharded] — the program writes no global state (packet and
      per-message writes partition cleanly under flow/message-affine
      routing): run-to-completion on every shard, zero locks.
    - [Sharded_delta slots] — every global write is a {e proved pure
      accumulator} ([G <- G + e] where [e] cannot observe [G]): each
      shard keeps a private replica of the named scalar slots and the
      merged value is [base + Σ (shard − base)].  Decisions are exactly
      those of sequential execution because the accumulated value is
      never otherwise observed between the load and the store.
    - [Serialized] — some global effect cannot be partitioned (array
      writes, non-accumulator scalar writes, native code): the shard
      runtime shares one state store across replicas and arms a
      per-action mutex, serializing just this action. *)

type klass =
  | Sharded
  | Sharded_delta of int list
      (** Indices into [scalar_slots] of the proved accumulators (every
          written global scalar slot appears; sorted ascending). *)
  | Serialized

val classify : Program.t -> klass
(** Purely syntactic and sound: a slot is only reported as an
    accumulator when the unique [Load l; e; Add; Store l] occurrence is
    straight-line (no jump lands strictly inside it), [e] is built from
    whitelisted side-effect-free opcodes, and the loaded value provably
    stays at the bottom of the operand stack until the final [Add].
    Anything unproven degrades to [Serialized], never the reverse. *)

val uses_rand : Program.t -> bool
(** Whether any instruction draws randomness — such programs are only
    reproducible against a shard-replayed reference, not against the
    single-stream sequential path. *)

val to_string : klass -> string

val pp : Format.formatter -> klass -> unit
