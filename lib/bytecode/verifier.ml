type error =
  | Bad_jump of { pc : int; target : int }
  | Stack_underflow of { pc : int; depth : int }
  | Stack_overflow of { pc : int; depth : int; limit : int }
  | Inconsistent_stack of { pc : int; expected : int; found : int }
  | Bad_local of { pc : int; index : int; n_locals : int }
  | Bad_array_slot of { pc : int; slot : int }
  | Readonly_write of { pc : int; slot : int; name : string }
  | Unreachable_code of { pc : int }
  | Unproved_unsafe of { pc : int; slot : int }
  | Bad_limits of string
  | Empty_code

let error_to_string = function
  | Bad_jump { pc; target } -> Printf.sprintf "pc %d: jump to invalid target %d" pc target
  | Stack_underflow { pc; depth } ->
    Printf.sprintf "pc %d: stack underflow (depth %d)" pc depth
  | Stack_overflow { pc; depth; limit } ->
    Printf.sprintf "pc %d: stack depth %d exceeds limit %d" pc depth limit
  | Inconsistent_stack { pc; expected; found } ->
    Printf.sprintf "pc %d: inconsistent stack depth (%d vs %d)" pc expected found
  | Bad_local { pc; index; n_locals } ->
    Printf.sprintf "pc %d: local %d out of range (frame has %d)" pc index n_locals
  | Bad_array_slot { pc; slot } -> Printf.sprintf "pc %d: no array slot %d" pc slot
  | Readonly_write { pc; slot; name } ->
    Printf.sprintf "pc %d: write to read-only array slot %d (%s)" pc slot name
  | Unreachable_code { pc } -> Printf.sprintf "pc %d: unreachable instruction" pc
  | Unproved_unsafe { pc; slot } ->
    Printf.sprintf "pc %d: unchecked access to array slot %d without a bounds proof" pc
      slot
  | Bad_limits msg -> Printf.sprintf "bad limits: %s" msg
  | Empty_code -> "empty code"

let pp_error fmt e = Format.pp_print_string fmt (error_to_string e)

type analysis = { an_max_stack : int; an_unreachable : int list }

(* Dataflow over instruction indices: every pc must be reached with a single,
   consistent operand-stack depth (same discipline as JVM verification).
   [pc = len] represents normal completion by falling off the end. *)
let analyse ?(strict = false) (p : Program.t) =
  let open Program in
  let len = Array.length p.code in
  if len = 0 then Error Empty_code
  else if p.stack_limit <= 0 then Error (Bad_limits "stack_limit must be positive")
  else if p.heap_limit < 0 then Error (Bad_limits "heap_limit must be non-negative")
  else if p.step_limit <= 0 then Error (Bad_limits "step_limit must be positive")
  else begin
    let depth_at = Array.make (len + 1) (-1) in
    let max_depth = ref 0 in
    let exception Verify_error of error in
    let check_local pc i =
      if i < 0 || i >= p.n_locals then
        raise (Verify_error (Bad_local { pc; index = i; n_locals = p.n_locals }))
    in
    let check_slot pc ~write s =
      if s < 0 || s >= Array.length p.array_slots then
        raise (Verify_error (Bad_array_slot { pc; slot = s }))
      else if write && p.array_slots.(s).a_access = Read_only then
        raise
          (Verify_error (Readonly_write { pc; slot = s; name = p.array_slots.(s).a_name }))
    in
    let pending = Queue.create () in
    let schedule pc depth =
      if pc < 0 || pc > len then raise (Verify_error (Bad_jump { pc; target = pc }));
      if depth_at.(pc) = -1 then begin
        depth_at.(pc) <- depth;
        if pc < len then Queue.add pc pending
      end
      else if depth_at.(pc) <> depth then
        raise (Verify_error (Inconsistent_stack { pc; expected = depth_at.(pc); found = depth }))
    in
    try
      schedule 0 0;
      while not (Queue.is_empty pending) do
        let pc = Queue.pop pending in
        let op = p.code.(pc) in
        let depth = depth_at.(pc) in
        let pops, pushes = Opcode.stack_effect op in
        if depth < pops then raise (Verify_error (Stack_underflow { pc; depth }));
        let depth' = depth - pops + pushes in
        if depth' > p.stack_limit then
          raise (Verify_error (Stack_overflow { pc; depth = depth'; limit = p.stack_limit }));
        if depth' > !max_depth then max_depth := depth';
        (match op with
        | Opcode.Load i | Opcode.Store i -> check_local pc i
        | Opcode.Gaload s | Opcode.Gaload_unsafe s | Opcode.Galen s ->
          check_slot pc ~write:false s
        | Opcode.Gastore s | Opcode.Gastore_unsafe s -> check_slot pc ~write:true s
        | _ -> ());
        (match Opcode.jump_target op with
        | Some target ->
          if target < 0 || target > len then
            raise (Verify_error (Bad_jump { pc; target }));
          schedule target depth'
        | None -> ());
        match op with
        | Opcode.Jmp _ | Opcode.Halt -> ()
        | _ -> schedule (pc + 1) depth'
      done;
      let unreachable = ref [] in
      for pc = len - 1 downto 0 do
        if depth_at.(pc) = -1 then unreachable := pc :: !unreachable
      done;
      (match (strict, !unreachable) with
      | true, pc :: _ -> raise (Verify_error (Unreachable_code { pc }))
      | _ -> ());
      (* Unchecked accesses must carry a re-provable bounds argument; the
         interval analysis re-derives it from the code, so nothing the
         producer claims is trusted. *)
      let uses_unsafe =
        Array.exists
          (function
            | Opcode.Gaload_unsafe _ | Opcode.Gastore_unsafe _ -> true
            | _ -> false)
          p.code
      in
      if uses_unsafe then begin
        match Absint.check p with
        | Ok () -> ()
        | Error { Absint.up_pc; up_slot } ->
          raise (Verify_error (Unproved_unsafe { pc = up_pc; slot = up_slot }))
      end;
      Ok { an_max_stack = !max_depth; an_unreachable = !unreachable }
    with Verify_error e -> Error e
  end

let verify ?strict p = Result.map (fun _ -> ()) (analyse ?strict p)
let max_stack_depth p = Result.map (fun a -> a.an_max_stack) (analyse p)
