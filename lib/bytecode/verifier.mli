(** Static bytecode verification.

    Run by the enclave before installing a program (the controller may push
    programs at run time, so installation is the trust boundary).  The
    verifier guarantees that a verified program cannot: jump outside the
    code, underflow or overflow the operand stack, touch locals outside its
    frame, address a non-existent environment array slot, write to a
    read-only slot, or perform an unchecked array access whose index it
    cannot re-prove in bounds ({!Absint}).  Dynamic properties (division by
    zero, heap and step budgets, bounds of still-checked accesses) remain
    interpreter checks. *)

type error =
  | Bad_jump of { pc : int; target : int }
  | Stack_underflow of { pc : int; depth : int }
  | Stack_overflow of { pc : int; depth : int; limit : int }
  | Inconsistent_stack of { pc : int; expected : int; found : int }
      (** Two control-flow paths reach [pc] with different stack depths. *)
  | Bad_local of { pc : int; index : int; n_locals : int }
  | Bad_array_slot of { pc : int; slot : int }
  | Readonly_write of { pc : int; slot : int; name : string }
  | Unreachable_code of { pc : int }
      (** Strict mode only: no control-flow path reaches [pc]. *)
  | Unproved_unsafe of { pc : int; slot : int }
      (** An unchecked access whose index the verifier's own interval
          analysis cannot prove in bounds — the proof obligation is
          re-discharged here, never trusted from the producer. *)
  | Bad_limits of string
  | Empty_code

val error_to_string : error -> string
val pp_error : Format.formatter -> error -> unit

type analysis = {
  an_max_stack : int;  (** Statically computed peak operand-stack depth. *)
  an_unreachable : int list;
      (** Instructions no control-flow path reaches, ascending.  Empty in
          strict mode (their presence is an error there). *)
}

val analyse : ?strict:bool -> Program.t -> (analysis, error) result
(** One dataflow pass computing everything the verifier knows; [verify]
    and [max_stack_depth] are thin projections of it, so call [analyse]
    directly when more than one result is needed.  [strict] (default
    false) additionally rejects unreachable instructions — compiler
    output is expected to be fully live ({!Program.strip_unreachable}). *)

val verify : ?strict:bool -> Program.t -> (unit, error) result
val max_stack_depth : Program.t -> (int, error) result
