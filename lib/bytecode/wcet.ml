(* Longest path from pc 0 through the reachable control-flow graph,
   counting one step per instruction.  Node [len] is the exit (falling
   off the end or [Halt]).  Iterative colouring DFS: grey-on-stack means
   a reachable cycle, so no static bound exists. *)

let successors (p : Program.t) pc =
  let len = Array.length p.code in
  let op = p.code.(pc) in
  let clamp t = if t < 0 then len else min t len in
  match op with
  | Opcode.Jmp t -> [ clamp t ]
  | Opcode.Halt -> [ len ]
  | Opcode.Jz t | Opcode.Jnz t -> [ clamp t; pc + 1 ]
  | _ -> [ pc + 1 ]

(* Reachable pcs, by the same traversal [worst_case_steps] uses. *)
let reachable (p : Program.t) =
  let len = Array.length p.code in
  let seen = Array.make (max len 1) false in
  let q = Queue.create () in
  let sched pc =
    if pc < len && not seen.(pc) then begin
      seen.(pc) <- true;
      Queue.add pc q
    end
  in
  if len > 0 then sched 0;
  while not (Queue.is_empty q) do
    let pc = Queue.pop q in
    List.iter sched (successors p pc)
  done;
  seen

let worst_case_steps (p : Program.t) =
  let len = Array.length p.code in
  if len = 0 then Some 0
  else begin
    (* 0 = white, 1 = grey (on stack), 2 = black (done). *)
    let colour = Array.make (len + 1) 0 in
    let cost = Array.make (len + 1) 0 in
    let exception Cyclic in
    (* Explicit stack of (node, remaining successors). *)
    let stack = ref [] in
    let enter n =
      colour.(n) <- 1;
      let succs = if n = len then [] else successors p n in
      stack := (n, ref succs) :: !stack
    in
    try
      enter 0;
      while !stack <> [] do
        match !stack with
        | [] -> ()
        | (n, succs) :: rest -> (
          match !succs with
          | s :: more ->
            succs := more;
            if colour.(s) = 1 then raise Cyclic
            else if colour.(s) = 0 then enter s
          | [] ->
            colour.(n) <- 2;
            cost.(n) <-
              (if n = len then 0
               else
                 1
                 + List.fold_left
                     (fun acc s -> max acc cost.(s))
                     0 (successors p n));
            stack := rest)
      done;
      Some cost.(0)
    with Cyclic -> None
  end

let fault_free (p : Program.t) =
  (match worst_case_steps p with
  | Some n -> n <= p.step_limit
  | None -> false)
  &&
  let seen = reachable p in
  let ok = ref true in
  Array.iteri
    (fun pc op ->
      if seen.(pc) then
        match op with
        | Opcode.Div | Opcode.Rem | Opcode.Gaload _ | Opcode.Gastore _
        | Opcode.Newarr | Opcode.Aload | Opcode.Astore | Opcode.Alen
        | Opcode.Rand ->
          ok := false
        | _ -> ())
    p.code;
  !ok
