(** Static worst-case execution cost of a program, in interpreter steps.

    Every retired instruction costs one step (matching
    {!Interp.stats.steps}), so on an acyclic control-flow graph the
    worst case is the longest instruction path from entry to exit.
    Programs with reachable cycles have no static bound here — the
    interpreter's [step_limit] is then the only bound, and admission
    control falls back to it. *)

val worst_case_steps : Program.t -> int option
(** [Some n]: no execution of the program retires more than [n]
    instructions.  [None]: the reachable control-flow graph has a cycle.
    Unreachable code never contributes. *)

val fault_free : Program.t -> bool
(** [true] iff no execution of the program can fault: its worst-case
    step count is statically bounded within [step_limit], and no
    reachable instruction belongs to a faultable class — checked global
    array access ([Gaload]/[Gastore]; the [_unsafe] forms carry a bounds
    proof and cannot fault), division ([Div]/[Rem]), heap use
    ([Newarr]/[Aload]/[Astore]/[Alen]) or [Rand].  Such a program always
    runs to completion, which licenses the enclave to execute it
    directly against live state with no copy-in/copy-out isolation. *)
