(** Static worst-case execution cost of a program, in interpreter steps.

    Every retired instruction costs one step (matching
    {!Interp.stats.steps}), so on an acyclic control-flow graph the
    worst case is the longest instruction path from entry to exit.
    Programs with reachable cycles have no static bound here — the
    interpreter's [step_limit] is then the only bound, and admission
    control falls back to it. *)

val worst_case_steps : Program.t -> int option
(** [Some n]: no execution of the program retires more than [n]
    instructions.  [None]: the reachable control-flow graph has a cycle.
    Unreachable code never contributes. *)
