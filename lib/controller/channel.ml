module Enclave = Eden_enclave.Enclave
module Time = Eden_base.Time
module Rng = Eden_base.Rng
module Pattern = Eden_base.Class_name.Pattern
module Tel = Eden_telemetry

type op =
  | Install_action of Enclave.install_spec
  | Remove_action of string
  | Add_table
  | Add_rule of { table : int; pattern : Pattern.t; action : string }
  | Remove_rule of { table : int; rule_id : int }
  | Set_global of { action : string; name : string; value : int64 }
  | Set_global_array of { action : string; name : string; value : int64 array }
  | Commit_generation

let op_to_string = function
  | Install_action s -> "install_action " ^ s.Enclave.i_name
  | Remove_action n -> "remove_action " ^ n
  | Add_table -> "add_table"
  | Add_rule r -> Printf.sprintf "add_rule %s -> %s @%d" (Pattern.to_string r.pattern) r.action r.table
  | Remove_rule r -> Printf.sprintf "remove_rule #%d @%d" r.rule_id r.table
  | Set_global g -> Printf.sprintf "set_global %s.%s" g.action g.name
  | Set_global_array g -> Printf.sprintf "set_global_array %s.%s" g.action g.name
  | Commit_generation -> "commit_generation"

type fault =
  | Drop
  | Ack_lost
  | Duplicate
  | Delay of int
  | Crash_restart

let fault_to_string = function
  | Drop -> "drop"
  | Ack_lost -> "ack_lost"
  | Duplicate -> "duplicate"
  | Delay n -> Printf.sprintf "delay(%d)" n
  | Crash_restart -> "crash_restart"

type error =
  | Lost
  | Timeout
  | Crashed
  | Partitioned
  | Rejected of string

let error_to_string = function
  | Lost -> "lost"
  | Timeout -> "timeout"
  | Crashed -> "enclave crashed"
  | Partitioned -> "partitioned"
  | Rejected msg -> "rejected: " ^ msg

let is_transient = function Rejected _ -> false | Lost | Timeout | Crashed | Partitioned -> true

(* An op held back by [Delay n]: delivered just before the [n]th
   subsequent protocol interaction on this channel. *)
type delayed = { dl_op_id : int64; dl_gen : int; dl_op : op; mutable dl_left : int }

(* The memo table makes delivery exactly-once over an at-least-once
   transport: retries and duplicates of an op id replay the recorded
   outcome instead of re-applying.  It is soft state — an enclave restart
   wipes it, which is exactly why the desired store, not the channel, is
   the source of truth. *)
let memo_cap = 65_536

type t = {
  ch_enclave : Enclave.t;
  ch_rng : Rng.t;
  mutable ch_partitioned : bool;
  mutable ch_script : (int * fault) list;  (* delivery index -> fault *)
  mutable ch_fault_rate : float;
  mutable ch_seq : int;  (* delivery attempts (unpartitioned sends) *)
  mutable ch_delayed : delayed list;  (* oldest first *)
  ch_applied : (int64, (int64, string) result) Hashtbl.t;
  mutable ch_acked_generation : int;
  mutable ch_divergent : bool;
  mutable ch_ops_sent : int;
  mutable ch_faults_injected : int;
  mutable ch_restarts_injected : int;
  (* Telemetry cells, synced from the fields above at scrape time so the
     protocol paths stay untouched. *)
  ch_tel : Tel.Registry.t;
  chm_ops : Tel.Counter.t;
  chm_faults : Tel.Counter.t;
  chm_restarts : Tel.Counter.t;
  chg_delayed : Tel.Gauge.t;
  chg_acked : Tel.Gauge.t;
}

let create ?(seed = 0xFA17L) enclave =
  let tel = Tel.Registry.create () in
  {
    ch_enclave = enclave;
    ch_rng = Rng.create (Int64.add seed (Int64.of_int (Enclave.host enclave)));
    ch_partitioned = false;
    ch_script = [];
    ch_fault_rate = 0.0;
    ch_seq = 0;
    ch_delayed = [];
    ch_applied = Hashtbl.create 256;
    ch_acked_generation = 0;
    ch_divergent = false;
    ch_ops_sent = 0;
    ch_faults_injected = 0;
    ch_restarts_injected = 0;
    ch_tel = tel;
    chm_ops = Tel.Registry.counter tel ~help:"Control ops sent" "eden_channel_ops_sent_total";
    chm_faults =
      Tel.Registry.counter tel ~help:"Injected channel faults"
        "eden_channel_faults_injected_total";
    chm_restarts =
      Tel.Registry.counter tel ~help:"Injected enclave crash-restarts"
        "eden_channel_restarts_injected_total";
    chg_delayed =
      Tel.Registry.gauge tel ~help:"Ops held back by Delay faults" "eden_channel_delayed";
    chg_acked =
      Tel.Registry.gauge tel ~help:"Highest generation acked by this enclave"
        "eden_channel_acked_generation";
  }

let enclave t = t.ch_enclave
let host t = Enclave.host t.ch_enclave
let acked_generation t = t.ch_acked_generation
let partitioned t = t.ch_partitioned
let set_partitioned t b = t.ch_partitioned <- b
let divergent t = t.ch_divergent
let mark_divergent t = t.ch_divergent <- true
let clear_divergent t = t.ch_divergent <- false
let ops_sent t = t.ch_ops_sent
let faults_injected t = t.ch_faults_injected
let restarts_injected t = t.ch_restarts_injected
let delayed_count t = List.length t.ch_delayed

let sync_telemetry t =
  Tel.Counter.set t.chm_ops t.ch_ops_sent;
  Tel.Counter.set t.chm_faults t.ch_faults_injected;
  Tel.Counter.set t.chm_restarts t.ch_restarts_injected;
  Tel.Gauge.set_int t.chg_delayed (List.length t.ch_delayed);
  Tel.Gauge.set_int t.chg_acked t.ch_acked_generation

let telemetry t =
  sync_telemetry t;
  t.ch_tel

let scrape t =
  sync_telemetry t;
  Tel.Registry.scrape t.ch_tel

let script t faults = t.ch_script <- faults

let set_fault_rate t p =
  if p < 0.0 || p > 1.0 then invalid_arg "Channel.set_fault_rate: rate must be in [0, 1]";
  t.ch_fault_rate <- p

(* ------------------------------------------------------------------ *)
(* Receiver side *)

let apply t op : (int64, string) result =
  let e = t.ch_enclave in
  match op with
  | Install_action spec -> (
    match Enclave.install_action e spec with Ok () -> Ok 0L | Error m -> Error m)
  | Remove_action name -> (
    (* Removing an absent action is success: removes must stay idempotent
       so rollback and reconciliation can repeat them safely. *)
    match Enclave.remove_action e name with
    | Some dropped -> Ok (Int64.of_int dropped)
    | None -> Ok 0L)
  | Add_table -> Ok (Int64.of_int (Enclave.add_table e))
  | Add_rule { table; pattern; action } -> (
    match Enclave.add_table_rule e ~table ~pattern ~action () with
    | Ok rule_id -> Ok (Int64.of_int rule_id)
    | Error m -> Error m)
  | Remove_rule { table; rule_id } ->
    ignore (Enclave.remove_table_rule e ~table rule_id);
    Ok 0L
  | Set_global { action; name; value } -> (
    match Enclave.set_global e ~action name value with Ok () -> Ok 0L | Error m -> Error m)
  | Set_global_array { action; name; value } -> (
    match Enclave.set_global_array e ~action name (Array.copy value) with
    | Ok () -> Ok 0L
    | Error m -> Error m)
  | Commit_generation -> Ok 0L

let deliver t ~op_id ~gen op =
  match Hashtbl.find_opt t.ch_applied op_id with
  | Some outcome -> outcome
  | None ->
    let outcome = apply t op in
    if Hashtbl.length t.ch_applied >= memo_cap then Hashtbl.reset t.ch_applied;
    Hashtbl.replace t.ch_applied op_id outcome;
    (match outcome with
    | Ok _ -> if gen > t.ch_acked_generation then t.ch_acked_generation <- gen
    | Error _ -> ());
    outcome

let restart t =
  Enclave.restart t.ch_enclave;
  Hashtbl.reset t.ch_applied;
  t.ch_acked_generation <- 0;
  t.ch_delayed <- [];
  t.ch_restarts_injected <- t.ch_restarts_injected + 1

let inject_restart = restart

(* Deliver delayed ops that have run out of holding time.  Called at the
   start of every protocol interaction, so a [Delay n] op lands before
   the [n]th later send/pull. *)
let flush_due t =
  List.iter (fun d -> d.dl_left <- d.dl_left - 1) t.ch_delayed;
  let due, still = List.partition (fun d -> d.dl_left <= 0) t.ch_delayed in
  t.ch_delayed <- still;
  List.iter (fun d -> ignore (deliver t ~op_id:d.dl_op_id ~gen:d.dl_gen d.dl_op)) due

let flush_delayed t =
  let due = t.ch_delayed in
  t.ch_delayed <- [];
  List.iter (fun d -> ignore (deliver t ~op_id:d.dl_op_id ~gen:d.dl_gen d.dl_op)) due

let random_fault t =
  match Rng.int t.ch_rng 4 with
  | 0 -> Drop
  | 1 -> Ack_lost
  | 2 -> Duplicate
  | _ -> Delay (1 + Rng.int t.ch_rng 3)

let next_fault t =
  let idx = t.ch_seq in
  t.ch_seq <- idx + 1;
  match List.assoc_opt idx t.ch_script with
  | Some f -> Some f
  | None ->
    if t.ch_fault_rate > 0.0 && Rng.float t.ch_rng 1.0 < t.ch_fault_rate then
      Some (random_fault t)
    else None

let send t ~op_id ~gen op =
  t.ch_ops_sent <- t.ch_ops_sent + 1;
  if t.ch_partitioned then Error Partitioned
  else begin
    flush_due t;
    let fault = next_fault t in
    (match fault with Some _ -> t.ch_faults_injected <- t.ch_faults_injected + 1 | None -> ());
    match fault with
    | None -> (
      match deliver t ~op_id ~gen op with Ok _ as ok -> ok | Error m -> Error (Rejected m))
    | Some Drop -> Error Lost
    | Some Ack_lost ->
      ignore (deliver t ~op_id ~gen op);
      Error Timeout
    | Some Duplicate -> (
      ignore (deliver t ~op_id ~gen op);
      match deliver t ~op_id ~gen op with Ok _ as ok -> ok | Error m -> Error (Rejected m))
    | Some (Delay n) ->
      t.ch_delayed <-
        t.ch_delayed @ [ { dl_op_id = op_id; dl_gen = gen; dl_op = op; dl_left = max 1 n } ];
      Error Timeout
    | Some Crash_restart ->
      restart t;
      Error Crashed
  end

(* ------------------------------------------------------------------ *)
(* Reads *)

let read t f = if t.ch_partitioned then Error Partitioned else Ok (f t.ch_enclave)

let pull_state t =
  if t.ch_partitioned then Error Partitioned
  else begin
    flush_due t;
    Ok (Enclave.snapshot t.ch_enclave, t.ch_acked_generation)
  end
