(** Fallible controller→enclave control channel.

    The paper's consistency argument (§2.2, §3.5) is that the enclave is
    a single enforcement point that keeps forwarding on last-known policy
    while the logically centralized controller converges.  That story is
    vacuous if controller pushes are infallible in-process calls, so
    every enclave-programming operation goes through one of these
    channels, which can inject deterministic, seeded faults — drops,
    lost acks, duplicate delivery, delayed delivery, crash-with-restart —
    driven by a scriptable schedule.

    Delivery is exactly-once per op id over this at-least-once transport:
    the receiver memoizes each op id's outcome and replays it for retries
    and duplicates, so an [Ack_lost] retry cannot double-apply (and a
    generation cannot double-bump).  The memo is soft state: an enclave
    restart wipes it along with everything else, which is why the
    controller's desired store — not the channel — is the source of
    truth, and reconciliation the repair mechanism. *)

type op =
  | Install_action of Eden_enclave.Enclave.install_spec
  | Remove_action of string
  | Add_table
  | Add_rule of {
      table : int;
      pattern : Eden_base.Class_name.Pattern.t;
      action : string;
    }
  | Remove_rule of { table : int; rule_id : int }
  | Set_global of { action : string; name : string; value : int64 }
  | Set_global_array of { action : string; name : string; value : int64 array }
  | Commit_generation
      (** No-op at the enclave; advances the acked generation watermark.
          Closes a reconciliation round. *)

val op_to_string : op -> string

type fault =
  | Drop  (** The op never reaches the enclave; the sender sees [Lost]. *)
  | Ack_lost
      (** The op is applied but the acknowledgement is lost; the sender
          sees [Timeout] and will retry into the memo table. *)
  | Duplicate  (** Delivered twice; the memo makes the second a no-op. *)
  | Delay of int
      (** Held back, then delivered just before the [n]th subsequent
          protocol interaction on this channel; the sender sees [Timeout]
          now. *)
  | Crash_restart
      (** The enclave restarts (wiping all soft state, including the
          delivery memo) before applying the op; the sender sees
          [Crashed]. *)

val fault_to_string : fault -> string

type error =
  | Lost
  | Timeout
  | Crashed
  | Partitioned
  | Rejected of string
      (** The enclave processed the op and refused it — permanent;
          retrying cannot help. *)

val error_to_string : error -> string

val is_transient : error -> bool
(** Everything but [Rejected] — worth retrying. *)

type t

val create : ?seed:int64 -> Eden_enclave.Enclave.t -> t
(** The channel's fault stream is seeded from [seed] and the enclave's
    host id, so a fleet built from one experiment seed is replayable. *)

val enclave : t -> Eden_enclave.Enclave.t
val host : t -> Eden_base.Addr.host

(** {2 Fault scripting} *)

val script : t -> (int * fault) list -> unit
(** [(i, f)] injects fault [f] on the [i]th delivery attempt on this
    channel (0-based, counting every unpartitioned send since creation).
    Replaces any previous script. *)

val set_fault_rate : t -> float -> unit
(** Additionally inject a random fault (never [Crash_restart]) on each
    unscripted delivery with this probability, from the channel's seeded
    stream.  @raise Invalid_argument outside [0, 1]. *)

val set_partitioned : t -> bool -> unit
(** While partitioned every send and read fails with [Partitioned] and
    nothing is delivered (a partition drops traffic; it does not queue
    it).  Delayed ops survive a partition and land after it heals. *)

val partitioned : t -> bool

val inject_restart : t -> unit
(** Restart the enclave now: wipes its soft state and the channel's
    delivery memo, zeroes the acked generation, drops delayed ops. *)

(** {2 Transport} *)

val send : t -> op_id:int64 -> gen:int -> op -> (int64, error) result
(** One delivery attempt.  [op_id] must be globally unique per logical
    op and reused verbatim on retry; [gen] is the generation the op
    belongs to, acknowledged monotonically on successful application.
    The [int64] payload is op-specific (rule id for [Add_rule], table id
    for [Add_table], dropped-rule count for [Remove_action], else 0). *)

val flush_delayed : t -> unit
(** Deliver every delayed op now (e.g. when a chaos scenario heals). *)

val delayed_count : t -> int

(** {2 Reads} *)

val read : t -> (Eden_enclave.Enclave.t -> 'a) -> ('a, error) result
(** Monitoring read ([Partitioned] when unreachable).  Reads are not
    fault-injected — monitoring noise is not what this model studies. *)

val pull_state : t -> (Eden_enclave.Enclave.snapshot * int, error) result
(** The reconciliation read: the enclave's programmed configuration and
    its acked generation watermark. *)

(** {2 Bookkeeping} *)

val acked_generation : t -> int
(** Highest generation the enclave has acknowledged; 0 after a restart. *)

val divergent : t -> bool
(** Set by the controller when a push gave up on this enclave; cleared
    by a successful reconciliation. *)

val mark_divergent : t -> unit
val clear_divergent : t -> unit
val ops_sent : t -> int
val faults_injected : t -> int
val restarts_injected : t -> int

(** {2 Telemetry}

    The channel keeps its protocol counters in plain fields (the paths
    above stay allocation-free) and syncs them into a per-channel
    registry ([eden_channel_*]: ops sent, faults and restarts injected,
    delayed-op backlog, acked-generation watermark) only when scraped. *)

val telemetry : t -> Eden_telemetry.Registry.t
(** The synced registry (cells refreshed on every call). *)

val scrape : t -> Eden_telemetry.Registry.sample list
