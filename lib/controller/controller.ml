module Enclave = Eden_enclave.Enclave
module Table = Eden_enclave.Table
module Stage = Eden_stage.Stage
module Time = Eden_base.Time
module Rng = Eden_base.Rng
module Pattern = Eden_base.Class_name.Pattern
module Tel = Eden_telemetry

type retry_policy = {
  rp_max_attempts : int;
  rp_base_backoff : Time.t;
  rp_max_backoff : Time.t;
}

let default_retry =
  { rp_max_attempts = 5; rp_base_backoff = Time.us 50; rp_max_backoff = Time.ms 5 }

type retry_stats = {
  mutable rs_ops : int;
  mutable rs_attempts : int;
  mutable rs_retries : int;
  mutable rs_giveups : int;
  mutable rs_backoff : Time.t;
}

type t = {
  topo : Topology.t;
  mutable chans : Channel.t list;  (* newest first *)
  mutable stgs : Stage.t list;
  desired : Desired.t;
  retry : retry_policy;
  jitter : Rng.t;
  mutable next_op : int64;
  stats : retry_stats;
  (* Retry/generation cells are synced from [stats] and the desired
     store at scrape time; reconcile cells are bumped live (they have no
     other home). *)
  tel : Tel.Registry.t;
  cm_push_ops : Tel.Counter.t;
  cm_attempts : Tel.Counter.t;
  cm_retries : Tel.Counter.t;
  cm_giveups : Tel.Counter.t;
  cg_backoff_ns : Tel.Gauge.t;
  cm_reconcile_rounds : Tel.Counter.t;
  cm_reconcile_replayed : Tel.Counter.t;
  cg_generation : Tel.Gauge.t;
  cg_generation_lag : Tel.Gauge.t;
  cg_divergent : Tel.Gauge.t;
}

let create ?topology ?(retry = default_retry) ?(seed = 0xC0DEL) () =
  let topo = match topology with Some t -> t | None -> Topology.create () in
  if retry.rp_max_attempts < 1 then invalid_arg "Controller.create: max_attempts must be >= 1";
  let tel = Tel.Registry.create () in
  {
    topo;
    chans = [];
    stgs = [];
    desired = Desired.create ();
    retry;
    jitter = Rng.create seed;
    next_op = 1L;
    stats = { rs_ops = 0; rs_attempts = 0; rs_retries = 0; rs_giveups = 0; rs_backoff = Time.zero };
    tel;
    cm_push_ops =
      Tel.Registry.counter tel ~help:"Logical push ops" "eden_controller_push_ops_total";
    cm_attempts =
      Tel.Registry.counter tel ~help:"Channel sends incl. retries"
        "eden_controller_send_attempts_total";
    cm_retries = Tel.Registry.counter tel ~help:"Retried sends" "eden_controller_retries_total";
    cm_giveups =
      Tel.Registry.counter tel ~help:"Sends that exhausted the retry budget"
        "eden_controller_giveups_total";
    cg_backoff_ns =
      Tel.Registry.gauge tel ~help:"Total simulated backoff (ns)" "eden_controller_backoff_ns";
    cm_reconcile_rounds =
      Tel.Registry.counter tel ~help:"Anti-entropy rounds run"
        "eden_controller_reconcile_rounds_total";
    cm_reconcile_replayed =
      Tel.Registry.counter tel ~help:"Ops replayed by reconciliation"
        "eden_controller_reconcile_ops_replayed_total";
    cg_generation =
      Tel.Registry.gauge tel ~help:"Desired-state generation" "eden_controller_generation";
    cg_generation_lag =
      Tel.Registry.gauge tel ~help:"Desired generation minus lowest acked watermark"
        "eden_controller_generation_lag";
    cg_divergent =
      Tel.Registry.gauge tel ~help:"Enclaves marked divergent" "eden_controller_divergent_hosts";
  }

let topology t = t.topo
let register_enclave t e = t.chans <- Channel.create e :: t.chans
let register_stage t s = t.stgs <- s :: t.stgs
let channels t = List.rev t.chans
let enclaves t = List.rev_map Channel.enclave t.chans
let stages t = List.rev t.stgs
let find_stage t name = List.find_opt (fun s -> String.equal (Stage.name s) name) t.stgs
let generation t = Desired.generation t.desired
let desired t = t.desired
let stats t = t.stats

let channel_for t host =
  List.find_opt (fun ch -> Channel.host ch = host) t.chans

let divergent_hosts t =
  List.filter_map
    (fun ch -> if Channel.divergent ch then Some (Channel.host ch) else None)
    (channels t)

let fresh_op t =
  let id = t.next_op in
  t.next_op <- Int64.add id 1L;
  id

(* Capped exponential backoff with seeded jitter.  The controller runs in
   simulated time, so backoff is accounted, not slept: [rs_backoff] is
   the control-plane latency a real deployment would have paid. *)
let backoff_for t ~attempt =
  let base = Int64.to_float (Time.to_ns t.retry.rp_base_backoff) in
  let cap = Int64.to_float (Time.to_ns t.retry.rp_max_backoff) in
  let exp = base *. (2.0 ** float_of_int (attempt - 1)) in
  let capped = Float.min cap exp in
  let jitter = 0.5 +. (0.5 *. Rng.float t.jitter 1.0) in
  Time.of_float_ns (capped *. jitter)

type push_error =
  [ `Rejected of string  (** The enclave refused the op; retrying is pointless. *)
  | `Unreachable of string  (** Transient failures exhausted the retry budget. *)
  ]

let send_with_retry t ch ~gen op : (int64, push_error) result =
  let op_id = fresh_op t in
  t.stats.rs_ops <- t.stats.rs_ops + 1;
  let rec go attempt =
    t.stats.rs_attempts <- t.stats.rs_attempts + 1;
    match Channel.send ch ~op_id ~gen op with
    | Ok payload -> Ok payload
    | Error (Channel.Rejected msg) -> Error (`Rejected msg)
    | Error e ->
      if attempt >= t.retry.rp_max_attempts then begin
        t.stats.rs_giveups <- t.stats.rs_giveups + 1;
        Error (`Unreachable (Channel.error_to_string e))
      end
      else begin
        t.stats.rs_retries <- t.stats.rs_retries + 1;
        t.stats.rs_backoff <- Time.add t.stats.rs_backoff (backoff_for t ~attempt);
        go (attempt + 1)
      end
  in
  go 1

(* ------------------------------------------------------------------ *)
(* Broadcast pushes.

   A push is accepted or refused at the *desired-state* level:

   - if any enclave [`Rejected] the op (a permanent refusal — e.g. the
     bytecode fails verification there), the change is abandoned: it is
     not recorded in the desired state and is undone, failure-tolerantly,
     on every enclave that did apply it;
   - transient failures ([`Unreachable] after retries) do NOT abandon the
     change: the desired state is committed, the unreachable enclaves are
     marked divergent, and {!reconcile} converges them later.  This is
     the paper's consistency model — enclaves forward on stale policy
     until the controller reaches them (§2.2), rather than the fleet
     being held hostage by its least reachable member. *)

let hosts_to_string hosts = String.concat "," (List.map string_of_int hosts)

(* Failure-tolerant undo: try [op] on every channel in [applied]; a
   failing undo must not abort the remaining undos.  Returns the hosts
   left divergent (marked as such, so reconciliation picks them up). *)
let undo_on t applied op =
  List.filter_map
    (fun ch ->
      match send_with_retry t ch ~gen:(Desired.generation t.desired) op with
      | Ok _ -> None
      | Error _ ->
        Channel.mark_divergent ch;
        Some (Channel.host ch))
    applied

let broadcast t ~gen op =
  let rec go applied unreachable = function
    | [] -> `Applied (List.rev applied, List.rev unreachable)
    | ch :: rest -> (
      match send_with_retry t ch ~gen op with
      | Ok _ -> go (ch :: applied) unreachable rest
      | Error (`Unreachable _) ->
        Channel.mark_divergent ch;
        go applied (ch :: unreachable) rest
      | Error (`Rejected msg) -> `Rejected (Channel.host ch, msg, List.rev applied))
  in
  go [] [] (channels t)

(* After a change commits, advance the applied enclaves' watermarks to
   the new generation.  [Commit_generation] cannot be rejected; a channel
   it cannot reach is left divergent for reconciliation. *)
let commit_watermark t chans =
  let gen = Desired.generation t.desired in
  List.iter
    (fun ch ->
      match send_with_retry t ch ~gen Channel.Commit_generation with
      | Ok _ -> ()
      | Error _ -> Channel.mark_divergent ch)
    chans

(* Shared push driver, two-phase so that no enclave ever acknowledges a
   generation that did not commit: broadcast [op] at the *current*
   generation; on acceptance run [commit] (record the change in the
   desired state and bump the generation) and only then advance the
   watermarks; on rejection undo with [undo_op] everywhere the op landed
   — the aborted change never touched any watermark, preserving
   acked <= desired. *)
let push t op ~undo_op ~commit =
  let gen = Desired.generation t.desired in
  match broadcast t ~gen op with
  | `Applied (applied, _) ->
    commit ();
    Desired.bump t.desired;
    commit_watermark t applied;
    Ok ()
  | `Rejected (host, msg, applied) -> (
    match undo_on t applied undo_op with
    | [] -> Error (Printf.sprintf "host %d rejected %s: %s" host (Channel.op_to_string op) msg)
    | divergent ->
      Error
        (Printf.sprintf
           "host %d rejected %s: %s; rollback failed on hosts [%s], left divergent pending \
            reconciliation"
           host (Channel.op_to_string op) msg (hosts_to_string divergent)))

let install_action_everywhere t spec =
  if Desired.has_action t.desired spec.Enclave.i_name then
    Error (Printf.sprintf "action %S is already in the desired state" spec.Enclave.i_name)
  else
    push t
      (Channel.Install_action spec)
      ~undo_op:(Channel.Remove_action spec.Enclave.i_name)
      ~commit:(fun () ->
        match Desired.add_action t.desired spec with Ok () -> () | Error _ -> assert false)

let remove_action_everywhere t name =
  if not (Desired.has_action t.desired name) then
    Error (Printf.sprintf "action %S is not in the desired state" name)
  else begin
    (* Removal is idempotent at the enclave, so there is no rejection to
       roll back from: commit the desired change, push best-effort, and
       let reconciliation catch stragglers. *)
    ignore (Desired.remove_action t.desired name);
    Desired.bump t.desired;
    let gen = Desired.generation t.desired in
    ignore (broadcast t ~gen (Channel.Remove_action name));
    Ok ()
  end

let add_table_everywhere t =
  let id = Desired.tables t.desired in
  match
    push t Channel.Add_table
      ~undo_op:Channel.Commit_generation (* tables cannot be removed; a spare table is harmless *)
      ~commit:(fun () -> ignore (Desired.add_table t.desired))
  with
  | Ok () -> Ok id
  | Error msg -> Error msg

let add_rule_everywhere t ?(table = 0) ~pattern ~action () =
  if not (Desired.has_action t.desired action) then
    Error (Printf.sprintf "action %S is not in the desired state" action)
  else if table < 0 || table >= Desired.tables t.desired then
    Error (Printf.sprintf "table %d is not in the desired state" table)
  else begin
    (* Undo needs per-enclave rule ids, which the generic driver does not
       carry, so rules get their own loop (same two-phase watermark
       protocol as [push]). *)
    let gen = Desired.generation t.desired in
    let rec go applied = function
      | [] -> (
        match Desired.add_rule t.desired ~table ~pattern ~action with
        | Ok _ ->
          Desired.bump t.desired;
          commit_watermark t (List.rev_map fst applied);
          Ok ()
        | Error _ -> assert false)
      | ch :: rest -> (
        match send_with_retry t ch ~gen (Channel.Add_rule { table; pattern; action }) with
        | Ok rule_id -> go ((ch, Int64.to_int rule_id) :: applied) rest
        | Error (`Unreachable _) ->
          Channel.mark_divergent ch;
          go applied rest
        | Error (`Rejected msg) ->
          let divergent =
            List.filter_map
              (fun (ch, rule_id) ->
                match
                  send_with_retry t ch ~gen:(Desired.generation t.desired)
                    (Channel.Remove_rule { table; rule_id })
                with
                | Ok _ -> None
                | Error _ ->
                  Channel.mark_divergent ch;
                  Some (Channel.host ch))
              applied
          in
          Error
            (match divergent with
            | [] -> Printf.sprintf "host %d rejected add_rule: %s" (Channel.host ch) msg
            | hs ->
              Printf.sprintf
                "host %d rejected add_rule: %s; rollback failed on hosts [%s], left divergent \
                 pending reconciliation"
                (Channel.host ch) msg (hosts_to_string hs)))
    in
    go [] (channels t)
  end

let set_global_everywhere t ~action name v =
  if not (Desired.has_action t.desired action) then
    Error (Printf.sprintf "action %S is not in the desired state" action)
  else begin
    let undo_op =
      match Desired.global t.desired ~action name with
      | Some prev -> Channel.Set_global { action; name; value = prev }
      | None -> Channel.Commit_generation  (* nothing to restore; scalars default to 0 *)
    in
    push t
      (Channel.Set_global { action; name; value = v })
      ~undo_op
      ~commit:(fun () -> ignore (Desired.set_global t.desired ~action name v))
  end

let set_global_array_everywhere t ~action name arr =
  if not (Desired.has_action t.desired action) then
    Error (Printf.sprintf "action %S is not in the desired state" action)
  else begin
    let undo_op =
      match Desired.global_array t.desired ~action name with
      | Some prev -> Channel.Set_global_array { action; name; value = prev }
      | None -> Channel.Commit_generation
    in
    push t
      (Channel.Set_global_array { action; name; value = arr })
      ~undo_op
      ~commit:(fun () -> ignore (Desired.set_global_array t.desired ~action name arr))
  end

(* ------------------------------------------------------------------ *)
(* Stage programming (stages are in-process; the fault model covers the
   controller→enclave path, which is the one the paper's consistency
   story depends on). *)

let program_stage t ~stage ~ruleset ~rules =
  match find_stage t stage with
  | None -> Error (Printf.sprintf "stage %S not registered" stage)
  | Some s ->
    let rec go = function
      | [] ->
        Desired.bump t.desired;
        Ok ()
      | (classifier, class_name, metadata_fields) :: rest -> (
        match
          Stage.Api.create_stage_rule s ~ruleset ~classifier ~class_name ~metadata_fields
        with
        | Ok _ -> go rest
        | Error _ as err -> Result.map (fun _ -> ()) err)
    in
    go rules

(* ------------------------------------------------------------------ *)
(* Anti-entropy reconciliation *)

type drift = {
  df_missing_actions : string list;
  df_extra_actions : string list;
  df_missing_rules : Desired.rule list;
  df_extra_rules : (int * int) list;  (* table, enclave rule id *)
  df_stale_globals : (string * string) list;
  df_stale_arrays : (string * string) list;
  df_desired_generation : int;
  df_acked_generation : int;
}

let drift_in_sync d =
  d.df_missing_actions = [] && d.df_extra_actions = [] && d.df_missing_rules = []
  && d.df_extra_rules = [] && d.df_stale_globals = [] && d.df_stale_arrays = []
  && d.df_desired_generation = d.df_acked_generation

let spec_key (s : Enclave.install_spec) =
  let impl =
    match s.Enclave.i_impl with
    | Enclave.Interpreted p -> "interpreted:" ^ p.Eden_bytecode.Program.name
    | Enclave.Compiled p -> "compiled:" ^ p.Eden_bytecode.Program.name
    | Enclave.Native _ -> "native"
  in
  (s.Enclave.i_name, impl, List.sort compare s.Enclave.i_msg_sources)

let rule_key table pattern action = (table, Pattern.to_string pattern, action)

(* Multiset difference of [xs] over [ys] by [key]: every occurrence in
   [xs] not matched one-for-one by an occurrence in [ys]. *)
let multiset_diff key xs ys =
  let remaining = Hashtbl.create 16 in
  List.iter
    (fun y ->
      let k = key y in
      Hashtbl.replace remaining k (1 + Option.value ~default:0 (Hashtbl.find_opt remaining k)))
    ys;
  List.filter
    (fun x ->
      let k = key x in
      match Hashtbl.find_opt remaining k with
      | Some n when n > 0 ->
        Hashtbl.replace remaining k (n - 1);
        false
      | _ -> true)
    xs

let diff_against_desired t (sn : Enclave.snapshot) ~acked =
  let d = t.desired in
  let desired_specs = Desired.actions d in
  let actual_keys = List.map spec_key sn.Enclave.sn_actions in
  let desired_keys = List.map spec_key desired_specs in
  let missing_actions =
    List.filter_map
      (fun s -> if List.mem (spec_key s) actual_keys then None else Some s.Enclave.i_name)
      desired_specs
  in
  let extra_actions =
    List.filter_map
      (fun s -> if List.mem (spec_key s) desired_keys then None else Some s.Enclave.i_name)
      sn.Enclave.sn_actions
  in
  let actual_rules =
    List.concat_map
      (fun (table, rs) ->
        List.map (fun (r : Table.rule) -> (table, r.Table.rule_id, r.Table.pattern, r.Table.action)) rs)
      sn.Enclave.sn_rules
  in
  let desired_rules = Desired.rules d in
  let missing_rules =
    multiset_diff
      (fun (r : Desired.rule) -> rule_key r.dr_table r.dr_pattern r.dr_action)
      desired_rules
      (List.map
         (fun (tb, _, p, a) -> { Desired.dr_id = 0; dr_table = tb; dr_pattern = p; dr_action = a })
         actual_rules)
  in
  let extra_rules =
    multiset_diff
      (fun (tb, _, p, a) -> rule_key tb p a)
      actual_rules
      (List.map
         (fun (r : Desired.rule) -> (r.dr_table, 0, r.dr_pattern, r.dr_action))
         desired_rules)
    |> List.map (fun (tb, id, _, _) -> (tb, id))
  in
  let actual_globals action =
    match List.assoc_opt action sn.Enclave.sn_globals with Some bs -> bs | None -> []
  in
  let actual_arrays action =
    match List.assoc_opt action sn.Enclave.sn_arrays with Some bs -> bs | None -> []
  in
  let stale_globals =
    List.concat_map
      (fun name ->
        List.filter_map
          (fun (k, v) ->
            if List.assoc_opt k (actual_globals name) = Some v then None else Some (name, k))
          (Desired.globals_of d name))
      (Desired.action_names d)
  in
  let stale_arrays =
    List.concat_map
      (fun name ->
        List.filter_map
          (fun (k, v) ->
            if List.assoc_opt k (actual_arrays name) = Some v then None else Some (name, k))
          (Desired.arrays_of d name))
      (Desired.action_names d)
  in
  {
    df_missing_actions = missing_actions;
    df_extra_actions = extra_actions;
    df_missing_rules = missing_rules;
    df_extra_rules = extra_rules;
    df_stale_globals = stale_globals;
    df_stale_arrays = stale_arrays;
    df_desired_generation = Desired.generation d;
    df_acked_generation = acked;
  }

let pp_drift fmt d =
  Format.fprintf fmt
    "@[<v>missing actions: [%s]@,extra actions: [%s]@,missing rules: %d@,extra rules: %d@,\
     stale globals: %d@,stale arrays: %d@,generation: desired %d, acked %d@]"
    (String.concat "," d.df_missing_actions)
    (String.concat "," d.df_extra_actions)
    (List.length d.df_missing_rules) (List.length d.df_extra_rules)
    (List.length d.df_stale_globals) (List.length d.df_stale_arrays)
    d.df_desired_generation d.df_acked_generation

type reconcile_outcome =
  | In_sync
  | Repaired of int  (** ops replayed *)
  | Unreachable of string
  | Repair_failed of string

let reconcile_outcome_to_string = function
  | In_sync -> "in sync"
  | Repaired n -> Printf.sprintf "repaired (%d ops)" n
  | Unreachable msg -> "unreachable: " ^ msg
  | Repair_failed msg -> "repair failed: " ^ msg

(* One anti-entropy round for one enclave: pull its configuration and
   generation watermark, diff against desired, replay the delta, commit
   the generation.  Repair order matters: extra rules go before extra
   actions (removing an action drops its rules at the enclave), missing
   actions before their state and rules (the enclave refuses rules and
   state for unknown actions — which is also why a packet can never
   match a half-installed action: the rule that would route to it cannot
   exist before the install has fully succeeded). *)
let reconcile_enclave t ch =
  Tel.Counter.inc t.cm_reconcile_rounds;
  let d = t.desired in
  let gen = Desired.generation d in
  match Channel.pull_state ch with
  | Error e -> Unreachable (Channel.error_to_string e)
  | Ok (sn, acked) -> (
    let drift = diff_against_desired t sn ~acked in
    if drift_in_sync drift then begin
      Channel.clear_divergent ch;
      In_sync
    end
    else begin
      let ops = ref 0 in
      let step op =
        incr ops;
        match send_with_retry t ch ~gen op with
        | Ok _ -> Ok ()
        | Error (`Rejected msg) -> Error (Channel.op_to_string op ^ ": rejected: " ^ msg)
        | Error (`Unreachable msg) -> Error (Channel.op_to_string op ^ ": " ^ msg)
      in
      let ( let* ) = Result.bind in
      let rec each f = function
        | [] -> Ok ()
        | x :: rest ->
          let* () = f x in
          each f rest
      in
      let specs_by_name = List.map (fun s -> (s.Enclave.i_name, s)) (Desired.actions d) in
      let repair =
        let* () =
          each (fun (table, rule_id) -> step (Channel.Remove_rule { table; rule_id }))
            drift.df_extra_rules
        in
        let* () =
          each (fun name -> step (Channel.Remove_action name)) drift.df_extra_actions
        in
        let* () =
          (* Bring the table count up; spare tables at the enclave are
             harmless (empty tables match nothing). *)
          let have = List.length sn.Enclave.sn_rules in
          let want = Desired.tables d in
          let rec mk n = if n <= 0 then Ok () else
            let* () = step Channel.Add_table in
            mk (n - 1)
          in
          mk (want - have)
        in
        let* () =
          each
            (fun name ->
              match List.assoc_opt name specs_by_name with
              | Some spec -> step (Channel.Install_action spec)
              | None -> Ok ())
            drift.df_missing_actions
        in
        let* () =
          each
            (fun (action, name) ->
              match Desired.global d ~action name with
              | Some value -> step (Channel.Set_global { action; name; value })
              | None -> Ok ())
            drift.df_stale_globals
        in
        let* () =
          each
            (fun (action, name) ->
              match Desired.global_array d ~action name with
              | Some value -> step (Channel.Set_global_array { action; name; value })
              | None -> Ok ())
            drift.df_stale_arrays
        in
        let* () =
          each
            (fun (r : Desired.rule) ->
              step (Channel.Add_rule { table = r.dr_table; pattern = r.dr_pattern; action = r.dr_action }))
            drift.df_missing_rules
        in
        step Channel.Commit_generation
      in
      match repair with
      | Error msg -> Repair_failed msg
      | Ok () -> (
        (* Verify: the proof of convergence is the re-pulled config, not
           the ops having been acked. *)
        match Channel.pull_state ch with
        | Error e -> Unreachable (Channel.error_to_string e)
        | Ok (sn, acked) ->
          let drift = diff_against_desired t sn ~acked in
          if drift_in_sync drift then begin
            Channel.clear_divergent ch;
            Tel.Counter.add t.cm_reconcile_replayed !ops;
            Repaired !ops
          end
          else Repair_failed (Format.asprintf "residual drift: %a" pp_drift drift))
    end)

let reconcile t =
  List.map (fun ch -> (Channel.host ch, reconcile_enclave t ch)) (channels t)

let converged t =
  List.for_all
    (fun ch ->
      match Channel.pull_state ch with
      | Error _ -> false
      | Ok (sn, acked) -> drift_in_sync (diff_against_desired t sn ~acked))
    (channels t)

(* ------------------------------------------------------------------ *)
(* Telemetry *)

let sync_telemetry t =
  Tel.Counter.set t.cm_push_ops t.stats.rs_ops;
  Tel.Counter.set t.cm_attempts t.stats.rs_attempts;
  Tel.Counter.set t.cm_retries t.stats.rs_retries;
  Tel.Counter.set t.cm_giveups t.stats.rs_giveups;
  Tel.Gauge.set t.cg_backoff_ns (Int64.to_float (Time.to_ns t.stats.rs_backoff));
  let gen = Desired.generation t.desired in
  Tel.Gauge.set_int t.cg_generation gen;
  let min_acked =
    List.fold_left (fun acc ch -> min acc (Channel.acked_generation ch)) max_int t.chans
  in
  let lag = if t.chans = [] then 0 else max 0 (gen - min_acked) in
  Tel.Gauge.set_int t.cg_generation_lag lag;
  Tel.Gauge.set_int t.cg_divergent (List.length (divergent_hosts t))

let telemetry t =
  sync_telemetry t;
  t.tel

let scrape t =
  sync_telemetry t;
  Tel.Registry.merge
    (Tel.Registry.scrape t.tel :: List.map Channel.scrape (channels t))

(* ------------------------------------------------------------------ *)
(* Monitoring *)

type enclave_report = {
  er_host : Eden_base.Addr.host;
  er_placement : Enclave.placement;
  er_packets : int;
  er_invocations : int;
  er_dropped : int;
  er_faults : int;
  er_interp_steps : int;
  er_actions : string list;
  er_overhead_pct : float;
  er_generation : int;
  er_restarts : int;
  er_quarantined : int;
}

let collect_reports t =
  List.filter_map
    (fun ch ->
      match
        Channel.read ch (fun e ->
            let c = Enclave.counters e in
            {
              er_host = Enclave.host e;
              er_placement = Enclave.placement e;
              er_packets = c.Enclave.packets;
              er_invocations = c.Enclave.invocations;
              er_dropped = c.Enclave.dropped;
              er_faults = c.Enclave.faults;
              er_interp_steps = c.Enclave.interp_steps;
              er_actions = Enclave.action_names e;
              er_overhead_pct =
                Eden_enclave.Cost.Accum.overhead_pct (Enclave.cost e) ~api:true ~enclave:true
                  ~interp:true;
              er_generation = Channel.acked_generation ch;
              er_restarts = Enclave.restarts e;
              er_quarantined = c.Enclave.quarantined;
            })
      with
      | Ok r -> Some r
      | Error _ -> None)
    (channels t)

let pp_reports fmt reports =
  Format.fprintf fmt "@[<v>%-6s %-4s %10s %10s %7s %7s %9s %7s %4s %4s  %s@,"
    "host" "plc" "packets" "invocs" "drops" "faults" "steps" "ovh%" "gen" "rst" "actions";
  List.iter
    (fun r ->
      Format.fprintf fmt "%-6d %-4s %10d %10d %7d %7d %9d %6.2f%% %4d %4d  %s@," r.er_host
        (Enclave.placement_to_string r.er_placement)
        r.er_packets r.er_invocations r.er_dropped r.er_faults r.er_interp_steps
        r.er_overhead_pct r.er_generation r.er_restarts
        (String.concat "," r.er_actions))
    reports;
  Format.fprintf fmt "@]"

(* Equal-split quantile thresholds (the PIAS control plane recomputes
   these periodically from the observed flow-size distribution). *)
let pias_thresholds ~cdf ~levels =
  if levels < 2 then invalid_arg "Controller.pias_thresholds: need >= 2 levels";
  let dist = Eden_base.Dist.Empirical_cdf.create cdf in
  Array.init (levels - 1) (fun i ->
      let q = float_of_int (i + 1) /. float_of_int levels in
      Int64.of_float (Eden_base.Dist.Empirical_cdf.quantile dist q))

let wcmp_path_matrix t ~src ~dst ~labels =
  let weighted = Topology.wcmp_weights t.topo ~src ~dst in
  let entries =
    List.filter_map
      (fun (path, w) ->
        match
          List.find_opt (fun (p, _) -> List.equal String.equal p path) labels
        with
        | Some (_, label) -> Some (label, w)
        | None -> None)
      weighted
  in
  let arr = Array.make (2 * List.length entries) 0L in
  List.iteri
    (fun i (label, w) ->
      arr.(2 * i) <- Int64.of_int label;
      arr.((2 * i) + 1) <- Int64.of_float (Float.round (w *. 1000.0)))
    entries;
  arr
