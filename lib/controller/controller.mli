(** The logically centralized Eden controller (paper §3.2, §3.5).

    Holds global visibility (the {!Topology}), computes the slow-timescale
    state that data-plane functions consume (WCMP path matrices, PIAS
    priority thresholds), and programs stages (stage API) and enclaves
    (enclave API) across the fleet.

    Every controller→enclave interaction goes over a fallible
    {!Channel}; transient failures are retried with capped exponential
    backoff and seeded jitter, and every accepted change is recorded in
    a persistent {!Desired} store stamped with the generation counter.
    Enclaves the controller could not reach keep forwarding on their
    last-known policy (the consistency story of §2.2) and are marked
    divergent; the anti-entropy {!reconcile} pass diffs their reported
    configuration against the desired store and replays the delta, so a
    restarted or partitioned-then-healed enclave converges without a
    controller restart. *)

type t

(** Capped exponential backoff: attempt [k] waits
    [min (base * 2^(k-1), max) * jitter] with jitter uniform in
    [\[0.5, 1\]] from the controller's seeded stream.  Time is simulated:
    backoff is accounted in {!retry_stats}, not slept. *)
type retry_policy = {
  rp_max_attempts : int;
  rp_base_backoff : Eden_base.Time.t;
  rp_max_backoff : Eden_base.Time.t;
}

val default_retry : retry_policy
(** 5 attempts, 50 µs base, 5 ms cap. *)

type retry_stats = {
  mutable rs_ops : int;  (** Logical ops sent (one per enclave per push). *)
  mutable rs_attempts : int;  (** Channel sends, including retries. *)
  mutable rs_retries : int;
  mutable rs_giveups : int;  (** Transient failures that exhausted the budget. *)
  mutable rs_backoff : Eden_base.Time.t;  (** Total simulated backoff. *)
}

val create : ?topology:Topology.t -> ?retry:retry_policy -> ?seed:int64 -> unit -> t
val topology : t -> Topology.t

val register_enclave : t -> Eden_enclave.Enclave.t -> unit
(** Wraps the enclave in a fresh fault-free channel.  An enclave
    registered after pushes have happened starts divergent from the
    desired state; run {!reconcile} to converge it. *)

val register_stage : t -> Eden_stage.Stage.t -> unit
val enclaves : t -> Eden_enclave.Enclave.t list
val channels : t -> Channel.t list
val channel_for : t -> Eden_base.Addr.host -> Channel.t option
val stages : t -> Eden_stage.Stage.t list
val find_stage : t -> string -> Eden_stage.Stage.t option

val generation : t -> int
(** Incremented once per accepted desired-state change — never by
    retries or duplicate delivery. *)

val desired : t -> Desired.t
val stats : t -> retry_stats

val divergent_hosts : t -> Eden_base.Addr.host list
(** Enclaves a push or rollback could not fully reach, pending
    reconciliation. *)

(** {2 Enclave programming (broadcast)}

    A push is accepted or refused at the desired-state level: a permanent
    rejection by any enclave abandons the change and undoes it
    failure-tolerantly wherever it landed (a failed undo does not abort
    the remaining undos; the error names the hosts left divergent).
    Transient failures do {e not} abandon the change — the desired state
    commits, the unreachable enclaves are marked divergent, and
    {!reconcile} converges them later.

    Pushes are two-phase with respect to the generation counter: the op
    is broadcast at the current generation, and only once the change has
    committed is a [Commit_generation] sent to the enclaves that applied
    it.  An aborted change therefore never advances any watermark —
    acked generation <= desired generation is an invariant. *)

val install_action_everywhere :
  t -> Eden_enclave.Enclave.install_spec -> (unit, string) result

val remove_action_everywhere : t -> string -> (unit, string) result
(** Idempotent at the enclave, so never rejected: commits the desired
    change and pushes best-effort. *)

val add_table_everywhere : t -> (int, string) result

val add_rule_everywhere :
  t ->
  ?table:int ->
  pattern:Eden_base.Class_name.Pattern.t ->
  action:string ->
  unit ->
  (unit, string) result

val set_global_everywhere : t -> action:string -> string -> int64 -> (unit, string) result

val set_global_array_everywhere :
  t -> action:string -> string -> int64 array -> (unit, string) result
(** Each enclave receives its own copy of the array. *)

(** {2 Reconciliation} *)

(** Desired-vs-actual difference for one enclave. *)
type drift = {
  df_missing_actions : string list;
  df_extra_actions : string list;
  df_missing_rules : Desired.rule list;
  df_extra_rules : (int * int) list;  (** (table, enclave rule id) *)
  df_stale_globals : (string * string) list;  (** (action, name) *)
  df_stale_arrays : (string * string) list;
  df_desired_generation : int;
  df_acked_generation : int;
}

val drift_in_sync : drift -> bool
val pp_drift : Format.formatter -> drift -> unit

type reconcile_outcome =
  | In_sync
  | Repaired of int  (** Ops replayed to converge. *)
  | Unreachable of string  (** Still partitioned; try again later. *)
  | Repair_failed of string

val reconcile_outcome_to_string : reconcile_outcome -> string

val reconcile_enclave : t -> Channel.t -> reconcile_outcome
(** One anti-entropy round: pull the enclave's configuration and acked
    generation, diff against the desired store, replay the delta (extra
    rules and actions removed first, then missing actions in install
    order, then state, then rules), commit the generation, and verify by
    re-pulling.  Convergence is judged by the configuration diff — the
    generation watermark alone proves nothing after a restart wiped it. *)

val reconcile : t -> (Eden_base.Addr.host * reconcile_outcome) list

val converged : t -> bool
(** Every reachable-and-registered enclave's configuration matches the
    desired store (false if any enclave is unreachable). *)

(** {2 Telemetry}

    The controller keeps {!retry_stats} in plain fields and syncs them
    into a registry ([eden_controller_*]: push ops, attempts, retries,
    giveups, backoff, generation and generation lag, divergent-host
    count) at scrape time; reconcile-round and replayed-op counters are
    bumped live.  [scrape] merges the controller's registry with every
    channel's ([eden_channel_*]) into one fleet-level sample list. *)

val telemetry : t -> Eden_telemetry.Registry.t
(** The controller's own registry, synced on every call. *)

val scrape : t -> Eden_telemetry.Registry.sample list

(** {2 Stage programming} *)

val program_stage :
  t ->
  stage:string ->
  ruleset:string ->
  rules:(Eden_stage.Classifier.t * string * string list) list ->
  (unit, string) result
(** Install [(classifier, class, metadata fields)] rules on a registered
    stage. *)

(** {2 Monitoring} *)

type enclave_report = {
  er_host : Eden_base.Addr.host;
  er_placement : Eden_enclave.Enclave.placement;
  er_packets : int;
  er_invocations : int;
  er_dropped : int;
  er_faults : int;
  er_interp_steps : int;
  er_actions : string list;
  er_overhead_pct : float;
      (** Eden components as % of vanilla per-packet cost (Fig. 12's metric). *)
  er_generation : int;  (** The enclave's acked generation watermark. *)
  er_restarts : int;
  er_quarantined : int;  (** Packets that fell through a tripped breaker. *)
}

val collect_reports : t -> enclave_report list
(** Poll every {e reachable} enclave's counters over its channel — the
    monitoring half of the controller loop (switch-style SNMP polling,
    §3.5, applied to hosts).  Partitioned enclaves are absent from the
    result. *)

val pp_reports : Format.formatter -> enclave_report list -> unit

(** {2 Control-plane computations} *)

val pias_thresholds : cdf:(float * float) list -> levels:int -> int64 array
(** Demotion thresholds from a flow-size CDF: the equal-split quantile
    rule (level [i] of [levels] demotes at the [i/levels] quantile).
    Returns [levels - 1] increasing byte counts. *)

val wcmp_path_matrix :
  t -> src:Topology.node -> dst:Topology.node -> labels:(Topology.path * int) list ->
  int64 array
(** Flatten the topology's WCMP weights into the [(label, weight‰) ...]
    encoding the data-plane function reads: element [2i] is the route
    label of path [i], element [2i+1] its weight in parts per 1000.
    [labels] maps each path to the label the switches were programmed
    with; paths without a label are skipped. *)
