module Enclave = Eden_enclave.Enclave
module Table = Eden_enclave.Table
module Pattern = Eden_base.Class_name.Pattern

type rule = {
  dr_id : int;
  dr_table : int;
  dr_pattern : Pattern.t;
  dr_action : string;
}

type t = {
  mutable d_actions : Enclave.install_spec list;  (* install order *)
  mutable d_rules : rule list;  (* oldest first *)
  mutable d_tables : int;  (* table ids 0 .. d_tables - 1 exist *)
  d_globals : (string * string, int64) Hashtbl.t;  (* (action, name) *)
  d_arrays : (string * string, int64 array) Hashtbl.t;
  mutable d_next_rule : int;
  mutable d_generation : int;
}

let create () =
  {
    d_actions = [];
    d_rules = [];
    d_tables = 1;
    d_globals = Hashtbl.create 16;
    d_arrays = Hashtbl.create 16;
    d_next_rule = 0;
    d_generation = 0;
  }

let generation t = t.d_generation
let bump t = t.d_generation <- t.d_generation + 1

let actions t = t.d_actions
let action_names t = List.map (fun s -> s.Enclave.i_name) t.d_actions
let has_action t name = List.exists (fun s -> String.equal s.Enclave.i_name name) t.d_actions
let tables t = t.d_tables
let rules t = t.d_rules

let add_action t spec =
  if has_action t spec.Enclave.i_name then
    Error (Printf.sprintf "action %S is already in the desired state" spec.Enclave.i_name)
  else begin
    t.d_actions <- t.d_actions @ [ spec ];
    Ok ()
  end

(* Dropping an action drops everything hanging off it, mirroring the
   enclave's own no-dangling-references rule. *)
let remove_action t name =
  if not (has_action t name) then false
  else begin
    t.d_actions <- List.filter (fun s -> not (String.equal s.Enclave.i_name name)) t.d_actions;
    t.d_rules <- List.filter (fun r -> not (String.equal r.dr_action name)) t.d_rules;
    let drop tbl =
      let keys =
        Hashtbl.fold (fun (a, k) _ acc -> if String.equal a name then (a, k) :: acc else acc) tbl []
      in
      List.iter (Hashtbl.remove tbl) keys
    in
    drop t.d_globals;
    drop t.d_arrays;
    true
  end

let add_table t =
  let id = t.d_tables in
  t.d_tables <- id + 1;
  id

let add_rule t ~table ~pattern ~action =
  if not (has_action t action) then
    Error (Printf.sprintf "action %S is not in the desired state" action)
  else if table < 0 || table >= t.d_tables then
    Error (Printf.sprintf "table %d is not in the desired state" table)
  else begin
    let r = { dr_id = t.d_next_rule; dr_table = table; dr_pattern = pattern; dr_action = action } in
    t.d_next_rule <- r.dr_id + 1;
    t.d_rules <- t.d_rules @ [ r ];
    Ok r
  end

let remove_rule t id =
  let before = List.length t.d_rules in
  t.d_rules <- List.filter (fun r -> r.dr_id <> id) t.d_rules;
  List.length t.d_rules < before

let set_global t ~action name v =
  if not (has_action t action) then
    Error (Printf.sprintf "action %S is not in the desired state" action)
  else begin
    Hashtbl.replace t.d_globals (action, name) v;
    Ok ()
  end

let set_global_array t ~action name arr =
  if not (has_action t action) then
    Error (Printf.sprintf "action %S is not in the desired state" action)
  else begin
    Hashtbl.replace t.d_arrays (action, name) (Array.copy arr);
    Ok ()
  end

let global t ~action name = Hashtbl.find_opt t.d_globals (action, name)
let global_array t ~action name = Hashtbl.find_opt t.d_arrays (action, name)

let bindings_of tbl action =
  Hashtbl.fold (fun (a, k) v acc -> if String.equal a action then (k, v) :: acc else acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let globals_of t action = bindings_of t.d_globals action
let arrays_of t action = bindings_of t.d_arrays action

(* The configuration an enclave converged to this desired state would
   report — comparable with [Enclave.config_equal] against a pulled
   snapshot, up to state keys the desired store does not own (functions
   installed with initial state write their own globals at run time). *)
let to_snapshot t =
  {
    Enclave.sn_actions = t.d_actions;
    sn_globals = List.map (fun s -> (s.Enclave.i_name, globals_of t s.Enclave.i_name)) t.d_actions;
    sn_arrays = List.map (fun s -> (s.Enclave.i_name, arrays_of t s.Enclave.i_name)) t.d_actions;
    sn_rules =
      List.init t.d_tables (fun id ->
          ( id,
            List.filter_map
              (fun r ->
                if r.dr_table = id then
                  Some { Table.rule_id = r.dr_id; pattern = r.dr_pattern; action = r.dr_action }
                else None)
              t.d_rules ));
  }
