(** The controller's persistent desired-state store.

    Production SDN controllers do not treat a push as the truth — they
    keep the intended switch configuration and reconcile devices against
    it.  This store holds, per fleet (every enclave is programmed
    identically by the broadcast API), the intended actions (in install
    order), tables, rules and controller-owned state bindings, stamped
    with the generation counter.  The anti-entropy pass in
    {!Controller.reconcile} diffs an enclave's reported configuration
    against this and replays the delta.

    The store only covers controller-owned keys: globals an action
    function writes at run time (counters, caches) are expected to
    diverge and are not reconciled. *)

type rule = {
  dr_id : int;  (** Desired-store id; enclave rule ids are per-enclave. *)
  dr_table : int;
  dr_pattern : Eden_base.Class_name.Pattern.t;
  dr_action : string;
}

type t

val create : unit -> t

val generation : t -> int
val bump : t -> unit

val actions : t -> Eden_enclave.Enclave.install_spec list
(** In install order. *)

val action_names : t -> string list
val has_action : t -> string -> bool

val add_action : t -> Eden_enclave.Enclave.install_spec -> (unit, string) result
(** Fails on a duplicate name. *)

val remove_action : t -> string -> bool
(** Also drops the action's rules and state bindings. *)

val tables : t -> int
(** Number of tables; ids [0 .. tables - 1]. *)

val add_table : t -> int

val rules : t -> rule list
(** Oldest first. *)

val add_rule :
  t ->
  table:int ->
  pattern:Eden_base.Class_name.Pattern.t ->
  action:string ->
  (rule, string) result

val remove_rule : t -> int -> bool

val set_global : t -> action:string -> string -> int64 -> (unit, string) result
val set_global_array : t -> action:string -> string -> int64 array -> (unit, string) result
val global : t -> action:string -> string -> int64 option
val global_array : t -> action:string -> string -> int64 array option

val globals_of : t -> string -> (string * int64) list
(** Controller-owned scalars of one action, sorted by name. *)

val arrays_of : t -> string -> (string * int64 array) list

val to_snapshot : t -> Eden_enclave.Enclave.snapshot
(** The configuration a converged enclave would report, for
    desired-vs-actual comparison. *)
