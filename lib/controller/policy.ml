module Stage = Eden_stage.Stage
module Classifier = Eden_stage.Classifier
open Eden_functions

type engine = Interpreted | Compiled | Native

let variant = function
  | Interpreted -> `Interpreted
  | Compiled -> `Compiled
  | Native -> `Native

let ( let* ) = Result.bind

(* Deploy one function through the controller's desired-state broadcasts
   (install, bind state, add the matching rule).  If a later step fails
   the action is withdrawn from the desired state so a failed deployment
   does not leave a half-policy behind; enclaves the withdrawal could not
   reach are converged by reconciliation. *)
let deploy ctl ~spec ~pattern ~arrays =
  let name = spec.Eden_enclave.Enclave.i_name in
  let* () = Controller.install_action_everywhere ctl spec in
  let cleanup_on e =
    match e with
    | Ok _ as ok -> ok
    | Error _ as err ->
      ignore (Controller.remove_action_everywhere ctl name);
      err
  in
  let* () =
    cleanup_on
      (List.fold_left
         (fun acc (key, value) ->
           let* () = acc in
           Controller.set_global_array_everywhere ctl ~action:name key value)
         (Ok ()) arrays)
  in
  cleanup_on (Controller.add_rule_everywhere ctl ~pattern ~action:name ())

let flow_scheduling ctl ~scheme ?(engine = Interpreted) ?(levels = 3) ~cdf () =
  let thresholds = Controller.pias_thresholds ~cdf ~levels in
  if Array.length thresholds > 7 then Error "flow_scheduling: at most 7 thresholds"
  else
    match scheme with
    | `Pias ->
      deploy ctl
        ~spec:(Pias.spec ~variant:(variant engine) ())
        ~pattern:Pias.rule_pattern
        ~arrays:[ ("Thresholds", thresholds) ]
    | `Sff ->
      deploy ctl
        ~spec:(Sff.spec ~variant:(variant engine) ())
        ~pattern:Sff.rule_pattern
        ~arrays:[ ("Thresholds", thresholds) ]

let update_flow_scheduling_thresholds ctl ~scheme ?(levels = 3) ~cdf () =
  let thresholds = Controller.pias_thresholds ~cdf ~levels in
  let action = match scheme with `Pias -> "pias" | `Sff -> "sff" in
  Controller.set_global_array_everywhere ctl ~action "Thresholds" thresholds

let weighted_load_balancing ctl ?(engine = Interpreted) ?(message_level = false) ~src ~dst
    ~labels () =
  let matrix = Controller.wcmp_path_matrix ctl ~src ~dst ~labels in
  if Array.length matrix < 2 then
    Error "weighted_load_balancing: no labelled paths between src and dst"
  else begin
    let v =
      match (engine, message_level) with
      | Native, _ -> `Native
      | Interpreted, false -> `Packet
      | Interpreted, true -> `Message
      | Compiled, false -> `Compiled
      | Compiled, true -> `Compiled_message
    in
    deploy ctl ~spec:(Wcmp.spec ~variant:v ()) ~pattern:Wcmp.rule_pattern
      ~arrays:[ ("Paths", matrix) ]
  end

let tenant_qos ctl ?(engine = Interpreted) ~queue_map () =
  let rec program_storage_stages = function
    | [] -> Ok ()
    | stage :: rest ->
      if String.equal (Stage.name stage) "storage" then begin
        let metadata_fields = [ "operation"; "msg_size"; "tenant" ] in
        let add op =
          Stage.Api.create_stage_rule stage ~ruleset:"ops"
            ~classifier:[ ("operation", Classifier.eq_str op) ]
            ~class_name:op ~metadata_fields
        in
        match (add "READ", add "WRITE") with
        | Ok _, Ok _ -> program_storage_stages rest
        | Error msg, _ | _, Error msg -> Error msg
      end
      else program_storage_stages rest
  in
  let* () =
    deploy ctl
      ~spec:(Pulsar.spec ~variant:(variant engine) ())
      ~pattern:Pulsar.rule_pattern
      ~arrays:[ ("QueueMap", Array.map Int64.of_int queue_map) ]
  in
  program_storage_stages (Controller.stages ctl)
