module Enclave = Eden_enclave.Enclave
module Stage = Eden_stage.Stage
module Classifier = Eden_stage.Classifier
open Eden_functions

type engine = Interpreted | Compiled | Native

let variant = function
  | Interpreted -> `Interpreted
  | Compiled -> `Compiled
  | Native -> `Native

(* Apply a per-enclave install to the whole fleet; on any failure remove
   the action from the enclaves already programmed. *)
let fleet_install ctl ~name install =
  let rec go done_ = function
    | [] -> Ok ()
    | e :: rest -> (
      match install e with
      | Ok () -> go (e :: done_) rest
      | Error msg ->
        List.iter (fun e -> ignore (Enclave.remove_action e name)) done_;
        Error msg)
  in
  go [] (Controller.enclaves ctl)

let flow_scheduling ctl ~scheme ?(engine = Interpreted) ?(levels = 3) ~cdf () =
  let thresholds = Controller.pias_thresholds ~cdf ~levels in
  match scheme with
  | `Pias ->
    fleet_install ctl ~name:"pias" (fun e ->
        Pias.install ~variant:(variant engine) e ~thresholds)
  | `Sff ->
    fleet_install ctl ~name:"sff" (fun e ->
        Sff.install ~variant:(variant engine) e ~thresholds)

let update_flow_scheduling_thresholds ctl ~scheme ?(levels = 3) ~cdf () =
  let thresholds = Controller.pias_thresholds ~cdf ~levels in
  let action = match scheme with `Pias -> "pias" | `Sff -> "sff" in
  Controller.set_global_array_everywhere ctl ~action "Thresholds" thresholds

let weighted_load_balancing ctl ?(engine = Interpreted) ?(message_level = false) ~src ~dst
    ~labels () =
  let matrix = Controller.wcmp_path_matrix ctl ~src ~dst ~labels in
  if Array.length matrix < 2 then
    Error "weighted_load_balancing: no labelled paths between src and dst"
  else begin
    let v =
      match (engine, message_level) with
      | Native, _ -> `Native
      | Interpreted, false -> `Packet
      | Interpreted, true -> `Message
      | Compiled, false -> `Compiled
      | Compiled, true -> `Compiled_message
    in
    fleet_install ctl ~name:"wcmp" (fun e -> Wcmp.install ~variant:v e ~matrix)
  end

let tenant_qos ctl ?(engine = Interpreted) ~queue_map () =
  let rec program_storage_stages = function
    | [] -> Ok ()
    | stage :: rest ->
      if String.equal (Stage.name stage) "storage" then begin
        let metadata_fields = [ "operation"; "msg_size"; "tenant" ] in
        let add op =
          Stage.Api.create_stage_rule stage ~ruleset:"ops"
            ~classifier:[ ("operation", Classifier.eq_str op) ]
            ~class_name:op ~metadata_fields
        in
        match (add "READ", add "WRITE") with
        | Ok _, Ok _ -> program_storage_stages rest
        | Error msg, _ | _, Error msg -> Error msg
      end
      else program_storage_stages rest
  in
  match
    fleet_install ctl ~name:"pulsar" (fun e ->
        Pulsar.install ~variant:(variant engine) e ~queue_map)
  with
  | Error _ as e -> e
  | Ok () -> program_storage_stages (Controller.stages ctl)
