(** Network-function policies: the controller-side bundles.

    A network function is conceptually a control-plane half plus a
    data-plane half (paper §3.2).  Each policy here performs the whole
    controller workflow in one call: compute the global state (thresholds,
    path matrices, queue maps), install the data-plane function on every
    registered enclave, and program stages where the function needs
    application classification.  Deployment goes through the
    controller's desired-state broadcasts: a {e rejected} install is
    withdrawn everywhere it landed (no half-policy survives), while
    enclaves that were merely unreachable converge later via
    [Controller.reconcile]. *)

type engine = Interpreted | Compiled | Native

val flow_scheduling :
  Controller.t ->
  scheme:[ `Pias | `Sff ] ->
  ?engine:engine ->
  ?levels:int ->
  cdf:(float * float) list ->
  unit ->
  (unit, string) result
(** Compute PIAS-style thresholds from the flow-size CDF ([levels]
    priorities, default 3) and install the scheduler on every enclave. *)

val weighted_load_balancing :
  Controller.t ->
  ?engine:engine ->
  ?message_level:bool ->
  src:Topology.node ->
  dst:Topology.node ->
  labels:(Topology.path * int) list ->
  unit ->
  (unit, string) result
(** Derive WCMP weights from the controller's topology and install the
    balancing function (per-packet by default; [message_level] for the
    paper's messageWCMP). *)

val tenant_qos :
  Controller.t ->
  ?engine:engine ->
  queue_map:int array ->
  unit ->
  (unit, string) result
(** Install Pulsar's rate control everywhere and program every registered
    storage stage with READ/WRITE classification rules. *)

val update_flow_scheduling_thresholds :
  Controller.t ->
  scheme:[ `Pias | `Sff ] ->
  ?levels:int ->
  cdf:(float * float) list ->
  unit ->
  (unit, string) result
(** The periodic control-loop step: recompute thresholds from a fresh
    flow-size distribution and push them to the running data plane
    without reinstalling anything. *)
