type model = {
  vanilla_ns : float;
  api_ns : float;
  classify_ns : float;
  marshal_ns : float;
  per_step_ns : float;
  compiled_step_ns : float;
  native_ns : float;
  budget_ns : float;
}

(* Rough calibration against the paper's setting: a vanilla stack spends on
   the order of a microsecond of CPU per packet end to end; Eden's reported
   total overhead at 10 Gbps line rate is under ~10% (Fig. 12), split
   across API, enclave and interpreter.  The bench harness re-measures
   [per_step_ns] with Bechamel on the actual interpreter. *)
let os_model =
  {
    vanilla_ns = 2000.0;
    api_ns = 40.0;
    classify_ns = 30.0;
    marshal_ns = 20.0;
    per_step_ns = 2.0;
    compiled_step_ns = 0.5;
    native_ns = 12.0;
    budget_ns = 250_000.0;
  }

(* NFP-style NIC cores are individually slower but plentiful; per-packet
   costs are higher while the host CPU is relieved entirely. *)
let nic_model =
  {
    vanilla_ns = 2000.0;
    api_ns = 40.0;
    classify_ns = 90.0;
    marshal_ns = 60.0;
    per_step_ns = 6.0;
    compiled_step_ns = 1.5;
    native_ns = 35.0;
    budget_ns = 700_000.0;
  }

let admission_ns m ~steps =
  m.classify_ns +. m.marshal_ns +. (float_of_int steps *. m.per_step_ns)

module Accum = struct
  type t = {
    mutable vanilla : float;
    mutable api : float;
    mutable classify : float;
    mutable marshal : float;
    mutable interp : float;
    mutable native : float;
    mutable packets : int;
  }

  let create () =
    { vanilla = 0.0; api = 0.0; classify = 0.0; marshal = 0.0; interp = 0.0;
      native = 0.0; packets = 0 }

  let add_vanilla t m =
    t.vanilla <- t.vanilla +. m.vanilla_ns;
    t.packets <- t.packets + 1

  let add_api t m = t.api <- t.api +. m.api_ns
  let add_classify t m = t.classify <- t.classify +. m.classify_ns
  let add_marshal t m = t.marshal <- t.marshal +. m.marshal_ns
  let add_interp t m ~steps = t.interp <- t.interp +. (float_of_int steps *. m.per_step_ns)

  let add_compiled t m ~steps =
    t.interp <- t.interp +. (float_of_int steps *. m.compiled_step_ns)
  let add_native t m = t.native <- t.native +. m.native_ns
  let packets t = t.packets

  let overhead_total_ns t = t.api +. t.classify +. t.marshal +. t.interp +. t.native

  let vanilla_ns t = t.vanilla
  let api_ns t = t.api
  let enclave_ns t = t.classify +. t.marshal
  let interp_ns t = t.interp
  let native_ns t = t.native

  let overhead_pct t ~api ~enclave ~interp =
    if t.vanilla <= 0.0 then 0.0
    else begin
      let sel = ref 0.0 in
      if api then sel := !sel +. t.api;
      if enclave then sel := !sel +. t.classify +. t.marshal;
      if interp then sel := !sel +. t.interp;
      !sel /. t.vanilla *. 100.0
    end

  let merge a b =
    {
      vanilla = a.vanilla +. b.vanilla;
      api = a.api +. b.api;
      classify = a.classify +. b.classify;
      marshal = a.marshal +. b.marshal;
      interp = a.interp +. b.interp;
      native = a.native +. b.native;
      packets = a.packets + b.packets;
    }
end
