(** Per-packet CPU cost accounting (paper §5.4, Fig. 12).

    The paper breaks Eden's overhead over a vanilla stack into three
    parts: the API (passing metadata into the enclave), the enclave
    itself (classification, table lookup, state marshalling), and the
    interpreter.  The simulator charges each packet according to this
    model so Fig. 12 can be regenerated; the bench harness also measures
    the real interpreter's wall-clock cost on this machine to calibrate
    [per_step_ns]. *)

type model = {
  vanilla_ns : float;  (** Base per-packet cost of the plain stack. *)
  api_ns : float;  (** Metadata handoff (only charged when metadata is present). *)
  classify_ns : float;  (** Enclave classification + table lookup. *)
  marshal_ns : float;  (** Environment copy-in / copy-out, per invocation. *)
  per_step_ns : float;  (** Interpreter cost per bytecode step. *)
  compiled_step_ns : float;
      (** Cost per retired step under the closure-compiled engine —
          dispatch is gone, so only the operation itself remains. *)
  native_ns : float;  (** Hard-coded (native) action function, per invocation. *)
  budget_ns : float;
      (** Admission-control ceiling: worst-case Eden-added nanoseconds a
          single invocation may cost on this enclave.  Sized so a program
          running to the default [step_limit] still fits; tighter budgets
          come from {!Enclave.set_budget_ns}. *)
}

val os_model : model
(** Calibrated for the software (OS driver) enclave. *)

val nic_model : model
(** The programmable-NIC enclave: slower single-thread cores, but the
    model only matters relatively. *)

val admission_ns : model -> steps:int -> float
(** Worst-case Eden-added cost of one invocation retiring at most
    [steps] instructions: classification + marshalling + interpretation.
    Compared against [budget_ns] at install time. *)

(** Accumulates busy-time per component over a run. *)
module Accum : sig
  type t

  val create : unit -> t
  val add_vanilla : t -> model -> unit
  val add_api : t -> model -> unit
  val add_classify : t -> model -> unit
  val add_marshal : t -> model -> unit
  val add_interp : t -> model -> steps:int -> unit

  val add_compiled : t -> model -> steps:int -> unit
  (** Charged into the interpreter bucket at [compiled_step_ns]. *)

  val add_native : t -> model -> unit

  val packets : t -> int
  (** Number of vanilla charges, i.e. packets seen. *)

  val overhead_total_ns : t -> float
  (** Total Eden-added busy time (everything except the vanilla base). *)

  val vanilla_ns : t -> float
  val api_ns : t -> float
  val enclave_ns : t -> float
  (** classify + marshal. *)

  val interp_ns : t -> float
  val native_ns : t -> float

  val overhead_pct : t -> api:bool -> enclave:bool -> interp:bool -> float
  (** Selected components' busy time as a percentage of the vanilla base
      (the quantity Fig. 12 plots). *)

  val merge : t -> t -> t
end
