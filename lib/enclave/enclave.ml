module Addr = Eden_base.Addr
module Packet = Eden_base.Packet
module Metadata = Eden_base.Metadata
module Class_name = Eden_base.Class_name
module Time = Eden_base.Time
module Rng = Eden_base.Rng
module P = Eden_bytecode.Program
module Interp = Eden_bytecode.Interp
module Verifier = Eden_bytecode.Verifier
module Stage = Eden_stage.Stage
module Builtin = Eden_stage.Builtin

type placement = Os | Nic

let placement_to_string = function Os -> "os" | Nic -> "nic"

type decision = Forward of { queue : int option; charge : int } | Dropped of string

(* Mutable per-invocation outputs; applied to the packet after a
   successful run (and only then). *)
type outputs = {
  mutable o_priority : int;
  mutable o_path : int;
  mutable o_drop : bool;
  mutable o_queue : int;
  mutable o_charge : int;
  mutable o_goto : int;
}

let fresh_outputs (pkt : Packet.t) =
  {
    o_priority = pkt.Packet.priority;
    o_path = (match pkt.Packet.route_label with Some l -> l | None -> -1);
    o_drop = false;
    o_queue = -1;
    o_charge = -1;
    o_goto = -1;
  }

module Native_ctx = struct
  type t = {
    nc_packet : Packet.t;
    nc_metadata : Metadata.t;
    nc_msg_id : int64;
    nc_now : Time.t;
    nc_rng : Rng.t;
    nc_state : State.t;
    nc_out : outputs;
  }

  let packet t = t.nc_packet
  let metadata t = t.nc_metadata
  let msg_id t = t.nc_msg_id
  let now t = t.nc_now
  let rng t = t.nc_rng
  let msg_get t field ~default =
    State.msg_get t.nc_state ~msg:t.nc_msg_id ~field ~default ~now:t.nc_now
  let msg_set t field v = State.msg_set t.nc_state ~msg:t.nc_msg_id ~field v ~now:t.nc_now
  let global_get t name = State.global_get t.nc_state name
  let global_set t name v = State.global_set t.nc_state name v
  let global_array t name = State.global_array t.nc_state name
  let set_priority t p = t.nc_out.o_priority <- p
  let set_path t p = t.nc_out.o_path <- p
  let set_drop t = t.nc_out.o_drop <- true
  let set_queue t q = t.nc_out.o_queue <- q
  let set_charge t c = t.nc_out.o_charge <- c
end

type impl = Interpreted of P.t | Native of (Native_ctx.t -> unit)

type msg_field_source =
  | Stateful of int64
  | Metadata_int of string
  | Metadata_flag of string * string

type install_spec = {
  i_name : string;
  i_impl : impl;
  i_msg_sources : (string * msg_field_source) list;
}

type counters = {
  mutable packets : int;
  mutable dropped : int;
  mutable invocations : int;
  mutable native_invocations : int;
  mutable faults : int;
  mutable interp_steps : int;
}

type fault_record = {
  fr_action : string;
  fr_fault : Interp.fault;
  fr_time : Time.t;
}

type installed = {
  a_name : string;
  a_impl : impl;
  a_state : State.t;
  a_msg_sources : (string, msg_field_source) Hashtbl.t;
  a_concurrency : [ `Parallel | `Per_message | `Serial ];
  a_scratch : Interp.scratch option;  (* for interpreted actions *)
}

type t = {
  e_host : Addr.host;
  e_placement : placement;
  e_rng : Rng.t;
  e_flow_stage : Stage.t;
  e_flow_ids : int64 Addr.Flow_table.t;
  mutable e_next_flow_id : int64;
  e_actions : (string, installed) Hashtbl.t;
  e_tables : (int, Table.t) Hashtbl.t;
  mutable e_next_table : int;
  e_counters : counters;
  mutable e_faults : fault_record list;
  e_cost : Cost.Accum.t;
  e_cost_model : Cost.model;
  mutable e_budget_ns : float;
  mutable e_enforce : bool;
  mutable e_last_cost_ns : float;
}

(* The enclave's first flow id; far above any stage-assigned message id so
   the two spaces cannot collide. *)
let flow_id_base = Int64.shift_left 1L 40

let create ?(placement = Os) ?(seed = 0xEDE1L) ~host () =
  let t =
    {
      e_host = host;
      e_placement = placement;
      e_rng = Rng.create (Int64.add seed (Int64.of_int host));
      e_flow_stage = Builtin.flow ();
      e_flow_ids = Addr.Flow_table.create 64;
      e_next_flow_id = flow_id_base;
      e_actions = Hashtbl.create 8;
      e_tables = Hashtbl.create 4;
      e_next_table = 1;
      e_counters =
        {
          packets = 0;
          dropped = 0;
          invocations = 0;
          native_invocations = 0;
          faults = 0;
          interp_steps = 0;
        };
      e_faults = [];
      e_cost = Cost.Accum.create ();
      e_cost_model = (match placement with Os -> Cost.os_model | Nic -> Cost.nic_model);
      e_budget_ns =
        (match placement with Os -> Cost.os_model | Nic -> Cost.nic_model).Cost.budget_ns;
      e_enforce = true;
      e_last_cost_ns = 0.0;
    }
  in
  Hashtbl.replace t.e_tables 0 (Table.create ~id:0);
  (* The enclave classifies at TCP-flow granularity out of the box (paper
     Table 2, last row): every packet belongs to [enclave.flows.ALL] and
     each transport connection is a message.  The controller may remove
     or refine this rule-set through the stage API. *)
  (match
     Stage.Api.create_stage_rule t.e_flow_stage ~ruleset:"flows" ~classifier:[]
       ~class_name:"ALL" ~metadata_fields:[]
   with
  | Ok _ -> ()
  | Error msg -> invalid_arg ("Enclave.create: " ^ msg));
  t

let host t = t.e_host
let placement t = t.e_placement
let flow_stage t = t.e_flow_stage
let set_enforce t b = t.e_enforce <- b
let counters t = t.e_counters
let faults t = t.e_faults
let cost t = t.e_cost
let cost_model t = t.e_cost_model
let last_process_cost_ns t = t.e_last_cost_ns
let budget_ns t = t.e_budget_ns

let set_budget_ns t ns =
  if ns <= 0.0 then invalid_arg "Enclave.set_budget_ns: budget must be positive";
  t.e_budget_ns <- ns

(* ------------------------------------------------------------------ *)
(* Packet-field marshalling *)

let proto_code = function Addr.Tcp -> 6L | Addr.Udp -> 17L

let packet_field_get (pkt : Packet.t) name =
  match name with
  | "Size" -> Some (Int64.of_int (Packet.wire_size pkt))
  | "PayloadSize" -> Some (Int64.of_int pkt.Packet.payload)
  | "Priority" -> Some (Int64.of_int pkt.Packet.priority)
  | "Path" ->
    Some (match pkt.Packet.route_label with Some l -> Int64.of_int l | None -> -1L)
  | "SrcHost" -> Some (Int64.of_int pkt.Packet.flow.Addr.src.Addr.host)
  | "SrcPort" -> Some (Int64.of_int pkt.Packet.flow.Addr.src.Addr.port)
  | "DstHost" -> Some (Int64.of_int pkt.Packet.flow.Addr.dst.Addr.host)
  | "DstPort" -> Some (Int64.of_int pkt.Packet.flow.Addr.dst.Addr.port)
  | "Proto" -> Some (proto_code pkt.Packet.flow.Addr.proto)
  | "IsData" -> Some (if Packet.is_data pkt then 1L else 0L)
  | "Drop" -> Some 0L
  | "Queue" -> Some (-1L)
  | "Charge" -> Some (-1L)
  | "GotoTable" -> Some (-1L)
  | _ -> None

let packet_field_writable = function
  | "Priority" | "Path" | "Drop" | "Queue" | "Charge" | "GotoTable" -> true
  | _ -> false

let apply_packet_field (out : outputs) name v =
  match name with
  | "Priority" -> out.o_priority <- max 0 (min 7 (Int64.to_int v))
  | "Path" -> out.o_path <- Int64.to_int v
  | "Drop" -> if not (Int64.equal v 0L) then out.o_drop <- true
  | "Queue" -> out.o_queue <- Int64.to_int v
  | "Charge" -> out.o_charge <- Int64.to_int v
  | "GotoTable" -> out.o_goto <- Int64.to_int v
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Enclave API *)

let concurrency_of_program (p : P.t) =
  if P.writes_entity p P.Global then `Serial
  else if P.writes_entity p P.Message then `Per_message
  else `Parallel

type install_error =
  | Already_installed of string
  | Rejected_bytecode of Verifier.error
  | Over_budget of { est_ns : float; budget_ns : float; steps : int }
  | Bad_contract of string list

let install_error_to_string = function
  | Already_installed name -> Printf.sprintf "action %S already installed" name
  | Rejected_bytecode e -> Verifier.error_to_string e
  | Over_budget { est_ns; budget_ns; steps } ->
    Printf.sprintf
      "worst-case cost %.0f ns (%d steps) exceeds the enclave budget of %.0f ns" est_ns
      steps budget_ns
  | Bad_contract problems -> String.concat "; " problems

let pp_install_error fmt e = Format.pp_print_string fmt (install_error_to_string e)

(* Admission control (§3.4 trust boundary): the worst case an invocation
   can cost is bounded by the static longest path when the control-flow
   graph is acyclic, and by [step_limit] always — the interpreter faults
   the invocation at that many steps regardless. *)
let admission_steps (p : P.t) =
  match Eden_bytecode.Wcet.worst_case_steps p with
  | Some n -> min n p.P.step_limit
  | None -> p.P.step_limit

let install_action_full t spec =
  if Hashtbl.mem t.e_actions spec.i_name then Error (Already_installed spec.i_name)
  else begin
    let sources = Hashtbl.create 8 in
    List.iter (fun (name, src) -> Hashtbl.replace sources name src) spec.i_msg_sources;
    let validate () =
      match spec.i_impl with
      | Native _ -> Ok `Serial
      | Interpreted p -> (
        match Verifier.verify p with
        | Error e -> Error (Rejected_bytecode e)
        | Ok () ->
          let dummy =
            Packet.make ~id:0L
              ~flow:
                (Addr.five_tuple ~src:(Addr.endpoint 0 0) ~dst:(Addr.endpoint 0 0)
                   ~proto:Addr.Tcp)
              ~kind:Packet.Data ()
          in
          let problems = ref [] in
          Array.iter
            (fun (s : P.scalar_slot) ->
              match s.P.s_entity with
              | P.Packet ->
                if packet_field_get dummy s.P.s_name = None then
                  problems := Printf.sprintf "unknown packet field %S" s.P.s_name :: !problems
                else if s.P.s_access = P.Read_write && not (packet_field_writable s.P.s_name)
                then
                  problems :=
                    Printf.sprintf "packet field %S is not writable" s.P.s_name :: !problems
              | P.Message -> (
                match Hashtbl.find_opt sources s.P.s_name with
                | Some (Metadata_int _ | Metadata_flag _) when s.P.s_access = P.Read_write ->
                  problems :=
                    Printf.sprintf "metadata-sourced message field %S cannot be writable"
                      s.P.s_name
                    :: !problems
                | Some _ | None -> ())
              | P.Global -> ())
            p.P.scalar_slots;
          Array.iter
            (fun (a : P.array_slot) ->
              match a.P.a_entity with
              | P.Global -> ()
              | P.Packet | P.Message ->
                problems :=
                  Printf.sprintf "array %S: only global arrays are supported" a.P.a_name
                  :: !problems)
            p.P.array_slots;
          match !problems with
          | _ :: _ as ps -> Error (Bad_contract ps)
          | [] ->
            let steps = admission_steps p in
            let est_ns = Cost.admission_ns t.e_cost_model ~steps in
            if est_ns > t.e_budget_ns then
              Error (Over_budget { est_ns; budget_ns = t.e_budget_ns; steps })
            else Ok (concurrency_of_program p))
    in
    match validate () with
    | Error _ as e -> e
    | Ok concurrency ->
      Hashtbl.replace t.e_actions spec.i_name
        {
          a_name = spec.i_name;
          a_impl = spec.i_impl;
          a_state = State.create ();
          a_msg_sources = sources;
          a_concurrency = concurrency;
          a_scratch =
            (match spec.i_impl with
            | Interpreted p -> Some (Interp.make_scratch p)
            | Native _ -> None);
        };
      Ok ()
  end

let install_action t spec =
  Result.map_error install_error_to_string (install_action_full t spec)

let remove_action t name =
  let existed = Hashtbl.mem t.e_actions name in
  Hashtbl.remove t.e_actions name;
  existed

let action_names t = Hashtbl.fold (fun k _ acc -> k :: acc) t.e_actions [] |> List.sort compare

let concurrency_of t name =
  Option.map (fun a -> a.a_concurrency) (Hashtbl.find_opt t.e_actions name)

let add_table t =
  let id = t.e_next_table in
  t.e_next_table <- id + 1;
  Hashtbl.replace t.e_tables id (Table.create ~id);
  id

let add_table_rule t ?(table = 0) ~pattern ~action () =
  match Hashtbl.find_opt t.e_tables table with
  | None -> Error (Printf.sprintf "no table %d" table)
  | Some tbl ->
    if not (Hashtbl.mem t.e_actions action) then
      Error (Printf.sprintf "action %S is not installed" action)
    else begin
      let rule = Table.add_rule tbl ~pattern ~action in
      Ok rule.Table.rule_id
    end

let remove_table_rule t ?(table = 0) rule_id =
  match Hashtbl.find_opt t.e_tables table with
  | None -> false
  | Some tbl -> Table.remove_rule tbl rule_id

let tables t =
  Hashtbl.fold (fun _ tbl acc -> tbl :: acc) t.e_tables []
  |> List.sort (fun a b -> compare (Table.id a) (Table.id b))

let with_action t action f =
  match Hashtbl.find_opt t.e_actions action with
  | None -> Error (Printf.sprintf "action %S is not installed" action)
  | Some a -> Ok (f a)

let set_global t ~action name v = with_action t action (fun a -> State.global_set a.a_state name v)

let get_global t ~action name =
  match Hashtbl.find_opt t.e_actions action with
  | None -> None
  | Some a -> Some (State.global_get a.a_state name)

let set_global_array t ~action name arr =
  with_action t action (fun a -> State.global_array_set a.a_state name arr)

let get_global_array t ~action name =
  match Hashtbl.find_opt t.e_actions action with
  | None -> None
  | Some a -> Some (State.global_array a.a_state name)

(* ------------------------------------------------------------------ *)
(* Data path *)

let flow_msg_id t flow =
  match Addr.Flow_table.find_opt t.e_flow_ids flow with
  | Some id -> id
  | None ->
    let id = t.e_next_flow_id in
    t.e_next_flow_id <- Int64.add id 1L;
    Addr.Flow_table.replace t.e_flow_ids flow id;
    id

let record_fault t action fault now =
  t.e_counters.faults <- t.e_counters.faults + 1;
  let record = { fr_action = action; fr_fault = fault; fr_time = now } in
  let keep = 99 in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: rest -> x :: take (n - 1) rest
  in
  t.e_faults <- record :: take keep t.e_faults

let msg_source a name =
  match Hashtbl.find_opt a.a_msg_sources name with Some s -> s | None -> Stateful 0L

let msg_scalar_in a md msg_id name ~now =
  match msg_source a name with
  | Stateful default -> State.msg_get a.a_state ~msg:msg_id ~field:name ~default ~now
  | Metadata_int field -> Option.value ~default:0L (Metadata.find_int field md)
  | Metadata_flag (field, expected) -> (
    match Metadata.find_str field md with
    | Some v when String.equal v expected -> 1L
    | Some _ | None -> 0L)

(* Run one interpreted action over a packet: copy-in, execute, copy-out. *)
let run_interpreted t a (p : P.t) pkt md msg_id out ~now =
  let scalars =
    Array.map
      (fun (s : P.scalar_slot) ->
        match s.P.s_entity with
        | P.Packet -> Option.value ~default:0L (packet_field_get pkt s.P.s_name)
        | P.Message -> msg_scalar_in a md msg_id s.P.s_name ~now
        | P.Global -> State.global_get a.a_state s.P.s_name)
      p.P.scalar_slots
  in
  let arrays =
    Array.map
      (fun (slot : P.array_slot) ->
        let live = State.global_array a.a_state slot.P.a_name in
        (* Writers get a consistent copy; read-only slots may alias (the
           verifier guarantees the program cannot store through them). *)
        if slot.P.a_access = P.Read_write then Array.copy live else live)
      p.P.array_slots
  in
  (* Bounds proofs behind unchecked opcodes rely on [a_min_len]; if the
     backing state has not been sized yet (global arrays default to
     empty), refuse this invocation fail-open instead of running with a
     broken premise. *)
  let undersized = ref None in
  Array.iteri
    (fun i (slot : P.array_slot) ->
      if !undersized = None && Array.length arrays.(i) < slot.P.a_min_len then
        undersized :=
          Some
            (Interp.Undersized_env_array
               { slot = i; length = Array.length arrays.(i); min_len = slot.P.a_min_len }))
    p.P.array_slots;
  match !undersized with
  | Some fault -> record_fault t a.a_name fault now
  | None -> (
  let env = Interp.make_env p ~scalars ~arrays in
  Cost.Accum.add_marshal t.e_cost t.e_cost_model;
  match Interp.run ?scratch:a.a_scratch p ~env ~now ~rng:t.e_rng with
  | Error (fault, stats) ->
    t.e_counters.interp_steps <- t.e_counters.interp_steps + stats.Interp.steps;
    Cost.Accum.add_interp t.e_cost t.e_cost_model ~steps:stats.Interp.steps;
    record_fault t a.a_name fault now
  | Ok stats ->
    t.e_counters.interp_steps <- t.e_counters.interp_steps + stats.Interp.steps;
    Cost.Accum.add_interp t.e_cost t.e_cost_model ~steps:stats.Interp.steps;
    (* Publish writable state and packet outputs. *)
    Array.iteri
      (fun i (s : P.scalar_slot) ->
        if s.P.s_access = P.Read_write then begin
          let v = env.Interp.scalars.(i) in
          match s.P.s_entity with
          | P.Packet -> apply_packet_field out s.P.s_name v
          | P.Message -> State.msg_set a.a_state ~msg:msg_id ~field:s.P.s_name v ~now
          | P.Global -> State.global_set a.a_state s.P.s_name v
        end)
      p.P.scalar_slots;
    Array.iteri
      (fun i (slot : P.array_slot) ->
        if slot.P.a_access = P.Read_write then
          State.global_array_set a.a_state slot.P.a_name env.Interp.arrays.(i))
      p.P.array_slots)

let run_native t a f pkt md msg_id out ~now =
  t.e_counters.native_invocations <- t.e_counters.native_invocations + 1;
  Cost.Accum.add_native t.e_cost t.e_cost_model;
  let ctx =
    {
      Native_ctx.nc_packet = pkt;
      nc_metadata = md;
      nc_msg_id = msg_id;
      nc_now = now;
      nc_rng = t.e_rng;
      nc_state = a.a_state;
      nc_out = out;
    }
  in
  f ctx

let max_table_hops = 8

(* [charge_classify] is false for the non-leading packets of a batch
   message group: batching amortizes classification and the metadata
   handoff (paper 6, "Cycle budget"), not the action function itself. *)
let process_one t ~now ~charge_classify (pkt : Packet.t) =
  let cost_before = Cost.Accum.overhead_total_ns t.e_cost in
  let c = t.e_counters in
  c.packets <- c.packets + 1;
  Cost.Accum.add_vanilla t.e_cost t.e_cost_model;
  let stage_md = pkt.Packet.metadata in
  let has_stage_metadata = Metadata.msg_id stage_md <> None in
  if has_stage_metadata && charge_classify then Cost.Accum.add_api t.e_cost t.e_cost_model;
  (* Enclave's own classification: the five-tuple stage. *)
  if charge_classify then Cost.Accum.add_classify t.e_cost t.e_cost_model;
  let flow_id = flow_msg_id t pkt.Packet.flow in
  let flow_md =
    Stage.classify ~msg_id:flow_id t.e_flow_stage
      (Builtin.flow_descriptor pkt.Packet.flow)
  in
  (* Stage metadata wins on conflicts (its msg id identifies the
     application message); flow classes are merged in. *)
  let md = Metadata.union flow_md stage_md in
  pkt.Packet.metadata <- md;
  let msg_id = match Metadata.msg_id md with Some id -> id | None -> flow_id in
  let classes = Metadata.classes md in
  let out = fresh_outputs pkt in
  (* Walk the match-action tables starting at table 0. *)
  let rec walk table_id hops =
    if hops >= max_table_hops then ()
    else
      match Hashtbl.find_opt t.e_tables table_id with
      | None -> ()
      | Some tbl -> (
        match Table.lookup tbl classes with
        | None -> ()
        | Some rule -> (
          match Hashtbl.find_opt t.e_actions rule.Table.action with
          | None -> ()
          | Some a ->
            c.invocations <- c.invocations + 1;
            out.o_goto <- -1;
            (match a.a_impl with
            | Interpreted p -> run_interpreted t a p pkt md msg_id out ~now
            | Native f -> run_native t a f pkt md msg_id out ~now);
            if out.o_goto >= 0 && out.o_goto <> table_id then walk out.o_goto (hops + 1)))
  in
  walk 0 0;
  t.e_last_cost_ns <- Cost.Accum.overhead_total_ns t.e_cost -. cost_before;
  if not t.e_enforce then Forward { queue = None; charge = Packet.wire_size pkt }
  else if out.o_drop then begin
    c.dropped <- c.dropped + 1;
    Dropped "action function set Drop"
  end
  else begin
    pkt.Packet.priority <- out.o_priority;
    if out.o_path >= 0 then pkt.Packet.route_label <- Some out.o_path;
    let queue = if out.o_queue >= 0 then Some out.o_queue else None in
    let charge = if out.o_charge >= 0 then out.o_charge else Packet.wire_size pkt in
    Forward { queue; charge }
  end

let process t ~now pkt = process_one t ~now ~charge_classify:true pkt

(* Batch processing (paper 6): split the batch into runs of packets that
   belong to the same message, amortizing per-packet classification and
   metadata handoff over each run.  Action-function semantics (state
   updates, outputs) stay strictly per packet and in order. *)
let process_batch t ~now pkts =
  let key (pkt : Packet.t) =
    match Metadata.msg_id pkt.Packet.metadata with
    | Some id -> `Msg id
    | None -> `Flow (Addr.hash_five_tuple pkt.Packet.flow)
  in
  let rec go prev_key acc = function
    | [] -> List.rev acc
    | pkt :: rest ->
      let k = key pkt in
      let charge_classify = Some k <> prev_key in
      let d = process_one t ~now ~charge_classify pkt in
      go (Some k) (d :: acc) rest
  in
  go None [] pkts

let note_message_end t ~msg_id =
  Hashtbl.iter (fun _ a -> State.msg_end a.a_state ~msg:msg_id) t.e_actions

let note_flow_closed t flow =
  match Addr.Flow_table.find_opt t.e_flow_ids flow with
  | None -> ()
  | Some id ->
    Addr.Flow_table.remove t.e_flow_ids flow;
    note_message_end t ~msg_id:id

let expire_messages t ~now ~idle =
  Hashtbl.fold (fun _ a acc -> acc + State.expire a.a_state ~now ~idle) t.e_actions 0
