module Addr = Eden_base.Addr
module Packet = Eden_base.Packet
module Metadata = Eden_base.Metadata
module Class_name = Eden_base.Class_name
module Time = Eden_base.Time
module Rng = Eden_base.Rng
module P = Eden_bytecode.Program
module Interp = Eden_bytecode.Interp
module Verifier = Eden_bytecode.Verifier
module Opcode = Eden_bytecode.Opcode
module Stage = Eden_stage.Stage
module Builtin = Eden_stage.Builtin
module Tel = Eden_telemetry

type placement = Os | Nic

let placement_to_string = function Os -> "os" | Nic -> "nic"

type decision = Forward of { queue : int option; charge : int } | Dropped of string

(* Mutable per-invocation outputs; applied to the packet after a
   successful run (and only then). *)
type outputs = {
  mutable o_priority : int;
  mutable o_path : int;
  mutable o_drop : bool;
  mutable o_queue : int;
  mutable o_charge : int;
  mutable o_goto : int;
}

let reset_outputs out (pkt : Packet.t) =
  out.o_priority <- pkt.Packet.priority;
  out.o_path <- (match pkt.Packet.route_label with Some l -> l | None -> -1);
  out.o_drop <- false;
  out.o_queue <- -1;
  out.o_charge <- -1;
  out.o_goto <- -1

module Native_ctx = struct
  type t = {
    nc_packet : Packet.t;
    nc_metadata : Metadata.t;
    nc_msg_id : int64;
    nc_now : Time.t;
    nc_rng : Rng.t;
    nc_state : State.t;
    nc_out : outputs;
  }

  let packet t = t.nc_packet
  let metadata t = t.nc_metadata
  let msg_id t = t.nc_msg_id
  let now t = t.nc_now
  let rng t = t.nc_rng
  let msg_get t field ~default =
    State.msg_get t.nc_state ~msg:t.nc_msg_id ~field ~default ~now:t.nc_now
  let msg_set t field v = State.msg_set t.nc_state ~msg:t.nc_msg_id ~field v ~now:t.nc_now
  let global_get t name = State.global_get t.nc_state name
  let global_set t name v = State.global_set t.nc_state name v
  let global_array t name = State.global_array t.nc_state name
  let set_priority t p = t.nc_out.o_priority <- p
  let set_path t p = t.nc_out.o_path <- p
  let set_drop t = t.nc_out.o_drop <- true
  let set_queue t q = t.nc_out.o_queue <- q
  let set_charge t c = t.nc_out.o_charge <- c
end

type impl =
  | Interpreted of P.t
  | Compiled of P.t
  | Native of (Native_ctx.t -> unit)

type msg_field_source =
  | Stateful of int64
  | Metadata_int of string
  | Metadata_flag of string * string

type install_spec = {
  i_name : string;
  i_impl : impl;
  i_msg_sources : (string * msg_field_source) list;
}

type counters = {
  mutable packets : int;
  mutable dropped : int;
  mutable invocations : int;
  mutable native_invocations : int;
  mutable compiled_invocations : int;
  mutable faults : int;
  mutable interp_steps : int;
  mutable quarantined : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable cache_evictions : int;
}

type fault_record = {
  fr_action : string;
  fr_fault : Interp.fault;
  fr_time : Time.t;
}

(* ------------------------------------------------------------------ *)
(* Per-action circuit breaker.

   Fail-open covers a single faulting invocation; a breaker covers a
   faulting *action*: when the fault rate over a sliding window of
   invocations crosses the threshold the action is quarantined — matching
   packets fall through to default forwarding without invoking it — and
   after a cooldown one probe invocation decides between recovery and
   another quarantine period.  Disabled unless {!set_breaker} is called,
   so the default data path is exactly the paper's. *)

type breaker_config = {
  br_window : int;
  br_min_samples : int;
  br_threshold : float;
  br_cooldown : Time.t;
}

let default_breaker =
  { br_window = 32; br_min_samples = 8; br_threshold = 0.5; br_cooldown = Time.us 100 }

type brk_state = Brk_closed | Brk_open of Time.t  (* half-open probe time *) | Brk_half_open

(* Outcome window as a bit queue in an int: newest at the LSB, oldest at
   bit [window - 1]; O(1) per invocation, no allocation. *)
type brk = {
  mutable k_state : brk_state;
  mutable k_hist : int;
  mutable k_count : int;
  mutable k_faults : int;
  mutable k_trips : int;
}

let make_brk () = { k_state = Brk_closed; k_hist = 0; k_count = 0; k_faults = 0; k_trips = 0 }

let brk_reset_window k =
  k.k_hist <- 0;
  k.k_count <- 0;
  k.k_faults <- 0

(* May the action run right now?  Flips Open -> Half_open when the
   cooldown has elapsed, admitting exactly the probe invocation. *)
let brk_admit k ~now =
  match k.k_state with
  | Brk_closed | Brk_half_open -> true
  | Brk_open probe_at ->
    if Time.( >= ) now probe_at then begin
      k.k_state <- Brk_half_open;
      true
    end
    else false

let brk_record k cfg ~now ~faulted =
  match k.k_state with
  | Brk_half_open ->
    if faulted then begin
      k.k_state <- Brk_open (Time.add now cfg.br_cooldown);
      k.k_trips <- k.k_trips + 1
    end
    else k.k_state <- Brk_closed
  | Brk_open _ -> ()
  | Brk_closed ->
    if k.k_count = cfg.br_window then begin
      let oldest = (k.k_hist lsr (cfg.br_window - 1)) land 1 in
      k.k_faults <- k.k_faults - oldest;
      k.k_count <- k.k_count - 1
    end;
    k.k_hist <- ((k.k_hist lsl 1) lor (if faulted then 1 else 0)) land ((1 lsl cfg.br_window) - 1);
    k.k_count <- k.k_count + 1;
    if faulted then k.k_faults <- k.k_faults + 1;
    if
      k.k_count >= cfg.br_min_samples
      && float_of_int k.k_faults >= cfg.br_threshold *. float_of_int k.k_count
    then begin
      k.k_state <- Brk_open (Time.add now cfg.br_cooldown);
      k.k_trips <- k.k_trips + 1;
      brk_reset_window k
    end

(* ------------------------------------------------------------------ *)
(* Packet-field marshalling.

   Field names are resolved to small integer codes once at install time
   so the per-packet copy-in / copy-out is an integer dispatch with no
   string comparison or hashing. *)

let proto_code = function Addr.Tcp -> 6L | Addr.Udp -> 17L

let packet_field_code = function
  | "Size" -> 0
  | "PayloadSize" -> 1
  | "Priority" -> 2
  | "Path" -> 3
  | "SrcHost" -> 4
  | "SrcPort" -> 5
  | "DstHost" -> 6
  | "DstPort" -> 7
  | "Proto" -> 8
  | "IsData" -> 9
  | "Drop" -> 10
  | "Queue" -> 11
  | "Charge" -> 12
  | "GotoTable" -> 13
  | _ -> -1

let packet_field_by_code (pkt : Packet.t) = function
  | 0 -> Int64.of_int (Packet.wire_size pkt)
  | 1 -> Int64.of_int pkt.Packet.payload
  | 2 -> Int64.of_int pkt.Packet.priority
  | 3 -> (match pkt.Packet.route_label with Some l -> Int64.of_int l | None -> -1L)
  | 4 -> Int64.of_int pkt.Packet.flow.Addr.src.Addr.host
  | 5 -> Int64.of_int pkt.Packet.flow.Addr.src.Addr.port
  | 6 -> Int64.of_int pkt.Packet.flow.Addr.dst.Addr.host
  | 7 -> Int64.of_int pkt.Packet.flow.Addr.dst.Addr.port
  | 8 -> proto_code pkt.Packet.flow.Addr.proto
  | 9 -> if Packet.is_data pkt then 1L else 0L
  | 10 -> 0L
  | 11 | 12 | 13 -> -1L
  | _ -> 0L

let packet_field_writable = function
  | "Priority" | "Path" | "Drop" | "Queue" | "Charge" | "GotoTable" -> true
  | _ -> false

let apply_packet_field_code (out : outputs) code v =
  match code with
  | 2 -> out.o_priority <- max 0 (min 7 (Int64.to_int v))
  | 3 -> out.o_path <- Int64.to_int v
  | 10 -> if not (Int64.equal v 0L) then out.o_drop <- true
  | 11 -> out.o_queue <- Int64.to_int v
  | 12 -> out.o_charge <- Int64.to_int v
  | 13 -> out.o_goto <- Int64.to_int v
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Marshal plans.

   The paper's enclave performs copy-in / copy-out around every
   invocation (§3.4.3).  Doing that naively — one [Array.map] over the
   slot tables per packet — allocates fresh environment buffers and
   copies every array on every packet.  A plan is computed once at
   install time from the program's effect footprint:

   - scalar slots the program never [Load]s are not copied in; writable
     slots it never [Store]s are neither copied in nor published (the
     interpreter's publish of an untouched local would only echo the
     input back);
   - read-only array slots — and writable slots with no reachable store
     — alias the live array (the verifier guarantees the program cannot
     write through them);
   - a written array slot of a program {!Wcet.fault_free} proved unable
     to fault runs in place against the live array, eliding both blits;
   - otherwise the slot gets a persistent scratch buffer: blit-in per
     packet, blit-out only on success, preserving fault isolation.

   Plans cache aliases into the action's live arrays, so they watch
   {!State.array_version} and rebind when the controller swaps an array
   binding. *)

type scalar_in =
  | In_zero  (** Never read by the program: skip the copy-in. *)
  | In_pkt of int
  | In_msg_state of string * int64  (** field, default *)
  | In_msg_meta_int of string
  | In_msg_meta_flag of string * string
  | In_global of string

type scalar_out =
  | Out_none
  | Out_pkt of int
  | Out_msg of string
  | Out_global of string

type array_kind =
  | A_alias  (** Read-only (or never written): share the live array. *)
  | A_inplace  (** Written but fault-free: run directly on the live array. *)
  | A_scratch  (** Written, may fault: copy via a persistent scratch buffer. *)

type plan = {
  pl_prog : P.t;
  pl_in : scalar_in array;  (* per scalar slot *)
  pl_out : scalar_out array;  (* per scalar slot *)
  pl_abind : array_kind array;  (* per array slot *)
  pl_scalars : int64 array;  (* preallocated env.scalars *)
  pl_arrays : int64 array array;  (* preallocated env.arrays *)
  pl_live : int64 array array;  (* live aliases for scratch blits *)
  pl_env : Interp.env;
  mutable pl_version : int;  (* State.array_version at last rebind *)
  mutable pl_undersized : Interp.fault option;  (* checked at rebind *)
}

let local_usage (p : P.t) =
  let reads = Array.make (max 1 p.P.n_locals) false in
  let writes = Array.make (max 1 p.P.n_locals) false in
  Array.iter
    (function
      | Opcode.Load i -> reads.(i) <- true
      | Opcode.Store i -> writes.(i) <- true
      | _ -> ())
    p.P.code;
  (reads, writes)

let msg_source_of sources name =
  match Hashtbl.find_opt sources name with Some s -> s | None -> Stateful 0L

let make_plan (p : P.t) sources =
  let reads, writes = local_usage p in
  let n_scalars = Array.length p.P.scalar_slots in
  let n_arrays = Array.length p.P.array_slots in
  (* Two slots sharing one local would make per-slot elision ambiguous;
     fall back to copying everything (the verifier does not forbid it,
     but no compiler emits it). *)
  let dup_local =
    let seen = Hashtbl.create 8 in
    Array.exists
      (fun (s : P.scalar_slot) ->
        let d = Hashtbl.mem seen s.P.s_local in
        Hashtbl.replace seen s.P.s_local ();
        d)
      p.P.scalar_slots
  in
  let pl_in =
    Array.map
      (fun (s : P.scalar_slot) ->
        let needed =
          dup_local || reads.(s.P.s_local)
          || (s.P.s_access = P.Read_write && writes.(s.P.s_local))
        in
        if not needed then In_zero
        else
          match s.P.s_entity with
          | P.Packet -> In_pkt (packet_field_code s.P.s_name)
          | P.Global -> In_global s.P.s_name
          | P.Message -> (
            match msg_source_of sources s.P.s_name with
            | Stateful default -> In_msg_state (s.P.s_name, default)
            | Metadata_int field -> In_msg_meta_int field
            | Metadata_flag (field, expected) -> In_msg_meta_flag (field, expected)))
      p.P.scalar_slots
  in
  let pl_out =
    Array.map
      (fun (s : P.scalar_slot) ->
        if s.P.s_access <> P.Read_write || not (dup_local || writes.(s.P.s_local)) then
          Out_none
        else
          match s.P.s_entity with
          | P.Packet -> Out_pkt (packet_field_code s.P.s_name)
          | P.Message -> Out_msg s.P.s_name
          | P.Global -> Out_global s.P.s_name)
      p.P.scalar_slots
  in
  let written = Array.make (max 1 n_arrays) false in
  Array.iter
    (function
      | Opcode.Gastore s | Opcode.Gastore_unsafe s -> written.(s) <- true
      | _ -> ())
    p.P.code;
  let fault_free = lazy (Eden_bytecode.Wcet.fault_free p) in
  let name_count name =
    Array.fold_left
      (fun acc (a : P.array_slot) -> if String.equal a.P.a_name name then acc + 1 else acc)
      0 p.P.array_slots
  in
  let pl_abind =
    Array.mapi
      (fun i (a : P.array_slot) ->
        if a.P.a_access = P.Read_only || not written.(i) then A_alias
        else if Lazy.force fault_free && name_count a.P.a_name = 1 then A_inplace
        else A_scratch)
      p.P.array_slots
  in
  let pl_scalars = Array.make n_scalars 0L in
  let pl_arrays = Array.make n_arrays [||] in
  {
    pl_prog = p;
    pl_in;
    pl_out;
    pl_abind;
    pl_scalars;
    pl_arrays;
    pl_live = Array.make n_arrays [||];
    pl_env = { Interp.scalars = pl_scalars; arrays = pl_arrays };
    pl_version = -1;  (* force a rebind before the first invocation *)
    pl_undersized = None;
  }

(* Re-alias live arrays (and resize scratch buffers) after the
   controller rebinds one via [set_global_array]; also re-check the
   [a_min_len] promises the program's bounds proofs rely on. *)
let rebind_plan plan state =
  let v = State.array_version state in
  if plan.pl_version <> v then begin
    plan.pl_version <- v;
    plan.pl_undersized <- None;
    Array.iteri
      (fun i (a : P.array_slot) ->
        let live = State.global_array state a.P.a_name in
        plan.pl_live.(i) <- live;
        (match plan.pl_abind.(i) with
        | A_alias | A_inplace -> plan.pl_arrays.(i) <- live
        | A_scratch ->
          if Array.length plan.pl_arrays.(i) <> Array.length live then
            plan.pl_arrays.(i) <- Array.make (Array.length live) 0L);
        if plan.pl_undersized = None && Array.length live < a.P.a_min_len then
          plan.pl_undersized <-
            Some
              (Interp.Undersized_env_array
                 { slot = i; length = Array.length live; min_len = a.P.a_min_len }))
      plan.pl_prog.P.array_slots
  end

type engine =
  | E_interp of P.t * Interp.scratch * plan
  | E_compiled of Eden_bytecode.Compiled.t * plan
  | E_native of (Native_ctx.t -> unit)

type installed = {
  a_name : string;
  a_spec : install_spec;  (* retained for snapshot/restore and reconciliation *)
  mutable a_state : State.t;  (* swappable so shards can share one store *)
  a_msg_sources : (string, msg_field_source) Hashtbl.t;
  a_concurrency : [ `Parallel | `Per_message | `Serial ];
  a_engine : engine;
  a_brk : brk;
  mutable a_lock : Mutex.t option;
      (* serialization fallback for sharded execution: when set, every
         invocation of this action runs under the mutex *)
}

(* A table's resolved lookup for one class vector.  [C_none] caches "no
   rule fires here" so misses are as cheap as hits. *)
type cached = C_none | C_run of Table.rule * installed

let fault_ring_capacity = 100

type t = {
  e_host : Addr.host;
  e_placement : placement;
  e_seed : int64;
  e_rng : Rng.t;
  e_cache_cap : int;  (* per-table match-action cache capacity *)
  e_flow_stage : Stage.t;
  e_flow_ids : int64 Addr.Flow_table.t;
  mutable e_next_flow_id : int64;
  e_actions : (string, installed) Hashtbl.t;
  mutable e_install_order : string list;  (* oldest first *)
  e_tables : (int, Table.t) Hashtbl.t;
  mutable e_next_table : int;
  mutable e_caches : (Class_name.t list, cached) Hashtbl.t array;
      (* per-table match-action cache, indexed by (dense) table id *)
  (* Telemetry: the registry is the directory, the cells below are the
     hot-path storage (one field read + int bump per event, no lookup). *)
  e_tel : Tel.Registry.t;
  m_packets : Tel.Counter.t;
  m_dropped : Tel.Counter.t;
  m_invocations : Tel.Counter.t;
  m_native_invocations : Tel.Counter.t;
  m_compiled_invocations : Tel.Counter.t;
  m_faults : Tel.Counter.t;
  m_interp_steps : Tel.Counter.t;
  m_quarantined : Tel.Counter.t;
  m_cache_hits : Tel.Counter.t;
  m_cache_misses : Tel.Counter.t;
  m_cache_evictions : Tel.Counter.t;
  m_restarts : Tel.Counter.t;
  h_process : Tel.Histogram.t;  (* Eden-added ns per processed packet *)
  h_exec : Tel.Histogram.t;  (* engine execution ns per invocation *)
  h_marshal : Tel.Histogram.t;  (* copy-in/copy-out ns per invocation *)
  mutable e_timing : bool;
  mutable e_trace : Tel.Trace.t option;
  mutable e_trace_armed : bool;  (* current packet is sampled *)
  e_faults : fault_record Tel.Ring.t;  (* newest-first fault log *)
  e_out : outputs;  (* reused across process_one calls *)
  mutable e_cost : Cost.Accum.t;
  e_cost_model : Cost.model;
  mutable e_budget_ns : float;
  mutable e_enforce : bool;
  mutable e_last_cost_ns : float;
  mutable e_breaker : breaker_config option;
  mutable e_restarts : int;
}

(* The enclave's first flow id; far above any stage-assigned message id so
   the two spaces cannot collide. *)
let flow_id_base = Int64.shift_left 1L 40

let create ?(placement = Os) ?(seed = 0xEDE1L) ?(flow_cache_capacity = 4096) ~host () =
  if flow_cache_capacity < 1 then
    invalid_arg "Enclave.create: flow_cache_capacity must be positive";
  let tel = Tel.Registry.create () in
  let counter = Tel.Registry.counter tel in
  let histogram = Tel.Registry.histogram tel in
  let t =
    {
      e_host = host;
      e_placement = placement;
      e_seed = seed;
      e_rng = Rng.create (Int64.add seed (Int64.of_int host));
      e_cache_cap = flow_cache_capacity;
      e_flow_stage = Builtin.flow ();
      e_flow_ids = Addr.Flow_table.create 64;
      e_next_flow_id = flow_id_base;
      e_actions = Hashtbl.create 8;
      e_install_order = [];
      e_tables = Hashtbl.create 4;
      e_next_table = 1;
      e_caches = [| Hashtbl.create 64 |];
      e_tel = tel;
      m_packets = counter ~help:"Packets processed" "eden_enclave_packets_total";
      m_dropped = counter ~help:"Packets dropped by action decision" "eden_enclave_dropped_total";
      m_invocations = counter ~help:"Action invocations (any engine)" "eden_enclave_invocations_total";
      m_native_invocations =
        counter ~help:"Native action invocations" "eden_enclave_native_invocations_total";
      m_compiled_invocations =
        counter ~help:"Compiled action invocations" "eden_enclave_compiled_invocations_total";
      m_faults = counter ~help:"Faulting invocations (fail-open)" "eden_enclave_faults_total";
      m_interp_steps =
        counter ~help:"Bytecode steps retired by either engine" "eden_enclave_interp_steps_total";
      m_quarantined =
        counter ~help:"Packets that fell through a quarantined action"
          "eden_enclave_quarantined_total";
      m_cache_hits =
        counter ~help:"Match-action cache hits" "eden_enclave_flow_cache_hits_total";
      m_cache_misses =
        counter ~help:"Match-action cache misses (full lookup)"
          "eden_enclave_flow_cache_misses_total";
      m_cache_evictions =
        counter ~help:"Match-action cache entries evicted on reset"
          "eden_enclave_flow_cache_evictions_total";
      m_restarts = counter ~help:"Enclave restarts" "eden_enclave_restarts_total";
      h_process =
        histogram ~help:"Eden-added ns per processed packet" "eden_enclave_process_ns";
      h_exec = histogram ~help:"Engine execution ns per invocation" "eden_enclave_exec_ns";
      h_marshal =
        histogram ~help:"Marshalling ns per invocation" "eden_enclave_marshal_ns";
      e_timing = true;
      e_trace = None;
      e_trace_armed = false;
      e_faults = Tel.Ring.create fault_ring_capacity;
      e_out =
        {
          o_priority = 0;
          o_path = -1;
          o_drop = false;
          o_queue = -1;
          o_charge = -1;
          o_goto = -1;
        };
      e_cost = Cost.Accum.create ();
      e_cost_model = (match placement with Os -> Cost.os_model | Nic -> Cost.nic_model);
      e_budget_ns =
        (match placement with Os -> Cost.os_model | Nic -> Cost.nic_model).Cost.budget_ns;
      e_enforce = true;
      e_last_cost_ns = 0.0;
      e_breaker = None;
      e_restarts = 0;
    }
  in
  Hashtbl.replace t.e_tables 0 (Table.create ~id:0);
  (* The enclave classifies at TCP-flow granularity out of the box (paper
     Table 2, last row): every packet belongs to [enclave.flows.ALL] and
     each transport connection is a message.  The controller may remove
     or refine this rule-set through the stage API. *)
  (match
     Stage.Api.create_stage_rule t.e_flow_stage ~ruleset:"flows" ~classifier:[]
       ~class_name:"ALL" ~metadata_fields:[]
   with
  | Ok _ -> ()
  | Error msg -> invalid_arg ("Enclave.create: " ^ msg));
  t

let host t = t.e_host
let placement t = t.e_placement
let seed t = t.e_seed
let flow_cache_capacity t = t.e_cache_cap
let flow_stage t = t.e_flow_stage
let set_enforce t b = t.e_enforce <- b

(* Deprecated in favour of {!telemetry} / {!scrape}: the registry cells
   are authoritative and this record is a snapshot built from them.
   Kept so existing callers (tests, the shard merge) keep working. *)
let counters t =
  {
    packets = Tel.Counter.get t.m_packets;
    dropped = Tel.Counter.get t.m_dropped;
    invocations = Tel.Counter.get t.m_invocations;
    native_invocations = Tel.Counter.get t.m_native_invocations;
    compiled_invocations = Tel.Counter.get t.m_compiled_invocations;
    faults = Tel.Counter.get t.m_faults;
    interp_steps = Tel.Counter.get t.m_interp_steps;
    quarantined = Tel.Counter.get t.m_quarantined;
    cache_hits = Tel.Counter.get t.m_cache_hits;
    cache_misses = Tel.Counter.get t.m_cache_misses;
    cache_evictions = Tel.Counter.get t.m_cache_evictions;
  }

let faults t = Tel.Ring.to_list t.e_faults
let telemetry t = t.e_tel
let scrape t = Tel.Registry.scrape t.e_tel
let set_timing t b = t.e_timing <- b
let timing t = t.e_timing
let set_trace t tr = t.e_trace <- tr
let trace t = t.e_trace

let cost t = t.e_cost
let cost_model t = t.e_cost_model
let last_process_cost_ns t = t.e_last_cost_ns
let budget_ns t = t.e_budget_ns

let set_budget_ns t ns =
  if ns <= 0.0 then invalid_arg "Enclave.set_budget_ns: budget must be positive";
  t.e_budget_ns <- ns

let invalidate_caches t = Array.iter Hashtbl.reset t.e_caches

(* ------------------------------------------------------------------ *)
(* Enclave API *)

let concurrency_of_program (p : P.t) =
  if P.writes_entity p P.Global then `Serial
  else if P.writes_entity p P.Message then `Per_message
  else `Parallel

type install_error =
  | Already_installed of string
  | Rejected_bytecode of Verifier.error
  | Over_budget of { est_ns : float; budget_ns : float; steps : int }
  | Bad_contract of string list

let install_error_to_string = function
  | Already_installed name -> Printf.sprintf "action %S already installed" name
  | Rejected_bytecode e -> Verifier.error_to_string e
  | Over_budget { est_ns; budget_ns; steps } ->
    Printf.sprintf
      "worst-case cost %.0f ns (%d steps) exceeds the enclave budget of %.0f ns" est_ns
      steps budget_ns
  | Bad_contract problems -> String.concat "; " problems

let pp_install_error fmt e = Format.pp_print_string fmt (install_error_to_string e)

(* Admission control (§3.4 trust boundary): the worst case an invocation
   can cost is bounded by the static longest path when the control-flow
   graph is acyclic, and by [step_limit] always — the interpreter faults
   the invocation at that many steps regardless. *)
let admission_steps (p : P.t) =
  match Eden_bytecode.Wcet.worst_case_steps p with
  | Some n -> min n p.P.step_limit
  | None -> p.P.step_limit

(* Contract and budget validation shared by both bytecode engines.
   Returns the concurrency class on success. *)
let validate_bytecode t sources ~per_step_ns (p : P.t) =
  match Verifier.verify p with
  | Error e -> Error (Rejected_bytecode e)
  | Ok () ->
    let problems = ref [] in
    Array.iter
      (fun (s : P.scalar_slot) ->
        match s.P.s_entity with
        | P.Packet ->
          if packet_field_code s.P.s_name < 0 then
            problems := Printf.sprintf "unknown packet field %S" s.P.s_name :: !problems
          else if s.P.s_access = P.Read_write && not (packet_field_writable s.P.s_name)
          then
            problems :=
              Printf.sprintf "packet field %S is not writable" s.P.s_name :: !problems
        | P.Message -> (
          match Hashtbl.find_opt sources s.P.s_name with
          | Some (Metadata_int _ | Metadata_flag _) when s.P.s_access = P.Read_write ->
            problems :=
              Printf.sprintf "metadata-sourced message field %S cannot be writable"
                s.P.s_name
              :: !problems
          | Some _ | None -> ())
        | P.Global -> ())
      p.P.scalar_slots;
    Array.iter
      (fun (a : P.array_slot) ->
        match a.P.a_entity with
        | P.Global -> ()
        | P.Packet | P.Message ->
          problems :=
            Printf.sprintf "array %S: only global arrays are supported" a.P.a_name
            :: !problems)
      p.P.array_slots;
    (match !problems with
    | _ :: _ as ps -> Error (Bad_contract ps)
    | [] ->
      let steps = admission_steps p in
      let m = t.e_cost_model in
      let est_ns =
        m.Cost.classify_ns +. m.Cost.marshal_ns +. (float_of_int steps *. per_step_ns)
      in
      if est_ns > t.e_budget_ns then
        Error (Over_budget { est_ns; budget_ns = t.e_budget_ns; steps })
      else Ok (concurrency_of_program p))

let install_action_full t spec =
  if Hashtbl.mem t.e_actions spec.i_name then Error (Already_installed spec.i_name)
  else begin
    let sources = Hashtbl.create 8 in
    List.iter (fun (name, src) -> Hashtbl.replace sources name src) spec.i_msg_sources;
    let build () =
      match spec.i_impl with
      | Native f -> Ok (`Serial, E_native f)
      | Interpreted p -> (
        match validate_bytecode t sources ~per_step_ns:t.e_cost_model.Cost.per_step_ns p with
        | Error _ as e -> e
        | Ok concurrency ->
          Ok (concurrency, E_interp (p, Interp.make_scratch p, make_plan p sources)))
      | Compiled p -> (
        match
          validate_bytecode t sources ~per_step_ns:t.e_cost_model.Cost.compiled_step_ns p
        with
        | Error _ as e -> e
        | Ok concurrency -> (
          match Eden_bytecode.Compiled.compile p with
          | Error e -> Error (Rejected_bytecode e)
          | Ok c -> Ok (concurrency, E_compiled (c, make_plan p sources))))
    in
    match build () with
    | Error _ as e -> e
    | Ok (concurrency, engine) ->
      Hashtbl.replace t.e_actions spec.i_name
        {
          a_name = spec.i_name;
          a_spec = spec;
          a_state = State.create ();
          a_msg_sources = sources;
          a_concurrency = concurrency;
          a_engine = engine;
          a_brk = make_brk ();
          a_lock = None;
        };
      t.e_install_order <- t.e_install_order @ [ spec.i_name ];
      invalidate_caches t;
      Ok ()
  end

let install_action t spec =
  Result.map_error install_error_to_string (install_action_full t spec)

let remove_action t name =
  if not (Hashtbl.mem t.e_actions name) then None
  else begin
    Hashtbl.remove t.e_actions name;
    t.e_install_order <- List.filter (fun n -> not (String.equal n name)) t.e_install_order;
    let dropped =
      Hashtbl.fold (fun _ tbl acc -> acc + Table.remove_action_rules tbl name) t.e_tables 0
    in
    invalidate_caches t;
    Some dropped
  end

let action_names t = Hashtbl.fold (fun k _ acc -> k :: acc) t.e_actions [] |> List.sort compare

let concurrency_of t name =
  Option.map (fun a -> a.a_concurrency) (Hashtbl.find_opt t.e_actions name)

let add_table t =
  let id = t.e_next_table in
  t.e_next_table <- id + 1;
  Hashtbl.replace t.e_tables id (Table.create ~id);
  let n = Array.length t.e_caches in
  if id >= n then
    t.e_caches <-
      Array.init (id + 1) (fun i -> if i < n then t.e_caches.(i) else Hashtbl.create 64);
  id

let add_table_rule t ?(table = 0) ~pattern ~action () =
  match Hashtbl.find_opt t.e_tables table with
  | None -> Error (Printf.sprintf "no table %d" table)
  | Some tbl ->
    if not (Hashtbl.mem t.e_actions action) then
      Error (Printf.sprintf "action %S is not installed" action)
    else begin
      let rule = Table.add_rule tbl ~pattern ~action in
      invalidate_caches t;
      Ok rule.Table.rule_id
    end

let remove_table_rule t ?(table = 0) rule_id =
  match Hashtbl.find_opt t.e_tables table with
  | None -> false
  | Some tbl ->
    let removed = Table.remove_rule tbl rule_id in
    if removed then invalidate_caches t;
    removed

let tables t =
  Hashtbl.fold (fun _ tbl acc -> tbl :: acc) t.e_tables []
  |> List.sort (fun a b -> compare (Table.id a) (Table.id b))

let with_action t action f =
  match Hashtbl.find_opt t.e_actions action with
  | None -> Error (Printf.sprintf "action %S is not installed" action)
  | Some a -> Ok (f a)

let set_global t ~action name v = with_action t action (fun a -> State.global_set a.a_state name v)

let get_global t ~action name =
  match Hashtbl.find_opt t.e_actions action with
  | None -> None
  | Some a -> Some (State.global_get a.a_state name)

let set_global_array t ~action name arr =
  with_action t action (fun a -> State.global_array_set a.a_state name arr)

let get_global_array t ~action name =
  match Hashtbl.find_opt t.e_actions action with
  | None -> None
  | Some a -> Some (State.global_array a.a_state name)

(* ------------------------------------------------------------------ *)
(* Sharding runtime hooks ({!Shard}).

   A sharded front-end runs one enclave replica per worker domain.  For
   actions whose effect footprint cannot be partitioned, the shard
   runtime points every replica at one shared state store and arms the
   per-action mutex, so only that action serializes while the rest of
   the data path stays lock-free. *)

let invalidate_plan = function
  | E_interp (_, _, plan) | E_compiled (_, plan) -> plan.pl_version <- -1
  | E_native _ -> ()

let action_program t name =
  match Hashtbl.find_opt t.e_actions name with
  | None -> None
  | Some a -> (
    match a.a_engine with
    | E_interp (p, _, _) -> Some p
    | E_compiled (_, plan) -> Some plan.pl_prog
    | E_native _ -> None)

let action_state t name =
  Option.map (fun a -> a.a_state) (Hashtbl.find_opt t.e_actions name)

let set_action_state t name st =
  with_action t name (fun a ->
      a.a_state <- st;
      (* Live-array aliases in the marshal plan point into the old
         store; force a rebind before the next invocation. *)
      invalidate_plan a.a_engine)

let set_action_lock t name lock = with_action t name (fun a -> a.a_lock <- lock)

let set_flow_id_offset t offset =
  if offset < 0L then invalid_arg "Enclave.set_flow_id_offset: negative offset";
  t.e_next_flow_id <- Int64.add flow_id_base offset

(* ------------------------------------------------------------------ *)
(* Graceful degradation: breaker configuration *)

let set_breaker t cfg =
  (match cfg with
  | None -> ()
  | Some c ->
    if c.br_window < 1 || c.br_window > 62 then
      invalid_arg "Enclave.set_breaker: window must be in [1, 62]";
    if c.br_min_samples < 1 || c.br_min_samples > c.br_window then
      invalid_arg "Enclave.set_breaker: min_samples must be in [1, window]";
    if c.br_threshold <= 0.0 || c.br_threshold > 1.0 then
      invalid_arg "Enclave.set_breaker: threshold must be in (0, 1]");
  t.e_breaker <- cfg;
  Hashtbl.iter
    (fun _ a ->
      a.a_brk.k_state <- Brk_closed;
      brk_reset_window a.a_brk)
    t.e_actions

let breaker t = t.e_breaker

let breaker_state t name =
  match (t.e_breaker, Hashtbl.find_opt t.e_actions name) with
  | None, _ | _, None -> None
  | Some _, Some a ->
    Some
      (match a.a_brk.k_state with
      | Brk_closed -> `Closed
      | Brk_open _ -> `Open
      | Brk_half_open -> `Half_open)

let breaker_trips t name =
  match Hashtbl.find_opt t.e_actions name with None -> 0 | Some a -> a.a_brk.k_trips

(* ------------------------------------------------------------------ *)
(* Restart and snapshot/restore.

   Everything the controller pushed — actions, rules, state — plus
   everything the data path accumulated is *soft* state: a host reboot
   loses it all, and the consistency story of §2.2 only holds if the
   controller can re-converge such an enclave.  [restart] models the
   reboot honestly (wipe, not simulate); [snapshot]/[restore] capture and
   replay the programmed configuration so tests and the reconciliation
   plane can compare desired against actual.  The five-tuple flow stage's
   built-in ALL rule is firmware, not pushed state; it survives restart
   by reconstruction in [create] and here. *)

type snapshot = {
  sn_actions : install_spec list;  (* install order *)
  sn_globals : (string * (string * int64) list) list;
  sn_arrays : (string * (string * int64 array) list) list;
  sn_rules : (int * Table.rule list) list;  (* per table, match order *)
}

let snapshot t =
  let acts =
    List.filter_map (fun n -> Hashtbl.find_opt t.e_actions n) t.e_install_order
  in
  {
    sn_actions = List.map (fun a -> a.a_spec) acts;
    sn_globals = List.map (fun a -> (a.a_name, State.global_bindings a.a_state)) acts;
    sn_arrays =
      List.map
        (fun a ->
          ( a.a_name,
            List.map
              (fun (n, arr) -> (n, Array.copy arr))
              (State.global_array_bindings a.a_state) ))
        acts;
    sn_rules = List.map (fun tbl -> (Table.id tbl, Table.rules tbl)) (tables t);
  }

let restarts t = t.e_restarts

let restart t =
  t.e_restarts <- t.e_restarts + 1;
  Hashtbl.reset t.e_actions;
  t.e_install_order <- [];
  Hashtbl.reset t.e_tables;
  Hashtbl.replace t.e_tables 0 (Table.create ~id:0);
  t.e_next_table <- 1;
  t.e_caches <- [| Hashtbl.create 64 |];
  Addr.Flow_table.reset t.e_flow_ids;
  t.e_next_flow_id <- flow_id_base;
  Tel.Registry.reset t.e_tel;
  (* Restart count survives the reboot (it identifies the incarnation). *)
  Tel.Counter.set t.m_restarts t.e_restarts;
  Tel.Ring.clear t.e_faults;
  (match t.e_trace with Some tr -> Tel.Trace.clear tr | None -> ());
  t.e_trace_armed <- false;
  t.e_cost <- Cost.Accum.create ();
  t.e_last_cost_ns <- 0.0

let restore t sn =
  restart t;
  let ( let* ) r f = Result.bind r f in
  let rec each f = function
    | [] -> Ok ()
    | x :: rest ->
      let* () = f x in
      each f rest
  in
  let* () = each (fun spec -> install_action t spec) sn.sn_actions in
  let* () =
    each
      (fun (action, bindings) ->
        each (fun (name, v) -> set_global t ~action name v) bindings)
      sn.sn_globals
  in
  let* () =
    each
      (fun (action, bindings) ->
        each (fun (name, arr) -> set_global_array t ~action name (Array.copy arr)) bindings)
      sn.sn_arrays
  in
  let max_table = List.fold_left (fun acc (id, _) -> max acc id) 0 sn.sn_rules in
  while t.e_next_table <= max_table do
    ignore (add_table t)
  done;
  each
    (fun (table, rules) ->
      each
        (fun (r : Table.rule) ->
          let* _ =
            add_table_rule t ~table ~pattern:r.Table.pattern ~action:r.Table.action ()
          in
          Ok ())
        rules)
    sn.sn_rules

(* Configuration equality ignores what cannot be compared (native
   closures) and what is not configuration (rule ids): two enclaves are
   configured equally when they hold the same actions (by name, engine
   kind and message sources), the same state bindings and the same
   (pattern, action) rule sequences per table. *)
let config_equal a b =
  let impl_kind = function
    | Interpreted p -> "interpreted:" ^ p.P.name
    | Compiled p -> "compiled:" ^ p.P.name
    | Native _ -> "native"
  in
  let spec_key (s : install_spec) =
    (s.i_name, impl_kind s.i_impl, List.sort compare s.i_msg_sources)
  in
  let rule_key (r : Table.rule) = (Class_name.Pattern.to_string r.Table.pattern, r.Table.action) in
  List.map spec_key a.sn_actions = List.map spec_key b.sn_actions
  && a.sn_globals = b.sn_globals
  && a.sn_arrays = b.sn_arrays
  && List.map (fun (id, rs) -> (id, List.map rule_key rs)) a.sn_rules
     = List.map (fun (id, rs) -> (id, List.map rule_key rs)) b.sn_rules

let snapshot_summary sn =
  Printf.sprintf "%d actions, %d rules, %d globals, %d arrays"
    (List.length sn.sn_actions)
    (List.fold_left (fun acc (_, rs) -> acc + List.length rs) 0 sn.sn_rules)
    (List.fold_left (fun acc (_, bs) -> acc + List.length bs) 0 sn.sn_globals)
    (List.fold_left (fun acc (_, bs) -> acc + List.length bs) 0 sn.sn_arrays)

(* ------------------------------------------------------------------ *)
(* Data path *)

let flow_msg_id t flow =
  match Addr.Flow_table.find t.e_flow_ids flow with
  | id -> id
  | exception Not_found ->
    let id = t.e_next_flow_id in
    t.e_next_flow_id <- Int64.add id 1L;
    Addr.Flow_table.replace t.e_flow_ids flow id;
    id

let record_fault t action fault now =
  Tel.Counter.inc t.m_faults;
  Tel.Ring.push t.e_faults { fr_action = action; fr_fault = fault; fr_time = now }

(* Copy-in per the plan; elided slots keep whatever the buffer holds
   (the program provably never reads them, and the plan never publishes
   them). *)
let marshal_in a plan pkt md msg_id ~now =
  let s = plan.pl_scalars in
  for i = 0 to Array.length plan.pl_in - 1 do
    match plan.pl_in.(i) with
    | In_zero -> ()
    | In_pkt code -> s.(i) <- packet_field_by_code pkt code
    | In_msg_state (field, default) ->
      s.(i) <- State.msg_get a.a_state ~msg:msg_id ~field ~default ~now
    | In_msg_meta_int field -> s.(i) <- Metadata.int_field field ~default:0L md
    | In_msg_meta_flag (field, expected) ->
      s.(i) <- (if Metadata.str_field_is field ~expected md then 1L else 0L)
    | In_global name -> s.(i) <- State.global_get a.a_state name
  done;
  for i = 0 to Array.length plan.pl_abind - 1 do
    match plan.pl_abind.(i) with
    | A_scratch ->
      let live = plan.pl_live.(i) in
      Array.blit live 0 plan.pl_arrays.(i) 0 (Array.length live)
    | A_alias | A_inplace -> ()
  done

(* Publish on success only: writable scalars the program stored, plus
   scratch arrays blitted back over the live binding (the binding itself
   is unchanged, so dependent plans need not rebind). *)
let marshal_out a plan out msg_id ~now =
  let s = plan.pl_scalars in
  for i = 0 to Array.length plan.pl_out - 1 do
    match plan.pl_out.(i) with
    | Out_none -> ()
    | Out_pkt code -> apply_packet_field_code out code s.(i)
    | Out_msg field -> State.msg_set a.a_state ~msg:msg_id ~field s.(i) ~now
    | Out_global name -> State.global_set a.a_state name s.(i)
  done;
  for i = 0 to Array.length plan.pl_abind - 1 do
    match plan.pl_abind.(i) with
    | A_scratch ->
      let live = plan.pl_live.(i) in
      Array.blit plan.pl_arrays.(i) 0 live 0 (Array.length live)
    | A_alias | A_inplace -> ()
  done

let run_interpreted t a p scratch plan pkt md msg_id out ~now =
  rebind_plan plan a.a_state;
  match plan.pl_undersized with
  | Some fault -> record_fault t a.a_name fault now
  | None -> (
    marshal_in a plan pkt md msg_id ~now;
    Cost.Accum.add_marshal t.e_cost t.e_cost_model;
    if t.e_timing then
      Tel.Histogram.observe t.h_marshal (int_of_float t.e_cost_model.Cost.marshal_ns);
    match Interp.run ~scratch p ~env:plan.pl_env ~now ~rng:t.e_rng with
    | Error (fault, stats) ->
      Tel.Counter.add t.m_interp_steps stats.Interp.steps;
      Cost.Accum.add_interp t.e_cost t.e_cost_model ~steps:stats.Interp.steps;
      if t.e_timing then
        Tel.Histogram.observe t.h_exec
          (int_of_float
             (float_of_int stats.Interp.steps *. t.e_cost_model.Cost.per_step_ns));
      record_fault t a.a_name fault now
    | Ok stats ->
      Tel.Counter.add t.m_interp_steps stats.Interp.steps;
      Cost.Accum.add_interp t.e_cost t.e_cost_model ~steps:stats.Interp.steps;
      if t.e_timing then
        Tel.Histogram.observe t.h_exec
          (int_of_float
             (float_of_int stats.Interp.steps *. t.e_cost_model.Cost.per_step_ns));
      marshal_out a plan out msg_id ~now)

let run_compiled t a c plan pkt md msg_id out ~now =
  rebind_plan plan a.a_state;
  match plan.pl_undersized with
  | Some fault -> record_fault t a.a_name fault now
  | None -> (
    marshal_in a plan pkt md msg_id ~now;
    Cost.Accum.add_marshal t.e_cost t.e_cost_model;
    if t.e_timing then
      Tel.Histogram.observe t.h_marshal (int_of_float t.e_cost_model.Cost.marshal_ns);
    Tel.Counter.inc t.m_compiled_invocations;
    match Eden_bytecode.Compiled.exec c ~env:plan.pl_env ~now ~rng:t.e_rng with
    | Some fault ->
      let steps = Eden_bytecode.Compiled.last_steps c in
      Tel.Counter.add t.m_interp_steps steps;
      Cost.Accum.add_compiled t.e_cost t.e_cost_model ~steps;
      if t.e_timing then
        Tel.Histogram.observe t.h_exec
          (int_of_float (float_of_int steps *. t.e_cost_model.Cost.compiled_step_ns));
      record_fault t a.a_name fault now
    | None ->
      let steps = Eden_bytecode.Compiled.last_steps c in
      Tel.Counter.add t.m_interp_steps steps;
      Cost.Accum.add_compiled t.e_cost t.e_cost_model ~steps;
      if t.e_timing then
        Tel.Histogram.observe t.h_exec
          (int_of_float (float_of_int steps *. t.e_cost_model.Cost.compiled_step_ns));
      marshal_out a plan out msg_id ~now)

let run_native t a f pkt md msg_id out ~now =
  Tel.Counter.inc t.m_native_invocations;
  Cost.Accum.add_native t.e_cost t.e_cost_model;
  if t.e_timing then
    Tel.Histogram.observe t.h_exec (int_of_float t.e_cost_model.Cost.native_ns);
  let ctx =
    {
      Native_ctx.nc_packet = pkt;
      nc_metadata = md;
      nc_msg_id = msg_id;
      nc_now = now;
      nc_rng = t.e_rng;
      nc_state = a.a_state;
      nc_out = out;
    }
  in
  f ctx

let max_table_hops = 8

let dispatch_engine t a pkt md msg_id out ~now =
  match a.a_engine with
  | E_interp (p, scratch, plan) -> run_interpreted t a p scratch plan pkt md msg_id out ~now
  | E_compiled (c, plan) -> run_compiled t a c plan pkt md msg_id out ~now
  | E_native f -> run_native t a f pkt md msg_id out ~now

let invoke_engine t a pkt md msg_id out ~now =
  match a.a_lock with
  | None -> dispatch_engine t a pkt md msg_id out ~now
  | Some m ->
    Mutex.lock m;
    (try dispatch_engine t a pkt md msg_id out ~now
     with exn ->
       Mutex.unlock m;
       raise exn);
    Mutex.unlock m

(* When the current packet is sampled by the flight recorder, bracket the
   engine with cost-accumulator reads to attribute the action stage. *)
let invoke_traced t a pkt md msg_id out ~now =
  if not t.e_trace_armed then invoke_engine t a pkt md msg_id out ~now
  else begin
    let before = Cost.Accum.overhead_total_ns t.e_cost in
    invoke_engine t a pkt md msg_id out ~now;
    match t.e_trace with
    | Some tr ->
      Tel.Trace.set_action tr a.a_name (Cost.Accum.overhead_total_ns t.e_cost -. before)
    | None -> ()
  end

(* Table walk with the per-flow match-action cache: the resolution of a
   class vector at a table — which rule fires and which installed action
   it names — is invariant until the controller changes the rule or
   action set, so it is memoised per table and the steady-state lookup
   is one hash probe with no list scan or pattern match. *)
let rec walk t ~now pkt md msg_id classes out table_id hops =
  if hops < max_table_hops && table_id >= 0 && table_id < Array.length t.e_caches then begin
    let cache = t.e_caches.(table_id) in
    let entry =
      match Hashtbl.find cache classes with
      | e ->
        Tel.Counter.inc t.m_cache_hits;
        e
      | exception Not_found ->
        Tel.Counter.inc t.m_cache_misses;
        let e =
          match Hashtbl.find_opt t.e_tables table_id with
          | None -> C_none
          | Some tbl -> (
            match Table.lookup tbl classes with
            | None -> C_none
            | Some rule -> (
              match Hashtbl.find_opt t.e_actions rule.Table.action with
              | None -> C_none
              | Some a -> C_run (rule, a)))
        in
        let len = Hashtbl.length cache in
        if len >= t.e_cache_cap then begin
          Tel.Counter.add t.m_cache_evictions len;
          Hashtbl.reset cache
        end;
        Hashtbl.replace cache classes e;
        e
    in
    match entry with
    | C_none -> ()
    | C_run (_rule, a) -> (
      match t.e_breaker with
      | None ->
        Tel.Counter.inc t.m_invocations;
        out.o_goto <- -1;
        invoke_traced t a pkt md msg_id out ~now;
        if out.o_goto >= 0 && out.o_goto <> table_id then
          walk t ~now pkt md msg_id classes out out.o_goto (hops + 1)
      | Some cfg ->
        (* Quarantined action: matching packets fall through to default
           forwarding — [out] keeps its reset values, exactly as if no
           rule had matched (fail-open, but for the whole action). *)
        if not (brk_admit a.a_brk ~now) then Tel.Counter.inc t.m_quarantined
        else begin
          Tel.Counter.inc t.m_invocations;
          out.o_goto <- -1;
          let faults_before = Tel.Counter.get t.m_faults in
          invoke_traced t a pkt md msg_id out ~now;
          brk_record a.a_brk cfg ~now
            ~faulted:(Tel.Counter.get t.m_faults > faults_before);
          if out.o_goto >= 0 && out.o_goto <> table_id then
            walk t ~now pkt md msg_id classes out out.o_goto (hops + 1)
        end)
  end

(* [charge_classify] is false for the non-leading packets of a batch
   message group: batching amortizes classification and the metadata
   handoff (paper 6, "Cycle budget"), not the action function itself. *)
let process_one t ~now ~charge_classify (pkt : Packet.t) =
  let cost_before = Cost.Accum.overhead_total_ns t.e_cost in
  Tel.Counter.inc t.m_packets;
  (match t.e_trace with
  | Some tr -> t.e_trace_armed <- Tel.Trace.begin_packet tr ~now ~pkt_id:pkt.Packet.id
  | None -> ());
  Cost.Accum.add_vanilla t.e_cost t.e_cost_model;
  let stage_md = pkt.Packet.metadata in
  let has_stage_metadata = Metadata.msg_id stage_md <> None in
  if has_stage_metadata && charge_classify then Cost.Accum.add_api t.e_cost t.e_cost_model;
  (* Enclave's own classification: the five-tuple stage. *)
  if charge_classify then Cost.Accum.add_classify t.e_cost t.e_cost_model;
  let flow_id = flow_msg_id t pkt.Packet.flow in
  let flow_md =
    Stage.classify ~msg_id:flow_id t.e_flow_stage
      (Builtin.flow_descriptor pkt.Packet.flow)
  in
  (* Stage metadata wins on conflicts (its msg id identifies the
     application message); flow classes are merged in. *)
  let md = Metadata.union flow_md stage_md in
  pkt.Packet.metadata <- md;
  let msg_id = match Metadata.msg_id md with Some id -> id | None -> flow_id in
  let classes = Metadata.classes md in
  (if t.e_trace_armed then
     match t.e_trace with
     | Some tr ->
       Tel.Trace.set_classify tr (Cost.Accum.overhead_total_ns t.e_cost -. cost_before)
     | None -> ());
  let out = t.e_out in
  reset_outputs out pkt;
  let walk_before =
    if t.e_trace_armed then Cost.Accum.overhead_total_ns t.e_cost else 0.0
  in
  walk t ~now pkt md msg_id classes out 0 0;
  t.e_last_cost_ns <- Cost.Accum.overhead_total_ns t.e_cost -. cost_before;
  if t.e_timing then Tel.Histogram.observe t.h_process (int_of_float t.e_last_cost_ns);
  (if t.e_trace_armed then
     match t.e_trace with
     | Some tr ->
       (* Match stage: walk time not attributed to the action engine
          (table/cache resolution plus per-packet bookkeeping). *)
       let walk_ns = Cost.Accum.overhead_total_ns t.e_cost -. walk_before in
       let residual = walk_ns -. Tel.Trace.current_action_ns tr in
       Tel.Trace.set_match tr (if residual > 0.0 then residual else 0.0)
     | None -> ());
  let finish_trace verdict =
    if t.e_trace_armed then begin
      (match t.e_trace with
      | Some tr -> Tel.Trace.finish tr ~verdict ~total_ns:t.e_last_cost_ns
      | None -> ());
      t.e_trace_armed <- false
    end
  in
  if not t.e_enforce then begin
    finish_trace Tel.Trace.Forwarded;
    Forward { queue = None; charge = Packet.wire_size pkt }
  end
  else if out.o_drop then begin
    Tel.Counter.inc t.m_dropped;
    finish_trace Tel.Trace.Dropped;
    Dropped "action function set Drop"
  end
  else begin
    pkt.Packet.priority <- out.o_priority;
    if out.o_path >= 0 then pkt.Packet.route_label <- Some out.o_path;
    let queue = if out.o_queue >= 0 then Some out.o_queue else None in
    let charge = if out.o_charge >= 0 then out.o_charge else Packet.wire_size pkt in
    finish_trace
      (match queue with Some q -> Tel.Trace.Queued q | None -> Tel.Trace.Forwarded);
    Forward { queue; charge }
  end

let process t ~now pkt = process_one t ~now ~charge_classify:true pkt

(* Batch processing (paper 6): split the batch into runs of packets that
   belong to the same message, amortizing per-packet classification and
   metadata handoff over each run.  Action-function semantics (state
   updates, outputs) stay strictly per packet and in order. *)
let process_batch t ~now pkts =
  (* The group key lives in two immediate ints (a tag plus the message
     id truncated to 63 bits, or the flow hash) so keying a packet
     allocates nothing; a truncation collision could at worst merge two
     charge groups, never change a decision.  [process_one] reuses the
     per-enclave invocation environment, so the whole batched path runs
     without per-packet environment allocation. *)
  let prev_tag = ref 0 (* 0 = start of batch, 1 = message id, 2 = flow hash *)
  and prev_key = ref 0 in
  List.map
    (fun (pkt : Packet.t) ->
      let id = Metadata.msg_id pkt.Packet.metadata in
      let tag = match id with Some _ -> 1 | None -> 2 in
      let key =
        match id with
        | Some id -> Int64.to_int id
        | None -> Addr.hash_five_tuple pkt.Packet.flow
      in
      let charge_classify = tag <> !prev_tag || key <> !prev_key in
      prev_tag := tag;
      prev_key := key;
      process_one t ~now ~charge_classify pkt)
    pkts

let note_message_end t ~msg_id =
  Hashtbl.iter (fun _ a -> State.msg_end a.a_state ~msg:msg_id) t.e_actions

let note_flow_closed t flow =
  match Addr.Flow_table.find_opt t.e_flow_ids flow with
  | None -> ()
  | Some id ->
    Addr.Flow_table.remove t.e_flow_ids flow;
    note_message_end t ~msg_id:id

let expire_messages t ~now ~idle =
  Hashtbl.fold (fun _ a acc -> acc + State.expire a.a_state ~now ~idle) t.e_actions 0
