(** The Eden enclave (paper §3.4).

    One enclave sits on each end host's send path, either in the OS
    stack or on a programmable NIC.  It owns:
    - a set of match-action tables keyed on class names ({!Table}),
    - installed action functions, interpreted bytecode or native closures,
    - per-action state stores with copy-in / copy-out semantics ({!State}),
    - its own five-tuple flow stage for packets with no stage metadata,
    - per-packet cost accounting ({!Cost}).

    The controller programs the enclave through the [install_*] /
    [add_*] / [set_global*] functions — the paper's enclave API
    (§3.4.5). The host network stack calls {!process} on every outgoing
    packet. *)

type placement = Os | Nic

val placement_to_string : placement -> string

(** What an action function decided about a packet. *)
type decision =
  | Forward of {
      queue : int option;  (** Rate-limited queue id, when steered. *)
      charge : int;  (** Bytes to charge that queue (Pulsar); wire size by default. *)
    }
  | Dropped of string  (** Reason (action set [Drop], or buffer overflow). *)

(** Context handed to native (hard-coded) action functions — the baseline
    the paper compares the interpreter against.  Native functions read
    and write the same state store and the same outputs, so the only
    difference from bytecode is the execution engine. *)
module Native_ctx : sig
  type t

  val packet : t -> Eden_base.Packet.t
  val metadata : t -> Eden_base.Metadata.t
  val msg_id : t -> int64
  val now : t -> Eden_base.Time.t
  val rng : t -> Eden_base.Rng.t
  val msg_get : t -> string -> default:int64 -> int64
  val msg_set : t -> string -> int64 -> unit
  val global_get : t -> string -> int64
  val global_set : t -> string -> int64 -> unit
  val global_array : t -> string -> int64 array
  val set_priority : t -> int -> unit
  val set_path : t -> int -> unit
  val set_drop : t -> unit
  val set_queue : t -> int -> unit
  val set_charge : t -> int -> unit
end

type impl =
  | Interpreted of Eden_bytecode.Program.t
  | Compiled of Eden_bytecode.Program.t
      (** Same bytecode, verified identically, but translated to threaded
          closure code at install time ({!Eden_bytecode.Compiled}) —
          observationally identical to [Interpreted], without the
          per-step dispatch cost. *)
  | Native of (Native_ctx.t -> unit)

(** Where a message-entity scalar comes from when marshalled into an
    invocation environment. *)
type msg_field_source =
  | Stateful of int64  (** Enclave message state; the payload is the default. *)
  | Metadata_int of string  (** An integer metadata field of the packet. *)
  | Metadata_flag of string * string
      (** [Metadata_flag (field, v)]: 1 when the (string) metadata field
          equals [v], else 0 — e.g. [("operation", "READ")]. *)

type install_spec = {
  i_name : string;
  i_impl : impl;
  i_msg_sources : (string * msg_field_source) list;
      (** Message fields not listed default to [Stateful 0L]. *)
}

type counters = {
  mutable packets : int;
  mutable dropped : int;
  mutable invocations : int;
  mutable native_invocations : int;
  mutable compiled_invocations : int;
  mutable faults : int;
  mutable interp_steps : int;  (** Steps retired by either bytecode engine. *)
  mutable quarantined : int;
      (** Packets that matched a rule whose action was quarantined by the
          circuit breaker and fell through to default forwarding. *)
  mutable cache_hits : int;  (** Match-action cache: class vector resolved by probe. *)
  mutable cache_misses : int;  (** Full table lookups (then memoised). *)
  mutable cache_evictions : int;
      (** Entries dropped when a table cache hit {!flow_cache_capacity}
          and was reset. *)
}

type fault_record = {
  fr_action : string;
  fr_fault : Eden_bytecode.Interp.fault;
  fr_time : Eden_base.Time.t;
}

type t

val create :
  ?placement:placement ->
  ?seed:int64 ->
  ?flow_cache_capacity:int ->
  host:Eden_base.Addr.host ->
  unit ->
  t
(** [flow_cache_capacity] bounds each table's per-flow match-action
    cache (default 4096 class vectors; must be positive). *)

val host : t -> Eden_base.Addr.host
val placement : t -> placement

val seed : t -> int64
(** The seed this enclave was created with; a sharded front-end derives
    per-shard streams from it ({!Eden_base.Rng.stream_seed}). *)

val flow_cache_capacity : t -> int

val flow_stage : t -> Eden_stage.Stage.t
(** The enclave's own packet-header stage; install five-tuple rule-sets
    here to classify traffic from unmodified applications. *)

val set_enforce : t -> bool -> unit
(** When [false], action functions run but their outputs are not applied
    to packets — the paper's "Baseline (Eden)" configuration that
    measures pure data-path overhead (§5.1). *)

val budget_ns : t -> float
(** Per-invocation admission budget (Eden-added worst-case ns). *)

val set_budget_ns : t -> float -> unit
(** Tighten or relax the admission budget for subsequent installs.
    Defaults to the placement's {!Cost.model.budget_ns}.
    @raise Invalid_argument when the budget is not positive. *)

(** {2 Enclave API (controller-facing, §3.4.5)} *)

(** Why an install was refused, for structured controller diagnostics. *)
type install_error =
  | Already_installed of string
  | Rejected_bytecode of Eden_bytecode.Verifier.error
      (** Stack discipline, read-only writes, or an unproved unchecked
          access. *)
  | Over_budget of { est_ns : float; budget_ns : float; steps : int }
      (** Static worst case (longest acyclic path, else [step_limit])
          costs more than this enclave's per-invocation budget. *)
  | Bad_contract of string list
      (** Environment-contract problems (unmarshallable packet fields,
          writable metadata-sourced message fields, ...). *)

val install_error_to_string : install_error -> string
val pp_install_error : Format.formatter -> install_error -> unit

val install_action_full : t -> install_spec -> (unit, install_error) result
(** Verifies interpreted bytecode, validates the environment contract
    (packet fields must be marshallable, metadata-sourced message fields
    must be read-only), runs cost admission against {!budget_ns}, and
    creates the action's state store. *)

val install_action : t -> install_spec -> (unit, string) result
(** [install_action_full] with the error rendered as a string. *)

val remove_action : t -> string -> int option
(** [None] when no such action is installed.  [Some n] on success, where
    [n] counts the table rules that named the action and were dropped
    with it — the tables never hold dangling references. *)

val action_names : t -> string list

val concurrency_of : t -> string -> [ `Parallel | `Per_message | `Serial ] option
(** Concurrency level derived from the program's access annotations
    (§3.4.4): read-only everywhere → parallel; message writes →
    one packet per message; global writes → serial. Native actions are
    conservatively serial. *)

val add_table : t -> int
(** Creates the next match-action table; returns its id (table 0 is
    created with the enclave and is where processing starts). *)

val add_table_rule :
  t ->
  ?table:int ->
  pattern:Eden_base.Class_name.Pattern.t ->
  action:string ->
  unit ->
  (int, string) result
(** Fails when the action is not installed or the table does not exist. *)

val remove_table_rule : t -> ?table:int -> int -> bool
val tables : t -> Table.t list

val set_global : t -> action:string -> string -> int64 -> (unit, string) result
val get_global : t -> action:string -> string -> int64 option
val set_global_array : t -> action:string -> string -> int64 array -> (unit, string) result
val get_global_array : t -> action:string -> string -> int64 array option

val counters : t -> counters
(** Snapshot of the data-path counters.  Deprecated: the counters now
    live in the telemetry registry ({!telemetry} / {!scrape}); this
    record is rebuilt from the registry cells on every call and is kept
    for existing callers.  Note the change from earlier releases: the
    returned record is a point-in-time copy, not a live view. *)

(** {2 Telemetry}

    Every enclave owns a {!Eden_telemetry.Registry.t} holding its
    data-path counters ([eden_enclave_*_total]) and, when timing is on
    (the default), cost-model stage histograms ([eden_enclave_process_ns],
    [eden_enclave_exec_ns], [eden_enclave_marshal_ns]).  Cells are plain
    int fields touched inline by the hot path; the registry is only
    walked at {!scrape} time.  Sharded replicas each keep their own
    registry and {!Eden_telemetry.Registry.merge} combines the scrapes. *)

val telemetry : t -> Eden_telemetry.Registry.t
val scrape : t -> Eden_telemetry.Registry.sample list

val set_timing : t -> bool -> unit
(** Toggle the stage-timing histograms (counters are always on).  Used
    by the bench harness to measure the instrumentation's own cost. *)

val timing : t -> bool

val set_trace : t -> Eden_telemetry.Trace.t option -> unit
(** Attach (or detach) a packet-path flight recorder.  With a recorder
    attached, each processed packet costs one sampling check; sampled
    packets additionally record classify/match/action stage timings and
    the decision into the recorder's ring. *)

val trace : t -> Eden_telemetry.Trace.t option

(** {2 Sharding runtime hooks}

    Used by {!Shard} to run one enclave replica per worker domain.  For
    an action whose state cannot be partitioned, the shard runtime
    points every replica at a single shared state store and arms a
    per-action mutex, serializing just that action while the rest of the
    data path stays lock-free.  Not intended for controllers. *)

val action_program : t -> string -> Eden_bytecode.Program.t option
(** The installed bytecode (either engine); [None] for native actions or
    when the action is absent. *)

val action_state : t -> string -> State.t option

val set_action_state : t -> string -> State.t -> (unit, string) result
(** Point the action at a (possibly shared) state store; its marshal
    plan rebinds before the next invocation. *)

val set_action_lock : t -> string -> Mutex.t option -> (unit, string) result
(** When set, every invocation of the action runs under the mutex. *)

val set_flow_id_offset : t -> int64 -> unit
(** Shift the base of this enclave's internally-assigned flow ids.
    Replicas sharing a state store (serialized actions) must draw flow
    ids from disjoint ranges, or two different flows on two shards would
    collide on one per-message state entry.  Call before any traffic. *)

(** {2 Graceful degradation (circuit breaker)} *)

(** Per-action breaker over the fault ring: a single faulting invocation
    fails open (§3.4.3); a {e persistently} faulting action is
    quarantined so matching packets stop paying for it and fall through
    to default forwarding, with a half-open probe after a cooldown to
    detect recovery (e.g. the controller fixed the state that made it
    fault). *)
type breaker_config = {
  br_window : int;  (** Sliding window of invocation outcomes, 1–62. *)
  br_min_samples : int;  (** Don't judge before this many outcomes. *)
  br_threshold : float;  (** Fault fraction in (0, 1] that trips it. *)
  br_cooldown : Eden_base.Time.t;  (** Quarantine length before the probe. *)
}

val default_breaker : breaker_config

val set_breaker : t -> breaker_config option -> unit
(** Enable (or disable with [None], the initial state) the breaker for
    every installed and future action; resets all breaker windows.  With
    the breaker off the data path is byte-for-byte the pre-existing one.
    @raise Invalid_argument on an out-of-range configuration. *)

val breaker : t -> breaker_config option

val breaker_state : t -> string -> [ `Closed | `Open | `Half_open ] option
(** [None] when no such action is installed or no breaker is
    configured. *)

val breaker_trips : t -> string -> int
(** How many times the named action's breaker has opened. *)

(** {2 Soft state: restart, snapshot, restore} *)

val restart : t -> unit
(** Model a host/enclave reboot honestly: drop every installed action,
    every table (recreating the empty table 0), all action state, flow
    ids, caches, counters and the fault ring.  The enclave keeps its
    identity (host, placement, seed, budget) and counts restarts; the
    controller must re-converge it via reconciliation. *)

val restarts : t -> int

(** Programmed configuration, captured for restart injection and for the
    reconciliation plane's desired-vs-actual diff. *)
type snapshot = {
  sn_actions : install_spec list;  (** Install order. *)
  sn_globals : (string * (string * int64) list) list;
      (** Per action: written global scalars, sorted by name. *)
  sn_arrays : (string * (string * int64 array) list) list;
      (** Per action: bound global arrays (copied), sorted by name. *)
  sn_rules : (int * Table.rule list) list;  (** Per table id, match order. *)
}

val snapshot : t -> snapshot

val restore : t -> snapshot -> (unit, string) result
(** [restart] then replay the snapshot (actions, state, tables, rules).
    Counts as a restart. *)

val config_equal : snapshot -> snapshot -> bool
(** Configuration equivalence: same actions (name, engine kind, message
    sources) in the same install order, same state bindings, same
    (pattern, action) rule sequence per table.  Rule ids are ignored —
    they are allocation artifacts, not configuration. *)

val snapshot_summary : snapshot -> string

val faults : t -> fault_record list
(** Most recent first; bounded (a fixed-size {!Eden_telemetry.Ring}
    keeps recording O(1) regardless of fault volume).  Deprecated alias
    for reading the telemetry fault log; the fault {e count} lives in
    the registry as [eden_enclave_faults_total]. *)

val cost : t -> Cost.Accum.t
val cost_model : t -> Cost.model

val last_process_cost_ns : t -> float
(** Eden-added CPU nanoseconds charged by the most recent {!process}
    call (classification, marshalling, interpretation/native execution).
    The simulated host turns this into data-path latency, so interpreted
    and native configurations genuinely differ on the wire. *)

(** {2 Data path} *)

val process : t -> now:Eden_base.Time.t -> Eden_base.Packet.t -> decision
(** Classify, match, execute, apply.  A faulting action function leaves
    the packet unmodified and forwarded (fail-open), with the fault
    recorded; the rest of the system is unaffected (§3.4.3). *)

val process_batch :
  t -> now:Eden_base.Time.t -> Eden_base.Packet.t list -> decision list
(** The paper's batching extension (§6): consecutive packets of the same
    message share one classification / metadata-handoff charge, so IO
    batching lowers the per-packet cycle cost.  Decisions, state updates
    and packet mutations are identical to calling {!process} on each
    packet in order. *)

val note_message_end : t -> msg_id:int64 -> unit
(** Drop per-message state for a completed message in every action. *)

val note_flow_closed : t -> Eden_base.Addr.five_tuple -> unit
(** Release the flow's enclave-assigned message id and state. *)

val expire_messages : t -> now:Eden_base.Time.t -> idle:Eden_base.Time.t -> int
