module Addr = Eden_base.Addr
module Packet = Eden_base.Packet
module Metadata = Eden_base.Metadata
module Time = Eden_base.Time
module Rng = Eden_base.Rng
module P = Eden_bytecode.Program
module Shardclass = Eden_bytecode.Shardclass
module Tel = Eden_telemetry

type event =
  | Ev_packet of Time.t * Packet.t
  | Ev_set_global of { action : string; name : string; value : int64 }
  | Ev_set_global_array of { action : string; name : string; values : int64 array }

(* Ring items.  [I_packet] carries the result array of its stream so a
   worker can publish the decision by index; [I_fire] is the
   measurement path (decision discarded); control items are broadcast
   to every ring so each shard applies them at its own deterministic
   stream position. *)
type item =
  | I_none
  | I_packet of {
      pkt : Packet.t;
      now : Time.t;
      idx : int;
      res : Enclave.decision option array;
    }
  | I_fire of { pkt : Packet.t; now : Time.t }
  | I_set_global of { action : string; name : string; value : int64 }
  | I_set_global_array of { action : string; name : string; values : int64 array }
  | I_stop

type worker = {
  w_enclave : Enclave.t;
  w_ring : item Spsc.t;
  w_processed : int Atomic.t;
  mutable w_pushed : int;  (* feeder-thread private *)
  mutable w_domain : unit Domain.t option;
  w_errors : int Atomic.t;
  (* Parking spot for a feeder waiting in [drain]. *)
  w_lock : Mutex.t;
  w_done : Condition.t;
  w_feeder_waiting : bool Atomic.t;
}

type t = {
  s_workers : worker array;
  s_parallel : bool;
  s_batch : int;
  s_classes : (string * Shardclass.klass) list;  (* install order *)
  s_locks : (string, Mutex.t) Hashtbl.t;  (* serialized actions *)
  s_delta : (string * string, int64 ref) Hashtbl.t;
      (* (action, field) -> base value for the delta merge; updated at
         enqueue time, i.e. at the event's sequential stream position *)
  mutable s_stopped : bool;
  (* Front-end telemetry.  The enqueue-side cells are touched only by
     the (single) feeder thread; worker-side numbers (parks, per-domain
     processed) are synced from their racy sources at scrape time. *)
  s_tel : Tel.Registry.t;
  sm_enqueued : Tel.Counter.t;
  sh_occupancy : Tel.Histogram.t;  (* ring depth seen at each enqueue *)
  sm_bp_parks : Tel.Counter.t;
  sm_cons_parks : Tel.Counter.t;
  sg_domains : Tel.Gauge.t;
  sm_domain_processed : Tel.Counter.t array;  (* per worker domain *)
}

let shards t = Array.length t.s_workers
let parallel t = t.s_parallel
let classification t = t.s_classes

(* 64-bit finalizer (murmur3) — RSS-style spreading of correlated keys. *)
let mix_int64 v =
  let v = Int64.mul (Int64.logxor v (Int64.shift_right_logical v 33)) 0xFF51AFD7ED558CCDL in
  let v = Int64.mul (Int64.logxor v (Int64.shift_right_logical v 33)) 0xC4CEB9FE1A85EC53L in
  Int64.logxor v (Int64.shift_right_logical v 33)

(* Mirrors the grouping key of [Enclave.process_batch]: the stage
   message id when the packet arrives with one, the flow five-tuple
   otherwise — so every packet of one logical key lands on one shard,
   in stream order, and per-key state evolves exactly as sequentially. *)
let route t (pkt : Packet.t) =
  let n = Array.length t.s_workers in
  if n = 1 then 0
  else
    let key =
      match Metadata.msg_id pkt.Packet.metadata with
      | Some id -> id
      | None -> Int64.of_int (Addr.hash_five_tuple pkt.Packet.flow)
    in
    Int64.to_int (Int64.rem (Int64.logand (mix_int64 key) Int64.max_int) (Int64.of_int n))

(* ------------------------------------------------------------------ *)
(* Item execution — shared verbatim by worker domains and serial replay. *)

let apply_set_global t w ~action ~name ~value =
  match Hashtbl.find_opt t.s_locks action with
  | Some m ->
    (* Shared store: serialize against in-flight invocations.  Every
       shard re-applies the same value, which is idempotent. *)
    Mutex.lock m;
    ignore (Enclave.set_global w.w_enclave ~action name value);
    Mutex.unlock m
  | None -> ignore (Enclave.set_global w.w_enclave ~action name value)

let apply_set_global_array t w ~action ~name ~values =
  (* Each replica gets its own copy — live arrays must never alias
     across shards. *)
  match Hashtbl.find_opt t.s_locks action with
  | Some m ->
    Mutex.lock m;
    ignore (Enclave.set_global_array w.w_enclave ~action name (Array.copy values));
    Mutex.unlock m
  | None -> ignore (Enclave.set_global_array w.w_enclave ~action name (Array.copy values))

let exec_item t w = function
  | I_packet { pkt; now; idx; res } -> res.(idx) <- Some (Enclave.process w.w_enclave ~now pkt)
  | I_fire { pkt; now } -> ignore (Enclave.process w.w_enclave ~now pkt)
  | I_set_global { action; name; value } -> apply_set_global t w ~action ~name ~value
  | I_set_global_array { action; name; values } ->
    apply_set_global_array t w ~action ~name ~values
  | I_none | I_stop -> ()

let worker_loop t w batch =
  let buf = Array.make batch I_none in
  let stop = ref false in
  while not !stop do
    let n = Spsc.pop_batch_wait w.w_ring buf in
    for i = 0 to n - 1 do
      (match buf.(i) with
      | I_stop -> stop := true
      | item -> ( try exec_item t w item with _ -> Atomic.incr w.w_errors));
      buf.(i) <- I_none
    done;
    ignore (Atomic.fetch_and_add w.w_processed n);
    if Atomic.get w.w_feeder_waiting then begin
      Mutex.lock w.w_lock;
      Condition.broadcast w.w_done;
      Mutex.unlock w.w_lock
    end
  done

(* ------------------------------------------------------------------ *)
(* Creation *)

let default_shards () = max 1 (Domain.recommended_domain_count () - 1)

let create ?shards ?(parallel = true) ?(ring_capacity = 1024) ?(batch = 64) source =
  let n = match shards with Some n -> n | None -> default_shards () in
  if n < 1 || n > 64 then Error "Shard.create: shards must be in [1, 64]"
  else if ring_capacity < 2 then Error "Shard.create: ring_capacity must be >= 2"
  else if batch < 1 then Error "Shard.create: batch must be positive"
  else begin
    let snap = Enclave.snapshot source in
    let names = List.map (fun (s : Enclave.install_spec) -> s.Enclave.i_name) snap.Enclave.sn_actions in
    let classes =
      List.map
        (fun name ->
          match Enclave.action_program source name with
          | Some p -> (name, Shardclass.classify p)
          | None -> (name, Shardclass.Serialized) (* native: opaque effects *))
        names
    in
    let mk_replica i =
      let r =
        Enclave.create
          ~placement:(Enclave.placement source)
          ~seed:(Rng.stream_seed (Enclave.seed source) i)
          ~flow_cache_capacity:(Enclave.flow_cache_capacity source)
          ~host:(Enclave.host source) ()
      in
      Enclave.set_budget_ns r (Enclave.budget_ns source);
      match Enclave.restore r snap with
      | Ok () ->
        (* Disjoint flow-id ranges per replica: serialized actions share
           one state store keyed (in part) by enclave-assigned flow ids,
           so two shards must never hand out the same id to different
           flows.  2^30 ids per shard is far beyond any replica's flow
           table. *)
        Enclave.set_flow_id_offset r (Int64.mul (Int64.of_int i) (Int64.shift_left 1L 30));
        Ok r
      | Error e -> Error (Printf.sprintf "Shard.create: replica %d: %s" i e)
    in
    let rec build i acc =
      if i = n then Ok (List.rev acc)
      else
        match mk_replica i with
        | Error _ as e -> e
        | Ok r -> build (i + 1) (r :: acc)
    in
    match build 0 [] with
    | Error e -> Error e
    | Ok replicas ->
      let replicas = Array.of_list replicas in
      let s_locks = Hashtbl.create 8 in
      let s_delta = Hashtbl.create 8 in
      let wire_errors = ref [] in
      List.iter
        (fun (name, klass) ->
          match klass with
          | Shardclass.Sharded -> ()
          | Shardclass.Sharded_delta slots -> (
            match Enclave.action_program replicas.(0) name with
            | None -> wire_errors := name :: !wire_errors
            | Some p ->
              List.iter
                (fun slot ->
                  let field = p.P.scalar_slots.(slot).P.s_name in
                  let base = Enclave.get_global replicas.(0) ~action:name field in
                  Hashtbl.replace s_delta (name, field)
                    (ref (Option.value base ~default:0L)))
                slots)
          | Shardclass.Serialized ->
            let m = Mutex.create () in
            Hashtbl.replace s_locks name m;
            let shared =
              match Enclave.action_state replicas.(0) name with
              | Some st -> st
              | None -> State.create () (* unreachable: action just restored *)
            in
            Array.iteri
              (fun i r ->
                if i > 0 then
                  if Result.is_error (Enclave.set_action_state r name shared) then
                    wire_errors := name :: !wire_errors;
                if Result.is_error (Enclave.set_action_lock r name (Some m)) then
                  wire_errors := name :: !wire_errors)
              replicas)
        classes;
      match !wire_errors with
      | e :: _ -> Error (Printf.sprintf "Shard.create: failed to wire action %S" e)
      | [] ->
        let workers =
          Array.map
            (fun r ->
              {
                w_enclave = r;
                w_ring = Spsc.create ~dummy:I_none ring_capacity;
                w_processed = Atomic.make 0;
                w_pushed = 0;
                w_domain = None;
                w_errors = Atomic.make 0;
                w_lock = Mutex.create ();
                w_done = Condition.create ();
                w_feeder_waiting = Atomic.make false;
              })
            replicas
        in
        let tel = Tel.Registry.create () in
        let t =
          { s_workers = workers; s_parallel = parallel; s_batch = batch; s_classes = classes;
            s_locks; s_delta; s_stopped = false;
            s_tel = tel;
            sm_enqueued =
              Tel.Registry.counter tel ~help:"Items enqueued to worker rings"
                "eden_shard_enqueued_total";
            sh_occupancy =
              Tel.Registry.histogram tel ~help:"Ring occupancy seen at enqueue"
                "eden_shard_ring_occupancy";
            sm_bp_parks =
              Tel.Registry.counter tel ~help:"Feeder parks on a full ring"
                "eden_shard_backpressure_parks_total";
            sm_cons_parks =
              Tel.Registry.counter tel ~help:"Worker parks on an empty ring"
                "eden_shard_consumer_parks_total";
            sg_domains = Tel.Registry.gauge tel ~help:"Worker domains" "eden_shard_domains";
            sm_domain_processed =
              Array.init n (fun i ->
                  Tel.Registry.counter tel
                    ~help:(Printf.sprintf "Items processed by worker domain %d" i)
                    (Printf.sprintf "eden_shard_domain%d_processed_total" i));
          }
        in
        Tel.Gauge.set_int t.sg_domains n;
        if parallel then
          Array.iter
            (fun w -> w.w_domain <- Some (Domain.spawn (fun () -> worker_loop t w batch)))
            workers;
        Ok t
  end

(* ------------------------------------------------------------------ *)
(* Feeding, draining, streams *)

let check_live t name = if t.s_stopped then invalid_arg (name ^ ": shard runtime stopped")

let enqueue t w item =
  Tel.Histogram.observe t.sh_occupancy (Spsc.length w.w_ring);
  Tel.Counter.inc t.sm_enqueued;
  Spsc.push w.w_ring item;
  w.w_pushed <- w.w_pushed + 1

let drain_worker w =
  if Atomic.get w.w_processed < w.w_pushed then begin
    let spins = ref 4096 in
    while Atomic.get w.w_processed < w.w_pushed && !spins > 0 do
      decr spins;
      Domain.cpu_relax ()
    done;
    if Atomic.get w.w_processed < w.w_pushed then begin
      Mutex.lock w.w_lock;
      Atomic.set w.w_feeder_waiting true;
      while Atomic.get w.w_processed < w.w_pushed do
        Condition.wait w.w_done w.w_lock
      done;
      Atomic.set w.w_feeder_waiting false;
      Mutex.unlock w.w_lock
    end
  end

let drain t = if t.s_parallel then Array.iter drain_worker t.s_workers

(* Record the new base of a delta accumulator at the event's sequential
   position: a [set_global] overwrite discards deltas accumulated before
   it on every shard (each shard applies the overwrite in-band), so the
   merge base moves with it. *)
let note_ctl_base t = function
  | Ev_set_global { action; name; value } -> (
    match Hashtbl.find_opt t.s_delta (action, name) with
    | Some base -> base := value
    | None -> ())
  | Ev_set_global_array _ | Ev_packet _ -> ()

let dispatch t res idx ev =
  match ev with
  | Ev_packet (now, pkt) ->
    let w = t.s_workers.(route t pkt) in
    let item = I_packet { pkt; now; idx; res } in
    if t.s_parallel then enqueue t w item else exec_item t w item
  | Ev_set_global { action; name; value } ->
    note_ctl_base t ev;
    let item = I_set_global { action; name; value } in
    Array.iter (fun w -> if t.s_parallel then enqueue t w item else exec_item t w item) t.s_workers
  | Ev_set_global_array { action; name; values } ->
    note_ctl_base t ev;
    let item = I_set_global_array { action; name; values } in
    Array.iter (fun w -> if t.s_parallel then enqueue t w item else exec_item t w item) t.s_workers

let process_stream t events =
  check_live t "Shard.process_stream";
  let res = Array.make (Array.length events) None in
  Array.iteri (fun idx ev -> dispatch t res idx ev) events;
  drain t;
  res

let feed t ~now pkt =
  check_live t "Shard.feed";
  let w = t.s_workers.(route t pkt) in
  let item = I_fire { pkt; now } in
  if t.s_parallel then enqueue t w item else exec_item t w item

(* ------------------------------------------------------------------ *)
(* Merged observation *)

let counters t =
  drain t;
  let acc =
    {
      Enclave.packets = 0;
      dropped = 0;
      invocations = 0;
      native_invocations = 0;
      compiled_invocations = 0;
      faults = 0;
      interp_steps = 0;
      quarantined = 0;
      cache_hits = 0;
      cache_misses = 0;
      cache_evictions = 0;
    }
  in
  Array.iter
    (fun w ->
      let c = Enclave.counters w.w_enclave in
      acc.Enclave.packets <- acc.Enclave.packets + c.Enclave.packets;
      acc.Enclave.dropped <- acc.Enclave.dropped + c.Enclave.dropped;
      acc.Enclave.invocations <- acc.Enclave.invocations + c.Enclave.invocations;
      acc.Enclave.native_invocations <-
        acc.Enclave.native_invocations + c.Enclave.native_invocations;
      acc.Enclave.compiled_invocations <-
        acc.Enclave.compiled_invocations + c.Enclave.compiled_invocations;
      acc.Enclave.faults <- acc.Enclave.faults + c.Enclave.faults;
      acc.Enclave.interp_steps <- acc.Enclave.interp_steps + c.Enclave.interp_steps;
      acc.Enclave.quarantined <- acc.Enclave.quarantined + c.Enclave.quarantined;
      acc.Enclave.cache_hits <- acc.Enclave.cache_hits + c.Enclave.cache_hits;
      acc.Enclave.cache_misses <- acc.Enclave.cache_misses + c.Enclave.cache_misses;
      acc.Enclave.cache_evictions <- acc.Enclave.cache_evictions + c.Enclave.cache_evictions)
    t.s_workers;
  acc

let get_global t ~action name =
  drain t;
  match Hashtbl.find_opt t.s_delta (action, name) with
  | Some base ->
    let b = !base in
    let sum =
      Array.fold_left
        (fun acc w ->
          match Enclave.get_global w.w_enclave ~action name with
          | Some v -> Int64.add acc (Int64.sub v b)
          | None -> acc)
        0L t.s_workers
    in
    Some (Int64.add b sum)
  | None ->
    (* Sharded read-only globals are identical on every replica;
       serialized globals live in the one shared store. *)
    Enclave.get_global t.s_workers.(0).w_enclave ~action name

let get_global_array t ~action name =
  drain t;
  Enclave.get_global_array t.s_workers.(0).w_enclave ~action name

let backpressure_waits t =
  Array.fold_left (fun acc w -> acc + Spsc.backpressure_waits w.w_ring) 0 t.s_workers

let consumer_parks t =
  Array.fold_left (fun acc w -> acc + Spsc.consumer_parks w.w_ring) 0 t.s_workers

let worker_errors t =
  Array.fold_left (fun acc w -> acc + Atomic.get w.w_errors) 0 t.s_workers

(* ------------------------------------------------------------------ *)
(* Telemetry *)

(* Pull worker-side numbers (owned by other domains, read racily like
   [counters]) into the front-end registry cells. *)
let sync_telemetry t =
  Tel.Gauge.set_int t.sg_domains (Array.length t.s_workers);
  Tel.Counter.set t.sm_bp_parks (backpressure_waits t);
  Tel.Counter.set t.sm_cons_parks (consumer_parks t);
  Array.iteri
    (fun i w -> Tel.Counter.set t.sm_domain_processed.(i) (Atomic.get w.w_processed))
    t.s_workers

let scrape t =
  drain t;
  sync_telemetry t;
  Tel.Registry.merge
    (Tel.Registry.scrape t.s_tel
    :: Array.to_list (Array.map (fun w -> Enclave.scrape w.w_enclave) t.s_workers))

let worker_scrape t i =
  drain t;
  Enclave.scrape t.s_workers.(i).w_enclave

let set_timing t b = Array.iter (fun w -> Enclave.set_timing w.w_enclave b) t.s_workers

let attach_traces t ?(capacity = 256) ~every () =
  Array.iter
    (fun w ->
      Enclave.set_trace w.w_enclave
        (Some
           (Tel.Trace.create ~seed:(Enclave.seed w.w_enclave) ~every ~capacity ())))
    t.s_workers

let detach_traces t = Array.iter (fun w -> Enclave.set_trace w.w_enclave None) t.s_workers

let worker_trace t i = Enclave.trace t.s_workers.(i).w_enclave

let stop t =
  if not t.s_stopped then begin
    t.s_stopped <- true;
    if t.s_parallel then begin
      Array.iter (fun w -> enqueue t w I_stop) t.s_workers;
      Array.iter
        (fun w ->
          match w.w_domain with
          | Some d ->
            Domain.join d;
            w.w_domain <- None
          | None -> ())
        t.s_workers
    end
  end
