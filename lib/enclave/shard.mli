(** Multicore sharded enclave data path.

    The paper's hardware enclave spreads action functions across dozens
    of NIC microengines; this front-end does the software equivalent:
    packets are hashed RSS-style on their stage message id (when
    present) or flow five-tuple onto N worker domains, each owning a
    full enclave replica — its own flow stage, match-action caches,
    per-message state, counters and RNG stream — fed through
    fixed-capacity SPSC rings ({!Spsc}) with batched dequeue.

    Install-time effect footprints ({!Eden_bytecode.Shardclass}) decide,
    per action, how its state partitions:

    - {e sharded} (no global writes): run-to-completion on the owning
      shard, zero locks; global read-only state is replicated at
      creation and republished to every shard, in stream position, by
      {!Ev_set_global}/{!Ev_set_global_array} events (epoch semantics).
    - {e sharded-delta} (all global writes proved pure accumulators):
      each shard accumulates privately; {!get_global} merges as
      [base + Σ (shard − base)].  Decisions are exactly sequential.
    - {e serialized} (anything else, including native actions): every
      replica shares one state store and the action runs under a
      per-action mutex — only the offending action serializes, the rest
      of the data path stays lock-free.  Invocation {e order} across
      shards is scheduling-dependent for such actions, so equivalence
      with sequential execution holds for the merged final state only up
      to commutative reordering.

    Routing is per-key FIFO: packets of one message (or of one
    metadata-less flow) land on one shard in stream order, so per-key
    state evolves exactly as sequentially.  With [parallel:false] the
    same replicas, routing and per-shard RNG streams execute inline in
    stream order — the reference side of the differential harness, and
    the only mode rand-using programs can be compared against (shard
    RNG streams differ from the sequential enclave's single stream by
    construction).

    Known limits, by design: custom flow-stage rule-sets beyond the
    built-in ALL rule are not replicated (snapshots do not capture
    them), breaker state is per-replica, and the discrete-event
    simulator stays single-threaded — this front-end serves the
    standalone throughput driver. *)

type t

type event =
  | Ev_packet of Eden_base.Time.t * Eden_base.Packet.t
  | Ev_set_global of { action : string; name : string; value : int64 }
  | Ev_set_global_array of { action : string; name : string; values : int64 array }
      (** Control events are applied by every shard at the exact stream
          position the event occupies in that shard's feed — packets
          enqueued before it see the old epoch, packets after it the new
          one, per shard deterministically. *)

val create :
  ?shards:int ->
  ?parallel:bool ->
  ?ring_capacity:int ->
  ?batch:int ->
  Enclave.t ->
  (t, string) result
(** [create source] replicates [source]'s programmed configuration
    (snapshot/restore) onto [shards] replicas (default: available cores
    minus one for the feeder, at least 1), seeds replica [i]'s RNG with
    [Rng.stream_seed (Enclave.seed source) i], classifies every
    installed action and wires shared stores + locks for serialized
    ones.  [parallel] (default [true]) spawns the worker domains;
    [false] builds the inline serial-replay reference.  [ring_capacity]
    (default 1024) and [batch] (default 64) size each worker's ring and
    dequeue batch.  The source enclave itself is left untouched and
    unshared. *)

val shards : t -> int
val parallel : t -> bool

val classification : t -> (string * Eden_bytecode.Shardclass.klass) list
(** Install-order classification actually wired at creation (native
    actions report [Serialized]). *)

val process_stream : t -> event array -> Enclave.decision option array
(** Feed the whole stream, wait for every shard to drain, and return
    per-event decisions ([None] for control events).  Routing, per-shard
    execution and control-event application are identical in parallel
    and serial mode. *)

val feed : t -> now:Eden_base.Time.t -> Eden_base.Packet.t -> unit
(** Fire-and-forget enqueue for throughput measurement: the decision is
    discarded, backpressure still applies.  Pair with {!drain}. *)

val drain : t -> unit
(** Block until every enqueued item has been executed. *)

val counters : t -> Enclave.counters
(** Drains, then returns the field-wise sum over all replicas (a fresh
    record).  Note per-shard match-action caches warm independently, so
    cache hit/miss splits differ from a sequential run even when every
    decision is identical. *)

val get_global : t -> action:string -> string -> int64 option
(** Drains, then reads the merged value: delta accumulators merge as
    [base + Σ (shard − base)]; all other globals are identical across
    replicas (or live in the one shared store) and read directly. *)

val get_global_array : t -> action:string -> string -> int64 array option

val backpressure_waits : t -> int
(** Total producer parks on full rings (0 in serial mode). *)

val consumer_parks : t -> int
(** Total worker parks on empty rings (0 in serial mode). *)

(** {2 Telemetry}

    Each replica owns its own registry (contention-free hot path); the
    front-end adds ring/feeder metrics ([eden_shard_*]: enqueue count,
    occupancy histogram, park counters, per-domain processed).  [scrape]
    drains, syncs worker-side numbers, and merges all registries into
    cluster totals. *)

val scrape : t -> Eden_telemetry.Registry.sample list

val worker_scrape : t -> int -> Eden_telemetry.Registry.sample list
(** One replica's scrape (drains first); index in [\[0, shards)]. *)

val set_timing : t -> bool -> unit
(** Toggle stage-timing histograms on every replica. *)

val attach_traces : t -> ?capacity:int -> every:int -> unit -> unit
(** Attach a flight recorder to every replica, seeded with the replica's
    own [Rng.stream_seed]-derived seed so sampling is deterministic per
    shard (default [capacity] 256). *)

val detach_traces : t -> unit
val worker_trace : t -> int -> Eden_telemetry.Trace.t option

val worker_errors : t -> int
(** Exceptions escaping {!Enclave.process} on workers — always 0 unless
    something is badly wrong; surfaced so tests can assert it. *)

val stop : t -> unit
(** Deliver in-band stop tokens and join the worker domains; idempotent.
    The instance rejects further streams afterwards. *)
