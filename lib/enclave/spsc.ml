(* SPSC ring on a power-of-two slot array with monotonically increasing
   head/tail counters (classic Lamport queue).  The producer owns
   [tail], the consumer owns [head]; each side reads the other's counter
   atomically, which — under the OCaml memory model — also publishes the
   non-atomic slot writes that preceded the counter bump.

   Parking protocol (both directions): the would-be sleeper takes the
   lock, raises its [*_waiting] flag (an [Atomic] so the flag write and
   the counter read on the other side are totally ordered), re-checks
   the counters, and only then waits.  The wake side bumps its counter
   first and reads the flag second; sequential consistency of atomics
   makes "sleeper misses the counter AND waker misses the flag"
   impossible, and the broadcast itself happens under the lock, so no
   wakeup is lost.  The fast path costs no lock at all. *)

type 'a t = {
  slots : 'a array;
  mask : int;
  dummy : 'a;
  head : int Atomic.t;  (* next slot to pop *)
  tail : int Atomic.t;  (* next slot to push *)
  lock : Mutex.t;
  not_empty : Condition.t;
  not_full : Condition.t;
  cons_waiting : bool Atomic.t;
  prod_waiting : bool Atomic.t;
  mutable bp_waits : int;  (* producer-side, read racily for stats *)
  mutable cons_parks : int;  (* consumer-side, read racily for stats *)
}

let create ~dummy capacity =
  if capacity < 1 then invalid_arg "Spsc.create: capacity must be positive";
  let cap = ref 2 in
  while !cap < capacity do
    cap := !cap * 2
  done;
  {
    slots = Array.make !cap dummy;
    mask = !cap - 1;
    dummy;
    head = Atomic.make 0;
    tail = Atomic.make 0;
    lock = Mutex.create ();
    not_empty = Condition.create ();
    not_full = Condition.create ();
    cons_waiting = Atomic.make false;
    prod_waiting = Atomic.make false;
    bp_waits = 0;
    cons_parks = 0;
  }

let capacity t = t.mask + 1
let length t = Atomic.get t.tail - Atomic.get t.head

let spin_budget = 256

let wake t flag cond =
  if Atomic.get flag then begin
    Mutex.lock t.lock;
    Condition.broadcast cond;
    Mutex.unlock t.lock
  end

let try_push t v =
  let tl = Atomic.get t.tail in
  if tl - Atomic.get t.head > t.mask then false
  else begin
    t.slots.(tl land t.mask) <- v;
    Atomic.set t.tail (tl + 1);
    wake t t.cons_waiting t.not_empty;
    true
  end

let push t v =
  let rec attempt spins =
    if try_push t v then ()
    else if spins > 0 then begin
      Domain.cpu_relax ();
      attempt (spins - 1)
    end
    else begin
      Mutex.lock t.lock;
      Atomic.set t.prod_waiting true;
      t.bp_waits <- t.bp_waits + 1;
      while Atomic.get t.tail - Atomic.get t.head > t.mask do
        Condition.wait t.not_full t.lock
      done;
      Atomic.set t.prod_waiting false;
      Mutex.unlock t.lock;
      attempt spin_budget
    end
  in
  attempt spin_budget

let pop_batch t buf =
  let hd = Atomic.get t.head in
  let available = Atomic.get t.tail - hd in
  let n = min available (Array.length buf) in
  if n > 0 then begin
    for i = 0 to n - 1 do
      let idx = (hd + i) land t.mask in
      buf.(i) <- t.slots.(idx);
      t.slots.(idx) <- t.dummy
    done;
    Atomic.set t.head (hd + n);
    wake t t.prod_waiting t.not_full
  end;
  n

let pop_batch_wait t buf =
  if Array.length buf = 0 then invalid_arg "Spsc.pop_batch_wait: empty buffer";
  let rec attempt spins =
    let n = pop_batch t buf in
    if n > 0 then n
    else if spins > 0 then begin
      Domain.cpu_relax ();
      attempt (spins - 1)
    end
    else begin
      Mutex.lock t.lock;
      Atomic.set t.cons_waiting true;
      t.cons_parks <- t.cons_parks + 1;
      while Atomic.get t.tail = Atomic.get t.head do
        Condition.wait t.not_empty t.lock
      done;
      Atomic.set t.cons_waiting false;
      Mutex.unlock t.lock;
      attempt spin_budget
    end
  in
  attempt spin_budget

let backpressure_waits t = t.bp_waits
let consumer_parks t = t.cons_parks
