(** Fixed-capacity single-producer / single-consumer ring buffer.

    The conduit between the sharding front-end's control thread and one
    worker domain: the producer publishes slots with one atomic store,
    the consumer drains in batches with one atomic load per batch, and
    both fall back from a bounded spin to parking on a condition
    variable — so an idle worker costs nothing and a full ring exerts
    blocking backpressure instead of dropping.

    Exactly one domain may push and exactly one may pop; the two sides
    need not be distinct domains (a single-threaded user sees a plain
    bounded FIFO). *)

type 'a t

val create : dummy:'a -> int -> 'a t
(** [create ~dummy capacity] — capacity is rounded up to a power of two
    (at least 2).  [dummy] back-fills consumed slots so the ring never
    retains references to drained items.
    @raise Invalid_argument when [capacity < 1]. *)

val capacity : 'a t -> int

val length : 'a t -> int
(** Racy snapshot of the number of buffered items. *)

val try_push : 'a t -> 'a -> bool
(** [false] when full; never blocks. *)

val push : 'a t -> 'a -> unit
(** Blocks while full: a bounded spin, then parks until the consumer
    makes room (counted in {!backpressure_waits}). *)

val pop_batch : 'a t -> 'a array -> int
(** Drain up to [Array.length buf] items into [buf.(0 ..)]; returns how
    many (0 when empty); never blocks. *)

val pop_batch_wait : 'a t -> 'a array -> int
(** Like {!pop_batch} but blocks (spin, then park) until at least one
    item is available.  Requires a non-empty buffer array. *)

val backpressure_waits : 'a t -> int
(** How many times the producer had to park on a full ring. *)

val consumer_parks : 'a t -> int
(** How many times the consumer exhausted its spin budget and parked on
    an empty ring — the shard telemetry's idle-worker signal. *)
