module Time = Eden_base.Time

type msg_entry = {
  fields : (string, int64) Hashtbl.t;
  mutable last_touch : Time.t;
}

type t = {
  global_scalars : (string, int64) Hashtbl.t;
  global_arrays : (string, int64 array) Hashtbl.t;
  messages : (int64, msg_entry) Hashtbl.t;
  mutable array_version : int;
}

let create () =
  {
    global_scalars = Hashtbl.create 16;
    global_arrays = Hashtbl.create 8;
    messages = Hashtbl.create 256;
    array_version = 0;
  }

(* Reads use [Hashtbl.find] + [Not_found] rather than [find_opt]: these
   run per packet per slot and must not allocate an option each time. *)
let global_get t name =
  match Hashtbl.find t.global_scalars name with v -> v | exception Not_found -> 0L

let global_set t name v = Hashtbl.replace t.global_scalars name v

let global_array t name =
  match Hashtbl.find t.global_arrays name with a -> a | exception Not_found -> [||]

let global_array_set t name a =
  t.array_version <- t.array_version + 1;
  Hashtbl.replace t.global_arrays name a

let array_version t = t.array_version

let global_bindings t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.global_scalars []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let global_array_bindings t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.global_arrays []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let msg_entry t msg now =
  match Hashtbl.find t.messages msg with
  | e ->
    e.last_touch <- now;
    e
  | exception Not_found ->
    let e = { fields = Hashtbl.create 4; last_touch = now } in
    Hashtbl.replace t.messages msg e;
    e

let msg_get t ~msg ~field ~default ~now =
  let e = msg_entry t msg now in
  match Hashtbl.find e.fields field with
  | v -> v
  | exception Not_found ->
    Hashtbl.replace e.fields field default;
    default

let msg_set t ~msg ~field v ~now =
  let e = msg_entry t msg now in
  Hashtbl.replace e.fields field v

let msg_known t ~msg = Hashtbl.mem t.messages msg
let msg_count t = Hashtbl.length t.messages
let msg_end t ~msg = Hashtbl.remove t.messages msg

let expire t ~now ~idle =
  let cutoff = Time.sub now idle in
  let stale =
    Hashtbl.fold
      (fun id e acc -> if Time.( < ) e.last_touch cutoff then id :: acc else acc)
      t.messages []
  in
  List.iter (Hashtbl.remove t.messages) stale;
  List.length stale
