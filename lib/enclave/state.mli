(** Enclave state store.

    Each installed action function owns one store holding its global state
    (scalars and arrays) and its per-message state (scalars keyed by
    message identifier).  The enclave runtime performs copy-in / copy-out
    around every invocation: the interpreter works on a snapshot, and a
    faulting program publishes nothing (paper §3.4.3–3.4.4).

    Message entries record their last-touch time so idle messages can be
    expired, and are dropped eagerly when the transport signals message
    end. *)

type t

val create : unit -> t

(** {2 Global state} *)

val global_get : t -> string -> int64
(** 0 for never-written fields. *)

val global_set : t -> string -> int64 -> unit

val global_array : t -> string -> int64 array
(** The live array ([[||]] if unset).  Read-only users may alias it;
    writers must go through {!global_array_set} or copy-out. *)

val global_array_set : t -> string -> int64 array -> unit

val global_bindings : t -> (string * int64) list
(** Every written global scalar, sorted by name — the reconciliation
    plane's view of the store. *)

val global_array_bindings : t -> (string * int64 array) list
(** Every bound global array (live, not copied), sorted by name. *)

val array_version : t -> int
(** Incremented by every {!global_array_set}.  The enclave's marshal
    plans cache aliases into the live arrays; a version mismatch tells
    them to rebind before the next invocation.  In-place mutation of an
    array obtained from {!global_array} does not change the version (the
    binding is unchanged). *)

(** {2 Per-message state} *)

val msg_get : t -> msg:int64 -> field:string -> default:int64 -> now:Eden_base.Time.t -> int64
(** Reads a message field, creating the entry (and touching it) as needed. *)

val msg_set : t -> msg:int64 -> field:string -> int64 -> now:Eden_base.Time.t -> unit

val msg_known : t -> msg:int64 -> bool
val msg_count : t -> int

val msg_end : t -> msg:int64 -> unit
(** Drop a message's state (flow terminated, message completed). *)

val expire : t -> now:Eden_base.Time.t -> idle:Eden_base.Time.t -> int
(** Drop messages idle longer than [idle]; returns how many were dropped. *)
