module Class_name = Eden_base.Class_name

type rule = { rule_id : int; pattern : Class_name.Pattern.t; action : string }

type t = { id : int; mutable rules : rule list; mutable next_rule_id : int }

let create ~id = { id; rules = []; next_rule_id = 0 }
let id t = t.id

(* Keep rules sorted: higher specificity first; ties by insertion order
   (rule_id ascending). *)
let insert_sorted rules rule =
  let spec r = Class_name.Pattern.specificity r.pattern in
  let rec go = function
    | [] -> [ rule ]
    | r :: rest ->
      if spec rule > spec r then rule :: r :: rest else r :: go rest
  in
  go rules

let add_rule t ~pattern ~action =
  let rule = { rule_id = t.next_rule_id; pattern; action } in
  t.next_rule_id <- t.next_rule_id + 1;
  t.rules <- insert_sorted t.rules rule;
  rule

let remove_rule t rule_id =
  let before = List.length t.rules in
  t.rules <- List.filter (fun r -> r.rule_id <> rule_id) t.rules;
  List.length t.rules < before

let rules t = t.rules

let remove_action_rules t action =
  let before = List.length t.rules in
  t.rules <- List.filter (fun r -> not (String.equal r.action action)) t.rules;
  before - List.length t.rules

let lookup t classes =
  List.find_opt
    (fun r -> List.exists (Class_name.Pattern.matches r.pattern) classes)
    t.rules

let pp fmt t =
  Format.fprintf fmt "@[<v>table %d:@," t.id;
  List.iter
    (fun r ->
      Format.fprintf fmt "  %s -> %s@," (Class_name.Pattern.to_string r.pattern) r.action)
    t.rules;
  Format.fprintf fmt "@]"
