(** Enclave match-action tables (paper §3.4.1, Table 4).

    Rules match on {e class names} — not packet headers — and name an
    action function.  A packet carries one class per rule-set that
    matched at a stage, plus classes the enclave's own flow stage
    assigned; a rule fires when its pattern matches any of them.  Rules
    are ordered by pattern specificity (exact components before
    wildcards), then by insertion. *)

type rule = {
  rule_id : int;
  pattern : Eden_base.Class_name.Pattern.t;
  action : string;  (** Name of an installed action function. *)
}

type t

val create : id:int -> t
val id : t -> int

val add_rule : t -> pattern:Eden_base.Class_name.Pattern.t -> action:string -> rule
val remove_rule : t -> int -> bool

val remove_action_rules : t -> string -> int
(** Drop every rule pointing at the named action; returns how many were
    removed.  Used when an action is uninstalled so the table never
    holds dangling references. *)

val rules : t -> rule list
(** In match order. *)

val lookup : t -> Eden_base.Class_name.t list -> rule option
(** First rule (in specificity order) whose pattern matches any of the
    packet's classes. *)

val pp : Format.formatter -> t -> unit
