module Addr = Eden_base.Addr
module Packet = Eden_base.Packet
module Metadata = Eden_base.Metadata
module Time = Eden_base.Time
module Enclave = Eden_enclave.Enclave
module Table = Eden_enclave.Table
module Net = Eden_netsim.Net
module Host = Eden_netsim.Host
module Switch = Eden_netsim.Switch
module Tcp = Eden_netsim.Tcp
module Controller = Eden_controller.Controller
module Channel = Eden_controller.Channel
module Desired = Eden_controller.Desired
module Policy = Eden_controller.Policy
module Pias = Eden_functions.Pias
module Wcmp = Eden_functions.Wcmp

type check = { ck_name : string; ck_ok : bool; ck_detail : string }

type report = {
  r_scenario : string;
  r_seed : int64;
  r_checks : check list;
  r_ops_sent : int;
  r_faults_injected : int;
  r_retries : int;
  r_restarts : int;
}

let passed r = List.for_all (fun c -> c.ck_ok) r.r_checks
let all_passed rs = List.for_all passed rs

(* ------------------------------------------------------------------ *)
(* Invariant plumbing.

   Each scenario accumulates named checks; [observe] is called at every
   step boundary and folds in the cross-cutting invariants:
   - generation monotonicity (the desired generation never goes back);
   - acked <= desired on every channel (a watermark can lag or be wiped
     to zero by a restart, never run ahead);
   - no half-installed action is matchable: every rule on every enclave
     names a fully installed action (structural — the enclave refuses
     rules for unknown actions, so this must hold at EVERY observation
     point, faults or not). *)

type ctx = {
  ctl : Controller.t;
  mutable checks : check list;  (* newest first *)
  mutable last_gen : int;
  mutable gen_monotone : bool;
  mutable acked_bounded : bool;
  mutable rules_wellformed : bool;
}

let make_ctx ctl =
  {
    ctl;
    checks = [];
    last_gen = Controller.generation ctl;
    gen_monotone = true;
    acked_bounded = true;
    rules_wellformed = true;
  }

let check cx name ok detail = cx.checks <- { ck_name = name; ck_ok = ok; ck_detail = detail } :: cx.checks

let snapshot_wellformed sn =
  List.for_all
    (fun (_, rules) ->
      List.for_all
        (fun (r : Table.rule) ->
          List.exists
            (fun s -> String.equal s.Enclave.i_name r.Table.action)
            sn.Enclave.sn_actions)
        rules)
    sn.Enclave.sn_rules

let observe cx =
  let g = Controller.generation cx.ctl in
  if g < cx.last_gen then cx.gen_monotone <- false;
  cx.last_gen <- g;
  List.iter
    (fun ch ->
      if Channel.acked_generation ch > g then cx.acked_bounded <- false;
      (* Inspect the enclave directly: invariants must hold even on
         partitioned hosts, where the controller cannot look. *)
      if not (snapshot_wellformed (Enclave.snapshot (Channel.enclave ch))) then
        cx.rules_wellformed <- false)
    (Controller.channels cx.ctl)

let finish cx ~scenario ~seed =
  check cx "generation monotone" cx.gen_monotone "desired generation never decreased";
  check cx "acked <= desired" cx.acked_bounded "no enclave acked a generation ahead of desired";
  check cx "no half-installed action matchable" cx.rules_wellformed
    "every rule on every enclave names a fully installed action";
  let sum f = List.fold_left (fun acc ch -> acc + f ch) 0 (Controller.channels cx.ctl) in
  {
    r_scenario = scenario;
    r_seed = seed;
    r_checks = List.rev cx.checks;
    r_ops_sent = sum Channel.ops_sent;
    r_faults_injected = sum Channel.faults_injected;
    r_retries = (Controller.stats cx.ctl).Controller.rs_retries;
    r_restarts = sum (fun ch -> Enclave.restarts (Channel.enclave ch));
  }

(* ------------------------------------------------------------------ *)
(* Shared scaffolding: two hosts behind one switch, both with OS-placed
   enclaves registered at the controller; h0 -> h1 and h1 -> h0 flows
   can run while the control plane misbehaves. *)

let probe_flow ~src ~dst ~port =
  Addr.five_tuple ~src:(Addr.endpoint src port) ~dst:(Addr.endpoint dst 80) ~proto:Addr.Tcp

let probe_packet ?(id = 0L) ?(payload = 1000) f =
  Packet.make ~id ~flow:f ~kind:Packet.Data ~payload ~metadata:Metadata.empty ()

type fleet = {
  fl_net : Net.t;
  fl_ctl : Controller.t;
  fl_enclaves : Enclave.t array;
}

let build_fleet ~seed ~hosts () =
  let net = Net.create ~seed () in
  let sw = Net.add_switch net in
  let ctl = Controller.create ~seed () in
  let enclaves =
    Array.init hosts (fun _ ->
        let h = Net.add_host net in
        let port = Net.connect_host net h sw ~rate_bps:10e9 () in
        Switch.set_dst_route sw ~dst:(Host.id h) ~ports:[ port ];
        let e = Enclave.create ~host:(Host.id h) ~seed () in
        Host.set_enclave h e;
        Controller.register_enclave ctl e;
        e)
  in
  { fl_net = net; fl_ctl = ctl; fl_enclaves = enclaves }

let channel fl host = Option.get (Controller.channel_for fl.fl_ctl host)

let run_flows fl ~from ~until ~size =
  let before = List.length (Net.completions fl.fl_net) in
  let f = Net.start_flow fl.fl_net ~src:from ~dst:(1 - from) ~size () in
  ignore f;
  Net.run ~until fl.fl_net;
  List.length (Net.completions fl.fl_net) - before

(* ------------------------------------------------------------------ *)
(* Scenario 1: network partition during a PIAS threshold push.

   The controller updates PIAS demotion thresholds while host 1 is
   partitioned from it.  The partitioned enclave must keep forwarding on
   the stale thresholds (the paper's §2.2 story), the reachable one must
   run the new policy immediately, and after the partition heals one
   reconcile round must converge host 1 — without reinstalling anything
   on host 0 or restarting the controller. *)

let scenario_partition ~seed =
  let fl = build_fleet ~seed ~hosts:2 () in
  let cx = make_ctx fl.fl_ctl in
  let loose = [ (1.0e6, 0.5); (2.0e6, 1.0) ] in
  let tight = [ (100.0, 0.5); (200.0, 1.0) ] in
  (match Policy.flow_scheduling fl.fl_ctl ~scheme:`Pias ~cdf:loose () with
  | Ok () -> check cx "pias deployed" true ""
  | Error msg -> check cx "pias deployed" false msg);
  observe cx;
  let gen_installed = Controller.generation fl.fl_ctl in
  (* Partition host 1 from the controller (data path unaffected). *)
  Channel.set_partitioned (channel fl 1) true;
  let push = Policy.update_flow_scheduling_thresholds fl.fl_ctl ~scheme:`Pias ~cdf:tight () in
  observe cx;
  check cx "push commits despite partition" (push = Ok ())
    "transient failure must not abandon the desired change";
  check cx "generation bumped once" (Controller.generation fl.fl_ctl = gen_installed + 1) "";
  check cx "host 1 marked divergent"
    (Controller.divergent_hosts fl.fl_ctl = [ 1 ])
    "the unreachable enclave is tracked for reconciliation";
  (* Stale-policy forwarding: the partitioned enclave still schedules
     packets — with the OLD thresholds (1000-byte messages stay at the
     top priority), while host 0 already demotes them. *)
  let p0 = probe_packet (probe_flow ~src:0 ~dst:1 ~port:2001) in
  ignore (Enclave.process fl.fl_enclaves.(0) ~now:(Time.us 1) p0);
  let p1 = probe_packet (probe_flow ~src:1 ~dst:0 ~port:2002) in
  ignore (Enclave.process fl.fl_enclaves.(1) ~now:(Time.us 1) p1);
  check cx "reachable host runs new policy" (p0.Packet.priority < 7)
    (Printf.sprintf "priority %d under tight thresholds" p0.Packet.priority);
  check cx "partitioned host forwards on stale policy" (p1.Packet.priority = 7)
    (Printf.sprintf "priority %d under the old thresholds" p1.Packet.priority);
  (* And its data path genuinely still carries traffic. *)
  let done_during = run_flows fl ~from:1 ~until:(Time.ms 50) ~size:200_000 in
  check cx "flows complete during partition" (done_during = 1)
    (Printf.sprintf "%d completions" done_during);
  observe cx;
  (* Heal and reconcile. *)
  Channel.set_partitioned (channel fl 1) false;
  let outcomes = Controller.reconcile fl.fl_ctl in
  observe cx;
  let outcome_of h = List.assoc h outcomes in
  check cx "host 0 already in sync" (outcome_of 0 = Controller.In_sync) "";
  check cx "host 1 repaired"
    (match outcome_of 1 with Controller.Repaired _ -> true | _ -> false)
    (Controller.reconcile_outcome_to_string (outcome_of 1));
  check cx "fleet converged after heal" (Controller.converged fl.fl_ctl) "";
  check cx "no divergent hosts remain" (Controller.divergent_hosts fl.fl_ctl = []) "";
  check cx "watermark caught up"
    (Channel.acked_generation (channel fl 1) = Controller.generation fl.fl_ctl)
    "";
  let p1' = probe_packet (probe_flow ~src:1 ~dst:0 ~port:2003) in
  ignore (Enclave.process fl.fl_enclaves.(1) ~now:(Time.ms 60) p1');
  check cx "healed host runs new policy" (p1'.Packet.priority < 7)
    (Printf.sprintf "priority %d" p1'.Packet.priority);
  finish cx ~scenario:"partition-during-pias-push" ~seed

(* ------------------------------------------------------------------ *)
(* Scenario 2: enclave crash in the middle of a WCMP matrix update.

   Host 1's enclave crashes (losing ALL soft state) exactly when the
   controller pushes a new path matrix.  The retried push finds an empty
   enclave and is refused — the change is abandoned and undone on host 0,
   so the fleet stays on the old matrix; the crashed host degrades to
   default forwarding rather than half a policy; reconcile reinstalls
   everything from the desired store; the re-pushed matrix then lands. *)

let scenario_crash_mid_update ~seed =
  let fl = build_fleet ~seed ~hosts:2 () in
  let cx = make_ctx fl.fl_ctl in
  let m0 = [| 101L; 900L; 102L; 100L |] in
  let m1 = [| 101L; 500L; 102L; 500L |] in
  let ( let* ) = Result.bind in
  let deployed =
    let* () = Controller.install_action_everywhere fl.fl_ctl (Wcmp.spec ()) in
    let* () = Controller.set_global_array_everywhere fl.fl_ctl ~action:"wcmp" "Paths" m0 in
    Controller.add_rule_everywhere fl.fl_ctl ~pattern:Wcmp.rule_pattern ~action:"wcmp" ()
  in
  check cx "wcmp deployed" (deployed = Ok ()) "";
  observe cx;
  let gen0 = Controller.generation fl.fl_ctl in
  (* Crash host 1 on its next delivery: the matrix push. *)
  Channel.script (channel fl 1) [ (Channel.ops_sent (channel fl 1), Channel.Crash_restart) ];
  let push = Controller.set_global_array_everywhere fl.fl_ctl ~action:"wcmp" "Paths" m1 in
  observe cx;
  check cx "push refused after crash" (Result.is_error push)
    "the restarted enclave has no wcmp action; the retried op is rejected";
  check cx "generation unchanged by failed push" (Controller.generation fl.fl_ctl = gen0) "";
  check cx "desired state keeps old matrix"
    (Desired.global_array (Controller.desired fl.fl_ctl) ~action:"wcmp" "Paths" = Some m0)
    "";
  check cx "survivor rolled back to old matrix"
    (Enclave.get_global_array fl.fl_enclaves.(0) ~action:"wcmp" "Paths" = Some m0)
    "";
  check cx "crash wiped the enclave" (Enclave.action_names fl.fl_enclaves.(1) = []) "";
  (* Graceful degradation: the crashed host forwards with no policy. *)
  let p = probe_packet (probe_flow ~src:1 ~dst:0 ~port:3001) in
  (match Enclave.process fl.fl_enclaves.(1) ~now:(Time.us 1) p with
  | Enclave.Forward _ ->
    check cx "crashed host forwards by default" (p.Packet.route_label = None)
      "no stale label from a wiped policy"
  | Enclave.Dropped _ -> check cx "crashed host forwards by default" false "packet dropped");
  let done_degraded = run_flows fl ~from:1 ~until:(Time.ms 50) ~size:200_000 in
  check cx "flows complete while degraded" (done_degraded = 1)
    (Printf.sprintf "%d completions" done_degraded);
  observe cx;
  (* Reconcile: full reinstall from the desired store, no controller restart. *)
  let outcomes = Controller.reconcile fl.fl_ctl in
  observe cx;
  check cx "crashed host repaired"
    (match List.assoc 1 outcomes with Controller.Repaired _ -> true | _ -> false)
    (Controller.reconcile_outcome_to_string (List.assoc 1 outcomes));
  check cx "fleet converged on old matrix" (Controller.converged fl.fl_ctl) "";
  check cx "restart was honest"
    (Enclave.restarts fl.fl_enclaves.(1) = 1)
    "exactly one restart recorded";
  (* Now the update goes through cleanly. *)
  let push2 = Controller.set_global_array_everywhere fl.fl_ctl ~action:"wcmp" "Paths" m1 in
  observe cx;
  check cx "re-push succeeds" (push2 = Ok ()) "";
  check cx "both hosts on new matrix"
    (Enclave.get_global_array fl.fl_enclaves.(0) ~action:"wcmp" "Paths" = Some m1
    && Enclave.get_global_array fl.fl_enclaves.(1) ~action:"wcmp" "Paths" = Some m1)
    "";
  check cx "fleet converged on new matrix" (Controller.converged fl.fl_ctl) "";
  finish cx ~scenario:"crash-mid-wcmp-update" ~seed

(* ------------------------------------------------------------------ *)
(* Scenario 3: duplicate delivery and lost acks during installs.

   Every push to host 0 is delivered twice and every push to host 1
   loses its first ack (forcing a retry of an already-applied op).  The
   op-id memo must make all of it exactly-once: one action, one rule,
   one generation bump per logical change. *)

let scenario_duplicate_installs ~seed =
  let fl = build_fleet ~seed ~hosts:2 () in
  let cx = make_ctx fl.fl_ctl in
  let thresholds = [| 10_000L; 100_000L |] in
  Channel.script (channel fl 0) (List.init 8 (fun i -> (i, Channel.Duplicate)));
  Channel.script (channel fl 1) (List.init 8 (fun i -> (2 * i, Channel.Ack_lost)));
  let gen0 = Controller.generation fl.fl_ctl in
  let ( let* ) = Result.bind in
  let deployed =
    let* () = Controller.install_action_everywhere fl.fl_ctl (Pias.spec ()) in
    let* () =
      Controller.set_global_array_everywhere fl.fl_ctl ~action:"pias" "Thresholds" thresholds
    in
    Controller.add_rule_everywhere fl.fl_ctl ~pattern:Pias.rule_pattern ~action:"pias" ()
  in
  observe cx;
  check cx "all pushes succeed through faults" (deployed = Ok ()) "";
  check cx "retries actually happened" ((Controller.stats fl.fl_ctl).Controller.rs_retries > 0)
    (Printf.sprintf "%d retries" (Controller.stats fl.fl_ctl).Controller.rs_retries);
  check cx "generation bumped exactly three times"
    (Controller.generation fl.fl_ctl = gen0 + 3)
    (Printf.sprintf "generation %d, expected %d — duplicates and retried acks must not \
                     double-bump" (Controller.generation fl.fl_ctl) (gen0 + 3));
  Array.iteri
    (fun i e ->
      let sn = Enclave.snapshot e in
      check cx
        (Printf.sprintf "host %d installed exactly once" i)
        (Enclave.action_names e = [ "pias" ])
        (String.concat "," (Enclave.action_names e));
      let nrules =
        List.fold_left (fun acc (_, rs) -> acc + List.length rs) 0 sn.Enclave.sn_rules
      in
      check cx (Printf.sprintf "host %d has exactly one rule" i) (nrules = 1)
        (Printf.sprintf "%d rules" nrules))
    fl.fl_enclaves;
  check cx "fleet converged" (Controller.converged fl.fl_ctl) "";
  check cx "watermarks caught up"
    (List.for_all
       (fun ch -> Channel.acked_generation ch = Controller.generation fl.fl_ctl)
       (Controller.channels fl.fl_ctl))
    "";
  finish cx ~scenario:"duplicate-installs" ~seed

(* ------------------------------------------------------------------ *)
(* Scenario 4: action fault storm trips the circuit breaker.

   A controller mistake (zero divisor pushed into global state) makes an
   action fault on every invocation.  Per-invocation fail-open already
   keeps packets flowing; the breaker additionally quarantines the action
   after a burst of faults, so packets stop paying the failed-invocation
   cost, and a half-open probe re-admits it once the controller repairs
   the state. *)

let scenario_breaker ~seed =
  let fl = build_fleet ~seed ~hosts:1 () in
  let cx = make_ctx fl.fl_ctl in
  let e = fl.fl_enclaves.(0) in
  let open Eden_lang in
  let schema = Schema.with_standard_packet ~global:[ Schema.field "D" ] () in
  let act = Dsl.(action "divider" (set_pkt "Priority" (int 6 / glob "D"))) in
  let program =
    match Compile.compile schema act with
    | Ok p -> p
    | Error err -> invalid_arg ("chaos: " ^ Compile.error_to_string err)
  in
  let ( let* ) = Result.bind in
  let deployed =
    let* () =
      Controller.install_action_everywhere fl.fl_ctl
        { Enclave.i_name = "divider"; i_impl = Enclave.Interpreted program; i_msg_sources = [] }
    in
    let* () = Controller.set_global_everywhere fl.fl_ctl ~action:"divider" "D" 2L in
    Controller.add_rule_everywhere fl.fl_ctl
      ~pattern:Eden_base.Class_name.Pattern.any ~action:"divider" ()
  in
  check cx "divider deployed" (deployed = Ok ()) "";
  let cfg =
    { Enclave.br_window = 16; br_min_samples = 4; br_threshold = 0.5; br_cooldown = Time.us 50 }
  in
  Enclave.set_breaker e (Some cfg);
  observe cx;
  let shoot ~from ~n ~port =
    let dropped = ref 0 in
    for i = 0 to n - 1 do
      let p = probe_packet ~id:(Int64.of_int i) (probe_flow ~src:0 ~dst:1 ~port) in
      match Enclave.process e ~now:(Time.add from (Time.ns (100 * i))) p with
      | Enclave.Dropped _ -> incr dropped
      | Enclave.Forward _ -> ()
    done;
    !dropped
  in
  let p0 = probe_packet (probe_flow ~src:0 ~dst:1 ~port:4000) in
  ignore (Enclave.process e ~now:Time.zero p0);
  check cx "healthy action applies policy" (p0.Packet.priority = 3)
    (Printf.sprintf "priority %d (6/2)" p0.Packet.priority);
  let d0 = shoot ~from:Time.zero ~n:20 ~port:4001 in
  check cx "healthy action stays closed"
    (Enclave.breaker_state e "divider" = Some `Closed)
    (Printf.sprintf "%d dropped" d0);
  (* The controller pushes a bad divisor: every invocation now faults. *)
  check cx "bad push accepted"
    (Controller.set_global_everywhere fl.fl_ctl ~action:"divider" "D" 0L = Ok ())
    "";
  observe cx;
  let faults_before = (Enclave.counters e).Enclave.faults in
  let d1 = shoot ~from:(Time.us 10) ~n:30 ~port:4002 in
  let faults_during = (Enclave.counters e).Enclave.faults - faults_before in
  check cx "storm faults recorded" (faults_during >= cfg.Enclave.br_min_samples)
    (Printf.sprintf "%d faults" faults_during);
  check cx "breaker opened" (Enclave.breaker_state e "divider" = Some `Open)
    (Printf.sprintf "%d trips" (Enclave.breaker_trips e "divider"));
  check cx "quarantined packets fell through"
    ((Enclave.counters e).Enclave.quarantined > 0)
    (Printf.sprintf "%d quarantined" (Enclave.counters e).Enclave.quarantined);
  check cx "fail open throughout" (d1 = 0) (Printf.sprintf "%d dropped" d1);
  check cx "quarantine bounds the fault storm"
    (faults_during < 30)
    (Printf.sprintf "%d faults for 30 packets — the breaker must cut this short" faults_during);
  (* Controller repairs the state; after the cooldown one probe invocation
     closes the breaker again. *)
  check cx "repair push accepted"
    (Controller.set_global_everywhere fl.fl_ctl ~action:"divider" "D" 2L = Ok ())
    "";
  observe cx;
  let d2 = shoot ~from:(Time.ms 1) ~n:10 ~port:4003 in
  check cx "breaker recovered via half-open probe"
    (Enclave.breaker_state e "divider" = Some `Closed)
    "";
  let p = probe_packet (probe_flow ~src:0 ~dst:1 ~port:4004) in
  ignore (Enclave.process e ~now:(Time.ms 2) p);
  check cx "recovered action applies policy" (p.Packet.priority = 3)
    (Printf.sprintf "priority %d (6/2)" p.Packet.priority);
  check cx "no drops after recovery" (d2 = 0) (Printf.sprintf "%d dropped" d2);
  check cx "fleet converged" (Controller.converged fl.fl_ctl) "";
  finish cx ~scenario:"fault-storm-breaker" ~seed

(* ------------------------------------------------------------------ *)

let scenarios =
  [
    ("partition-during-pias-push", scenario_partition);
    ("crash-mid-wcmp-update", scenario_crash_mid_update);
    ("duplicate-installs", scenario_duplicate_installs);
    ("fault-storm-breaker", scenario_breaker);
  ]

let scenario_names = List.map fst scenarios

let run ?(seed = 42L) name =
  match List.assoc_opt name scenarios with
  | None -> Error (Printf.sprintf "unknown scenario %S (try: %s)" name (String.concat ", " scenario_names))
  | Some f -> Ok (f ~seed)

let run_all ?(seed = 42L) () = List.map (fun (_, f) -> f ~seed) scenarios

let print_report r =
  Printf.printf "scenario %s (seed %Ld): %s\n" r.r_scenario r.r_seed
    (if passed r then "PASS" else "FAIL");
  Printf.printf "  ops sent %d, faults injected %d, retries %d, enclave restarts %d\n"
    r.r_ops_sent r.r_faults_injected r.r_retries r.r_restarts;
  List.iter
    (fun c ->
      Printf.printf "  [%s] %s%s\n"
        (if c.ck_ok then "ok" else "FAIL")
        c.ck_name
        (if c.ck_detail = "" then "" else " — " ^ c.ck_detail))
    r.r_checks

let print reports =
  List.iter print_report reports;
  let failed = List.filter (fun r -> not (passed r)) reports in
  Printf.printf "%d/%d scenarios passed\n"
    (List.length reports - List.length failed)
    (List.length reports)
