(** Chaos harness: scripted fault scenarios with invariant checks.

    Each scenario builds a small simulated fleet (netsim hosts with
    OS-placed enclaves, one controller reaching them over fallible
    {!Eden_controller.Channel}s), injects a deterministic fault schedule
    under a fixed seed, and asserts the system's consistency story
    (paper §2.2, §3.5) as named checks:

    - the desired generation is monotone and every enclave's acked
      watermark stays at or below it;
    - no packet can ever match a half-installed action — every rule on
      every enclave (partitioned ones included) names a fully installed
      action at every observation point;
    - a partitioned or crashed enclave keeps forwarding (stale policy or
      default path) while the controller cannot reach it;
    - after the fault heals, one {!Eden_controller.Controller.reconcile}
      round converges the fleet without restarting the controller;
    - duplicate delivery and retried lost acks are exactly-once: the
      generation bumps once per logical change and nothing is installed
      twice.

    Scenarios are pure functions of the seed — the same seed replays the
    same run, which is what CI pins. *)

type check = { ck_name : string; ck_ok : bool; ck_detail : string }

type report = {
  r_scenario : string;
  r_seed : int64;
  r_checks : check list;  (** In execution order. *)
  r_ops_sent : int;
  r_faults_injected : int;
  r_retries : int;
  r_restarts : int;
}

val passed : report -> bool
val all_passed : report list -> bool

val scenario_names : string list
(** ["partition-during-pias-push"; "crash-mid-wcmp-update";
    "duplicate-installs"; "fault-storm-breaker"]. *)

val run : ?seed:int64 -> string -> (report, string) result
(** Run one scenario by name (default seed 42). *)

val run_all : ?seed:int64 -> unit -> report list
(** Run every scenario under the same seed. *)

val print_report : report -> unit
val print : report list -> unit
(** Human-readable report on stdout, one line per check plus a
    pass/fail tally. *)
