open Eden_lang
module Enclave = Eden_enclave.Enclave
module Pattern = Eden_base.Class_name.Pattern

let schema =
  Schema.with_standard_packet
    ~message:[ Schema.field "CachedDip" ~access:Schema.Read_write ~default:(-1L) ]
    ~global_arrays:[ Schema.array "DipTable" ]
    ()

(* Weighted pick over [| label0; w0; … |], as in WCMP. *)
let pick_fun =
  let open Dsl in
  fn "pick_dip" [ "i"; "acc"; "r" ]
    (if_
       (var "i" + int 1 >= glob_arr_len "DipTable")
       (glob_arr "DipTable" (var "i"))
       (if_
          (var "r" < var "acc" + glob_arr "DipTable" (var "i" + int 1))
          (glob_arr "DipTable" (var "i"))
          (call "pick_dip"
             [ var "i" + int 2; var "acc" + glob_arr "DipTable" (var "i" + int 1); var "r" ])))

let action =
  let open Dsl in
  action ~funs:[ pick_fun ] "ananta"
    (when_
       (glob_arr_len "DipTable" >= int 2)
       (seq
          [
            when_
              (msg "CachedDip" < int 0)
              (set_msg "CachedDip" (call "pick_dip" [ int 0; int 0; rand (int 1000) ]));
            set_pkt "Path" (msg "CachedDip");
          ]))

let program_memo =
  lazy
    (match Compile.compile schema action with
    | Ok p -> p
    | Error e -> invalid_arg ("Ananta: " ^ Compile.error_to_string e))

let program () = Lazy.force program_memo

let native ctx =
  let table = Enclave.Native_ctx.global_array ctx "DipTable" in
  let n = Array.length table in
  if n >= 2 then begin
    let cached = Enclave.Native_ctx.msg_get ctx "CachedDip" ~default:(-1L) in
    let dip =
      if Int64.compare cached 0L >= 0 then cached
      else begin
        let r = Int64.of_int (Eden_base.Rng.int (Enclave.Native_ctx.rng ctx) 1000) in
        let rec pick i acc =
          if i + 1 >= n then table.(i)
          else begin
            let acc = Int64.add acc table.(i + 1) in
            if Int64.compare r acc < 0 then table.(i) else pick (i + 2) acc
          end
        in
        let dip = pick 0 0L in
        Enclave.Native_ctx.msg_set ctx "CachedDip" dip;
        dip
      end
    in
    Enclave.Native_ctx.set_path ctx (Int64.to_int dip)
  end

let dip_table ~labels ~weights =
  if List.length labels <> List.length weights || labels = [] then
    invalid_arg "Ananta.dip_table: labels and weights must be non-empty and equal length";
  let total = List.fold_left ( + ) 0 weights in
  if total <= 0 then invalid_arg "Ananta.dip_table: weights must sum > 0";
  let arr = Array.make (2 * List.length labels) 0L in
  List.iteri
    (fun i (label, w) ->
      arr.(2 * i) <- Int64.of_int label;
      arr.((2 * i) + 1) <- Int64.of_int (w * 1000 / total))
    (List.combine labels weights);
  arr

let ( let* ) r f = Result.bind r f

let install ?(name = "ananta") ?(variant = `Interpreted) ?(pattern = Pattern.any) enclave
    ~dips =
  let impl =
    match variant with
    | `Interpreted -> Enclave.Interpreted (program ())
    | `Compiled -> Enclave.Compiled (program ())
    | `Native -> Enclave.Native native
  in
  let* () =
    Enclave.install_action enclave
      {
        Enclave.i_name = name;
        i_impl = impl;
        i_msg_sources = [ ("CachedDip", Enclave.Stateful (-1L)) ];
      }
  in
  let* () = Enclave.set_global_array enclave ~action:name "DipTable" dips in
  let* _ = Enclave.add_table_rule enclave ~pattern ~action:name () in
  Ok ()
