(** Ananta-style cloud load balancing (paper Table 1; Patel et al. 2013).

    Ananta spreads connections arriving at a virtual IP (VIP) across a
    pool of direct IPs (DIPs), keeping each connection on one DIP and
    returning responses by direct server return.  In Eden, the mux's
    encap-to-DIP becomes label-based source routing: the first packet of
    every connection picks a DIP (weighted random, controller-supplied
    weights) and caches it in message state — the enclave's flow stage
    makes each transport connection a message — so all later packets
    follow it.

    [_global.DipTable] is a flat array [\[| label0; w0; label1; w1; … |\]]
    like WCMP's path matrix (weights in parts per 1000). *)

val schema : Eden_lang.Schema.t
val action : Eden_lang.Ast.t
val program : unit -> Eden_bytecode.Program.t
val native : Eden_enclave.Enclave.Native_ctx.t -> unit

val dip_table : labels:int list -> weights:int list -> int64 array
(** Build the table; weights are normalized to parts per 1000. *)

val install :
  ?name:string ->
  ?variant:[ `Interpreted | `Compiled | `Native ] ->
  ?pattern:Eden_base.Class_name.Pattern.t ->
  Eden_enclave.Enclave.t ->
  dips:int64 array ->
  (unit, string) result
(** Default pattern matches every class: steer all traffic; narrow with a
    VIP-specific flow-stage rule-set in practice. *)
