open Eden_lang
module Enclave = Eden_enclave.Enclave
module Metadata = Eden_base.Metadata
module Pattern = Eden_base.Class_name.Pattern

let schema =
  Schema.with_standard_packet
    ~message:[ Schema.field "IsMatch" ]
    ~global:[ Schema.field "MatchPriority"; Schema.field "OtherPriority" ]
    ()

let action =
  let open Dsl in
  action "app_priority"
    (if_ (msg "IsMatch" = int 1)
       (set_pkt "Priority" (glob "MatchPriority"))
       (set_pkt "Priority" (glob "OtherPriority")))

let program_memo =
  lazy
    (match Compile.compile schema action with
    | Ok p -> p
    | Error e -> invalid_arg ("App_priority: " ^ Compile.error_to_string e))

let program () = Lazy.force program_memo

(* Native functions read the metadata directly, so the match string is
   captured in the closure at install time. *)
let native_for ~match_msg_type ctx =
  let md = Enclave.Native_ctx.metadata ctx in
  let matches =
    match Metadata.find_str Metadata.Field.msg_type md with
    | Some v -> String.equal v match_msg_type
    | None -> false
  in
  let field = if matches then "MatchPriority" else "OtherPriority" in
  Enclave.Native_ctx.set_priority ctx (Int64.to_int (Enclave.Native_ctx.global_get ctx field))

let default_pattern =
  match Pattern.of_string "memcached.*.*" with Some p -> p | None -> assert false

let ( let* ) r f = Result.bind r f

let install ?(name = "app_priority") ?(variant = `Interpreted) ?(pattern = default_pattern)
    enclave ~match_msg_type ~match_priority ~other_priority =
  let impl =
    match variant with
    | `Interpreted -> Enclave.Interpreted (program ())
    | `Compiled -> Enclave.Compiled (program ())
    | `Native -> Enclave.Native (native_for ~match_msg_type)
  in
  let* () =
    Enclave.install_action enclave
      {
        Enclave.i_name = name;
        i_impl = impl;
        i_msg_sources =
          [ ("IsMatch", Enclave.Metadata_flag (Metadata.Field.msg_type, match_msg_type)) ];
      }
  in
  let* () =
    Enclave.set_global enclave ~action:name "MatchPriority" (Int64.of_int match_priority)
  in
  let* () =
    Enclave.set_global enclave ~action:name "OtherPriority" (Int64.of_int other_priority)
  in
  let* _ = Enclave.add_table_rule enclave ~pattern ~action:name () in
  Ok ()
