(** Application-level message prioritization.

    The paper's opening example of application semantics at the data
    plane (§1): treat a memcached GET differently from a PUT.  This
    function assigns one 802.1q priority to messages whose [msg_type]
    metadata matches a configured value and another to the rest of the
    matched class — e.g. GETs at 6, PUTs at 1, so small latency-critical
    requests overtake bulk writes on every queue. *)

val schema : Eden_lang.Schema.t
val action : Eden_lang.Ast.t
val program : unit -> Eden_bytecode.Program.t

val install :
  ?name:string ->
  ?variant:[ `Interpreted | `Compiled | `Native ] ->
  ?pattern:Eden_base.Class_name.Pattern.t ->
  Eden_enclave.Enclave.t ->
  match_msg_type:string ->
  match_priority:int ->
  other_priority:int ->
  (unit, string) result
(** Default pattern ["memcached.*.*"]. *)
