open Eden_lang
module Enclave = Eden_enclave.Enclave
module Pattern = Eden_base.Class_name.Pattern

let schema =
  Schema.with_standard_packet
    ~message:
      [
        Schema.field "Size" ~access:Schema.Read_write;
        (* desired_priority metadata, offset by one so 0 means "unset". *)
        Schema.field "DesiredPlus1";
      ]
    ~global_arrays:[ Schema.array "Thresholds" ]
    ()

(* Fig. 7: update the message size, then either honour a pinned low
   priority or search the thresholds. *)
let search_fun =
  let open Dsl in
  fn "search" [ "i" ]
    (if_ (var "i" >= glob_arr_len "Thresholds")
       (int 7 - glob_arr_len "Thresholds")
       (if_ (msg "Size" <= glob_arr "Thresholds" (var "i"))
          (int 7 - var "i")
          (call "search" [ var "i" + int 1 ])))

let action =
  let open Dsl in
  action ~funs:[ search_fun ] "pias"
    (set_msg "Size" (msg "Size" + pkt "Size")
    ^^ set_pkt "Priority"
         (if_ (msg "DesiredPlus1" > int 0) (msg "DesiredPlus1" - int 1) (call "search" [ int 0 ])))

let program_memo =
  lazy
    (match Compile.compile schema action with
    | Ok p -> p
    | Error e -> invalid_arg ("Pias: " ^ Compile.error_to_string e))

let program () = Lazy.force program_memo

let priority_for ~thresholds ~size =
  let n = Array.length thresholds in
  let rec search i =
    if i >= n then 7 - n
    else if Int64.compare size thresholds.(i) <= 0 then 7 - i
    else search (i + 1)
  in
  search 0

let native ctx =
  let pkt = Enclave.Native_ctx.packet ctx in
  let size =
    Int64.add
      (Enclave.Native_ctx.msg_get ctx "Size" ~default:0L)
      (Int64.of_int (Eden_base.Packet.wire_size pkt))
  in
  Enclave.Native_ctx.msg_set ctx "Size" size;
  let desired =
    match
      Eden_base.Metadata.find_int "desired_priority_plus1"
        (Enclave.Native_ctx.metadata ctx)
    with
    | Some d when Int64.compare d 0L > 0 -> Some (Int64.to_int d - 1)
    | Some _ | None -> None
  in
  let thresholds = Enclave.Native_ctx.global_array ctx "Thresholds" in
  let prio =
    match desired with Some d -> d | None -> priority_for ~thresholds ~size
  in
  Enclave.Native_ctx.set_priority ctx prio

let ( let* ) r f = Result.bind r f

let spec ?(name = "pias") ?(variant = `Interpreted) () =
  let impl =
    match variant with
    | `Interpreted -> Enclave.Interpreted (program ())
    | `Compiled -> Enclave.Compiled (program ())
    | `Native -> Enclave.Native native
  in
  {
    Enclave.i_name = name;
    i_impl = impl;
    i_msg_sources =
      [
        ("Size", Enclave.Stateful 0L);
        ("DesiredPlus1", Enclave.Metadata_int "desired_priority_plus1");
      ];
  }

let rule_pattern = Pattern.any

let install ?(name = "pias") ?(variant = `Interpreted) enclave ~thresholds =
  if Array.length thresholds > 7 then Error "pias: at most 7 thresholds"
  else begin
    let* () = Enclave.install_action enclave (spec ~name ~variant ()) in
    let* () = Enclave.set_global_array enclave ~action:name "Thresholds" thresholds in
    let* _ = Enclave.add_table_rule enclave ~pattern:rule_pattern ~action:name () in
    Ok ()
  end

let set_thresholds enclave ?(name = "pias") thresholds =
  Enclave.set_global_array enclave ~action:name "Thresholds" thresholds
