(** PIAS-style dynamic flow scheduling (paper §2.1.3, Figs. 4 and 7).

    Messages start at the highest priority and are demoted as the bytes
    they have sent cross controller-computed thresholds — shortest-flow
    first without application help.  [action] is the paper's Fig. 7
    program: it accumulates [msg.Size], searches [_global.Thresholds]
    and writes the packet's 802.1q priority; a message can pin a low
    priority via the [desired_priority] metadata field (the [desired]
    check of Fig. 7). *)

val schema : Eden_lang.Schema.t
val action : Eden_lang.Ast.t
val program : unit -> Eden_bytecode.Program.t
val native : Eden_enclave.Enclave.Native_ctx.t -> unit

val priority_for : thresholds:int64 array -> size:int64 -> int
(** Reference model: the priority the action computes for a message of
    accumulated [size] (7 = highest). *)

val spec :
  ?name:string ->
  ?variant:[ `Interpreted | `Compiled | `Native ] ->
  unit ->
  Eden_enclave.Enclave.install_spec
(** The install spec alone, for controller-mediated (desired-state)
    deployment; pair with {!rule_pattern} and a [Thresholds] binding. *)

val rule_pattern : Eden_base.Class_name.Pattern.t

val install :
  ?name:string ->
  ?variant:[ `Interpreted | `Compiled | `Native ] ->
  Eden_enclave.Enclave.t ->
  thresholds:int64 array ->
  (unit, string) result
(** Thresholds ascending, at most 7 entries; priority 7 - i is assigned
    while the accumulated size is ≤ thresholds[i]. *)

val set_thresholds :
  Eden_enclave.Enclave.t -> ?name:string -> int64 array -> (unit, string) result
