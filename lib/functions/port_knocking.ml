open Eden_lang
module Enclave = Eden_enclave.Enclave
module Pattern = Eden_base.Class_name.Pattern

let schema =
  Schema.with_standard_packet
    ~global:[ Schema.field "Protected" ]
    ~global_arrays:[ Schema.array "Knocks"; Schema.array "State" ~access:Schema.Read_write ]
    ()

(* is_knock i: 1 when packet.DstPort appears in Knocks[i..]. *)
let is_knock_fun =
  let open Dsl in
  fn "is_knock" [ "i" ]
    (if_ (var "i" >= glob_arr_len "Knocks") (int 0)
       (if_ (glob_arr "Knocks" (var "i") = pkt "DstPort") (int 1)
          (call "is_knock" [ var "i" + int 1 ])))

let action =
  let open Dsl in
  action ~funs:[ is_knock_fun ] "port_knocking"
    (when_
       (pkt "SrcHost" >= int 0 && pkt "SrcHost" < glob_arr_len "State")
       (let_ "st" (glob_arr "State" (pkt "SrcHost")) @@ fun st ->
        if_
          (pkt "DstPort" = glob "Protected")
          (when_ (st < glob_arr_len "Knocks") (set_pkt "Drop" (int 1)))
          (when_
             (call "is_knock" [ int 0 ] = int 1)
             (if_
                (st < glob_arr_len "Knocks" && glob_arr "Knocks" st = pkt "DstPort")
                (set_glob_arr "State" (pkt "SrcHost") (st + int 1))
                (set_glob_arr "State" (pkt "SrcHost") (int 0))))))

let program_memo =
  lazy
    (match Compile.compile schema action with
    | Ok p -> p
    | Error e -> invalid_arg ("Port_knocking: " ^ Compile.error_to_string e))

let program () = Lazy.force program_memo

let native ctx =
  let pkt = Enclave.Native_ctx.packet ctx in
  let src = pkt.Eden_base.Packet.flow.Eden_base.Addr.src.Eden_base.Addr.host in
  let dst_port = pkt.Eden_base.Packet.flow.Eden_base.Addr.dst.Eden_base.Addr.port in
  let state = Enclave.Native_ctx.global_array ctx "State" in
  let knocks = Enclave.Native_ctx.global_array ctx "Knocks" in
  let protected_port = Int64.to_int (Enclave.Native_ctx.global_get ctx "Protected") in
  if src >= 0 && src < Array.length state then begin
    let st = Int64.to_int state.(src) in
    if dst_port = protected_port then begin
      if st < Array.length knocks then Enclave.Native_ctx.set_drop ctx
    end
    else if Array.exists (fun k -> Int64.to_int k = dst_port) knocks then
      if st < Array.length knocks && Int64.to_int knocks.(st) = dst_port then
        state.(src) <- Int64.of_int (st + 1)
      else state.(src) <- 0L
  end

let ( let* ) r f = Result.bind r f

let install ?(name = "port_knocking") ?(variant = `Interpreted) enclave ~knocks
    ~protected_port ~max_hosts =
  if knocks = [] || List.length knocks > 4 then Error "port_knocking: 1-4 knock ports"
  else begin
    let impl =
      match variant with
      | `Interpreted -> Enclave.Interpreted (program ())
      | `Compiled -> Enclave.Compiled (program ())
      | `Native -> Enclave.Native native
    in
    let* () =
      Enclave.install_action enclave
        { Enclave.i_name = name; i_impl = impl; i_msg_sources = [] }
    in
    let* () =
      Enclave.set_global_array enclave ~action:name "Knocks"
        (Array.of_list (List.map Int64.of_int knocks))
    in
    let* () =
      Enclave.set_global_array enclave ~action:name "State" (Array.make max_hosts 0L)
    in
    let* () = Enclave.set_global enclave ~action:name "Protected" (Int64.of_int protected_port) in
    let* _ = Enclave.add_table_rule enclave ~pattern:Pattern.any ~action:name () in
    Ok ()
  end

let knock_state enclave ?(name = "port_knocking") ~src () =
  match Enclave.get_global_array enclave ~action:name "State" with
  | Some state when src >= 0 && src < Array.length state -> Some state.(src)
  | Some _ | None -> None
