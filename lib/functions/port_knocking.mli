(** Port-knocking stateful firewall (paper Table 1, after OpenState).

    A per-source state machine kept in enclave global state: a source
    host must "knock" on a secret sequence of ports before packets to the
    protected port are let through; any wrong knock resets the sequence.
    Everything else passes untouched.  This is the paper's example of a
    stateful function Eden supports out of the box while OpenFlow-style
    data planes cannot.

    Deployed on the {e receiving} side in practice; in the simulator we
    install it wherever the experiment needs the choke point. *)

val schema : Eden_lang.Schema.t
val action : Eden_lang.Ast.t
val program : unit -> Eden_bytecode.Program.t
val native : Eden_enclave.Enclave.Native_ctx.t -> unit

val install :
  ?name:string ->
  ?variant:[ `Interpreted | `Compiled | `Native ] ->
  Eden_enclave.Enclave.t ->
  knocks:int list ->
  protected_port:int ->
  max_hosts:int ->
  (unit, string) result
(** [knocks] is the secret port sequence (1–4 ports); knock state is kept
    per source host id in a [max_hosts]-sized table. *)

val knock_state : Eden_enclave.Enclave.t -> ?name:string -> src:int -> unit -> int64 option
(** Current automaton state for a source (tests/monitoring). *)
