open Eden_lang
module Enclave = Eden_enclave.Enclave
module Metadata = Eden_base.Metadata
module Pattern = Eden_base.Class_name.Pattern

let schema =
  Schema.with_standard_packet
    ~message:
      [
        Schema.field "IsRead";
        Schema.field "OpSize";
        Schema.field "Tenant";
      ]
    ~global_arrays:[ Schema.array "QueueMap" ]
    ()

(* Fig. 3: READs are policed on the operation size, everything else on
   the packet size; the packet goes to the tenant's queue. *)
let action =
  let open Dsl in
  action "pulsar"
    (seq
       [
         set_pkt "Charge" (if_ (msg "IsRead" = int 1) (msg "OpSize") (pkt "Size"));
         when_
           (msg "Tenant" >= int 0 && msg "Tenant" < glob_arr_len "QueueMap")
           (set_pkt "Queue" (glob_arr "QueueMap" (msg "Tenant")));
       ])

let program_memo =
  lazy
    (match Compile.compile schema action with
    | Ok p -> p
    | Error e -> invalid_arg ("Pulsar: " ^ Compile.error_to_string e))

let program () = Lazy.force program_memo

let native ctx =
  let md = Enclave.Native_ctx.metadata ctx in
  let pkt = Enclave.Native_ctx.packet ctx in
  let is_read =
    match Metadata.find_str Metadata.Field.operation md with
    | Some "READ" -> true
    | Some _ | None -> false
  in
  let charge =
    if is_read then
      match Metadata.find_int Metadata.Field.msg_size md with
      | Some s -> Int64.to_int s
      | None -> Eden_base.Packet.wire_size pkt
    else Eden_base.Packet.wire_size pkt
  in
  Enclave.Native_ctx.set_charge ctx charge;
  match Metadata.find_int Metadata.Field.tenant md with
  | None -> ()
  | Some tenant ->
    let map = Enclave.Native_ctx.global_array ctx "QueueMap" in
    let tenant = Int64.to_int tenant in
    if tenant >= 0 && tenant < Array.length map then
      Enclave.Native_ctx.set_queue ctx (Int64.to_int map.(tenant))

let ( let* ) r f = Result.bind r f

let storage_pattern =
  match Pattern.of_string "storage.*.*" with
  | Some p -> p
  | None -> assert false

let spec ?(name = "pulsar") ?(variant = `Interpreted) () =
  let impl =
    match variant with
    | `Interpreted -> Enclave.Interpreted (program ())
    | `Compiled -> Enclave.Compiled (program ())
    | `Native -> Enclave.Native native
  in
  {
    Enclave.i_name = name;
    i_impl = impl;
    i_msg_sources =
      [
        ("IsRead", Enclave.Metadata_flag (Metadata.Field.operation, "READ"));
        ("OpSize", Enclave.Metadata_int Metadata.Field.msg_size);
        ("Tenant", Enclave.Metadata_int Metadata.Field.tenant);
      ];
  }

let rule_pattern = storage_pattern

let install ?(name = "pulsar") ?(variant = `Interpreted) enclave ~queue_map =
  let* () = Enclave.install_action enclave (spec ~name ~variant ()) in
  let* () =
    Enclave.set_global_array enclave ~action:name "QueueMap"
      (Array.map Int64.of_int queue_map)
  in
  let* _ = Enclave.add_table_rule enclave ~pattern:rule_pattern ~action:name () in
  Ok ()

let set_queue_map enclave ?(name = "pulsar") queue_map =
  Enclave.set_global_array enclave ~action:name "QueueMap" (Array.map Int64.of_int queue_map)
