(** Pulsar-style tenant rate control (paper §2.1.2, Figs. 3 and 11).

    The action steers each packet to its tenant's rate-limited queue and
    charges the queue by the cost the operation imposes on the storage
    backend: READ requests are tiny on the wire but cause op-sized work,
    so they are charged by operation size; everything else is charged by
    packet size.  Message fields come from the storage stage's metadata
    ([operation], [msg_size], [tenant]); the [_global.QueueMap] array
    maps tenant → queue id. *)

val schema : Eden_lang.Schema.t
val action : Eden_lang.Ast.t
val program : unit -> Eden_bytecode.Program.t
val native : Eden_enclave.Enclave.Native_ctx.t -> unit

val spec :
  ?name:string ->
  ?variant:[ `Interpreted | `Compiled | `Native ] ->
  unit ->
  Eden_enclave.Enclave.install_spec
(** The install spec alone, for controller-mediated deployment. *)

val rule_pattern : Eden_base.Class_name.Pattern.t
(** [storage.*.*] — only storage-stage traffic is rate-controlled. *)

val install :
  ?name:string ->
  ?variant:[ `Interpreted | `Compiled | `Native ] ->
  Eden_enclave.Enclave.t ->
  queue_map:int array ->
  (unit, string) result
(** [queue_map.(tenant)] is the tenant's queue id.  The action only fires
    on classes matching [storage.*.*], so non-storage traffic bypasses
    rate control; the caller still has to define the queues on the host
    ({!Eden_netsim.Host.define_rate_queue}). *)

val set_queue_map : Eden_enclave.Enclave.t -> ?name:string -> int array -> (unit, string) result
