open Eden_lang
module Enclave = Eden_enclave.Enclave
module Metadata = Eden_base.Metadata
module Pattern = Eden_base.Class_name.Pattern

let level_field = "qjump_level"

let schema =
  Schema.with_standard_packet
    ~message:[ Schema.field "Level" ]
    ~global:[ Schema.field "MaxLevel" ]
    ()

let action =
  let open Dsl in
  action "qjump"
    (when_
       (msg "Level" > int 0)
       (let_ "lvl"
          (if_ (msg "Level" > glob "MaxLevel") (glob "MaxLevel") (msg "Level"))
       @@ fun lvl -> set_pkt "Priority" lvl ^^ set_pkt "Queue" lvl))

let program_memo =
  lazy
    (match Compile.compile schema action with
    | Ok p -> p
    | Error e -> invalid_arg ("Qjump: " ^ Compile.error_to_string e))

let program () = Lazy.force program_memo

let native ctx =
  match Metadata.find_int level_field (Enclave.Native_ctx.metadata ctx) with
  | None -> ()
  | Some level when Int64.compare level 0L <= 0 -> ()
  | Some level ->
    let max_level = Enclave.Native_ctx.global_get ctx "MaxLevel" in
    let lvl = Int64.to_int (if Int64.compare level max_level > 0 then max_level else level) in
    Enclave.Native_ctx.set_priority ctx lvl;
    Enclave.Native_ctx.set_queue ctx lvl

let metadata_for ~level = Metadata.add level_field (Metadata.int level) Metadata.empty

let ( let* ) r f = Result.bind r f

let install ?(name = "qjump") ?(variant = `Interpreted) enclave ~levels =
  if levels < 1 || levels > 7 then Error "qjump: levels must be within 1..7"
  else begin
    let impl =
      match variant with
      | `Interpreted -> Enclave.Interpreted (program ())
      | `Compiled -> Enclave.Compiled (program ())
      | `Native -> Enclave.Native native
    in
    let* () =
      Enclave.install_action enclave
        {
          Enclave.i_name = name;
          i_impl = impl;
          i_msg_sources = [ ("Level", Enclave.Metadata_int level_field) ];
        }
    in
    let* () = Enclave.set_global enclave ~action:name "MaxLevel" (Int64.of_int levels) in
    let* _ = Enclave.add_table_rule enclave ~pattern:Pattern.any ~action:name () in
    Ok ()
  end

let rate_for_level ~link_rate_bps ~levels ~level =
  if level < 1 || level > levels then invalid_arg "Qjump.rate_for_level: bad level";
  (* Higher levels buy latency with throughput: each level halves the
     allowed rate; level 1 is work-conserving. *)
  link_rate_bps *. Float.pow 0.5 (float_of_int (level - 1))
