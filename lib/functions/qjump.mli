(** QJump-style latency levels (paper Table 1; Grosvenor et al. 2015).

    QJump assigns each application to a level: higher levels get strict
    network priority but are rate-limited to a level-dependent throughput
    factor, giving bounded latency to the highest level.  The Eden
    rendition reads the level from stage metadata ([qjump_level]), maps
    it to an 802.1q priority, and steers the packet to the level's
    rate-limited queue (the host defines one token bucket per level).

    Traffic without a level passes untouched. *)

val schema : Eden_lang.Schema.t
val action : Eden_lang.Ast.t
val program : unit -> Eden_bytecode.Program.t
val native : Eden_enclave.Enclave.Native_ctx.t -> unit

val metadata_for : level:int -> Eden_base.Metadata.t
(** Stage metadata announcing the sender's QJump level (1 = lowest). *)

val install :
  ?name:string ->
  ?variant:[ `Interpreted | `Compiled | `Native ] ->
  Eden_enclave.Enclave.t ->
  levels:int ->
  (unit, string) result
(** Levels 1..[levels] map to priorities 1..[levels] (clamped to 7) and
    queue ids 1..[levels].  Define the matching rate queues with
    {!Eden_netsim.Host.define_rate_queue}. *)

val rate_for_level : link_rate_bps:float -> levels:int -> level:int -> float
(** QJump's throughput factor: level [l] is limited to
    [link_rate * f^(l - 1)] with [f = 0.5] — higher levels trade
    throughput for strict priority and bounded latency; level 1 is
    work-conserving. *)
