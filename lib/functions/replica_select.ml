open Eden_lang
module Enclave = Eden_enclave.Enclave
module Metadata = Eden_base.Metadata
module Pattern = Eden_base.Class_name.Pattern

let schema =
  Schema.with_standard_packet
    ~message:[ Schema.field "KeyHash" ]
    ~global_arrays:[ Schema.array "ReplicaLabels" ]
    ()

let action =
  let open Dsl in
  action "replica_select"
    (when_
       (glob_arr_len "ReplicaLabels" > int 0 && msg "KeyHash" >= int 0)
       (set_pkt "Path"
          (glob_arr "ReplicaLabels" (msg "KeyHash" % glob_arr_len "ReplicaLabels"))))

let program_memo =
  lazy
    (match Compile.compile schema action with
    | Ok p -> p
    | Error e -> invalid_arg ("Replica_select: " ^ Compile.error_to_string e))

let program () = Lazy.force program_memo

let replica_for ~n_replicas ~key_hash =
  if n_replicas <= 0 then invalid_arg "replica_for: no replicas";
  abs key_hash mod n_replicas

let native ctx =
  let labels = Enclave.Native_ctx.global_array ctx "ReplicaLabels" in
  let n = Array.length labels in
  if n > 0 then
    match
      Metadata.find_int "key_hash" (Enclave.Native_ctx.metadata ctx)
    with
    | Some h when Int64.compare h 0L >= 0 ->
      let i = replica_for ~n_replicas:n ~key_hash:(Int64.to_int h) in
      Enclave.Native_ctx.set_path ctx (Int64.to_int labels.(i))
    | Some _ | None -> ()

let ( let* ) r f = Result.bind r f

let default_pattern =
  match Pattern.of_string "memcached.*.*" with Some p -> p | None -> assert false

let install ?(name = "replica_select") ?(variant = `Interpreted)
    ?(pattern = default_pattern) enclave ~replica_labels =
  let impl =
    match variant with
    | `Interpreted -> Enclave.Interpreted (program ())
    | `Compiled -> Enclave.Compiled (program ())
    | `Native -> Enclave.Native native
  in
  let* () =
    Enclave.install_action enclave
      {
        Enclave.i_name = name;
        i_impl = impl;
        i_msg_sources = [ ("KeyHash", Enclave.Metadata_int "key_hash") ];
      }
  in
  let* () =
    Enclave.set_global_array enclave ~action:name "ReplicaLabels"
      (Array.map Int64.of_int replica_labels)
  in
  let* _ = Enclave.add_table_rule enclave ~pattern ~action:name () in
  Ok ()
