(** mcrouter-style replica selection (paper Table 1, §2.1.1).

    Facebook's mcrouter routes memcached requests by key; SINBAD picks
    write endpoints.  Eden expresses the same idea at the data plane: the
    memcached stage attaches the key's hash ([key_hash]) to each GET/PUT
    message, and the action picks a replica deterministically from the
    hash and steers the message's packets to it with a route label
    ([_global.ReplicaLabels], one label per replica; switches map labels
    to replicas). All packets of one message go to the same replica. *)

val schema : Eden_lang.Schema.t
val action : Eden_lang.Ast.t
val program : unit -> Eden_bytecode.Program.t
val native : Eden_enclave.Enclave.Native_ctx.t -> unit

val replica_for : n_replicas:int -> key_hash:int -> int
(** Reference model of the hash → replica mapping. *)

val install :
  ?name:string ->
  ?variant:[ `Interpreted | `Compiled | `Native ] ->
  ?pattern:Eden_base.Class_name.Pattern.t ->
  Eden_enclave.Enclave.t ->
  replica_labels:int array ->
  (unit, string) result
(** Default pattern [memcached.*.*]: only memcached-classified traffic is
    steered. *)
