open Eden_lang
module Enclave = Eden_enclave.Enclave
module Metadata = Eden_base.Metadata
module Pattern = Eden_base.Class_name.Pattern

let schema =
  Schema.with_standard_packet
    ~message:[ Schema.field "FlowSize" ]
    ~global_arrays:[ Schema.array "Thresholds" ]
    ()

let search_fun =
  let open Dsl in
  fn "search" [ "i" ]
    (if_ (var "i" >= glob_arr_len "Thresholds")
       (int 7 - glob_arr_len "Thresholds")
       (if_ (msg "FlowSize" <= glob_arr "Thresholds" (var "i"))
          (int 7 - var "i")
          (call "search" [ var "i" + int 1 ])))

let action =
  let open Dsl in
  action ~funs:[ search_fun ] "sff"
    (when_ (msg "FlowSize" > int 0) (set_pkt "Priority" (call "search" [ int 0 ])))

let program_memo =
  lazy
    (match Compile.compile schema action with
    | Ok p -> p
    | Error e -> invalid_arg ("Sff: " ^ Compile.error_to_string e))

let program () = Lazy.force program_memo

let native ctx =
  match
    Metadata.find_int Metadata.Field.flow_size (Enclave.Native_ctx.metadata ctx)
  with
  | None -> ()
  | Some size when Int64.compare size 0L <= 0 -> ()
  | Some size ->
    let thresholds = Enclave.Native_ctx.global_array ctx "Thresholds" in
    Enclave.Native_ctx.set_priority ctx (Pias.priority_for ~thresholds ~size)

let metadata_for ~size =
  Metadata.empty |> Metadata.add Metadata.Field.flow_size (Metadata.int size)

let ( let* ) r f = Result.bind r f

let spec ?(name = "sff") ?(variant = `Interpreted) () =
  let impl =
    match variant with
    | `Interpreted -> Enclave.Interpreted (program ())
    | `Compiled -> Enclave.Compiled (program ())
    | `Native -> Enclave.Native native
  in
  {
    Enclave.i_name = name;
    i_impl = impl;
    i_msg_sources = [ ("FlowSize", Enclave.Metadata_int Metadata.Field.flow_size) ];
  }

let rule_pattern = Pattern.any

let install ?(name = "sff") ?(variant = `Interpreted) enclave ~thresholds =
  if Array.length thresholds > 7 then Error "sff: at most 7 thresholds"
  else begin
    let* () = Enclave.install_action enclave (spec ~name ~variant ()) in
    let* () = Enclave.set_global_array enclave ~action:name "Thresholds" thresholds in
    let* _ = Enclave.add_table_rule enclave ~pattern:rule_pattern ~action:name () in
    Ok ()
  end

let set_thresholds enclave ?(name = "sff") thresholds =
  Enclave.set_global_array enclave ~action:name "Thresholds" thresholds
