(** Shortest-flow-first scheduling with application support (paper §5.1).

    Unlike PIAS, SFF does not track flow sizes at the data plane: the
    application (stage) announces the flow's total size in metadata
    ([flow_size]) when the flow starts, and the action function maps that
    size to a fixed priority through the same threshold table.  The
    mapping happens once per flow and never changes — the paper notes
    this gives slightly better, less variable FCTs than PIAS. *)

val schema : Eden_lang.Schema.t
val action : Eden_lang.Ast.t
val program : unit -> Eden_bytecode.Program.t
val native : Eden_enclave.Enclave.Native_ctx.t -> unit

val metadata_for : size:int -> Eden_base.Metadata.t
(** Flow metadata announcing [flow_size] (what an SFF-aware stage
    attaches to each flow's message). *)

val spec :
  ?name:string ->
  ?variant:[ `Interpreted | `Compiled | `Native ] ->
  unit ->
  Eden_enclave.Enclave.install_spec
(** The install spec alone, for controller-mediated deployment. *)

val rule_pattern : Eden_base.Class_name.Pattern.t

val install :
  ?name:string ->
  ?variant:[ `Interpreted | `Compiled | `Native ] ->
  Eden_enclave.Enclave.t ->
  thresholds:int64 array ->
  (unit, string) result

val set_thresholds :
  Eden_enclave.Enclave.t -> ?name:string -> int64 array -> (unit, string) result
