open Eden_lang
module Enclave = Eden_enclave.Enclave
module Pattern = Eden_base.Class_name.Pattern

let schema =
  Schema.with_standard_packet
    ~message:[ Schema.field "CachedPath" ~access:Schema.Read_write ~default:(-1L) ]
    ~global_arrays:[ Schema.array "Paths" ]
    ()

(* Weighted-random pick over [| label0; w0; label1; w1; … |] (weights in
   parts per 1000): draw r in [0, 1000) and walk the pairs accumulating
   weight until it exceeds r. *)
let pick_fun =
  let open Dsl in
  fn "pick" [ "i"; "acc"; "r" ]
    (if_
       (var "i" + int 1 >= glob_arr_len "Paths")
       (glob_arr "Paths" (var "i"))
       (if_
          (var "r" < var "acc" + glob_arr "Paths" (var "i" + int 1))
          (glob_arr "Paths" (var "i"))
          (call "pick"
             [ var "i" + int 2; var "acc" + glob_arr "Paths" (var "i" + int 1); var "r" ])))

let action =
  let open Dsl in
  action ~funs:[ pick_fun ] "wcmp"
    (when_
       (glob_arr_len "Paths" >= int 2)
       (set_pkt "Path" (call "pick" [ int 0; int 0; rand (int 1000) ])))

(* messageWCMP (paper Fig. 2): cache the chosen path in message state so
   every packet of the message follows the same path. *)
let message_action =
  let open Dsl in
  action ~funs:[ pick_fun ] "message_wcmp"
    (when_
       (glob_arr_len "Paths" >= int 2)
       (seq
          [
            when_
              (msg "CachedPath" < int 0)
              (set_msg "CachedPath" (call "pick" [ int 0; int 0; rand (int 1000) ]));
            set_pkt "Path" (msg "CachedPath");
          ]))

let compile_exn act =
  match Compile.compile schema act with
  | Ok p -> p
  | Error e -> invalid_arg ("Wcmp: " ^ Compile.error_to_string e)

let program_memo = lazy (compile_exn action)
let message_program_memo = lazy (compile_exn message_action)
let program () = Lazy.force program_memo
let message_program () = Lazy.force message_program_memo

let native ctx =
  let paths = Enclave.Native_ctx.global_array ctx "Paths" in
  let n = Array.length paths in
  if n >= 2 then begin
    let r = Int64.of_int (Eden_base.Rng.int (Enclave.Native_ctx.rng ctx) 1000) in
    let rec pick i acc =
      if i + 1 >= n then paths.(i)
      else begin
        let acc = Int64.add acc paths.(i + 1) in
        if Int64.compare r acc < 0 then paths.(i) else pick (i + 2) acc
      end
    in
    Enclave.Native_ctx.set_path ctx (Int64.to_int (pick 0 0L))
  end

let ecmp_matrix ~labels =
  let n = List.length labels in
  if n = 0 then [||]
  else begin
    let w = 1000 / n in
    let arr = Array.make (2 * n) 0L in
    List.iteri
      (fun i label ->
        arr.(2 * i) <- Int64.of_int label;
        arr.((2 * i) + 1) <- Int64.of_int (if i = n - 1 then 1000 - (w * (n - 1)) else w))
      labels;
    arr
  end

let ( let* ) r f = Result.bind r f

let spec ?(name = "wcmp") ?(variant = `Packet) () =
  let impl =
    match variant with
    | `Packet -> Enclave.Interpreted (program ())
    | `Message -> Enclave.Interpreted (message_program ())
    | `Compiled -> Enclave.Compiled (program ())
    | `Compiled_message -> Enclave.Compiled (message_program ())
    | `Native -> Enclave.Native native
  in
  {
    Enclave.i_name = name;
    i_impl = impl;
    i_msg_sources = [ ("CachedPath", Enclave.Stateful (-1L)) ];
  }

let rule_pattern = Pattern.any

let install ?(name = "wcmp") ?(variant = `Packet) enclave ~matrix =
  let* () = Enclave.install_action enclave (spec ~name ~variant ()) in
  let* () = Enclave.set_global_array enclave ~action:name "Paths" matrix in
  let* _ = Enclave.add_table_rule enclave ~pattern:rule_pattern ~action:name () in
  Ok ()

let set_matrix enclave ?(name = "wcmp") matrix =
  Enclave.set_global_array enclave ~action:name "Paths" matrix
