(** Weighted-cost multipathing (paper §2.1.1, Figs. 2 and 10).

    The data-plane half of WCMP: pick a route label for each packet in a
    weighted-random fashion from a controller-supplied path matrix.  The
    matrix is a flat global array [\[| label0; w0; label1; w1; … |\]] with
    weights in parts per 1000 (see
    [Eden_controller.Controller.wcmp_path_matrix]).

    Three variants:
    - [action]: per-packet weighted choice (the paper's WCMP case study —
      maximal balance, reorders TCP);
    - [message_action]: messageWCMP from Fig. 2 — all packets of a message
      keep the first packet's path (per connection under the enclave's
      flow classification);
    - ECMP is WCMP with equal weights: use {!ecmp_matrix}. *)

val schema : Eden_lang.Schema.t
val action : Eden_lang.Ast.t
val message_action : Eden_lang.Ast.t

val program : unit -> Eden_bytecode.Program.t
val message_program : unit -> Eden_bytecode.Program.t

val native : Eden_enclave.Enclave.Native_ctx.t -> unit
(** Hard-coded equivalent of [action], for native-vs-Eden comparisons. *)

val ecmp_matrix : labels:int list -> int64 array
(** Equal-weight matrix over the given labels. *)

val spec :
  ?name:string ->
  ?variant:[ `Packet | `Message | `Compiled | `Compiled_message | `Native ] ->
  unit ->
  Eden_enclave.Enclave.install_spec
(** The install spec alone, for controller-mediated deployment. *)

val rule_pattern : Eden_base.Class_name.Pattern.t

val install :
  ?name:string ->
  ?variant:[ `Packet | `Message | `Compiled | `Compiled_message | `Native ] ->
  Eden_enclave.Enclave.t ->
  matrix:int64 array ->
  (unit, string) result
(** Install (default name ["wcmp"], packet variant), bind the global
    [Paths] matrix, and match every class in table 0. *)

val set_matrix : Eden_enclave.Enclave.t -> ?name:string -> int64 array -> (unit, string) result
(** Controller update path: swap the path matrix at run time. *)
