module P = Eden_bytecode.Program
module Op = Eden_bytecode.Opcode
module Asm = Eden_bytecode.Asm
module Smap = Map.Make (String)

type error =
  | Type_error of Typecheck.error
  | Unsupported of string
  | Verifier_rejected of Eden_bytecode.Verifier.error

let error_to_string = function
  | Type_error e -> Printf.sprintf "type error: %s" e.Typecheck.message
  | Unsupported msg -> Printf.sprintf "unsupported: %s" msg
  | Verifier_rejected e ->
    Printf.sprintf "internal error: generated code failed verification: %s"
      (Eden_bytecode.Verifier.error_to_string e)

let pp_error fmt e = Format.pp_print_string fmt (error_to_string e)

exception Compile_error of error

let unsupported fmt = Printf.ksprintf (fun m -> raise (Compile_error (Unsupported m))) fmt

(* ------------------------------------------------------------------ *)
(* Constant folding                                                    *)
(* ------------------------------------------------------------------ *)

let rec fold_consts (e : Ast.expr) : Ast.expr =
  let open Ast in
  match e with
  | Int _ | Bool _ | Unit | Var _ | Field _ | Arr_len _ | Clock -> e
  | Arr_get (ent, n, i) -> Arr_get (ent, n, fold_consts i)
  | Let l -> Let { l with rhs = fold_consts l.rhs; body = fold_consts l.body }
  | Assign (x, v) -> Assign (x, fold_consts v)
  | Set_field (ent, n, v) -> Set_field (ent, n, fold_consts v)
  | Arr_set (ent, n, i, v) -> Arr_set (ent, n, fold_consts i, fold_consts v)
  | If (c, t, f) -> (
    match fold_consts c with
    | Bool true -> fold_consts t
    | Bool false -> fold_consts f
    | c' -> If (c', fold_consts t, fold_consts f))
  | While (c, b) -> While (fold_consts c, fold_consts b)
  | Seq (a, b) -> Seq (fold_consts a, fold_consts b)
  | Unop (op, a) -> (
    match (op, fold_consts a) with
    | Neg, Int v -> Int (Int64.neg v)
    | Not, Bool b -> Bool (not b)
    | op, a' -> Unop (op, a'))
  | Binop (op, a, b) -> (
    let a' = fold_consts a and b' = fold_consts b in
    match (op, a', b') with
    | Add, Int x, Int y -> Int (Int64.add x y)
    | Sub, Int x, Int y -> Int (Int64.sub x y)
    | Mul, Int x, Int y -> Int (Int64.mul x y)
    | (Div | Rem), Int _, Int 0L -> Binop (op, a', b') (* keep the runtime fault *)
    | Div, Int x, Int y -> Int (Int64.div x y)
    | Rem, Int x, Int y -> Int (Int64.rem x y)
    | And, Bool x, Bool y -> Bool (x && y)
    | Or, Bool x, Bool y -> Bool (x || y)
    | Eq, Int x, Int y -> Bool (Int64.equal x y)
    | Ne, Int x, Int y -> Bool (not (Int64.equal x y))
    | Lt, Int x, Int y -> Bool (Int64.compare x y < 0)
    | Le, Int x, Int y -> Bool (Int64.compare x y <= 0)
    | Gt, Int x, Int y -> Bool (Int64.compare x y > 0)
    | Ge, Int x, Int y -> Bool (Int64.compare x y >= 0)
    | op, a', b' -> Binop (op, a', b'))
  | Call (fn, args) -> Call (fn, List.map fold_consts args)
  | Rand b -> Rand (fold_consts b)
  | Hash (a, b) -> Hash (fold_consts a, fold_consts b)

(* ------------------------------------------------------------------ *)
(* Environment layout                                                  *)
(* ------------------------------------------------------------------ *)

type layout = {
  scalar_slots : P.scalar_slot array;
  array_slots : P.array_slot array;
  scalar_index : (Ast.entity * string, int) Hashtbl.t;  (* -> local *)
  array_index : (Ast.entity * string, int) Hashtbl.t;  (* -> slot *)
}

let build_layout schema (action : Ast.t) =
  let to_access = function `Read -> P.Read_only | `Write -> P.Read_write in
  let min_len ent name =
    match Schema.find_array schema ent name with
    | Some { Schema.a_min_length = Some n; _ } -> n
    | _ -> 0
  in
  let fields = Ast.fields_used action in
  let arrays = Ast.arrays_used action in
  let scalar_index = Hashtbl.create 16 in
  let array_index = Hashtbl.create 16 in
  let scalar_slots =
    Array.of_list
      (List.mapi
         (fun i (ent, name, access) ->
           Hashtbl.replace scalar_index (ent, name) i;
           {
             P.s_name = name;
             s_entity = Ast.entity_to_program ent;
             s_access = to_access access;
             s_local = i;
           })
         fields)
  in
  let array_slots =
    Array.of_list
      (List.mapi
         (fun i (ent, name, access) ->
           Hashtbl.replace array_index (ent, name) i;
           {
             P.a_name = name;
             a_entity = Ast.entity_to_program ent;
             a_access = to_access access;
             a_min_len = min_len ent name;
           })
         arrays)
  in
  { scalar_slots; array_slots; scalar_index; array_index }

(* ------------------------------------------------------------------ *)
(* Code generation                                                     *)
(* ------------------------------------------------------------------ *)

type tail_ctx = { t_fn : string; t_params : int list; t_start : string }

let is_self_recursive fn (fd : Ast.fundef) =
  Ast.fold_expr
    (fun acc e -> acc || match e with Ast.Call (g, _) -> String.equal g fn | _ -> false)
    false fd.fn_body

type state = {
  layout : layout;
  funs : Ast.fundef Smap.t;
  mutable items : Asm.item list;  (* reversed *)
  mutable next_local : int;
  mutable next_label : int;
}

let emit st item = st.items <- item :: st.items
let emit_op st op = emit st (Asm.I op)

let fresh_label st base =
  let l = Printf.sprintf "%s_%d" base st.next_label in
  st.next_label <- st.next_label + 1;
  l

let fresh_local st =
  let l = st.next_local in
  st.next_local <- l + 1;
  l

let scalar_local st ent name =
  match Hashtbl.find_opt st.layout.scalar_index (ent, name) with
  | Some l -> l
  | None -> unsupported "field %s.%s missing from layout" (Ast.entity_to_string ent) name

let array_slot st ent name =
  match Hashtbl.find_opt st.layout.array_index (ent, name) with
  | Some s -> s
  | None -> unsupported "array %s.%s missing from layout" (Ast.entity_to_string ent) name

let binop_code : Ast.binop -> Op.t = function
  | Ast.Add -> Op.Add
  | Ast.Sub -> Op.Sub
  | Ast.Mul -> Op.Mul
  | Ast.Div -> Op.Div
  | Ast.Rem -> Op.Rem
  | Ast.And -> Op.Band (* operands are canonical 0/1 *)
  | Ast.Or -> Op.Bor
  | Ast.Band -> Op.Band
  | Ast.Bor -> Op.Bor
  | Ast.Bxor -> Op.Bxor
  | Ast.Shl -> Op.Shl
  | Ast.Shr -> Op.Shr
  | Ast.Eq -> Op.Eq
  | Ast.Ne -> Op.Ne
  | Ast.Lt -> Op.Lt
  | Ast.Le -> Op.Le
  | Ast.Gt -> Op.Gt
  | Ast.Ge -> Op.Ge

let max_inline_depth = 64

(* [compile_expr st scope inline_stack tail e]:
   - [scope] maps variable names to local indices;
   - [inline_stack] is the chain of functions currently being inlined;
   - [tail], when [Some ctx], marks that [e] sits in tail position of the
     recursive function [ctx.t_fn], enabling the call-to-jump rewrite. *)
let rec compile_expr st scope inline_stack tail (e : Ast.expr) : unit =
  match e with
  | Ast.Int v -> emit_op st (Op.Push v)
  | Ast.Bool b -> emit_op st (Op.Push (if b then 1L else 0L))
  | Ast.Unit -> ()
  | Ast.Var x -> (
    match Smap.find_opt x scope with
    | Some l -> emit_op st (Op.Load l)
    | None -> unsupported "unbound variable %S (compiler)" x)
  | Ast.Field (ent, name) -> emit_op st (Op.Load (scalar_local st ent name))
  | Ast.Arr_get (ent, name, idx) ->
    compile_expr st scope inline_stack None idx;
    emit_op st (Op.Gaload (array_slot st ent name))
  | Ast.Arr_len (ent, name) -> emit_op st (Op.Galen (array_slot st ent name))
  | Ast.Let { name; mutable_ = _; rhs; body } ->
    compile_expr st scope inline_stack None rhs;
    let l = fresh_local st in
    emit_op st (Op.Store l);
    compile_expr st (Smap.add name l scope) inline_stack tail body
  | Ast.Assign (x, rhs) -> (
    compile_expr st scope inline_stack None rhs;
    match Smap.find_opt x scope with
    | Some l -> emit_op st (Op.Store l)
    | None -> unsupported "unbound variable %S (compiler)" x)
  | Ast.Set_field (ent, name, rhs) ->
    compile_expr st scope inline_stack None rhs;
    emit_op st (Op.Store (scalar_local st ent name))
  | Ast.Arr_set (ent, name, idx, rhs) ->
    compile_expr st scope inline_stack None idx;
    compile_expr st scope inline_stack None rhs;
    emit_op st (Op.Gastore (array_slot st ent name))
  | Ast.If (cond, then_, else_) ->
    let else_l = fresh_label st "else" in
    let end_l = fresh_label st "endif" in
    compile_expr st scope inline_stack None cond;
    emit st (Asm.Jz_l else_l);
    compile_expr st scope inline_stack tail then_;
    emit st (Asm.Jmp_l end_l);
    emit st (Asm.Label else_l);
    compile_expr st scope inline_stack tail else_;
    emit st (Asm.Label end_l)
  | Ast.While (cond, body) ->
    let loop_l = fresh_label st "loop" in
    let done_l = fresh_label st "done" in
    emit st (Asm.Label loop_l);
    compile_expr st scope inline_stack None cond;
    emit st (Asm.Jz_l done_l);
    compile_expr st scope inline_stack None body;
    emit st (Asm.Jmp_l loop_l);
    emit st (Asm.Label done_l)
  | Ast.Seq (a, b) ->
    compile_expr st scope inline_stack None a;
    compile_expr st scope inline_stack tail b
  | Ast.Binop (op, a, b) ->
    compile_expr st scope inline_stack None a;
    compile_expr st scope inline_stack None b;
    emit_op st (binop_code op)
  | Ast.Unop (Ast.Neg, a) ->
    compile_expr st scope inline_stack None a;
    emit_op st Op.Neg
  | Ast.Unop (Ast.Not, a) ->
    compile_expr st scope inline_stack None a;
    emit_op st Op.Not
  | Ast.Rand bound ->
    compile_expr st scope inline_stack None bound;
    emit_op st Op.Rand
  | Ast.Clock -> emit_op st Op.Clock
  | Ast.Hash (a, b) ->
    compile_expr st scope inline_stack None a;
    compile_expr st scope inline_stack None b;
    emit_op st Op.Hashmix
  | Ast.Call (fn, args) -> compile_call st scope inline_stack tail fn args

and compile_call st scope inline_stack tail fn args =
  (* Tail self-call inside the function currently being expanded as a
     loop: assign parameters and jump back to the loop head. *)
  match tail with
  | Some ctx when String.equal ctx.t_fn fn ->
    List.iter (fun a -> compile_expr st scope inline_stack None a) args;
    List.iter (fun l -> emit_op st (Op.Store l)) (List.rev ctx.t_params);
    emit st (Asm.Jmp_l ctx.t_start)
  | _ ->
    if List.mem fn inline_stack then
      unsupported
        "function %S: only direct tail self-recursion is supported (found a \
         non-tail or mutually recursive call)"
        fn;
    if List.length inline_stack >= max_inline_depth then
      unsupported "inlining depth limit exceeded at %S" fn;
    let fd =
      match Smap.find_opt fn st.funs with
      | Some fd -> fd
      | None -> unsupported "call to undefined function %S (compiler)" fn
    in
    (* Evaluate arguments left-to-right, then pop into fresh parameter
       locals (reverse order: last argument is on top of the stack). *)
    List.iter (fun a -> compile_expr st scope inline_stack None a) args;
    let param_locals = List.map (fun _ -> fresh_local st) fd.fn_params in
    List.iter (fun l -> emit_op st (Op.Store l)) (List.rev param_locals);
    let fn_scope =
      List.fold_left2
        (fun acc p l -> Smap.add p l acc)
        Smap.empty fd.fn_params param_locals
    in
    if is_self_recursive fn fd then begin
      let start_l = fresh_label st ("fn_" ^ fn) in
      emit st (Asm.Label start_l);
      let ctx = { t_fn = fn; t_params = param_locals; t_start = start_l } in
      compile_expr st fn_scope (fn :: inline_stack) (Some ctx) fd.fn_body
    end
    else compile_expr st fn_scope (fn :: inline_stack) None fd.fn_body

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

let compile ?(stack_limit = P.default_stack_limit) ?(heap_limit = P.default_heap_limit)
    ?(step_limit = P.default_step_limit) schema (action : Ast.t) =
  match Typecheck.check schema action with
  | Error e -> Error (Type_error e)
  | Ok () -> (
    try
      let action = { action with af_body = fold_consts action.af_body } in
      let action =
        {
          action with
          af_funs =
            List.map
              (fun (fd : Ast.fundef) -> { fd with fn_body = fold_consts fd.fn_body })
              action.af_funs;
        }
      in
      let layout = build_layout schema action in
      let funs =
        List.fold_left
          (fun acc (fd : Ast.fundef) -> Smap.add fd.fn_name fd acc)
          Smap.empty action.af_funs
      in
      let st =
        {
          layout;
          funs;
          items = [];
          next_local = Array.length layout.scalar_slots;
          next_label = 0;
        }
      in
      compile_expr st Smap.empty [] None action.af_body;
      let code =
        match Asm.assemble (List.rev st.items) with
        | Ok code -> code
        | Error msg -> unsupported "assembly failed: %s" msg
      in
      let code = if Array.length code = 0 then [| Op.Halt |] else code in
      let program =
        P.make ~name:action.af_name ~code ~scalar_slots:layout.scalar_slots
          ~array_slots:layout.array_slots ~n_locals:(max st.next_local 1) ~stack_limit
          ~heap_limit ~step_limit ()
      in
      (* The tail-recursion-to-loop rewrite leaves dead [Jmp]s after
         branches that end in a self-call; drop them so the program
         satisfies the verifier's no-unreachable-code (strict) mode. *)
      let program = P.strip_unreachable program in
      match Eden_bytecode.Verifier.verify ~strict:true program with
      | Ok () -> Ok program
      | Error e -> Error (Verifier_rejected e)
    with Compile_error e -> Error e)
