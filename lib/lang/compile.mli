(** The action-function compiler (paper §3.4.4).

    Pipeline: type check → resolve input/output dependencies (which entity
    fields and arrays the function touches become environment slots with
    the access actually required) → translate the AST to stack bytecode.

    Translation notes, matching the paper's description:
    - Value types live on the operand stack and in locals; arrays live in
      environment slots or the program heap.
    - Direct tail self-recursion is recognized and compiled as a loop
      (the paper's "recognizing tail recursion and compiling it as a
      loop" optimization); other recursion is rejected because the
      interpreter has no call frames.
    - Non-recursive auxiliary functions are inlined at each call site.
    - Constant sub-expressions are folded. *)

type error =
  | Type_error of Typecheck.error
  | Unsupported of string
      (** e.g. non-tail recursion, mutual recursion, excessive inlining *)
  | Verifier_rejected of Eden_bytecode.Verifier.error
      (** compiler bug guard: emitted code failed verification *)

val error_to_string : error -> string
val pp_error : Format.formatter -> error -> unit

val fold_consts : Ast.expr -> Ast.expr
(** Constant folding with the interpreter's exact [Int64] semantics
    (wrapping arithmetic, runtime division faults preserved), including
    dead-[If] elimination when the condition folds to a constant.  Run
    automatically during {!compile}; exposed for the install-time
    optimizer in [Eden_analysis.Optimize]. *)

val compile :
  ?stack_limit:int ->
  ?heap_limit:int ->
  ?step_limit:int ->
  Schema.t ->
  Ast.t ->
  (Eden_bytecode.Program.t, error) result
(** The result has passed {!Eden_bytecode.Verifier.verify}. *)
