type access = Read_only | Read_write
type header_map = { hm_protocol : string; hm_field : string }

type field = {
  f_name : string;
  f_access : access;
  f_header_maps : header_map list;
  f_default : int64;
}

type array_decl = {
  a_name : string;
  a_access : access;
  a_min_length : int option;
  a_max_length : int option;
}
type entity_schema = { fields : field list; arrays : array_decl list }
type t = { packet : entity_schema; message : entity_schema; global : entity_schema }

let field ?(access = Read_only) ?(header_maps = []) ?(default = 0L) name =
  { f_name = name; f_access = access; f_header_maps = header_maps; f_default = default }

let array ?(access = Read_only) ?min_length ?max_length name =
  (match (min_length, max_length) with
  | Some mn, _ when mn < 0 -> invalid_arg "Schema.array: negative min_length"
  | _, Some mx when mx < 0 -> invalid_arg "Schema.array: negative max_length"
  | Some mn, Some mx when mn > mx -> invalid_arg "Schema.array: min_length > max_length"
  | _ -> ());
  { a_name = name; a_access = access; a_min_length = min_length; a_max_length = max_length }

let empty_entity = { fields = []; arrays = [] }
let empty = { packet = empty_entity; message = empty_entity; global = empty_entity }

let make ?(packet = []) ?(message = []) ?(global = []) ?(message_arrays = [])
    ?(global_arrays = []) () =
  {
    packet = { fields = packet; arrays = [] };
    message = { fields = message; arrays = message_arrays };
    global = { fields = global; arrays = global_arrays };
  }

let entity t = function
  | Ast.Packet -> t.packet
  | Ast.Message -> t.message
  | Ast.Global -> t.global

let find_field t ent name =
  List.find_opt (fun f -> String.equal f.f_name name) (entity t ent).fields

let find_array t ent name =
  List.find_opt (fun a -> String.equal a.a_name name) (entity t ent).arrays

let hm protocol field_name = { hm_protocol = protocol; hm_field = field_name }

let standard_packet_fields =
  [
    field "Size" ~header_maps:[ hm "IPv4" "TotalLength"; hm "IPv6" "PayloadLength" ];
    field "PayloadSize";
    field "Priority" ~access:Read_write ~header_maps:[ hm "802.1q" "PriorityCodePoint" ];
    field "Path" ~access:Read_write ~header_maps:[ hm "802.1q" "VlanId" ];
    field "SrcHost";
    field "SrcPort";
    field "DstHost";
    field "DstPort";
    field "Proto";
    field "IsData";
    field "Drop" ~access:Read_write;
    field "Queue" ~access:Read_write ~default:(-1L);
    field "Charge" ~access:Read_write ~default:(-1L);
    field "GotoTable" ~access:Read_write ~default:(-1L);
  ]

let with_standard_packet ?message ?global ?message_arrays ?global_arrays () =
  make ~packet:standard_packet_fields ?message ?global ?message_arrays ?global_arrays ()

(* Most permissive schema consistent with an action's usage: standard
   packet fields, read-write message/global scalars and arrays for
   whatever the action touches.  For tooling (parse-and-compile from
   text); production installs should declare access explicitly. *)
let infer (action : Ast.t) =
  let scalar (ent, name, _access) =
    match ent with
    | Ast.Packet -> None
    | Ast.Message | Ast.Global ->
      Some (ent, { f_name = name; f_access = Read_write; f_header_maps = []; f_default = 0L })
  in
  let arr (ent, name, _access) =
    (ent, { a_name = name; a_access = Read_write; a_min_length = None; a_max_length = None })
  in
  let fields = List.filter_map scalar (Ast.fields_used action) in
  let arrays = List.map arr (Ast.arrays_used action) in
  let by ent l = List.filter_map (fun (e, x) -> if e = ent then Some x else None) l in
  {
    packet = { fields = standard_packet_fields; arrays = [] };
    message = { fields = by Ast.Message fields; arrays = by Ast.Message arrays };
    global = { fields = by Ast.Global fields; arrays = by Ast.Global arrays };
  }
