(** State-variable annotations.

    The paper's compiler relies on three kinds of type annotations supplied
    by the programmer (§3.4.4): the lifetime of each state variable (packet
    / message / function), its access permissions, and its mapping onto
    packet-header values (Fig. 8).  A [Schema.t] is the OCaml rendition of
    those annotated type declarations: it lists, for each entity, the
    scalar fields and arrays an action function may touch. *)

type access = Read_only | Read_write

type header_map = { hm_protocol : string; hm_field : string }
(** e.g. [{ hm_protocol = "802.1q"; hm_field = "PriorityCodePoint" }]. *)

type field = {
  f_name : string;
  f_access : access;
  f_header_maps : header_map list;  (** only meaningful on packet fields *)
  f_default : int64;  (** value when the backing state does not exist yet *)
}

type array_decl = {
  a_name : string;
  a_access : access;
  a_min_length : int option;
      (** Declared lower bound on the backing array's length.  Becomes the
          program's [a_min_len] contract, which the enclave enforces, so
          bounds analysis may rely on it. *)
  a_max_length : int option;
      (** Declared upper bound; only used to tighten static cost bounds on
          loops that walk the array. *)
}

type entity_schema = { fields : field list; arrays : array_decl list }

type t = {
  packet : entity_schema;
  message : entity_schema;
  global : entity_schema;
}

val field :
  ?access:access -> ?header_maps:header_map list -> ?default:int64 -> string -> field
(** Defaults: read-only, no header maps, default value 0. *)

val array : ?access:access -> ?min_length:int -> ?max_length:int -> string -> array_decl
(** @raise Invalid_argument on negative lengths or [min_length > max_length]. *)

val empty_entity : entity_schema
val empty : t

val make :
  ?packet:field list ->
  ?message:field list ->
  ?global:field list ->
  ?message_arrays:array_decl list ->
  ?global_arrays:array_decl list ->
  unit ->
  t
(** Packet entities never carry arrays, so there is no [?packet_arrays]. *)

val entity : t -> Ast.entity -> entity_schema
val find_field : t -> Ast.entity -> string -> field option
val find_array : t -> Ast.entity -> string -> array_decl option

(** The standard packet schema shared by all action functions: the fields
    the enclave knows how to marshal from and to a {!Eden_base.Packet.t}.

    - [Size] (ro): wire size; maps to IPv4 TotalLength.
    - [PayloadSize] (ro).
    - [Priority] (rw): maps to 802.1q PriorityCodePoint.
    - [Path] (rw): source-route label; maps to the 802.1q VLAN id.
    - [SrcHost], [SrcPort], [DstHost], [DstPort], [Proto] (ro).
    - [IsData] (ro): 1 for payload-bearing segments.
    - [Drop] (rw): set non-zero to discard the packet.
    - [Queue] (rw, default -1): rate-limited queue to place the packet in.
    - [Charge] (rw, default -1): bytes to charge against that queue;
      -1 means the wire size (Pulsar-style cost accounting).
    - [GotoTable] (rw, default -1): continue matching at another
      match-action table. *)
val standard_packet_fields : field list

val infer : Ast.t -> t
(** The most permissive schema consistent with an action's usage:
    standard packet fields plus read-write message/global scalars and
    arrays for whatever the action touches.  Meant for tooling (e.g.
    compiling operator-supplied source from the CLI); production installs
    should declare access explicitly so the concurrency analysis and
    read-only enforcement mean something. *)

val with_standard_packet :
  ?message:field list ->
  ?global:field list ->
  ?message_arrays:array_decl list ->
  ?global_arrays:array_decl list ->
  unit ->
  t
