module Addr = Eden_base.Addr
module Packet = Eden_base.Packet
module Time = Eden_base.Time
module Rng = Eden_base.Rng
module Enclave = Eden_enclave.Enclave
module Token_bucket = Eden_enclave.Queueing.Token_bucket
module Tel = Eden_telemetry

type rate_queue = { bucket : Token_bucket.t }

type t = {
  id : Addr.host;
  ev : Event.t;
  rng : Rng.t;
  mutable tx_jitter : Time.t;
  mutable nic_clock : Time.t;  (* last scheduled NIC-entry time: keeps egress FIFO *)
  alloc_packet_id : unit -> int64;
  mutable uplink : Link.t option;
  mutable enclave : Enclave.t option;
  mutable ingress_enclave : Enclave.t option;
  mutable tcp_config : Tcp.config;
  senders : Tcp.Sender.t Addr.Flow_table.t;
  receivers : Tcp.Receiver.t Addr.Flow_table.t;
  rate_queues : (int, rate_queue) Hashtbl.t;
  mutable next_port : int;
  mutable enclave_drops : int;
  tel : Tel.Registry.t;
  hm_tx : Tel.Counter.t;
  hm_rx : Tel.Counter.t;
  hm_enclave_drops : Tel.Counter.t;
}

let create ?(seed = 0x05EAL) ev ~id ~alloc_packet_id =
  let tel = Tel.Registry.create () in
  {
    id;
    ev;
    rng = Rng.create (Int64.add seed (Int64.of_int (id * 7919)));
    (* Default 200 ns of uniform transmission jitter: real hosts have
       scheduling noise, and without it a perfectly deterministic
       simulator exhibits TCP phase effects (Floyd & Jacobson 1992) —
       drop-tail buffers systematically lock out whichever sender has a
       few nanoseconds more fixed latency. *)
    tx_jitter = Time.ns 200;
    nic_clock = Time.zero;
    alloc_packet_id;
    uplink = None;
    enclave = None;
    ingress_enclave = None;
    tcp_config = Tcp.default_config;
    senders = Addr.Flow_table.create 32;
    receivers = Addr.Flow_table.create 32;
    rate_queues = Hashtbl.create 4;
    next_port = 10_000;
    enclave_drops = 0;
    tel;
    hm_tx = Tel.Registry.counter tel ~help:"Packets submitted for transmit" "eden_host_tx_packets_total";
    hm_rx = Tel.Registry.counter tel ~help:"Packets arriving from the network" "eden_host_rx_packets_total";
    hm_enclave_drops =
      Tel.Registry.counter tel ~help:"Packets dropped by egress or ingress enclave"
        "eden_host_enclave_drops_total";
  }

let id t = t.id
let set_uplink t link = t.uplink <- Some link
let uplink t = t.uplink
let set_enclave t e = t.enclave <- Some e
let enclave t = t.enclave
let set_ingress_enclave t e = t.ingress_enclave <- Some e
let ingress_enclave t = t.ingress_enclave
let set_tcp_config t c = t.tcp_config <- c
let tcp_config t = t.tcp_config

let define_rate_queue t ~queue ~rate_bps ?burst_bytes () =
  let burst_bytes = Option.value ~default:(64 * 1024) burst_bytes in
  Hashtbl.replace t.rate_queues queue { bucket = Token_bucket.create ~rate_bps ~burst_bytes }

let nic_send t pkt =
  match t.uplink with
  | Some link -> ignore (Link.send link pkt)
  | None -> ()

let set_tx_jitter t j = t.tx_jitter <- j

let jitter t =
  let bound = Int64.to_int (Time.to_ns t.tx_jitter) in
  if bound <= 0 then Time.zero else Time.ns (Rng.int t.rng (bound + 1))

(* Hand the packet to the NIC after [delay], without ever reordering this
   host's own submissions: entry times are forced monotonic. *)
let nic_send_after t delay pkt =
  let at = Time.add (Event.now t.ev) delay in
  let at = Time.max at t.nic_clock in
  t.nic_clock <- at;
  if Time.( > ) at (Event.now t.ev) then
    Event.schedule_at t.ev at (fun () -> nic_send t pkt)
  else nic_send t pkt

let transmit t pkt =
  Tel.Counter.inc t.hm_tx;
  match t.enclave with
  | None -> nic_send_after t (jitter t) pkt
  | Some enclave -> (
    let decision = Enclave.process enclave ~now:(Event.now t.ev) pkt in
    (* The enclave's per-packet CPU cost becomes data-path latency, so
       interpreted and native action functions differ on the wire the way
       they do on the paper's testbed.  Jitter applies to every egress
       packet, enclave or not. *)
    let cpu = Time.add (Time.of_float_ns (Enclave.last_process_cost_ns enclave)) (jitter t) in
    match decision with
    | Enclave.Dropped _ ->
      t.enclave_drops <- t.enclave_drops + 1;
      Tel.Counter.inc t.hm_enclave_drops
    | Enclave.Forward { queue = None; charge = _ } -> nic_send_after t cpu pkt
    | Enclave.Forward { queue = Some q; charge } -> (
      match Hashtbl.find_opt t.rate_queues q with
      | None ->
        (* Steering to an undefined queue falls back to the NIC. *)
        nic_send_after t cpu pkt
      | Some rq ->
        let departure =
          Token_bucket.consume rq.bucket ~now:(Event.now t.ev) ~cost_bytes:charge
        in
        (* Rate-limited queues have their own pacing; keep the CPU cost
           but let the token bucket set the departure time. *)
        Event.schedule_at t.ev (Time.add departure cpu) (fun () -> nic_send t pkt)))

let deliver t (pkt : Packet.t) =
  match pkt.Packet.kind with
  | Packet.Data -> (
    match Addr.Flow_table.find_opt t.receivers pkt.Packet.flow with
    | Some rx -> Tcp.Receiver.handle_data rx pkt
    | None -> ())
  | Packet.Ack -> (
    (* The ACK's flow is the reverse of the data flow it acknowledges. *)
    match Addr.Flow_table.find_opt t.senders (Addr.reverse pkt.Packet.flow) with
    | Some tx -> Tcp.Sender.handle_ack tx pkt
    | None -> ())
  | Packet.Syn | Packet.Syn_ack | Packet.Fin -> ()

(* The receive path: an ingress enclave (when present) filters and
   classifies arriving packets before the transport sees them — the
   paper's enclave observes packets being sent *and* received. *)
let receive t (pkt : Packet.t) =
  Tel.Counter.inc t.hm_rx;
  match t.ingress_enclave with
  | None -> deliver t pkt
  | Some enclave -> (
    match Enclave.process enclave ~now:(Event.now t.ev) pkt with
    | Enclave.Dropped _ ->
      t.enclave_drops <- t.enclave_drops + 1;
      Tel.Counter.inc t.hm_enclave_drops
    | Enclave.Forward _ ->
      let cpu = Time.of_float_ns (Enclave.last_process_cost_ns enclave) in
      if Time.( > ) cpu Time.zero then
        Event.schedule_in t.ev cpu (fun () -> deliver t pkt)
      else deliver t pkt)

let register_sender t sender =
  Addr.Flow_table.replace t.senders (Tcp.Sender.flow sender) sender

let register_receiver t ~flow receiver = Addr.Flow_table.replace t.receivers flow receiver

let unregister_flow t flow =
  Addr.Flow_table.remove t.senders flow;
  Addr.Flow_table.remove t.receivers flow;
  match t.enclave with
  | Some e -> Enclave.note_flow_closed e flow
  | None -> ()

let fresh_port t =
  let p = t.next_port in
  t.next_port <- p + 1;
  p

let packets_dropped_by_enclave t = t.enclave_drops
let telemetry t = t.tel

let scrape t =
  let encl = function Some e -> [ Enclave.scrape e ] | None -> [] in
  Tel.Registry.merge
    ((Tel.Registry.scrape t.tel :: encl t.enclave) @ encl t.ingress_enclave)
