(** End hosts.

    A host runs TCP senders/receivers and, when one is attached, an Eden
    {!Eden_enclave.Enclave} on its send path.  The egress pipeline is:

    transport → enclave ([process]) → optional rate-limited queue
    (token bucket, for Pulsar-style functions) → NIC priority buffer
    (the uplink {!Link}).

    Dropped-by-action packets never reach the NIC; a host with no enclave
    is the "vanilla stack" baseline. *)

type t

val create : ?seed:int64 -> Event.t -> id:Eden_base.Addr.host -> alloc_packet_id:(unit -> int64) -> t

val set_tx_jitter : t -> Eden_base.Time.t -> unit
(** Uniform random delay added to every transmitted packet (default
    200 ns).  Real hosts have scheduling noise; without it the perfectly
    deterministic simulator shows TCP phase effects — drop-tail buffers
    systematically lock out whichever sender has slightly more fixed
    latency (Floyd & Jacobson 1992).  Set to zero for bit-exact packet
    timing in unit tests. *)

val id : t -> Eden_base.Addr.host
val set_uplink : t -> Link.t -> unit
val uplink : t -> Link.t option

val set_enclave : t -> Eden_enclave.Enclave.t -> unit
val enclave : t -> Eden_enclave.Enclave.t option

val set_ingress_enclave : t -> Eden_enclave.Enclave.t -> unit
(** An enclave on the {e receive} path: arriving packets are classified
    and filtered before the transport sees them (stateful firewalling,
    ingress policing).  Independent of the egress enclave. *)

val ingress_enclave : t -> Eden_enclave.Enclave.t option

val set_tcp_config : t -> Tcp.config -> unit
val tcp_config : t -> Tcp.config

val define_rate_queue : t -> queue:int -> rate_bps:float -> ?burst_bytes:int -> unit -> unit
(** Create or reconfigure the token bucket behind a queue id used by
    action functions' [Queue] output. *)

val transmit : t -> Eden_base.Packet.t -> unit
(** Entry point for transports: run the enclave, honour its decision,
    hand the packet to the NIC. *)

val receive : t -> Eden_base.Packet.t -> unit
(** Entry point for the network: dispatch to the flow's sender (ACKs) or
    receiver (data). *)

val register_sender : t -> Tcp.Sender.t -> unit
val register_receiver : t -> flow:Eden_base.Addr.five_tuple -> Tcp.Receiver.t -> unit
val unregister_flow : t -> Eden_base.Addr.five_tuple -> unit
(** Remove both endpoints' interest in the flow and tell the enclave the
    flow closed. *)

val fresh_port : t -> int
(** Ephemeral source ports, unique per host. *)

val packets_dropped_by_enclave : t -> int

(** {2 Telemetry} *)

val telemetry : t -> Eden_telemetry.Registry.t
(** Per-host registry ([eden_host_*]: tx/rx packet counts, enclave
    drops), bumped live on the simulated data path. *)

val scrape : t -> Eden_telemetry.Registry.sample list
(** Host metrics merged with the attached egress and ingress enclaves'
    registries ([eden_enclave_*]). *)
