type t = { mutable v : int }

let create () = { v = 0 }
let inc t = t.v <- t.v + 1
let add t n = t.v <- t.v + n
let get t = t.v
let set t n = t.v <- n
let reset t = t.v <- 0
