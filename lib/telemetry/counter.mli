(** Monotone event counter.

    A counter is a single mutable [int] cell.  The hot path touches
    nothing else: [inc] is one load, one add, one store — no atomics, no
    boxing, no indirection through the registry.  Contention is avoided
    structurally (one registry instance per shard, merged at scrape
    time), not with synchronisation. *)

type t

val create : unit -> t
val inc : t -> unit
val add : t -> int -> unit
val get : t -> int
val set : t -> int -> unit
(** [set] exists for re-synchronising a cell from a legacy field and for
    [restart] paths; metric semantics remain monotone between resets. *)

val reset : t -> unit
