open Registry

let fmt_float f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%g" f

(* ------------------------------------------------------------------ *)
(* Human table *)

let to_table samples =
  let buf = Buffer.create 512 in
  let width =
    List.fold_left (fun w s -> max w (String.length s.s_name)) 6 samples
  in
  Buffer.add_string buf
    (Printf.sprintf "%-*s  %-9s  %s\n" width "metric" "kind" "value");
  Buffer.add_string buf
    (Printf.sprintf "%-*s  %-9s  %s\n" width "------" "----" "-----");
  List.iter
    (fun s ->
      let kind, value =
        match s.s_value with
        | Counter v -> ("counter", string_of_int v)
        | Gauge v -> ("gauge", fmt_float v)
        | Histogram h ->
            let mean =
              if h.count = 0 then 0.0
              else float_of_int h.sum /. float_of_int h.count
            in
            let pct p =
              (* Percentile over the sampled bucket list. *)
              if h.count = 0 then 0
              else begin
                let rank =
                  let r =
                    int_of_float (ceil (p /. 100.0 *. float_of_int h.count))
                  in
                  if r < 1 then 1 else r
                in
                let acc = ref 0 and res = ref 0 in
                (try
                   List.iter
                     (fun (ub, c) ->
                       acc := !acc + c;
                       if !acc >= rank then begin
                         res := ub;
                         raise Exit
                       end)
                     h.buckets
                 with Exit -> ());
                !res
              end
            in
            ( "histogram",
              Printf.sprintf "count=%d mean=%.1f p50=%d p99=%d max=%d" h.count
                mean (pct 50.0) (pct 99.0) h.max )
      in
      Buffer.add_string buf
        (Printf.sprintf "%-*s  %-9s  %s\n" width s.s_name kind value))
    samples;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Prometheus text exposition *)

let to_prometheus samples =
  let buf = Buffer.create 1024 in
  List.iter
    (fun s ->
      if s.s_help <> "" then
        Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" s.s_name s.s_help);
      (match s.s_value with
      | Counter v ->
          Buffer.add_string buf (Printf.sprintf "# TYPE %s counter\n" s.s_name);
          Buffer.add_string buf (Printf.sprintf "%s %d\n" s.s_name v)
      | Gauge v ->
          Buffer.add_string buf (Printf.sprintf "# TYPE %s gauge\n" s.s_name);
          Buffer.add_string buf (Printf.sprintf "%s %s\n" s.s_name (fmt_float v))
      | Histogram h ->
          Buffer.add_string buf (Printf.sprintf "# TYPE %s histogram\n" s.s_name);
          let cum = ref 0 in
          List.iter
            (fun (ub, c) ->
              cum := !cum + c;
              Buffer.add_string buf
                (Printf.sprintf "%s_bucket{le=\"%d\"} %d\n" s.s_name ub !cum))
            h.buckets;
          Buffer.add_string buf
            (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" s.s_name h.count);
          Buffer.add_string buf (Printf.sprintf "%s_sum %d\n" s.s_name h.sum);
          Buffer.add_string buf (Printf.sprintf "%s_count %d\n" s.s_name h.count)))
    samples;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* JSON *)

let sample_to_json s =
  let base = [ ("name", Json.Str s.s_name) ] in
  let help = if s.s_help = "" then [] else [ ("help", Json.Str s.s_help) ] in
  let value =
    match s.s_value with
    | Counter v -> [ ("kind", Json.Str "counter"); ("value", Json.Num (float_of_int v)) ]
    | Gauge v -> [ ("kind", Json.Str "gauge"); ("value", Json.Num v) ]
    | Histogram h ->
        [
          ("kind", Json.Str "histogram");
          ("count", Json.Num (float_of_int h.count));
          ("sum", Json.Num (float_of_int h.sum));
          ("max", Json.Num (float_of_int h.max));
          ( "buckets",
            Json.Arr
              (List.map
                 (fun (ub, c) ->
                   Json.Obj
                     [
                       ("le", Json.Num (float_of_int ub));
                       ("count", Json.Num (float_of_int c));
                     ])
                 h.buckets) );
        ]
  in
  Json.Obj (base @ help @ value)

let to_json samples =
  Json.Obj [ ("metrics", Json.Arr (List.map sample_to_json samples)) ]

let to_json_string samples = Json.to_string (to_json samples)
