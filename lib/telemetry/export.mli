(** Exposition formats for registry scrapes.

    Three views over the same [Registry.sample list]: a human table for
    the terminal, Prometheus text exposition (counters/gauges as-is,
    histograms as cumulative [_bucket{le=...}] series plus [_sum] /
    [_count]), and a JSON document.  All three are deterministic given a
    scrape, so they can be golden-tested, and the JSON view round-trips
    through {!Json.parse}. *)

val to_table : Registry.sample list -> string
(** Aligned human-readable table; histograms show count / mean / p50 /
    p99 / max. *)

val to_prometheus : Registry.sample list -> string
(** Prometheus text exposition format. *)

val to_json : Registry.sample list -> Json.t
(** [{ "metrics": [ {name, kind, ...} ] }]. *)

val to_json_string : Registry.sample list -> string
