type t = { mutable v : float }

let create () = { v = 0.0 }
let set t v = t.v <- v
let set_int t v = t.v <- float_of_int v
let add t v = t.v <- t.v +. v
let get t = t.v
let reset t = t.v <- 0.0
