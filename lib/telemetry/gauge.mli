(** Point-in-time gauge.

    A single mutable [float] cell.  Gauges are written on cold paths
    (scrape-time synchronisation, occupancy snapshots), so the boxing a
    float store implies is acceptable; counters and histograms carry the
    hot path. *)

type t

val create : unit -> t
val set : t -> float -> unit
val set_int : t -> int -> unit
val add : t -> float -> unit
val get : t -> float
val reset : t -> unit
