let n_sub = 8
let n_buckets = 256

type t = {
  b : int array;
  mutable count : int;
  mutable sum : int;
  mutable max : int;
}

let bucket_of v =
  if v < n_sub then if v < 0 then 0 else v
  else begin
    (* Shift v down into [n_sub, 2*n_sub) counting octaves; the first
       octave [n_sub, 2*n_sub) itself maps to indices [n_sub, 2*n_sub),
       keeping the scale continuous with the linear region. *)
    let x = ref v and octave = ref 0 in
    while !x >= 2 * n_sub do
      x := !x asr 1;
      incr octave
    done;
    let i = (n_sub * !octave) + !x in
    if i >= n_buckets then n_buckets - 1 else i
  end

let lower_bound i =
  if i <= 0 then 0
  else if i < 2 * n_sub then i
  else ((i mod n_sub) + n_sub) lsl ((i / n_sub) - 1)

let create () = { b = Array.make n_buckets 0; count = 0; sum = 0; max = 0 }

let observe t v =
  let v = if v < 0 then 0 else v in
  let i = bucket_of v in
  t.b.(i) <- t.b.(i) + 1;
  t.count <- t.count + 1;
  t.sum <- t.sum + v;
  if v > t.max then t.max <- v

let observe_ns t ns = observe t (int_of_float ns)
let count t = t.count
let sum t = t.sum
let max_value t = t.max
let mean t = if t.count = 0 then 0.0 else float_of_int t.sum /. float_of_int t.count

let percentile t p =
  if t.count = 0 then 0
  else begin
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int t.count)) in
    let rank = if rank < 1 then 1 else rank in
    let acc = ref 0 and res = ref (n_buckets - 1) in
    (try
       for i = 0 to n_buckets - 1 do
         acc := !acc + t.b.(i);
         if !acc >= rank then begin
           res := i;
           raise Exit
         end
       done
     with Exit -> ());
    lower_bound (!res + 1)
  end

let buckets t =
  let out = ref [] in
  for i = n_buckets - 1 downto 0 do
    if t.b.(i) > 0 then out := (lower_bound (i + 1), t.b.(i)) :: !out
  done;
  !out

let merge_into dst src =
  for i = 0 to n_buckets - 1 do
    dst.b.(i) <- dst.b.(i) + src.b.(i)
  done;
  dst.count <- dst.count + src.count;
  dst.sum <- dst.sum + src.sum;
  if src.max > dst.max then dst.max <- src.max

let reset t =
  Array.fill t.b 0 n_buckets 0;
  t.count <- 0;
  t.sum <- 0;
  t.max <- 0
