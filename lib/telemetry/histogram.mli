(** Log-linear histogram (HDR-style).

    Values are non-negative integers (nanoseconds, queue depths, ...).
    The first octave [0, 16) is linear with bucket width 1; every later
    octave is split into [n_sub = 8] linear sub-buckets, so relative
    bucket error is bounded by 12.5% everywhere while the total bucket
    count stays fixed at 256 (values above ~16.1e9 clamp into the last
    bucket).  Bucket boundaries are a pure function of the index — two
    histograms always agree on them, which is what makes bucket-wise
    [merge] of per-shard instances exact.

    [observe] touches only an [int array] slot and three mutable [int]
    fields ([count], [sum], [max]); nothing is boxed, nothing is
    allocated. *)

type t

val n_sub : int
(** Sub-buckets per octave (8). *)

val n_buckets : int
(** Total bucket count (256). *)

val bucket_of : int -> int
(** [bucket_of v] is the index of the bucket containing [v] (negative
    values clamp to bucket 0, huge values to the last bucket). *)

val lower_bound : int -> int
(** [lower_bound i] is the smallest value stored in bucket [i].  The
    bucket covers [\[lower_bound i, lower_bound (i+1))]. *)

val create : unit -> t
val observe : t -> int -> unit
val observe_ns : t -> float -> unit
(** [observe_ns t ns] truncates the float nanosecond value to an int and
    observes it. *)

val count : t -> int
val sum : t -> int
val max_value : t -> int
val mean : t -> float
val percentile : t -> float -> int
(** [percentile t p] with [p] in [\[0, 100\]]: upper bound of the bucket
    holding the p-th percentile observation (0 when empty). *)

val buckets : t -> (int * int) list
(** Non-empty buckets as [(upper_bound_exclusive, count)], ascending. *)

val merge_into : t -> t -> unit
(** [merge_into dst src] adds [src]'s buckets, count, sum and max into
    [dst]. *)

val reset : t -> unit
