type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printer *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let add_num buf f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.0f" f)
  else Buffer.add_string buf (Printf.sprintf "%.17g" f)

let rec render buf indent level v =
  let nl pad =
    match indent with
    | None -> ()
    | Some _ ->
        Buffer.add_char buf '\n';
        Buffer.add_string buf (String.make (2 * pad) ' ')
  in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num f -> add_num buf f
  | Str s -> escape buf s
  | Arr [] -> Buffer.add_string buf "[]"
  | Arr items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          nl (level + 1);
          render buf indent (level + 1) item)
        items;
      nl level;
      Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj members ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, item) ->
          if i > 0 then Buffer.add_char buf ',';
          nl (level + 1);
          escape buf k;
          Buffer.add_char buf ':';
          if indent <> None then Buffer.add_char buf ' ';
          render buf indent (level + 1) item)
        members;
      nl level;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  render buf None 0 v;
  Buffer.contents buf

let to_string_pretty v =
  let buf = Buffer.create 256 in
  render buf (Some 2) 0 v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parser *)

exception Parse_error of int * string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then advance ()
    else fail (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            if !pos >= n then fail "unterminated escape";
            (match s.[!pos] with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'n' -> Buffer.add_char buf '\n'
            | 'r' -> Buffer.add_char buf '\r'
            | 't' -> Buffer.add_char buf '\t'
            | 'u' ->
                if !pos + 4 >= n then fail "truncated \\u escape";
                let hex = String.sub s (!pos + 1) 4 in
                let code =
                  try int_of_string ("0x" ^ hex)
                  with _ -> fail "bad \\u escape"
                in
                pos := !pos + 4;
                (* Encode the code point as UTF-8 (BMP only; surrogate
                   pairs are passed through as-is, good enough here). *)
                if code < 0x80 then Buffer.add_char buf (Char.chr code)
                else if code < 0x800 then begin
                  Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                  Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                end
                else begin
                  Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                  Buffer.add_char buf
                    (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                  Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                end
            | c -> fail (Printf.sprintf "bad escape \\%c" c));
            advance ();
            go ()
        | c ->
            Buffer.add_char buf c;
            advance ();
            go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && num_char s.[!pos] do
      advance ()
    done;
    if !pos = start then fail "expected number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let members = ref [] in
          let rec members_loop () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            members := (k, v) :: !members;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members_loop ()
            | Some '}' -> advance ()
            | _ -> fail "expected , or } in object"
          in
          members_loop ();
          Obj (List.rev !members)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let items = ref [] in
          let rec items_loop () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items_loop ()
            | Some ']' -> advance ()
            | _ -> fail "expected , or ] in array"
          in
          items_loop ();
          Arr (List.rev !items)
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
  in
  try
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then Error (Printf.sprintf "offset %d: trailing garbage" !pos)
    else Ok v
  with Parse_error (p, msg) -> Error (Printf.sprintf "offset %d: %s" p msg)

(* ------------------------------------------------------------------ *)
(* Accessors *)

let member k = function
  | Obj members -> List.assoc_opt k members
  | _ -> None

let to_float = function Num f -> Some f | _ -> None

let to_int = function
  | Num f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_str = function Str s -> Some s | _ -> None
let to_list = function Arr l -> Some l | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
