(** Minimal JSON tree, printer, and recursive-descent parser.

    Just enough JSON for the telemetry exports and the bench baseline
    comparator: objects, arrays, strings (with \u escapes), numbers,
    booleans, null.  The printer is deterministic (insertion order for
    object members, [%.17g]-shortest float rendering with integral
    floats printed as integers), which is what lets the export formats
    be golden-tested. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** Parse a complete document; trailing garbage is an error.  Errors
    carry a byte offset. *)

val to_string : t -> string
(** Compact rendering. *)

val to_string_pretty : t -> string
(** Two-space indented rendering. *)

val member : string -> t -> t option
(** Object member lookup; [None] on missing member or non-object. *)

val to_float : t -> float option
val to_int : t -> int option
val to_str : t -> string option
val to_list : t -> t list option
val to_bool : t -> bool option
