type cell =
  | C of Counter.t
  | G of Gauge.t
  | H of Histogram.t

type metric = { m_name : string; m_help : string; m_cell : cell }

type t = {
  mutable metrics : metric list;  (* reverse registration order *)
  tbl : (string, metric) Hashtbl.t;
}

type value =
  | Counter of int
  | Gauge of float
  | Histogram of {
      buckets : (int * int) list;
      count : int;
      sum : int;
      max : int;
    }

type sample = { s_name : string; s_help : string; s_value : value }

let create () = { metrics = []; tbl = Hashtbl.create 32 }

let register t name help cell =
  let m = { m_name = name; m_help = help; m_cell = cell } in
  t.metrics <- m :: t.metrics;
  Hashtbl.replace t.tbl name m;
  m

let kind_name = function C _ -> "counter" | G _ -> "gauge" | H _ -> "histogram"

let mismatch name want got =
  invalid_arg
    (Printf.sprintf "Registry: %s already registered as a %s, wanted a %s" name
       (kind_name got) want)

let counter t ?(help = "") name =
  match Hashtbl.find_opt t.tbl name with
  | Some { m_cell = C c; _ } -> c
  | Some { m_cell; _ } -> mismatch name "counter" m_cell
  | None ->
      let c = Counter.create () in
      ignore (register t name help (C c));
      c

let gauge t ?(help = "") name =
  match Hashtbl.find_opt t.tbl name with
  | Some { m_cell = G g; _ } -> g
  | Some { m_cell; _ } -> mismatch name "gauge" m_cell
  | None ->
      let g = Gauge.create () in
      ignore (register t name help (G g));
      g

let histogram t ?(help = "") name =
  match Hashtbl.find_opt t.tbl name with
  | Some { m_cell = H h; _ } -> h
  | Some { m_cell; _ } -> mismatch name "histogram" m_cell
  | None ->
      let h = Histogram.create () in
      ignore (register t name help (H h));
      h

let sample_of m =
  let v =
    match m.m_cell with
    | C c -> Counter (Counter.get c)
    | G g -> Gauge (Gauge.get g)
    | H h ->
        Histogram
          {
            buckets = Histogram.buckets h;
            count = Histogram.count h;
            sum = Histogram.sum h;
            max = Histogram.max_value h;
          }
  in
  { s_name = m.m_name; s_help = m.m_help; s_value = v }

let scrape t = List.rev_map sample_of t.metrics

let merge_buckets a b =
  (* Both lists are (upper_bound, count) ascending with boundaries drawn
     from the same fixed scale; a sorted merge adding equal bounds. *)
  let rec go a b =
    match (a, b) with
    | [], r | r, [] -> r
    | (ub_a, ca) :: ta, (ub_b, cb) :: tb ->
        if ub_a = ub_b then (ub_a, ca + cb) :: go ta tb
        else if ub_a < ub_b then (ub_a, ca) :: go ta b
        else (ub_b, cb) :: go a tb
  in
  go a b

let merge_value name a b =
  match (a, b) with
  | Counter x, Counter y -> Counter (x + y)
  | Gauge x, Gauge y -> Gauge (x +. y)
  | Histogram x, Histogram y ->
      Histogram
        {
          buckets = merge_buckets x.buckets y.buckets;
          count = x.count + y.count;
          sum = x.sum + y.sum;
          max = (if x.max >= y.max then x.max else y.max);
        }
  | _ -> invalid_arg (Printf.sprintf "Registry.merge: kind mismatch for %s" name)

let merge scrapes =
  let order = ref [] in
  let acc : (string, sample) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun samples ->
      List.iter
        (fun s ->
          match Hashtbl.find_opt acc s.s_name with
          | None ->
              order := s.s_name :: !order;
              Hashtbl.replace acc s.s_name s
          | Some prev ->
              Hashtbl.replace acc s.s_name
                { prev with s_value = merge_value s.s_name prev.s_value s.s_value })
        samples)
    scrapes;
  List.rev_map (fun name -> Hashtbl.find acc name) !order

let reset t =
  List.iter
    (fun m ->
      match m.m_cell with
      | C c -> Counter.reset c
      | G g -> Gauge.reset g
      | H h -> Histogram.reset h)
    t.metrics
