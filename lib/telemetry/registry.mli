(** Metric registry: named cells, snapshot scrape, cross-shard merge.

    A registry is a cold-path directory of hot-path cells.  Components
    create their cells once (at construction / install time) and then
    touch only the cells while processing packets; the registry itself
    is consulted only when somebody scrapes.

    The sharded data path keeps one registry instance per shard replica
    so that workers never share a cache line; [merge] combines their
    scrapes into cluster totals (counters and gauges sum, histograms
    merge bucket-wise — exact because bucket boundaries are a pure
    function of the index). *)

type t

type value =
  | Counter of int
  | Gauge of float
  | Histogram of {
      buckets : (int * int) list;  (** (upper_bound_exclusive, count) *)
      count : int;
      sum : int;
      max : int;
    }

type sample = { s_name : string; s_help : string; s_value : value }

val create : unit -> t

val counter : t -> ?help:string -> string -> Counter.t
(** [counter t name] returns the counter registered under [name],
    creating it on first use.  Raises [Invalid_argument] if [name] is
    already registered with a different metric kind. *)

val gauge : t -> ?help:string -> string -> Gauge.t
val histogram : t -> ?help:string -> string -> Histogram.t

val scrape : t -> sample list
(** Snapshot of every metric, in registration order. *)

val merge : sample list list -> sample list
(** Merge scrapes from several registry instances.  Metrics are matched
    by name (first-seen order preserved, help from the first instance);
    counters and gauges sum, histograms merge bucket-wise.  Raises
    [Invalid_argument] on a kind mismatch between instances. *)

val reset : t -> unit
(** Reset every cell to zero (enclave [restart] semantics). *)
